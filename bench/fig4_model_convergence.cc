// Figure 4 harness: convergence of the F-measure estimate, the oracle-
// probability estimates pi-hat, and the instrumental distribution for a
// single OASIS run on the Abt-Buy pool with calibrated scores and K = 30.
// Prints the four panel series: (a) |F-hat - F|, (b) mean |pi-hat - pi|,
// (c) mean |v - v*|, (d) KL(v* || v).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/convergence.h"
#include "experiments/report.h"
#include "oracle/ground_truth_oracle.h"

using namespace oasis;

int main() {
  bench::Banner(
      "Figure 4 — model convergence for one OASIS run (Abt-Buy, cal., K=30)",
      "expected shape: pi-hat converges after a few thousand labels; the\n"
      "instrumental distribution takes longer (KL -> 0 later), as in the paper");

  auto profile = datagen::ProfileByName("Abt-Buy");
  OASIS_CHECK_OK(profile.status());
  auto pool_result = datagen::BuildBenchmarkPool(
      profile.ValueOrDie(), datagen::ClassifierKind::kLinearSvm,
      /*calibrated=*/true, bench::Seed());
  OASIS_CHECK_OK(pool_result.status());
  const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();

  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler_result = OasisSampler::CreateWithCsf(&pool.scored, &labels, 30,
                                                    OasisOptions{},
                                                    Rng(bench::Seed()));
  OASIS_CHECK_OK(sampler_result.status());
  auto sampler = std::move(sampler_result).ValueOrDie();

  const int64_t budget = 12000;
  auto trace_result = experiments::TraceOasisConvergence(
      *sampler, pool.truth, pool.true_measures.f_alpha, budget, budget / 40);
  OASIS_CHECK_OK(trace_result.status());
  const experiments::ConvergenceTrace trace = std::move(trace_result).ValueOrDie();

  experiments::TextTable table(
      {"labels", "|F-hat - F|", "mean|pi-hat - pi|", "mean|v - v*|", "KL(v*||v)"});
  for (size_t i = 0; i < trace.budgets.size(); ++i) {
    table.AddRow({experiments::FormatCount(trace.budgets[i]),
                  experiments::FormatDouble(trace.f_abs_error[i], 5),
                  experiments::FormatDouble(trace.pi_abs_error[i], 5),
                  experiments::FormatDouble(trace.v_abs_error[i], 5),
                  experiments::FormatDouble(trace.kl_divergence[i], 5)});
  }
  table.Print(std::cout);

  if (!trace.budgets.empty()) {
    const size_t last = trace.budgets.size() - 1;
    std::printf(
        "\nfinal: |F err| %.5f, pi err %.5f (from %.5f), KL %.5f (from %.5f)\n",
        trace.f_abs_error[last], trace.pi_abs_error[last], trace.pi_abs_error[0],
        trace.kl_divergence[last], trace.kl_divergence[0]);
  }
  return 0;
}
