// Figure 1 harness: size and mean score of the CSF strata for the Abt-Buy
// pool with calibrated (probabilistic) scores. The paper's figure shows the
// characteristic heavy tail — enormous low-score strata, tiny high-score
// strata; this prints the same two series.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  bench::Banner("Figure 1 — CSF strata for the Abt-Buy pool (calibrated scores)",
                "per stratum: population size and mean similarity score");

  auto profile = datagen::ProfileByName("Abt-Buy");
  OASIS_CHECK_OK(profile.status());
  auto pool = datagen::BuildBenchmarkPool(profile.ValueOrDie(),
                                          datagen::ClassifierKind::kLinearSvm,
                                          /*calibrated=*/true, bench::Seed());
  OASIS_CHECK_OK(pool.status());
  const datagen::BenchmarkPool& p = pool.ValueOrDie();

  auto strata_result = StratifyCsf(p.scored.scores, 30);
  OASIS_CHECK_OK(strata_result.status());
  const Strata strata = std::move(strata_result).ValueOrDie();
  const std::vector<double> mean_scores = strata.MeanPerStratum(
      std::span<const double>(p.scored.scores.data(), p.scored.scores.size()));

  std::printf("pool size %lld, %zu strata (target 30)\n\n",
              static_cast<long long>(p.scored.size()), strata.num_strata());
  experiments::TextTable table({"stratum", "size", "mean score"});
  for (size_t k = 0; k < strata.num_strata(); ++k) {
    table.AddRow({std::to_string(k),
                  experiments::FormatCount(static_cast<int64_t>(strata.size(k))),
                  experiments::FormatDouble(mean_scores[k], 4)});
  }
  table.Print(std::cout);

  // The headline property: the largest stratum dwarfs the smallest.
  size_t smallest = strata.size(0);
  size_t largest = strata.size(0);
  for (size_t k = 1; k < strata.num_strata(); ++k) {
    smallest = std::min(smallest, strata.size(k));
    largest = std::max(largest, strata.size(k));
  }
  std::printf("\nlargest/smallest stratum population ratio: %.0fx\n",
              static_cast<double>(largest) / static_cast<double>(smallest));
  return 0;
}
