#ifndef OASIS_BENCH_BENCH_UTIL_H_
#define OASIS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace oasis {
namespace bench {

/// Integer environment override with default (e.g. OASIS_REPEATS).
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// String environment override with default (e.g. OASIS_BENCH_JSON).
inline std::string EnvString(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

/// Repeats per experiment configuration. The paper uses 1000; the default
/// here (50) keeps the full harness suite quick while leaving the expected-
/// error curves stable. Override with OASIS_REPEATS=1000 for paper fidelity.
inline int Repeats(int fallback = 50) { return EnvInt("OASIS_REPEATS", fallback); }

/// Deterministic base seed for the whole harness; override with OASIS_SEED.
inline uint64_t Seed() { return static_cast<uint64_t>(EnvInt("OASIS_SEED", 20170626)); }

/// Worker threads for the experiment runners' repeat fan-out; 0 (default)
/// means hardware concurrency. Override with OASIS_THREADS — results are
/// bit-identical for any value, only wall-clock changes.
inline int Threads() { return EnvInt("OASIS_THREADS", 0); }

/// Prints the standard harness banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("repeats=%d seed=%llu (override via OASIS_REPEATS / OASIS_SEED)\n",
              Repeats(), static_cast<unsigned long long>(Seed()));
  std::printf("================================================================\n\n");
}

// ---------------------------------------------------------------------------
// Machine-readable benchmark output.
//
// A minimal JSON emitter so every perf-relevant harness can drop a
// BENCH_*.json artifact next to its console output and the perf trajectory
// can be tracked across commits without scraping stdout. No third-party JSON
// dependency: results are flat records of string/number fields.
// ---------------------------------------------------------------------------

/// One benchmark measurement: a name, the primary throughput number, and
/// free-form numeric parameters/metrics (e.g. {"K": 30, "N": 100000,
/// "ns_per_step": 412.7}).
struct JsonBenchResult {
  std::string name;
  double steps_per_sec = 0.0;
  int64_t iterations = 0;
  std::map<std::string, double> metrics;
};

/// Collects JsonBenchResult records and writes them as one JSON document:
///   {"benchmark": "...", "seed": ..., "results": [{...}, ...]}
class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(std::string benchmark_name)
      : benchmark_name_(std::move(benchmark_name)) {}

  void Add(JsonBenchResult result) { results_.push_back(std::move(result)); }

  size_t size() const { return results_.size(); }

  /// Collected results, mutable so callers can attach derived metrics that
  /// need to see several rows at once (e.g. speedup ratios across a thread
  /// sweep) before serialising.
  std::vector<JsonBenchResult>& mutable_results() { return results_; }

  /// Serialises all collected results. Numbers use printf %.17g so reading
  /// them back is lossless.
  std::string ToJson() const {
    std::string out;
    out += "{\n  \"benchmark\": \"" + Escape(benchmark_name_) + "\",\n";
    out += "  \"seed\": " + std::to_string(Seed()) + ",\n";
    out += "  \"results\": [";
    for (size_t i = 0; i < results_.size(); ++i) {
      const JsonBenchResult& r = results_[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": \"" + Escape(r.name) + "\"";
      out += ", \"steps_per_sec\": " + Number(r.steps_per_sec);
      out += ", \"iterations\": " + std::to_string(r.iterations);
      for (const auto& [key, value] : r.metrics) {
        out += ", \"" + Escape(key) + "\": " + Number(value);
      }
      out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  /// Writes the JSON document to `path`; returns false on I/O failure.
  bool WriteToFile(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string json = ToJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), file);
    const bool ok = std::fclose(file) == 0 && written == json.size();
    return ok;
  }

 private:
  static std::string Escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  static std::string Number(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }

  std::string benchmark_name_;
  std::vector<JsonBenchResult> results_;
};

/// Output path for a bench's JSON artifact: OASIS_BENCH_JSON when set,
/// otherwise "BENCH_<name>.json" in the working directory.
inline std::string BenchJsonPath(const char* name) {
  return EnvString("OASIS_BENCH_JSON",
                   ("BENCH_" + std::string(name) + ".json").c_str());
}

}  // namespace bench
}  // namespace oasis

#endif  // OASIS_BENCH_BENCH_UTIL_H_
