#ifndef OASIS_BENCH_BENCH_UTIL_H_
#define OASIS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace oasis {
namespace bench {

/// Integer environment override with default (e.g. OASIS_REPEATS).
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// Repeats per experiment configuration. The paper uses 1000; the default
/// here (50) keeps the full harness suite quick while leaving the expected-
/// error curves stable. Override with OASIS_REPEATS=1000 for paper fidelity.
inline int Repeats(int fallback = 50) { return EnvInt("OASIS_REPEATS", fallback); }

/// Deterministic base seed for the whole harness; override with OASIS_SEED.
inline uint64_t Seed() { return static_cast<uint64_t>(EnvInt("OASIS_SEED", 20170626)); }

/// Prints the standard harness banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("repeats=%d seed=%llu (override via OASIS_REPEATS / OASIS_SEED)\n",
              Repeats(), static_cast<unsigned long long>(Seed()));
  std::printf("================================================================\n\n");
}

}  // namespace bench
}  // namespace oasis

#endif  // OASIS_BENCH_BENCH_UTIL_H_
