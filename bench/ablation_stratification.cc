// Ablation: CSF vs equal-size stratification (the design choice of
// Sec. 4.2.1 / Algorithm 1). On an imbalanced pool, CSF isolates the tiny
// high-score strata that carry the F-measure information; equal-size strata
// bury them inside large mixed strata, inflating within-stratum variance and
// slowing OASIS down.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "strata/equal_size.h"

using namespace oasis;

int main() {
  bench::Banner("Ablation — CSF vs equal-size stratification (Abt-Buy)",
                "final E|F-hat - F| at a 5000-label budget, K in {10,30,60}");

  auto profile = datagen::ProfileByName("Abt-Buy");
  OASIS_CHECK_OK(profile.status());
  auto pool_result = datagen::BuildBenchmarkPool(
      profile.ValueOrDie(), datagen::ClassifierKind::kLinearSvm, false,
      bench::Seed());
  OASIS_CHECK_OK(pool_result.status());
  const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
  GroundTruthOracle oracle(pool.truth);

  experiments::RunnerOptions options;
  options.repeats = bench::Repeats();
  options.base_seed = bench::Seed();
  options.num_threads = bench::Threads();
  options.trajectory.budget = 5000;
  options.trajectory.checkpoint_every = 5000;

  experiments::TextTable table({"K", "CSF: E|err|", "CSF: std",
                                "equal-size: E|err|", "equal-size: std"});
  for (size_t k : {10u, 30u, 60u}) {
    std::vector<std::string> row{std::to_string(k)};
    for (const bool use_csf : {true, false}) {
      auto strata_result = use_csf
                               ? StratifyCsf(pool.scored.scores, k, pool.scored.scores_are_probabilities)
                               : StratifyEqualSize(pool.scored.scores, k);
      OASIS_CHECK_OK(strata_result.status());
      auto strata = std::make_shared<const Strata>(
          std::move(strata_result).ValueOrDie());
      auto curve = experiments::RunErrorCurve(
          experiments::MakeOasisSpec(OasisOptions{}, strata), pool.scored,
          oracle, pool.true_measures.f_alpha, options);
      OASIS_CHECK_OK(curve.status());
      const experiments::ErrorCurve& c = curve.ValueOrDie();
      row.push_back(experiments::FormatDouble(c.mean_abs_error.back(), 5));
      row.push_back(experiments::FormatDouble(c.stddev.back(), 5));
    }
    table.AddRow(std::move(row));
    std::printf("  K=%zu done\n", k);
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
