// Ablation: how much of the oracle-optimal variance reduction does OASIS
// capture? Compares OASIS (which must learn pi and F online) against the
// OracleOptimal reference sampler that draws from the true asymptotically
// optimal instrumental distribution (built from full ground truth — the
// performance ceiling of Sec. 4.1), plus Passive as the floor.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "sampling/oracle_sampler.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  bench::Banner("Ablation — OASIS vs the oracle-optimal sampler (Abt-Buy, K=30)",
                "E|F-hat - F| at increasing budgets; OracleOptimal uses the "
                "true per-stratum match rates and true F (unknowable in "
                "practice) and is the adaptive scheme's target");

  auto profile = datagen::ProfileByName("Abt-Buy");
  OASIS_CHECK_OK(profile.status());
  auto pool_result = datagen::BuildBenchmarkPool(
      profile.ValueOrDie(), datagen::ClassifierKind::kLinearSvm, false,
      bench::Seed());
  OASIS_CHECK_OK(pool_result.status());
  const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities)
          .ValueOrDie());

  experiments::RunnerOptions options;
  options.repeats = bench::Repeats();
  options.base_seed = bench::Seed();
  options.num_threads = bench::Threads();
  options.trajectory.budget = 10000;
  options.trajectory.checkpoint_every = 1000;

  // Oracle-optimal method spec: capture truth by value for thread safety.
  const std::vector<uint8_t> truth = pool.truth;
  experiments::MethodSpec oracle_spec;
  oracle_spec.name = "OracleOptimal";
  oracle_spec.factory = [strata, truth](const ScoredPool* p, LabelCache* labels,
                                        Rng rng)
      -> Result<std::unique_ptr<Sampler>> {
    OASIS_ASSIGN_OR_RETURN(
        std::unique_ptr<OracleOptimalSampler> sampler,
        OracleOptimalSampler::Create(p, labels, strata, truth, 0.5, 1e-3, rng));
    return std::unique_ptr<Sampler>(std::move(sampler));
  };

  std::vector<experiments::ErrorCurve> curves;
  for (const experiments::MethodSpec& spec :
       {experiments::MakePassiveSpec(0.5),
        experiments::MakeOasisSpec(OasisOptions{}, strata), oracle_spec}) {
    auto curve = experiments::RunErrorCurve(spec, pool.scored, oracle,
                                            pool.true_measures.f_alpha, options);
    OASIS_CHECK_OK(curve.status());
    curves.push_back(std::move(curve).ValueOrDie());
    std::printf("  %s done\n", curves.back().method.c_str());
    std::fflush(stdout);
  }

  std::printf("\n");
  experiments::PrintCurves(std::cout, curves, 0.95, 10);

  const double oasis_final = curves[1].mean_abs_error.back();
  const double oracle_final = curves[2].mean_abs_error.back();
  std::printf(
      "\nfinal-budget error — OASIS %.4f vs OracleOptimal %.4f "
      "(ratio %.2f; 1.0 = fully closed the adaptivity gap)\n",
      oasis_final, oracle_final,
      oracle_final > 0 ? oasis_final / oracle_final : 0.0);
  return 0;
}
