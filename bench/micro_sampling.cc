// google-benchmark micro-benches for the sampling hot paths: alias-table vs
// linear-scan discrete draws (the Table 3 cost asymmetry at its core), the
// per-iteration cost of each sampler as a function of K and N, and CSF
// stratification construction cost.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/alias_table.h"
#include "common/random.h"
#include "core/oasis.h"
#include "oracle/ground_truth_oracle.h"
#include "sampling/importance.h"
#include "sampling/passive.h"
#include "strata/csf.h"

namespace oasis {
namespace {

/// Synthetic imbalanced pool of size n for sampler benches.
struct BenchPool {
  ScoredPool scored;
  std::vector<uint8_t> truth;
};

BenchPool MakePool(int64_t n) {
  Rng rng(99);
  BenchPool pool;
  for (int64_t i = 0; i < n; ++i) {
    const bool match = rng.NextBernoulli(0.01);
    const double margin = (match ? 1.0 : -1.0) + 0.6 * rng.NextGaussian();
    pool.truth.push_back(match ? 1 : 0);
    pool.scored.scores.push_back(margin);
    pool.scored.predictions.push_back(margin >= 0.0 ? 1 : 0);
  }
  return pool;
}

void BM_AliasTableSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_LinearScanSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDiscreteLinear(weights));
  }
}
BENCHMARK(BM_LinearScanSample)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_AliasTableBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  for (auto _ : state) {
    auto table = AliasTable::Build(weights);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_AliasTableBuild)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_OasisStep(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool->scored, &labels, k,
                                             OasisOptions{}, Rng(4))
                     .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
  state.SetLabel("K=" + std::to_string(sampler->strata().num_strata()));
}
BENCHMARK(BM_OasisStep)->Arg(10)->Arg(30)->Arg(60)->Arg(120);

void BM_PassiveStep(benchmark::State& state) {
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool->scored, &labels, 0.5, Rng(5)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
}
BENCHMARK(BM_PassiveStep);

void BM_ImportanceStepAlias(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchPool pool = MakePool(n);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = ImportanceSampler::Create(&pool.scored, &labels,
                                           ImportanceOptions{}, Rng(6))
                     .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
}
BENCHMARK(BM_ImportanceStepAlias)->Arg(10000)->Arg(100000)->Arg(300000);

void BM_ImportanceStepLinear(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchPool pool = MakePool(n);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  ImportanceOptions options;
  options.backend = SamplingBackend::kLinearScan;
  auto sampler =
      ImportanceSampler::Create(&pool.scored, &labels, options, Rng(7))
          .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
}
BENCHMARK(BM_ImportanceStepLinear)->Arg(10000)->Arg(100000)->Arg(300000);

void BM_CsfStratify(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchPool pool = MakePool(n);
  for (auto _ : state) {
    auto strata = StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities);
    benchmark::DoNotOptimize(strata);
  }
}
BENCHMARK(BM_CsfStratify)->Arg(10000)->Arg(100000)->Arg(1000000);

}  // namespace
}  // namespace oasis

BENCHMARK_MAIN();
