// google-benchmark micro-benches for the sampling hot paths: alias-table vs
// linear-scan discrete draws (the Table 3 cost asymmetry at its core), the
// per-iteration cost of each sampler as a function of K and N, the fused
// zero-allocation OASIS step against the allocating reference path, and CSF
// stratification construction cost.
//
// Besides the console output, every run writes a machine-readable
// BENCH_micro.json (path override: OASIS_BENCH_JSON) with steps/sec per
// sampler and configuration, so the perf trajectory is trackable across
// commits.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/alias_table.h"
#include "common/block_fenwick_forest.h"
#include "common/logging.h"
#include "common/fenwick_tree.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/oasis.h"
#include "datagen/scenario.h"
#include "experiments/runner.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/oracle_stack.h"
#include "oracle/remote_oracle.h"
#include "oracle/retry_policy.h"
#include "sampling/importance.h"
#include "sampling/passive.h"
#include "service/client.h"
#include "service/session_manager.h"
#include "strata/csf.h"
#include "telemetry/telemetry.h"

namespace oasis {
namespace {

/// Synthetic imbalanced pool of size n for sampler benches.
struct BenchPool {
  ScoredPool scored;
  std::vector<uint8_t> truth;
};

BenchPool MakePool(int64_t n) {
  Rng rng(99);
  BenchPool pool;
  for (int64_t i = 0; i < n; ++i) {
    const bool match = rng.NextBernoulli(0.01);
    const double margin = (match ? 1.0 : -1.0) + 0.6 * rng.NextGaussian();
    pool.truth.push_back(match ? 1 : 0);
    pool.scored.scores.push_back(margin);
    pool.scored.predictions.push_back(margin >= 0.0 ? 1 : 0);
  }
  return pool;
}

/// Pool-scale fixture for the large-K tier (K >= 100k): four items per
/// stratum over a 4K-item pool, assigned in contiguous blocks. CSF targets
/// stratum counts in the tens-to-hundreds; the pool-scale tier assigns
/// directly (as the large-K tests do), so the bench measures the step paths
/// and not the stratifier.
struct LargeKBench {
  BenchPool pool;
  std::shared_ptr<const Strata> strata;
};

const LargeKBench& LargeKFixture(size_t k) {
  static auto* cache = new std::map<size_t, LargeKBench>();
  auto it = cache->find(k);
  if (it == cache->end()) {
    LargeKBench fixture;
    fixture.pool = MakePool(static_cast<int64_t>(4 * k));
    std::vector<int32_t> assignment(4 * k);
    for (size_t i = 0; i < assignment.size(); ++i) {
      assignment[i] = static_cast<int32_t>(i / 4);
    }
    fixture.strata = std::make_shared<const Strata>(
        Strata::FromAssignment(assignment).ValueOrDie());
    it = cache->emplace(k, std::move(fixture)).first;
  }
  return it->second;
}

/// Everything one OASIS step bench run needs, with K routing: CSF
/// stratification of the shared 100k pool below 100k strata, the pool-scale
/// fixture above.
struct StepBenchContext {
  std::unique_ptr<GroundTruthOracle> oracle;
  std::unique_ptr<LabelCache> labels;
  std::unique_ptr<OasisSampler> sampler;
};

StepBenchContext MakeStepBench(size_t k, OasisOptions options) {
  StepBenchContext ctx;
  if (k >= 1000000) {
    // At K = 1M the timed window holds only a few hundred iterations while a
    // single drift rebuild costs milliseconds, so how many rebuilds happen to
    // land in the window dominates the measurement (huge run-to-run
    // variance). Widen the drift gate so these rows measure the steady-state
    // sub-linear draw/update path; rebuild cost at this scale is benchmarked
    // and regression-gated separately by BM_BlockForestRebuild.
    options.fenwick_rebuild_tol = 0.1;
  }
  if (k >= 100000) {
    const LargeKBench& fixture = LargeKFixture(k);
    ctx.oracle = std::make_unique<GroundTruthOracle>(fixture.pool.truth);
    ctx.labels = std::make_unique<LabelCache>(ctx.oracle.get());
    ctx.sampler = OasisSampler::Create(&fixture.pool.scored, ctx.labels.get(),
                                       fixture.strata, options, Rng(4))
                      .ValueOrDie();
  } else {
    static BenchPool* pool = new BenchPool(MakePool(100000));
    ctx.oracle = std::make_unique<GroundTruthOracle>(pool->truth);
    ctx.labels = std::make_unique<LabelCache>(ctx.oracle.get());
    ctx.sampler = OasisSampler::CreateWithCsf(&pool->scored, ctx.labels.get(),
                                              k, options, Rng(4))
                      .ValueOrDie();
  }
  // Warm to steady state before the framework starts timing: while F-hat is
  // still converging, every few steps cross the drift gate and trigger an
  // O(K) rebuild, so the early-phase rate is a different (and iteration-count
  // dependent) quantity from the steady-state rate the sweep compares across
  // K. ~2k labels settle F-hat enough that rebuilds become rare.
  for (int i = 0; i < 2000; ++i) {
    OASIS_CHECK_OK(ctx.sampler->Step());
  }
  return ctx;
}

void BM_AliasTableSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_LinearScanSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDiscreteLinear(weights));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearScanSample)->Arg(1000)->Arg(100000)->Arg(1000000);

/// O(log n) Fenwick inverse-CDF draw — the dynamic middle ground between the
/// O(1)-draw/O(n)-rebuild alias table and the O(n) linear scan.
void BM_FenwickSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  FenwickTree tree = FenwickTree::Build(weights).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FenwickSample)->Arg(1000)->Arg(100000)->Arg(1000000);

/// O(log n) Fenwick point update — the cost of keeping the distribution
/// current after a single-coordinate change (alias tables pay O(n) here).
void BM_FenwickUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  FenwickTree tree = FenwickTree::Build(weights).ValueOrDie();
  size_t i = 0;
  for (auto _ : state) {
    tree.Update(i, 0.5 + 0.25 * static_cast<double>(i % 7));
    benchmark::DoNotOptimize(tree);
    i = (i + 7919) % n;  // Prime stride: touch varied tree paths.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FenwickUpdate)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_AliasTableBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.NextDouble() + 1e-6;
  for (auto _ : state) {
    auto table = AliasTable::Build(weights);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_AliasTableBuild)->Arg(1000)->Arg(100000)->Arg(1000000);

/// One OASIS iteration through the fused zero-allocation path (the default).
void BM_OasisStep(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool->scored, &labels, k,
                                             OasisOptions{}, Rng(4))
                     .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["K"] = static_cast<double>(sampler->strata().num_strata());
  state.SetLabel("K=" + std::to_string(sampler->strata().num_strata()));
}
BENCHMARK(BM_OasisStep)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)
    ->Arg(120)
    ->Arg(1000)
    ->Arg(10000);

/// One OASIS iteration through the original allocating path, kept as the
/// baseline the fused path is compared against.
void BM_OasisStepAllocating(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  OasisOptions options;
  options.step_path = OasisStepPath::kAllocatingReference;
  auto sampler =
      OasisSampler::CreateWithCsf(&pool->scored, &labels, k, options, Rng(4))
          .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["K"] = static_cast<double>(sampler->strata().num_strata());
  state.SetLabel("K=" + std::to_string(sampler->strata().num_strata()));
}
BENCHMARK(BM_OasisStepAllocating)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)
    ->Arg(120)
    ->Arg(1000)
    ->Arg(10000);

/// One OASIS iteration through the Fenwick-tree path: O(log K) draw +
/// single-stratum update, with O(K) mass rebuilds only on F-hat drift. The
/// point of comparison for BM_OasisStep (fused O(K)) as K grows; the 100k and
/// 1M rows are the pool-scale tier, raced against BM_OasisStepAlias.
void BM_OasisStepFenwick(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  OasisOptions options;
  options.step_path = OasisStepPath::kFenwick;
  StepBenchContext ctx = MakeStepBench(k, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["K"] =
      static_cast<double>(ctx.sampler->strata().num_strata());
  state.SetLabel("K=" + std::to_string(ctx.sampler->strata().num_strata()));
}
BENCHMARK(BM_OasisStepFenwick)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)
    ->Arg(120)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

/// One OASIS iteration through the alias path: O(1) draws from a frozen
/// Walker/Vose snapshot, O(K) in-place rebuilds when the drift gate fires.
/// The other contender of the pool-scale race — at K >= 100k the rebuild
/// amortisation decides the winner, which is why the large rows share
/// BM_OasisStepFenwick's fixture exactly.
void BM_OasisStepAlias(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  OasisOptions options;
  options.step_path = OasisStepPath::kAlias;
  StepBenchContext ctx = MakeStepBench(k, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["K"] =
      static_cast<double>(ctx.sampler->strata().num_strata());
  state.SetLabel("K=" + std::to_string(ctx.sampler->strata().num_strata()));
}
BENCHMARK(BM_OasisStepAlias)
    ->Arg(10)
    ->Arg(30)
    ->Arg(120)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

/// One OASIS iteration through the sharded-Fenwick path at pool scale: the
/// O(K) drift rebuilds fan out over an 8-worker pool while draws stay
/// O(log K). Only meaningful at large K (below that the rebuild is too cheap
/// to shard), so the sweep starts at 100k.
void BM_OasisStepSharded(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  static ThreadPool* shard_pool = new ThreadPool(8);
  OasisOptions options;
  options.step_path = OasisStepPath::kShardedFenwick;
  options.num_shards = 8;
  options.shard_pool = shard_pool;
  StepBenchContext ctx = MakeStepBench(k, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["K"] =
      static_cast<double>(ctx.sampler->strata().num_strata());
  state.counters["shards"] = 8.0;
  state.SetLabel("K=" + std::to_string(ctx.sampler->strata().num_strata()) +
                 " shards=8");
}
BENCHMARK(BM_OasisStepSharded)->Arg(100000)->Arg(1000000)->UseRealTime();

/// Isolated cost of one full blocked-forest mass rebuild at K = 1M, serial
/// (shards=1) vs fanned out over 8 workers — the component the sharded step
/// path pays on every drift trip, measured without the sampler around it.
/// Items/sec counts stratum masses written per second.
void BM_BlockForestRebuild(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  constexpr size_t kForestK = 1000000;
  static ThreadPool* pool = new ThreadPool(8);
  static std::vector<double>* masses = [] {
    auto* m = new std::vector<double>(kForestK);
    Rng rng(11);
    for (double& v : *m) v = rng.NextDouble() + 1e-6;
    return m;
  }();
  BlockFenwickForest forest = BlockFenwickForest::Build(*masses).ValueOrDie();
  for (auto _ : state) {
    OASIS_CHECK_OK(forest.ParallelRebuild(*masses, pool, shards));
    benchmark::DoNotOptimize(forest.Total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kForestK));
  state.counters["K"] = static_cast<double>(kForestK);
  state.counters["shards"] = static_cast<double>(shards);
  state.SetLabel("K=1000000 shards=" + std::to_string(shards));
}
BENCHMARK(BM_BlockForestRebuild)->Arg(1)->Arg(8)->UseRealTime();

/// Batched OASIS stepping: each bench iteration performs range(1) fused
/// steps through StepBatch, amortising dispatch and validation.
void BM_OasisStepBatch(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const int64_t batch = state.range(1);
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool->scored, &labels, k,
                                             OasisOptions{}, Rng(4))
                     .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->StepBatch(batch).ok());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["K"] = static_cast<double>(sampler->strata().num_strata());
  state.counters["batch"] = static_cast<double>(batch);
  state.SetLabel("K=" + std::to_string(sampler->strata().num_strata()) +
                 " batch=" + std::to_string(batch));
}
BENCHMARK(BM_OasisStepBatch)
    ->Args({30, 64})
    ->Args({30, 256})
    ->Args({120, 64})
    ->Args({120, 256});

void BM_PassiveStep(benchmark::State& state) {
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool->scored, &labels, 0.5, Rng(5)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PassiveStep);

void BM_PassiveStepBatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool->scored, &labels, 0.5, Rng(5)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->StepBatch(batch).ok());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_PassiveStepBatch)->Arg(256);

void BM_ImportanceStepAlias(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchPool pool = MakePool(n);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = ImportanceSampler::Create(&pool.scored, &labels,
                                           ImportanceOptions{}, Rng(6))
                     .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["N"] = static_cast<double>(n);
}
BENCHMARK(BM_ImportanceStepAlias)->Arg(10000)->Arg(100000)->Arg(300000);

void BM_ImportanceStepLinear(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchPool pool = MakePool(n);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  ImportanceOptions options;
  options.backend = SamplingBackend::kLinearScan;
  auto sampler =
      ImportanceSampler::Create(&pool.scored, &labels, options, Rng(7))
          .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["N"] = static_cast<double>(n);
}
BENCHMARK(BM_ImportanceStepLinear)->Arg(10000)->Arg(100000)->Arg(300000);

/// Whole-experiment fan-out: one iteration = one RunErrorCurve of 32 OASIS
/// repeats sharded over range(0) worker threads. Items/sec counts labels
/// (repeats x budget), so the speedup at t threads is the ratio of this
/// row's steps/sec to the threads=1 row — main() also folds that ratio into
/// BENCH_micro.json as a `speedup_vs_1thread` metric per row.
void BM_RunnerParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  static BenchPool* pool = new BenchPool(MakePool(20000));
  static GroundTruthOracle* oracle = new GroundTruthOracle(pool->truth);
  static auto* strata = new std::shared_ptr<const Strata>(
      std::make_shared<const Strata>(
          StratifyCsf(pool->scored.scores, 30).ValueOrDie()));

  experiments::RunnerOptions options;
  options.repeats = 32;
  options.num_threads = threads;
  options.trajectory.budget = 2000;
  options.trajectory.checkpoint_every = 500;
  const experiments::MethodSpec spec =
      experiments::MakeOasisSpec(OasisOptions{}, *strata);
  for (auto _ : state) {
    auto curve = experiments::RunErrorCurve(spec, pool->scored, *oracle,
                                            /*true_f=*/0.5, options);
    benchmark::DoNotOptimize(curve.ok());
  }
  state.SetItemsProcessed(state.iterations() * options.repeats *
                          options.trajectory.budget);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["repeats"] = static_cast<double>(options.repeats);
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_RunnerParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Remote-oracle batching: one bench iteration runs a fresh ImportanceSampler
/// for kRemoteLabels iterations against a RemoteOracle-wrapped ground truth,
/// stepping in range(0)-sized batches (1 = per-query labelling). Wall-clock
/// throughput is the real number; the counters carry the *simulated* economy:
/// round trips per 1k charged labels and effective labels per simulated
/// second. main() derives `round_trips_saved_vs_perquery` for the batched
/// rows — the headline ratio (>= 4x at batch 64 is the subsystem's
/// acceptance bar; kQueryBatchChunk-capped batches approach ~64x).
void BM_RemoteOracle(benchmark::State& state) {
  const int64_t batch = state.range(0);
  constexpr int64_t kRemoteLabels = 2048;
  static BenchPool* pool = new BenchPool(MakePool(100000));
  static GroundTruthOracle* inner = new GroundTruthOracle(pool->truth);
  RemoteOracleOptions remote_options;
  remote_options.round_trip_seconds = 30.0;
  remote_options.per_item_seconds = 12.0;
  remote_options.cost_per_label = 0.05;
  remote_options.jitter_fraction = 0.0;

  int64_t labels = 0;
  int64_t round_trips = 0;
  int64_t latency_ns = 0;
  for (auto _ : state) {
    RemoteOracle remote(inner, remote_options);
    LabelCache cache(&remote);
    auto sampler = ImportanceSampler::Create(&pool->scored, &cache,
                                             ImportanceOptions{}, Rng(12))
                       .ValueOrDie();
    for (int64_t done = 0; done < kRemoteLabels; done += batch) {
      benchmark::DoNotOptimize(
          sampler->StepBatch(std::min(batch, kRemoteLabels - done)).ok());
    }
    const RemoteOracleStats stats = remote.stats();
    labels += stats.labels_fetched;
    round_trips += stats.round_trips;
    latency_ns += stats.simulated_latency_ns;
  }
  state.SetItemsProcessed(state.iterations() * kRemoteLabels);
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["round_trips_per_1k_labels"] =
      labels > 0 ? 1000.0 * static_cast<double>(round_trips) /
                       static_cast<double>(labels)
                 : 0.0;
  state.counters["effective_labels_per_sim_sec"] =
      latency_ns > 0 ? static_cast<double>(labels) /
                           (static_cast<double>(latency_ns) * 1e-9)
                     : 0.0;
  state.SetLabel("batch=" + std::to_string(batch));
}
BENCHMARK(BM_RemoteOracle)->Arg(1)->Arg(64)->Arg(256);

/// Same workload with the AsyncLabelPipeline engaged (SetPrefetchPool over a
/// 2-worker pool): bounds the pipeline's real-time overhead — results are
/// bit-identical to BM_RemoteOracle at the same batch size, only wall-clock
/// may differ.
void BM_RemoteOraclePrefetch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  constexpr int64_t kRemoteLabels = 2048;
  static BenchPool* pool = new BenchPool(MakePool(100000));
  static GroundTruthOracle* inner = new GroundTruthOracle(pool->truth);
  RemoteOracleOptions remote_options;
  remote_options.round_trip_seconds = 30.0;
  remote_options.per_item_seconds = 12.0;
  remote_options.cost_per_label = 0.05;
  ThreadPool prefetch_pool(2);

  for (auto _ : state) {
    RemoteOracle remote(inner, remote_options);
    LabelCache cache(&remote);
    auto sampler = ImportanceSampler::Create(&pool->scored, &cache,
                                             ImportanceOptions{}, Rng(12))
                       .ValueOrDie();
    sampler->SetPrefetchPool(&prefetch_pool);
    for (int64_t done = 0; done < kRemoteLabels; done += batch) {
      benchmark::DoNotOptimize(
          sampler->StepBatch(std::min(batch, kRemoteLabels - done)).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * kRemoteLabels);
  state.counters["batch"] = static_cast<double>(batch);
  state.SetLabel("batch=" + std::to_string(batch) + " prefetch");
}
BENCHMARK(BM_RemoteOraclePrefetch)->Arg(2048);

/// Happy-path cost of the fault-tolerant oracle stack: an ImportanceSampler
/// labels kRetryLabels items in 256-item batches against three stacks of
/// increasing depth — range(0) = 0: bare GroundTruthOracle (infallible fast
/// path), 1: + FaultInjectingOracle with all rates zero (fallible path, no
/// faults fired), 2: + RetryingOracle on top (full retry/breaker machinery,
/// single attempt per batch). The gap between rows is pure decorator
/// overhead — no fault ever fires, no retry ever happens — and bounds what
/// `RunnerOptions::retry_policy` costs a fault-free experiment. main()
/// derives `retry_stack_overhead_pct` from rows 0 and 2.
void BM_RetryOverhead(benchmark::State& state) {
  const int64_t depth = state.range(0);
  constexpr int64_t kRetryLabels = 4096;
  constexpr int64_t kBatch = 256;
  static BenchPool* pool = new BenchPool(MakePool(100000));
  static GroundTruthOracle* inner = new GroundTruthOracle(pool->truth);
  // All-zero rates: the schedule RNG still advances per attempt (that is the
  // determinism contract), but every batch resolves on the first try.
  const FaultInjectionOptions calm;
  RetryPolicy policy;

  int64_t attempts = 0;
  for (auto _ : state) {
    OracleStackBuilder builder;
    if (depth >= 1) builder.FaultInjection(calm);
    if (depth >= 2) builder.Retry(policy);
    const OracleStack stack = builder.Build(inner).ValueOrDie();
    LabelCache cache(&stack.top());
    auto sampler = ImportanceSampler::Create(&pool->scored, &cache,
                                             ImportanceOptions{}, Rng(12))
                       .ValueOrDie();
    for (int64_t done = 0; done < kRetryLabels; done += kBatch) {
      benchmark::DoNotOptimize(
          sampler->StepBatch(std::min(kBatch, kRetryLabels - done)).ok());
    }
    if (depth >= 2) attempts += stack.retrying()->stats().attempts;
  }
  state.SetItemsProcessed(state.iterations() * kRetryLabels);
  state.counters["stack_depth"] = static_cast<double>(depth);
  if (depth >= 2) {
    state.counters["attempts_per_iter"] =
        state.iterations() > 0
            ? static_cast<double>(attempts) /
                  static_cast<double>(state.iterations())
            : 0.0;
  }
  state.SetLabel(depth == 0   ? "bare"
                 : depth == 1 ? "fault-inject(calm)"
                              : "retry+fault-inject(calm)");
}
BENCHMARK(BM_RetryOverhead)->Arg(0)->Arg(1)->Arg(2);

/// Telemetry cost on the hottest loop in the repo: the fused OASIS step at
/// K=1000, with the registry runtime switch range(0) = 0: off (the production
/// default — one relaxed atomic load per instrumented site), 1: on (counters
/// and gauges live), 2: on + detail (adds the per-step weight histogram).
/// The gap between rows 0 and 1/2 is the whole price of enabling telemetry;
/// main() derives `telemetry_overhead_pct` from it, and CI gates the enabled
/// overhead at <= 2% (compiled out entirely under -DOASIS_TELEMETRY=OFF).
void BM_TelemetryOverhead(benchmark::State& state) {
  const int64_t mode = state.range(0);
  static BenchPool* pool = new BenchPool(MakePool(100000));
  GroundTruthOracle oracle(pool->truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool->scored, &labels, 1000,
                                             OasisOptions{}, Rng(4))
                     .ValueOrDie();
  telemetry::SetEnabled(mode >= 1);
  telemetry::SetDetailEnabled(mode >= 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step().ok());
  }
  telemetry::SetEnabled(false);
  telemetry::SetDetailEnabled(false);
  state.SetItemsProcessed(state.iterations());
  state.counters["telemetry_mode"] = static_cast<double>(mode);
  state.SetLabel(mode == 0   ? "off"
                 : mode == 1 ? "on"
                             : "on+detail");
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Arg(2);

/// Known-truth scenario-pool generation (datagen/scenario.h): the fixed cost
/// every oasis_gen / oasis_run invocation and scenario test pays before a
/// single label is drawn. range(0) indexes kGenScenarios, spanning the cheap
/// stripe construction, a 50k-item imbalance pool, the cluster sampler, and
/// the SIS-breaker inversion layout. Items/sec counts pool items.
const char* const kGenScenarios[] = {"stripe-f90", "imbalance-1e3",
                                     "clustered", "sis-inversion"};

void BM_ScenarioGen(benchmark::State& state) {
  const datagen::ScenarioSpec spec =
      datagen::ScenarioByName(kGenScenarios[state.range(0)]).ValueOrDie();
  for (auto _ : state) {
    auto pool = datagen::GenerateScenario(spec);
    benchmark::DoNotOptimize(pool);
  }
  state.SetItemsProcessed(state.iterations() * spec.pool_size);
  state.counters["N"] = static_cast<double>(spec.pool_size);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_ScenarioGen)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_CsfStratify(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchPool pool = MakePool(n);
  for (auto _ : state) {
    auto strata = StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities);
    benchmark::DoNotOptimize(strata);
  }
  state.counters["N"] = static_cast<double>(n);
}
BENCHMARK(BM_CsfStratify)->Arg(10000)->Arg(100000)->Arg(1000000);

/// End-to-end session-server throughput: range(0) concurrent passive
/// sessions (stream s = Rng::Fork stream s) served to completion through the
/// FULL wire protocol — start, one asynchronous full-budget advance each,
/// checkpoint settle, close. One iteration = one complete serve of all
/// sessions on a fresh manager (backend generation included, as in
/// oasis_serve); items/sec therefore counts sessions served per second. The
/// 1000-session row is the scale contract of the service subsystem
/// (tests/session_server_test.cc ThousandSessionsStress).
void BM_SessionServer(benchmark::State& state) {
  const int64_t sessions = state.range(0);
  int64_t requests = 0;
  for (auto _ : state) {
    service::SessionManager manager;
    service::InProcessTransport transport(&manager);
    service::ServiceClient client(&transport);
    std::vector<int64_t> ids;
    ids.reserve(static_cast<size_t>(sessions));
    for (int64_t s = 0; s < sessions; ++s) {
      service::SessionSpec spec;
      spec.scenario = "stripe-f90";
      spec.method = "passive";
      spec.budget = 60;
      spec.checkpoint_every = 30;
      spec.stream = static_cast<uint64_t>(s);
      ids.push_back(client.Start(spec).ValueOrDie());
      ++requests;
    }
    for (const int64_t id : ids) {
      OASIS_CHECK(client.EnqueueLabels(id, 0).ok());
      ++requests;
    }
    for (const int64_t id : ids) {
      benchmark::DoNotOptimize(client.Close(id).ValueOrDie().labels_consumed);
      ++requests;
    }
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["requests_per_iter"] =
      state.iterations() > 0
          ? static_cast<double>(requests) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_SessionServer)->Arg(64)->Arg(1000);

/// Console reporter that additionally captures every finished run into the
/// bench_util JSON writer, keyed by benchmark name with items/sec as the
/// primary throughput number.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::JsonBenchWriter* writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      bench::JsonBenchResult result;
      result.name = run.benchmark_name();
      result.iterations = run.iterations;
      result.metrics["real_time_per_iter_ns"] = run.GetAdjustedRealTime();
      for (const auto& [counter_name, counter] : run.counters) {
        if (counter_name == "items_per_second") {
          result.steps_per_sec = static_cast<double>(counter);
        } else {
          result.metrics[counter_name] = static_cast<double>(counter);
        }
      }
      writer_->Add(std::move(result));
    }
  }

 private:
  bench::JsonBenchWriter* writer_;
};

}  // namespace
}  // namespace oasis

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  oasis::bench::JsonBenchWriter writer("micro_sampling");
  oasis::JsonCaptureReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Derived metric: each BM_RunnerParallel row gets its speedup over the
  // threads=1 row of the same sweep, so the JSON artifact carries the
  // scaling curve directly instead of leaving the division to the reader.
  {
    auto& results = writer.mutable_results();
    // Only plain per-run rows participate: with --benchmark_repetitions the
    // reporter also emits .../real_time_mean, _median, _stddev, _cv rows
    // whose "throughput" is a dispersion statistic, not a rate.
    const auto is_sweep_row = [](const oasis::bench::JsonBenchResult& r) {
      return r.name.rfind("BM_RunnerParallel/", 0) == 0 &&
             r.name.size() >= 10 &&
             r.name.compare(r.name.size() - 10, 10, "/real_time") == 0;
    };
    double base_steps_per_sec = 0.0;
    for (const auto& r : results) {
      // First-wins so repeated repetition rows don't silently shift the base.
      if (base_steps_per_sec == 0.0 && r.steps_per_sec > 0 &&
          r.name == "BM_RunnerParallel/1/real_time") {
        base_steps_per_sec = r.steps_per_sec;
      }
    }
    if (base_steps_per_sec > 0.0) {
      for (auto& r : results) {
        if (is_sweep_row(r)) {
          r.metrics["speedup_vs_1thread"] = r.steps_per_sec / base_steps_per_sec;
        }
      }
    }
  }

  // Derived metric: each batched BM_RemoteOracle row gets its round-trip
  // saving over the per-query (batch=1) row — the subsystem's headline
  // number (>= 4x at batch 64) — so the JSON artifact carries the ratio
  // directly.
  {
    auto& results = writer.mutable_results();
    double per_query_trips = 0.0;
    for (const auto& r : results) {
      if (r.name == "BM_RemoteOracle/1") {
        const auto it = r.metrics.find("round_trips_per_1k_labels");
        if (it != r.metrics.end()) per_query_trips = it->second;
        break;
      }
    }
    if (per_query_trips > 0.0) {
      for (auto& r : results) {
        if (r.name.rfind("BM_RemoteOracle/", 0) == 0 &&
            r.name != "BM_RemoteOracle/1") {
          const auto it = r.metrics.find("round_trips_per_1k_labels");
          if (it != r.metrics.end() && it->second > 0.0) {
            r.metrics["round_trips_saved_vs_perquery"] =
                per_query_trips / it->second;
          }
        }
      }
    }
  }

  // Derived metric: the full retry stack's happy-path overhead over the bare
  // oracle, as a percentage — the number docs/FAULT_MODEL.md quotes for
  // "what does arming retry_policy cost a fault-free run".
  {
    auto& results = writer.mutable_results();
    double bare_steps_per_sec = 0.0;
    for (const auto& r : results) {
      if (r.name == "BM_RetryOverhead/0") {
        bare_steps_per_sec = r.steps_per_sec;
        break;
      }
    }
    if (bare_steps_per_sec > 0.0) {
      for (auto& r : results) {
        if (r.name.rfind("BM_RetryOverhead/", 0) == 0 &&
            r.name != "BM_RetryOverhead/0" && r.steps_per_sec > 0.0) {
          r.metrics["retry_stack_overhead_pct"] =
              100.0 * (bare_steps_per_sec / r.steps_per_sec - 1.0);
        }
      }
    }
  }

  // Derived metric: what turning the registry on costs the fused step path,
  // as a percentage over the telemetry-off row — the number docs/TELEMETRY.md
  // quotes and tools/check_bench_regression.py --max-metric gates in CI.
  {
    auto& results = writer.mutable_results();
    double off_steps_per_sec = 0.0;
    for (const auto& r : results) {
      if (r.name == "BM_TelemetryOverhead/0") {
        off_steps_per_sec = r.steps_per_sec;
        break;
      }
    }
    if (off_steps_per_sec > 0.0) {
      for (auto& r : results) {
        if (r.name.rfind("BM_TelemetryOverhead/", 0) == 0 &&
            r.name != "BM_TelemetryOverhead/0" && r.steps_per_sec > 0.0) {
          r.metrics["telemetry_overhead_pct"] =
              100.0 * (off_steps_per_sec / r.steps_per_sec - 1.0);
        }
      }
    }
  }

  const std::string path = oasis::bench::BenchJsonPath("micro");
  if (!writer.WriteToFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu results)\n", path.c_str(), writer.size());
  benchmark::Shutdown();
  return 0;
}
