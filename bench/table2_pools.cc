// Table 2 harness: evaluation pools sampled from the datasets, with the true
// performance measures of the trained L-SVM matcher over each pool —
// regenerated end to end (dataset -> training -> scoring -> operating point)
// and printed next to the paper's published values.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"

using namespace oasis;

int main() {
  bench::Banner("Table 2 — pools sampled from the datasets (L-SVM matcher)",
                "pool size / imbalance / matches are constructed; precision, "
                "recall, F1/2 are measured from the trained matcher");

  experiments::TextTable table({"pool", "size", "imb.ratio", "matches",
                                "precision", "P(paper)", "recall", "R(paper)",
                                "F1/2", "F(paper)"});
  for (const datagen::DatasetProfile& profile : datagen::StandardProfiles()) {
    std::printf("building %s ...\n", profile.name.c_str());
    std::fflush(stdout);
    auto pool = datagen::BuildBenchmarkPool(
        profile, datagen::ClassifierKind::kLinearSvm, /*calibrated=*/false,
        bench::Seed());
    if (!pool.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   pool.status().ToString().c_str());
      return 1;
    }
    const datagen::BenchmarkPool& p = pool.ValueOrDie();
    const double imbalance =
        static_cast<double>(p.scored.size() - p.pool_matches) /
        static_cast<double>(p.pool_matches);
    table.AddRow(
        {profile.name, experiments::FormatCount(p.scored.size()),
         experiments::FormatDouble(imbalance, 2),
         experiments::FormatCount(p.pool_matches),
         experiments::FormatDouble(p.true_measures.precision, 3),
         experiments::FormatDouble(profile.paper_precision, 3),
         experiments::FormatDouble(p.true_measures.recall, 3),
         experiments::FormatDouble(profile.paper_recall, 3),
         experiments::FormatDouble(p.true_measures.f_alpha, 3),
         experiments::FormatDouble(profile.paper_f, 3)});
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
