// Ablation: the epsilon-greedy explore/exploit trade-off (paper Sec. 4.1.3
// and Remark 5). Sweeps epsilon on an Abt-Buy-profile pool. Expected shape:
// tiny epsilon (near-pure exploitation) gives the fastest convergence since
// scores are informative; epsilon -> 1 degenerates to proportional
// (passive-like) sampling; the library rejects epsilon = 0 outright because
// it voids the consistency guarantee.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  bench::Banner("Ablation — epsilon-greedy sweep (OASIS, Abt-Buy, K=30)",
                "final E|F-hat - F| at a 5000-label budget per epsilon");

  auto profile = datagen::ProfileByName("Abt-Buy");
  OASIS_CHECK_OK(profile.status());
  auto pool_result = datagen::BuildBenchmarkPool(
      profile.ValueOrDie(), datagen::ClassifierKind::kLinearSvm, false,
      bench::Seed());
  OASIS_CHECK_OK(pool_result.status());
  const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities).ValueOrDie());

  experiments::RunnerOptions options;
  options.repeats = bench::Repeats();
  options.base_seed = bench::Seed();
  options.num_threads = bench::Threads();
  options.trajectory.budget = 5000;
  options.trajectory.checkpoint_every = 5000;

  experiments::TextTable table({"epsilon", "E|F-hat - F|", "std.dev", "defined"});
  for (double epsilon : {1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0}) {
    OasisOptions oasis_options;
    oasis_options.epsilon = epsilon;
    auto curve = experiments::RunErrorCurve(
        experiments::MakeOasisSpec(oasis_options, strata), pool.scored, oracle,
        pool.true_measures.f_alpha, options);
    OASIS_CHECK_OK(curve.status());
    const experiments::ErrorCurve& c = curve.ValueOrDie();
    table.AddRow({experiments::FormatScientific(epsilon, 0),
                  experiments::FormatDouble(c.mean_abs_error.back(), 5),
                  experiments::FormatDouble(c.stddev.back(), 5),
                  experiments::FormatDouble(c.frac_defined.back(), 2)});
    std::printf("  epsilon=%g done\n", epsilon);
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print(std::cout);

  // epsilon = 0 must be rejected at construction (consistency guard).
  GroundTruthOracle guard_oracle(pool.truth);
  LabelCache labels(&guard_oracle);
  OasisOptions zero;
  zero.epsilon = 0.0;
  auto rejected =
      OasisSampler::Create(&pool.scored, &labels, strata, zero, Rng(1));
  std::printf("\nepsilon = 0 rejected as expected: %s\n",
              rejected.ok() ? "NO (BUG!)" : rejected.status().ToString().c_str());
  return 0;
}
