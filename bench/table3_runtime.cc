// Table 3 harness: CPU time per run and per iteration for the cora pool.
//
// Two IS rows are reported:
//  * "IS (linear)" reproduces the paper's implementation, which draws from
//    the N-item instrumental distribution with an O(N) scan per draw — this
//    is the row whose time scales linearly in the pool size and lands an
//    order of magnitude above OASIS;
//  * "IS (alias)" is this library's production backend (O(1) draws), shown
//    as the engineering fix for the scaling problem the paper observed.
//
// Strata precomputation is excluded, matching the paper's protocol.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/timing.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  bench::Banner("Table 3 — CPU times for the cora experiment",
                "20,000 iterations per run; avg over repeats; std::clock CPU "
                "time. Shape to verify: IS(linear) >> OASIS > Stratified > "
                "Passive per iteration.");

  auto profile = datagen::ProfileByName("cora");
  OASIS_CHECK_OK(profile.status());
  std::printf("building cora pool (~328k pairs)...\n");
  std::fflush(stdout);
  auto pool_result = datagen::BuildBenchmarkPool(
      profile.ValueOrDie(), datagen::ClassifierKind::kLinearSvm,
      /*calibrated=*/false, bench::Seed());
  OASIS_CHECK_OK(pool_result.status());
  const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
  GroundTruthOracle oracle(pool.truth);

  // 100k iterations give the nanosecond-clock enough signal on the O(1)
  // methods; IS (linear) is separately capped below.
  const int64_t iterations = bench::EnvInt("OASIS_TIMING_ITERS", 100000);
  const int repeats = bench::EnvInt("OASIS_TIMING_REPEATS", 3);

  std::vector<experiments::MethodSpec> methods;
  methods.push_back(experiments::MakePassiveSpec(0.5));
  {
    ImportanceOptions linear;
    linear.backend = SamplingBackend::kLinearScan;
    experiments::MethodSpec spec = experiments::MakeImportanceSpec(linear);
    spec.name = "IS (linear)";
    methods.push_back(std::move(spec));
  }
  {
    experiments::MethodSpec spec =
        experiments::MakeImportanceSpec(ImportanceOptions{});
    spec.name = "IS (alias)";
    methods.push_back(std::move(spec));
  }
  for (size_t k : {30u, 60u, 120u}) {
    auto strata = std::make_shared<const Strata>(
        StratifyCsf(pool.scored.scores, k, pool.scored.scores_are_probabilities).ValueOrDie());
    methods.push_back(experiments::MakeOasisSpec(OasisOptions{}, strata));
  }
  {
    auto strata = std::make_shared<const Strata>(
        StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities).ValueOrDie());
    methods.push_back(experiments::MakeStratifiedSpec(0.5, strata));
  }

  experiments::TextTable table({"sampling method", "avg CPU/run (s)",
                                "avg CPU/iteration (s)", "setup (s)"});
  for (const experiments::MethodSpec& method : methods) {
    // IS(linear) at 20k iterations over 328k items is ~6.5e9 scans; trim its
    // iteration count and report the per-iteration figure, which is the
    // quantity the paper's table compares.
    const int64_t iters =
        method.name == "IS (linear)" ? std::min<int64_t>(iterations, 2000)
                                     : iterations;
    auto timing = experiments::TimeMethod(method, pool.scored, oracle, iters,
                                          repeats, bench::Seed());
    OASIS_CHECK_OK(timing.status());
    const experiments::TimingResult& t = timing.ValueOrDie();
    // Scale the per-run figure to the common iteration count for
    // comparability.
    const double per_run =
        t.cpu_seconds_per_iteration * static_cast<double>(iterations);
    table.AddRow({method.name, experiments::FormatDouble(per_run, 3),
                  experiments::FormatScientific(t.cpu_seconds_per_iteration, 3),
                  experiments::FormatDouble(t.cpu_setup_seconds, 3)});
    std::printf("  timed %s\n", method.name.c_str());
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
