// Figure 5 harness: expected absolute error in F1/2 after 5000 labels for
// five classifier families (NN, AdaBoost, LR, L-SVM, RBF-SVM) trained on the
// Abt-Buy profile, for each estimation method, with ~95% confidence
// intervals. The paper's shape: OASIS lands roughly an order of magnitude
// below IS across classifiers; Passive/Stratified trail far behind.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  bench::Banner(
      "Figure 5 — E|F-hat - F| after 5000 labels, five classifiers (Abt-Buy)",
      "cells: mean abs err +- 95% CI over repeats");

  auto profile = datagen::ProfileByName("Abt-Buy");
  OASIS_CHECK_OK(profile.status());

  const datagen::ClassifierKind kinds[] = {
      datagen::ClassifierKind::kMlp, datagen::ClassifierKind::kAdaBoost,
      datagen::ClassifierKind::kLogisticRegression,
      datagen::ClassifierKind::kLinearSvm, datagen::ClassifierKind::kRbfSvm};

  experiments::TextTable table(
      {"classifier", "true F1/2", "Passive", "Stratified", "IS", "OASIS-30"});

  for (datagen::ClassifierKind kind : kinds) {
    std::printf("building %s pool...\n",
                datagen::ClassifierKindName(kind).c_str());
    std::fflush(stdout);
    auto pool_result = datagen::BuildBenchmarkPool(profile.ValueOrDie(), kind,
                                                   /*calibrated=*/false,
                                                   bench::Seed());
    OASIS_CHECK_OK(pool_result.status());
    const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
    GroundTruthOracle oracle(pool.truth);

    experiments::RunnerOptions options;
    options.repeats = bench::Repeats();
    options.base_seed = bench::Seed();
    options.num_threads = bench::Threads();
    options.trajectory.budget = 5000;
    options.trajectory.checkpoint_every = 5000;

    auto strata = std::make_shared<const Strata>(
        StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities).ValueOrDie());

    std::vector<std::string> row{datagen::ClassifierKindName(kind),
                                 experiments::FormatDouble(
                                     pool.true_measures.f_alpha, 3)};
    for (const experiments::MethodSpec& spec :
         {experiments::MakePassiveSpec(0.5),
          experiments::MakeStratifiedSpec(0.5, strata),
          experiments::MakeImportanceSpec(ImportanceOptions{}),
          experiments::MakeOasisSpec(OasisOptions{}, strata)}) {
      auto summary = experiments::RunFinalError(
          spec, pool.scored, oracle, pool.true_measures.f_alpha, options);
      OASIS_CHECK_OK(summary.status());
      const experiments::FinalErrorSummary& s = summary.ValueOrDie();
      row.push_back(experiments::FormatDouble(s.mean_abs_error, 4) + " +- " +
                    experiments::FormatDouble(s.ci_half_width, 4));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
