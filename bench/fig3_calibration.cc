// Figure 3 harness: calibrated vs uncalibrated similarity scores for the
// static IS sampler and for OASIS (K = 60), on the Abt-Buy and DBLP-ACM
// pools. The paper's finding: calibration helps IS substantially (its static
// instrumental distribution depends on score quality), while OASIS degrades
// much less because it learns the oracle probabilities from incoming labels.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  bench::Banner(
      "Figure 3 — calibrated vs uncalibrated scores (IS and OASIS, K=60)",
      "four curves per pool: IS uncal., OASIS uncal., IS cal., OASIS cal.");

  for (const char* pool_name : {"Abt-Buy", "DBLP-ACM"}) {
    auto profile = datagen::ProfileByName(pool_name);
    OASIS_CHECK_OK(profile.status());
    const int64_t budget = std::string(pool_name) == "Abt-Buy" ? 8000 : 3000;

    std::printf("### pool: %s (budget %lld)\n", pool_name,
                static_cast<long long>(budget));
    std::fflush(stdout);

    std::vector<experiments::ErrorCurve> curves;
    for (const bool calibrated : {false, true}) {
      auto pool_result = datagen::BuildBenchmarkPool(
          profile.ValueOrDie(), datagen::ClassifierKind::kLinearSvm, calibrated,
          bench::Seed());
      OASIS_CHECK_OK(pool_result.status());
      const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
      GroundTruthOracle oracle(pool.truth);

      experiments::RunnerOptions options;
      options.repeats = bench::Repeats();
      options.base_seed = bench::Seed();
      options.num_threads = bench::Threads();
      options.trajectory.budget = budget;
      options.trajectory.checkpoint_every = budget / 20;

      auto strata = std::make_shared<const Strata>(
          StratifyCsf(pool.scored.scores, 60, pool.scored.scores_are_probabilities).ValueOrDie());

      const char* tag = calibrated ? "cal." : "uncal.";
      {
        auto curve = experiments::RunErrorCurve(
            experiments::MakeImportanceSpec(ImportanceOptions{}), pool.scored,
            oracle, pool.true_measures.f_alpha, options);
        OASIS_CHECK_OK(curve.status());
        curves.push_back(std::move(curve).ValueOrDie());
        curves.back().method = std::string("IS ") + tag;
      }
      {
        auto curve = experiments::RunErrorCurve(
            experiments::MakeOasisSpec(OasisOptions{}, strata), pool.scored,
            oracle, pool.true_measures.f_alpha, options);
        OASIS_CHECK_OK(curve.status());
        curves.push_back(std::move(curve).ValueOrDie());
        curves.back().method = std::string("OASIS ") + tag;
      }
      std::printf("  %s scores done (true F = %.4f)\n", tag,
                  pool.true_measures.f_alpha);
      std::fflush(stdout);
    }

    std::printf("\n");
    experiments::PrintCurves(std::cout, curves, 0.95, 16);

    // Summary: final-budget error degradation from calibrated -> raw scores.
    const double is_uncal = curves[0].mean_abs_error.back();
    const double oasis_uncal = curves[1].mean_abs_error.back();
    const double is_cal = curves[2].mean_abs_error.back();
    const double oasis_cal = curves[3].mean_abs_error.back();
    std::printf(
        "\nfinal abs.err — IS: %.4f (uncal.) vs %.4f (cal.)  [x%.1f worse raw]\n"
        "            OASIS: %.4f (uncal.) vs %.4f (cal.)  [x%.1f worse raw]\n\n",
        is_uncal, is_cal, is_cal > 0 ? is_uncal / is_cal : 0.0, oasis_uncal,
        oasis_cal, oasis_cal > 0 ? oasis_uncal / oasis_cal : 0.0);
  }
  return 0;
}
