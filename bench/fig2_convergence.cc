// Figure 2 harness: expected absolute error and standard deviation of the
// F1/2 estimate as a function of label budget, for Passive / Stratified /
// static IS / OASIS (K = 30, 60, 120; K = 10, 20, 40 on tweets100k), over
// all six evaluation pools — the paper's headline comparison.
//
// The shape to verify against the paper: OASIS converges with the fewest
// labels everywhere except cora (mild imbalance) where methods are close;
// Passive/Stratified trail badly under extreme imbalance; IS sits between.
//
// Runtime: scales with OASIS_REPEATS (default 50; the paper used 1000).
// OASIS_POOLS can restrict to a comma-free substring match, e.g.
// OASIS_POOLS=Abt-Buy ./fig2_convergence

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/metrics.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

using namespace oasis;

namespace {

int64_t BudgetFor(const std::string& pool_name) {
  // Budgets mirror the x-axis extents of the paper's Figure 2.
  if (pool_name == "Amazon-GoogleProducts") return 40000;
  if (pool_name == "restaurant") return 20000;
  if (pool_name == "DBLP-ACM") return 10000;
  if (pool_name == "Abt-Buy") return 20000;
  if (pool_name == "cora") return 20000;
  return 5000;  // tweets100k
}

std::vector<size_t> OasisKsFor(const std::string& pool_name) {
  if (pool_name == "tweets100k") return {10, 20, 40};
  return {30, 60, 120};
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 2 — E|F-hat - F| and std.dev vs label budget, six pools",
      "methods: Passive, Stratified(K=30), IS, OASIS(K=30/60/120); alpha=1/2, "
      "epsilon=1e-3, eta=2K. Rows print '-' until >=95% of repeats have a "
      "defined estimate, as in the paper's plots.");

  const char* filter = std::getenv("OASIS_POOLS");

  for (const datagen::DatasetProfile& profile : datagen::StandardProfiles()) {
    if (filter != nullptr && *filter != '\0' &&
        profile.name.find(filter) == std::string::npos) {
      continue;
    }
    std::printf("### pool: %s\n", profile.name.c_str());
    std::fflush(stdout);
    auto pool_result = datagen::BuildBenchmarkPool(
        profile, datagen::ClassifierKind::kLinearSvm, /*calibrated=*/false,
        bench::Seed());
    if (!pool_result.ok()) {
      std::fprintf(stderr, "pool build failed: %s\n",
                   pool_result.status().ToString().c_str());
      return 1;
    }
    const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
    std::printf("true F1/2 = %.4f (precision %.3f, recall %.3f)\n",
                pool.true_measures.f_alpha, pool.true_measures.precision,
                pool.true_measures.recall);

    GroundTruthOracle oracle(pool.truth);
    experiments::RunnerOptions options;
    options.repeats = bench::Repeats();
    options.base_seed = bench::Seed();
    options.num_threads = bench::Threads();
    options.trajectory.budget = BudgetFor(profile.name);
    options.trajectory.checkpoint_every = options.trajectory.budget / 20;

    // Shared stratification per K (Stratified baseline uses K=30 per paper).
    auto strata30 = std::make_shared<const Strata>(
        StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities).ValueOrDie());

    std::vector<experiments::MethodSpec> methods;
    methods.push_back(experiments::MakePassiveSpec(0.5));
    methods.push_back(experiments::MakeStratifiedSpec(0.5, strata30));
    methods.push_back(experiments::MakeImportanceSpec(ImportanceOptions{}));
    for (size_t k : OasisKsFor(profile.name)) {
      auto strata = std::make_shared<const Strata>(
          StratifyCsf(pool.scored.scores, k, pool.scored.scores_are_probabilities).ValueOrDie());
      methods.push_back(experiments::MakeOasisSpec(OasisOptions{}, strata));
    }

    std::vector<experiments::ErrorCurve> curves;
    for (const experiments::MethodSpec& method : methods) {
      auto curve = experiments::RunErrorCurve(method, pool.scored, oracle,
                                              pool.true_measures.f_alpha, options);
      if (!curve.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method.name.c_str(),
                     curve.status().ToString().c_str());
        return 1;
      }
      curves.push_back(std::move(curve).ValueOrDie());
      std::printf("  %-12s done (first defined at %lld labels)\n",
                  curves.back().method.c_str(),
                  static_cast<long long>(
                      experiments::FirstDefinedBudget(curves.back())));
      std::fflush(stdout);
    }

    std::printf("\n");
    experiments::PrintCurves(std::cout, curves, 0.95, 20);

    // Label savings at two error levels, vs Passive (the paper's headline
    // "83% fewer labels" style statistic). Under extreme imbalance Passive
    // often cannot reach the tighter level at all within the budget.
    for (const double target : {0.1, 0.05, 0.025}) {
      const int64_t passive_budget =
          experiments::BudgetToReachError(curves[0], target);
      std::printf("\nlabels to reach abs.err <= %.3f:\n", target);
      for (const experiments::ErrorCurve& curve : curves) {
        const int64_t budget = experiments::BudgetToReachError(curve, target);
        if (budget < 0) {
          std::printf("  %-12s  not reached within budget\n",
                      curve.method.c_str());
        } else if (passive_budget > 0) {
          std::printf("  %-12s  %7lld  (saving vs Passive: %.0f%%)\n",
                      curve.method.c_str(), static_cast<long long>(budget),
                      100.0 * (1.0 - static_cast<double>(budget) /
                                         static_cast<double>(passive_budget)));
        } else {
          std::printf("  %-12s  %7lld\n", curve.method.c_str(),
                      static_cast<long long>(budget));
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
