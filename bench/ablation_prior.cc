// Ablation: prior strength eta and the Remark-4 retroactive prior decay.
// Sweeps eta with decay on/off on the Abt-Buy profile. Expected shape: with
// decay, performance is flat across eta (robustness claim of Remark 4);
// without decay, large eta (a stubborn, partially wrong score-based prior)
// slows convergence of the instrumental distribution and widens error.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  bench::Banner("Ablation — prior strength eta x Remark-4 decay (Abt-Buy, K=30)",
                "final E|F-hat - F| at a 5000-label budget");

  auto profile = datagen::ProfileByName("Abt-Buy");
  OASIS_CHECK_OK(profile.status());
  auto pool_result = datagen::BuildBenchmarkPool(
      profile.ValueOrDie(), datagen::ClassifierKind::kLinearSvm, false,
      bench::Seed());
  OASIS_CHECK_OK(pool_result.status());
  const datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 30, pool.scored.scores_are_probabilities).ValueOrDie());

  experiments::RunnerOptions options;
  options.repeats = bench::Repeats();
  options.base_seed = bench::Seed();
  options.num_threads = bench::Threads();
  options.trajectory.budget = 5000;
  options.trajectory.checkpoint_every = 5000;

  experiments::TextTable table(
      {"eta", "decay on: E|err|", "decay on: std", "decay off: E|err|",
       "decay off: std"});
  for (double eta : {1.0, 10.0, 60.0, 300.0, 2000.0}) {
    std::vector<std::string> row{experiments::FormatDouble(eta, 0)};
    for (bool decay : {true, false}) {
      OasisOptions oasis_options;
      oasis_options.prior_strength = eta;
      oasis_options.decay_prior = decay;
      auto curve = experiments::RunErrorCurve(
          experiments::MakeOasisSpec(oasis_options, strata), pool.scored, oracle,
          pool.true_measures.f_alpha, options);
      OASIS_CHECK_OK(curve.status());
      const experiments::ErrorCurve& c = curve.ValueOrDie();
      row.push_back(experiments::FormatDouble(c.mean_abs_error.back(), 5));
      row.push_back(experiments::FormatDouble(c.stddev.back(), 5));
    }
    table.AddRow(std::move(row));
    std::printf("  eta=%g done\n", eta);
    std::fflush(stdout);
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
