// Table 1 harness: dataset statistics (size, imbalance ratio, #matches) for
// the six synthetic evaluation datasets, side by side with the paper's
// published values. Datasets are regenerated from scratch here, so the
// "generated" columns are computed, not copied.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"

using namespace oasis;

int main() {
  bench::Banner("Table 1 — datasets in decreasing order of class imbalance",
                "size = |Z| (record pairs), imbalance = non-matches : matches");

  experiments::TextTable table({"dataset", "size", "size(paper)", "imb.ratio",
                                "imb(paper)", "matches", "matches(paper)"});
  for (const datagen::DatasetProfile& profile : datagen::StandardProfiles()) {
    if (profile.direct_scores) {
      // tweets100k has no record-pair structure; report the item counts.
      table.AddRow({"? " + profile.name,
                    experiments::FormatCount(profile.paper_full_size),
                    experiments::FormatCount(profile.paper_full_size),
                    experiments::FormatDouble(1.0, 2),
                    experiments::FormatDouble(profile.paper_imbalance, 2),
                    experiments::FormatCount(profile.paper_full_matches),
                    experiments::FormatCount(profile.paper_full_matches)});
      continue;
    }
    auto dataset = datagen::GenerateDatasetForProfile(profile, bench::Seed());
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    const datagen::ErDataset& d = dataset.ValueOrDie();
    table.AddRow({profile.name, experiments::FormatCount(d.TotalPairs()),
                  experiments::FormatCount(profile.paper_full_size),
                  experiments::FormatDouble(d.ImbalanceRatio(), 2),
                  experiments::FormatDouble(profile.paper_imbalance, 2),
                  experiments::FormatCount(static_cast<int64_t>(d.matches.size())),
                  experiments::FormatCount(profile.paper_full_matches)});
  }
  table.Print(std::cout);
  return 0;
}
