// Deterministic-parallelism contract of the experiment runner: the same
// options must produce bit-identical ErrorCurves for every thread count, and
// match the historical sequential runner exactly (golden values below were
// captured from the pre-ThreadPool implementation at num_threads=1).

#include "experiments/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>

#include "common/thread_pool.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace experiments {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

SyntheticPool GoldenPool() {
  SyntheticPoolOptions options;
  options.size = 2000;
  options.match_fraction = 0.05;
  options.seed = 101;
  return MakeSyntheticPool(options);
}

RunnerOptions GoldenOptions() {
  RunnerOptions options;
  options.repeats = 6;
  options.trajectory.budget = 200;
  options.trajectory.checkpoint_every = 50;
  options.base_seed = 20170626;
  return options;
}

/// Golden curve values captured from the pre-refactor sequential runner
/// (hexfloat, so the comparison is bit-exact). One row per checkpoint:
/// {mean_abs_error, stddev, mean_estimate, frac_defined}.
constexpr double kGoldenTrueF = 0x1.59cf516a98c2cp-1;
constexpr double kGoldenPassive[4][4] = {
    {0x1.529fd4a7f52ap-4, 0x1.a01a8c5358c3dp-4, 0x1.7fa94fea53fa9p-1, 0x1p+0},
    {0x1.da9da9da9daa3p-5, 0x1.30c73561d39f1p-4, 0x1.72ff2ff2ff2ffp-1, 0x1p+0},
    {0x1.9e8e883277c6ap-4, 0x1.e27a6ae161699p-4, 0x1.5d2f1185018ebp-1, 0x1p+0},
    {0x1.33abe95b0316ep-4, 0x1.90f5dd1ce1725p-4, 0x1.5b448cf430913p-1, 0x1p+0},
};
constexpr double kGoldenOasis10[4][4] = {
    {0x1.52771f829df52p-4, 0x1.cb0131656c4d6p-4, 0x1.4c7648d1b1294p-1, 0x1p+0},
    {0x1.71b8be9e6cea4p-4, 0x1.af67bed1307f1p-4, 0x1.57afb97611673p-1, 0x1p+0},
    {0x1.51c441d093feap-4, 0x1.88ad0c108a759p-4, 0x1.4e59f26818edbp-1, 0x1p+0},
    {0x1.78737a328fb3dp-5, 0x1.050df8dcbba92p-4, 0x1.50a266cf0b476p-1, 0x1p+0},
};

void ExpectCurveMatchesGolden(const ErrorCurve& curve,
                              const double golden[4][4]) {
  ASSERT_EQ(curve.budgets.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(curve.mean_abs_error[i], golden[i][0]) << "checkpoint " << i;
    EXPECT_EQ(curve.stddev[i], golden[i][1]) << "checkpoint " << i;
    EXPECT_EQ(curve.mean_estimate[i], golden[i][2]) << "checkpoint " << i;
    EXPECT_EQ(curve.frac_defined[i], golden[i][3]) << "checkpoint " << i;
  }
}

TEST(RunnerParallelTest, MatchesPreRefactorSequentialGolden) {
  SyntheticPool pool = GoldenPool();
  // Guards the golden values against synthetic-pool generation drift.
  ASSERT_EQ(pool.true_measures.f_alpha, kGoldenTrueF);
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());

  for (int threads : {1, 8}) {
    RunnerOptions options = GoldenOptions();
    options.num_threads = threads;
    ErrorCurve passive =
        RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                      pool.true_measures.f_alpha, options)
            .ValueOrDie();
    ExpectCurveMatchesGolden(passive, kGoldenPassive);
    ErrorCurve oasis =
        RunErrorCurve(MakeOasisSpec(OasisOptions{}, strata), pool.scored,
                      oracle, pool.true_measures.f_alpha, options)
            .ValueOrDie();
    EXPECT_EQ(oasis.method, "OASIS-10");
    ExpectCurveMatchesGolden(oasis, kGoldenOasis10);
  }
}

TEST(RunnerParallelTest, BitIdenticalAcrossThreadCounts) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());

  for (const MethodSpec& spec :
       {MakePassiveSpec(0.5), MakeOasisSpec(OasisOptions{}, strata)}) {
    RunnerOptions options;
    options.repeats = 12;
    options.trajectory.budget = 300;
    options.trajectory.checkpoint_every = 100;
    options.base_seed = 4242;

    options.num_threads = 1;
    ErrorCurve reference = RunErrorCurve(spec, pool.scored, oracle,
                                         pool.true_measures.f_alpha, options)
                               .ValueOrDie();
    for (int threads : {2, 8}) {
      options.num_threads = threads;
      ErrorCurve curve = RunErrorCurve(spec, pool.scored, oracle,
                                       pool.true_measures.f_alpha, options)
                             .ValueOrDie();
      ASSERT_EQ(curve.budgets, reference.budgets) << spec.name;
      for (size_t i = 0; i < reference.budgets.size(); ++i) {
        // EXPECT_EQ (not NEAR): bit-identical is the contract.
        EXPECT_EQ(curve.mean_abs_error[i], reference.mean_abs_error[i])
            << spec.name << " threads=" << threads << " checkpoint " << i;
        EXPECT_EQ(curve.stddev[i], reference.stddev[i])
            << spec.name << " threads=" << threads << " checkpoint " << i;
        EXPECT_EQ(curve.mean_estimate[i], reference.mean_estimate[i])
            << spec.name << " threads=" << threads << " checkpoint " << i;
        EXPECT_EQ(curve.frac_defined[i], reference.frac_defined[i])
            << spec.name << " threads=" << threads << " checkpoint " << i;
      }
    }
  }
}

TEST(RunnerParallelTest, ThrowingFactoryPropagatesToCaller) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  MethodSpec throwing;
  throwing.name = "Throwing";
  throwing.factory = [](const ScoredPool*, LabelCache*,
                        Rng) -> Result<std::unique_ptr<Sampler>> {
    throw std::runtime_error("factory exploded");
  };
  RunnerOptions options;
  options.repeats = 16;
  options.num_threads = 4;
  options.trajectory.budget = 100;
  options.trajectory.checkpoint_every = 50;
  EXPECT_THROW(
      (void)RunErrorCurve(throwing, pool.scored, oracle, 0.5, options),
      std::runtime_error);
}

TEST(RunnerParallelTest, FailingFactoryReturnsErrorStatus) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  MethodSpec failing;
  failing.name = "Failing";
  failing.factory = [](const ScoredPool*, LabelCache*,
                       Rng) -> Result<std::unique_ptr<Sampler>> {
    return Status::Internal("no sampler for you");
  };
  RunnerOptions options;
  options.repeats = 16;
  options.num_threads = 4;
  options.trajectory.budget = 100;
  options.trajectory.checkpoint_every = 50;
  auto result = RunErrorCurve(failing, pool.scored, oracle, 0.5, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.status().message(), "no sampler for you");
}

TEST(RunnerParallelTest, CancellationMidRunReturnsCancelled) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  CancellationToken token;
  std::atomic<int> seen{0};
  RunnerOptions options;
  options.repeats = 64;
  options.num_threads = 2;
  options.trajectory.budget = 200;
  options.trajectory.checkpoint_every = 100;
  options.cancel = &token;
  options.progress = [&](int completed, int) {
    seen.fetch_add(1);
    if (completed >= 2) token.RequestCancel();
  };
  auto result =
      RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle, 0.5, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // The run stopped early: nowhere near all repeats finished.
  EXPECT_LT(seen.load(), 64);
}

TEST(RunnerParallelTest, PreCancelledTokenReturnsCancelledImmediately) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  CancellationToken token;
  token.RequestCancel();
  RunnerOptions options;
  options.repeats = 8;
  options.cancel = &token;
  options.trajectory.budget = 100;
  options.trajectory.checkpoint_every = 50;
  auto result =
      RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle, 0.5, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(RunnerParallelTest, ProgressReportsEveryRepeatExactlyOnce) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  std::mutex mutex;
  std::multiset<int> completions;
  int total_seen = 0;
  RunnerOptions options;
  options.repeats = 20;
  options.num_threads = 4;
  options.trajectory.budget = 100;
  options.trajectory.checkpoint_every = 50;
  options.progress = [&](int completed, int total) {
    std::lock_guard<std::mutex> lock(mutex);
    completions.insert(completed);
    total_seen = total;
  };
  ASSERT_TRUE(RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle, 0.5,
                            options)
                  .ok());
  EXPECT_EQ(total_seen, 20);
  ASSERT_EQ(completions.size(), 20u);
  // The running count hits each value in [1, repeats] exactly once.
  int expected = 1;
  for (int value : completions) EXPECT_EQ(value, expected++);
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
