#include "experiments/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace oasis {
namespace experiments {
namespace {

/// Unique temp path per test, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_("/tmp/oasis_csv_test_" + tag + ".csv") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ScoredPool MakePool() {
  ScoredPool pool;
  pool.scores = {-1.25, 0.5, 2.75};
  pool.predictions = {0, 0, 1};
  pool.threshold = 1.0;
  return pool;
}

TEST(SplitCsvLineTest, Basics) {
  const std::vector<std::string> cells = SplitCsvLine("a,b,,c");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "");
  EXPECT_EQ(SplitCsvLine("solo").size(), 1u);
  // Windows line endings are stripped.
  EXPECT_EQ(SplitCsvLine("x,y\r")[1], "y");
}

TEST(PoolCsvTest, RoundTripWithTruth) {
  TempFile file("roundtrip");
  ScoredPool pool = MakePool();
  const std::vector<uint8_t> truth{0, 1, 1};
  ASSERT_TRUE(WritePoolCsv(file.path(), pool, &truth).ok());

  LoadedPool loaded = ReadPoolCsv(file.path()).ValueOrDie();
  ASSERT_TRUE(loaded.has_truth);
  EXPECT_EQ(loaded.pool.scores, pool.scores);
  EXPECT_EQ(loaded.pool.predictions, pool.predictions);
  EXPECT_EQ(loaded.truth, truth);
  EXPECT_FALSE(loaded.pool.scores_are_probabilities);  // Scores outside [0,1].
}

TEST(PoolCsvTest, RoundTripWithoutTruth) {
  TempFile file("notruth");
  ScoredPool pool = MakePool();
  ASSERT_TRUE(WritePoolCsv(file.path(), pool).ok());
  LoadedPool loaded = ReadPoolCsv(file.path()).ValueOrDie();
  EXPECT_FALSE(loaded.has_truth);
  EXPECT_TRUE(loaded.truth.empty());
  EXPECT_EQ(loaded.pool.scores, pool.scores);
}

TEST(PoolCsvTest, UnitIntervalScoresDetectedAsProbabilities) {
  TempFile file("probs");
  ScoredPool pool;
  pool.scores = {0.1, 0.6, 0.9};
  pool.predictions = {0, 1, 1};
  pool.scores_are_probabilities = true;
  pool.threshold = 0.5;
  ASSERT_TRUE(WritePoolCsv(file.path(), pool).ok());
  LoadedPool loaded = ReadPoolCsv(file.path()).ValueOrDie();
  EXPECT_TRUE(loaded.pool.scores_are_probabilities);
  EXPECT_DOUBLE_EQ(loaded.pool.threshold, 0.5);
}

TEST(PoolCsvTest, ReadRejectsBadFiles) {
  EXPECT_FALSE(ReadPoolCsv("/tmp/oasis_csv_test_does_not_exist.csv").ok());

  TempFile file("bad");
  {
    std::ofstream out(file.path());
    out << "wrong,header\n1,2\n";
  }
  EXPECT_FALSE(ReadPoolCsv(file.path()).ok());

  {
    std::ofstream out(file.path());
    out << "score,prediction\nnot_a_number,1\n";
  }
  EXPECT_FALSE(ReadPoolCsv(file.path()).ok());

  {
    std::ofstream out(file.path());
    out << "score,prediction\n0.5,7\n";
  }
  EXPECT_FALSE(ReadPoolCsv(file.path()).ok());

  {
    std::ofstream out(file.path());
    out << "score,prediction\n";  // Header only.
  }
  EXPECT_FALSE(ReadPoolCsv(file.path()).ok());
}

TEST(PoolCsvTest, WriteRejectsMismatchedTruth) {
  TempFile file("mismatch");
  ScoredPool pool = MakePool();
  const std::vector<uint8_t> short_truth{1};
  EXPECT_FALSE(WritePoolCsv(file.path(), pool, &short_truth).ok());
}

TEST(CurvesCsvTest, LongFormatOutput) {
  TempFile file("curves");
  ErrorCurve curve;
  curve.method = "OASIS-30";
  curve.budgets = {100, 200};
  curve.mean_abs_error = {0.5, 0.25};
  curve.stddev = {0.4, 0.2};
  curve.mean_estimate = {0.6, 0.62};
  curve.frac_defined = {0.9, 1.0};
  ASSERT_TRUE(WriteCurvesCsv(file.path(), {curve}).ok());

  std::ifstream in(file.path());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "method,labels,mean_abs_error,stddev,mean_estimate,frac_defined");
  std::getline(in, line);
  EXPECT_EQ(SplitCsvLine(line)[0], "OASIS-30");
  EXPECT_EQ(SplitCsvLine(line)[1], "100");
  int rows = 1;
  while (std::getline(in, line) && !line.empty()) ++rows;
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
