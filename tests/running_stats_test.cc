#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace oasis {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance_sample(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.standard_error(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(4.2);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.2);
  EXPECT_DOUBLE_EQ(stats.variance_sample(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.2);
  EXPECT_DOUBLE_EQ(stats.max(), 4.2);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance_population(), 4.0);
  EXPECT_NEAR(stats.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  std::vector<double> values{1.5, -2.0, 3.7, 0.0, 8.8, -4.1, 2.2};
  RunningStats all;
  for (double v : values) all.Add(v);

  RunningStats left;
  RunningStats right;
  for (size_t i = 0; i < values.size(); ++i) {
    (i < 3 ? left : right).Add(values[i]);
  }
  left.Merge(right);

  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance_sample(), all.variance_sample(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.Add(1.0);
  b.Add(3.0);
  a.Merge(b);  // Empty absorbs non-empty.
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats empty;
  a.Merge(empty);  // Non-empty unchanged by empty.
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(RunningStatsTest, StandardErrorShrinksWithN) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.Add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.Add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.standard_error(), large.standard_error());
}

TEST(RunningStatsTest, NumericalStabilityWithLargeOffset) {
  // Welford should survive a huge common offset that naive sum-of-squares
  // would destroy.
  RunningStats stats;
  const double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) stats.Add(x);
  EXPECT_NEAR(stats.variance_sample(), 1.0, 1e-6);
}

}  // namespace
}  // namespace oasis
