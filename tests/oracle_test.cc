#include "oracle/ground_truth_oracle.h"
#include "oracle/noisy_oracle.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(GroundTruthOracleTest, ReturnsExactTruth) {
  GroundTruthOracle oracle({1, 0, 1, 0, 0});
  Rng rng(1);
  EXPECT_TRUE(oracle.Label(0, rng));
  EXPECT_FALSE(oracle.Label(1, rng));
  EXPECT_TRUE(oracle.Label(2, rng));
  EXPECT_TRUE(oracle.deterministic());
  EXPECT_EQ(oracle.num_items(), 5);
  EXPECT_EQ(oracle.num_positives(), 2);
}

TEST(GroundTruthOracleTest, TrueProbabilityIsDegenerate) {
  GroundTruthOracle oracle({1, 0});
  EXPECT_DOUBLE_EQ(oracle.TrueProbability(0), 1.0);
  EXPECT_DOUBLE_EQ(oracle.TrueProbability(1), 0.0);
}

TEST(NoisyOracleTest, RejectsBadProbabilities) {
  EXPECT_FALSE(NoisyOracle::FromProbabilities({}).ok());
  EXPECT_FALSE(NoisyOracle::FromProbabilities({0.5, 1.5}).ok());
  EXPECT_FALSE(NoisyOracle::FromProbabilities({-0.1}).ok());
}

TEST(NoisyOracleTest, DegenerateProbabilitiesAreDeterministic) {
  NoisyOracle oracle = NoisyOracle::FromProbabilities({1.0, 0.0}).ValueOrDie();
  EXPECT_TRUE(oracle.deterministic());
}

TEST(NoisyOracleTest, IntermediateProbabilitiesAreNoisy) {
  NoisyOracle oracle = NoisyOracle::FromProbabilities({0.3}).ValueOrDie();
  EXPECT_FALSE(oracle.deterministic());
  Rng rng(9);
  int ones = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ones += oracle.Label(0, rng) ? 1 : 0;
  EXPECT_NEAR(ones / static_cast<double>(n), 0.3, 0.01);
}

TEST(NoisyOracleTest, FlipNoiseMatchesRates) {
  const std::vector<uint8_t> truth{1, 0};
  NoisyOracle oracle =
      NoisyOracle::FromTruthWithFlipNoise(truth, 0.2).ValueOrDie();
  EXPECT_DOUBLE_EQ(oracle.TrueProbability(0), 0.8);
  EXPECT_DOUBLE_EQ(oracle.TrueProbability(1), 0.2);
  EXPECT_FALSE(oracle.deterministic());
}

TEST(NoisyOracleTest, RejectsBadFlipRate) {
  const std::vector<uint8_t> truth{1};
  EXPECT_FALSE(NoisyOracle::FromTruthWithFlipNoise(truth, 0.5).ok());
  EXPECT_FALSE(NoisyOracle::FromTruthWithFlipNoise(truth, -0.1).ok());
  EXPECT_FALSE(NoisyOracle::FromTruthWithFlipNoise({}, 0.1).ok());
}

TEST(NoisyOracleTest, ZeroFlipRateIsDeterministic) {
  const std::vector<uint8_t> truth{1, 0, 1};
  NoisyOracle oracle =
      NoisyOracle::FromTruthWithFlipNoise(truth, 0.0).ValueOrDie();
  EXPECT_TRUE(oracle.deterministic());
  Rng rng(2);
  EXPECT_TRUE(oracle.Label(0, rng));
  EXPECT_FALSE(oracle.Label(1, rng));
}

}  // namespace
}  // namespace oasis
