#include "core/ais_estimator.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(AisEstimatorTest, UndefinedBeforeAnyPositiveMass) {
  AisEstimator estimator(0.5);
  EXPECT_FALSE(estimator.Snapshot().f_defined);
  estimator.Add(1.0, false, false);  // True negative adds nothing.
  EXPECT_FALSE(estimator.Snapshot().f_defined);
  EXPECT_EQ(estimator.observations(), 1);
}

TEST(AisEstimatorTest, WeightedSumsMatchEquationThree) {
  AisEstimator estimator(0.5);
  estimator.Add(2.0, true, true);    // num += 2, den_pred += 2, den_true += 2
  estimator.Add(1.0, false, true);   // den_pred += 1
  estimator.Add(4.0, true, false);   // den_true += 4
  const EstimateSnapshot snap = estimator.Snapshot();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, 2.0 / (0.5 * 3.0 + 0.5 * 6.0), 1e-12);
  EXPECT_NEAR(snap.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(snap.recall, 2.0 / 6.0, 1e-12);
}

TEST(AisEstimatorTest, PrecisionUndefinedWithoutPredictedPositives) {
  AisEstimator estimator(0.5);
  estimator.Add(1.0, true, false);
  const EstimateSnapshot snap = estimator.Snapshot();
  EXPECT_FALSE(snap.precision_defined);
  EXPECT_TRUE(snap.recall_defined);
  EXPECT_TRUE(snap.f_defined);  // (1-alpha) den_true > 0.
  EXPECT_DOUBLE_EQ(snap.recall, 0.0);
}

TEST(AisEstimatorTest, AlphaOneReducesToPrecision) {
  AisEstimator estimator(1.0);
  estimator.Add(1.0, true, true);
  estimator.Add(1.0, false, true);
  estimator.Add(1.0, true, false);  // Ignored by precision denominator.
  const EstimateSnapshot snap = estimator.Snapshot();
  EXPECT_NEAR(snap.f_alpha, snap.precision, 1e-12);
  EXPECT_NEAR(snap.precision, 0.5, 1e-12);
}

TEST(AisEstimatorTest, AlphaZeroReducesToRecall) {
  AisEstimator estimator(0.0);
  estimator.Add(1.0, true, true);
  estimator.Add(3.0, true, false);
  const EstimateSnapshot snap = estimator.Snapshot();
  EXPECT_NEAR(snap.f_alpha, snap.recall, 1e-12);
  EXPECT_NEAR(snap.recall, 0.25, 1e-12);
}

TEST(AisEstimatorTest, FAlphaOrUsesFallbackUntilDefined) {
  AisEstimator estimator(0.5);
  EXPECT_DOUBLE_EQ(estimator.FAlphaOr(0.42), 0.42);
  estimator.Add(1.0, true, true);
  EXPECT_DOUBLE_EQ(estimator.FAlphaOr(0.42), 1.0);
}

TEST(AisEstimatorTest, ZeroWeightObservationsContributeNothing) {
  AisEstimator estimator(0.5);
  estimator.Add(0.0, true, true);
  // All sums remain zero -> still undefined.
  EXPECT_FALSE(estimator.Snapshot().f_defined);
}

TEST(AisEstimatorTest, WeightsScaleInvariance) {
  // Scaling all weights by a constant must not change the estimate (Eqn. 3
  // is a ratio).
  AisEstimator a(0.5);
  AisEstimator b(0.5);
  const double data[][3] = {
      {1.0, 1, 1}, {2.0, 0, 1}, {0.5, 1, 0}, {3.0, 1, 1}, {1.5, 0, 0}};
  for (const auto& row : data) {
    a.Add(row[0], row[1] != 0, row[2] != 0);
    b.Add(10.0 * row[0], row[1] != 0, row[2] != 0);
  }
  EXPECT_NEAR(a.Snapshot().f_alpha, b.Snapshot().f_alpha, 1e-12);
}

}  // namespace
}  // namespace oasis
