#include "datagen/corruptor.h"

#include <gtest/gtest.h>

#include "datagen/entity_generator.h"
#include "er/similarity.h"
#include "er/tokenize.h"

namespace oasis {
namespace datagen {
namespace {

TEST(CorruptTextTest, ZeroRatesAreIdentity) {
  CorruptionOptions options;
  options.char_edit_rate = 0.0;
  options.token_drop_rate = 0.0;
  options.token_swap_rate = 0.0;
  options.abbreviation_rate = 0.0;
  Rng rng(1);
  EXPECT_EQ(CorruptText("hello cruel world", options, rng), "hello cruel world");
}

TEST(CorruptTextTest, NeverProducesEmptyFromNonEmpty) {
  CorruptionOptions options;
  options.token_drop_rate = 0.95;  // Aggressive drops.
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(CorruptText("alpha beta gamma delta", options, rng).empty());
  }
}

TEST(CorruptTextTest, ModerateCorruptionKeepsStringsSimilar) {
  CorruptionOptions options;  // Defaults: moderate.
  Rng rng(3);
  double total_sim = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const std::string original = "panasonic lumix digital camera dmc fz80";
    const std::string corrupted = CorruptText(original, options, rng);
    total_sim += er::TrigramJaccard(original, corrupted);
  }
  EXPECT_GT(total_sim / n, 0.5);  // Still recognisably the same string.
  EXPECT_LT(total_sim / n, 1.0);  // But actually corrupted.
}

TEST(CorruptTextTest, HeavierRatesLowerSimilarity) {
  CorruptionOptions light;
  light.char_edit_rate = 0.05;
  light.token_drop_rate = 0.02;
  CorruptionOptions heavy;
  heavy.char_edit_rate = 0.5;
  heavy.token_drop_rate = 0.35;
  heavy.abbreviation_rate = 0.3;

  Rng rng_light(4);
  Rng rng_heavy(4);
  double light_sim = 0.0;
  double heavy_sim = 0.0;
  const int n = 150;
  const std::string original = "international business machines corporation";
  for (int i = 0; i < n; ++i) {
    light_sim += er::TrigramJaccard(original, CorruptText(original, light, rng_light));
    heavy_sim += er::TrigramJaccard(original, CorruptText(original, heavy, rng_heavy));
  }
  EXPECT_GT(light_sim / n, heavy_sim / n + 0.1);
}

TEST(CorruptRecordTest, PreservesArity) {
  EntityGenerator gen(Domain::kECommerce, Rng(5));
  const er::Record record = gen.GenerateEntity();
  CorruptionOptions options;
  Rng rng(6);
  const er::Record corrupted = CorruptRecord(record, gen.schema(), options, rng);
  EXPECT_EQ(corrupted.values.size(), record.values.size());
}

TEST(CorruptRecordTest, MissingRateProducesMissingFields) {
  EntityGenerator gen(Domain::kECommerce, Rng(7));
  CorruptionOptions options;
  options.missing_rate = 0.5;
  Rng rng(8);
  int missing = 0;
  int total = 0;
  for (int i = 0; i < 100; ++i) {
    const er::Record corrupted =
        CorruptRecord(gen.GenerateEntity(), gen.schema(), options, rng);
    for (const auto& value : corrupted.values) {
      missing += value.missing ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(missing / static_cast<double>(total), 0.5, 0.1);
}

TEST(CorruptRecordTest, NumericJitterStaysRelative) {
  EntityGenerator gen(Domain::kECommerce, Rng(9));
  CorruptionOptions options;
  options.numeric_jitter = 0.01;
  options.missing_rate = 0.0;
  options.numeric_rewrite_rate = 0.0;
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const er::Record record = gen.GenerateEntity();
    const er::Record corrupted = CorruptRecord(record, gen.schema(), options, rng);
    const double original = record.values[3].number;
    const double jittered = corrupted.values[3].number;
    EXPECT_NEAR(jittered / original, 1.0, 0.1);
  }
}

TEST(CorruptRecordTest, FieldRewriteDestroysLongTextOnly) {
  EntityGenerator gen(Domain::kECommerce, Rng(11));
  CorruptionOptions options;
  options.field_rewrite_rate = 1.0;  // Always rewrite long-text fields.
  options.missing_rate = 0.0;
  options.char_edit_rate = 0.0;
  options.token_drop_rate = 0.0;
  options.token_swap_rate = 0.0;
  options.abbreviation_rate = 0.0;
  Rng rng(12);
  const er::Record record = gen.GenerateEntity();
  const er::Record corrupted = CorruptRecord(record, gen.schema(), options, rng);
  // Description (long text) is replaced wholesale...
  EXPECT_LT(er::TrigramJaccard(record.values[1].text, corrupted.values[1].text),
            0.35);
  // ...while the identity-bearing name (short text) is untouched by rewrite.
  EXPECT_EQ(record.values[0].text, corrupted.values[0].text);
}

TEST(CorruptRecordTest, MissingInputStaysMissing) {
  er::Schema schema({{"a", er::FieldKind::kShortText}});
  er::Record record;
  record.values.push_back(er::FieldValue::Missing());
  CorruptionOptions options;
  Rng rng(13);
  const er::Record corrupted = CorruptRecord(record, schema, options, rng);
  EXPECT_TRUE(corrupted.values[0].missing);
}

}  // namespace
}  // namespace datagen
}  // namespace oasis
