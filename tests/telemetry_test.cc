// The telemetry subsystem's own contract: registry semantics (idempotent
// registration, labelled families, find-or-nullptr), histogram bucketing,
// the runtime kill switches, trace-span collection, the heartbeat line — and
// the two properties everything else leans on: concurrent increments are
// safe (this test runs under TSan in CI) and telemetry is observe-only, so
// an instrumented run's ErrorCurve is bit-identical with telemetry on or
// off at any thread count.

#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "telemetry/export.h"
#include "telemetry/heartbeat.h"
#include "test_util.h"

namespace oasis {
namespace telemetry {
namespace {

// --- Registry semantics ----------------------------------------------------

TEST(MetricRegistryTest, CounterGaugeBasics) {
  MetricRegistry registry;
  Counter& counter = registry.AddCounter("oasis_test_total", "help");
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);

  Gauge& gauge = registry.AddGauge("oasis_test_gauge", "help");
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(MetricRegistryTest, RegistrationIsIdempotentPerNameAndLabels) {
  MetricRegistry registry;
  Counter& a = registry.AddCounter("oasis_test_total", "help");
  Counter& b = registry.AddCounter("oasis_test_total", "help");
  EXPECT_EQ(&a, &b);  // Same child, stable address.

  Counter& own = registry.AddCounter("oasis_test_kinds_total", "help",
                                     {{"kind", "own"}});
  Counter& steal = registry.AddCounter("oasis_test_kinds_total", "help",
                                       {{"kind", "steal"}});
  EXPECT_NE(&own, &steal);
  own.Add(3);
  steal.Add(1);
  EXPECT_EQ(registry.CounterFamilyTotal("oasis_test_kinds_total"), 4);
  EXPECT_EQ(registry.CounterFamilyTotal("oasis_test_total"), 0);
  EXPECT_EQ(registry.CounterFamilyTotal("oasis_absent_total"), 0);
}

TEST(MetricRegistryTest, RepeatedSessionCyclesRegisterNothingNew) {
  // The app-harness pattern: every TelemetrySession (one per oasis_sweep
  // invocation, one per serve run, ...) re-touches the same instrument names
  // on its way through the instrumented layers. N cycles must behave exactly
  // like one — same child addresses, same family count, values accumulating
  // rather than resetting — or a sweep's later cells would shear off the
  // earlier cells' counts.
  MetricRegistry registry;
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
  for (int cycle = 0; cycle < 3; ++cycle) {
    Counter& c = registry.AddCounter("oasis_test_labels_total", "help");
    Gauge& g = registry.AddGauge("oasis_test_active", "help");
    Histogram& h = registry.AddHistogram("oasis_test_lat", "help", {1.0, 2.0});
    if (cycle == 0) {
      counter = &c;
      gauge = &g;
      histogram = &h;
    }
    EXPECT_EQ(&c, counter);
    EXPECT_EQ(&g, gauge);
    EXPECT_EQ(&h, histogram);
    c.Increment();
    g.Set(static_cast<double>(cycle));
    h.Observe(0.5);
  }
  EXPECT_EQ(counter->value(), 3);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.0);
  EXPECT_EQ(histogram->count(), 3);
  EXPECT_EQ(registry.Snapshot().size(), 3u);
}

TEST(MetricRegistryTest, FindReturnsNullptrWhenAbsentOrWrongType) {
  MetricRegistry registry;
  registry.AddCounter("oasis_test_total", "help").Add(7);
  registry.AddGauge("oasis_test_gauge", "help").Set(1.0);

  ASSERT_NE(registry.FindCounter("oasis_test_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("oasis_test_total")->value(), 7);
  EXPECT_EQ(registry.FindCounter("oasis_absent_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("oasis_test_gauge"), nullptr);  // Wrong type.
  EXPECT_EQ(registry.FindGauge("oasis_test_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("oasis_test_total", {{"kind", "x"}}),
            nullptr);  // No such child.
}

TEST(MetricRegistryTest, HistogramBucketsObservationsAndOverflow) {
  MetricRegistry registry;
  Histogram& hist =
      registry.AddHistogram("oasis_test_hist", "help", {0.5, 2.0, 8.0});
  hist.Observe(0.25);  // bucket 0
  hist.Observe(0.5);   // bucket 0 (le is inclusive)
  hist.Observe(1.0);   // bucket 1
  hist.Observe(100.0);  // overflow
  ASSERT_EQ(hist.num_buckets(), 3u);
  EXPECT_EQ(hist.bucket_count(0), 2);
  EXPECT_EQ(hist.bucket_count(1), 1);
  EXPECT_EQ(hist.bucket_count(2), 0);
  EXPECT_EQ(hist.overflow_count(), 1);
  EXPECT_EQ(hist.count(), 4);
  EXPECT_DOUBLE_EQ(hist.sum(), 101.75);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  EXPECT_EQ(hist.overflow_count(), 0);
}

TEST(MetricRegistryTest, SnapshotPreservesRegistrationOrder) {
  MetricRegistry registry;
  registry.AddCounter("oasis_test_b_total", "help");
  registry.AddGauge("oasis_test_a_gauge", "help");
  registry.AddCounter("oasis_test_b_total", "help");  // Re-registration.
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "oasis_test_b_total");
  EXPECT_EQ(snapshot[1].name, "oasis_test_a_gauge");
}

// --- Concurrency (this test is in CI's TSan shard) -------------------------

TEST(MetricRegistryTest, ConcurrentIncrementsAreExactAndRaceFree) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread registers through Add* itself, so registration races
      // against registration and against updates.
      Counter& counter = registry.AddCounter("oasis_test_total", "help");
      Gauge& gauge = registry.AddGauge("oasis_test_gauge", "help");
      Histogram& hist =
          registry.AddHistogram("oasis_test_hist", "help", {1.0, 4.0});
      for (int i = 0; i < kIterations; ++i) {
        counter.Increment();
        gauge.Add(0.5);
        hist.Observe(static_cast<double>(i % 8));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.FindCounter("oasis_test_total")->value(),
            int64_t{kThreads} * kIterations);
  EXPECT_DOUBLE_EQ(registry.FindGauge("oasis_test_gauge")->value(),
                   kThreads * kIterations * 0.5);
  EXPECT_EQ(registry.FindHistogram("oasis_test_hist")->count(),
            int64_t{kThreads} * kIterations);
}

// --- Kill switches and spans -----------------------------------------------

TEST(TelemetryGateTest, SpansAreInertWhileDisabled) {
  ScopedEnable off(false);
  TraceCollector& collector = DefaultTraceCollector();
  collector.Clear();
  { TELEMETRY_SPAN("inert", "test"); }
  EXPECT_EQ(collector.size(), 0);
}

#if !defined(OASIS_TELEMETRY_DISABLED)
TEST(TelemetryGateTest, SpansRecordWhileEnabled) {
  ScopedEnable on(true);
  TraceCollector& collector = DefaultTraceCollector();
  collector.Clear();
  { TELEMETRY_SPAN("recorded", "test"); }
  ASSERT_EQ(collector.size(), 1);
  const std::vector<TraceEvent> events = collector.Snapshot();
  EXPECT_EQ(events[0].name, "recorded");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_GE(events[0].dur_us, 0.0);
  collector.Clear();
}

TEST(TelemetryGateTest, ScopedEnableRestoresPreviousSetting) {
  SetEnabled(false);
  {
    ScopedEnable on(true);
    EXPECT_TRUE(Enabled());
    {
      ScopedEnable off_again(false);
      EXPECT_FALSE(Enabled());
    }
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
}
#endif  // !defined(OASIS_TELEMETRY_DISABLED)

TEST(TraceCollectorTest, CapacityBoundDropsAndCounts) {
  TraceCollector collector(/*capacity=*/2);
  TraceEvent event;
  event.name = "e";
  event.category = "test";
  for (int i = 0; i < 5; ++i) collector.Append(event);
  EXPECT_EQ(collector.size(), 2);
  EXPECT_EQ(collector.dropped(), 3);
  collector.Clear();
  EXPECT_EQ(collector.size(), 0);
  EXPECT_EQ(collector.dropped(), 0);
}

TEST(TraceCollectorTest, ThreadLanesAreStablePerThread) {
  TraceCollector collector;
  const int lane = collector.CurrentThreadLane();
  EXPECT_EQ(collector.CurrentThreadLane(), lane);
  int other_lane = lane;
  std::thread([&] { other_lane = collector.CurrentThreadLane(); }).join();
  EXPECT_NE(other_lane, lane);
}

// --- Heartbeat line --------------------------------------------------------

TEST(HeartbeatTest, FormatsWellKnownCountersAndRates) {
  MetricRegistry registry;
  registry.AddCounter("oasis_sampler_steps_total", "help").Add(1000);
  registry.AddCounter("oasis_labelcache_misses_total", "help").Add(40);
  registry.AddCounter("oasis_runner_repeats_completed_total", "help").Add(3);
  registry.AddCounter("oasis_oracle_round_trips_total", "help").Add(7);
  registry.AddGauge("oasis_runner_live_ess", "help").Set(123.45);
  registry.AddGauge("oasis_runner_repeats_in_flight", "help").Set(2.0);

  const std::string line = FormatHeartbeatLine(
      registry, /*uptime_seconds=*/2.0, /*steps_delta=*/500,
      /*labels_delta=*/20, /*interval_seconds=*/1.0);
  EXPECT_EQ(line,
            "[telemetry] t=2.0s steps=1000 labels=40 (500 steps/s, "
            "20 labels/s) repeats=3 in_flight=2 rt=7 ess=123.5");
}

TEST(HeartbeatTest, ToleratesEmptyRegistry) {
  MetricRegistry registry;
  const std::string line =
      FormatHeartbeatLine(registry, 0.5, 0, 0, /*interval_seconds=*/0.0);
  EXPECT_EQ(line,
            "[telemetry] t=0.5s steps=0 labels=0 repeats=0 in_flight=0 rt=0 "
            "ess=0.0");
}

// --- The determinism contract ----------------------------------------------

// Telemetry is observe-only: running the full experiment pipeline with
// RunnerOptions::telemetry enabled must produce the bit-identical ErrorCurve
// the uninstrumented run produces, at every thread count. A single stray RNG
// draw or label reordering inside an instrumentation site breaks this.
TEST(TelemetryDeterminismTest, ErrorCurveBitIdenticalWithTelemetryOnOrOff) {
  testutil::SyntheticPoolOptions pool_options;
  pool_options.size = 1500;
  pool_options.match_fraction = 0.05;
  pool_options.seed = 303;
  testutil::SyntheticPool pool = testutil::MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());

  for (int threads : {1, 8}) {
    experiments::RunnerOptions options;
    options.repeats = 8;
    options.trajectory.budget = 250;
    options.trajectory.checkpoint_every = 50;
    options.base_seed = 777;
    options.num_threads = threads;

    options.telemetry.enable = false;
    const experiments::ErrorCurve reference =
        RunErrorCurve(experiments::MakeOasisSpec(OasisOptions{}, strata),
                      pool.scored, oracle, pool.true_measures.f_alpha, options)
            .ValueOrDie();

    options.telemetry.enable = true;
    SetDetailEnabled(true);  // Exercise the per-step weight histogram too.
    const experiments::ErrorCurve instrumented =
        RunErrorCurve(experiments::MakeOasisSpec(OasisOptions{}, strata),
                      pool.scored, oracle, pool.true_measures.f_alpha, options)
            .ValueOrDie();
    SetDetailEnabled(false);

    ASSERT_EQ(instrumented.budgets, reference.budgets) << threads;
    for (size_t i = 0; i < reference.budgets.size(); ++i) {
      EXPECT_EQ(instrumented.mean_abs_error[i], reference.mean_abs_error[i])
          << "threads=" << threads << " checkpoint " << i;
      EXPECT_EQ(instrumented.stddev[i], reference.stddev[i])
          << "threads=" << threads << " checkpoint " << i;
      EXPECT_EQ(instrumented.mean_estimate[i], reference.mean_estimate[i])
          << "threads=" << threads << " checkpoint " << i;
      EXPECT_EQ(instrumented.frac_defined[i], reference.frac_defined[i])
          << "threads=" << threads << " checkpoint " << i;
    }
#if !defined(OASIS_TELEMETRY_DISABLED)
    // The instrumented run actually collected: the sampler step counter
    // moved (it counts every step of every repeat).
    const Counter* steps =
        DefaultRegistry().FindCounter("oasis_sampler_steps_total");
    ASSERT_NE(steps, nullptr);
    EXPECT_GT(steps->value(), 0);
#endif
  }
}

#if !defined(OASIS_TELEMETRY_DISABLED)
// The exports cover all three instrumented layers: a run priced through the
// remote-oracle stack must surface sampler, runner AND oracle metrics in
// the Prometheus text, and spans from every layer category in the trace.
TEST(TelemetryCoverageTest, ExportsCoverSamplerRunnerAndOracleLayers) {
  testutil::SyntheticPoolOptions pool_options;
  pool_options.size = 800;
  pool_options.match_fraction = 0.1;
  pool_options.seed = 99;
  testutil::SyntheticPool pool = testutil::MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());

  experiments::RunnerOptions options;
  options.repeats = 3;
  options.trajectory.budget = 100;
  options.trajectory.checkpoint_every = 50;
  options.base_seed = 11;
  options.num_threads = 1;
  options.remote_oracle = RemoteOracleOptions{};
  options.telemetry.enable = true;

  DefaultTraceCollector().Clear();
  ASSERT_TRUE(
      RunErrorCurve(experiments::MakeOasisSpec(OasisOptions{}, strata),
                    pool.scored, oracle, pool.true_measures.f_alpha, options)
          .ok());

  const std::string prom = PrometheusText(DefaultRegistry());
  for (const char* name :
       {"oasis_sampler_steps_total", "oasis_runner_repeats_completed_total",
        "oasis_oracle_round_trips_total", "oasis_labelcache_misses_total"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
  const Counter* round_trips =
      DefaultRegistry().FindCounter("oasis_oracle_round_trips_total");
  ASSERT_NE(round_trips, nullptr);
  EXPECT_GT(round_trips->value(), 0);

  std::set<std::string> categories;
  for (const TraceEvent& event : DefaultTraceCollector().Snapshot()) {
    categories.insert(event.category);
  }
  EXPECT_TRUE(categories.count("runner")) << "missing runner spans";
  EXPECT_TRUE(categories.count("sampler")) << "missing sampler spans";
  EXPECT_TRUE(categories.count("oracle")) << "missing oracle spans";
  DefaultTraceCollector().Clear();
}
#endif  // !defined(OASIS_TELEMETRY_DISABLED)

}  // namespace
}  // namespace telemetry
}  // namespace oasis
