// Large-K index-arithmetic regression tests: the structures under the
// pool-scale sampling layer must stay correct past one million entries.
//
// This is the test half of an int-width audit: every container on the
// sampling hot path indexes with size_t (FenwickTree, BlockFenwickForest,
// AliasTable slots are uint32_t with an explicit capacity guard, Strata item
// ids are int32_t behind an explicit pool-size guard). These tests pin the
// behaviour at K >= 1M — deliberately past every power-of-two boundary a
// 20-bit or 16-bit intermediate would wrap at — so a future refactor that
// narrows an index type fails here instead of corrupting estimates silently.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/alias_table.h"
#include "common/block_fenwick_forest.h"
#include "common/fenwick_tree.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/oasis.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "strata/strata.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

// Just past 2^20: exercises the non-power-of-two descent/carry paths at a
// size where any 20-bit intermediate wraps.
constexpr size_t kBigN = (1u << 20) + 3;

// Deterministic non-uniform mass pattern, cheap to recompute at any index.
double MassAt(size_t i) { return static_cast<double>(i % 7) + 0.25; }

std::vector<double> BigMasses() {
  std::vector<double> masses(kBigN);
  for (size_t i = 0; i < kBigN; ++i) masses[i] = MassAt(i);
  return masses;
}

TEST(LargeKOverflowTest, FenwickTreeAtAMillionEntries) {
  const std::vector<double> masses = BigMasses();
  FenwickTree tree = FenwickTree::Build(masses).ValueOrDie();
  ASSERT_EQ(tree.size(), kBigN);

  // Exact expected total of the i%7 pattern, accumulated the same way.
  double total = 0.0;
  for (size_t i = 0; i < kBigN; ++i) total += MassAt(i);
  EXPECT_NEAR(tree.Total(), total, total * 1e-12);
  EXPECT_DOUBLE_EQ(tree.PrefixSum(kBigN), tree.Total());
  EXPECT_DOUBLE_EQ(tree.value(kBigN - 1), MassAt(kBigN - 1));

  // Point update at the very top of the index range routes through the
  // high-index parent chain.
  tree.Update(kBigN - 1, 123.5);
  EXPECT_DOUBLE_EQ(tree.value(kBigN - 1), 123.5);
  EXPECT_NEAR(tree.Total(), total - MassAt(kBigN - 1) + 123.5, total * 1e-12);

  // The inverse CDF at (Total - epsilon) must land on a high positive-mass
  // index, and a mid-range target must land exactly where the prefix sums
  // say it should.
  const size_t last = tree.FindQuantile(tree.Total() * (1.0 - 1e-12));
  EXPECT_EQ(last, kBigN - 1);
  const size_t mid = tree.FindQuantile(tree.Total() * 0.5);
  EXPECT_LE(tree.PrefixSum(mid), tree.Total() * 0.5);
  EXPECT_GT(tree.PrefixSum(mid + 1), tree.Total() * 0.5);
}

TEST(LargeKOverflowTest, AliasTableAtAMillionEntries) {
  const std::vector<double> masses = BigMasses();
  AliasTable table = AliasTable::Build(masses).ValueOrDie();
  ASSERT_EQ(table.size(), kBigN);

  // Normalisation survives the million-way split.
  double prob_total = 0.0;
  for (size_t i = 0; i < kBigN; ++i) prob_total += table.probability(i);
  EXPECT_NEAR(prob_total, 1.0, 1e-9);

  // Every draw must stay in range; with a spiked rebuild nearly all draws
  // must hit the spike (alias slots routing correctly at high indices).
  std::vector<double> spiked(kBigN, 1e-9);
  spiked[kBigN - 2] = 1.0;
  ASSERT_TRUE(table.Rebuild(spiked).ok());
  Rng rng(2024);
  size_t spike_hits = 0;
  for (int draw = 0; draw < 2000; ++draw) {
    const size_t k = table.Sample(rng);
    ASSERT_LT(k, kBigN);
    if (k == kBigN - 2) ++spike_hits;
  }
  EXPECT_GT(spike_hits, 1900u);
}

TEST(LargeKOverflowTest, BlockFenwickForestAtAMillionEntries) {
  const std::vector<double> masses = BigMasses();
  BlockFenwickForest forest =
      BlockFenwickForest::Build(masses, 4096).ValueOrDie();
  ASSERT_EQ(forest.size(), kBigN);
  EXPECT_DOUBLE_EQ(forest.value(kBigN - 1), MassAt(kBigN - 1));

  // Update at the last index of the (partial) last block, then route a
  // quantile there: block selection and within-block descent both cross the
  // 2^20 boundary.
  forest.Update(kBigN - 1, 1e6);
  EXPECT_DOUBLE_EQ(forest.value(kBigN - 1), 1e6);
  EXPECT_EQ(forest.FindQuantile(forest.Total() * (1.0 - 1e-12)), kBigN - 1);

  // A sharded rebuild at this size must reproduce the serial layout exactly
  // (spot-checked across the range; the exhaustive bit-identity sweep lives
  // in sharded_pool_test.cc at smaller sizes).
  ThreadPool pool(8);
  ASSERT_TRUE(forest.ParallelRebuild(masses, &pool, 8).ok());
  BlockFenwickForest serial = BlockFenwickForest::Build(masses, 4096).ValueOrDie();
  EXPECT_EQ(forest.Total(), serial.Total());
  for (const size_t i : {size_t{0}, size_t{4095}, size_t{4096}, kBigN / 2,
                         kBigN - 2, kBigN - 1}) {
    EXPECT_EQ(forest.value(i), serial.value(i)) << i;
  }
}

TEST(LargeKOverflowTest, StrataAtAMillionStrata) {
  // Two items per stratum, K = 2^19 + ... built from a 2^20+2 item pool —
  // compaction, weights, and reverse lookup all past the 20-bit line.
  const size_t items = kBigN - 1;  // Even.
  std::vector<int32_t> assignment(items);
  for (size_t i = 0; i < items; ++i) {
    assignment[i] = static_cast<int32_t>(i / 2);
  }
  const Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  ASSERT_EQ(strata.num_strata(), items / 2);
  ASSERT_EQ(strata.num_items(), items);
  double weight_total = 0.0;
  for (size_t k = 0; k < strata.num_strata(); ++k) {
    weight_total += strata.weight(k);
  }
  EXPECT_NEAR(weight_total, 1.0, 1e-9);
  const size_t last_k = strata.num_strata() - 1;
  EXPECT_EQ(strata.size(last_k), 2u);
  EXPECT_EQ(strata.stratum_of(static_cast<int64_t>(items) - 1),
            static_cast<int32_t>(last_k));
}

/// End-to-end regression at K = 2^20 strata: the full sampler stack (init,
/// sub-linear draws, rebuilds, estimates) on the largest stratification the
/// bench tier exercises. A handful of steps suffices — the point is index
/// arithmetic, not statistics.
TEST(LargeKOverflowTest, OasisSamplerStepsAtAMillionStrata) {
  SyntheticPoolOptions pool_options;
  pool_options.size = 2 * (1 << 20);
  pool_options.match_fraction = 0.01;
  pool_options.seed = 31;
  SyntheticPool pool = MakeSyntheticPool(pool_options);
  std::vector<int32_t> assignment(pool.scored.scores.size());
  for (size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<int32_t>(i / 2);
  }
  auto strata = std::make_shared<const Strata>(
      Strata::FromAssignment(assignment).ValueOrDie());
  ASSERT_EQ(strata->num_strata(), size_t{1} << 20);

  GroundTruthOracle oracle(pool.truth);
  for (const OasisStepPath path :
       {OasisStepPath::kFenwick, OasisStepPath::kAlias,
        OasisStepPath::kShardedFenwick}) {
    LabelCache labels(&oracle);
    OasisOptions options;
    options.step_path = path;
    auto sampler =
        OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(5))
            .ValueOrDie();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(sampler->Step().ok()) << static_cast<int>(path);
    }
    const EstimateSnapshot snap = sampler->Estimate();
    ASSERT_TRUE(snap.f_defined) << static_cast<int>(path);
    EXPECT_GE(snap.f_alpha, 0.0);
    EXPECT_LE(snap.f_alpha, 1.0);
  }
}

}  // namespace
}  // namespace oasis
