#include "classify/logistic_regression.h"

#include <gtest/gtest.h>

#include "classify_test_util.h"

namespace oasis {
namespace classify {
namespace {

using testutil::Accuracy;
using testutil::MakeBlobs;

TEST(LogisticRegressionTest, RejectsDegenerateData) {
  LogisticRegression lr;
  Rng rng(1);
  Dataset empty(2);
  EXPECT_FALSE(lr.Fit(empty, rng).ok());
  Dataset one_class(2);
  ASSERT_TRUE(one_class.Add(std::vector<double>{0.0, 0.0}, false).ok());
  EXPECT_FALSE(lr.Fit(one_class, rng).ok());
}

TEST(LogisticRegressionTest, SeparatesBlobs) {
  Dataset train = MakeBlobs(200, 0.3, 3);
  Dataset test = MakeBlobs(200, 0.3, 5);
  LogisticRegression lr;
  Rng rng(7);
  ASSERT_TRUE(lr.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(lr, test), 0.97);
}

TEST(LogisticRegressionTest, ScoresAreProbabilities) {
  Dataset train = MakeBlobs(150, 0.4, 9);
  LogisticRegression lr;
  Rng rng(11);
  ASSERT_TRUE(lr.Fit(train, rng).ok());
  EXPECT_TRUE(lr.probabilistic());
  EXPECT_DOUBLE_EQ(lr.threshold(), 0.5);
  for (double x : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    const double p = lr.Score(std::vector<double>{x, x});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_GT(lr.Score(std::vector<double>{2.0, 2.0}), 0.9);
  EXPECT_LT(lr.Score(std::vector<double>{-2.0, -2.0}), 0.1);
}

TEST(LogisticRegressionTest, ProbabilitiesAreRoughlyCalibrated) {
  // With well-specified (logistic-ish) data, predicted probabilities near p
  // should be correct about p of the time.
  Dataset train = MakeBlobs(800, 0.8, 13);
  LogisticRegression lr;
  Rng rng(15);
  ASSERT_TRUE(lr.Fit(train, rng).ok());

  Dataset test = MakeBlobs(800, 0.8, 17);
  double bucket_correct = 0;
  double bucket_total = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const double p = lr.Score(test.row(i));
    if (p >= 0.6 && p <= 0.8) {
      bucket_total += 1;
      bucket_correct += test.label(i) ? 1 : 0;
    }
  }
  if (bucket_total >= 30) {
    EXPECT_NEAR(bucket_correct / bucket_total, 0.7, 0.15);
  }
}

TEST(LogisticRegressionTest, DeterministicGivenSeed) {
  Dataset train = MakeBlobs(100, 0.3, 19);
  LogisticRegression a;
  LogisticRegression b;
  Rng rng1(23);
  Rng rng2(23);
  ASSERT_TRUE(a.Fit(train, rng1).ok());
  ASSERT_TRUE(b.Fit(train, rng2).ok());
  EXPECT_EQ(a.weights(), b.weights());
}

}  // namespace
}  // namespace classify
}  // namespace oasis
