// Equivalence tests for the batched / zero-allocation sampling hot path:
//  * the *Into variants produce exactly the values of their allocating
//    reference functions;
//  * OasisSampler's fused step path is bit-for-bit identical to the original
//    allocating reference path;
//  * StepBatch(n) equals n calls to Step() exactly, for every sampler;
//  * the batched RunTrajectory matches the original per-step driver loop;
//  * the fused OASIS step performs zero heap allocations.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/bayesian_model.h"
#include "core/instrumental.h"
#include "core/oasis.h"
#include "oracle/ground_truth_oracle.h"
#include "sampling/importance.h"
#include "sampling/passive.h"
#include "sampling/stratified.h"
#include "sampling/trajectory.h"
#include "strata/csf.h"
#include "tests/test_util.h"

namespace {
// Global operator new/delete hooks counting heap allocations, used to verify
// the fused OASIS step allocates nothing. Counting is toggled around the
// measured region only, so unrelated gtest allocations don't interfere.
std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace oasis {
namespace {

void ExpectSnapshotsIdentical(const EstimateSnapshot& a,
                              const EstimateSnapshot& b) {
  EXPECT_EQ(a.f_defined, b.f_defined);
  EXPECT_EQ(a.precision_defined, b.precision_defined);
  EXPECT_EQ(a.recall_defined, b.recall_defined);
  // Exact equality on purpose: the batched and fused paths promise
  // bit-identical estimate sequences, not just close ones.
  EXPECT_EQ(a.f_alpha, b.f_alpha);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
}

// --- Into variants vs allocating reference functions ----------------------

TEST(IntoVariantsTest, OptimalStratifiedInstrumentalIntoMatches) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t k = 1 + static_cast<size_t>(rng.NextBounded(40));
    std::vector<double> weights(k), lambda(k), pi(k);
    double weight_total = 0.0;
    for (size_t i = 0; i < k; ++i) {
      weights[i] = rng.NextDouble() + 1e-3;
      weight_total += weights[i];
      lambda[i] = rng.NextDouble();
      pi[i] = rng.NextDouble();
    }
    for (double& w : weights) w /= weight_total;
    const double f = rng.NextDouble();
    const double alpha = rng.NextDouble();

    const std::vector<double> reference =
        OptimalStratifiedInstrumental(weights, lambda, pi, f, alpha).ValueOrDie();
    std::vector<double> out(k, -1.0);
    ASSERT_TRUE(OptimalStratifiedInstrumentalInto(weights, lambda, pi, f, alpha,
                                                  std::span<double>(out))
                    .ok());
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(out[i], reference[i]);
  }
}

TEST(IntoVariantsTest, OptimalStratifiedInstrumentalIntoDegenerateFallback) {
  // F = 0 and pi = 0 zero out every mass; both paths must fall back to the
  // normalised stratum weights.
  const std::vector<double> weights{0.25, 0.75};
  const std::vector<double> lambda{0.0, 0.0};
  const std::vector<double> pi{0.0, 0.0};
  const std::vector<double> reference =
      OptimalStratifiedInstrumental(weights, lambda, pi, 0.0, 0.5).ValueOrDie();
  std::vector<double> out(2);
  ASSERT_TRUE(OptimalStratifiedInstrumentalInto(weights, lambda, pi, 0.0, 0.5,
                                                std::span<double>(out))
                  .ok());
  EXPECT_EQ(out[0], reference[0]);
  EXPECT_EQ(out[1], reference[1]);
  EXPECT_DOUBLE_EQ(out[0] + out[1], 1.0);
}

TEST(IntoVariantsTest, OptimalStratifiedInstrumentalIntoRejectsBadOut) {
  const std::vector<double> w{0.5, 0.5};
  const std::vector<double> lambda{0.0, 1.0};
  const std::vector<double> pi{0.1, 0.9};
  std::vector<double> short_out(1);
  EXPECT_FALSE(OptimalStratifiedInstrumentalInto(w, lambda, pi, 0.5, 0.5,
                                                 std::span<double>(short_out))
                   .ok());
}

TEST(IntoVariantsTest, EpsilonGreedyMixIntoMatchesAndSupportsAliasing) {
  Rng rng(11);
  const size_t k = 17;
  std::vector<double> weights(k), v_star(k);
  for (size_t i = 0; i < k; ++i) {
    weights[i] = rng.NextDouble();
    v_star[i] = rng.NextDouble();
  }
  const double epsilon = 0.05;
  const std::vector<double> reference =
      EpsilonGreedyMix(weights, v_star, epsilon).ValueOrDie();

  std::vector<double> out(k);
  ASSERT_TRUE(
      EpsilonGreedyMixInto(weights, v_star, epsilon, std::span<double>(out)).ok());
  for (size_t i = 0; i < k; ++i) EXPECT_EQ(out[i], reference[i]);

  // In-place: out aliases v_star, the mode the hot path uses.
  std::vector<double> in_place = v_star;
  ASSERT_TRUE(EpsilonGreedyMixInto(weights, in_place, epsilon,
                                   std::span<double>(in_place))
                  .ok());
  for (size_t i = 0; i < k; ++i) EXPECT_EQ(in_place[i], reference[i]);
}

TEST(IntoVariantsTest, PosteriorMeansIntoMatches) {
  const std::vector<double> prior{0.1, 0.5, 0.9};
  StratifiedBetaModel model =
      StratifiedBetaModel::Create(prior, 6.0, /*decay_prior=*/true).ValueOrDie();
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    model.Observe(static_cast<size_t>(rng.NextBounded(3)), rng.NextBernoulli(0.4));
  }
  const std::vector<double> reference = model.PosteriorMeans();
  std::vector<double> out(3);
  ASSERT_TRUE(model.PosteriorMeansInto(std::span<double>(out)).ok());
  for (size_t k = 0; k < 3; ++k) EXPECT_EQ(out[k], reference[k]);

  std::vector<double> short_out(2);
  EXPECT_FALSE(model.PosteriorMeansInto(std::span<double>(short_out)).ok());
}

// --- Fused vs allocating reference step path ------------------------------

TEST(OasisStepPathTest, FusedMatchesAllocatingReferenceBitForBit) {
  testutil::SyntheticPoolOptions pool_options;
  pool_options.size = 4000;
  pool_options.seed = 321;
  const testutil::SyntheticPool pool = testutil::MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);

  OasisOptions fused_options;
  fused_options.step_path = OasisStepPath::kFused;
  OasisOptions reference_options;
  reference_options.step_path = OasisStepPath::kAllocatingReference;

  LabelCache fused_labels(&oracle);
  LabelCache reference_labels(&oracle);
  const uint64_t seed = 2026;
  auto fused = OasisSampler::CreateWithCsf(&pool.scored, &fused_labels, 30,
                                           fused_options, Rng(seed))
                   .ValueOrDie();
  auto reference = OasisSampler::CreateWithCsf(&pool.scored, &reference_labels,
                                               30, reference_options, Rng(seed))
                       .ValueOrDie();

  for (int step = 0; step < 800; ++step) {
    ASSERT_TRUE(fused->Step().ok());
    ASSERT_TRUE(reference->Step().ok());
    ExpectSnapshotsIdentical(fused->Estimate(), reference->Estimate());
  }
  EXPECT_EQ(fused->labels_consumed(), reference->labels_consumed());
  EXPECT_EQ(fused->iterations(), reference->iterations());

  // The incremental posterior caches must agree exactly with a full
  // recomputation from the model.
  const std::vector<double> fused_pi = fused->PosteriorMeans();
  const std::vector<double> reference_pi = reference->PosteriorMeans();
  ASSERT_EQ(fused_pi.size(), reference_pi.size());
  for (size_t k = 0; k < fused_pi.size(); ++k) {
    EXPECT_EQ(fused_pi[k], reference_pi[k]);
  }
}

// --- StepBatch == n x Step, for every sampler -----------------------------

/// Runs `total` iterations on two identically-seeded samplers, one per-step
/// and one in uneven batches, and expects identical estimates and counters.
void ExpectStepBatchMatchesStep(Sampler& stepwise, Sampler& batched, int total) {
  int done = 0;
  int batch = 1;
  while (done < total) {
    const int n = std::min(batch, total - done);
    for (int i = 0; i < n; ++i) ASSERT_TRUE(stepwise.Step().ok());
    ASSERT_TRUE(batched.StepBatch(n).ok());
    ExpectSnapshotsIdentical(stepwise.Estimate(), batched.Estimate());
    done += n;
    batch = batch * 2 + 1;  // Uneven batch sizes: 1, 3, 7, 15, ...
  }
  EXPECT_EQ(stepwise.iterations(), batched.iterations());
  EXPECT_EQ(stepwise.labels_consumed(), batched.labels_consumed());
}

class StepBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::SyntheticPoolOptions pool_options;
    pool_options.size = 3000;
    pool_options.seed = 99;
    pool_ = testutil::MakeSyntheticPool(pool_options);
    oracle_ = std::make_unique<GroundTruthOracle>(pool_.truth);
    strata_ = std::make_shared<const Strata>(
        StratifyCsf(pool_.scored.scores, 20, false).ValueOrDie());
  }

  testutil::SyntheticPool pool_;
  std::unique_ptr<GroundTruthOracle> oracle_;
  std::shared_ptr<const Strata> strata_;
};

TEST_F(StepBatchTest, PassiveMatches) {
  LabelCache labels_a(oracle_.get());
  LabelCache labels_b(oracle_.get());
  auto a = PassiveSampler::Create(&pool_.scored, &labels_a, 0.5, Rng(5)).ValueOrDie();
  auto b = PassiveSampler::Create(&pool_.scored, &labels_b, 0.5, Rng(5)).ValueOrDie();
  ExpectStepBatchMatchesStep(*a, *b, 500);
}

TEST_F(StepBatchTest, ImportanceMatchesBothBackends) {
  for (const SamplingBackend backend :
       {SamplingBackend::kAliasTable, SamplingBackend::kLinearScan}) {
    ImportanceOptions options;
    options.backend = backend;
    LabelCache labels_a(oracle_.get());
    LabelCache labels_b(oracle_.get());
    auto a = ImportanceSampler::Create(&pool_.scored, &labels_a, options, Rng(6))
                 .ValueOrDie();
    auto b = ImportanceSampler::Create(&pool_.scored, &labels_b, options, Rng(6))
                 .ValueOrDie();
    ExpectStepBatchMatchesStep(*a, *b, 500);
  }
}

TEST_F(StepBatchTest, StratifiedMatches) {
  LabelCache labels_a(oracle_.get());
  LabelCache labels_b(oracle_.get());
  auto a = StratifiedSampler::Create(&pool_.scored, &labels_a, strata_, 0.5, Rng(8))
               .ValueOrDie();
  auto b = StratifiedSampler::Create(&pool_.scored, &labels_b, strata_, 0.5, Rng(8))
               .ValueOrDie();
  ExpectStepBatchMatchesStep(*a, *b, 500);
}

TEST_F(StepBatchTest, OasisMatches) {
  LabelCache labels_a(oracle_.get());
  LabelCache labels_b(oracle_.get());
  auto a = OasisSampler::Create(&pool_.scored, &labels_a, strata_, OasisOptions{},
                                Rng(9))
               .ValueOrDie();
  auto b = OasisSampler::Create(&pool_.scored, &labels_b, strata_, OasisOptions{},
                                Rng(9))
               .ValueOrDie();
  ExpectStepBatchMatchesStep(*a, *b, 500);
}

TEST_F(StepBatchTest, RejectsNegativeAndAcceptsZero) {
  LabelCache labels(oracle_.get());
  auto sampler =
      PassiveSampler::Create(&pool_.scored, &labels, 0.5, Rng(5)).ValueOrDie();
  EXPECT_FALSE(sampler->StepBatch(-1).ok());
  EXPECT_TRUE(sampler->StepBatch(0).ok());
  EXPECT_EQ(sampler->iterations(), 0);
}

// --- Exception safety: mid-batch oracle failure ---------------------------

/// Fallible deterministic oracle that fails every TryLabelBatch call with a
/// (0-based) call index in [fail_from, fail_to) and answers truthfully
/// otherwise — a precisely placed transient outage.
class FailWindowOracle : public Oracle {
 public:
  FailWindowOracle(std::vector<uint8_t> truth, int fail_from, int fail_to)
      : truth_(std::move(truth)), fail_from_(fail_from), fail_to_(fail_to) {}

  bool Label(int64_t item, Rng&) const override {
    return truth_[static_cast<size_t>(item)] != 0;
  }
  double TrueProbability(int64_t item) const override {
    return truth_[static_cast<size_t>(item)] != 0 ? 1.0 : 0.0;
  }
  bool deterministic() const override { return true; }
  bool labelling_consumes_rng() const override { return false; }
  bool fallible() const override { return true; }
  int64_t num_items() const override {
    return static_cast<int64_t>(truth_.size());
  }
  Status TryLabelBatch(std::span<const int64_t> items, Rng&,
                       std::span<uint8_t> out,
                       std::span<uint8_t> resolved) const override {
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
    const int call = calls_++;
    if (call >= fail_from_ && call < fail_to_) {
      return Status::Unavailable("FailWindowOracle: scheduled outage");
    }
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = truth_[static_cast<size_t>(items[i])];
      resolved[i] = 1;
    }
    return Status::OK();
  }

 private:
  std::vector<uint8_t> truth_;
  int fail_from_;
  int fail_to_;
  mutable int calls_ = 0;
};

TEST_F(StepBatchTest, PassiveMidBatchFailureLeavesNoHalfAppliedState) {
  // The oracle fails exactly the second QueryBatch round-trip: the first
  // StepBatch lands, the second fails as a whole chunk.
  FailWindowOracle flaky(pool_.truth, /*fail_from=*/1, /*fail_to=*/2);
  LabelCache labels(&flaky);
  auto sampler =
      PassiveSampler::Create(&pool_.scored, &labels, 0.5, Rng(33)).ValueOrDie();
  ASSERT_TRUE(sampler->StepBatch(50).ok());
  const Status failed = sampler->StepBatch(100);
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  // No half-applied state: the failed batch moved neither the iteration
  // counter nor the label budget, and the estimator is bit-identical to a
  // twin that stopped cleanly at the last completed step.
  EXPECT_EQ(sampler->iterations(), 50);
  GroundTruthOracle reliable(pool_.truth);
  LabelCache reference_labels(&reliable);
  auto reference = PassiveSampler::Create(&pool_.scored, &reference_labels, 0.5,
                                          Rng(33))
                       .ValueOrDie();
  ASSERT_TRUE(reference->StepBatch(50).ok());
  ExpectSnapshotsIdentical(sampler->Estimate(), reference->Estimate());
  EXPECT_EQ(sampler->labels_consumed(), reference->labels_consumed());

  // The sampler is not poisoned: once the oracle recovers, stepping resumes.
  ASSERT_TRUE(sampler->StepBatch(100).ok());
  EXPECT_EQ(sampler->iterations(), 150);
  EXPECT_TRUE(sampler->Estimate().f_defined);
}

TEST_F(StepBatchTest, OasisMidBatchFailureLeavesNoHalfAppliedState) {
  // OASIS queries per step (cache hits skip the oracle), so the outage is
  // placed on the 11th oracle round-trip — somewhere inside the big batch.
  FailWindowOracle flaky(pool_.truth, /*fail_from=*/10, /*fail_to=*/11);
  LabelCache labels(&flaky);
  auto sampler = OasisSampler::Create(&pool_.scored, &labels, strata_,
                                      OasisOptions{}, Rng(44))
                     .ValueOrDie();
  const Status failed = sampler->StepBatch(200);
  ASSERT_EQ(failed.code(), StatusCode::kUnavailable);
  const int64_t completed = sampler->iterations();
  EXPECT_GE(completed, 10);
  EXPECT_LT(completed, 200);

  // Invariant: the estimator AND the Bayesian posterior correspond to
  // exactly `completed` fully-applied steps — the failing step contributed
  // nothing (its only trace is the RNG draws it consumed).
  GroundTruthOracle reliable(pool_.truth);
  LabelCache reference_labels(&reliable);
  auto reference = OasisSampler::Create(&pool_.scored, &reference_labels,
                                        strata_, OasisOptions{}, Rng(44))
                       .ValueOrDie();
  for (int64_t i = 0; i < completed; ++i) ASSERT_TRUE(reference->Step().ok());
  ExpectSnapshotsIdentical(sampler->Estimate(), reference->Estimate());
  EXPECT_EQ(sampler->labels_consumed(), reference->labels_consumed());
  const std::vector<double> pi = sampler->PosteriorMeans();
  const std::vector<double> reference_pi = reference->PosteriorMeans();
  ASSERT_EQ(pi.size(), reference_pi.size());
  for (size_t k = 0; k < pi.size(); ++k) EXPECT_EQ(pi[k], reference_pi[k]);

  // Recovery: the outage window is spent, stepping resumes cleanly.
  ASSERT_TRUE(sampler->StepBatch(50).ok());
  EXPECT_EQ(sampler->iterations(), completed + 50);
}

// --- Batched trajectory vs the original per-step driver -------------------

TEST_F(StepBatchTest, TrajectoryMatchesPerStepReferenceLoop) {
  TrajectoryOptions options;
  options.budget = 400;
  options.checkpoint_every = 30;

  LabelCache labels_a(oracle_.get());
  auto batched_sampler = OasisSampler::Create(&pool_.scored, &labels_a, strata_,
                                              OasisOptions{}, Rng(12))
                             .ValueOrDie();
  const Trajectory batched =
      RunTrajectory(*batched_sampler, options).ValueOrDie();

  // Reference: the seed implementation's per-step loop.
  LabelCache labels_b(oracle_.get());
  auto stepwise_sampler = OasisSampler::Create(&pool_.scored, &labels_b, strata_,
                                               OasisOptions{}, Rng(12))
                              .ValueOrDie();
  Trajectory reference;
  for (int64_t b = options.checkpoint_every; b <= options.budget;
       b += options.checkpoint_every) {
    reference.budgets.push_back(b);
  }
  size_t next_checkpoint = 0;
  while (stepwise_sampler->labels_consumed() < options.budget) {
    ASSERT_TRUE(stepwise_sampler->Step().ok());
    const int64_t consumed = stepwise_sampler->labels_consumed();
    const EstimateSnapshot snap = stepwise_sampler->Estimate();
    if (reference.first_defined_budget < 0 && snap.f_defined) {
      reference.first_defined_budget = consumed;
    }
    while (next_checkpoint < reference.budgets.size() &&
           consumed >= reference.budgets[next_checkpoint]) {
      reference.snapshots.push_back(snap);
      ++next_checkpoint;
    }
  }

  EXPECT_EQ(batched.first_defined_budget, reference.first_defined_budget);
  EXPECT_EQ(batched.labels_consumed, options.budget);
  ASSERT_EQ(batched.snapshots.size(), reference.snapshots.size());
  for (size_t i = 0; i < reference.snapshots.size(); ++i) {
    ExpectSnapshotsIdentical(batched.snapshots[i], reference.snapshots[i]);
  }
  EXPECT_EQ(batched.total_iterations, stepwise_sampler->iterations());
}

// --- Zero allocations on the fused hot path -------------------------------

TEST_F(StepBatchTest, FusedStepPerformsZeroHeapAllocations) {
  LabelCache labels(oracle_.get());
  auto sampler = OasisSampler::Create(&pool_.scored, &labels, strata_,
                                      OasisOptions{}, Rng(21))
                     .ValueOrDie();
  // Warm up so any lazily-sized state is in place.
  ASSERT_TRUE(sampler->StepBatch(32).ok());

  g_allocation_count.store(0);
  g_count_allocations.store(true);
  const Status step_status = sampler->StepBatch(1000);
  g_count_allocations.store(false);
  ASSERT_TRUE(step_status.ok());
  EXPECT_EQ(g_allocation_count.load(), 0);

  // The allocating reference path really does allocate per step — the
  // baseline the benchmark compares against is not accidentally fused too.
  OasisOptions reference_options;
  reference_options.step_path = OasisStepPath::kAllocatingReference;
  LabelCache reference_labels(oracle_.get());
  auto reference = OasisSampler::Create(&pool_.scored, &reference_labels,
                                        strata_, reference_options, Rng(21))
                       .ValueOrDie();
  ASSERT_TRUE(reference->StepBatch(32).ok());
  g_allocation_count.store(0);
  g_count_allocations.store(true);
  const Status reference_status = reference->StepBatch(1000);
  g_count_allocations.store(false);
  ASSERT_TRUE(reference_status.ok());
  EXPECT_GT(g_allocation_count.load(), 0);
}

}  // namespace
}  // namespace oasis
