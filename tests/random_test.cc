#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace oasis {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, 450);  // ~4.5 sigma of binomial(80000, 1/8).
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng(17);
  const double p = 0.3;
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMomentsMatchShape) {
  Rng rng(29);
  const double shape = 3.5;
  double sum = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape);
  EXPECT_NEAR(sum / n, shape, 0.08);  // Gamma(k,1) has mean k.
}

TEST(RngTest, GammaSmallShapeMean) {
  Rng rng(31);
  const double shape = 0.4;
  double sum = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape);
  EXPECT_NEAR(sum / n, shape, 0.03);
}

TEST(RngTest, BetaMomentsMatch) {
  Rng rng(37);
  const double a = 2.0;
  const double b = 6.0;
  double sum = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextBeta(a, b);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(RngTest, DiscreteLinearMatchesWeights) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 0.0, 3.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscreteLinear(weights)];
  EXPECT_EQ(counts[1], 0);  // Zero-weight category never drawn.
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkIsAPureFunctionOfSeedAndStream) {
  // Same (seed, stream) always reproduces the same generator — no hidden
  // state, which is what makes parallel experiment repeats bit-identical.
  Rng a = Rng::Fork(123, 7);
  Rng b = Rng::Fork(123, 7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng s0 = Rng::Fork(123, 0);
  Rng s1 = Rng::Fork(123, 1);
  Rng other_seed = Rng::Fork(124, 0);
  int same01 = 0;
  int same_seed = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t x0 = s0.NextUint64();
    if (x0 == s1.NextUint64()) ++same01;
    if (x0 == other_seed.NextUint64()) ++same_seed;
  }
  EXPECT_LT(same01, 2);
  EXPECT_LT(same_seed, 2);
}

TEST(RngTest, ForkNeighbouringStreamsDecorrelated) {
  // Low-bit correlation across adjacent streams would show up as matching
  // parities; expect roughly half matches.
  int parity_match = 0;
  for (uint64_t stream = 0; stream < 256; ++stream) {
    Rng a = Rng::Fork(9, stream);
    Rng b = Rng::Fork(9, stream + 1);
    if ((a.NextUint64() & 1) == (b.NextUint64() & 1)) ++parity_match;
  }
  EXPECT_GT(parity_match, 96);   // ~128 expected.
  EXPECT_LT(parity_match, 160);
}

TEST(RngTest, SplitStreamsAreIndependentish) {
  Rng parent(59);
  Rng child = parent.Split();
  // The child stream should not reproduce the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace oasis
