#include "sampling/stratified.h"

#include <gtest/gtest.h>

#include <memory>

#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

std::shared_ptr<const Strata> MakeStrata(const ScoredPool& pool, size_t k) {
  return std::make_shared<const Strata>(StratifyCsf(pool.scores, k).ValueOrDie());
}

TEST(StratifiedSamplerTest, RejectsBadArguments) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto strata = MakeStrata(pool.scored, 10);
  EXPECT_FALSE(
      StratifiedSampler::Create(nullptr, &labels, strata, 0.5, Rng(1)).ok());
  EXPECT_FALSE(
      StratifiedSampler::Create(&pool.scored, &labels, nullptr, 0.5, Rng(1)).ok());
  EXPECT_FALSE(
      StratifiedSampler::Create(&pool.scored, &labels, strata, 2.0, Rng(1)).ok());

  // Mismatched strata (built over a different pool size).
  SyntheticPoolOptions small;
  small.size = 50;
  SyntheticPool other = MakeSyntheticPool(small);
  auto wrong_strata = MakeStrata(other.scored, 5);
  EXPECT_FALSE(
      StratifiedSampler::Create(&pool.scored, &labels, wrong_strata, 0.5, Rng(1))
          .ok());
}

TEST(StratifiedSamplerTest, ConvergesToTrueF) {
  SyntheticPoolOptions options;
  options.size = 2000;
  options.match_fraction = 0.1;
  options.seed = 31;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = StratifiedSampler::Create(&pool.scored, &labels,
                                           MakeStrata(pool.scored, 20), 0.5, Rng(3))
                     .ValueOrDie();
  for (int i = 0; i < 100000; ++i) ASSERT_TRUE(sampler->Step().ok());
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.02);
}

TEST(StratifiedSamplerTest, PredictedMassIsExactFromStart) {
  // The stratified estimator knows the predicted-positive mass without any
  // labels, so precision's denominator is available immediately.
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = StratifiedSampler::Create(&pool.scored, &labels,
                                           MakeStrata(pool.scored, 10), 0.5, Rng(5))
                     .ValueOrDie();
  ASSERT_TRUE(sampler->Step().ok());
  const EstimateSnapshot snap = sampler->Estimate();
  // After a single draw the F denominator is positive (predicted mass > 0).
  EXPECT_TRUE(snap.f_defined);
}

TEST(StratifiedSamplerTest, SamplingMatchesStratumWeights) {
  SyntheticPoolOptions options;
  options.size = 3000;
  options.seed = 41;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto strata = MakeStrata(pool.scored, 8);
  auto sampler =
      StratifiedSampler::Create(&pool.scored, &labels, strata, 0.5, Rng(7))
          .ValueOrDie();
  // Proportional-to-weight sampling is equivalent to uniform over items, so
  // after many steps the fraction of labels drawn from stratum k approaches
  // omega_k. We verify via the label cache's distinct-item count bound.
  for (int i = 0; i < 20000; ++i) ASSERT_TRUE(sampler->Step().ok());
  EXPECT_EQ(sampler->iterations(), 20000);
  EXPECT_LE(sampler->labels_consumed(), pool.scored.size());
  // Most of the pool should have been touched by 20k uniform-ish draws.
  EXPECT_GT(labels.distinct_items_labelled(), pool.scored.size() / 2);
}

TEST(StratifiedSamplerTest, AlphaZeroTracksRecall) {
  SyntheticPoolOptions options;
  options.size = 1500;
  options.match_fraction = 0.15;
  options.seed = 43;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = StratifiedSampler::Create(&pool.scored, &labels,
                                           MakeStrata(pool.scored, 15), 0.0, Rng(9))
                     .ValueOrDie();
  for (int i = 0; i < 80000; ++i) ASSERT_TRUE(sampler->Step().ok());
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.recall_defined);
  EXPECT_NEAR(snap.recall, pool.true_measures.recall, 0.03);
  EXPECT_NEAR(snap.f_alpha, snap.recall, 1e-12);
}

}  // namespace
}  // namespace oasis
