// End-to-end tests of the evaluation-session server (src/service/): many
// concurrent sessions over shared backends, driven through the FULL wire
// protocol (ServiceClient over InProcessTransport), checked bit-for-bit
// against the batch experiment runner — the determinism contract of
// docs/SERVICE.md. Runs under TSan in CI (concurrent sessions share the
// backend and the manager's pool).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "datagen/scenario.h"
#include "experiments/runner.h"
#include "experiments/scenario_run.h"
#include "oracle/label_cache.h"
#include "sampling/trajectory.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/session_manager.h"

namespace oasis {
namespace service {
namespace {

constexpr char kScenario[] = "stripe-f90";
constexpr uint64_t kSeed = 20260808;

/// The batch-side reference for `spec`'s scenario: the regenerated pool,
/// oracle, and method — the exact backend the manager builds internally.
struct BatchReference {
  datagen::ScenarioPool pool;
  std::unique_ptr<Oracle> oracle;
  experiments::MethodSpec method;
};

BatchReference MakeReference(const std::string& method, int64_t strata) {
  BatchReference ref;
  ref.pool = datagen::GenerateScenario(
                 datagen::ScenarioByName(kScenario).ValueOrDie())
                 .ValueOrDie();
  ref.oracle = datagen::MakeScenarioOracle(ref.pool).ValueOrDie();
  ref.method = experiments::MakeMethodByName(method, ref.pool.spec.alpha,
                                             ref.pool.scored, strata)
                   .ValueOrDie();
  return ref;
}

/// Repeat r of the batch runner, replayed directly: per-checkpoint estimates
/// a session with (seed, stream) = (kSeed, r) must reproduce bit for bit.
Trajectory BatchTrajectory(const BatchReference& ref, int64_t budget,
                           int64_t checkpoint_every, uint64_t repeat) {
  LabelCache labels(ref.oracle.get());
  std::unique_ptr<Sampler> sampler =
      ref.method.factory(&ref.pool.scored, &labels, Rng::Fork(kSeed, repeat))
          .ValueOrDie();
  TrajectoryOptions options;
  options.budget = budget;
  options.checkpoint_every = checkpoint_every;
  return RunTrajectory(*sampler, options).ValueOrDie();
}

SessionSpec MakeSpec(const std::string& method, int64_t budget,
                     int64_t checkpoint_every, uint64_t stream) {
  SessionSpec spec;
  spec.scenario = kScenario;
  spec.method = method;
  spec.budget = budget;
  spec.checkpoint_every = checkpoint_every;
  spec.strata = 30;
  spec.seed = kSeed;
  spec.stream = stream;
  return spec;
}

// 64 concurrent OASIS sessions, each sliced differently across RequestLabels
// calls, at manager thread counts 1 and 8: every session's full checkpoint
// trajectory must be bit-identical to the batch runner's matching repeat —
// slicing and scheduling must be invisible.
TEST(SessionServer, ConcurrentSessionsMatchBatchRunnerBitForBit) {
  const int64_t kBudget = 240;
  const int64_t kEvery = 60;
  const int kSessions = 64;
  const BatchReference ref = MakeReference("oasis", 30);

  for (const int threads : {1, 8}) {
    SessionManagerOptions options;
    options.num_threads = threads;
    SessionManager manager(options);
    InProcessTransport transport(&manager);

    std::vector<int64_t> ids(kSessions);
    {
      ServiceClient client(&transport);
      for (int s = 0; s < kSessions; ++s) {
        ids[static_cast<size_t>(s)] =
            client
                .Start(MakeSpec("oasis", kBudget, kEvery,
                                static_cast<uint64_t>(s)))
                .ValueOrDie();
      }
    }
    EXPECT_EQ(manager.ActiveSessions(), kSessions);

    // Drive sessions concurrently from 8 client threads, one client each,
    // with a per-session request slicing (17..189 labels per call) that
    // never matches the checkpoint grid.
    std::vector<std::thread> drivers;
    for (int t = 0; t < 8; ++t) {
      drivers.emplace_back([&, t] {
        ServiceClient client(&transport);
        for (int s = t; s < kSessions; s += 8) {
          const int64_t id = ids[static_cast<size_t>(s)];
          const int64_t slice = 17 + 43 * (s % 5);
          while (true) {
            const Result<LabelArrived> arrived =
                client.RequestLabels(id, slice);
            ASSERT_TRUE(arrived.ok()) << arrived.status().ToString();
            if (arrived.ValueOrDie().report.done) break;
          }
        }
      });
    }
    for (std::thread& driver : drivers) driver.join();

    ServiceClient client(&transport);
    for (int s = 0; s < kSessions; ++s) {
      const Trajectory batch =
          BatchTrajectory(ref, kBudget, kEvery, static_cast<uint64_t>(s));
      const CheckpointAck ack =
          client.GetCheckpoint(ids[static_cast<size_t>(s)]).ValueOrDie();
      ASSERT_EQ(ack.budgets.size(), batch.snapshots.size());
      ASSERT_TRUE(ack.done);
      EXPECT_EQ(ack.labels_consumed, batch.labels_consumed);
      for (size_t i = 0; i < batch.snapshots.size(); ++i) {
        EXPECT_EQ(ack.f_alpha[i], batch.snapshots[i].f_alpha)
            << "threads=" << threads << " session " << s << " checkpoint "
            << i;
        EXPECT_EQ(ack.f_defined[i] != 0, batch.snapshots[i].f_defined);
      }
      const EstimateReport final_report =
          client.Close(ids[static_cast<size_t>(s)]).ValueOrDie();
      EXPECT_EQ(final_report.f_alpha, batch.snapshots.back().f_alpha);
      EXPECT_TRUE(final_report.done);
    }
    EXPECT_EQ(manager.ActiveSessions(), 0);
  }
}

// Sessions whose stack injects transient faults (recovered by retries) must
// STILL be bit-identical to the batch runner with the same stack — the
// session's whole-batch stepping keeps the fault schedule aligned.
TEST(SessionServer, FaultInjectedSessionsMatchBatchRunner) {
  const int64_t kBudget = 160;
  const int64_t kEvery = 40;
  const int kSessions = 12;

  StackSpec stack;
  FaultInjectionOptions fault;
  fault.transient_failure_rate = 0.05;
  fault.timeout_rate = 0.03;
  fault.seed = 0xfadedULL;
  stack.fault_injection = fault;
  // Enough attempts that an 8% per-attempt fault rate cannot plausibly
  // exhaust the retries anywhere in 12 repeats x 160 labels.
  RetryPolicy retry;
  retry.max_attempts = 8;
  stack.retry = retry;

  // Batch side: RunErrorCurve with the same declarative stack.
  const BatchReference ref = MakeReference("passive", 30);
  experiments::RunnerOptions runner;
  runner.repeats = kSessions;
  runner.base_seed = kSeed;
  runner.num_threads = 2;
  runner.trajectory.budget = kBudget;
  runner.trajectory.checkpoint_every = kEvery;
  runner.stack = stack;
  const experiments::ErrorCurve curve =
      experiments::RunErrorCurve(ref.method, ref.pool.scored, *ref.oracle,
                                 ref.pool.true_f, runner)
          .ValueOrDie();

  SessionManager manager;
  InProcessTransport transport(&manager);
  ServiceClient client(&transport);
  for (int s = 0; s < kSessions; ++s) {
    SessionSpec spec =
        MakeSpec("passive", kBudget, kEvery, static_cast<uint64_t>(s));
    spec.stack = stack;
    const int64_t id = client.Start(spec).ValueOrDie();
    // Run to completion in one shot (labels <= 0).
    const LabelArrived arrived = client.RequestLabels(id, 0).ValueOrDie();
    ASSERT_TRUE(arrived.report.done);
    EXPECT_EQ(arrived.report.f_alpha,
              curve.final_estimates[static_cast<size_t>(s)])
        << "session " << s;
    EXPECT_EQ(arrived.report.f_defined,
              curve.final_defined[static_cast<size_t>(s)] != 0);
    EXPECT_TRUE(client.Close(id).ok());
  }
}

// A chaos leg: one session's oracle stack goes into permanent outage (no
// retries to save it). Its error parks on the session — every later request
// reports it — while sibling sessions on the SAME backend converge
// unperturbed.
TEST(SessionServer, OutageSessionFailsAloneSiblingsConverge) {
  const int64_t kBudget = 160;
  const int64_t kEvery = 40;
  const BatchReference ref = MakeReference("oasis", 30);

  SessionManager manager;
  InProcessTransport transport(&manager);
  ServiceClient client(&transport);

  const int64_t healthy_a =
      client.Start(MakeSpec("oasis", kBudget, kEvery, 0)).ValueOrDie();
  SessionSpec doomed_spec = MakeSpec("oasis", kBudget, kEvery, 1);
  FaultInjectionOptions outage;
  outage.outage_after_attempts = 0;  // Down from the first attempt.
  doomed_spec.stack.fault_injection = outage;
  const int64_t doomed = client.Start(doomed_spec).ValueOrDie();
  const int64_t healthy_b =
      client.Start(MakeSpec("oasis", kBudget, kEvery, 2)).ValueOrDie();

  // The doomed session fails its first advance with the outage status...
  const Result<LabelArrived> failed = client.RequestLabels(doomed, 0);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  // ...and the failure is sticky, surfacing on every later request.
  EXPECT_EQ(client.GetEstimate(doomed).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client.GetCheckpoint(doomed).status().code(),
            StatusCode::kUnavailable);

  // Siblings on the same backend still match the batch runner bit for bit.
  for (const auto& [id, stream] :
       {std::pair<int64_t, uint64_t>{healthy_a, 0},
        std::pair<int64_t, uint64_t>{healthy_b, 2}}) {
    const LabelArrived arrived = client.RequestLabels(id, 0).ValueOrDie();
    ASSERT_TRUE(arrived.report.done);
    const Trajectory batch = BatchTrajectory(ref, kBudget, kEvery, stream);
    EXPECT_EQ(arrived.report.f_alpha, batch.snapshots.back().f_alpha);
  }

  // Closing the doomed session reports the parked error and still frees it.
  EXPECT_EQ(client.Close(doomed).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(client.Close(healthy_a).ok());
  EXPECT_TRUE(client.Close(healthy_b).ok());
  EXPECT_EQ(manager.ActiveSessions(), 0);
}

// Sessions routing labels through a RemoteOracle with cross-session label
// sharing: the shared store only short-circuits the simulated wire — the
// estimates stay bit-identical to stackless sessions.
TEST(SessionServer, SharedLabelStoreLeavesEstimatesUntouched) {
  const int64_t kBudget = 160;
  const int64_t kEvery = 40;
  const int kSessions = 8;
  const BatchReference ref = MakeReference("oasis", 30);

  SessionManager manager;
  InProcessTransport transport(&manager);
  ServiceClient client(&transport);

  StackSpec shared;
  RemoteOracleOptions remote;
  remote.round_trip_seconds = 1.0;
  remote.per_item_seconds = 0.1;
  shared.remote = remote;
  shared.share_labels = true;

  for (int s = 0; s < kSessions; ++s) {
    SessionSpec spec =
        MakeSpec("oasis", kBudget, kEvery, static_cast<uint64_t>(s));
    spec.stack = shared;
    const int64_t id = client.Start(spec).ValueOrDie();
    const LabelArrived arrived = client.RequestLabels(id, 0).ValueOrDie();
    ASSERT_TRUE(arrived.report.done);
    const Trajectory batch =
        BatchTrajectory(ref, kBudget, kEvery, static_cast<uint64_t>(s));
    EXPECT_EQ(arrived.report.f_alpha, batch.snapshots.back().f_alpha)
        << "session " << s;
    EXPECT_TRUE(client.Close(id).ok());
  }
}

// Asynchronous advances (wait = false) queue on the manager's pool; a later
// estimate/checkpoint/close settles them first, so the observable state is
// as if the advance had been synchronous.
TEST(SessionServer, AsynchronousAdvancesSettleBeforeReads) {
  const int64_t kBudget = 200;
  const int64_t kEvery = 50;
  const BatchReference ref = MakeReference("passive", 30);

  SessionManager manager;
  InProcessTransport transport(&manager);
  ServiceClient client(&transport);

  const int64_t id =
      client.Start(MakeSpec("passive", kBudget, kEvery, 5)).ValueOrDie();
  // Four queued advances cover the budget; none is waited on directly.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.EnqueueLabels(id, 50).ok());
  }
  const EstimateReport report = client.GetEstimate(id).ValueOrDie();
  EXPECT_TRUE(report.done);
  const Trajectory batch = BatchTrajectory(ref, kBudget, kEvery, 5);
  EXPECT_EQ(report.f_alpha, batch.snapshots.back().f_alpha);
  EXPECT_TRUE(client.Close(id).ok());
}

// A thousand concurrent passive sessions — the "evaluation-as-a-service"
// scale target — all completing and all bit-identical to a 1000-repeat batch
// run's final estimates.
TEST(SessionServer, ThousandSessionsStress) {
  const int64_t kBudget = 60;
  const int64_t kEvery = 30;
  const int kSessions = 1000;
  const BatchReference ref = MakeReference("passive", 30);

  experiments::RunnerOptions runner;
  runner.repeats = kSessions;
  runner.base_seed = kSeed;
  runner.trajectory.budget = kBudget;
  runner.trajectory.checkpoint_every = kEvery;
  const experiments::ErrorCurve curve =
      experiments::RunErrorCurve(ref.method, ref.pool.scored, *ref.oracle,
                                 ref.pool.true_f, runner)
          .ValueOrDie();

  SessionManager manager;
  InProcessTransport transport(&manager);
  ServiceClient client(&transport);
  std::vector<int64_t> ids(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    ids[static_cast<size_t>(s)] =
        client.Start(MakeSpec("passive", kBudget, kEvery,
                              static_cast<uint64_t>(s)))
            .ValueOrDie();
    // Queue the full run asynchronously; all 1000 multiplex onto the pool.
    ASSERT_TRUE(client.EnqueueLabels(ids[static_cast<size_t>(s)], 0).ok());
  }
  EXPECT_EQ(manager.ActiveSessions(), kSessions);
  for (int s = 0; s < kSessions; ++s) {
    const EstimateReport report =
        client.Close(ids[static_cast<size_t>(s)]).ValueOrDie();
    EXPECT_TRUE(report.done);
    EXPECT_EQ(report.f_alpha, curve.final_estimates[static_cast<size_t>(s)])
        << "session " << s;
  }
  EXPECT_EQ(manager.ActiveSessions(), 0);
}

// Server-side handling of hostile bytes and unknown sessions: the channel
// answers with error_reply, the server survives.
TEST(SessionServer, ProtocolErrorsBecomeErrorReplies) {
  SessionManager manager;
  InProcessTransport transport(&manager);

  const Result<std::string> reply = transport.RoundTrip("not a protocol line");
  ASSERT_TRUE(reply.ok());
  const Result<Response> parsed = ParseResponse(reply.ValueOrDie());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(std::holds_alternative<ErrorReply>(parsed.ValueOrDie()));
  EXPECT_EQ(std::get<ErrorReply>(parsed.ValueOrDie()).code,
            "InvalidArgument");

  ServiceClient client(&transport);
  EXPECT_EQ(client.GetEstimate(12345).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Close(12345).status().code(), StatusCode::kNotFound);
  SessionSpec bad = MakeSpec("oasis", 100, 10, 0);
  bad.scenario = "no-such-scenario";
  EXPECT_FALSE(client.Start(bad).ok());
  bad = MakeSpec("frequentist", 100, 10, 0);
  EXPECT_FALSE(client.Start(bad).ok());
  bad = MakeSpec("oasis", 0, 10, 0);
  EXPECT_FALSE(client.Start(bad).ok());
  // The manager survived all of it.
  EXPECT_EQ(manager.ActiveSessions(), 0);
}

}  // namespace
}  // namespace service
}  // namespace oasis
