// OracleStackBuilder tests: the single sanctioned way to compose the repo's
// oracle decorators (base <- FaultInjecting <- Remote <- Retrying). Locks
// the composition order, the ForkSeeds decorrelation contract (bit-equal to
// the experiment runner's historical per-repeat forking), the StackSpec
// config round-trip, the share-without-remote gate, and the deprecated
// RunnerOptions aliases' equivalence to the declarative spec.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "experiments/config.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "oracle/oracle_stack.h"
#include "test_util.h"

namespace oasis {
namespace {

testutil::SyntheticPool SmallPool() {
  testutil::SyntheticPoolOptions options;
  options.size = 400;
  options.match_fraction = 0.08;
  options.seed = 77;
  return testutil::MakeSyntheticPool(options);
}

/// A StackSpec exercising every layer and every non-default field.
StackSpec FullSpec() {
  StackSpec spec;
  FaultInjectionOptions fault;
  fault.transient_failure_rate = 0.125;
  fault.timeout_rate = 0.0625;
  fault.item_drop_rate = 0.03125;
  fault.outage_after_attempts = 33;
  fault.seed = 0x5eedULL;
  spec.fault_injection = fault;
  RemoteOracleOptions remote;
  remote.round_trip_seconds = 3.5;
  remote.per_item_seconds = 0.75;
  remote.cost_per_label = 0.015625;
  remote.jitter_fraction = 0.25;
  remote.jitter_seed = 0xabcdULL;
  remote.max_items_per_round_trip = 64;
  spec.remote = remote;
  RetryPolicy retry;
  retry.max_attempts = 7;
  retry.initial_backoff_seconds = 0.5;
  retry.backoff_multiplier = 1.5;
  retry.max_backoff_seconds = 12.0;
  retry.jitter_fraction = 0.125;
  retry.jitter_seed = 0x1234ULL;
  retry.per_attempt_timeout_seconds = 90.0;
  retry.overall_deadline_seconds = 600.0;
  retry.breaker_failure_threshold = 5;
  retry.breaker_cooldown_calls = 11;
  spec.retry = retry;
  spec.share_labels = true;
  return spec;
}

TEST(OracleStackBuilder, EmptySpecIsPassThrough) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle base(pool.truth);
  const OracleStack stack = OracleStackBuilder().Build(&base).ValueOrDie();
  EXPECT_EQ(&stack.top(), &base);
  EXPECT_EQ(stack.fault_injecting(), nullptr);
  EXPECT_EQ(stack.remote(), nullptr);
  EXPECT_EQ(stack.retrying(), nullptr);
  EXPECT_FALSE(stack.spec().any());
}

TEST(OracleStackBuilder, FullStackComposesInFixedOrder) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle base(pool.truth);
  SharedLabelStore store(base.num_items());
  // Every layer present, but the fault layer kept quiet (FullSpec's rates
  // and outage threshold would take the stack down mid-test).
  StackSpec spec = FullSpec();
  spec.fault_injection = FaultInjectionOptions{};
  const OracleStack stack =
      OracleStackBuilder(spec).ShareLabels(&store).Build(&base).ValueOrDie();
  // Every layer present, retry on top — the oracle a LabelCache talks to.
  ASSERT_NE(stack.fault_injecting(), nullptr);
  ASSERT_NE(stack.remote(), nullptr);
  ASSERT_NE(stack.retrying(), nullptr);
  EXPECT_EQ(&stack.top(), stack.retrying());
  EXPECT_EQ(stack.retrying()->policy().max_attempts, 7);

  // Labels still flow end to end through the whole stack, verbatim.
  LabelCache labels(&stack.top());
  Rng rng(5);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(labels.TryQuery(i, rng).ValueOrDie(),
              pool.truth[static_cast<size_t>(i)] != 0)
        << "item " << i;
  }
}

TEST(OracleStackBuilder, MovingTheStackKeepsLayerAddressesStable) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle base(pool.truth);
  SharedLabelStore store(base.num_items());
  OracleStack stack = OracleStackBuilder(FullSpec())
                          .ShareLabels(&store)
                          .Build(&base)
                          .ValueOrDie();
  const Oracle* top_before = &stack.top();
  const OracleStack moved = std::move(stack);
  EXPECT_EQ(&moved.top(), top_before);
}

TEST(OracleStackBuilder, ForkSeedsMatchesHistoricRunnerForking) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle base(pool.truth);
  SharedLabelStore store(base.num_items());
  const StackSpec spec = FullSpec();
  for (const uint64_t stream : {uint64_t{0}, uint64_t{3}, uint64_t{41}}) {
    const OracleStack stack = OracleStackBuilder(spec)
                                  .ShareLabels(&store)
                                  .ForkSeeds(stream)
                                  .Build(&base)
                                  .ValueOrDie();
    // The exact per-repeat derivation the experiment runner has always used:
    // seed' = Rng::Fork(seed, repeat).NextUint64().
    EXPECT_EQ(stack.spec().fault_injection->seed,
              Rng::Fork(spec.fault_injection->seed, stream).NextUint64());
    EXPECT_EQ(stack.spec().remote->jitter_seed,
              Rng::Fork(spec.remote->jitter_seed, stream).NextUint64());
    // Everything else in the spec is untouched by forking.
    EXPECT_EQ(stack.spec().fault_injection->transient_failure_rate,
              spec.fault_injection->transient_failure_rate);
    EXPECT_EQ(stack.spec().remote->round_trip_seconds,
              spec.remote->round_trip_seconds);
  }
  // Without ForkSeeds the seeds pass through verbatim.
  const OracleStack unforked =
      OracleStackBuilder(spec).ShareLabels(&store).Build(&base).ValueOrDie();
  EXPECT_EQ(unforked.spec().fault_injection->seed, spec.fault_injection->seed);
  EXPECT_EQ(unforked.spec().remote->jitter_seed, spec.remote->jitter_seed);
}

TEST(OracleStackBuilder, ShareLabelsRequiresARemoteLayer) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle base(pool.truth);
  SharedLabelStore store(base.num_items());
  const Result<OracleStack> no_wire =
      OracleStackBuilder().ShareLabels(&store).Build(&base);
  ASSERT_FALSE(no_wire.ok());
  EXPECT_EQ(no_wire.status().code(), StatusCode::kInvalidArgument);

  // A spec that claims sharing but configures no remote fails the same way
  // even when no store is attached.
  StackSpec spec;
  spec.share_labels = true;
  EXPECT_FALSE(OracleStackBuilder(spec).Build(&base).ok());

  // Null base is rejected before anything is composed.
  EXPECT_FALSE(OracleStackBuilder().Build(nullptr).ok());
}

TEST(OracleStackBuilder, StackSpecConfigRoundTripsValueExactly) {
  const StackSpec spec = FullSpec();
  std::string text;
  experiments::AppendStackSpecConfig(spec, "stack_", &text);
  const experiments::ConfigMap config =
      experiments::ConfigMap::Parse(text).ValueOrDie();
  const StackSpec back =
      experiments::StackSpecFromConfig(config, "stack_").ValueOrDie();
  ASSERT_TRUE(config.CheckAllKeysUsed().ok());

  ASSERT_TRUE(back.fault_injection.has_value());
  EXPECT_EQ(back.fault_injection->transient_failure_rate,
            spec.fault_injection->transient_failure_rate);
  EXPECT_EQ(back.fault_injection->timeout_rate,
            spec.fault_injection->timeout_rate);
  EXPECT_EQ(back.fault_injection->item_drop_rate,
            spec.fault_injection->item_drop_rate);
  EXPECT_EQ(back.fault_injection->outage_after_attempts,
            spec.fault_injection->outage_after_attempts);
  EXPECT_EQ(back.fault_injection->seed, spec.fault_injection->seed);
  ASSERT_TRUE(back.remote.has_value());
  EXPECT_EQ(back.remote->round_trip_seconds, spec.remote->round_trip_seconds);
  EXPECT_EQ(back.remote->per_item_seconds, spec.remote->per_item_seconds);
  EXPECT_EQ(back.remote->cost_per_label, spec.remote->cost_per_label);
  EXPECT_EQ(back.remote->jitter_fraction, spec.remote->jitter_fraction);
  EXPECT_EQ(back.remote->jitter_seed, spec.remote->jitter_seed);
  EXPECT_EQ(back.remote->max_items_per_round_trip,
            spec.remote->max_items_per_round_trip);
  ASSERT_TRUE(back.retry.has_value());
  EXPECT_EQ(back.retry->max_attempts, spec.retry->max_attempts);
  EXPECT_EQ(back.retry->initial_backoff_seconds,
            spec.retry->initial_backoff_seconds);
  EXPECT_EQ(back.retry->backoff_multiplier, spec.retry->backoff_multiplier);
  EXPECT_EQ(back.retry->max_backoff_seconds, spec.retry->max_backoff_seconds);
  EXPECT_EQ(back.retry->jitter_fraction, spec.retry->jitter_fraction);
  EXPECT_EQ(back.retry->jitter_seed, spec.retry->jitter_seed);
  EXPECT_EQ(back.retry->per_attempt_timeout_seconds,
            spec.retry->per_attempt_timeout_seconds);
  EXPECT_EQ(back.retry->overall_deadline_seconds,
            spec.retry->overall_deadline_seconds);
  EXPECT_EQ(back.retry->breaker_failure_threshold,
            spec.retry->breaker_failure_threshold);
  EXPECT_EQ(back.retry->breaker_cooldown_calls,
            spec.retry->breaker_cooldown_calls);
  EXPECT_TRUE(back.share_labels);

  // An empty spec serialises to nothing and parses back empty.
  std::string empty;
  experiments::AppendStackSpecConfig(StackSpec{}, "stack_", &empty);
  EXPECT_TRUE(empty.empty());
}

TEST(OracleStackBuilder, DeprecatedRunnerAliasesMergeIntoStackSpec) {
  experiments::RunnerOptions legacy;
  legacy.fault_injection = FullSpec().fault_injection;
  legacy.remote_oracle = FullSpec().remote;
  legacy.retry_policy = FullSpec().retry;
  legacy.remote_share_labels = true;
  const StackSpec merged = experiments::EffectiveStackSpec(legacy);
  EXPECT_EQ(merged.fault_injection->seed, FullSpec().fault_injection->seed);
  EXPECT_EQ(merged.remote->jitter_seed, FullSpec().remote->jitter_seed);
  EXPECT_EQ(merged.retry->max_attempts, FullSpec().retry->max_attempts);
  EXPECT_TRUE(merged.share_labels);

  // The declarative spec wins over the aliases where both are set.
  experiments::RunnerOptions both = legacy;
  FaultInjectionOptions newer;
  newer.seed = 0x999ULL;
  both.stack.fault_injection = newer;
  EXPECT_EQ(experiments::EffectiveStackSpec(both).fault_injection->seed,
            0x999ULL);

  // Historical tolerance: share without a remote layer normalises to off.
  experiments::RunnerOptions shareless;
  shareless.remote_share_labels = true;
  EXPECT_FALSE(experiments::EffectiveStackSpec(shareless).share_labels);
}

// The end-to-end equivalence behind the deprecation: a run configured
// through the old per-layer fields is bit-identical to the same run
// configured through RunnerOptions::stack.
TEST(OracleStackBuilder, LegacyAliasRunsMatchDeclarativeStackRuns) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle oracle(pool.truth);

  StackSpec spec;
  FaultInjectionOptions fault;
  fault.transient_failure_rate = 0.04;
  spec.fault_injection = fault;
  RetryPolicy retry;
  retry.max_attempts = 8;
  spec.retry = retry;

  experiments::RunnerOptions base;
  base.repeats = 6;
  base.base_seed = 99;
  base.trajectory.budget = 120;
  base.trajectory.checkpoint_every = 40;

  experiments::RunnerOptions declarative = base;
  declarative.stack = spec;
  experiments::RunnerOptions aliased = base;
  aliased.fault_injection = fault;
  aliased.retry_policy = retry;

  const experiments::ErrorCurve lhs =
      experiments::RunErrorCurve(experiments::MakePassiveSpec(0.5), pool.scored,
                                 oracle, pool.true_measures.f_alpha,
                                 declarative)
          .ValueOrDie();
  const experiments::ErrorCurve rhs =
      experiments::RunErrorCurve(experiments::MakePassiveSpec(0.5), pool.scored,
                                 oracle, pool.true_measures.f_alpha, aliased)
          .ValueOrDie();
  ASSERT_EQ(lhs.final_estimates.size(), rhs.final_estimates.size());
  for (size_t r = 0; r < lhs.final_estimates.size(); ++r) {
    EXPECT_EQ(lhs.final_estimates[r], rhs.final_estimates[r]) << "repeat " << r;
  }
  EXPECT_EQ(lhs.mean_abs_error, rhs.mean_abs_error);
  EXPECT_EQ(lhs.mean_retries, rhs.mean_retries);
}

}  // namespace
}  // namespace oasis
