#include "er/pipeline.h"

#include <gtest/gtest.h>

#include <memory>

#include "classify/linear_svm.h"

namespace oasis {
namespace er {
namespace {

struct Fixture {
  Database left;
  Database right;
  TrainingSet training;
  std::vector<RecordPair> eval_pairs;
  std::vector<uint8_t> eval_truth;
};

Record MakeRecord(const std::string& name, const std::string& blurb, double price) {
  Record r;
  r.values.push_back(FieldValue::Text(name));
  r.values.push_back(FieldValue::Text(blurb));
  r.values.push_back(FieldValue::Number(price));
  return r;
}

/// Two tiny catalogues with three matching products and noise entries.
Fixture MakeFixture() {
  Fixture fx;
  Schema schema({{"name", FieldKind::kShortText},
                 {"blurb", FieldKind::kLongText},
                 {"price", FieldKind::kNumeric}});
  fx.left.schema = schema;
  fx.right.schema = schema;

  fx.left.records = {
      MakeRecord("acme widget xr1", "compact widget for the home office", 49.0),
      MakeRecord("bolt driver m3", "torque driver with led light", 120.0),
      MakeRecord("clear kettle", "glass kettle fast boil", 35.0),
      MakeRecord("random lamp", "warm light bedroom lamp", 20.0),
  };
  fx.right.records = {
      MakeRecord("acme widget xr-1", "compact widget for home office use", 47.5),
      MakeRecord("bolt driver m-3", "torque driver, led light included", 118.0),
      MakeRecord("cleer kettle", "glass kettle with fast boil", 36.0),
      MakeRecord("desk chair", "ergonomic mesh chair", 150.0),
  };

  // Training pairs: the three matches plus assorted non-matches.
  for (int32_t i = 0; i < 3; ++i) {
    fx.training.pairs.push_back({i, i});
    fx.training.labels.push_back(1);
  }
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 4; ++j) {
      if (i == j && i < 3) continue;
      fx.training.pairs.push_back({i, j});
      fx.training.labels.push_back(0);
    }
  }

  // Evaluation pairs: all 16 cross pairs.
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 4; ++j) {
      fx.eval_pairs.push_back({i, j});
      fx.eval_truth.push_back(i == j && i < 3 ? 1 : 0);
    }
  }
  return fx;
}

TEST(CachedFeaturizerTest, MatchesPairsScoreHigherThanNonMatches) {
  Fixture fx = MakeFixture();
  CachedFeaturizer featurizer =
      CachedFeaturizer::Build(fx.left, fx.right).ValueOrDie();
  EXPECT_EQ(featurizer.num_features(), 3u);

  const std::vector<double> match = featurizer.Features(0, 0);
  const std::vector<double> non_match = featurizer.Features(0, 3);
  double match_sum = 0.0;
  double non_sum = 0.0;
  for (size_t f = 0; f < 3; ++f) {
    match_sum += match[f];
    non_sum += non_match[f];
  }
  EXPECT_GT(match_sum, non_sum + 0.5);
}

TEST(CachedFeaturizerTest, DedupSelfJoinWorks) {
  Fixture fx = MakeFixture();
  CachedFeaturizer featurizer =
      CachedFeaturizer::Build(fx.left, fx.left).ValueOrDie();
  const std::vector<double> self = featurizer.Features(1, 1);
  EXPECT_NEAR(self[0], 1.0, 1e-9);
  EXPECT_NEAR(self[2], 1.0, 1e-9);
}

TEST(ErPipelineTest, TrainThenScoreSeparatesClasses) {
  Fixture fx = MakeFixture();
  ErPipeline pipeline = ErPipeline::Create(&fx.left, &fx.right).ValueOrDie();
  EXPECT_FALSE(pipeline.trained());

  Rng rng(21);
  ASSERT_TRUE(pipeline
                  .Train(fx.training, std::make_unique<classify::LinearSvm>(), rng)
                  .ok());
  EXPECT_TRUE(pipeline.trained());

  ScoredPool pool = pipeline.ScorePairs(fx.eval_pairs).ValueOrDie();
  ASSERT_EQ(pool.size(), static_cast<int64_t>(fx.eval_pairs.size()));
  EXPECT_FALSE(pool.scores_are_probabilities);  // SVM margins.
  ASSERT_TRUE(pool.Validate().ok());

  // Every match must outscore every non-match on this easy fixture.
  double min_match = 1e9;
  double max_non = -1e9;
  for (size_t i = 0; i < fx.eval_pairs.size(); ++i) {
    if (fx.eval_truth[i] != 0) {
      min_match = std::min(min_match, pool.scores[i]);
    } else {
      max_non = std::max(max_non, pool.scores[i]);
    }
  }
  EXPECT_GT(min_match, max_non);
}

TEST(ErPipelineTest, ScoreBeforeTrainFails) {
  Fixture fx = MakeFixture();
  ErPipeline pipeline = ErPipeline::Create(&fx.left, &fx.right).ValueOrDie();
  EXPECT_FALSE(pipeline.ScorePairs(fx.eval_pairs).ok());
}

TEST(ErPipelineTest, RejectsBadTrainingSet) {
  Fixture fx = MakeFixture();
  ErPipeline pipeline = ErPipeline::Create(&fx.left, &fx.right).ValueOrDie();
  Rng rng(23);
  TrainingSet empty;
  EXPECT_FALSE(
      pipeline.Train(empty, std::make_unique<classify::LinearSvm>(), rng).ok());
  EXPECT_FALSE(pipeline.Train(fx.training, nullptr, rng).ok());
}

TEST(ErPipelineTest, RejectsNullDatabases) {
  Fixture fx = MakeFixture();
  EXPECT_FALSE(ErPipeline::Create(nullptr, &fx.right).ok());
  EXPECT_FALSE(ErPipeline::Create(&fx.left, nullptr).ok());
}

}  // namespace
}  // namespace er
}  // namespace oasis
