// FaultInjectingOracle tests: the chaos schedule is deterministic (a pure
// function of options + attempt sequence, independent of the caller's RNG),
// each failure kind maps to its documented status, partial batches drop the
// scheduled items while delegating the survivors verbatim, and a zero-rate
// schedule is a transparent pass-through.
//
// Chaos tests honour OASIS_CHAOS_SEED (see docs/FAULT_MODEL.md): assertions
// are seed-independent — they check the failure taxonomy and label fidelity,
// never a particular fault landing on a particular attempt.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/ground_truth_oracle.h"

namespace oasis {
namespace {

/// Chaos seed override for CI sweeps; defaults to a fixed value so a plain
/// test run is reproducible.
uint64_t ChaosSeed() {
  const char* env = std::getenv("OASIS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 0xfa17ULL;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

std::vector<uint8_t> MakeTruth(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> truth(n);
  for (auto& t : truth) t = rng.NextBernoulli(0.4) ? 1 : 0;
  return truth;
}

TEST(FaultInjectingOracleTest, ZeroRateScheduleIsTransparent) {
  const std::vector<uint8_t> truth = MakeTruth(64, 11);
  GroundTruthOracle inner(truth);
  FaultInjectingOracle oracle(&inner, FaultInjectionOptions{});
  EXPECT_TRUE(oracle.fallible());
  EXPECT_EQ(oracle.num_items(), inner.num_items());
  EXPECT_EQ(oracle.deterministic(), inner.deterministic());
  EXPECT_EQ(oracle.labelling_consumes_rng(), inner.labelling_consumes_rng());

  std::vector<int64_t> items;
  for (int64_t i = 0; i < 64; ++i) items.push_back(i);
  std::vector<uint8_t> out(items.size(), 0xcc);
  std::vector<uint8_t> resolved(items.size(), 0);
  Rng rng(12);
  ASSERT_TRUE(oracle.TryLabelBatch(items, rng, out, resolved).ok());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NE(resolved[i], 0) << "position " << i;
    EXPECT_EQ(out[i], truth[i]) << "position " << i;
  }
  // Even the zero-fault fast path consumes an attempt number, so splicing
  // faults in later never renumbers the schedule suffix.
  EXPECT_EQ(oracle.stats().attempts, 1);
  EXPECT_EQ(oracle.stats().injected_failures, 0);
  EXPECT_EQ(oracle.stats().dropped_items, 0);
}

TEST(FaultInjectingOracleTest, ScheduleIsDeterministicAndCallerRngFree) {
  const std::vector<uint8_t> truth = MakeTruth(100, 21);
  GroundTruthOracle inner(truth);
  FaultInjectionOptions options;
  options.transient_failure_rate = 0.3;
  options.timeout_rate = 0.2;
  options.item_drop_rate = 0.25;
  options.seed = ChaosSeed();

  // Two decorators on the same schedule, driven with DIFFERENT caller RNGs:
  // the fault pattern must be identical attempt for attempt.
  FaultInjectingOracle a(&inner, options);
  FaultInjectingOracle b(&inner, options);
  Rng rng_a(1);
  Rng rng_b(999);
  std::vector<int64_t> items{5, 17, 3, 42, 99, 0, 63, 28};
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<uint8_t> out_a(items.size()), out_b(items.size());
    std::vector<uint8_t> res_a(items.size()), res_b(items.size());
    const Status sa = a.TryLabelBatch(items, rng_a, out_a, res_a);
    const Status sb = b.TryLabelBatch(items, rng_b, out_b, res_b);
    EXPECT_EQ(sa.code(), sb.code()) << "attempt " << attempt;
    EXPECT_EQ(res_a, res_b) << "attempt " << attempt;
    for (size_t i = 0; i < items.size(); ++i) {
      if (res_a[i] != 0) {
        // Whatever got through is the inner oracle's verbatim answer.
        EXPECT_EQ(out_a[i], truth[static_cast<size_t>(items[i])]);
        EXPECT_EQ(out_b[i], truth[static_cast<size_t>(items[i])]);
      }
    }
  }
  const FaultInjectionStats stats = a.stats();
  EXPECT_EQ(stats.attempts, 200);
  EXPECT_EQ(stats.injected_failures, b.stats().injected_failures);
  EXPECT_EQ(stats.injected_timeouts, b.stats().injected_timeouts);
  EXPECT_EQ(stats.dropped_items, b.stats().dropped_items);
  // With these rates over 200 attempts, every fault kind fires (true for any
  // seed with overwhelming probability; rates are not tuned to a seed).
  EXPECT_GT(stats.injected_failures, 0);
  EXPECT_GT(stats.injected_timeouts, 0);
  EXPECT_GT(stats.dropped_items, 0);
}

TEST(FaultInjectingOracleTest, FailureKindsMapToDocumentedStatuses) {
  const std::vector<uint8_t> truth = MakeTruth(32, 31);
  GroundTruthOracle inner(truth);
  const std::vector<int64_t> items{1, 2, 3, 4};

  {
    FaultInjectionOptions options;
    options.transient_failure_rate = 1.0;
    options.seed = ChaosSeed();
    FaultInjectingOracle oracle(&inner, options);
    std::vector<uint8_t> out(items.size()), resolved(items.size(), 0xee);
    Rng rng(1);
    const Status status = oracle.TryLabelBatch(items, rng, out, resolved);
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    for (uint8_t r : resolved) EXPECT_EQ(r, 0);
  }
  {
    FaultInjectionOptions options;
    options.timeout_rate = 1.0;
    options.seed = ChaosSeed();
    FaultInjectingOracle oracle(&inner, options);
    std::vector<uint8_t> out(items.size()), resolved(items.size(), 0xee);
    Rng rng(1);
    const Status status = oracle.TryLabelBatch(items, rng, out, resolved);
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    for (uint8_t r : resolved) EXPECT_EQ(r, 0);
    EXPECT_EQ(oracle.stats().injected_timeouts, 1);
  }
  {
    // Full drop rate: the attempt "succeeds" but resolves nothing — the
    // partial-batch contract's extreme case.
    FaultInjectionOptions options;
    options.item_drop_rate = 1.0;
    options.seed = ChaosSeed();
    FaultInjectingOracle oracle(&inner, options);
    std::vector<uint8_t> out(items.size()), resolved(items.size(), 0xee);
    Rng rng(1);
    ASSERT_TRUE(oracle.TryLabelBatch(items, rng, out, resolved).ok());
    for (uint8_t r : resolved) EXPECT_EQ(r, 0);
    EXPECT_EQ(oracle.stats().dropped_items,
              static_cast<int64_t>(items.size()));
  }
}

TEST(FaultInjectingOracleTest, PartialBatchResolvesExactlyTheKeptSubset) {
  const std::vector<uint8_t> truth = MakeTruth(256, 41);
  GroundTruthOracle inner(truth);
  FaultInjectionOptions options;
  options.item_drop_rate = 0.5;
  options.seed = ChaosSeed();
  FaultInjectingOracle oracle(&inner, options);

  std::vector<int64_t> items;
  for (int64_t i = 0; i < 256; ++i) items.push_back((i * 7) % 256);
  std::vector<uint8_t> out(items.size(), 0xcc);
  std::vector<uint8_t> resolved(items.size(), 0xee);
  Rng rng(7);
  ASSERT_TRUE(oracle.TryLabelBatch(items, rng, out, resolved).ok());

  int64_t kept = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (resolved[i] != 0) {
      ++kept;
      EXPECT_EQ(out[i], truth[static_cast<size_t>(items[i])]) << "position " << i;
    }
  }
  // Half-rate drops on 256 items: both outcomes occur (seed-independent with
  // overwhelming probability).
  EXPECT_GT(kept, 0);
  EXPECT_LT(kept, static_cast<int64_t>(items.size()));
  EXPECT_EQ(oracle.stats().dropped_items,
            static_cast<int64_t>(items.size()) - kept);
}

TEST(FaultInjectingOracleTest, OutageRefusesEveryAttemptAfterGracePeriod) {
  const std::vector<uint8_t> truth = MakeTruth(16, 51);
  GroundTruthOracle inner(truth);
  FaultInjectionOptions options;
  options.outage_after_attempts = 3;
  options.seed = ChaosSeed();
  FaultInjectingOracle oracle(&inner, options);

  const std::vector<int64_t> items{0, 1, 2};
  Rng rng(9);
  for (int attempt = 0; attempt < 10; ++attempt) {
    std::vector<uint8_t> out(items.size()), resolved(items.size());
    const Status status = oracle.TryLabelBatch(items, rng, out, resolved);
    if (attempt < 3) {
      EXPECT_TRUE(status.ok()) << "attempt " << attempt;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable) << "attempt " << attempt;
      for (uint8_t r : resolved) EXPECT_EQ(r, 0);
    }
  }
  EXPECT_EQ(oracle.stats().outage_failures, 7);
}

TEST(FaultInjectingOracleTest, InfalliblePathsBypassInjection) {
  const std::vector<uint8_t> truth = MakeTruth(32, 61);
  GroundTruthOracle inner(truth);
  FaultInjectionOptions options;
  options.transient_failure_rate = 1.0;  // Would fail every fallible attempt.
  FaultInjectingOracle oracle(&inner, options);

  Rng rng(3);
  EXPECT_EQ(oracle.Label(5, rng), truth[5] != 0);
  const std::vector<int64_t> items{0, 7, 31};
  std::vector<uint8_t> out(items.size());
  oracle.LabelBatch(items, rng, out);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i], truth[static_cast<size_t>(items[i])]);
  }
  EXPECT_EQ(oracle.TrueProbability(5), inner.TrueProbability(5));
}

}  // namespace
}  // namespace oasis
