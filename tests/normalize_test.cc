#include "er/normalize.h"

#include <gtest/gtest.h>

namespace oasis {
namespace er {
namespace {

TEST(NormalizeStringTest, LowercasesAscii) {
  EXPECT_EQ(NormalizeString("HeLLo World"), "hello world");
}

TEST(NormalizeStringTest, StripsSymbolsToSpaces) {
  EXPECT_EQ(NormalizeString("foo-bar/baz (v2)"), "foo bar baz v2");
}

TEST(NormalizeStringTest, CollapsesWhitespaceAndTrims) {
  EXPECT_EQ(NormalizeString("  a   b\t\tc  "), "a b c");
}

TEST(NormalizeStringTest, KeepsDigits) {
  EXPECT_EQ(NormalizeString("XR-4500, 2nd ed."), "xr 4500 2nd ed");
}

TEST(NormalizeStringTest, TransliteratesLatin1Accents) {
  // "café" with Latin-1 e-acute (0xE9).
  const std::string input = std::string("caf") + static_cast<char>(0xE9);
  EXPECT_EQ(NormalizeString(input), "cafe");
  const std::string upper = std::string("CAF") + static_cast<char>(0xC9);
  EXPECT_EQ(NormalizeString(upper), "cafe");
}

TEST(NormalizeStringTest, EmptyAndSymbolOnlyInputs) {
  EXPECT_EQ(NormalizeString(""), "");
  EXPECT_EQ(NormalizeString("!!! --- ###"), "");
}

TEST(NormalizeStringTest, Idempotent) {
  const std::string once = NormalizeString("Crème Brûlée #42!");
  EXPECT_EQ(NormalizeString(once), once);
}

TEST(ToLowerAsciiTest, Basics) {
  EXPECT_EQ(ToLowerAscii("AbC123"), "abc123");
}

TEST(IsBlankAfterNormalizeTest, DetectsEmptyNormalisedForms) {
  EXPECT_TRUE(IsBlankAfterNormalize("  ** "));
  EXPECT_FALSE(IsBlankAfterNormalize("x"));
}

}  // namespace
}  // namespace er
}  // namespace oasis
