// Known-truth scenario generators: every family must realise its confusion
// counts EXACTLY (recounted from the emitted truth/prediction vectors), be a
// pure function of its spec, and survive the config round trip that the
// gen -> run -> verify pipeline depends on.

#include "datagen/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "eval/confusion.h"
#include "experiments/config.h"
#include "oracle/oracle.h"

namespace oasis {
namespace datagen {
namespace {

/// Recounts the confusion matrix from the pool's emitted vectors; this is
/// the ground-truth-by-construction property every family must satisfy.
ConfusionCounts Recount(const ScenarioPool& pool) {
  ConfusionCounts counts;
  for (size_t i = 0; i < pool.truth.size(); ++i) {
    counts.Add(pool.truth[i] != 0, pool.scored.predictions[i] != 0);
  }
  return counts;
}

TEST(ScenarioFamilyTest, NameRoundTrip) {
  const ScenarioFamily families[] = {
      ScenarioFamily::kExactCount,    ScenarioFamily::kImbalance,
      ScenarioFamily::kStratumSkew,   ScenarioFamily::kClustered,
      ScenarioFamily::kSingleStratum, ScenarioFamily::kAllMatch,
      ScenarioFamily::kNoMatch,       ScenarioFamily::kScoreInversion,
      ScenarioFamily::kNoisyOracle,
  };
  for (ScenarioFamily family : families) {
    const std::string name = ScenarioFamilyName(family);
    EXPECT_EQ(ScenarioFamilyFromName(name).ValueOrDie(), family) << name;
  }
  EXPECT_FALSE(ScenarioFamilyFromName("not-a-family").ok());
}

TEST(ScenarioTest, ExactCountRealisesTheSpecifiedCounts) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kExactCount;
  spec.pool_size = 5000;
  spec.true_positives = 321;
  spec.false_positives = 123;
  spec.false_negatives = 77;
  spec.seed = 9;
  const ScenarioPool pool = GenerateScenario(spec).ValueOrDie();
  const ConfusionCounts counts = Recount(pool);
  EXPECT_EQ(counts.true_positives, 321);
  EXPECT_EQ(counts.false_positives, 123);
  EXPECT_EQ(counts.false_negatives, 77);
  EXPECT_EQ(counts.true_negatives, 5000 - 321 - 123 - 77);
  // The stored counts agree with the recount, and true_f is F of the counts.
  EXPECT_EQ(pool.counts.true_positives, counts.true_positives);
  const double expected_f =
      321.0 / (0.5 * (321 + 123) + 0.5 * (321 + 77));
  EXPECT_NEAR(pool.true_f, expected_f, 1e-12);
}

TEST(ScenarioTest, GenerationIsDeterministic) {
  ScenarioSpec spec = ScenarioByName("clustered").ValueOrDie();
  const ScenarioPool a = GenerateScenario(spec).ValueOrDie();
  const ScenarioPool b = GenerateScenario(spec).ValueOrDie();
  ASSERT_EQ(a.scored.scores.size(), b.scored.scores.size());
  for (size_t i = 0; i < a.scored.scores.size(); ++i) {
    ASSERT_EQ(a.scored.scores[i], b.scored.scores[i]) << "item " << i;
    ASSERT_EQ(a.truth[i], b.truth[i]) << "item " << i;
  }
  // A different seed must move the scores (same counts, different draw).
  spec.seed += 1;
  const ScenarioPool c = GenerateScenario(spec).ValueOrDie();
  bool any_different = false;
  for (size_t i = 0; i < a.scored.scores.size() && !any_different; ++i) {
    any_different = a.scored.scores[i] != c.scored.scores[i];
  }
  EXPECT_TRUE(any_different);
  EXPECT_EQ(Recount(c).true_positives, Recount(a).true_positives);
}

TEST(ScenarioTest, PredictionsFollowTheScoreSign) {
  // The estimator-facing contract: prediction == (score >= threshold) for
  // every family, so score-driven proposal designs see a coherent pool.
  // kSingleStratum is the one deliberate exception — with every score
  // identical the predictions cannot be encoded in the scores at all.
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    if (spec.family == ScenarioFamily::kSingleStratum) continue;
    const ScenarioPool pool = GenerateScenario(spec).ValueOrDie();
    for (size_t i = 0; i < pool.scored.scores.size(); ++i) {
      const bool predicted = pool.scored.predictions[i] != 0;
      const bool above = pool.scored.scores[i] >= pool.scored.threshold;
      ASSERT_EQ(predicted, above)
          << spec.name << " item " << i << " score " << pool.scored.scores[i];
    }
  }
}

TEST(ScenarioTest, EveryCatalogEntryIsExactByConstruction) {
  const std::vector<ScenarioSpec>& catalog = ScenarioCatalog();
  ASSERT_GE(catalog.size(), 10u);
  for (const ScenarioSpec& spec : catalog) {
    SCOPED_TRACE(spec.name);
    ASSERT_TRUE(spec.Validate().ok());
    const ScenarioPool pool = GenerateScenario(spec).ValueOrDie();
    const ConfusionCounts counts = Recount(pool);
    // Stored counts are the recounted truth — exactly.
    EXPECT_EQ(counts.true_positives, pool.counts.true_positives);
    EXPECT_EQ(counts.false_positives, pool.counts.false_positives);
    EXPECT_EQ(counts.false_negatives, pool.counts.false_negatives);
    EXPECT_EQ(counts.true_negatives, pool.counts.true_negatives);
    EXPECT_EQ(counts.total(), spec.pool_size);
    // For clean oracles the target is F of the counts; the noisy preset's
    // flip-adjusted target differs from (but stays tied to) the clean F.
    const double tp = static_cast<double>(counts.true_positives);
    const double denom =
        spec.alpha * static_cast<double>(counts.predicted_positives()) +
        (1.0 - spec.alpha) * static_cast<double>(counts.actual_positives());
    if (spec.flip_rate == 0.0) {
      if (denom > 0.0) EXPECT_NEAR(pool.true_f, tp / denom, 1e-12);
    } else {
      const double rho = spec.flip_rate;
      const double fp = static_cast<double>(counts.false_positives);
      const double fn = static_cast<double>(counts.false_negatives);
      const double tn = static_cast<double>(counts.true_negatives);
      const double tp_eff = (1.0 - rho) * tp + rho * fp;
      const double pos_eff = (1.0 - rho) * (tp + fn) + rho * (fp + tn);
      const double adjusted =
          tp_eff / (spec.alpha * (tp + fp) + (1.0 - spec.alpha) * pos_eff);
      EXPECT_NEAR(pool.true_f, adjusted, 1e-12);
    }
  }
}

TEST(ScenarioTest, DegenerateFamiliesHaveTheirSignatureShapes) {
  const ScenarioPool single =
      GenerateScenario(ScenarioByName("single-stratum").ValueOrDie())
          .ValueOrDie();
  for (size_t i = 1; i < single.scored.scores.size(); ++i) {
    ASSERT_EQ(single.scored.scores[i], single.scored.scores[0]);
  }

  const ScenarioPool none =
      GenerateScenario(ScenarioByName("no-match").ValueOrDie()).ValueOrDie();
  EXPECT_EQ(Recount(none).actual_positives(), 0);
  EXPECT_EQ(none.true_f, 0.0);

  const ScenarioPool all =
      GenerateScenario(ScenarioByName("all-match").ValueOrDie()).ValueOrDie();
  const ConfusionCounts all_counts = Recount(all);
  EXPECT_EQ(all_counts.actual_positives(), all.spec.pool_size);
  EXPECT_EQ(all_counts.false_positives, 0);
}

TEST(ScenarioTest, ScoreInversionHidesMatchMassBelowThreshold) {
  const ScenarioSpec spec = ScenarioByName("sis-inversion").ValueOrDie();
  EXPECT_TRUE(spec.expect_sis_degeneracy);
  const ScenarioPool pool = GenerateScenario(spec).ValueOrDie();
  // Most of the actual-positive mass sits in predicted-negative territory
  // (false negatives dominate), concentrated far below the threshold — the
  // construction that starves a score-driven static proposal.
  const ConfusionCounts counts = Recount(pool);
  EXPECT_GT(counts.false_negatives, 2 * counts.true_positives);
  int64_t deep_hidden = 0;
  for (size_t i = 0; i < pool.truth.size(); ++i) {
    if (pool.truth[i] != 0 && pool.scored.scores[i] < -10.0) ++deep_hidden;
  }
  EXPECT_GT(deep_hidden, counts.false_negatives / 2);
  // No other catalogue preset claims the SIS-breaker flag.
  for (const ScenarioSpec& other : ScenarioCatalog()) {
    if (other.name != spec.name) EXPECT_FALSE(other.expect_sis_degeneracy);
  }
}

TEST(ScenarioTest, SpecConfigRoundTrip) {
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    SCOPED_TRACE(spec.name);
    const std::string text = spec.ToConfigString();
    auto config = experiments::ConfigMap::Parse(text).ValueOrDie();
    const ScenarioSpec parsed = ScenarioSpec::FromConfig(config).ValueOrDie();
    EXPECT_TRUE(config.CheckAllKeysUsed().ok());
    EXPECT_EQ(parsed.name, spec.name);
    EXPECT_EQ(parsed.family, spec.family);
    EXPECT_EQ(parsed.pool_size, spec.pool_size);
    EXPECT_EQ(parsed.seed, spec.seed);
    EXPECT_EQ(parsed.alpha, spec.alpha);
    EXPECT_EQ(parsed.match_rate, spec.match_rate);
    EXPECT_EQ(parsed.flip_rate, spec.flip_rate);
    EXPECT_EQ(parsed.expect_sis_degeneracy, spec.expect_sis_degeneracy);
    EXPECT_EQ(parsed.verify_tolerance, spec.verify_tolerance);
    // The round-tripped spec regenerates the identical pool.
    const ScenarioPool a = GenerateScenario(spec).ValueOrDie();
    const ScenarioPool b = GenerateScenario(parsed).ValueOrDie();
    ASSERT_EQ(a.scored.scores.size(), b.scored.scores.size());
    for (size_t i = 0; i < a.scored.scores.size(); ++i) {
      ASSERT_EQ(a.scored.scores[i], b.scored.scores[i]);
      ASSERT_EQ(a.truth[i], b.truth[i]);
    }
  }
}

TEST(ScenarioTest, FromConfigRejectsUnknownKeys) {
  auto config = experiments::ConfigMap::Parse(
                    "name = x\nfamily = exact-count\npool_size = 100\n"
                    "true_positives = 10\nfalse_positives = 5\n"
                    "false_negatives = 5\nmisspelled_knob = 1\n")
                    .ValueOrDie();
  // Scenario files are spec-only, so FromConfig runs the typo guard itself
  // and a misspelled knob fails the parse, naming the stray key.
  const auto result = ScenarioSpec::FromConfig(config);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("misspelled_knob"),
            std::string::npos);
}

TEST(ScenarioTest, ValidateRejectsBrokenSpecs) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kExactCount;
  spec.pool_size = 10;
  spec.true_positives = 8;
  spec.false_positives = 8;  // counts exceed the pool
  spec.false_negatives = 8;
  EXPECT_FALSE(spec.Validate().ok());

  ScenarioSpec negative;
  negative.pool_size = -5;
  EXPECT_FALSE(negative.Validate().ok());

  ScenarioSpec bad_flip = ScenarioByName("noisy-flip05").ValueOrDie();
  bad_flip.flip_rate = 0.7;
  EXPECT_FALSE(bad_flip.Validate().ok());
}

TEST(ScenarioTest, ByNameListsKnownNamesOnMiss) {
  const auto result = ScenarioByName("no-such-scenario");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("stripe-f90"), std::string::npos);
}

TEST(ScenarioTest, NoisyOracleFlipsAtTheConfiguredRate) {
  const ScenarioSpec spec = ScenarioByName("noisy-flip05").ValueOrDie();
  const ScenarioPool pool = GenerateScenario(spec).ValueOrDie();
  auto oracle = MakeScenarioOracle(pool).ValueOrDie();
  Rng rng(123);
  int64_t flips = 0;
  for (size_t i = 0; i < pool.truth.size(); ++i) {
    const bool label = oracle->Label(static_cast<int64_t>(i), rng);
    if (label != (pool.truth[i] != 0)) ++flips;
  }
  const double rate =
      static_cast<double>(flips) / static_cast<double>(pool.truth.size());
  EXPECT_NEAR(rate, spec.flip_rate, 0.01);

  // Clean scenarios label with the exact truth.
  const ScenarioPool clean =
      GenerateScenario(ScenarioByName("stripe-f90").ValueOrDie()).ValueOrDie();
  auto clean_oracle = MakeScenarioOracle(clean).ValueOrDie();
  for (size_t i = 0; i < clean.truth.size(); i += 97) {
    EXPECT_EQ(clean_oracle->Label(static_cast<int64_t>(i), rng),
              clean.truth[i] != 0);
  }
}

}  // namespace
}  // namespace datagen
}  // namespace oasis
