#include "er/similarity.h"

#include <gtest/gtest.h>

namespace oasis {
namespace er {
namespace {

TEST(JaccardTest, IdenticalSetsScoreOne) {
  const std::vector<std::string> a{"ab", "bc", "cd"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
}

TEST(JaccardTest, DisjointSetsScoreZero) {
  const std::vector<std::string> a{"ab"};
  const std::vector<std::string> b{"xy"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.0);
}

TEST(JaccardTest, KnownOverlap) {
  const std::vector<std::string> a{"a", "b", "c"};
  const std::vector<std::string> b{"b", "c", "d"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 2.0 / 4.0);
}

TEST(JaccardTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  const std::vector<std::string> a{"x"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, {}), 0.0);
}

TEST(TrigramJaccardTest, CaseAndPunctuationInsensitive) {
  EXPECT_DOUBLE_EQ(TrigramJaccard("Hello World", "hello, world!"), 1.0);
}

TEST(TrigramJaccardTest, TypoLowersButKeepsSimilarity) {
  const double sim = TrigramJaccard("panasonic dvd player", "panasonc dvd player");
  EXPECT_GT(sim, 0.6);
  EXPECT_LT(sim, 1.0);
}

TEST(TrigramJaccardTest, UnrelatedStringsScoreNearZero) {
  EXPECT_LT(TrigramJaccard("alpha beta gamma", "zzz qqq www"), 0.1);
}

TEST(NumericSimilarityTest, EqualValuesScoreOne) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(0.0, 0.0), 1.0);
}

TEST(NumericSimilarityTest, KnownRatios) {
  // |10-20| / (10+20) = 1/3 -> similarity 2/3.
  EXPECT_NEAR(NumericSimilarity(10.0, 20.0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(NumericSimilarity(1.0, -1.0), 0.0);  // Opposite signs.
}

TEST(NumericSimilarityTest, Symmetric) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(3.0, 7.0), NumericSimilarity(7.0, 3.0));
}

Database MakeDb(std::vector<Record> records) {
  Database db;
  db.schema = Schema({{"name", FieldKind::kShortText},
                      {"blurb", FieldKind::kLongText},
                      {"price", FieldKind::kNumeric}});
  db.records = std::move(records);
  return db;
}

Record MakeRecord(const std::string& name, const std::string& blurb, double price) {
  Record r;
  r.values.push_back(FieldValue::Text(name));
  r.values.push_back(FieldValue::Text(blurb));
  r.values.push_back(FieldValue::Number(price));
  return r;
}

TEST(SimilarityFeaturizerTest, FeaturesPerField) {
  Database left = MakeDb({MakeRecord("acme widget", "great widget for homes", 10)});
  Database right = MakeDb({MakeRecord("acme widget", "great widget for homes", 10),
                           MakeRecord("zzz gadget", "industrial tool kit", 99)});
  SimilarityFeaturizer featurizer =
      SimilarityFeaturizer::Fit(left, right).ValueOrDie();
  EXPECT_EQ(featurizer.num_features(), 3u);

  const std::vector<double> same =
      featurizer.Features(left.records[0], right.records[0]);
  EXPECT_NEAR(same[0], 1.0, 1e-12);
  EXPECT_NEAR(same[1], 1.0, 1e-9);
  EXPECT_NEAR(same[2], 1.0, 1e-12);

  const std::vector<double> diff =
      featurizer.Features(left.records[0], right.records[1]);
  EXPECT_LT(diff[0], 0.3);
  EXPECT_LT(diff[1], 0.3);
  EXPECT_LT(diff[2], 0.5);
}

TEST(SimilarityFeaturizerTest, MissingValuesAreNeutral) {
  Database left = MakeDb({MakeRecord("a", "b", 1.0)});
  Database right = MakeDb({MakeRecord("a", "b", 1.0)});
  Record holey;
  holey.values.push_back(FieldValue::Missing());
  holey.values.push_back(FieldValue::Text("b"));
  holey.values.push_back(FieldValue::Missing());
  SimilarityFeaturizer featurizer =
      SimilarityFeaturizer::Fit(left, right).ValueOrDie();
  const std::vector<double> features =
      featurizer.Features(left.records[0], holey);
  EXPECT_DOUBLE_EQ(features[0], 0.5);
  EXPECT_DOUBLE_EQ(features[2], 0.5);
}

TEST(SimilarityFeaturizerTest, RejectsSchemaMismatch) {
  Database left = MakeDb({MakeRecord("a", "b", 1.0)});
  Database right;
  right.schema = Schema({{"name", FieldKind::kNumeric},
                         {"blurb", FieldKind::kLongText},
                         {"price", FieldKind::kNumeric}});
  right.records.push_back(MakeRecord("a", "b", 1.0));
  EXPECT_FALSE(SimilarityFeaturizer::Fit(left, right).ok());
}

}  // namespace
}  // namespace er
}  // namespace oasis
