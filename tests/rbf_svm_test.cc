#include "classify/rbf_svm.h"

#include <gtest/gtest.h>

#include "classify_test_util.h"

namespace oasis {
namespace classify {
namespace {

using testutil::Accuracy;
using testutil::MakeBlobs;
using testutil::MakeXor;

TEST(RbfSvmTest, RejectsDegenerateData) {
  RbfSvm svm;
  Rng rng(1);
  Dataset empty(2);
  EXPECT_FALSE(svm.Fit(empty, rng).ok());

  RbfSvmOptions bad;
  bad.gamma = 0.0;
  RbfSvm bad_svm(bad);
  Dataset blobs = MakeBlobs(10, 0.2, 2);
  EXPECT_FALSE(bad_svm.Fit(blobs, rng).ok());
}

TEST(RbfSvmTest, SeparatesBlobs) {
  Dataset train = MakeBlobs(150, 0.3, 3);
  Dataset test = MakeBlobs(150, 0.3, 5);
  RbfSvm svm;
  Rng rng(7);
  ASSERT_TRUE(svm.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(svm, test), 0.95);
}

TEST(RbfSvmTest, SolvesXorViaKernel) {
  Dataset train = MakeXor(100, 0.25, 9);
  Dataset test = MakeXor(100, 0.25, 11);
  RbfSvmOptions options;
  options.gamma = 1.0;
  options.steps = 6000;
  RbfSvm svm(options);
  Rng rng(13);
  ASSERT_TRUE(svm.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(svm, test), 0.9);
}

TEST(RbfSvmTest, KeepsSparseSupportSet) {
  Dataset train = MakeBlobs(200, 0.3, 15);
  RbfSvm svm;
  Rng rng(17);
  ASSERT_TRUE(svm.Fit(train, rng).ok());
  EXPECT_GT(svm.num_support_vectors(), 0u);
  // Easily separable data needs only a fraction of the points as support.
  EXPECT_LT(svm.num_support_vectors(), train.size());
}

TEST(RbfSvmTest, MarginsAreSigned) {
  Dataset train = MakeBlobs(150, 0.3, 19);
  RbfSvm svm;
  Rng rng(21);
  ASSERT_TRUE(svm.Fit(train, rng).ok());
  EXPECT_FALSE(svm.probabilistic());
  EXPECT_GT(svm.Score(std::vector<double>{1.0, 1.0}), 0.0);
  EXPECT_LT(svm.Score(std::vector<double>{-1.0, -1.0}), 0.0);
}

}  // namespace
}  // namespace classify
}  // namespace oasis
