#include "strata/csf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace oasis {
namespace {

/// Builds an ER-like score vector: a huge mass of low scores and a tiny tail
/// of high scores (cf. the paper's Figure 1 setting).
std::vector<double> ImbalancedScores(size_t low, size_t high, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> scores;
  scores.reserve(low + high);
  for (size_t i = 0; i < low; ++i) scores.push_back(0.02 + 0.1 * rng.NextDouble());
  for (size_t i = 0; i < high; ++i) scores.push_back(0.7 + 0.3 * rng.NextDouble());
  return scores;
}

TEST(CsfTest, RejectsBadArguments) {
  const std::vector<double> scores{0.1, 0.2};
  EXPECT_FALSE(StratifyCsf({}, 5).ok());
  EXPECT_FALSE(StratifyCsf(scores, 0).ok());
  CsfOptions options;
  options.target_strata = 10;
  options.histogram_bins = 5;  // Fewer bins than strata.
  EXPECT_FALSE(StratifyCsf(scores, options).ok());
}

TEST(CsfTest, AllItemsAllocatedExactlyOnce) {
  const std::vector<double> scores = ImbalancedScores(5000, 50, 7);
  Strata strata = StratifyCsf(scores, 30).ValueOrDie();
  EXPECT_EQ(strata.num_items(), scores.size());
  EXPECT_TRUE(strata.Validate().ok());
}

TEST(CsfTest, ProducesAtMostRequestedStrata) {
  const std::vector<double> scores = ImbalancedScores(5000, 50, 11);
  for (size_t k : {2u, 10u, 30u, 60u}) {
    Strata strata = StratifyCsf(scores, k).ValueOrDie();
    EXPECT_LE(strata.num_strata(), k);
    EXPECT_GE(strata.num_strata(), 1u);
  }
}

TEST(CsfTest, ImbalancedScoresYieldSmallHighStrata) {
  // The paper's Figure 1 shape: strata covering high scores must be much
  // smaller than strata covering the low-score mass.
  const std::vector<double> scores = ImbalancedScores(20000, 100, 13);
  Strata strata = StratifyCsf(scores, 30).ValueOrDie();
  ASSERT_GE(strata.num_strata(), 2u);

  const std::vector<double> mean_scores = strata.MeanPerStratum(scores);
  // Find the stratum with the highest mean score and the one with the lowest.
  size_t hi = 0;
  size_t lo = 0;
  for (size_t k = 1; k < strata.num_strata(); ++k) {
    if (mean_scores[k] > mean_scores[hi]) hi = k;
    if (mean_scores[k] < mean_scores[lo]) lo = k;
  }
  EXPECT_LT(strata.size(hi) * 10, strata.size(lo));
}

TEST(CsfTest, UniformScoresGiveRoughlyEqualStrata) {
  Rng rng(17);
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) scores.push_back(rng.NextDouble());
  Strata strata = StratifyCsf(scores, 10).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 10u);
  for (size_t k = 0; k < strata.num_strata(); ++k) {
    EXPECT_NEAR(static_cast<double>(strata.size(k)), 2000.0, 400.0);
  }
}

TEST(CsfTest, ConstantScoresCollapseToOneStratum) {
  const std::vector<double> scores(100, 0.5);
  Strata strata = StratifyCsf(scores, 10).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 1u);
  EXPECT_EQ(strata.size(0), 100u);
}

TEST(CsfTest, StrataAreScoreOrderedIntervals) {
  const std::vector<double> scores = ImbalancedScores(3000, 60, 19);
  Strata strata = StratifyCsf(scores, 20).ValueOrDie();
  // For every pair of items, a higher score must never land in a lower
  // stratum (strata are intervals on the score axis).
  for (size_t i = 0; i < scores.size(); i += 97) {
    for (size_t j = 0; j < scores.size(); j += 89) {
      if (scores[i] < scores[j]) {
        EXPECT_LE(strata.stratum_of(static_cast<int64_t>(i)),
                  strata.stratum_of(static_cast<int64_t>(j)));
      }
    }
  }
}

TEST(CsfTest, LogitTransformResolvesSquashedProbabilities) {
  // Probability scores crammed near zero (prior-corrected calibration under
  // extreme imbalance): raw CSF cannot split the low region because the
  // equal-width histogram puts everything into one bin; the logit transform
  // can.
  Rng rng(29);
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(1e-5 * std::exp(3.0 * rng.NextDouble()));  // ~1e-5..2e-4
  }
  for (int i = 0; i < 60; ++i) {
    scores.push_back(0.2 + 0.7 * rng.NextDouble());  // High-probability tail.
  }

  CsfOptions raw;
  raw.target_strata = 30;
  Strata raw_strata = StratifyCsf(scores, raw).ValueOrDie();

  CsfOptions logit;
  logit.target_strata = 30;
  logit.logit_transform = true;
  Strata logit_strata = StratifyCsf(scores, logit).ValueOrDie();

  // The logit variant must cut the squashed low region into several strata
  // where the raw variant collapses it.
  EXPECT_GT(logit_strata.num_strata(), raw_strata.num_strata());
  EXPECT_GE(logit_strata.num_strata(), 10u);
  EXPECT_TRUE(logit_strata.Validate().ok());
}

TEST(CsfTest, LogitTransformPreservesScoreOrdering) {
  Rng rng(31);
  std::vector<double> scores;
  for (int i = 0; i < 5000; ++i) scores.push_back(rng.NextDouble());
  Strata strata = StratifyCsf(scores, 20, /*scores_are_probabilities=*/true)
                      .ValueOrDie();
  for (size_t i = 0; i < scores.size(); i += 37) {
    for (size_t j = 0; j < scores.size(); j += 41) {
      if (scores[i] < scores[j]) {
        EXPECT_LE(strata.stratum_of(static_cast<int64_t>(i)),
                  strata.stratum_of(static_cast<int64_t>(j)));
      }
    }
  }
}

TEST(CsfTest, ProbabilityOverloadSelectsTransform) {
  // The convenience overload must behave identically to explicit options.
  Rng rng(37);
  std::vector<double> scores;
  for (int i = 0; i < 3000; ++i) scores.push_back(rng.NextDouble() * 0.01);
  Strata via_flag = StratifyCsf(scores, 15, true).ValueOrDie();
  CsfOptions options;
  options.target_strata = 15;
  options.logit_transform = true;
  Strata via_options = StratifyCsf(scores, options).ValueOrDie();
  ASSERT_EQ(via_flag.num_strata(), via_options.num_strata());
  for (int64_t i = 0; i < static_cast<int64_t>(scores.size()); ++i) {
    EXPECT_EQ(via_flag.stratum_of(i), via_options.stratum_of(i));
  }
}

class CsfSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CsfSweepTest, ValidAcrossStratumCounts) {
  const size_t target = GetParam();
  const std::vector<double> scores = ImbalancedScores(8000, 80, 23);
  Strata strata = StratifyCsf(scores, target).ValueOrDie();
  EXPECT_TRUE(strata.Validate().ok());
  EXPECT_LE(strata.num_strata(), target);
  // Weights are consistent with sizes.
  for (size_t k = 0; k < strata.num_strata(); ++k) {
    EXPECT_NEAR(strata.weight(k),
                static_cast<double>(strata.size(k)) / scores.size(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(StratumCounts, CsfSweepTest,
                         ::testing::Values(1, 2, 5, 10, 30, 60, 120));

}  // namespace
}  // namespace oasis
