#include "classify/dataset.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace oasis {
namespace classify {
namespace {

TEST(DatasetTest, AddAndAccess) {
  Dataset data(2);
  ASSERT_TRUE(data.Add(std::vector<double>{1.0, 2.0}, true).ok());
  ASSERT_TRUE(data.Add(std::vector<double>{3.0, 4.0}, false).ok());
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.num_positives(), 1);
  EXPECT_EQ(data.num_negatives(), 1);
  EXPECT_TRUE(data.label(0));
  EXPECT_FALSE(data.label(1));
  EXPECT_DOUBLE_EQ(data.row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(data.row(1)[1], 4.0);
}

TEST(DatasetTest, RejectsArityMismatch) {
  Dataset data(2);
  EXPECT_FALSE(data.Add(std::vector<double>{1.0}, true).ok());
  EXPECT_FALSE(data.Add(std::vector<double>{1.0, 2.0, 3.0}, true).ok());
}

TEST(DatasetTest, FoldIndicesPartitionAllRows) {
  Dataset data(1);
  for (int i = 0; i < 23; ++i) {
    ASSERT_TRUE(data.Add(std::vector<double>{static_cast<double>(i)}, i % 2).ok());
  }
  const auto folds = data.FoldIndices(5, 42);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> seen;
  for (const auto& fold : folds) {
    for (size_t idx : fold) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate row in folds";
    }
  }
  EXPECT_EQ(seen.size(), 23u);
  // Fold sizes differ by at most one.
  for (const auto& fold : folds) {
    EXPECT_GE(fold.size(), 4u);
    EXPECT_LE(fold.size(), 5u);
  }
}

TEST(DatasetTest, FoldIndicesDeterministicInSeed) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(data.Add(std::vector<double>{0.0}, false).ok());
  }
  EXPECT_EQ(data.FoldIndices(3, 7), data.FoldIndices(3, 7));
}

TEST(DatasetTest, SubsetPreservesRowsAndLabels) {
  Dataset data(2);
  ASSERT_TRUE(data.Add(std::vector<double>{1.0, 2.0}, true).ok());
  ASSERT_TRUE(data.Add(std::vector<double>{3.0, 4.0}, false).ok());
  ASSERT_TRUE(data.Add(std::vector<double>{5.0, 6.0}, true).ok());
  const std::vector<size_t> rows{2, 0};
  Dataset subset = data.Subset(rows);
  EXPECT_EQ(subset.size(), 2u);
  EXPECT_DOUBLE_EQ(subset.row(0)[0], 5.0);
  EXPECT_TRUE(subset.label(0));
  EXPECT_DOUBLE_EQ(subset.row(1)[0], 1.0);
  EXPECT_TRUE(subset.label(1));
}

}  // namespace
}  // namespace classify
}  // namespace oasis
