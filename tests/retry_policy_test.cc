// RetryingOracle / CircuitBreaker tests, from the unit level up to the
// experiment runner:
//  * the breaker's closed -> open -> half-open state machine, including the
//    disabled (threshold 0) mode;
//  * retries recover transient failures and re-request ONLY missing items;
//  * backoff time lands on the RemoteOracle's simulated clock, per-attempt
//    timeouts discard late labels, the overall deadline stops the loop;
//  * give-ups surface the last failure with partial progress intact;
//  * the headline robustness guarantee: a fault-injected run with retries on
//    produces BIT-IDENTICAL error curves to a fault-free run at any thread
//    count, while a permanent outage surfaces kUnavailable/kDeadlineExceeded
//    from RunErrorCurve instead of crashing;
//  * WriteCurvesCsv carries the retries/give_ups and ess columns.
//
// Chaos assertions are OASIS_CHAOS_SEED-independent: they compare against a
// fault-free baseline or check the failure taxonomy, never a particular
// fault landing on a particular attempt.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "experiments/csv.h"
#include "experiments/runner.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/oracle_stack.h"
#include "oracle/remote_oracle.h"
#include "oracle/retry_policy.h"
#include "strata/csf.h"
#include "tests/test_util.h"

namespace oasis {
namespace {

/// Chaos seed override for CI sweeps; defaults to a fixed value so a plain
/// test run is reproducible.
uint64_t ChaosSeed() {
  const char* env = std::getenv("OASIS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 0xfa17ULL;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// Scripted fallible oracle: attempt number a performs script[a] (the last
/// action repeats once the script is exhausted) and every attempt records the
/// exact items requested, so tests can assert the retry loop's re-request
/// behaviour precisely.
class ScriptedOracle : public Oracle {
 public:
  enum class Action {
    kResolveAll,        ///< OK; every requested item resolved with its truth.
    kResolveFirstHalf,  ///< OK; only the first ceil(n/2) items resolved.
    kResolveNone,       ///< OK; nothing resolved (stalled partial batch).
    kFailUnavailable,   ///< kUnavailable; nothing resolved.
    kFailTimeout,       ///< kDeadlineExceeded; nothing resolved.
  };

  ScriptedOracle(std::vector<uint8_t> truth, std::vector<Action> script)
      : truth_(std::move(truth)), script_(std::move(script)) {}

  bool Label(int64_t item, Rng&) const override {
    return truth_[static_cast<size_t>(item)] != 0;
  }
  double TrueProbability(int64_t item) const override {
    return truth_[static_cast<size_t>(item)] != 0 ? 1.0 : 0.0;
  }
  bool deterministic() const override { return true; }
  bool labelling_consumes_rng() const override { return false; }
  bool fallible() const override { return true; }
  int64_t num_items() const override {
    return static_cast<int64_t>(truth_.size());
  }

  Status TryLabelBatch(std::span<const int64_t> items, Rng&,
                       std::span<uint8_t> out,
                       std::span<uint8_t> resolved) const override {
    requests_.emplace_back(items.begin(), items.end());
    const Action action =
        script_.empty() ? Action::kResolveAll
                        : script_[std::min(calls_, script_.size() - 1)];
    ++calls_;
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
    switch (action) {
      case Action::kFailUnavailable:
        return Status::Unavailable("scripted transient failure");
      case Action::kFailTimeout:
        return Status::DeadlineExceeded("scripted timeout");
      case Action::kResolveNone:
        return Status::OK();
      case Action::kResolveFirstHalf:
      case Action::kResolveAll: {
        const size_t keep = action == Action::kResolveAll
                                ? items.size()
                                : (items.size() + 1) / 2;
        for (size_t i = 0; i < keep; ++i) {
          out[i] = truth_[static_cast<size_t>(items[i])];
          resolved[i] = 1;
        }
        return Status::OK();
      }
    }
    return Status::Internal("unreachable");
  }

  /// Items requested by each TryLabelBatch attempt, in call order.
  const std::vector<std::vector<int64_t>>& requests() const {
    return requests_;
  }

 private:
  std::vector<uint8_t> truth_;
  std::vector<Action> script_;
  mutable size_t calls_ = 0;
  mutable std::vector<std::vector<int64_t>> requests_;
};

using Action = ScriptedOracle::Action;

// --- CircuitBreaker state machine -----------------------------------------

TEST(CircuitBreakerTest, StateMachineTransitions) {
  CircuitBreaker breaker(/*failure_threshold=*/2, /*cooldown_calls=*/2);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit());

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Two rejected calls spend the cooldown; the third admits a half-open
  // probe.
  EXPECT_FALSE(breaker.Admit());
  EXPECT_FALSE(breaker.Admit());
  EXPECT_TRUE(breaker.Admit());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // While the probe is outstanding, nothing else gets through.
  EXPECT_FALSE(breaker.Admit());

  // Probe failure re-opens immediately (no threshold accumulation).
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  EXPECT_FALSE(breaker.Admit());
  EXPECT_FALSE(breaker.Admit());
  EXPECT_TRUE(breaker.Admit());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit());
}

TEST(CircuitBreakerTest, RecordsTransitionHistoryWithSimClockTimestamps) {
  CircuitBreaker breaker(/*failure_threshold=*/2, /*cooldown_calls=*/2);
  using State = CircuitBreaker::State;

  breaker.RecordFailure(/*now_ns=*/10);
  breaker.RecordFailure(/*now_ns=*/20);  // closed -> open
  EXPECT_FALSE(breaker.Admit(/*now_ns=*/30));
  EXPECT_FALSE(breaker.Admit(/*now_ns=*/40));
  EXPECT_TRUE(breaker.Admit(/*now_ns=*/50));  // open -> half-open probe
  breaker.RecordFailure(/*now_ns=*/60);       // half-open -> open
  EXPECT_FALSE(breaker.Admit(/*now_ns=*/70));
  EXPECT_FALSE(breaker.Admit(/*now_ns=*/80));
  EXPECT_TRUE(breaker.Admit(/*now_ns=*/90));  // open -> half-open probe
  breaker.RecordSuccess(/*now_ns=*/100);      // half-open -> closed

  const std::vector<CircuitBreaker::Transition> transitions =
      breaker.transitions();
  ASSERT_EQ(transitions.size(), 5u);
  const State expected[5][2] = {
      {State::kClosed, State::kOpen},     {State::kOpen, State::kHalfOpen},
      {State::kHalfOpen, State::kOpen},   {State::kOpen, State::kHalfOpen},
      {State::kHalfOpen, State::kClosed},
  };
  const int64_t expected_ns[5] = {20, 50, 60, 90, 100};
  for (size_t i = 0; i < transitions.size(); ++i) {
    EXPECT_EQ(transitions[i].from, expected[i][0]) << "transition " << i;
    EXPECT_EQ(transitions[i].to, expected[i][1]) << "transition " << i;
    EXPECT_EQ(transitions[i].sim_ns, expected_ns[i]) << "transition " << i;
    // Each transition chains from the previous one's destination, and the
    // sim-clock timestamps never run backwards.
    if (i > 0) {
      EXPECT_EQ(transitions[i].from, transitions[i - 1].to);
      EXPECT_GE(transitions[i].sim_ns, transitions[i - 1].sim_ns);
    }
  }
}

TEST(CircuitBreakerTest, DisabledBreakerAdmitsEverything) {
  CircuitBreaker breaker(/*failure_threshold=*/0, /*cooldown_calls=*/1);
  for (int i = 0; i < 10; ++i) {
    breaker.RecordFailure();
    EXPECT_TRUE(breaker.Admit());
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// --- RetryingOracle unit behaviour ----------------------------------------

std::vector<uint8_t> MakeTruth(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> truth(n);
  for (auto& t : truth) t = rng.NextBernoulli(0.5) ? 1 : 0;
  return truth;
}

TEST(RetryingOracleTest, InfallibleInnerIsNoOpDecorator) {
  const std::vector<uint8_t> truth = MakeTruth(16, 5);
  GroundTruthOracle inner(truth);
  RetryingOracle oracle(&inner, RetryPolicy{});
  EXPECT_FALSE(oracle.fallible());

  const std::vector<int64_t> items{3, 0, 15, 7};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(1);
  ASSERT_TRUE(oracle.TryLabelBatch(items, rng, out, resolved).ok());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NE(resolved[i], 0);
    EXPECT_EQ(out[i], truth[static_cast<size_t>(items[i])]);
  }
  // No retry machinery engaged: the fallible counters never move.
  EXPECT_EQ(oracle.stats().attempts, 0);
}

TEST(RetryingOracleTest, RetriesTransientFailuresUntilSuccess) {
  const std::vector<uint8_t> truth = MakeTruth(32, 7);
  ScriptedOracle inner(truth, {Action::kFailUnavailable, Action::kFailTimeout,
                               Action::kResolveAll});
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 0.0;
  RetryingOracle oracle(&inner, policy);

  const std::vector<int64_t> items{1, 9, 17, 25};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(2);
  ASSERT_TRUE(oracle.TryLabelBatch(items, rng, out, resolved).ok());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NE(resolved[i], 0);
    EXPECT_EQ(out[i], truth[static_cast<size_t>(items[i])]);
  }
  const RetryStats stats = oracle.stats();
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.give_ups, 0);
  // Whole-attempt failures resolve nothing, so every retry re-requests the
  // full batch.
  ASSERT_EQ(inner.requests().size(), 3u);
  EXPECT_EQ(inner.requests()[1], items);
  EXPECT_EQ(inner.requests()[2], items);
}

TEST(RetryingOracleTest, ReRequestsOnlyMissingItemsAndCountsRecovered) {
  const std::vector<uint8_t> truth = MakeTruth(64, 9);
  ScriptedOracle inner(truth, {Action::kResolveFirstHalf,
                               Action::kResolveFirstHalf, Action::kResolveAll});
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 0.0;
  RetryingOracle oracle(&inner, policy);

  const std::vector<int64_t> items{10, 20, 30, 40, 50, 60, 2, 4};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(3);
  ASSERT_TRUE(oracle.TryLabelBatch(items, rng, out, resolved).ok());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NE(resolved[i], 0);
    EXPECT_EQ(out[i], truth[static_cast<size_t>(items[i])]);
  }
  // Attempt 1 resolves the first 4 of 8; attempt 2 re-requests exactly the
  // missing 4 and resolves 2; attempt 3 re-requests the last 2.
  ASSERT_EQ(inner.requests().size(), 3u);
  EXPECT_EQ(inner.requests()[0], items);
  EXPECT_EQ(inner.requests()[1], (std::vector<int64_t>{50, 60, 2, 4}));
  EXPECT_EQ(inner.requests()[2], (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(oracle.stats().items_recovered, 4);
  EXPECT_EQ(oracle.stats().give_ups, 0);
}

TEST(RetryingOracleTest, GivesUpWithWrappedLastFailureKeepingPartialProgress) {
  const std::vector<uint8_t> truth = MakeTruth(16, 11);
  ScriptedOracle inner(truth,
                       {Action::kResolveFirstHalf, Action::kFailUnavailable});
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_seconds = 0.0;
  RetryingOracle oracle(&inner, policy);

  const std::vector<int64_t> items{0, 1, 2, 3};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(4);
  const Status status = oracle.TryLabelBatch(items, rng, out, resolved);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("gave up after 2 attempts"),
            std::string::npos)
      << status.message();
  // The attempt-1 labels survive the give-up: the caller may commit them.
  EXPECT_NE(resolved[0], 0);
  EXPECT_NE(resolved[1], 0);
  EXPECT_EQ(resolved[2], 0);
  EXPECT_EQ(resolved[3], 0);
  EXPECT_EQ(out[0], truth[0]);
  EXPECT_EQ(out[1], truth[1]);
  EXPECT_EQ(oracle.stats().give_ups, 1);
}

TEST(RetryingOracleTest, StalledPartialBatchGivesUpUnavailable) {
  const std::vector<uint8_t> truth = MakeTruth(8, 13);
  ScriptedOracle inner(truth, {Action::kResolveNone});
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0;
  RetryingOracle oracle(&inner, policy);

  const std::vector<int64_t> items{0, 1};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(5);
  const Status status = oracle.TryLabelBatch(items, rng, out, resolved);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("partial batch never completed"),
            std::string::npos)
      << status.message();
  EXPECT_EQ(oracle.stats().give_ups, 1);
}

TEST(RetryingOracleTest, BackoffIsChargedIntoTheRemoteClock) {
  const std::vector<uint8_t> truth = MakeTruth(16, 15);
  ScriptedOracle base(truth, {Action::kFailUnavailable,
                              Action::kFailUnavailable, Action::kResolveAll});
  RemoteOracleOptions remote_options;
  remote_options.round_trip_seconds = 30.0;
  remote_options.per_item_seconds = 0.0;
  remote_options.cost_per_label = 0.0;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 2.0;
  const OracleStack stack = OracleStackBuilder()
                                .Remote(remote_options)
                                .Retry(policy)
                                .Build(&base)
                                .ValueOrDie();

  const std::vector<int64_t> items{0, 1, 2};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(6);
  ASSERT_TRUE(stack.top().TryLabelBatch(items, rng, out, resolved).ok());
  // Two backoff waits (1 s, then 2 s) on top of three attempted trips of
  // 30 s each: the simulated clock sees all of it.
  EXPECT_EQ(stack.retrying()->stats().backoff_ns, 3'000'000'000);
  EXPECT_EQ(stack.remote()->stats().simulated_latency_ns, 93'000'000'000);
}

TEST(RetryingOracleTest, PerAttemptTimeoutDiscardsLateLabels) {
  const std::vector<uint8_t> truth = MakeTruth(16, 17);
  ScriptedOracle base(truth, {Action::kResolveAll});
  RemoteOracleOptions remote_options;
  remote_options.round_trip_seconds = 30.0;
  remote_options.per_item_seconds = 0.0;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_seconds = 0.0;
  policy.per_attempt_timeout_seconds = 10.0;  // Every 30 s trip is too slow.
  const OracleStack stack = OracleStackBuilder()
                                .Remote(remote_options)
                                .Retry(policy)
                                .Build(&base)
                                .ValueOrDie();

  const std::vector<int64_t> items{0, 1};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(7);
  const Status status = stack.top().TryLabelBatch(items, rng, out, resolved);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  // The labels arrived after the caller stopped waiting: none are usable,
  // but the wire time stays charged.
  EXPECT_EQ(resolved[0], 0);
  EXPECT_EQ(resolved[1], 0);
  EXPECT_EQ(stack.remote()->stats().simulated_latency_ns, 60'000'000'000);
  EXPECT_EQ(stack.retrying()->stats().give_ups, 1);
}

TEST(RetryingOracleTest, OverallDeadlineStopsBackingOff) {
  const std::vector<uint8_t> truth = MakeTruth(8, 19);
  ScriptedOracle inner(truth, {Action::kFailUnavailable});
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 100.0;
  policy.overall_deadline_seconds = 50.0;  // The first backoff would bust it.
  RetryingOracle oracle(&inner, policy);

  const std::vector<int64_t> items{0};
  std::vector<uint8_t> out(1), resolved(1);
  Rng rng(8);
  const Status status = oracle.TryLabelBatch(items, rng, out, resolved);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("overall deadline"), std::string::npos);
  const RetryStats stats = oracle.stats();
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.give_ups, 1);
  EXPECT_EQ(stats.backoff_ns, 0);  // Gave up instead of waiting.
}

TEST(RetryingOracleTest, BreakerOpensFastFailsThenRecovers) {
  const std::vector<uint8_t> truth = MakeTruth(8, 21);
  ScriptedOracle inner(truth, {Action::kFailUnavailable,
                               Action::kFailUnavailable, Action::kResolveAll});
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.initial_backoff_seconds = 0.0;
  policy.breaker_failure_threshold = 1;
  policy.breaker_cooldown_calls = 1;
  RetryingOracle oracle(&inner, policy);

  const std::vector<int64_t> items{0, 1};
  std::vector<uint8_t> out(items.size()), resolved(items.size());
  Rng rng(9);
  auto call = [&] { return oracle.TryLabelBatch(items, rng, out, resolved); };

  // Call 1: the attempt fails and trips the breaker (threshold 1).
  EXPECT_EQ(call().code(), StatusCode::kUnavailable);
  EXPECT_EQ(oracle.breaker().state(), CircuitBreaker::State::kOpen);
  // Call 2: fast-failed without touching the inner oracle.
  const size_t inner_calls_before = inner.requests().size();
  EXPECT_EQ(call().code(), StatusCode::kUnavailable);
  EXPECT_EQ(inner.requests().size(), inner_calls_before);
  EXPECT_EQ(oracle.stats().breaker_fast_fails, 1);
  // Call 3: the cooldown is spent, a half-open probe goes through — and
  // fails, re-opening the breaker.
  EXPECT_EQ(call().code(), StatusCode::kUnavailable);
  EXPECT_EQ(inner.requests().size(), inner_calls_before + 1);
  EXPECT_EQ(oracle.breaker().state(), CircuitBreaker::State::kOpen);
  // Call 4: fast-failed again; call 5: the probe succeeds and closes.
  EXPECT_EQ(call().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(call().ok());
  EXPECT_EQ(oracle.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(oracle.stats().breaker_fast_fails, 2);
  // Call 6: normal operation resumed.
  EXPECT_TRUE(call().ok());

  // The full state history surfaces through RetryStats: open, probe, re-open,
  // probe, close. Without a remote clock below, every timestamp is 0.
  const std::vector<CircuitBreaker::Transition> transitions =
      oracle.stats().breaker_transitions;
  ASSERT_EQ(transitions.size(), 5u);
  EXPECT_EQ(transitions.front().from, CircuitBreaker::State::kClosed);
  EXPECT_EQ(transitions.front().to, CircuitBreaker::State::kOpen);
  EXPECT_EQ(transitions.back().to, CircuitBreaker::State::kClosed);
  for (size_t i = 1; i < transitions.size(); ++i) {
    EXPECT_EQ(transitions[i].from, transitions[i - 1].to);
    EXPECT_GE(transitions[i].sim_ns, transitions[i - 1].sim_ns);
  }
}

// --- Runner-level robustness ----------------------------------------------

namespace exp = ::oasis::experiments;

testutil::SyntheticPool SmallPool() {
  testutil::SyntheticPoolOptions options;
  options.size = 1200;
  options.match_fraction = 0.08;
  options.seed = 404;
  return testutil::MakeSyntheticPool(options);
}

exp::RunnerOptions BaseRunnerOptions() {
  exp::RunnerOptions options;
  options.repeats = 6;
  options.trajectory.budget = 180;
  options.trajectory.checkpoint_every = 60;
  options.base_seed = 31337;
  options.num_threads = 1;
  return options;
}

FaultInjectionOptions TransientChaos() {
  FaultInjectionOptions faults;
  faults.transient_failure_rate = 0.25;
  faults.timeout_rate = 0.15;
  faults.item_drop_rate = 0.3;
  faults.seed = ChaosSeed();
  return faults;
}

TEST(RetryRunnerTest, TransientChaosCurvesBitIdenticalToFaultFree) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle oracle(pool.truth);
  const exp::MethodSpec spec = exp::MakePassiveSpec(0.5);

  const exp::ErrorCurve baseline =
      exp::RunErrorCurve(spec, pool.scored, oracle,
                         pool.true_measures.f_alpha, BaseRunnerOptions())
          .ValueOrDie();
  EXPECT_FALSE(baseline.has_fault_stats);

  for (const int threads : {1, 2, 8}) {
    exp::RunnerOptions chaos_options = BaseRunnerOptions();
    chaos_options.num_threads = threads;
    chaos_options.fault_injection = TransientChaos();
    RetryPolicy policy;
    // Generous attempt budget: with the rates above, the probability of any
    // batch exhausting 30 attempts is ~1e-8 — the test is seed-robust.
    policy.max_attempts = 30;
    chaos_options.retry_policy = policy;
    const exp::ErrorCurve chaos =
        exp::RunErrorCurve(spec, pool.scored, oracle,
                           pool.true_measures.f_alpha, chaos_options)
            .ValueOrDie();

    // The headline guarantee: transient faults fully recovered by retries
    // leave every error statistic BIT-identical to the fault-free run,
    // whatever the thread count.
    ASSERT_EQ(chaos.budgets, baseline.budgets) << "threads=" << threads;
    for (size_t i = 0; i < baseline.budgets.size(); ++i) {
      EXPECT_EQ(chaos.mean_abs_error[i], baseline.mean_abs_error[i])
          << "threads=" << threads << " checkpoint " << i;
      EXPECT_EQ(chaos.stddev[i], baseline.stddev[i]);
      EXPECT_EQ(chaos.mean_estimate[i], baseline.mean_estimate[i]);
      EXPECT_EQ(chaos.frac_defined[i], baseline.frac_defined[i]);
    }
    // The repair work shows up in the recovery columns instead.
    ASSERT_TRUE(chaos.has_fault_stats);
    ASSERT_EQ(chaos.mean_retries.size(), chaos.budgets.size());
    EXPECT_GT(chaos.mean_retries.back(), 0.0);
    EXPECT_EQ(chaos.mean_give_ups.back(), 0.0);
  }
}

TEST(RetryRunnerTest, PermanentOutageSurfacesUnavailable) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle oracle(pool.truth);
  exp::RunnerOptions options = BaseRunnerOptions();
  options.repeats = 2;
  FaultInjectionOptions faults;
  faults.outage_after_attempts = 0;  // Down from the first attempt.
  options.fault_injection = faults;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_seconds = 0.0;
  options.retry_policy = policy;

  const auto result = exp::RunErrorCurve(exp::MakePassiveSpec(0.5), pool.scored,
                                         oracle, pool.true_measures.f_alpha,
                                         options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
}

TEST(RetryRunnerTest, PermanentTimeoutsSurfaceDeadlineExceeded) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle oracle(pool.truth);
  exp::RunnerOptions options = BaseRunnerOptions();
  options.repeats = 2;
  FaultInjectionOptions faults;
  faults.timeout_rate = 1.0;  // Every attempt times out, forever.
  faults.seed = ChaosSeed();
  options.fault_injection = faults;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0;
  options.retry_policy = policy;

  const auto result = exp::RunErrorCurve(exp::MakePassiveSpec(0.5), pool.scored,
                                         oracle, pool.true_measures.f_alpha,
                                         options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

TEST(RetryRunnerTest, CsvCarriesRetryAndEssColumns) {
  const testutil::SyntheticPool pool = SmallPool();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 12, false).ValueOrDie());

  exp::RunnerOptions options = BaseRunnerOptions();
  options.repeats = 3;
  options.fault_injection = TransientChaos();
  RetryPolicy policy;
  policy.max_attempts = 30;  // Seed-robust: give-ups are ~impossible.
  options.retry_policy = policy;
  const exp::ErrorCurve curve =
      exp::RunErrorCurve(exp::MakeOasisSpec(OasisOptions{}, strata),
                         pool.scored, oracle, pool.true_measures.f_alpha,
                         options)
          .ValueOrDie();
  ASSERT_TRUE(curve.has_fault_stats);
  ASSERT_TRUE(curve.has_degeneracy_stats);
  EXPECT_GT(curve.mean_ess.back(), 0.0);

  const std::string path = "/tmp/oasis_retry_policy_test_curves.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(exp::WriteCurvesCsv(path, {curve}).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "method,labels,mean_abs_error,stddev,mean_estimate,frac_defined"
            ",retries,give_ups,ess");
  // Every data row carries all nine cells.
  std::string row;
  size_t rows = 0;
  while (std::getline(in, row)) {
    if (row.empty()) continue;
    ++rows;
    EXPECT_EQ(exp::SplitCsvLine(row).size(), 9u) << row;
  }
  EXPECT_EQ(rows, curve.budgets.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oasis
