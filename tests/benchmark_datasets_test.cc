#include "datagen/benchmark_datasets.h"

#include <gtest/gtest.h>

#include "eval/confusion.h"

namespace oasis {
namespace datagen {
namespace {

TEST(ProfilesTest, SixStandardProfilesInPaperOrder) {
  const auto& profiles = StandardProfiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[0].name, "Amazon-GoogleProducts");
  EXPECT_EQ(profiles[1].name, "restaurant");
  EXPECT_EQ(profiles[2].name, "DBLP-ACM");
  EXPECT_EQ(profiles[3].name, "Abt-Buy");
  EXPECT_EQ(profiles[4].name, "cora");
  EXPECT_EQ(profiles[5].name, "tweets100k");
}

TEST(ProfilesTest, FullSizesMatchPaperTable1) {
  const auto& profiles = StandardProfiles();
  // Two-source profiles reproduce |Z| = n1 * n2 at (or very near) the
  // published sizes.
  EXPECT_EQ(static_cast<int64_t>(profiles[0].left_size * profiles[0].right_size),
            profiles[0].paper_full_size);
  EXPECT_EQ(static_cast<int64_t>(profiles[1].left_size * profiles[1].right_size),
            profiles[1].paper_full_size);
  EXPECT_EQ(static_cast<int64_t>(profiles[3].left_size * profiles[3].right_size),
            profiles[3].paper_full_size);
  // DBLP-ACM is approximate (the paper's size has no integer factorisation
  // consistent with the published record counts).
  const double dblp =
      static_cast<double>(profiles[2].left_size * profiles[2].right_size);
  EXPECT_NEAR(dblp / static_cast<double>(profiles[2].paper_full_size), 1.0, 0.01);
}

TEST(ProfilesTest, LookupByName) {
  EXPECT_TRUE(ProfileByName("cora").ok());
  EXPECT_EQ(ProfileByName("cora").ValueOrDie().dedup, true);
  EXPECT_FALSE(ProfileByName("nonexistent").ok());
}

TEST(ClassifierFactoryTest, AllKindsConstructAndName) {
  for (ClassifierKind kind :
       {ClassifierKind::kLinearSvm, ClassifierKind::kLogisticRegression,
        ClassifierKind::kMlp, ClassifierKind::kAdaBoost, ClassifierKind::kRbfSvm}) {
    auto model = MakeClassifier(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), ClassifierKindName(kind));
  }
}

/// A miniature profile so pool construction stays fast in unit tests.
DatasetProfile MiniProfile() {
  DatasetProfile p;
  p.name = "mini";
  p.domain = Domain::kECommerce;
  p.left_size = 150;
  p.right_size = 150;
  p.full_matches = 60;
  p.pool_size = 2000;
  p.pool_matches = 25;
  p.hard_negative_fraction = 0.1;
  p.train_matches = 40;
  p.train_nonmatches = 400;
  p.train_hard_fraction = 0.3;
  p.predicted_positive_factor = 0.8;
  return p;
}

TEST(BuildBenchmarkPoolTest, PoolShapeAndTruthCounts) {
  BenchmarkPool pool =
      BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLinearSvm,
                         /*calibrated=*/false, /*seed=*/42)
          .ValueOrDie();
  EXPECT_EQ(pool.scored.size(), 2000);
  EXPECT_EQ(pool.truth.size(), 2000u);
  EXPECT_EQ(pool.pool_matches, 25);
  EXPECT_TRUE(pool.scored.Validate().ok());
  int64_t truth_count = 0;
  for (uint8_t t : pool.truth) truth_count += t;
  EXPECT_EQ(truth_count, 25);
}

TEST(BuildBenchmarkPoolTest, OperatingPointHitsPredictedCount) {
  DatasetProfile profile = MiniProfile();
  profile.predicted_positive_factor = 0.8;
  BenchmarkPool pool = BuildBenchmarkPool(profile, ClassifierKind::kLinearSvm,
                                          false, 43)
                           .ValueOrDie();
  // round(0.8 * 25) = 20 predicted positives (+- score ties).
  EXPECT_NEAR(static_cast<double>(pool.scored.NumPredictedPositives()), 20.0, 3.0);
}

TEST(BuildBenchmarkPoolTest, ScoresSeparateClassesOnEasyData) {
  BenchmarkPool pool = BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLinearSvm,
                                          false, 44)
                           .ValueOrDie();
  // Mean score of matches far above mean score of non-matches.
  double match_mean = 0.0;
  double non_mean = 0.0;
  int64_t matches = 0;
  for (size_t i = 0; i < pool.truth.size(); ++i) {
    if (pool.truth[i]) {
      match_mean += pool.scored.scores[i];
      ++matches;
    } else {
      non_mean += pool.scored.scores[i];
    }
  }
  match_mean /= static_cast<double>(matches);
  non_mean /= static_cast<double>(pool.truth.size() - matches);
  EXPECT_GT(match_mean, non_mean + 0.5);
}

TEST(BuildBenchmarkPoolTest, CalibratedScoresAreProbabilities) {
  BenchmarkPool pool = BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLinearSvm,
                                          /*calibrated=*/true, 45)
                           .ValueOrDie();
  EXPECT_TRUE(pool.scored.scores_are_probabilities);
  for (double s : pool.scored.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(BuildBenchmarkPoolTest, DeterministicInSeed) {
  BenchmarkPool a =
      BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLinearSvm, false, 77)
          .ValueOrDie();
  BenchmarkPool b =
      BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLinearSvm, false, 77)
          .ValueOrDie();
  EXPECT_EQ(a.scored.scores, b.scored.scores);
  EXPECT_EQ(a.truth, b.truth);
}

TEST(BuildBenchmarkPoolTest, DirectScoreProfileTweets) {
  DatasetProfile tweets = ProfileByName("tweets100k").ValueOrDie();
  BenchmarkPool pool =
      BuildBenchmarkPool(tweets, ClassifierKind::kLinearSvm, false, 46)
          .ValueOrDie();
  EXPECT_EQ(pool.scored.size(), tweets.pool_size);
  EXPECT_EQ(pool.pool_matches, tweets.pool_matches);
  // Balanced regime: precision and recall should land near the paper's
  // ~0.76/0.78 operating point.
  EXPECT_NEAR(pool.true_measures.precision, tweets.paper_precision, 0.05);
  EXPECT_NEAR(pool.true_measures.recall, tweets.paper_recall, 0.05);
}

TEST(GenerateDatasetForProfileTest, DirectScoreProfileHasNoDataset) {
  DatasetProfile tweets = ProfileByName("tweets100k").ValueOrDie();
  EXPECT_FALSE(GenerateDatasetForProfile(tweets, 1).ok());
}

}  // namespace
}  // namespace datagen
}  // namespace oasis
