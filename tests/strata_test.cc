#include "strata/strata.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(StrataTest, FromAssignmentBasic) {
  const std::vector<int32_t> assignment{0, 1, 0, 2, 1};
  Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 3u);
  EXPECT_EQ(strata.num_items(), 5u);
  EXPECT_EQ(strata.size(0), 2u);
  EXPECT_EQ(strata.size(1), 2u);
  EXPECT_EQ(strata.size(2), 1u);
  EXPECT_TRUE(strata.Validate().ok());
}

TEST(StrataTest, FromAssignmentCompactsEmptyStrata) {
  // Stratum index 1 is unused; index 3 maps down to 1 after compaction.
  const std::vector<int32_t> assignment{0, 3, 0, 3};
  Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 2u);
  EXPECT_EQ(strata.stratum_of(0), 0);
  EXPECT_EQ(strata.stratum_of(1), 1);
  EXPECT_TRUE(strata.Validate().ok());
}

TEST(StrataTest, FromAssignmentRejectsEmptyAndNegative) {
  EXPECT_FALSE(Strata::FromAssignment({}).ok());
  const std::vector<int32_t> bad{0, -1};
  EXPECT_FALSE(Strata::FromAssignment(bad).ok());
}

TEST(StrataTest, WeightsSumToOneAndMatchSizes) {
  const std::vector<int32_t> assignment{0, 0, 0, 1};
  Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  EXPECT_DOUBLE_EQ(strata.weight(0), 0.75);
  EXPECT_DOUBLE_EQ(strata.weight(1), 0.25);
}

TEST(StrataTest, FromScoreEdgesBinsCorrectly) {
  const std::vector<double> scores{0.05, 0.15, 0.25, 0.95, 0.55};
  const std::vector<double> edges{0.0, 0.1, 0.5, 1.0};
  Strata strata = Strata::FromScoreEdges(scores, edges).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 3u);
  EXPECT_EQ(strata.stratum_of(0), 0);  // 0.05 in [0, 0.1)
  EXPECT_EQ(strata.stratum_of(1), 1);  // 0.15 in [0.1, 0.5)
  EXPECT_EQ(strata.stratum_of(2), 1);
  EXPECT_EQ(strata.stratum_of(3), 2);  // 0.95 in [0.5, 1.0]
  EXPECT_EQ(strata.stratum_of(4), 2);
}

TEST(StrataTest, FromScoreEdgesClampsOutOfRange) {
  const std::vector<double> scores{-5.0, 5.0};
  const std::vector<double> edges{0.0, 0.5, 1.0};
  Strata strata = Strata::FromScoreEdges(scores, edges).ValueOrDie();
  EXPECT_EQ(strata.stratum_of(0), 0);
  EXPECT_EQ(strata.stratum_of(1), static_cast<int32_t>(strata.num_strata()) - 1);
}

TEST(StrataTest, FromScoreEdgesDropsEmptyBins) {
  const std::vector<double> scores{0.05, 0.95};
  const std::vector<double> edges{0.0, 0.1, 0.5, 0.9, 1.0};
  Strata strata = Strata::FromScoreEdges(scores, edges).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 2u);  // Middle bins are empty and removed.
  EXPECT_TRUE(strata.Validate().ok());
}

TEST(StrataTest, FromScoreEdgesRejectsBadInput) {
  const std::vector<double> scores{0.5};
  EXPECT_FALSE(Strata::FromScoreEdges(scores, std::vector<double>{1.0}).ok());
  EXPECT_FALSE(
      Strata::FromScoreEdges(scores, std::vector<double>{1.0, 0.0}).ok());
  EXPECT_FALSE(Strata::FromScoreEdges({}, std::vector<double>{0.0, 1.0}).ok());
}

TEST(StrataTest, SampleItemStaysInStratum) {
  const std::vector<int32_t> assignment{0, 1, 0, 1, 0, 1, 1};
  Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    for (size_t k = 0; k < strata.num_strata(); ++k) {
      const int32_t item = strata.SampleItem(k, rng);
      EXPECT_EQ(strata.stratum_of(item), static_cast<int32_t>(k));
    }
  }
}

TEST(StrataTest, SampleItemIsUniformWithinStratum) {
  const std::vector<int32_t> assignment{0, 0, 0, 0};
  Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  Rng rng(17);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[strata.SampleItem(0, rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, 400);
}

TEST(StrataTest, MeanPerStratumDouble) {
  const std::vector<int32_t> assignment{0, 0, 1, 1};
  Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  const std::vector<double> values{1.0, 3.0, 10.0, 20.0};
  const std::vector<double> means = strata.MeanPerStratum(values);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 15.0);
}

TEST(StrataTest, MeanPerStratumBinary) {
  const std::vector<int32_t> assignment{0, 0, 0, 1};
  Strata strata = Strata::FromAssignment(assignment).ValueOrDie();
  const std::vector<uint8_t> flags{1, 0, 1, 1};
  const std::vector<double> means = strata.MeanPerStratum(flags);
  EXPECT_NEAR(means[0], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(means[1], 1.0);
}

}  // namespace
}  // namespace oasis
