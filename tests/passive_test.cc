#include "sampling/passive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "oracle/ground_truth_oracle.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

TEST(PassiveSamplerTest, RejectsBadArguments) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  EXPECT_FALSE(PassiveSampler::Create(nullptr, &labels, 0.5, Rng(1)).ok());
  EXPECT_FALSE(PassiveSampler::Create(&pool.scored, nullptr, 0.5, Rng(1)).ok());
  EXPECT_FALSE(PassiveSampler::Create(&pool.scored, &labels, 1.5, Rng(1)).ok());
  EXPECT_FALSE(PassiveSampler::Create(&pool.scored, &labels, -0.1, Rng(1)).ok());
}

TEST(PassiveSamplerTest, UndefinedUntilFirstPositive) {
  // A pool whose first draws are overwhelmingly negatives: the estimate must
  // report undefined until a predicted or true positive is sampled.
  SyntheticPoolOptions options;
  options.size = 5000;
  options.match_fraction = 0.002;
  options.seed = 77;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(7)).ValueOrDie();

  bool was_undefined_initially = false;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sampler->Step().ok());
    if (i == 0 && !sampler->Estimate().f_defined) was_undefined_initially = true;
  }
  // With ~0.4% positive rate the very first draw is a negative with
  // probability ~99.6%; the fixed seed makes this deterministic.
  EXPECT_TRUE(was_undefined_initially);
}

TEST(PassiveSamplerTest, ConvergesToTrueFOnFullLabelling) {
  SyntheticPoolOptions options;
  options.size = 800;
  options.match_fraction = 0.2;
  options.seed = 5;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(11)).ValueOrDie();

  // Sampling with replacement until nearly every item has been labelled:
  // the plain sample estimate converges to the pool value.
  for (int i = 0; i < 40000; ++i) ASSERT_TRUE(sampler->Step().ok());
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.02);
  EXPECT_NEAR(snap.precision, pool.true_measures.precision, 0.03);
  EXPECT_NEAR(snap.recall, pool.true_measures.recall, 0.03);
}

TEST(PassiveSamplerTest, LabelsConsumedNeverExceedsPoolSize) {
  SyntheticPoolOptions options;
  options.size = 100;
  options.match_fraction = 0.3;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(13)).ValueOrDie();
  for (int i = 0; i < 5000; ++i) ASSERT_TRUE(sampler->Step().ok());
  EXPECT_LE(sampler->labels_consumed(), 100);
  EXPECT_EQ(sampler->iterations(), 5000);
}

TEST(PassiveSamplerTest, AlphaExtremesMatchPrecisionRecall) {
  SyntheticPoolOptions options;
  options.size = 600;
  options.match_fraction = 0.25;
  options.seed = 21;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);

  for (double alpha : {0.0, 1.0}) {
    LabelCache labels(&oracle);
    auto sampler =
        PassiveSampler::Create(&pool.scored, &labels, alpha, Rng(23)).ValueOrDie();
    for (int i = 0; i < 30000; ++i) ASSERT_TRUE(sampler->Step().ok());
    const EstimateSnapshot snap = sampler->Estimate();
    ASSERT_TRUE(snap.f_defined);
    if (alpha == 1.0) {
      EXPECT_NEAR(snap.f_alpha, snap.precision, 1e-12);
    } else {
      EXPECT_NEAR(snap.f_alpha, snap.recall, 1e-12);
    }
  }
}

TEST(PassiveSamplerTest, DeterministicGivenSeed) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);

  double estimates[2];
  for (int run = 0; run < 2; ++run) {
    LabelCache labels(&oracle);
    auto sampler =
        PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(99)).ValueOrDie();
    for (int i = 0; i < 2000; ++i) ASSERT_TRUE(sampler->Step().ok());
    estimates[run] = sampler->Estimate().f_alpha;
  }
  EXPECT_DOUBLE_EQ(estimates[0], estimates[1]);
}

}  // namespace
}  // namespace oasis
