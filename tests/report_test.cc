#include "experiments/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace oasis {
namespace experiments {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2.5"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // All rows share the same column start for "value"/"1"/"2.5".
  std::istringstream stream(out);
  std::string header;
  std::getline(stream, header);
  const size_t value_col = header.find("value");
  std::string rule, row1, row2;
  std::getline(stream, rule);
  std::getline(stream, row1);
  std::getline(stream, row2);
  EXPECT_EQ(row1.find('1'), value_col);
  EXPECT_EQ(row2.find("2.5"), value_col);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"x"});
  EXPECT_NO_FATAL_FAILURE(table.ToString());
}

TEST(FormatDoubleTest, PrecisionAndNaN) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(std::nan(""), 2), "nan");
}

TEST(FormatScientificTest, Shape) {
  const std::string out = FormatScientific(2.483e-5, 3);
  EXPECT_NE(out.find("e-05"), std::string::npos);
  EXPECT_EQ(out.substr(0, 5), "2.483");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(4397038), "4,397,038");
  EXPECT_EQ(FormatCount(-1234), "-1,234");
}

TEST(PrintCurvesTest, HidesUnderDefinedPoints) {
  ErrorCurve curve;
  curve.method = "M";
  curve.budgets = {10, 20};
  curve.mean_abs_error = {0.5, 0.25};
  curve.stddev = {0.1, 0.05};
  curve.mean_estimate = {0.4, 0.5};
  curve.frac_defined = {0.5, 1.0};  // First point under the 95% bar.
  curve.repeats = 10;

  std::ostringstream out;
  PrintCurves(out, {curve});
  const std::string text = out.str();
  EXPECT_NE(text.find("M abs.err"), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);       // Hidden cell marker.
  EXPECT_NE(text.find("0.2500"), std::string::npos);  // Visible cell.
  EXPECT_EQ(text.find("0.5000"), std::string::npos);  // Hidden abs err.
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
