#include "stats/confidence.h"

#include <gtest/gtest.h>

#include <cmath>

namespace oasis {
namespace {

TEST(NormalQuantileTest, KnownQuantiles) {
  EXPECT_NEAR(NormalQuantileTwoSided(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantileTwoSided(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(NormalQuantileTwoSided(0.90), 1.644854, 1e-5);
  EXPECT_NEAR(NormalQuantileTwoSided(0.6826895), 1.0, 1e-4);
}

TEST(MeanConfidenceIntervalTest, FewSamplesGiveZeroWidth) {
  RunningStats stats;
  stats.Add(1.0);
  const ConfidenceInterval ci = MeanConfidenceInterval(stats);
  EXPECT_DOUBLE_EQ(ci.center, 1.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(MeanConfidenceIntervalTest, WidthMatchesFormula) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.Add(x);
  const ConfidenceInterval ci = MeanConfidenceInterval(stats, 0.95);
  EXPECT_DOUBLE_EQ(ci.center, 3.0);
  const double expected =
      NormalQuantileTwoSided(0.95) * stats.stddev() / std::sqrt(5.0);
  EXPECT_NEAR(ci.half_width, expected, 1e-12);
  EXPECT_NEAR(ci.lower(), 3.0 - expected, 1e-12);
  EXPECT_NEAR(ci.upper(), 3.0 + expected, 1e-12);
}

TEST(MeanConfidenceIntervalTest, HigherLevelIsWider) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) stats.Add(x);
  EXPECT_GT(MeanConfidenceInterval(stats, 0.99).half_width,
            MeanConfidenceInterval(stats, 0.90).half_width);
}

}  // namespace
}  // namespace oasis
