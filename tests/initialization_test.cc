#include "core/initialization.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/transforms.h"

namespace oasis {
namespace {

/// Builds a small pool + strata pair by hand for exact Algorithm-2 checks.
struct Fixture {
  ScoredPool pool;
  Strata strata;
};

Fixture MakeFixture(bool probability_scores) {
  Fixture fx;
  // Stratum 0: items 0,1 (low scores, predicted negative).
  // Stratum 1: items 2,3 (high scores, one predicted positive).
  fx.pool.scores = probability_scores ? std::vector<double>{0.1, 0.2, 0.6, 0.8}
                                      : std::vector<double>{-2.0, -1.0, 0.5, 1.5};
  fx.pool.predictions = {0, 0, 0, 1};
  fx.pool.scores_are_probabilities = probability_scores;
  fx.pool.threshold = probability_scores ? 0.5 : 0.0;
  const std::vector<int32_t> assignment{0, 0, 1, 1};
  fx.strata = Strata::FromAssignment(assignment).ValueOrDie();
  return fx;
}

TEST(InitializationTest, ProbabilityScoresUseStratumMeansDirectly) {
  Fixture fx = MakeFixture(/*probability_scores=*/true);
  InitialEstimates init =
      InitializeFromScores(fx.strata, fx.pool, 0.5).ValueOrDie();
  ASSERT_EQ(init.pi.size(), 2u);
  EXPECT_NEAR(init.pi[0], 0.15, 1e-12);  // mean(0.1, 0.2)
  EXPECT_NEAR(init.pi[1], 0.7, 1e-12);   // mean(0.6, 0.8)
  EXPECT_NEAR(init.lambda[0], 0.0, 1e-12);
  EXPECT_NEAR(init.lambda[1], 0.5, 1e-12);
}

TEST(InitializationTest, FGuessMatchesAlgorithmLine8) {
  Fixture fx = MakeFixture(true);
  const double alpha = 0.5;
  InitialEstimates init =
      InitializeFromScores(fx.strata, fx.pool, alpha).ValueOrDie();
  // |P_0| = |P_1| = 2.
  const double tp = 2 * 0.15 * 0.0 + 2 * 0.7 * 0.5;
  const double pred = 2 * 0.0 + 2 * 0.5;
  const double pos = 2 * 0.15 + 2 * 0.7;
  EXPECT_NEAR(init.f_alpha, tp / (alpha * pred + (1 - alpha) * pos), 1e-12);
}

TEST(InitializationTest, RawScoresMappedThroughLogistic) {
  Fixture fx = MakeFixture(/*probability_scores=*/false);
  InitialEstimates init =
      InitializeFromScores(fx.strata, fx.pool, 0.5).ValueOrDie();
  // Stratum means are -1.5 and 1.0 on the margin scale (threshold 0).
  EXPECT_NEAR(init.pi[0], Expit(-1.5), 1e-9);
  EXPECT_NEAR(init.pi[1], Expit(1.0), 1e-9);
}

TEST(InitializationTest, ThresholdShiftsLogisticCentre) {
  Fixture fx = MakeFixture(false);
  fx.pool.threshold = 1.0;  // Mean margin of stratum 1 sits at the threshold.
  InitialEstimates init =
      InitializeFromScores(fx.strata, fx.pool, 0.5).ValueOrDie();
  EXPECT_NEAR(init.pi[1], 0.5, 1e-9);
}

TEST(InitializationTest, PiClampedAwayFromDegenerate) {
  ScoredPool pool;
  pool.scores = {0.0, 0.0, 1.0, 1.0};
  pool.predictions = {0, 0, 1, 1};
  pool.scores_are_probabilities = true;
  pool.threshold = 0.5;
  Strata strata =
      Strata::FromAssignment(std::vector<int32_t>{0, 0, 1, 1}).ValueOrDie();
  InitialEstimates init = InitializeFromScores(strata, pool, 0.5).ValueOrDie();
  EXPECT_GT(init.pi[0], 0.0);  // Usable as a beta-prior mean.
  EXPECT_LT(init.pi[1], 1.0);
}

TEST(InitializationTest, RejectsMismatchedStrata) {
  Fixture fx = MakeFixture(true);
  ScoredPool small;
  small.scores = {0.5};
  small.predictions = {1};
  small.scores_are_probabilities = true;
  EXPECT_FALSE(InitializeFromScores(fx.strata, small, 0.5).ok());
}

TEST(InitializationTest, RejectsBadAlpha) {
  Fixture fx = MakeFixture(true);
  EXPECT_FALSE(InitializeFromScores(fx.strata, fx.pool, -0.1).ok());
  EXPECT_FALSE(InitializeFromScores(fx.strata, fx.pool, 1.1).ok());
}

TEST(InitializationTest, FGuessBoundedInUnitInterval) {
  Fixture fx = MakeFixture(false);
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    InitialEstimates init =
        InitializeFromScores(fx.strata, fx.pool, alpha).ValueOrDie();
    EXPECT_GE(init.f_alpha, 0.0);
    EXPECT_LE(init.f_alpha, 1.0);
  }
}

}  // namespace
}  // namespace oasis
