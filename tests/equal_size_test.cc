#include "strata/equal_size.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace oasis {
namespace {

TEST(EqualSizeTest, RejectsBadArguments) {
  EXPECT_FALSE(StratifyEqualSize({}, 3).ok());
  const std::vector<double> scores{0.5};
  EXPECT_FALSE(StratifyEqualSize(scores, 0).ok());
}

TEST(EqualSizeTest, SizesDifferByAtMostOne) {
  Rng rng(3);
  std::vector<double> scores;
  for (int i = 0; i < 1003; ++i) scores.push_back(rng.NextDouble());
  Strata strata = StratifyEqualSize(scores, 10).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 10u);
  size_t min_size = scores.size();
  size_t max_size = 0;
  for (size_t k = 0; k < strata.num_strata(); ++k) {
    min_size = std::min(min_size, strata.size(k));
    max_size = std::max(max_size, strata.size(k));
  }
  EXPECT_LE(max_size - min_size, 1u);
  EXPECT_TRUE(strata.Validate().ok());
}

TEST(EqualSizeTest, StrataFollowScoreOrder) {
  const std::vector<double> scores{0.9, 0.1, 0.5, 0.3, 0.7, 0.2};
  Strata strata = StratifyEqualSize(scores, 3).ValueOrDie();
  // Lowest-score items land in stratum 0, highest in the last stratum.
  EXPECT_EQ(strata.stratum_of(1), 0);  // 0.1
  EXPECT_EQ(strata.stratum_of(0), 2);  // 0.9
  EXPECT_LT(strata.stratum_of(3), strata.stratum_of(4));  // 0.3 < 0.7
}

TEST(EqualSizeTest, MoreStrataThanItemsIsCapped) {
  const std::vector<double> scores{0.1, 0.2, 0.3};
  Strata strata = StratifyEqualSize(scores, 10).ValueOrDie();
  EXPECT_EQ(strata.num_strata(), 3u);
  for (size_t k = 0; k < 3; ++k) EXPECT_EQ(strata.size(k), 1u);
}

TEST(EqualSizeTest, TiedScoresAreDeterministic) {
  const std::vector<double> scores(9, 0.5);
  Strata a = StratifyEqualSize(scores, 3).ValueOrDie();
  Strata b = StratifyEqualSize(scores, 3).ValueOrDie();
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(a.stratum_of(i), b.stratum_of(i));
  }
  EXPECT_EQ(a.num_strata(), 3u);
}

TEST(EqualSizeTest, ContrastWithCsfOnImbalancedScores) {
  // On heavily imbalanced scores, equal-size strata mix the high-score tail
  // into one big top stratum, whereas CSF isolates it (see csf_test).
  Rng rng(5);
  std::vector<double> scores;
  for (int i = 0; i < 10000; ++i) scores.push_back(0.05 * rng.NextDouble());
  for (int i = 0; i < 20; ++i) scores.push_back(0.9 + 0.1 * rng.NextDouble());
  Strata strata = StratifyEqualSize(scores, 10).ValueOrDie();
  // All 20 high-score items share the top stratum with ~980 low items.
  const int32_t top = strata.stratum_of(static_cast<int64_t>(scores.size()) - 1);
  size_t high_in_top = 0;
  for (size_t i = 10000; i < scores.size(); ++i) {
    if (strata.stratum_of(static_cast<int64_t>(i)) == top) ++high_in_top;
  }
  EXPECT_EQ(high_in_top, 20u);
  EXPECT_GT(strata.size(static_cast<size_t>(top)), 500u);
}

}  // namespace
}  // namespace oasis
