#include "er/pool.h"

#include <gtest/gtest.h>

#include <cmath>

namespace oasis {
namespace er {
namespace {

TEST(PairPoolTest, AddAndAccess) {
  PairPool pool;
  pool.Add({0, 1}, true);
  pool.Add({2, 3}, false);
  pool.Add({4, 5}, false);
  EXPECT_EQ(pool.size(), 3);
  EXPECT_EQ(pool.num_matches(), 1);
  EXPECT_TRUE(pool.is_match(0));
  EXPECT_FALSE(pool.is_match(1));
  EXPECT_EQ(pool.pair(1).left, 2);
  EXPECT_EQ(pool.pair(1).right, 3);
  EXPECT_EQ(pool.truth().size(), 3u);
}

TEST(PairPoolTest, ImbalanceRatio) {
  PairPool pool;
  pool.Add({0, 0}, true);
  for (int i = 0; i < 10; ++i) pool.Add({i, i + 1}, false);
  EXPECT_DOUBLE_EQ(pool.ImbalanceRatio(), 10.0);
}

TEST(PairPoolTest, ImbalanceRatioWithNoMatchesIsInfinite) {
  PairPool pool;
  pool.Add({0, 1}, false);
  EXPECT_TRUE(std::isinf(pool.ImbalanceRatio()));
}

TEST(RecordPairTest, Equality) {
  EXPECT_EQ((RecordPair{1, 2}), (RecordPair{1, 2}));
  EXPECT_FALSE((RecordPair{1, 2}) == (RecordPair{2, 1}));
}

}  // namespace
}  // namespace er
}  // namespace oasis
