// The `key = value` config parser behind the apps/ CLI layer: parse shapes,
// typed getters, the typo guard (CheckAllKeysUsed), and file round-trips.

#include "experiments/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace oasis {
namespace experiments {
namespace {

TEST(ConfigMapTest, ParsesKeysValuesCommentsAndBlanks) {
  auto config = ConfigMap::Parse(
                    "# full-line comment\n"
                    "scenario = stripe-f90\n"
                    "\n"
                    "budget=2000   # trailing comment\n"
                    "  repeats  =  15  \n")
                    .ValueOrDie();
  EXPECT_TRUE(config.Has("scenario"));
  EXPECT_EQ(config.GetString("scenario").ValueOrDie(), "stripe-f90");
  EXPECT_EQ(config.GetInt64("budget").ValueOrDie(), 2000);
  EXPECT_EQ(config.GetInt64("repeats").ValueOrDie(), 15);
  EXPECT_EQ(config.Keys().size(), 3u);
}

TEST(ConfigMapTest, ValuesKeepInternalWhitespace) {
  auto config =
      ConfigMap::Parse("methods = passive, oasis, is\n").ValueOrDie();
  EXPECT_EQ(config.GetString("methods").ValueOrDie(), "passive, oasis, is");
  const std::vector<std::string> list = config.GetStringList("methods");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "passive");
  EXPECT_EQ(list[1], "oasis");
  EXPECT_EQ(list[2], "is");
}

TEST(ConfigMapTest, MalformedLinesFail) {
  EXPECT_FALSE(ConfigMap::Parse("no equals sign here\n").ok());
  EXPECT_FALSE(ConfigMap::Parse("= value without key\n").ok());
}

TEST(ConfigMapTest, DuplicateKeyIsAnErrorNotAnOverride) {
  const auto result = ConfigMap::Parse("budget = 1\nbudget = 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("budget"), std::string::npos);
}

TEST(ConfigMapTest, TypedGettersRejectGarbage) {
  auto config = ConfigMap::Parse(
                    "n = 12x\n"
                    "x = abc\n"
                    "b = maybe\n")
                    .ValueOrDie();
  EXPECT_FALSE(config.GetInt64("n").ok());
  EXPECT_FALSE(config.GetDouble("x").ok());
  EXPECT_FALSE(config.GetBool("b").ok());
}

TEST(ConfigMapTest, TypedGettersWithDefaults) {
  auto config = ConfigMap::Parse("present = 7\n").ValueOrDie();
  EXPECT_EQ(config.GetInt64Or("present", 1).ValueOrDie(), 7);
  EXPECT_EQ(config.GetInt64Or("absent", 42).ValueOrDie(), 42);
  EXPECT_DOUBLE_EQ(config.GetDoubleOr("absent", 0.5).ValueOrDie(), 0.5);
  EXPECT_TRUE(config.GetBoolOr("absent", true).ValueOrDie());
  EXPECT_EQ(config.GetStringOr("absent", "fallback"), "fallback");
  // A present key with a bad value still fails even through the Or variant.
  auto bad = ConfigMap::Parse("n = oops\n").ValueOrDie();
  EXPECT_FALSE(bad.GetInt64Or("n", 3).ok());
}

TEST(ConfigMapTest, BoolSpellings) {
  auto config = ConfigMap::Parse(
                    "a = true\nb = FALSE\nc = 1\nd = 0\n")
                    .ValueOrDie();
  EXPECT_TRUE(config.GetBool("a").ValueOrDie());
  EXPECT_FALSE(config.GetBool("b").ValueOrDie());
  EXPECT_TRUE(config.GetBool("c").ValueOrDie());
  EXPECT_FALSE(config.GetBool("d").ValueOrDie());
}

TEST(ConfigMapTest, CheckAllKeysUsedNamesTheTypo) {
  auto config = ConfigMap::Parse(
                    "budget = 100\n"
                    "bugdet_typo = 5\n")
                    .ValueOrDie();
  EXPECT_EQ(config.GetInt64("budget").ValueOrDie(), 100);
  const Status status = config.CheckAllKeysUsed();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bugdet_typo"), std::string::npos);
}

TEST(ConfigMapTest, CheckAllKeysUsedPassesWhenEverythingIsRead) {
  auto config = ConfigMap::Parse("a = 1\nb = 2\n").ValueOrDie();
  (void)config.GetInt64("a");
  (void)config.GetString("b");
  EXPECT_TRUE(config.CheckAllKeysUsed().ok());
}

TEST(ConfigMapTest, ParseFileRoundTrip) {
  const std::string path = "/tmp/oasis_config_test_roundtrip.cfg";
  {
    std::ofstream out(path);
    out << "# header\nscenario = stripe-f50\nbudget = 321\n";
  }
  auto config = ConfigMap::ParseFile(path).ValueOrDie();
  EXPECT_EQ(config.GetString("scenario").ValueOrDie(), "stripe-f50");
  EXPECT_EQ(config.GetInt64("budget").ValueOrDie(), 321);
  std::remove(path.c_str());
  EXPECT_FALSE(ConfigMap::ParseFile(path).ok());
}

TEST(TrimWhitespaceTest, Trims) {
  EXPECT_EQ(TrimWhitespace("  a b \t"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
