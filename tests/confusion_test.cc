#include "eval/confusion.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(ConfusionTest, AddClassifiesAllQuadrants) {
  ConfusionCounts counts;
  counts.Add(true, true);
  counts.Add(false, true);
  counts.Add(true, false);
  counts.Add(false, false);
  EXPECT_EQ(counts.true_positives, 1);
  EXPECT_EQ(counts.false_positives, 1);
  EXPECT_EQ(counts.false_negatives, 1);
  EXPECT_EQ(counts.true_negatives, 1);
  EXPECT_EQ(counts.total(), 4);
  EXPECT_EQ(counts.actual_positives(), 2);
  EXPECT_EQ(counts.predicted_positives(), 2);
}

TEST(ConfusionTest, PlusEqualsAccumulates) {
  ConfusionCounts a;
  a.Add(true, true);
  ConfusionCounts b;
  b.Add(false, true);
  b.Add(false, false);
  a += b;
  EXPECT_EQ(a.true_positives, 1);
  EXPECT_EQ(a.false_positives, 1);
  EXPECT_EQ(a.true_negatives, 1);
  EXPECT_EQ(a.total(), 3);
}

TEST(CountConfusionTest, CountsVectors) {
  const std::vector<uint8_t> truth{1, 1, 0, 0, 1};
  const std::vector<uint8_t> pred{1, 0, 1, 0, 1};
  const ConfusionCounts counts = CountConfusion(truth, pred).ValueOrDie();
  EXPECT_EQ(counts.true_positives, 2);
  EXPECT_EQ(counts.false_negatives, 1);
  EXPECT_EQ(counts.false_positives, 1);
  EXPECT_EQ(counts.true_negatives, 1);
}

TEST(CountConfusionTest, RejectsMismatchedOrEmpty) {
  const std::vector<uint8_t> one{1};
  const std::vector<uint8_t> two{1, 0};
  EXPECT_FALSE(CountConfusion(one, two).ok());
  EXPECT_FALSE(CountConfusion({}, {}).ok());
}

}  // namespace
}  // namespace oasis
