#include "classify/linear_svm.h"

#include <gtest/gtest.h>

#include "classify_test_util.h"

namespace oasis {
namespace classify {
namespace {

using testutil::Accuracy;
using testutil::MakeBlobs;

TEST(LinearSvmTest, RejectsDegenerateTrainingData) {
  LinearSvm svm;
  Rng rng(1);
  Dataset empty(2);
  EXPECT_FALSE(svm.Fit(empty, rng).ok());

  Dataset one_class(2);
  ASSERT_TRUE(one_class.Add(std::vector<double>{1.0, 1.0}, true).ok());
  EXPECT_FALSE(svm.Fit(one_class, rng).ok());

  LinearSvmOptions bad;
  bad.lambda = 0.0;
  LinearSvm bad_svm(bad);
  Dataset blobs = MakeBlobs(10, 0.2, 2);
  EXPECT_FALSE(bad_svm.Fit(blobs, rng).ok());
}

TEST(LinearSvmTest, SeparatesBlobs) {
  Dataset train = MakeBlobs(200, 0.3, 3);
  Dataset test = MakeBlobs(200, 0.3, 4);
  LinearSvm svm;
  Rng rng(5);
  ASSERT_TRUE(svm.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(svm, test), 0.97);
}

TEST(LinearSvmTest, MarginsAreSigned) {
  Dataset train = MakeBlobs(200, 0.2, 7);
  LinearSvm svm;
  Rng rng(9);
  ASSERT_TRUE(svm.Fit(train, rng).ok());
  EXPECT_FALSE(svm.probabilistic());
  EXPECT_DOUBLE_EQ(svm.threshold(), 0.0);
  EXPECT_GT(svm.Score(std::vector<double>{2.0, 2.0}), 0.0);
  EXPECT_LT(svm.Score(std::vector<double>{-2.0, -2.0}), 0.0);
}

TEST(LinearSvmTest, ThresholdShiftTradesRecallForPrecision) {
  Dataset train = MakeBlobs(200, 0.6, 11);
  LinearSvmOptions options;
  options.threshold_shift = 2.0;  // Very conservative positive calls.
  LinearSvm strict(options);
  LinearSvm normal;
  Rng rng1(13);
  Rng rng2(13);
  ASSERT_TRUE(strict.Fit(train, rng1).ok());
  ASSERT_TRUE(normal.Fit(train, rng2).ok());

  Dataset test = MakeBlobs(300, 0.6, 17);
  int strict_positives = 0;
  int normal_positives = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    strict_positives += strict.Predict(test.row(i)) ? 1 : 0;
    normal_positives += normal.Predict(test.row(i)) ? 1 : 0;
  }
  EXPECT_LT(strict_positives, normal_positives);
}

TEST(LinearSvmTest, DeterministicGivenSeed) {
  Dataset train = MakeBlobs(100, 0.3, 19);
  LinearSvm a;
  LinearSvm b;
  Rng rng1(21);
  Rng rng2(21);
  ASSERT_TRUE(a.Fit(train, rng1).ok());
  ASSERT_TRUE(b.Fit(train, rng2).ok());
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(LinearSvmTest, NameIsStable) {
  LinearSvm svm;
  EXPECT_EQ(svm.name(), "L-SVM");
}

}  // namespace
}  // namespace classify
}  // namespace oasis
