// Determinism contract of the pool-scale sharded sampling layer:
//  * BlockFenwickForest produces bit-identical values, totals and draws for
//    EVERY shard/thread count — the numeric layout is a function of the
//    block size alone, the shard count only schedules work;
//  * the OasisStepPath::kShardedFenwick runner curve is bit-identical across
//    shard counts {1, 2, 8} x runner thread counts {1, 2, 8} AND to the
//    unsharded (null shard_pool, serial rebuild) runner, pinned by golden
//    hexfloat values;
//  * cancellation mid-run still returns kCancelled with sharded samplers;
//  * concurrent sharded rebuilds on one shared ThreadPool are race-free
//    (exercised under TSan in CI's sanitize-thread leg).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/block_fenwick_forest.h"
#include "common/fenwick_tree.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace {

using experiments::ErrorCurve;
using experiments::MakeOasisSpec;
using experiments::RunErrorCurve;
using experiments::RunnerOptions;
using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

std::vector<double> RandomMasses(size_t n, uint64_t seed,
                                 double zero_fraction = 0.0) {
  Rng rng(seed);
  std::vector<double> masses(n);
  for (size_t i = 0; i < n; ++i) {
    masses[i] =
        rng.NextDouble() < zero_fraction ? 0.0 : 0.1 + 0.9 * rng.NextDouble();
  }
  return masses;
}

// ---------------------------------------------------------------------------
// BlockFenwickForest unit contract
// ---------------------------------------------------------------------------

TEST(BlockFenwickForestTest, RejectsInvalidBuildArguments) {
  EXPECT_FALSE(BlockFenwickForest::Build({}, 16).ok());
  const std::vector<double> masses = RandomMasses(10, 1);
  EXPECT_FALSE(BlockFenwickForest::Build(masses, 0).ok());
  EXPECT_FALSE(BlockFenwickForest::Build(masses, 12).ok());  // Not a power of 2.
  EXPECT_TRUE(BlockFenwickForest::Build(masses, 16).ok());
}

TEST(BlockFenwickForestTest, ValuesAndTotalMatchSource) {
  const std::vector<double> masses = RandomMasses(100, 7, 0.2);
  auto forest = BlockFenwickForest::Build(masses, 16).ValueOrDie();
  EXPECT_EQ(forest.size(), 100u);
  EXPECT_EQ(forest.num_blocks(), 7u);  // ceil(100 / 16)
  EXPECT_EQ(forest.block_size(), 16u);
  for (size_t i = 0; i < masses.size(); ++i) {
    EXPECT_EQ(forest.value(i), masses[i]) << i;
  }
  double expected = 0.0;
  for (double m : masses) expected += m;
  EXPECT_NEAR(forest.Total(), expected, 1e-12);
}

TEST(BlockFenwickForestTest, FindQuantileSelectsMidBinOwner) {
  const std::vector<double> masses = RandomMasses(100, 11, 0.25);
  auto forest = BlockFenwickForest::Build(masses, 16).ValueOrDie();
  // Mid-bin targets are robust to the forest's internal rounding; every
  // positive-mass index must own its own mid-bin target, and zero-mass
  // indices must never be returned.
  double prefix = 0.0;
  for (size_t i = 0; i < masses.size(); ++i) {
    if (masses[i] > 0.0) {
      EXPECT_EQ(forest.FindQuantile(prefix + masses[i] / 2.0), i) << i;
    }
    prefix += masses[i];
  }
  Rng rng(5);
  for (int t = 0; t < 1000; ++t) {
    const size_t k = forest.FindQuantile(rng.NextDouble() * forest.Total());
    EXPECT_GT(masses[k], 0.0) << "zero-mass index " << k << " drawn";
  }
}

TEST(BlockFenwickForestTest, UpdateAdjustsValuesAndRouting) {
  std::vector<double> masses = RandomMasses(64, 13);
  auto forest = BlockFenwickForest::Build(masses, 8).ValueOrDie();
  Rng rng(17);
  for (int t = 0; t < 200; ++t) {
    const size_t i = static_cast<size_t>(rng.NextBounded(masses.size()));
    masses[i] = rng.NextDouble();
    forest.Update(i, masses[i]);
  }
  double expected = 0.0;
  for (double m : masses) expected += m;
  EXPECT_NEAR(forest.Total(), expected, 1e-12);
  double prefix = 0.0;
  for (size_t i = 0; i < masses.size(); ++i) {
    EXPECT_EQ(forest.value(i), masses[i]) << i;
    if (masses[i] > 0.0) {
      EXPECT_EQ(forest.FindQuantile(prefix + masses[i] / 2.0), i) << i;
    }
    prefix += masses[i];
  }
}

TEST(BlockFenwickForestTest, ParallelRebuildBitIdenticalAcrossShardCounts) {
  const std::vector<double> initial = RandomMasses(1000, 19);
  const std::vector<double> next = RandomMasses(1000, 23, 0.1);
  ThreadPool pool(4);

  // Reference: fully serial rebuild (null pool).
  auto reference = BlockFenwickForest::Build(initial, 64).ValueOrDie();
  ASSERT_TRUE(reference.ParallelRebuild(next, nullptr, 1).ok());

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}, size_t{64}}) {
    auto forest = BlockFenwickForest::Build(initial, 64).ValueOrDie();
    ASSERT_TRUE(forest.ParallelRebuild(next, &pool, shards).ok());
    // EXPECT_EQ (not NEAR): bit-identical is the contract.
    EXPECT_EQ(forest.Total(), reference.Total()) << "shards=" << shards;
    for (size_t i = 0; i < next.size(); ++i) {
      ASSERT_EQ(forest.value(i), reference.value(i))
          << "shards=" << shards << " index " << i;
    }
    // Draw routing identical too.
    Rng rng(29);
    for (int t = 0; t < 500; ++t) {
      const double target = rng.NextDouble() * reference.Total();
      ASSERT_EQ(forest.FindQuantile(target), reference.FindQuantile(target))
          << "shards=" << shards;
    }
  }
}

TEST(BlockFenwickForestTest, ParallelRebuildWithMatchesParallelRebuild) {
  const std::vector<double> initial = RandomMasses(500, 31);
  const std::vector<double> next = RandomMasses(500, 37);
  ThreadPool pool(4);

  auto direct = BlockFenwickForest::Build(initial, 32).ValueOrDie();
  ASSERT_TRUE(direct.ParallelRebuild(next, &pool, 8).ok());

  auto filled = BlockFenwickForest::Build(initial, 32).ValueOrDie();
  ASSERT_TRUE(filled
                  .ParallelRebuildWith(
                      [&](size_t begin, std::span<double> out) {
                        for (size_t j = 0; j < out.size(); ++j) {
                          out[j] = next[begin + j];
                        }
                      },
                      &pool, 8)
                  .ok());

  EXPECT_EQ(filled.Total(), direct.Total());
  for (size_t i = 0; i < next.size(); ++i) {
    ASSERT_EQ(filled.value(i), direct.value(i)) << i;
  }
}

TEST(BlockFenwickForestTest, RebuildErrorsSurfaceDeterministically) {
  const std::vector<double> initial = RandomMasses(100, 41);
  auto forest = BlockFenwickForest::Build(initial, 16).ValueOrDie();
  ThreadPool pool(4);
  EXPECT_FALSE(forest.ParallelRebuild(RandomMasses(99, 43), &pool, 4).ok());
  std::vector<double> bad = RandomMasses(100, 47);
  bad[57] = -1.0;
  EXPECT_FALSE(forest.ParallelRebuild(bad, &pool, 4).ok());
  EXPECT_FALSE(
      forest.ParallelRebuildWith(BlockFenwickForest::BlockFill{}, &pool, 4)
          .ok());
}

// Two forests rebuilt concurrently on ONE shared ThreadPool — the usage
// pattern of sharded samplers running inside parallel runner workers. CI's
// sanitize-thread leg runs this under TSan.
TEST(BlockFenwickForestTest, ConcurrentShardedRebuildsOnSharedPool) {
  ThreadPool pool(4);
  const std::vector<double> initial = RandomMasses(2000, 53);
  auto run = [&](uint64_t seed) {
    auto forest = BlockFenwickForest::Build(initial, 128).ValueOrDie();
    auto serial = BlockFenwickForest::Build(initial, 128).ValueOrDie();
    for (int round = 0; round < 20; ++round) {
      const std::vector<double> next =
          RandomMasses(initial.size(), seed + static_cast<uint64_t>(round));
      ASSERT_TRUE(forest.ParallelRebuild(next, &pool, 8).ok());
      ASSERT_TRUE(serial.ParallelRebuild(next, nullptr, 1).ok());
      ASSERT_EQ(forest.Total(), serial.Total());
    }
  };
  std::thread a(run, 61);
  std::thread b(run, 67);
  a.join();
  b.join();
}

// ---------------------------------------------------------------------------
// kShardedFenwick runner curves: golden hexfloat bit-identity
// ---------------------------------------------------------------------------

SyntheticPool GoldenPool() {
  SyntheticPoolOptions options;
  options.size = 2000;
  options.match_fraction = 0.05;
  options.seed = 101;
  return MakeSyntheticPool(options);
}

RunnerOptions GoldenOptions() {
  RunnerOptions options;
  options.repeats = 6;
  options.trajectory.budget = 200;
  options.trajectory.checkpoint_every = 50;
  options.base_seed = 20170626;
  return options;
}

OasisOptions ShardedOptions(ThreadPool* shard_pool, size_t num_shards) {
  OasisOptions options;
  options.step_path = OasisStepPath::kShardedFenwick;
  // Small numeric blocks so a 10-stratum pool still spans several blocks —
  // the block size is part of the numeric contract and must stay FIXED
  // across every compared configuration.
  options.shard_block_size = 4;
  options.shard_pool = shard_pool;
  options.num_shards = num_shards;
  return options;
}

/// Golden sharded-curve values captured at shard_pool=nullptr, num_shards=1,
/// num_threads=1 (hexfloat, so the comparison is bit-exact). One row per
/// checkpoint: {mean_abs_error, stddev, mean_estimate, frac_defined}.
constexpr double kGoldenTrueF = 0x1.59cf516a98c2cp-1;
constexpr double kGoldenSharded10[4][4] = {
    {0x1.1159849aed41fp-3, 0x1.68e42b38fa8afp-3, 0x1.64a25f33f609p-1, 0x1p+0},
    {0x1.bad32d35210ap-5, 0x1.505fdbad04886p-4, 0x1.4fa8cb08e9094p-1, 0x1p+0},
    {0x1.223ac14862ad2p-5, 0x1.95717e57c5a87p-5, 0x1.5e2d917849b2ep-1, 0x1p+0},
    {0x1.4ff97b50536d8p-5, 0x1.bda6ee0d8027bp-5, 0x1.5f2e8eda7abe7p-1, 0x1p+0},
};

void ExpectCurveMatchesGolden(const ErrorCurve& curve,
                              const double golden[4][4]) {
  ASSERT_EQ(curve.budgets.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(curve.mean_abs_error[i], golden[i][0]) << "checkpoint " << i;
    EXPECT_EQ(curve.stddev[i], golden[i][1]) << "checkpoint " << i;
    EXPECT_EQ(curve.mean_estimate[i], golden[i][2]) << "checkpoint " << i;
    EXPECT_EQ(curve.frac_defined[i], golden[i][3]) << "checkpoint " << i;
  }
}

TEST(ShardedPoolTest, CurveBitIdenticalAcrossShardAndThreadCounts) {
  SyntheticPool pool = GoldenPool();
  // Guards the golden values against synthetic-pool generation drift.
  ASSERT_EQ(pool.true_measures.f_alpha, kGoldenTrueF);
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());
  ThreadPool shard_pool(4);

  // The unsharded reference: serial rebuilds (null pool), serial runner.
  {
    RunnerOptions options = GoldenOptions();
    options.num_threads = 1;
    ErrorCurve unsharded =
        RunErrorCurve(MakeOasisSpec(ShardedOptions(nullptr, 1), strata),
                      pool.scored, oracle, pool.true_measures.f_alpha, options)
            .ValueOrDie();
    EXPECT_EQ(unsharded.method, "OASIS-10");
    ExpectCurveMatchesGolden(unsharded, kGoldenSharded10);
  }

  // Every (num_shards, runner threads) combination lands on the same curve:
  // the shard count schedules the rebuild work, the thread count schedules
  // the repeats, and neither touches the numeric layout.
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    for (const int threads : {1, 2, 8}) {
      RunnerOptions options = GoldenOptions();
      options.num_threads = threads;
      ErrorCurve curve =
          RunErrorCurve(MakeOasisSpec(ShardedOptions(&shard_pool, shards),
                                      strata),
                        pool.scored, oracle, pool.true_measures.f_alpha,
                        options)
              .ValueOrDie();
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ExpectCurveMatchesGolden(curve, kGoldenSharded10);
    }
  }
}

TEST(ShardedPoolTest, VisitDistributionMatchesFenwickPath) {
  // The blocked forest is distribution-equivalent (not bit-equal) to the
  // monolithic kFenwick tree: long-run stratum-visit histograms must agree.
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());
  ThreadPool shard_pool(4);

  OasisOptions fenwick_options;
  fenwick_options.step_path = OasisStepPath::kFenwick;
  LabelCache fenwick_labels(&oracle);
  auto fenwick = OasisSampler::Create(&pool.scored, &fenwick_labels, strata,
                                      fenwick_options, Rng(311))
                     .ValueOrDie();
  LabelCache sharded_labels(&oracle);
  auto sharded = OasisSampler::Create(&pool.scored, &sharded_labels, strata,
                                      ShardedOptions(&shard_pool, 2), Rng(313))
                     .ValueOrDie();
  const int kSteps = 20000;
  ASSERT_TRUE(fenwick->StepBatch(kSteps).ok());
  ASSERT_TRUE(sharded->StepBatch(kSteps).ok());

  double tv = 0.0;
  for (size_t s = 0; s < strata->num_strata(); ++s) {
    const double a =
        static_cast<double>(fenwick->model().labels_observed(s)) / kSteps;
    const double b =
        static_cast<double>(sharded->model().labels_observed(s)) / kSteps;
    tv += std::fabs(a - b);
  }
  tv *= 0.5;
  EXPECT_LT(tv, 0.05) << "total variation sharded vs fenwick: " << tv;

  const EstimateSnapshot a = fenwick->Estimate();
  const EstimateSnapshot b = sharded->Estimate();
  ASSERT_TRUE(a.f_defined);
  ASSERT_TRUE(b.f_defined);
  EXPECT_NEAR(a.f_alpha, b.f_alpha, 0.04);
}

TEST(ShardedPoolTest, CancellationMidRunReturnsCancelled) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());
  ThreadPool shard_pool(2);
  CancellationToken token;
  RunnerOptions options;
  options.repeats = 64;
  options.num_threads = 2;
  options.trajectory.budget = 200;
  options.trajectory.checkpoint_every = 100;
  options.cancel = &token;
  std::atomic<int> seen{0};
  options.progress = [&](int completed, int) {
    seen.fetch_add(1);
    if (completed >= 2) token.RequestCancel();
  };
  auto result =
      RunErrorCurve(MakeOasisSpec(ShardedOptions(&shard_pool, 4), strata),
                    pool.scored, oracle, 0.5, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(seen.load(), 64);
}

TEST(ShardedPoolTest, RejectsZeroShards) {
  SyntheticPool pool = GoldenPool();
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());
  OasisOptions options = ShardedOptions(nullptr, 0);
  EXPECT_FALSE(
      OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(1)).ok());
  options = ShardedOptions(nullptr, 1);
  options.shard_block_size = 12;  // Not a power of two.
  EXPECT_FALSE(
      OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(1)).ok());
}

}  // namespace
}  // namespace oasis
