#include "er/blocking.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace oasis {
namespace er {
namespace {

Database MakeDb(std::vector<std::string> names) {
  Database db;
  db.schema = Schema({{"name", FieldKind::kShortText}});
  for (auto& name : names) {
    Record r;
    r.values.push_back(FieldValue::Text(std::move(name)));
    db.records.push_back(std::move(r));
  }
  return db;
}

bool Contains(const std::vector<RecordPair>& pairs, RecordPair target) {
  return std::find(pairs.begin(), pairs.end(), target) != pairs.end();
}

TEST(TokenBlockingTest, PairsShareAToken) {
  Database left = MakeDb({"acme widget", "zeta gadget"});
  Database right = MakeDb({"acme tool", "other thing"});
  BlockingOptions options;
  const std::vector<RecordPair> pairs =
      TokenBlocking(left, right, options).ValueOrDie();
  EXPECT_TRUE(Contains(pairs, {0, 0}));   // Share "acme".
  EXPECT_FALSE(Contains(pairs, {1, 1}));  // No shared token.
  EXPECT_FALSE(Contains(pairs, {0, 1}));
}

TEST(TokenBlockingTest, DeduplicatesMultiTokenOverlap) {
  Database left = MakeDb({"red blue green"});
  Database right = MakeDb({"red blue yellow"});
  const std::vector<RecordPair> pairs =
      TokenBlocking(left, right, BlockingOptions{}).ValueOrDie();
  // Two shared tokens but the pair appears once.
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(TokenBlockingTest, StopWordBlocksAreDropped) {
  // Every record shares "the"; with a tiny cap the block is skipped and no
  // pairs survive.
  Database left = MakeDb({"the alpha", "the beta", "the gamma"});
  Database right = MakeDb({"the delta", "the epsilon"});
  BlockingOptions options;
  options.max_block_size = 2;  // 3*2 = 6 > 2 -> dropped.
  const std::vector<RecordPair> pairs =
      TokenBlocking(left, right, options).ValueOrDie();
  EXPECT_TRUE(pairs.empty());
}

TEST(TokenBlockingTest, MissingValuesAreSkipped) {
  Database left = MakeDb({"shared token"});
  Database right = MakeDb({"shared token"});
  Record missing;
  missing.values.push_back(FieldValue::Missing());
  right.records.push_back(missing);
  const std::vector<RecordPair> pairs =
      TokenBlocking(left, right, BlockingOptions{}).ValueOrDie();
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(TokenBlockingTest, RejectsBadFieldIndex) {
  Database left = MakeDb({"x"});
  Database right = MakeDb({"x"});
  BlockingOptions options;
  options.field_index = 5;
  EXPECT_FALSE(TokenBlocking(left, right, options).ok());
}

TEST(TokenBlockingDedupTest, EmitsOrderedPairsOnce) {
  Database db = MakeDb({"acme one", "acme two", "acme three", "unrelated"});
  const std::vector<RecordPair> pairs =
      TokenBlockingDedup(db, BlockingOptions{}).ValueOrDie();
  EXPECT_EQ(pairs.size(), 3u);  // C(3,2) pairs among the "acme" records.
  for (const RecordPair& pair : pairs) {
    EXPECT_LT(pair.left, pair.right);
  }
}

TEST(TokenBlockingDedupTest, RecallAgainstGroundTruth) {
  // Duplicates share tokens, so blocking must recover every true pair.
  Database db = MakeDb({"john smith", "jon smith", "mary jones", "mary jonse"});
  const std::vector<RecordPair> pairs =
      TokenBlockingDedup(db, BlockingOptions{}).ValueOrDie();
  EXPECT_TRUE(Contains(pairs, {0, 1}));  // Share "smith".
  EXPECT_TRUE(Contains(pairs, {2, 3}));  // Share "mary".
}

}  // namespace
}  // namespace er
}  // namespace oasis
