#include "sampling/importance.h"

#include <gtest/gtest.h>

#include "oracle/ground_truth_oracle.h"
#include "stats/transforms.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

TEST(ScoreToProbabilityTest, ProbabilityScoresClamped) {
  EXPECT_DOUBLE_EQ(ScoreToProbability(0.7, true, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(ScoreToProbability(1.4, true, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ScoreToProbability(-0.2, true, 0.0), 0.0);
}

TEST(ScoreToProbabilityTest, MarginsMappedThroughLogistic) {
  EXPECT_DOUBLE_EQ(ScoreToProbability(0.0, false, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(ScoreToProbability(1.5, false, 1.5), 0.5);  // At threshold.
  EXPECT_GT(ScoreToProbability(2.0, false, 0.0), 0.8);
  EXPECT_LT(ScoreToProbability(-2.0, false, 0.0), 0.2);
}

TEST(ImportanceSamplerTest, RejectsBadOptions) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  ImportanceOptions bad;
  bad.alpha = 1.2;
  EXPECT_FALSE(ImportanceSampler::Create(&pool.scored, &labels, bad, Rng(1)).ok());
  bad = ImportanceOptions{};
  bad.uniform_mix = -0.1;
  EXPECT_FALSE(ImportanceSampler::Create(&pool.scored, &labels, bad, Rng(1)).ok());
  EXPECT_FALSE(
      ImportanceSampler::Create(nullptr, &labels, ImportanceOptions{}, Rng(1)).ok());
}

TEST(ImportanceSamplerTest, InstrumentalIsFullySupportedDistribution) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = ImportanceSampler::Create(&pool.scored, &labels,
                                           ImportanceOptions{}, Rng(3))
                     .ValueOrDie();
  double total = 0.0;
  for (double q : sampler->instrumental()) {
    EXPECT_GT(q, 0.0);  // Uniform floor keeps every item reachable.
    total += q;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ImportanceSamplerTest, BiasesTowardPredictedMatches) {
  // The Sawade et al. instrumental concentrates on (likely) positives: a
  // high-score predicted match must receive far more mass than 1/N.
  SyntheticPoolOptions options;
  options.size = 4000;
  options.match_fraction = 0.01;
  options.seed = 51;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = ImportanceSampler::Create(&pool.scored, &labels,
                                           ImportanceOptions{}, Rng(5))
                     .ValueOrDie();
  const double uniform = 1.0 / static_cast<double>(pool.scored.size());
  // Find the highest-scoring item; it should be clearly over-weighted
  // relative to uniform (the mass is shared with the other predicted
  // positives, so the factor is well above 1 but far below N).
  size_t best = 0;
  for (size_t i = 1; i < pool.scored.scores.size(); ++i) {
    if (pool.scored.scores[i] > pool.scored.scores[best]) best = i;
  }
  EXPECT_GT(sampler->instrumental()[best], 5.0 * uniform);
}

TEST(ImportanceSamplerTest, ConvergesToTrueF) {
  SyntheticPoolOptions options;
  options.size = 3000;
  options.match_fraction = 0.03;
  options.seed = 53;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = ImportanceSampler::Create(&pool.scored, &labels,
                                           ImportanceOptions{}, Rng(7))
                     .ValueOrDie();
  for (int i = 0; i < 150000; ++i) ASSERT_TRUE(sampler->Step().ok());
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.03);
}

TEST(ImportanceSamplerTest, BackendsAgreeStatistically) {
  SyntheticPoolOptions options;
  options.size = 1000;
  options.match_fraction = 0.05;
  options.seed = 57;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);

  EstimateSnapshot snaps[2];
  int idx = 0;
  for (SamplingBackend backend :
       {SamplingBackend::kAliasTable, SamplingBackend::kLinearScan}) {
    LabelCache labels(&oracle);
    ImportanceOptions is_options;
    is_options.backend = backend;
    auto sampler =
        ImportanceSampler::Create(&pool.scored, &labels, is_options, Rng(11))
            .ValueOrDie();
    for (int i = 0; i < 60000; ++i) ASSERT_TRUE(sampler->Step().ok());
    snaps[idx++] = sampler->Estimate();
  }
  ASSERT_TRUE(snaps[0].f_defined);
  ASSERT_TRUE(snaps[1].f_defined);
  // Different backends draw different streams but estimate the same value.
  EXPECT_NEAR(snaps[0].f_alpha, snaps[1].f_alpha, 0.05);
}

TEST(ImportanceSamplerTest, FGuessIsSane) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = ImportanceSampler::Create(&pool.scored, &labels,
                                           ImportanceOptions{}, Rng(13))
                     .ValueOrDie();
  EXPECT_GT(sampler->initial_f_guess(), 0.0);
  EXPECT_LT(sampler->initial_f_guess(), 1.0);
}

}  // namespace
}  // namespace oasis
