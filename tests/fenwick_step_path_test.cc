// Equivalence and performance-semantics tests for OasisStepPath::kFenwick:
//  * with rebuild tolerance 0 the Fenwick masses equal the exact v(t), so the
//    distribution each draw uses matches CurrentInstrumental() bit-for-bit;
//  * the long-run stratum-visit distribution matches the fused path within
//    statistical tolerance (the two paths consume the RNG differently, so the
//    promise is equality in distribution, not bit-identity);
//  * with the default tolerance the actually-sampled distribution stays close
//    to the ideal v(t) and the estimates remain consistent;
//  * StepBatch(n) on the Fenwick path equals n calls to Step() exactly;
//  * the Fenwick step performs zero heap allocations after warm-up.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/oasis.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "tests/test_util.h"

namespace {
// Global operator new/delete hooks counting heap allocations, toggled around
// the measured region only (same scheme as step_batch_test.cc).
std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

class FenwickStepPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticPoolOptions pool_options;
    pool_options.size = 4000;
    pool_options.match_fraction = 0.03;
    pool_options.seed = 77;
    pool_ = MakeSyntheticPool(pool_options);
    oracle_ = std::make_unique<GroundTruthOracle>(pool_.truth);
    strata_ = std::make_shared<const Strata>(
        StratifyCsf(pool_.scored.scores, 12, false).ValueOrDie());
  }

  std::unique_ptr<OasisSampler> MakeSampler(OasisStepPath path, uint64_t seed,
                                            LabelCache& labels,
                                            double rebuild_tol = 1e-2) {
    OasisOptions options;
    options.step_path = path;
    options.fenwick_rebuild_tol = rebuild_tol;
    return OasisSampler::Create(&pool_.scored, &labels, strata_, options, Rng(seed))
        .ValueOrDie();
  }

  /// Per-stratum visit counts, normalised to a distribution. Every step
  /// observes exactly one label into its drawn stratum, so the beta model's
  /// observation counters are the visit histogram.
  static std::vector<double> VisitDistribution(const OasisSampler& sampler) {
    const size_t k = sampler.strata().num_strata();
    std::vector<double> dist(k, 0.0);
    double total = 0.0;
    for (size_t s = 0; s < k; ++s) {
      dist[s] = static_cast<double>(sampler.model().labels_observed(s));
      total += dist[s];
    }
    for (double& d : dist) d /= total;
    return dist;
  }

  static double TotalVariation(const std::vector<double>& a,
                               const std::vector<double>& b) {
    double tv = 0.0;
    for (size_t i = 0; i < a.size(); ++i) tv += std::fabs(a[i] - b[i]);
    return 0.5 * tv;
  }

  SyntheticPool pool_;
  std::unique_ptr<GroundTruthOracle> oracle_;
  std::shared_ptr<const Strata> strata_;
};

TEST_F(FenwickStepPathTest, RejectsInvalidRebuildTolerance) {
  LabelCache labels(oracle_.get());
  OasisOptions options;
  options.step_path = OasisStepPath::kFenwick;
  options.fenwick_rebuild_tol = -0.5;
  EXPECT_FALSE(
      OasisSampler::Create(&pool_.scored, &labels, strata_, options, Rng(1)).ok());
  options.fenwick_rebuild_tol = std::nan("");
  EXPECT_FALSE(
      OasisSampler::Create(&pool_.scored, &labels, strata_, options, Rng(1)).ok());
}

TEST_F(FenwickStepPathTest, FenwickInstrumentalRequiresFenwickPath) {
  LabelCache labels(oracle_.get());
  auto fused = MakeSampler(OasisStepPath::kFused, 3, labels);
  EXPECT_FALSE(fused->FenwickInstrumental().ok());
}

TEST_F(FenwickStepPathTest, ZeroToleranceTracksExactInstrumental) {
  // With rebuild tolerance 0 every step whose F-hat moved at all rebuilds the
  // masses, so the tree state is always v(pi(t), F(t')) where t' is at most
  // one observation behind — after hundreds of steps that single-observation
  // F increment is tiny, and the actually-sampled distribution must sit on
  // top of the exact epsilon-greedy v(t).
  LabelCache labels(oracle_.get());
  auto sampler = MakeSampler(OasisStepPath::kFenwick, 5, labels, 0.0);
  ASSERT_TRUE(sampler->StepBatch(1000).ok());
  const std::vector<double> actual = sampler->FenwickInstrumental().ValueOrDie();
  const std::vector<double> ideal = sampler->CurrentInstrumental().ValueOrDie();
  ASSERT_EQ(actual.size(), ideal.size());
  for (size_t k = 0; k < actual.size(); ++k) {
    EXPECT_NEAR(actual[k], ideal[k], 5e-3);
  }
  double sum = 0.0;
  for (double v : actual) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(FenwickStepPathTest, VisitDistributionMatchesFusedPath) {
  // 20k steps per path. The paths draw from the same adaptive distribution
  // but consume the RNG differently, so compare long-run stratum-visit
  // histograms: total variation distance must be small.
  const int kSteps = 20000;
  LabelCache fused_labels(oracle_.get());
  LabelCache fenwick_labels(oracle_.get());
  auto fused = MakeSampler(OasisStepPath::kFused, 11, fused_labels);
  auto fenwick = MakeSampler(OasisStepPath::kFenwick, 12, fenwick_labels);
  ASSERT_TRUE(fused->StepBatch(kSteps).ok());
  ASSERT_TRUE(fenwick->StepBatch(kSteps).ok());

  const std::vector<double> fused_dist = VisitDistribution(*fused);
  const std::vector<double> fenwick_dist = VisitDistribution(*fenwick);
  const double tv = TotalVariation(fused_dist, fenwick_dist);
  EXPECT_LT(tv, 0.05) << "total variation between visit histograms: " << tv;

  // And both converge to the same F (the estimates agree with each other and
  // with the exact pool value).
  const EstimateSnapshot fused_snap = fused->Estimate();
  const EstimateSnapshot fenwick_snap = fenwick->Estimate();
  ASSERT_TRUE(fused_snap.f_defined);
  ASSERT_TRUE(fenwick_snap.f_defined);
  EXPECT_NEAR(fused_snap.f_alpha, fenwick_snap.f_alpha, 0.04);
}

TEST_F(FenwickStepPathTest, DefaultToleranceStaysCloseToIdealInstrumental) {
  LabelCache labels(oracle_.get());
  auto sampler = MakeSampler(OasisStepPath::kFenwick, 13, labels);  // tol 1e-2
  ASSERT_TRUE(sampler->StepBatch(5000).ok());
  const std::vector<double> actual = sampler->FenwickInstrumental().ValueOrDie();
  const std::vector<double> ideal = sampler->CurrentInstrumental().ValueOrDie();
  // The staleness gap is driven by at most fenwick_rebuild_tol of F drift
  // pushed through the v* formula; an L1 bound of a few multiples of the
  // tolerance catches structural divergence without flaking.
  double l1 = 0.0;
  for (size_t k = 0; k < actual.size(); ++k) l1 += std::fabs(actual[k] - ideal[k]);
  EXPECT_LT(l1, 0.05) << "L1(actual, ideal) = " << l1;
}

TEST_F(FenwickStepPathTest, ConvergesToTrueF) {
  LabelCache labels(oracle_.get());
  auto sampler = MakeSampler(OasisStepPath::kFenwick, 17, labels);
  while (sampler->labels_consumed() < 2500) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, pool_.true_measures.f_alpha, 0.05);
}

TEST_F(FenwickStepPathTest, StepBatchMatchesStepExactly) {
  LabelCache labels_a(oracle_.get());
  LabelCache labels_b(oracle_.get());
  auto stepwise = MakeSampler(OasisStepPath::kFenwick, 19, labels_a);
  auto batched = MakeSampler(OasisStepPath::kFenwick, 19, labels_b);

  int done = 0;
  int batch = 1;
  while (done < 600) {
    const int n = std::min(batch, 600 - done);
    for (int i = 0; i < n; ++i) ASSERT_TRUE(stepwise->Step().ok());
    ASSERT_TRUE(batched->StepBatch(n).ok());
    const EstimateSnapshot a = stepwise->Estimate();
    const EstimateSnapshot b = batched->Estimate();
    EXPECT_EQ(a.f_defined, b.f_defined);
    EXPECT_EQ(a.f_alpha, b.f_alpha);
    EXPECT_EQ(a.precision, b.precision);
    EXPECT_EQ(a.recall, b.recall);
    done += n;
    batch = batch * 2 + 1;
  }
  EXPECT_EQ(stepwise->iterations(), batched->iterations());
  EXPECT_EQ(stepwise->labels_consumed(), batched->labels_consumed());
}

TEST_F(FenwickStepPathTest, FenwickStepPerformsZeroHeapAllocations) {
  LabelCache labels(oracle_.get());
  auto sampler = MakeSampler(OasisStepPath::kFenwick, 23, labels);
  // Warm up: first steps include early-F rebuilds and scratch sizing.
  ASSERT_TRUE(sampler->StepBatch(64).ok());

  g_allocation_count.store(0);
  g_count_allocations.store(true);
  const Status status = sampler->StepBatch(2000);
  g_count_allocations.store(false);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(g_allocation_count.load(), 0);
}

}  // namespace
}  // namespace oasis
