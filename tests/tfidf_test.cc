#include "er/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace oasis {
namespace er {
namespace {

std::vector<std::vector<std::string>> Corpus() {
  return {
      {"data", "base", "systems"},
      {"data", "mining", "methods"},
      {"graph", "systems"},
  };
}

TEST(TfIdfTest, RejectsEmptyCorpus) {
  TfIdfVectorizer vectorizer;
  EXPECT_FALSE(vectorizer.Fit({}).ok());
}

TEST(TfIdfTest, VocabularyCoversAllTerms) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  EXPECT_EQ(vectorizer.vocabulary_size(), 6u);
  EXPECT_TRUE(vectorizer.fitted());
}

TEST(TfIdfTest, IdfFollowsSmoothedFormula) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  // "data" appears in 2 of 3 docs: idf = ln(4/3) + 1.
  EXPECT_NEAR(vectorizer.IdfOf("data"), std::log(4.0 / 3.0) + 1.0, 1e-12);
  // "graph" appears in 1 doc: idf = ln(4/2) + 1.
  EXPECT_NEAR(vectorizer.IdfOf("graph"), std::log(2.0) + 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(vectorizer.IdfOf("unknown"), 0.0);
}

TEST(TfIdfTest, TransformIsL2Normalised) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  const SparseVector v = vectorizer.Transform({"data", "systems", "data"});
  double norm_sq = 0.0;
  for (double w : v.weights) norm_sq += w * w;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
  EXPECT_EQ(v.size(), 2u);
}

TEST(TfIdfTest, UnknownTermsAreDropped) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  EXPECT_TRUE(vectorizer.Transform({"zzz", "qqq"}).empty());
}

TEST(TfIdfTest, IdsAreSortedForMergeJoin) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  const SparseVector v =
      vectorizer.Transform({"systems", "data", "graph", "mining"});
  for (size_t i = 1; i < v.ids.size(); ++i) {
    EXPECT_LT(v.ids[i - 1], v.ids[i]);
  }
}

TEST(CosineSimilarityTest, IdenticalDocsScoreOne) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  const SparseVector a = vectorizer.Transform({"data", "base"});
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(CosineSimilarityTest, DisjointDocsScoreZero) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  const SparseVector a = vectorizer.Transform({"data"});
  const SparseVector b = vectorizer.Transform({"graph"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(CosineSimilarityTest, PartialOverlapBetweenZeroAndOne) {
  TfIdfVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(Corpus()).ok());
  const SparseVector a = vectorizer.Transform({"data", "base"});
  const SparseVector b = vectorizer.Transform({"data", "mining"});
  const double sim = CosineSimilarity(a, b);
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
}

TEST(CosineSimilarityTest, EmptyVectorsScoreZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity(SparseVector{}, SparseVector{}), 0.0);
}

}  // namespace
}  // namespace er
}  // namespace oasis
