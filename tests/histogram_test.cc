#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <vector>

namespace oasis {
namespace {

TEST(HistogramTest, RejectsEmptyInput) {
  EXPECT_FALSE(BuildHistogram({}, 4).ok());
}

TEST(HistogramTest, RejectsZeroBins) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_FALSE(BuildHistogram(values, 0).ok());
}

TEST(HistogramTest, RejectsNaN) {
  const std::vector<double> values{1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(BuildHistogram(values, 2).ok());
}

TEST(HistogramTest, CountsSumToInputSize) {
  const std::vector<double> values{0.0, 0.1, 0.2, 0.5, 0.9, 1.0, 0.33, 0.77};
  Histogram h = BuildHistogram(values, 5).ValueOrDie();
  EXPECT_EQ(std::accumulate(h.counts.begin(), h.counts.end(), int64_t{0}),
            static_cast<int64_t>(values.size()));
}

TEST(HistogramTest, EqualWidthEdges) {
  const std::vector<double> values{0.0, 10.0};
  Histogram h = BuildHistogram(values, 4).ValueOrDie();
  ASSERT_EQ(h.edges.size(), 5u);
  EXPECT_DOUBLE_EQ(h.edges[0], 0.0);
  EXPECT_DOUBLE_EQ(h.edges[1], 2.5);
  EXPECT_DOUBLE_EQ(h.edges[2], 5.0);
  EXPECT_DOUBLE_EQ(h.edges[3], 7.5);
  EXPECT_DOUBLE_EQ(h.edges[4], 10.0);
}

TEST(HistogramTest, TopEdgeValueFallsInLastBin) {
  const std::vector<double> values{0.0, 0.5, 1.0};
  Histogram h = BuildHistogram(values, 2).ValueOrDie();
  EXPECT_EQ(h.BinIndex(1.0), 1u);  // numpy.histogram convention.
  EXPECT_EQ(h.counts[1], 2);       // 0.5 and 1.0.
  EXPECT_EQ(h.counts[0], 1);       // 0.0.
}

TEST(HistogramTest, DegenerateRangeIsWidened) {
  const std::vector<double> values{3.0, 3.0, 3.0};
  Histogram h = BuildHistogram(values, 4).ValueOrDie();
  EXPECT_LT(h.min(), 3.0);
  EXPECT_GT(h.max(), 3.0);
  EXPECT_EQ(std::accumulate(h.counts.begin(), h.counts.end(), int64_t{0}), 3);
}

TEST(HistogramTest, DegenerateZeroRange) {
  const std::vector<double> values{0.0, 0.0};
  Histogram h = BuildHistogram(values, 2).ValueOrDie();
  EXPECT_LT(h.min(), 0.0);
  EXPECT_GT(h.max(), 0.0);
}

TEST(HistogramTest, BinIndexClampsOutOfRange) {
  const std::vector<double> values{0.0, 1.0};
  Histogram h = BuildHistogram(values, 4).ValueOrDie();
  EXPECT_EQ(h.BinIndex(-5.0), 0u);
  EXPECT_EQ(h.BinIndex(5.0), 3u);
}

TEST(HistogramTest, BinIndexConsistentWithEdges) {
  const std::vector<double> values{-2.0, -1.0, 0.0, 1.0, 2.0, 0.25, 0.75};
  Histogram h = BuildHistogram(values, 7).ValueOrDie();
  for (double v : values) {
    const size_t bin = h.BinIndex(v);
    EXPECT_GE(v, h.edges[bin] - 1e-12);
    if (bin + 1 < h.num_bins()) {
      EXPECT_LT(v, h.edges[bin + 1] + 1e-12);
    }
  }
}

TEST(HistogramTest, HeavilySkewedData) {
  // The shape that CSF consumes: a huge mass at low scores, a sliver high.
  std::vector<double> values(10000, 0.01);
  for (int i = 0; i < 10; ++i) values.push_back(0.99);
  Histogram h = BuildHistogram(values, 100).ValueOrDie();
  EXPECT_EQ(h.counts.front(), 10000);
  EXPECT_EQ(h.counts.back(), 10);
}

}  // namespace
}  // namespace oasis
