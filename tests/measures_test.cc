#include "eval/measures.h"

#include <gtest/gtest.h>

namespace oasis {
namespace {

TEST(FAlphaTest, AlphaOneIsPrecision) {
  // TP=8, FP=2, FN=4: precision = 8/10.
  const MaybeValue p = FAlpha(8, 2, 4, 1.0);
  ASSERT_TRUE(p.defined);
  EXPECT_DOUBLE_EQ(p.value, 0.8);
}

TEST(FAlphaTest, AlphaZeroIsRecall) {
  const MaybeValue r = FAlpha(8, 2, 4, 0.0);
  ASSERT_TRUE(r.defined);
  EXPECT_NEAR(r.value, 8.0 / 12.0, 1e-12);
}

TEST(FAlphaTest, BalancedIsHarmonicMean) {
  const double precision = 0.8;
  const double recall = 8.0 / 12.0;
  const double harmonic = 2.0 * precision * recall / (precision + recall);
  const MaybeValue f = FAlpha(8, 2, 4, 0.5);
  ASSERT_TRUE(f.defined);
  EXPECT_NEAR(f.value, harmonic, 1e-12);
}

TEST(FAlphaTest, UndefinedWhenNoPositivesEitherWay) {
  EXPECT_FALSE(FAlpha(0, 0, 0, 0.5).defined);
  // Precision undefined with no predicted positives even when FN exist.
  EXPECT_FALSE(FAlpha(0, 0, 5, 1.0).defined);
  // Recall undefined with no actual positives even when FP exist.
  EXPECT_FALSE(FAlpha(0, 5, 0, 0.0).defined);
}

TEST(FAlphaTest, PerfectClassifier) {
  const MaybeValue f = FAlpha(10, 0, 0, 0.5);
  ASSERT_TRUE(f.defined);
  EXPECT_DOUBLE_EQ(f.value, 1.0);
}

TEST(FAlphaTest, MonotoneInAlphaWhenPrecisionExceedsRecall) {
  // precision (alpha=1) > recall (alpha=0) here, so F should increase with
  // alpha.
  double prev = FAlpha(8, 2, 14, 0.0).value;
  for (double alpha : {0.25, 0.5, 0.75, 1.0}) {
    const double current = FAlpha(8, 2, 14, alpha).value;
    EXPECT_GT(current, prev);
    prev = current;
  }
}

TEST(ComputeMeasuresTest, AllThreeMeasures) {
  ConfusionCounts counts;
  counts.true_positives = 8;
  counts.false_positives = 2;
  counts.false_negatives = 4;
  counts.true_negatives = 100;
  const Measures m = ComputeMeasures(counts, 0.5);
  EXPECT_TRUE(m.f_defined);
  EXPECT_TRUE(m.precision_defined);
  EXPECT_TRUE(m.recall_defined);
  EXPECT_DOUBLE_EQ(m.precision, 0.8);
  EXPECT_NEAR(m.recall, 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(m.f_alpha, 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
}

TEST(ComputeMeasuresTest, InvariantToTrueNegatives) {
  // The F-measure's key robustness property under class imbalance (Sec. 2.2).
  ConfusionCounts a;
  a.true_positives = 5;
  a.false_positives = 3;
  a.false_negatives = 2;
  a.true_negatives = 10;
  ConfusionCounts b = a;
  b.true_negatives = 1000000;
  EXPECT_DOUBLE_EQ(ComputeMeasures(a, 0.5).f_alpha,
                   ComputeMeasures(b, 0.5).f_alpha);
}

TEST(AlphaBetaTest, RoundTrip) {
  // alpha = 1/(1+beta^2) (paper footnote 1).
  EXPECT_DOUBLE_EQ(AlphaFromBeta(1.0), 0.5);
  EXPECT_DOUBLE_EQ(AlphaFromBeta(0.0), 1.0);
  for (double beta : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(BetaFromAlpha(AlphaFromBeta(beta)), beta, 1e-12);
  }
}

}  // namespace
}  // namespace oasis
