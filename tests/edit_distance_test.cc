#include "er/edit_distance.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace oasis {
namespace er {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("saturday", "sunday"),
            LevenshteinDistance("sunday", "saturday"));
}

TEST(LevenshteinTest, TriangleInequalityOnRandomStrings) {
  Rng rng(1);
  auto random_string = [&rng]() {
    std::string s;
    const size_t len = rng.NextBounded(12);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBounded(4)));
    }
    return s;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = random_string();
    const std::string b = random_string();
    const std::string c = random_string();
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
  }
}

TEST(LevenshteinSimilarityTest, RangeAndExtremes) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  const double sim = LevenshteinSimilarity("panasonic", "panasonc");
  EXPECT_GT(sim, 0.8);
  EXPECT_LT(sim, 1.0);
}

TEST(DamerauTest, TranspositionCostsOne) {
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2);  // Plain Levenshtein: two.
  EXPECT_EQ(DamerauLevenshteinDistance("ca", "abc"), 3);  // OSA restriction.
}

TEST(DamerauTest, ReducesToLevenshteinWithoutTranspositions) {
  EXPECT_EQ(DamerauLevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(DamerauLevenshteinDistance("", "xyz"), 3);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  // Classic textbook pair: JARO("martha", "marhta") = 17/18 ~ 0.9444.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 17.0 / 18.0, 1e-9);
  // JARO("dixon", "dicksonx") ~ 0.76667.
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 23.0 / 30.0, 1e-9);
}

TEST(JaroWinklerTest, PrefixBoost) {
  const double jaro = JaroSimilarity("martha", "marhta");
  const double jw = JaroWinklerSimilarity("martha", "marhta");
  // Common prefix "mar" (3 chars): jw = jaro + 3 * 0.1 * (1 - jaro).
  EXPECT_NEAR(jw, jaro + 0.3 * (1.0 - jaro), 1e-9);
  EXPECT_GT(jw, jaro);
}

TEST(JaroWinklerTest, NoPrefixNoBoost) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abcd", "xbcd"),
                   JaroSimilarity("abcd", "xbcd"));
}

TEST(JaroWinklerTest, PrefixCapAtFour) {
  // Identical 5-char prefixes boost only 4 characters' worth.
  const double jaro = JaroSimilarity("abcdex", "abcdey");
  const double jw = JaroWinklerSimilarity("abcdex", "abcdey");
  EXPECT_NEAR(jw, jaro + 4 * 0.1 * (1.0 - jaro), 1e-9);
}

TEST(JaroWinklerTest, BoundedInUnitInterval) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    for (size_t i = rng.NextBounded(10); i > 0; --i) {
      a.push_back(static_cast<char>('a' + rng.NextBounded(5)));
    }
    for (size_t i = rng.NextBounded(10); i > 0; --i) {
      b.push_back(static_cast<char>('a' + rng.NextBounded(5)));
    }
    const double jw = JaroWinklerSimilarity(a, b);
    EXPECT_GE(jw, 0.0);
    EXPECT_LE(jw, 1.0);
  }
}

}  // namespace
}  // namespace er
}  // namespace oasis
