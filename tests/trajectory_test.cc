#include "sampling/trajectory.h"

#include <gtest/gtest.h>

#include "oracle/ground_truth_oracle.h"
#include "sampling/passive.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

TEST(TrajectoryTest, RejectsBadOptions) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(1)).ValueOrDie();
  TrajectoryOptions bad;
  bad.budget = 0;
  EXPECT_FALSE(RunTrajectory(*sampler, bad).ok());
  bad.budget = 10;
  bad.checkpoint_every = 0;
  EXPECT_FALSE(RunTrajectory(*sampler, bad).ok());
}

TEST(TrajectoryTest, CheckpointShapeMatchesBudget) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(2)).ValueOrDie();
  TrajectoryOptions options;
  options.budget = 100;
  options.checkpoint_every = 10;
  Trajectory trajectory = RunTrajectory(*sampler, options).ValueOrDie();
  ASSERT_EQ(trajectory.budgets.size(), 10u);
  ASSERT_EQ(trajectory.snapshots.size(), 10u);
  EXPECT_EQ(trajectory.budgets.front(), 10);
  EXPECT_EQ(trajectory.budgets.back(), 100);
  EXPECT_EQ(trajectory.labels_consumed, 100);
  EXPECT_FALSE(trajectory.truncated);
}

TEST(TrajectoryTest, BudgetConsumedExactly) {
  SyntheticPoolOptions opts;
  opts.size = 500;
  SyntheticPool pool = MakeSyntheticPool(opts);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(3)).ValueOrDie();
  TrajectoryOptions options;
  options.budget = 200;
  options.checkpoint_every = 50;
  Trajectory trajectory = RunTrajectory(*sampler, options).ValueOrDie();
  EXPECT_EQ(trajectory.labels_consumed, 200);
  EXPECT_EQ(labels.labels_consumed(), 200);
  // Iterations >= labels (resampled cached items don't consume budget).
  EXPECT_GE(trajectory.total_iterations, 200);
}

TEST(TrajectoryTest, TruncatesWhenBudgetUnreachable) {
  // Pool of 50 items but budget of 100: the run can never consume more than
  // 50 distinct labels and must stop at the iteration cap, filling trailing
  // checkpoints with the final estimate.
  SyntheticPoolOptions opts;
  opts.size = 50;
  opts.match_fraction = 0.3;
  SyntheticPool pool = MakeSyntheticPool(opts);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(4)).ValueOrDie();
  TrajectoryOptions options;
  options.budget = 100;
  options.checkpoint_every = 10;
  options.max_iterations = 5000;
  Trajectory trajectory = RunTrajectory(*sampler, options).ValueOrDie();
  EXPECT_TRUE(trajectory.truncated);
  EXPECT_EQ(trajectory.labels_consumed, 50);
  ASSERT_EQ(trajectory.snapshots.size(), 10u);
  // Trailing checkpoints hold the final (defined) estimate.
  EXPECT_TRUE(trajectory.snapshots.back().f_defined);
}

TEST(TrajectoryTest, FirstDefinedBudgetIsRecorded) {
  SyntheticPoolOptions opts;
  opts.size = 4000;
  opts.match_fraction = 0.01;
  opts.seed = 71;
  SyntheticPool pool = MakeSyntheticPool(opts);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler =
      PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(5)).ValueOrDie();
  TrajectoryOptions options;
  options.budget = 1000;
  options.checkpoint_every = 100;
  Trajectory trajectory = RunTrajectory(*sampler, options).ValueOrDie();
  // With 1% positives the first positive typically needs dozens of draws.
  EXPECT_GT(trajectory.first_defined_budget, 0);
  EXPECT_LE(trajectory.first_defined_budget, 1000);
}

}  // namespace
}  // namespace oasis
