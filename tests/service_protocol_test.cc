// Byte-level locks and strict-parsing checks for the evaluation-service wire
// protocol (src/service/protocol.h). The golden strings here are the
// contract between a session server and any client, in-process or remote —
// a diff is a BREAKING protocol change and must bump
// service::kProtocolVersion (docs/SERVICE.md).

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "common/status.h"
#include "service/protocol.h"

namespace oasis {
namespace service {
namespace {

TEST(ServiceProtocolGolden, StartSessionBytes) {
  StartSession request;
  request.spec.scenario = "stripe-f90";
  request.spec.method = "oasis";
  request.spec.budget = 1000;
  request.spec.checkpoint_every = 100;
  request.spec.strata = 30;
  request.spec.seed = 7;
  request.spec.stream = 3;
  EXPECT_EQ(SerializeRequest(request),
            "oasis_service_protocol = 1\n"
            "type = start_session\n"
            "scenario = stripe-f90\n"
            "method = oasis\n"
            "budget = 1000\n"
            "checkpoint_every = 100\n"
            "strata = 30\n"
            "seed = 7\n"
            "stream = 3\n");
}

TEST(ServiceProtocolGolden, RequestLabelsBytes) {
  RequestLabels request;
  request.session = 12;
  request.labels = 250;
  request.wait = true;
  EXPECT_EQ(SerializeRequest(request),
            "oasis_service_protocol = 1\n"
            "type = request_labels\n"
            "session = 12\n"
            "labels = 250\n"
            "wait = true\n");
}

TEST(ServiceProtocolGolden, SmallRequestBytes) {
  GetEstimate estimate;
  estimate.session = 5;
  EXPECT_EQ(SerializeRequest(estimate),
            "oasis_service_protocol = 1\n"
            "type = get_estimate\n"
            "session = 5\n");
  Checkpoint checkpoint;
  checkpoint.session = 5;
  EXPECT_EQ(SerializeRequest(checkpoint),
            "oasis_service_protocol = 1\n"
            "type = checkpoint\n"
            "session = 5\n");
  CloseSession close;
  close.session = 5;
  EXPECT_EQ(SerializeRequest(close),
            "oasis_service_protocol = 1\n"
            "type = close_session\n"
            "session = 5\n");
}

TEST(ServiceProtocolGolden, LabelArrivedBytes) {
  LabelArrived response;
  response.report.session = 4;
  response.report.labels_consumed = 200;
  response.report.iterations = 210;
  response.report.f_alpha = 0.5;
  response.report.f_defined = true;
  response.report.precision = 0.25;
  response.report.precision_defined = true;
  response.report.recall = 0.75;
  response.report.recall_defined = false;
  response.labels_charged = 100;
  EXPECT_EQ(SerializeResponse(response),
            "oasis_service_protocol = 1\n"
            "type = label_arrived\n"
            "session = 4\n"
            "labels_consumed = 200\n"
            "iterations = 210\n"
            "f_alpha = 0.5\n"
            "f_defined = true\n"
            "precision = 0.25\n"
            "precision_defined = true\n"
            "recall = 0.75\n"
            "recall_defined = false\n"
            "done = false\n"
            "truncated = false\n"
            "labels_charged = 100\n");
}

TEST(ServiceProtocolGolden, CheckpointAckBytes) {
  CheckpointAck response;
  response.session = 4;
  response.labels_consumed = 200;
  response.done = true;
  response.budgets = {100, 200};
  response.f_alpha = {0.5, 0.625};
  response.f_defined = {1, 1};
  EXPECT_EQ(SerializeResponse(response),
            "oasis_service_protocol = 1\n"
            "type = checkpoint_ack\n"
            "session = 4\n"
            "labels_consumed = 200\n"
            "done = true\n"
            "truncated = false\n"
            "budgets = 100,200\n"
            "f_alpha = 0.5,0.625\n"
            "f_defined = 1,1\n");
}

TEST(ServiceProtocolGolden, ErrorReplyBytes) {
  ErrorReply response;
  response.code = "NotFound";
  response.message = "no session with id 9";
  EXPECT_EQ(SerializeResponse(response),
            "oasis_service_protocol = 1\n"
            "type = error_reply\n"
            "code = NotFound\n"
            "message = no session with id 9\n");
}

TEST(ServiceProtocol, EveryRequestRoundTrips) {
  StartSession start;
  start.spec.scenario = "sis-inversion";
  start.spec.method = "is";
  start.spec.budget = 4000;
  start.spec.checkpoint_every = 500;
  start.spec.strata = 12;
  start.spec.seed = 0xdeadbeefULL;
  start.spec.stream = 41;
  FaultInjectionOptions fault;
  fault.transient_failure_rate = 0.125;
  fault.outage_after_attempts = 17;
  start.spec.stack.fault_injection = fault;
  RemoteOracleOptions remote;
  remote.round_trip_seconds = 2.5;
  remote.jitter_fraction = 0.0625;
  start.spec.stack.remote = remote;
  start.spec.stack.retry = RetryPolicy{};
  start.spec.stack.share_labels = true;

  const Result<Request> parsed = ParseRequest(SerializeRequest(start));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& back = std::get<StartSession>(parsed.ValueOrDie());
  EXPECT_EQ(back.spec.scenario, start.spec.scenario);
  EXPECT_EQ(back.spec.method, start.spec.method);
  EXPECT_EQ(back.spec.budget, start.spec.budget);
  EXPECT_EQ(back.spec.checkpoint_every, start.spec.checkpoint_every);
  EXPECT_EQ(back.spec.strata, start.spec.strata);
  EXPECT_EQ(back.spec.seed, start.spec.seed);
  EXPECT_EQ(back.spec.stream, start.spec.stream);
  ASSERT_TRUE(back.spec.stack.fault_injection.has_value());
  EXPECT_EQ(back.spec.stack.fault_injection->transient_failure_rate, 0.125);
  EXPECT_EQ(back.spec.stack.fault_injection->outage_after_attempts, 17);
  ASSERT_TRUE(back.spec.stack.remote.has_value());
  EXPECT_EQ(back.spec.stack.remote->round_trip_seconds, 2.5);
  EXPECT_EQ(back.spec.stack.remote->jitter_fraction, 0.0625);
  EXPECT_TRUE(back.spec.stack.retry.has_value());
  EXPECT_TRUE(back.spec.stack.share_labels);

  // Wire idempotence: serialising the parsed message reproduces the bytes.
  EXPECT_EQ(SerializeRequest(parsed.ValueOrDie()), SerializeRequest(start));

  RequestLabels labels;
  labels.session = 9;
  labels.labels = 0;
  labels.wait = false;
  const Result<Request> labels_back = ParseRequest(SerializeRequest(labels));
  ASSERT_TRUE(labels_back.ok());
  EXPECT_FALSE(std::get<RequestLabels>(labels_back.ValueOrDie()).wait);
}

TEST(ServiceProtocol, EveryResponseRoundTrips) {
  const Response responses[] = {
      Response(SessionStarted{21}),
      Response(LabelsEnqueued{22}),
      Response(LabelArrived{{23, 120, 130, 0.875, true, 0.75, true, 1.0, true,
                             false, false},
                            40}),
      Response(EstimateReply{{24, 500, 700, 0.9375, true, 0.5, true, 0.25,
                              true, true, true}}),
      Response(SessionClosed{{25, 1000, 1400, 0.625, true, 0.5, true, 0.75,
                              true, true, false}}),
      Response(ErrorReply{"Unavailable", "oracle outage"}),
  };
  for (const Response& response : responses) {
    const std::string bytes = SerializeResponse(response);
    const Result<Response> parsed = ParseResponse(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(SerializeResponse(parsed.ValueOrDie()), bytes);
    EXPECT_EQ(parsed.ValueOrDie().index(), response.index());
  }

  CheckpointAck ack;
  ack.session = 30;
  ack.labels_consumed = 60;
  ack.truncated = true;
  ack.budgets = {20, 40, 60};
  ack.f_alpha = {0.1, 0.30000000000000004, 1e-17};
  ack.f_defined = {0, 1, 1};
  const Result<Response> parsed = ParseResponse(SerializeResponse(ack));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& back = std::get<CheckpointAck>(parsed.ValueOrDie());
  EXPECT_EQ(back.budgets, ack.budgets);
  // %.17g is value-exact for doubles, including the non-representable sums.
  EXPECT_EQ(back.f_alpha, ack.f_alpha);
  EXPECT_EQ(back.f_defined, ack.f_defined);
}

TEST(ServiceProtocol, EmptyCheckpointAckRoundTrips) {
  CheckpointAck ack;
  ack.session = 3;
  const Result<Response> parsed = ParseResponse(SerializeResponse(ack));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& back = std::get<CheckpointAck>(parsed.ValueOrDie());
  EXPECT_TRUE(back.budgets.empty());
  EXPECT_TRUE(back.f_alpha.empty());
  EXPECT_TRUE(back.f_defined.empty());
}

TEST(ServiceProtocol, PercentEncodingPreservesHostileStrings) {
  ErrorReply error;
  error.code = "InvalidArgument";
  error.message = "  100% #done\nnext = line\t";
  const std::string bytes = SerializeResponse(error);
  // Comment/framing/trim-sensitive bytes must not appear raw in the value.
  EXPECT_NE(bytes.find("message = %20%20100%25 %23done%0Anext = line%09\n"),
            std::string::npos)
      << bytes;
  const Result<Response> parsed = ParseResponse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(std::get<ErrorReply>(parsed.ValueOrDie()).message, error.message);
}

TEST(ServiceProtocol, RejectsUnknownKeysVersionsAndTypes) {
  GetEstimate request;
  request.session = 1;
  const std::string bytes = SerializeRequest(request);

  // Unknown field: the typo guard fails the parse instead of ignoring it.
  EXPECT_FALSE(ParseRequest(bytes + "sesion = 2\n").ok());

  // Foreign protocol version: rejected up front.
  std::string wrong_version = bytes;
  wrong_version.replace(wrong_version.find(" 1\n"), 3, " 2\n");
  EXPECT_FALSE(ParseRequest(wrong_version).ok());

  // Unknown message type.
  EXPECT_FALSE(ParseRequest("oasis_service_protocol = 1\n"
                            "type = start_sesion\n")
                   .ok());
  EXPECT_FALSE(ParseResponse("oasis_service_protocol = 1\n"
                             "type = replying\n")
                   .ok());

  // Requests and responses are distinct vocabularies.
  EXPECT_FALSE(ParseResponse(bytes).ok());

  // Missing version line entirely.
  EXPECT_FALSE(ParseRequest("type = get_estimate\nsession = 1\n").ok());

  // Malformed percent-escapes.
  EXPECT_FALSE(ParseResponse("oasis_service_protocol = 1\n"
                             "type = error_reply\n"
                             "code = Internal\n"
                             "message = bad%2\n")
                   .ok());
  EXPECT_FALSE(ParseResponse("oasis_service_protocol = 1\n"
                             "type = error_reply\n"
                             "code = Internal\n"
                             "message = bad%zz\n")
                   .ok());

  // share_labels without a remote layer: rejected at parse time, same rule
  // as OracleStackBuilder::Build.
  EXPECT_FALSE(ParseRequest("oasis_service_protocol = 1\n"
                            "type = start_session\n"
                            "scenario = stripe-f90\n"
                            "stack_share_labels = true\n")
                   .ok());

  // Mismatched checkpoint_ack list lengths.
  EXPECT_FALSE(ParseResponse("oasis_service_protocol = 1\n"
                             "type = checkpoint_ack\n"
                             "session = 1\n"
                             "budgets = 10,20\n"
                             "f_alpha = 0.5\n"
                             "f_defined = 1,1\n")
                   .ok());
}

TEST(ServiceProtocol, ErrorReplyStatusMappingRoundTrips) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::OutOfRange("b"),
      Status::FailedPrecondition("c"), Status::NotFound("d"),
      Status::AlreadyExists("e"), Status::Cancelled("f"), Status::Internal("g"),
      Status::Unavailable("h"), Status::DeadlineExceeded("i"),
  };
  for (const Status& status : statuses) {
    const Status back = ErrorReplyToStatus(MakeErrorReply(status));
    EXPECT_EQ(back, status);
  }
  // Unknown code names degrade to kInternal, keeping the message.
  ErrorReply alien;
  alien.code = "SomethingNew";
  alien.message = "hello";
  const Status degraded = ErrorReplyToStatus(alien);
  EXPECT_EQ(degraded.code(), StatusCode::kInternal);
  EXPECT_EQ(degraded.message(), "hello");
}

}  // namespace
}  // namespace service
}  // namespace oasis
