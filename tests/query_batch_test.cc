// QueryBatch ≡ n × Query equivalence tests for the batched oracle layer:
//  * Oracle::LabelBatch (base default, GroundTruthOracle and NoisyOracle
//    overrides) equals the per-item Label() loop on the same RNG stream;
//  * LabelCache::QueryBatch produces the same labels AND the same budget
//    accounting (labels_consumed / total_queries / distinct_items_labelled)
//    as a sequential Query loop — including free replays of already-cached
//    items and of duplicates within one batch;
//  * argument validation (size mismatch, empty batch).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "oracle/noisy_oracle.h"
#include "oracle/oracle_stack.h"
#include "oracle/retry_policy.h"
#include "sampling/passive.h"

namespace oasis {
namespace {

/// Minimal noisy oracle WITHOUT a LabelBatch override, so the Oracle base
/// class's default loop implementation is what gets exercised.
class BaseLoopOracle : public Oracle {
 public:
  explicit BaseLoopOracle(std::vector<double> probabilities)
      : probabilities_(std::move(probabilities)) {}

  bool Label(int64_t item, Rng& rng) const override {
    return rng.NextBernoulli(probabilities_[static_cast<size_t>(item)]);
  }
  double TrueProbability(int64_t item) const override {
    return probabilities_[static_cast<size_t>(item)];
  }
  bool deterministic() const override { return false; }
  int64_t num_items() const override {
    return static_cast<int64_t>(probabilities_.size());
  }

 private:
  std::vector<double> probabilities_;
};

std::vector<int64_t> MakeItems(Rng& rng, int64_t pool_size, size_t n) {
  std::vector<int64_t> items(n);
  for (int64_t& item : items) {
    item = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(pool_size)));
  }
  return items;
}

TEST(OracleLabelBatchTest, DefaultImplementationMatchesLabelLoop) {
  const std::vector<double> probs{0.1, 0.5, 0.9, 0.3, 0.7};
  BaseLoopOracle batch_oracle(probs);
  BaseLoopOracle loop_oracle(probs);

  Rng items_rng(71);
  const std::vector<int64_t> items = MakeItems(items_rng, 5, 200);
  std::vector<uint8_t> batch_out(items.size());

  Rng batch_rng(72);
  Rng loop_rng(72);
  batch_oracle.LabelBatch(items, batch_rng, batch_out);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(batch_out[i] != 0, loop_oracle.Label(items[i], loop_rng))
        << "mismatch at position " << i;
  }
  // Same stream afterwards: the batch consumed exactly the loop's draws.
  EXPECT_EQ(batch_rng.NextUint64(), loop_rng.NextUint64());
}

TEST(OracleLabelBatchTest, NoisyOverrideMatchesLabelLoop) {
  NoisyOracle batch_oracle =
      NoisyOracle::FromProbabilities({0.2, 0.8, 0.5, 0.35}).ValueOrDie();
  NoisyOracle loop_oracle =
      NoisyOracle::FromProbabilities({0.2, 0.8, 0.5, 0.35}).ValueOrDie();

  Rng items_rng(73);
  const std::vector<int64_t> items = MakeItems(items_rng, 4, 300);
  std::vector<uint8_t> batch_out(items.size());

  Rng batch_rng(74);
  Rng loop_rng(74);
  batch_oracle.LabelBatch(items, batch_rng, batch_out);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(batch_out[i] != 0, loop_oracle.Label(items[i], loop_rng));
  }
  EXPECT_EQ(batch_rng.NextUint64(), loop_rng.NextUint64());
}

TEST(OracleLabelBatchTest, GroundTruthOverrideReturnsTruth) {
  GroundTruthOracle oracle({1, 0, 0, 1, 1});
  const std::vector<int64_t> items{4, 0, 2, 1, 3, 0};
  std::vector<uint8_t> out(items.size());
  Rng rng(75);
  oracle.LabelBatch(items, rng, out);
  const std::vector<uint8_t> expected{1, 1, 0, 0, 1, 1};
  EXPECT_EQ(out, expected);
}

TEST(QueryBatchTest, DeterministicMatchesSequentialIncludingAccounting) {
  Rng truth_rng(81);
  std::vector<uint8_t> truth(500);
  for (auto& t : truth) t = truth_rng.NextBernoulli(0.3) ? 1 : 0;

  GroundTruthOracle batch_oracle(truth);
  GroundTruthOracle seq_oracle(truth);
  LabelCache batch_cache(&batch_oracle);
  LabelCache seq_cache(&seq_oracle);

  Rng items_rng(82);
  Rng batch_rng(83);
  Rng seq_rng(83);
  // Several batches over a small pool so later batches are dominated by
  // cache hits, and duplicates within one batch are common.
  for (int round = 0; round < 10; ++round) {
    const std::vector<int64_t> items = MakeItems(items_rng, 500, 137);
    std::vector<uint8_t> batch_out(items.size());
    ASSERT_TRUE(batch_cache.QueryBatch(items, batch_rng, batch_out).ok());
    for (size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(batch_out[i] != 0, seq_cache.Query(items[i], seq_rng))
          << "round " << round << " position " << i;
    }
    EXPECT_EQ(batch_cache.labels_consumed(), seq_cache.labels_consumed());
    EXPECT_EQ(batch_cache.total_queries(), seq_cache.total_queries());
    EXPECT_EQ(batch_cache.distinct_items_labelled(),
              seq_cache.distinct_items_labelled());
  }
  // Spot-check the invariants directly: every query was counted, budget was
  // charged once per distinct item only.
  EXPECT_EQ(batch_cache.total_queries(), 10 * 137);
  EXPECT_EQ(batch_cache.labels_consumed(), batch_cache.distinct_items_labelled());
  EXPECT_LT(batch_cache.labels_consumed(), batch_cache.total_queries());
}

TEST(QueryBatchTest, DuplicateWithinBatchChargedOnce) {
  GroundTruthOracle oracle({1, 0, 1});
  LabelCache cache(&oracle);
  Rng rng(84);
  const std::vector<int64_t> items{2, 2, 0, 2, 0};
  std::vector<uint8_t> out(items.size());
  ASSERT_TRUE(cache.QueryBatch(items, rng, out).ok());
  // Two distinct items charged; five queries counted; duplicates replay the
  // first occurrence's label for free.
  EXPECT_EQ(cache.labels_consumed(), 2);
  EXPECT_EQ(cache.total_queries(), 5);
  EXPECT_EQ(cache.distinct_items_labelled(), 2);
  const std::vector<uint8_t> expected{1, 1, 1, 1, 1};
  EXPECT_EQ(out, expected);
  // The transient pending marker never persists.
  EXPECT_TRUE(cache.IsLabelled(0));
  EXPECT_TRUE(cache.IsLabelled(2));
  EXPECT_FALSE(cache.IsLabelled(1));
}

TEST(QueryBatchTest, NoisyMatchesSequentialStreamAndAccounting) {
  NoisyOracle batch_oracle =
      NoisyOracle::FromTruthWithFlipNoise({1, 0, 1, 0, 1, 1, 0, 0}, 0.2)
          .ValueOrDie();
  NoisyOracle seq_oracle =
      NoisyOracle::FromTruthWithFlipNoise({1, 0, 1, 0, 1, 1, 0, 0}, 0.2)
          .ValueOrDie();
  LabelCache batch_cache(&batch_oracle);
  LabelCache seq_cache(&seq_oracle);

  Rng items_rng(85);
  Rng batch_rng(86);
  Rng seq_rng(86);
  for (int round = 0; round < 5; ++round) {
    const std::vector<int64_t> items = MakeItems(items_rng, 8, 64);
    std::vector<uint8_t> batch_out(items.size());
    ASSERT_TRUE(batch_cache.QueryBatch(items, batch_rng, batch_out).ok());
    for (size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(batch_out[i] != 0, seq_cache.Query(items[i], seq_rng));
    }
    // Noisy: every query is charged; accounting must agree with sequential.
    EXPECT_EQ(batch_cache.labels_consumed(), seq_cache.labels_consumed());
    EXPECT_EQ(batch_cache.total_queries(), seq_cache.total_queries());
    EXPECT_EQ(batch_cache.distinct_items_labelled(),
              seq_cache.distinct_items_labelled());
  }
  EXPECT_EQ(batch_cache.labels_consumed(), batch_cache.total_queries());
  // Identical residual stream: the batched path consumed the same draws.
  EXPECT_EQ(batch_rng.NextUint64(), seq_rng.NextUint64());
}

TEST(QueryBatchTest, DegenerateNoisyOracleStepBatchStaysSequentialEquivalent) {
  // A NoisyOracle whose probabilities are all exactly 0/1 reports
  // deterministic() == true, yet its Label() still burns one RNG deviate per
  // labelled miss — so the samplers' pre-draw-then-batch fast path (which
  // reorders item draws relative to label draws) must NOT engage for it.
  // Regression test: StepBatch must stay bit-equivalent to n x Step.
  Rng truth_rng(91);
  ScoredPool pool;
  std::vector<uint8_t> truth(400);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = truth_rng.NextBernoulli(0.2) ? 1 : 0;
    pool.scores.push_back(truth[i] != 0 ? 1.0 : -1.0);
    pool.predictions.push_back(truth[i]);
  }
  NoisyOracle oracle_a =
      NoisyOracle::FromTruthWithFlipNoise(truth, 0.0).ValueOrDie();
  NoisyOracle oracle_b =
      NoisyOracle::FromTruthWithFlipNoise(truth, 0.0).ValueOrDie();
  ASSERT_TRUE(oracle_a.deterministic());
  ASSERT_TRUE(oracle_a.labelling_consumes_rng());

  LabelCache labels_a(&oracle_a);
  LabelCache labels_b(&oracle_b);
  auto stepwise =
      PassiveSampler::Create(&pool, &labels_a, 0.5, Rng(92)).ValueOrDie();
  auto batched =
      PassiveSampler::Create(&pool, &labels_b, 0.5, Rng(92)).ValueOrDie();
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(stepwise->Step().ok());
  ASSERT_TRUE(batched->StepBatch(300).ok());

  const EstimateSnapshot a = stepwise->Estimate();
  const EstimateSnapshot b = batched->Estimate();
  EXPECT_EQ(a.f_defined, b.f_defined);
  EXPECT_EQ(a.f_alpha, b.f_alpha);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(stepwise->labels_consumed(), batched->labels_consumed());
}

// --- Fallible-oracle accounting (footnote 5 under retries) ----------------

/// Fallible oracle that fails its first `fail_calls` TryLabelBatch calls
/// with kUnavailable, then resolves everything — the smallest reproducible
/// transient outage.
class FlakyOnceOracle : public Oracle {
 public:
  FlakyOnceOracle(std::vector<uint8_t> truth, int fail_calls)
      : truth_(std::move(truth)), fail_calls_(fail_calls) {}

  bool Label(int64_t item, Rng&) const override {
    return truth_[static_cast<size_t>(item)] != 0;
  }
  double TrueProbability(int64_t item) const override {
    return truth_[static_cast<size_t>(item)] != 0 ? 1.0 : 0.0;
  }
  bool deterministic() const override { return true; }
  bool labelling_consumes_rng() const override { return false; }
  bool fallible() const override { return true; }
  int64_t num_items() const override {
    return static_cast<int64_t>(truth_.size());
  }
  Status TryLabelBatch(std::span<const int64_t> items, Rng&,
                       std::span<uint8_t> out,
                       std::span<uint8_t> resolved) const override {
    for (size_t i = 0; i < resolved.size(); ++i) resolved[i] = 0;
    if (calls_++ < fail_calls_) {
      return Status::Unavailable("flaky: transient outage");
    }
    for (size_t i = 0; i < items.size(); ++i) {
      out[i] = truth_[static_cast<size_t>(items[i])];
      resolved[i] = 1;
    }
    return Status::OK();
  }

 private:
  std::vector<uint8_t> truth_;
  int fail_calls_;
  mutable int calls_ = 0;
};

TEST(QueryBatchTest, FailedFallibleBatchRollsBackPendingMarkers) {
  FlakyOnceOracle oracle({1, 0, 1, 0}, /*fail_calls=*/1);
  LabelCache cache(&oracle);
  Rng rng(91);
  const std::vector<int64_t> items{0, 1, 2};
  std::vector<uint8_t> out(items.size());

  // First call hits the outage: nothing is charged and — critically — the
  // transient pending markers are rolled back, so the items are re-chargeable.
  EXPECT_EQ(cache.QueryBatch(items, rng, out).code(), StatusCode::kUnavailable);
  EXPECT_EQ(cache.labels_consumed(), 0);
  EXPECT_EQ(cache.distinct_items_labelled(), 0);
  for (int64_t item : items) EXPECT_FALSE(cache.IsLabelled(item));

  // Second call succeeds: every miss is charged exactly once, and the failed
  // round still counted its queries (queries are requests, not deliveries).
  ASSERT_TRUE(cache.QueryBatch(items, rng, out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 0, 1}));
  EXPECT_EQ(cache.labels_consumed(), 3);
  EXPECT_EQ(cache.distinct_items_labelled(), 3);
  EXPECT_EQ(cache.total_queries(), 6);
}

TEST(QueryBatchTest, RetriedPartialBatchesChargeEachMissOnce) {
  // Chaos stack (drops + transient failures, healed by retries) against the
  // plain sequential cache: labels AND footnote-5 accounting must be
  // identical — a retried item costs one round-trip-miss exactly once, no
  // matter how many attempts it took to arrive.
  Rng truth_rng(93);
  std::vector<uint8_t> truth(300);
  for (auto& t : truth) t = truth_rng.NextBernoulli(0.35) ? 1 : 0;

  GroundTruthOracle inner(truth);
  FaultInjectionOptions faults;
  faults.transient_failure_rate = 0.2;
  faults.item_drop_rate = 0.5;
  RetryPolicy policy;
  policy.max_attempts = 30;
  policy.initial_backoff_seconds = 0.0;
  const OracleStack stack = OracleStackBuilder()
                                .FaultInjection(faults)
                                .Retry(policy)
                                .Build(&inner)
                                .ValueOrDie();
  const RetryingOracle& retrying = *stack.retrying();

  GroundTruthOracle seq_oracle(truth);
  LabelCache chaos_cache(&stack.top());
  LabelCache seq_cache(&seq_oracle);

  Rng items_rng(94);
  Rng chaos_rng(95);
  Rng seq_rng(95);
  for (int round = 0; round < 8; ++round) {
    const std::vector<int64_t> items = MakeItems(items_rng, 300, 97);
    std::vector<uint8_t> chaos_out(items.size());
    ASSERT_TRUE(chaos_cache.QueryBatch(items, chaos_rng, chaos_out).ok());
    for (size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(chaos_out[i] != 0, seq_cache.Query(items[i], seq_rng))
          << "round " << round << " position " << i;
    }
    EXPECT_EQ(chaos_cache.labels_consumed(), seq_cache.labels_consumed());
    EXPECT_EQ(chaos_cache.total_queries(), seq_cache.total_queries());
    EXPECT_EQ(chaos_cache.distinct_items_labelled(),
              seq_cache.distinct_items_labelled());
  }
  // The equivalence above was achieved THROUGH repair work, not by luck.
  EXPECT_GT(retrying.stats().items_recovered, 0);
  EXPECT_GT(retrying.stats().retries, 0);
  EXPECT_EQ(retrying.stats().give_ups, 0);
}

TEST(QueryBatchTest, NoisyFallibleWholeBatchRetriesKeepRngStreamExact) {
  // Whole-attempt transient failures never reach the noisy inner oracle, so
  // a retried noisy batch consumes the caller's RNG exactly like the
  // fault-free sequential loop — labels, accounting, and residual stream all
  // match. (Partial batches DO reorder noisy draws, which is why the noisy
  // path charges per delivery; here we pin the whole-batch case.)
  const std::vector<uint8_t> truth{1, 0, 1, 0, 1, 1, 0, 0};
  NoisyOracle noisy_a =
      NoisyOracle::FromTruthWithFlipNoise(truth, 0.25).ValueOrDie();
  NoisyOracle noisy_b =
      NoisyOracle::FromTruthWithFlipNoise(truth, 0.25).ValueOrDie();
  FaultInjectionOptions faults;
  faults.transient_failure_rate = 0.3;
  faults.timeout_rate = 0.2;
  FaultInjectingOracle chaotic(&noisy_a, faults);
  RetryPolicy policy;
  policy.max_attempts = 40;
  policy.initial_backoff_seconds = 0.0;
  RetryingOracle retrying(&chaotic, policy);

  LabelCache chaos_cache(&retrying);
  LabelCache seq_cache(&noisy_b);
  Rng items_rng(96);
  Rng chaos_rng(97);
  Rng seq_rng(97);
  for (int round = 0; round < 5; ++round) {
    const std::vector<int64_t> items = MakeItems(items_rng, 8, 48);
    std::vector<uint8_t> chaos_out(items.size());
    ASSERT_TRUE(chaos_cache.QueryBatch(items, chaos_rng, chaos_out).ok());
    for (size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(chaos_out[i] != 0, seq_cache.Query(items[i], seq_rng));
    }
    EXPECT_EQ(chaos_cache.labels_consumed(), seq_cache.labels_consumed());
    EXPECT_EQ(chaos_cache.total_queries(), seq_cache.total_queries());
  }
  EXPECT_EQ(chaos_rng.NextUint64(), seq_rng.NextUint64());
  EXPECT_EQ(retrying.stats().give_ups, 0);
}

TEST(QueryBatchTest, ValidatesArguments) {
  GroundTruthOracle oracle({1, 0});
  LabelCache cache(&oracle);
  Rng rng(87);
  const std::vector<int64_t> items{0, 1};
  std::vector<uint8_t> short_out(1);
  EXPECT_FALSE(cache.QueryBatch(items, rng, short_out).ok());

  std::vector<uint8_t> empty_out;
  EXPECT_TRUE(cache.QueryBatch({}, rng, empty_out).ok());
  EXPECT_EQ(cache.total_queries(), 0);
  EXPECT_EQ(cache.labels_consumed(), 0);
}

}  // namespace
}  // namespace oasis
