#include "classify/scaler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace oasis {
namespace classify {
namespace {

Dataset MakeData() {
  Dataset data(2);
  // Feature 0: mean 2, population stddev sqrt(2/3); feature 1: constant.
  EXPECT_TRUE(data.Add(std::vector<double>{1.0, 5.0}, false).ok());
  EXPECT_TRUE(data.Add(std::vector<double>{2.0, 5.0}, true).ok());
  EXPECT_TRUE(data.Add(std::vector<double>{3.0, 5.0}, false).ok());
  return data;
}

TEST(StandardScalerTest, RejectsEmpty) {
  StandardScaler scaler;
  Dataset empty(2);
  EXPECT_FALSE(scaler.Fit(empty).ok());
}

TEST(StandardScalerTest, LearnsMoments) {
  StandardScaler scaler;
  Dataset data = MakeData();
  ASSERT_TRUE(scaler.Fit(data).ok());
  EXPECT_DOUBLE_EQ(scaler.means()[0], 2.0);
  EXPECT_NEAR(scaler.stddevs()[0], std::sqrt(2.0 / 3.0), 1e-12);
  // Constant feature falls back to unit scale.
  EXPECT_DOUBLE_EQ(scaler.means()[1], 5.0);
  EXPECT_DOUBLE_EQ(scaler.stddevs()[1], 1.0);
}

TEST(StandardScalerTest, TransformedDataIsStandardised) {
  StandardScaler scaler;
  Dataset data = MakeData();
  ASSERT_TRUE(scaler.Fit(data).ok());
  Dataset scaled = scaler.Transform(data);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i < scaled.size(); ++i) {
    sum += scaled.row(i)[0];
    sum_sq += scaled.row(i)[0] * scaled.row(i)[0];
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_NEAR(sum_sq / 3.0, 1.0, 1e-12);
  // Labels survive the transform.
  EXPECT_TRUE(scaled.label(1));
}

TEST(StandardScalerTest, TransformInPlaceMatchesDatasetTransform) {
  StandardScaler scaler;
  Dataset data = MakeData();
  ASSERT_TRUE(scaler.Fit(data).ok());
  std::vector<double> row{1.0, 5.0};
  scaler.TransformInPlace(row);
  Dataset scaled = scaler.Transform(data);
  EXPECT_DOUBLE_EQ(row[0], scaled.row(0)[0]);
  EXPECT_DOUBLE_EQ(row[1], scaled.row(0)[1]);
}

}  // namespace
}  // namespace classify
}  // namespace oasis
