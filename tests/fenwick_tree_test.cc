// FenwickTree unit tests: construction/validation, prefix-sum and total
// queries against naive reference sums, point updates, O(n) rebuild, the
// inverse-CDF descent (boundaries, zero-mass skipping, single-element
// degenerate case), and a chi-squared goodness-of-fit check that Sample()
// actually draws from the normalised mass distribution.

#include "common/fenwick_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"

namespace oasis {
namespace {

TEST(FenwickTreeTest, BuildRejectsInvalidMasses) {
  EXPECT_FALSE(FenwickTree::Build({}).ok());
  const std::vector<double> negative{1.0, -0.5, 2.0};
  EXPECT_FALSE(FenwickTree::Build(negative).ok());
  const std::vector<double> nan_mass{1.0, std::nan(""), 2.0};
  EXPECT_FALSE(FenwickTree::Build(nan_mass).ok());
  const std::vector<double> inf_mass{1.0, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(FenwickTree::Build(inf_mass).ok());
  // All-zero masses are structurally valid (Sample is simply forbidden).
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_TRUE(FenwickTree::Build(zeros).ok());
}

TEST(FenwickTreeTest, PrefixSumsMatchNaiveReference) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.NextBounded(200));
    std::vector<double> masses(n);
    for (double& m : masses) {
      // Mix in exact zeros so the zero-run handling is exercised too.
      m = rng.NextBernoulli(0.3) ? 0.0 : rng.NextDouble();
    }
    FenwickTree tree = FenwickTree::Build(masses).ValueOrDie();
    ASSERT_EQ(tree.size(), n);
    double naive = 0.0;
    for (size_t count = 0; count <= n; ++count) {
      EXPECT_NEAR(tree.PrefixSum(count), naive, 1e-12);
      if (count < n) {
        EXPECT_EQ(tree.value(count), masses[count]);
        naive += masses[count];
      }
    }
    EXPECT_NEAR(tree.Total(), naive, 1e-12);
  }
}

TEST(FenwickTreeTest, UpdateAdjustsAllAffectedSums) {
  Rng rng(43);
  std::vector<double> masses(37);
  for (double& m : masses) m = rng.NextDouble();
  FenwickTree tree = FenwickTree::Build(masses).ValueOrDie();

  for (int edit = 0; edit < 200; ++edit) {
    const size_t i = static_cast<size_t>(rng.NextBounded(masses.size()));
    const double mass = rng.NextBernoulli(0.2) ? 0.0 : 3.0 * rng.NextDouble();
    masses[i] = mass;
    tree.Update(i, mass);
    EXPECT_EQ(tree.value(i), mass);
  }
  double naive = 0.0;
  for (size_t count = 0; count <= masses.size(); ++count) {
    EXPECT_NEAR(tree.PrefixSum(count), naive, 1e-9);
    if (count < masses.size()) naive += masses[count];
  }
}

TEST(FenwickTreeTest, RebuildMatchesFreshBuildAndRejectsMismatch) {
  Rng rng(47);
  std::vector<double> initial(64), replacement(64);
  for (size_t i = 0; i < initial.size(); ++i) {
    initial[i] = rng.NextDouble();
    replacement[i] = rng.NextDouble();
  }
  FenwickTree tree = FenwickTree::Build(initial).ValueOrDie();
  // Perturb through updates first so Rebuild also has drift to discard.
  for (int i = 0; i < 32; ++i) {
    tree.Update(static_cast<size_t>(rng.NextBounded(64)), rng.NextDouble());
  }
  ASSERT_TRUE(tree.Rebuild(replacement).ok());

  const FenwickTree fresh = FenwickTree::Build(replacement).ValueOrDie();
  for (size_t count = 0; count <= replacement.size(); ++count) {
    EXPECT_EQ(tree.PrefixSum(count), fresh.PrefixSum(count));
  }

  const std::vector<double> wrong_size(63, 1.0);
  EXPECT_FALSE(tree.Rebuild(wrong_size).ok());
  const std::vector<double> negative(64, -1.0);
  EXPECT_FALSE(tree.Rebuild(negative).ok());
}

TEST(FenwickTreeTest, FindQuantileBoundariesAndZeroSkipping) {
  // Index layout: zero-mass entries at the ends and in the middle must never
  // be selected; boundary targets land on the neighbouring positive masses.
  const std::vector<double> masses{0.0, 2.0, 0.0, 0.0, 3.0, 0.0};
  FenwickTree tree = FenwickTree::Build(masses).ValueOrDie();
  EXPECT_DOUBLE_EQ(tree.Total(), 5.0);
  EXPECT_EQ(tree.FindQuantile(0.0), 1u);
  EXPECT_EQ(tree.FindQuantile(1.999), 1u);
  EXPECT_EQ(tree.FindQuantile(2.0), 4u);  // CDF is right-open at each mass.
  EXPECT_EQ(tree.FindQuantile(4.999), 4u);
  // At/above Total(): clamps to the last positive-mass index.
  EXPECT_EQ(tree.FindQuantile(5.0), 4u);
  EXPECT_EQ(tree.FindQuantile(100.0), 4u);
}

TEST(FenwickTreeTest, SingleElementAlwaysSampled) {
  const std::vector<double> one{0.7};
  FenwickTree tree = FenwickTree::Build(one).ValueOrDie();
  Rng rng(51);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tree.Sample(rng), 0u);
  }
}

TEST(FenwickTreeTest, ZeroMassIndicesNeverSampled) {
  Rng rng(53);
  std::vector<double> masses(50, 0.0);
  for (size_t i = 0; i < masses.size(); i += 3) masses[i] = rng.NextDouble() + 0.1;
  FenwickTree tree = FenwickTree::Build(masses).ValueOrDie();
  for (int draw = 0; draw < 50000; ++draw) {
    const size_t idx = tree.Sample(rng);
    ASSERT_GT(masses[idx], 0.0) << "sampled zero-mass index " << idx;
  }
}

TEST(FenwickTreeTest, SampleMatchesDistributionChiSquared) {
  // Goodness of fit of 200k draws against the normalised masses. With
  // df = 7 the 99.9th chi-squared percentile is 24.32; a healthy sampler
  // fails this with probability 0.1%.
  const std::vector<double> masses{5.0, 1.0, 0.5, 8.0, 2.0, 0.25, 3.0, 4.0};
  FenwickTree tree = FenwickTree::Build(masses).ValueOrDie();
  const double total = tree.Total();

  Rng rng(57);
  const int kDraws = 200000;
  std::vector<int64_t> counts(masses.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[tree.Sample(rng)];

  double chi_sq = 0.0;
  for (size_t k = 0; k < masses.size(); ++k) {
    const double expected = kDraws * masses[k] / total;
    const double diff = static_cast<double>(counts[k]) - expected;
    chi_sq += diff * diff / expected;
  }
  EXPECT_LT(chi_sq, 24.32) << "chi-squared " << chi_sq << " at df=7";
}

TEST(FenwickTreeTest, SampleTracksUpdatedMasses) {
  // After shifting all mass onto one index via updates, every draw lands
  // there — the descent must see the updated sums, not the build-time ones.
  std::vector<double> masses{1.0, 1.0, 1.0, 1.0};
  FenwickTree tree = FenwickTree::Build(masses).ValueOrDie();
  tree.Update(0, 0.0);
  tree.Update(1, 0.0);
  tree.Update(3, 0.0);
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(tree.Sample(rng), 2u);
  }
}

}  // namespace
}  // namespace oasis
