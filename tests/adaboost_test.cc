#include "classify/adaboost.h"

#include <gtest/gtest.h>

#include "classify_test_util.h"

namespace oasis {
namespace classify {
namespace {

using testutil::Accuracy;
using testutil::MakeBlobs;
using testutil::MakeXor;

TEST(AdaBoostTest, RejectsDegenerateData) {
  AdaBoost ab;
  Rng rng(1);
  Dataset empty(2);
  EXPECT_FALSE(ab.Fit(empty, rng).ok());
  AdaBoostOptions bad;
  bad.rounds = 0;
  AdaBoost bad_ab(bad);
  Dataset blobs = MakeBlobs(10, 0.2, 2);
  EXPECT_FALSE(bad_ab.Fit(blobs, rng).ok());
}

TEST(AdaBoostTest, SeparatesBlobs) {
  Dataset train = MakeBlobs(200, 0.3, 3);
  Dataset test = MakeBlobs(200, 0.3, 5);
  AdaBoost ab;
  Rng rng(7);
  ASSERT_TRUE(ab.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(ab, test), 0.95);
}

TEST(AdaBoostTest, SolvesIntervalConceptByCombiningStumps) {
  // Positives live in |x| < 0.5 — not separable by any single threshold, but
  // boosting combines opposing stumps at the two interval edges. (XOR, by
  // contrast, is provably beyond axis-aligned stumps: every stump has 50%
  // weighted error, which is why the paper's AB uses it only on ER features
  // that are monotone in match likelihood.)
  Rng data_rng(9);
  Dataset train(1);
  Dataset test(1);
  for (int i = 0; i < 800; ++i) {
    const double x = 2.0 * data_rng.NextDouble() - 1.0;
    ASSERT_TRUE((i % 2 == 0 ? train : test)
                    .Add(std::vector<double>{x}, std::abs(x) < 0.5)
                    .ok());
  }
  AdaBoostOptions options;
  options.rounds = 100;
  options.candidate_thresholds = 64;
  AdaBoost ab(options);
  Rng rng(13);
  ASSERT_TRUE(ab.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(ab, test), 0.9);
}

TEST(AdaBoostTest, XorIsBeyondStumpsAndFailsGracefully) {
  // Sanity check of the known limitation: accuracy stays near chance, but
  // training completes and produces a valid model.
  Dataset train = MakeXor(100, 0.2, 15);
  AdaBoost ab;
  Rng rng(17);
  ASSERT_TRUE(ab.Fit(train, rng).ok());
  const double accuracy = Accuracy(ab, train);
  EXPECT_GT(accuracy, 0.3);
  EXPECT_LT(accuracy, 0.8);
}

TEST(AdaBoostTest, ScoresAreNormalisedMargins) {
  Dataset train = MakeBlobs(150, 0.3, 15);
  AdaBoost ab;
  Rng rng(17);
  ASSERT_TRUE(ab.Fit(train, rng).ok());
  EXPECT_FALSE(ab.probabilistic());
  EXPECT_DOUBLE_EQ(ab.threshold(), 0.0);
  for (double x : {-2.0, 0.0, 2.0}) {
    const double s = ab.Score(std::vector<double>{x, x});
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_GT(ab.Score(std::vector<double>{2.0, 2.0}), 0.5);
  EXPECT_LT(ab.Score(std::vector<double>{-2.0, -2.0}), -0.5);
}

TEST(AdaBoostTest, PerfectStumpStopsEarly) {
  // A single threshold separates the data, so boosting should stop after
  // one perfect round instead of burning all 50.
  Dataset train(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        train.Add(std::vector<double>{i < 10 ? -1.0 : 1.0}, i >= 10).ok());
  }
  AdaBoost ab;
  Rng rng(19);
  ASSERT_TRUE(ab.Fit(train, rng).ok());
  EXPECT_EQ(ab.num_stumps(), 1u);
  EXPECT_DOUBLE_EQ(Accuracy(ab, train), 1.0);
}

}  // namespace
}  // namespace classify
}  // namespace oasis
