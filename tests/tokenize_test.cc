#include "er/tokenize.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace oasis {
namespace er {
namespace {

TEST(WordTokensTest, SplitsOnWhitespace) {
  const std::vector<std::string> tokens = WordTokens("alpha beta  gamma");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "alpha");
  EXPECT_EQ(tokens[1], "beta");
  EXPECT_EQ(tokens[2], "gamma");
}

TEST(WordTokensTest, HandlesTabsNewlinesAndEdges) {
  const std::vector<std::string> tokens = WordTokens(" \t a\nb \t");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
}

TEST(WordTokensTest, EmptyInput) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("   ").empty());
}

TEST(CharacterNgramsTest, TrigramsWithPadding) {
  const std::vector<std::string> grams = CharacterNgrams("abc", 3);
  const std::vector<std::string> expected{"##a", "#ab", "abc", "bc#", "c##"};
  EXPECT_EQ(grams, expected);
}

TEST(CharacterNgramsTest, ShortStringsStillProduceGrams) {
  const std::vector<std::string> grams = CharacterNgrams("a", 3);
  const std::vector<std::string> expected{"##a", "#a#", "a##"};
  EXPECT_EQ(grams, expected);
}

TEST(CharacterNgramsTest, EmptyAndZeroN) {
  EXPECT_TRUE(CharacterNgrams("", 3).empty());
  EXPECT_TRUE(CharacterNgrams("abc", 0).empty());
}

TEST(CharacterNgramsTest, UnigramsHaveNoPadding) {
  const std::vector<std::string> grams = CharacterNgrams("ab", 1);
  const std::vector<std::string> expected{"a", "b"};
  EXPECT_EQ(grams, expected);
}

TEST(NgramSetTest, SortedAndDeduplicated) {
  const std::vector<std::string> set = NgramSet("aaaa", 3);
  // Grams: ##a, #aa, aaa, aaa, aa#, a## -> dedup "aaa".
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  EXPECT_EQ(std::count(set.begin(), set.end(), "aaa"), 1);
}

TEST(NgramSetTest, SameContentSameSet) {
  EXPECT_EQ(NgramSet("hello", 3), NgramSet("hello", 3));
  EXPECT_NE(NgramSet("hello", 3), NgramSet("help", 3));
}

}  // namespace
}  // namespace er
}  // namespace oasis
