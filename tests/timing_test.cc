#include "experiments/timing.h"

#include <gtest/gtest.h>

#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace experiments {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;

TEST(TimingTest, RejectsBadArguments) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  EXPECT_FALSE(
      TimeMethod(MakePassiveSpec(0.5), pool.scored, oracle, 0, 1, 1).ok());
  EXPECT_FALSE(
      TimeMethod(MakePassiveSpec(0.5), pool.scored, oracle, 10, 0, 1).ok());
}

TEST(TimingTest, ReportsConsistentFields) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  TimingResult result =
      TimeMethod(MakePassiveSpec(0.5), pool.scored, oracle, 2000, 3, 11)
          .ValueOrDie();
  EXPECT_EQ(result.method, "Passive");
  EXPECT_EQ(result.iterations_per_run, 2000);
  EXPECT_EQ(result.repeats, 3);
  EXPECT_GE(result.cpu_seconds_per_run, 0.0);
  EXPECT_NEAR(result.cpu_seconds_per_iteration,
              result.cpu_seconds_per_run / 2000.0, 1e-12);
}

TEST(TimingTest, OasisCostsMoreThanPassivePerIteration) {
  // OASIS recomputes a K-vector each step; passive does O(1) work. The CPU
  // ordering should reflect that (the Table 3 shape).
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 60).ValueOrDie());

  TimingResult passive =
      TimeMethod(MakePassiveSpec(0.5), pool.scored, oracle, 20000, 2, 13)
          .ValueOrDie();
  TimingResult oasis = TimeMethod(MakeOasisSpec(OasisOptions{}, strata),
                                  pool.scored, oracle, 20000, 2, 13)
                           .ValueOrDie();
  EXPECT_GT(oasis.cpu_seconds_per_iteration,
            passive.cpu_seconds_per_iteration);
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
