#include "core/instrumental.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace oasis {
namespace {

TEST(OptimalInstrumentalTest, RejectsBadArguments) {
  const std::vector<double> w{0.5, 0.5};
  const std::vector<double> lambda{0.0, 1.0};
  const std::vector<double> pi{0.1, 0.9};
  EXPECT_FALSE(OptimalStratifiedInstrumental({}, {}, {}, 0.5, 0.5).ok());
  EXPECT_FALSE(
      OptimalStratifiedInstrumental(w, lambda, std::vector<double>{0.1}, 0.5, 0.5)
          .ok());
  EXPECT_FALSE(OptimalStratifiedInstrumental(w, lambda, pi, 0.5, 1.5).ok());
  const std::vector<double> bad_pi{0.1, 1.9};
  EXPECT_FALSE(OptimalStratifiedInstrumental(w, lambda, bad_pi, 0.5, 0.5).ok());
}

TEST(OptimalInstrumentalTest, MatchesHandComputedValue) {
  // Two strata, alpha = 1/2, F = 0.6:
  //  k=0: lambda=0 (all predicted negative), pi=0.04
  //     mass = w * (1-alpha)(1-lambda) F sqrt(pi) = 0.8*0.5*0.6*0.2 = 0.048
  //  k=1: lambda=1 (all predicted positive), pi=0.81
  //     inner = alpha^2 F^2 (1-pi) + (1-F)^2 pi
  //           = 0.25*0.36*0.19 + 0.16*0.81 = 0.01710 + 0.1296 = 0.14670
  //     mass = 0.2 * sqrt(0.14670) = 0.2*0.3830... = 0.07660...
  const std::vector<double> w{0.8, 0.2};
  const std::vector<double> lambda{0.0, 1.0};
  const std::vector<double> pi{0.04, 0.81};
  const std::vector<double> v =
      OptimalStratifiedInstrumental(w, lambda, pi, 0.6, 0.5).ValueOrDie();
  const double mass0 = 0.8 * 0.5 * 0.6 * 0.2;
  const double mass1 = 0.2 * std::sqrt(0.25 * 0.36 * 0.19 + 0.16 * 0.81);
  const double total = mass0 + mass1;
  EXPECT_NEAR(v[0], mass0 / total, 1e-12);
  EXPECT_NEAR(v[1], mass1 / total, 1e-12);
}

TEST(OptimalInstrumentalTest, NormalisesToOne) {
  const std::vector<double> w{0.25, 0.25, 0.5};
  const std::vector<double> lambda{0.0, 0.5, 1.0};
  const std::vector<double> pi{0.01, 0.4, 0.95};
  const std::vector<double> v =
      OptimalStratifiedInstrumental(w, lambda, pi, 0.7, 0.5).ValueOrDie();
  double total = 0.0;
  for (double vi : v) {
    EXPECT_GE(vi, 0.0);
    total += vi;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(OptimalInstrumentalTest, DegenerateMassFallsBackToWeights) {
  // F = 0 and pi = 0 zero out every term (Remark 5's pathological setting);
  // the implementation must fall back to omega rather than divide by zero.
  const std::vector<double> w{0.3, 0.7};
  const std::vector<double> lambda{0.0, 0.0};
  const std::vector<double> pi{0.0, 0.0};
  const std::vector<double> v =
      OptimalStratifiedInstrumental(w, lambda, pi, 0.0, 0.5).ValueOrDie();
  EXPECT_NEAR(v[0], 0.3, 1e-12);
  EXPECT_NEAR(v[1], 0.7, 1e-12);
}

TEST(OptimalInstrumentalTest, ZeroMassOnUninformativeStratum) {
  // A stratum with no predicted positives and pi = 0 provides no information
  // about F; the optimal distribution assigns it zero mass — exactly why the
  // epsilon-greedy mix exists.
  const std::vector<double> w{0.9, 0.1};
  const std::vector<double> lambda{0.0, 1.0};
  const std::vector<double> pi{0.0, 0.9};
  const std::vector<double> v =
      OptimalStratifiedInstrumental(w, lambda, pi, 0.5, 0.5).ValueOrDie();
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
}

TEST(OptimalInstrumentalTest, PrecisionOnlyIgnoresPredictedNegatives) {
  // alpha = 1: the (1-alpha) term vanishes, so predicted-negative strata get
  // zero mass regardless of pi.
  const std::vector<double> w{0.5, 0.5};
  const std::vector<double> lambda{0.0, 1.0};
  const std::vector<double> pi{0.9, 0.5};
  const std::vector<double> v =
      OptimalStratifiedInstrumental(w, lambda, pi, 0.5, 1.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
}

TEST(EpsilonGreedyMixTest, RejectsBadEpsilon) {
  const std::vector<double> w{0.5, 0.5};
  const std::vector<double> v{1.0, 0.0};
  EXPECT_FALSE(EpsilonGreedyMix(w, v, 0.0).ok());
  EXPECT_FALSE(EpsilonGreedyMix(w, v, -0.1).ok());
  EXPECT_FALSE(EpsilonGreedyMix(w, v, 1.1).ok());
  EXPECT_FALSE(EpsilonGreedyMix({}, {}, 0.5).ok());
}

TEST(EpsilonGreedyMixTest, MixesLinearly) {
  const std::vector<double> w{0.8, 0.2};
  const std::vector<double> v_star{0.0, 1.0};
  const std::vector<double> v = EpsilonGreedyMix(w, v_star, 0.1).ValueOrDie();
  EXPECT_NEAR(v[0], 0.1 * 0.8, 1e-12);
  EXPECT_NEAR(v[1], 0.1 * 0.2 + 0.9, 1e-12);
}

TEST(EpsilonGreedyMixTest, GuaranteesPositiveMassEverywhere) {
  // The consistency-critical property (Remark 5): every stratum keeps at
  // least epsilon * omega_k mass even when v* zeroes it out.
  const std::vector<double> w{0.7, 0.2, 0.1};
  const std::vector<double> v_star{1.0, 0.0, 0.0};
  const std::vector<double> v = EpsilonGreedyMix(w, v_star, 1e-3).ValueOrDie();
  for (size_t k = 0; k < w.size(); ++k) {
    EXPECT_GE(v[k], 1e-3 * w[k]);
  }
}

TEST(EpsilonGreedyMixTest, EpsilonOneIsPureWeights) {
  const std::vector<double> w{0.6, 0.4};
  const std::vector<double> v_star{0.0, 1.0};
  const std::vector<double> v = EpsilonGreedyMix(w, v_star, 1.0).ValueOrDie();
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.4, 1e-12);
}

TEST(EpsilonGreedyMixTest, PreservesNormalisation) {
  const std::vector<double> w{0.25, 0.75};
  const std::vector<double> v_star{0.5, 0.5};
  const std::vector<double> v = EpsilonGreedyMix(w, v_star, 0.3).ValueOrDie();
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace oasis
