#include "sampling/oracle_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

std::shared_ptr<const Strata> MakeStrata(const ScoredPool& pool, size_t k) {
  return std::make_shared<const Strata>(StratifyCsf(pool.scores, k).ValueOrDie());
}

TEST(OracleOptimalSamplerTest, RejectsBadArguments) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto strata = MakeStrata(pool.scored, 10);
  const std::vector<uint8_t> short_truth{1, 0};
  EXPECT_FALSE(OracleOptimalSampler::Create(&pool.scored, &labels, strata,
                                            short_truth, 0.5, 1e-3, Rng(1))
                   .ok());
  EXPECT_FALSE(OracleOptimalSampler::Create(nullptr, &labels, strata, pool.truth,
                                            0.5, 1e-3, Rng(1))
                   .ok());
}

TEST(OracleOptimalSamplerTest, InstrumentalIsValidDistribution) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OracleOptimalSampler::Create(&pool.scored, &labels,
                                              MakeStrata(pool.scored, 15),
                                              pool.truth, 0.5, 1e-3, Rng(3))
                     .ValueOrDie();
  double total = 0.0;
  for (double v : sampler->instrumental()) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OracleOptimalSamplerTest, ConvergesToTrueF) {
  SyntheticPoolOptions options;
  options.size = 3000;
  options.match_fraction = 0.03;
  options.seed = 301;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OracleOptimalSampler::Create(&pool.scored, &labels,
                                              MakeStrata(pool.scored, 20),
                                              pool.truth, 0.5, 1e-3, Rng(5))
                     .ValueOrDie();
  while (sampler->labels_consumed() < 2000) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.05);
}

TEST(OracleOptimalSamplerTest, AtLeastAsGoodAsPassiveOnAverage) {
  // The oracle-optimal distribution is the variance-minimising reference; at
  // a small budget its squared error should beat uniform sampling.
  SyntheticPoolOptions options;
  options.size = 6000;
  options.match_fraction = 0.01;
  options.seed = 303;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  auto strata = MakeStrata(pool.scored, 20);

  double oracle_sq = 0.0;
  int oracle_n = 0;
  double passive_sq = 0.0;
  int passive_n = 0;
  const int repeats = 20;
  const int64_t budget = 300;
  for (int r = 0; r < repeats; ++r) {
    {
      LabelCache labels(&oracle);
      auto sampler =
          OracleOptimalSampler::Create(&pool.scored, &labels, strata, pool.truth,
                                       0.5, 1e-3, Rng(400 + r))
              .ValueOrDie();
      while (labels.labels_consumed() < budget) {
        ASSERT_TRUE(sampler->Step().ok());
      }
      const EstimateSnapshot snap = sampler->Estimate();
      if (snap.f_defined) {
        const double err = snap.f_alpha - pool.true_measures.f_alpha;
        oracle_sq += err * err;
        ++oracle_n;
      }
    }
    {
      LabelCache labels(&oracle);
      Rng rng(500 + r);
      double tp = 0, pred = 0, pos = 0;
      while (labels.labels_consumed() < budget) {
        const int64_t item = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(pool.scored.size())));
        const bool label = labels.Query(item, rng);
        if (label && pool.scored.predictions[item]) tp += 1;
        if (pool.scored.predictions[item]) pred += 1;
        if (label) pos += 1;
      }
      const double denom = 0.5 * (pred + pos);
      if (denom > 0) {
        const double err = tp / denom - pool.true_measures.f_alpha;
        passive_sq += err * err;
        ++passive_n;
      }
    }
  }
  ASSERT_GT(oracle_n, repeats / 2);
  if (passive_n > repeats / 2) {
    EXPECT_LT(std::sqrt(oracle_sq / oracle_n), std::sqrt(passive_sq / passive_n));
  }
}

}  // namespace
}  // namespace oasis
