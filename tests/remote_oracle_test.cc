#include "oracle/remote_oracle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "oracle/noisy_oracle.h"
#include "oracle/shared_label_store.h"
#include "strata/csf.h"
#include "tests/test_util.h"

namespace oasis {
namespace {

RemoteOracleOptions NoJitterOptions() {
  RemoteOracleOptions options;
  options.round_trip_seconds = 10.0;
  options.per_item_seconds = 2.0;
  options.cost_per_label = 0.25;
  options.jitter_fraction = 0.0;
  return options;
}

int64_t Ns(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e9));
}

// ---------------------------------------------------------------------------
// Label bit-identity with the wrapped oracle.
// ---------------------------------------------------------------------------

TEST(RemoteOracleTest, ForwardsGroundTruthLabelsExactly) {
  GroundTruthOracle inner({1, 0, 1, 0, 0, 1});
  RemoteOracle remote(&inner, NoJitterOptions());

  Rng rng_raw(7);
  Rng rng_wrapped(7);
  for (int64_t item = 0; item < inner.num_items(); ++item) {
    EXPECT_EQ(inner.Label(item, rng_raw), remote.Label(item, rng_wrapped))
        << "item " << item;
  }
  // Neither consumed the RNG (ground truth is a pure lookup); both streams
  // must still be in lock-step with a fresh generator.
  Rng fresh(7);
  EXPECT_EQ(rng_raw.NextUint64(), fresh.NextUint64());
  EXPECT_EQ(rng_wrapped.NextUint64(), Rng(7).NextUint64());

  EXPECT_TRUE(remote.deterministic());
  EXPECT_FALSE(remote.labelling_consumes_rng());
  EXPECT_EQ(remote.num_items(), inner.num_items());
  EXPECT_DOUBLE_EQ(remote.TrueProbability(0), 1.0);
}

TEST(RemoteOracleTest, ForwardsNoisyLabelsAndRngStreamExactly) {
  NoisyOracle inner =
      NoisyOracle::FromProbabilities({0.3, 0.8, 0.5, 0.1}).ValueOrDie();
  RemoteOracle remote(&inner, NoJitterOptions());
  EXPECT_FALSE(remote.deterministic());
  EXPECT_TRUE(remote.labelling_consumes_rng());

  const std::vector<int64_t> items = {0, 1, 2, 3, 2, 1, 0, 3, 3};
  std::vector<uint8_t> raw(items.size()), wrapped(items.size());
  Rng rng_raw(99);
  Rng rng_wrapped(99);
  inner.LabelBatch(items, rng_raw, raw);
  remote.LabelBatch(items, rng_wrapped, wrapped);
  EXPECT_EQ(raw, wrapped);
  // Identical RNG consumption: the next deviate agrees.
  EXPECT_EQ(rng_raw.NextUint64(), rng_wrapped.NextUint64());
}

// ---------------------------------------------------------------------------
// Cost-accounting invariants.
// ---------------------------------------------------------------------------

TEST(RemoteOracleTest, AccountsOneTripPerUnboundedBatch) {
  GroundTruthOracle inner(std::vector<uint8_t>(100, 1));
  RemoteOracleOptions options = NoJitterOptions();
  RemoteOracle remote(&inner, options);

  const std::vector<int64_t> items = {5, 9, 11, 42};
  std::vector<uint8_t> out(items.size());
  Rng rng(1);
  remote.LabelBatch(items, rng, out);

  const RemoteOracleStats stats = remote.stats();
  EXPECT_EQ(stats.queries, 4);
  EXPECT_EQ(stats.round_trips, 1);
  EXPECT_EQ(stats.labels_fetched, 4);
  EXPECT_EQ(stats.store_hits, 0);
  EXPECT_EQ(stats.simulated_latency_ns, Ns(10.0 + 4 * 2.0));
  EXPECT_DOUBLE_EQ(stats.label_cost, 4 * 0.25);
}

TEST(RemoteOracleTest, SplitsBatchesIntoCeilMissesOverBatchTrips) {
  GroundTruthOracle inner(std::vector<uint8_t>(1000, 0));
  RemoteOracleOptions options = NoJitterOptions();
  options.max_items_per_round_trip = 16;
  RemoteOracle remote(&inner, options);

  std::vector<int64_t> items(100);
  for (int64_t i = 0; i < 100; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<uint8_t> out(items.size());
  Rng rng(1);
  remote.LabelBatch(items, rng, out);

  const RemoteOracleStats stats = remote.stats();
  // ceil(100 / 16) = 7 trips: six full pages of 16 plus one of 4.
  EXPECT_EQ(stats.round_trips, 7);
  EXPECT_EQ(stats.labels_fetched, 100);
  EXPECT_EQ(stats.simulated_latency_ns, 7 * Ns(10.0) + 100 * Ns(2.0));
}

TEST(RemoteOracleTest, CacheHitsCostNothing) {
  GroundTruthOracle inner({1, 0, 1, 0});
  RemoteOracleOptions options = NoJitterOptions();
  RemoteOracle remote(&inner, options);
  LabelCache cache(&remote);
  Rng rng(3);

  const std::vector<int64_t> items = {0, 1, 2, 1, 0};
  std::vector<uint8_t> out(items.size());
  ASSERT_TRUE(cache.QueryBatch(items, rng, out).ok());
  const RemoteOracleStats cold = remote.stats();
  // The cache deduplicates: three distinct misses reach the wire, in one
  // round trip (footnote-5 charging: in-batch duplicates replay for free).
  EXPECT_EQ(cold.queries, 3);
  EXPECT_EQ(cold.round_trips, 1);
  EXPECT_EQ(cold.labels_fetched, 3);
  EXPECT_EQ(cold.simulated_latency_ns, Ns(10.0 + 3 * 2.0));

  // Fully-cached re-query: zero wire activity of any kind.
  ASSERT_TRUE(cache.QueryBatch(items, rng, out).ok());
  const RemoteOracleStats warm = remote.stats();
  EXPECT_EQ(warm.queries, cold.queries);
  EXPECT_EQ(warm.round_trips, cold.round_trips);
  EXPECT_EQ(warm.labels_fetched, cold.labels_fetched);
  EXPECT_EQ(warm.simulated_latency_ns, cold.simulated_latency_ns);
  EXPECT_DOUBLE_EQ(warm.label_cost, cold.label_cost);
}

TEST(RemoteOracleTest, SingleLabelIsATripOfOne) {
  GroundTruthOracle inner({1, 0});
  RemoteOracle remote(&inner, NoJitterOptions());
  Rng rng(5);
  EXPECT_TRUE(remote.Label(0, rng));
  const RemoteOracleStats stats = remote.stats();
  EXPECT_EQ(stats.queries, 1);
  EXPECT_EQ(stats.round_trips, 1);
  EXPECT_EQ(stats.simulated_latency_ns, Ns(10.0 + 2.0));
}

// ---------------------------------------------------------------------------
// Jitter: Fork-seeded, content-keyed, bounded, deterministic.
// ---------------------------------------------------------------------------

TEST(RemoteOracleTest, JitterIsDeterministicInTripContent) {
  GroundTruthOracle inner(std::vector<uint8_t>(64, 1));
  RemoteOracleOptions options = NoJitterOptions();
  options.jitter_fraction = 0.5;
  RemoteOracle a(&inner, options);
  RemoteOracle b(&inner, options);

  const std::vector<int64_t> trip = {3, 1, 4, 1, 5};
  // Same content, same seed: bit-identical latency across instances.
  EXPECT_EQ(a.TripLatencyNs(trip), b.TripLatencyNs(trip));
  // And across calls.
  EXPECT_EQ(a.TripLatencyNs(trip), a.TripLatencyNs(trip));

  // Jitter is bounded: base <= latency < base * (1 + fraction).
  const int64_t base = Ns(10.0 + 5 * 2.0);
  EXPECT_GE(a.TripLatencyNs(trip), base);
  EXPECT_LT(a.TripLatencyNs(trip),
            static_cast<int64_t>(static_cast<double>(base) * 1.5) + 1);

  // Different content or different seed moves the draw.
  const std::vector<int64_t> other = {2, 7, 1, 8, 2};
  EXPECT_NE(a.TripLatencyNs(trip), a.TripLatencyNs(other));
  options.jitter_seed ^= 0xdeadbeefULL;
  RemoteOracle c(&inner, options);
  EXPECT_NE(a.TripLatencyNs(trip), c.TripLatencyNs(trip));
}

// ---------------------------------------------------------------------------
// SharedLabelStore: cross-cache round-trip aggregation.
// ---------------------------------------------------------------------------

TEST(RemoteOracleTest, SharedStoreReplaysAcrossCaches) {
  GroundTruthOracle inner({1, 0, 1, 0, 1, 0, 1, 0});
  SharedLabelStore store(inner.num_items());
  RemoteOracleOptions options = NoJitterOptions();
  RemoteOracle remote(&inner, options, &store);
  ASSERT_TRUE(remote.sharing_labels());

  Rng rng(11);
  std::vector<uint8_t> out(4);

  // Repeat A fetches {0,1,2,3}: all novel, one trip.
  LabelCache cache_a(&remote);
  ASSERT_TRUE(
      cache_a.QueryBatch(std::vector<int64_t>{0, 1, 2, 3}, rng, out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 0, 1, 0}));
  EXPECT_EQ(remote.stats().round_trips, 1);
  EXPECT_EQ(remote.stats().labels_fetched, 4);

  // Repeat B misses {2,3,4,5} in its own cache, but {2,3} ride repeat A's
  // round trip: only {4,5} touch the wire.
  LabelCache cache_b(&remote);
  ASSERT_TRUE(
      cache_b.QueryBatch(std::vector<int64_t>{2, 3, 4, 5}, rng, out).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  const RemoteOracleStats stats = remote.stats();
  EXPECT_EQ(stats.round_trips, 2);
  EXPECT_EQ(stats.labels_fetched, 6);
  EXPECT_EQ(stats.store_hits, 2);
  EXPECT_EQ(stats.simulated_latency_ns, Ns(10.0 + 4 * 2.0) + Ns(10.0 + 2 * 2.0));
  EXPECT_DOUBLE_EQ(stats.label_cost, 6 * 0.25);
  EXPECT_EQ(store.items_stored(), 6);
  EXPECT_EQ(store.total_hits(), 2);

  // Repeat C is answered entirely by the store: no wire activity at all.
  LabelCache cache_c(&remote);
  ASSERT_TRUE(
      cache_c.QueryBatch(std::vector<int64_t>{0, 2, 4, 5}, rng, out).ok());
  EXPECT_EQ(remote.stats().round_trips, 2);
  EXPECT_EQ(remote.stats().labels_fetched, 6);
  EXPECT_EQ(remote.stats().store_hits, 6);
}

TEST(RemoteOracleTest, SharedStoreIsBypassedForRngConsumingOracles) {
  NoisyOracle inner = NoisyOracle::FromProbabilities({0.4, 0.6}).ValueOrDie();
  SharedLabelStore store(inner.num_items());
  RemoteOracle remote(&inner, NoJitterOptions(), &store);
  // Replaying a noisy label would change the distribution; the store must
  // not engage.
  EXPECT_FALSE(remote.sharing_labels());

  // Labels still follow the raw oracle's stream exactly.
  Rng rng_raw(21), rng_wrapped(21);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(inner.Label(i % 2, rng_raw), remote.Label(i % 2, rng_wrapped));
  }
  EXPECT_EQ(store.items_stored(), 0);
}

// ---------------------------------------------------------------------------
// Runner integration: curves are bit-identical to unwrapped runs at any
// thread count, and the cost columns are themselves deterministic.
// ---------------------------------------------------------------------------

experiments::RunnerOptions BaseRunnerOptions() {
  experiments::RunnerOptions options;
  options.repeats = 12;
  options.trajectory.budget = 300;
  options.trajectory.checkpoint_every = 50;
  options.base_seed = 0xfeedULL;
  return options;
}

TEST(RemoteOracleRunnerTest, CurvesBitIdenticalToUnwrappedAtAnyThreadCount) {
  const testutil::SyntheticPool pool = testutil::MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  const double true_f = pool.true_measures.f_alpha;
  const experiments::MethodSpec method = experiments::MakeImportanceSpec({});

  experiments::RunnerOptions plain = BaseRunnerOptions();
  plain.num_threads = 1;
  const experiments::ErrorCurve reference =
      experiments::RunErrorCurve(method, pool.scored, oracle, true_f, plain)
          .ValueOrDie();
  EXPECT_FALSE(reference.has_remote_cost);

  RemoteOracleOptions remote = NoJitterOptions();
  remote.jitter_fraction = 0.3;
  for (int threads : {1, 2, 8}) {
    experiments::RunnerOptions options = BaseRunnerOptions();
    options.num_threads = threads;
    options.remote_oracle = remote;
    const experiments::ErrorCurve curve =
        experiments::RunErrorCurve(method, pool.scored, oracle, true_f, options)
            .ValueOrDie();
    ASSERT_TRUE(curve.has_remote_cost);
    ASSERT_EQ(curve.budgets, reference.budgets);
    for (size_t i = 0; i < reference.budgets.size(); ++i) {
      // Bit-identical error statistics: wrapping only prices labels.
      EXPECT_EQ(curve.mean_abs_error[i], reference.mean_abs_error[i])
          << "threads=" << threads << " checkpoint " << i;
      EXPECT_EQ(curve.stddev[i], reference.stddev[i]);
      EXPECT_EQ(curve.mean_estimate[i], reference.mean_estimate[i]);
      EXPECT_EQ(curve.frac_defined[i], reference.frac_defined[i]);
    }
  }
}

TEST(RemoteOracleRunnerTest, CostColumnsBitIdenticalAcrossThreadCounts) {
  const testutil::SyntheticPool pool = testutil::MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  const double true_f = pool.true_measures.f_alpha;
  const experiments::MethodSpec method = experiments::MakePassiveSpec(0.5);

  RemoteOracleOptions remote = NoJitterOptions();
  remote.jitter_fraction = 0.25;
  remote.max_items_per_round_trip = 32;

  experiments::ErrorCurve reference;
  bool have_reference = false;
  for (int threads : {1, 2, 8}) {
    experiments::RunnerOptions options = BaseRunnerOptions();
    options.num_threads = threads;
    options.remote_oracle = remote;
    const experiments::ErrorCurve curve =
        experiments::RunErrorCurve(method, pool.scored, oracle, true_f, options)
            .ValueOrDie();
    ASSERT_TRUE(curve.has_remote_cost);
    // Costs accumulate along the budget axis.
    for (size_t i = 1; i < curve.mean_round_trips.size(); ++i) {
      EXPECT_GE(curve.mean_round_trips[i], curve.mean_round_trips[i - 1]);
      EXPECT_GE(curve.mean_simulated_seconds[i],
                curve.mean_simulated_seconds[i - 1]);
      EXPECT_GE(curve.mean_label_cost[i], curve.mean_label_cost[i - 1]);
    }
    EXPECT_GT(curve.mean_round_trips.back(), 0.0);
    EXPECT_GT(curve.mean_simulated_seconds.back(), 0.0);
    EXPECT_GT(curve.mean_label_cost.back(), 0.0);
    if (!have_reference) {
      reference = curve;
      have_reference = true;
      continue;
    }
    for (size_t i = 0; i < reference.mean_round_trips.size(); ++i) {
      EXPECT_EQ(curve.mean_round_trips[i], reference.mean_round_trips[i])
          << "threads=" << threads << " checkpoint " << i;
      EXPECT_EQ(curve.mean_simulated_seconds[i],
                reference.mean_simulated_seconds[i]);
      EXPECT_EQ(curve.mean_label_cost[i], reference.mean_label_cost[i]);
    }
  }
}

TEST(RemoteOracleRunnerTest, SharedLabelsCutCostWithoutChangingCurves) {
  const testutil::SyntheticPool pool = testutil::MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  const double true_f = pool.true_measures.f_alpha;
  const experiments::MethodSpec method = experiments::MakePassiveSpec(0.5);

  experiments::RunnerOptions unshared = BaseRunnerOptions();
  unshared.num_threads = 2;
  unshared.remote_oracle = NoJitterOptions();
  const experiments::ErrorCurve curve_unshared =
      experiments::RunErrorCurve(method, pool.scored, oracle, true_f, unshared)
          .ValueOrDie();

  experiments::RunnerOptions shared = unshared;
  shared.remote_share_labels = true;
  const experiments::ErrorCurve curve_shared =
      experiments::RunErrorCurve(method, pool.scored, oracle, true_f, shared)
          .ValueOrDie();

  ASSERT_EQ(curve_shared.budgets, curve_unshared.budgets);
  for (size_t i = 0; i < curve_unshared.budgets.size(); ++i) {
    // Error statistics never move: the store only changes who pays.
    EXPECT_EQ(curve_shared.mean_abs_error[i], curve_unshared.mean_abs_error[i]);
    EXPECT_EQ(curve_shared.mean_estimate[i], curve_unshared.mean_estimate[i]);
    // Costs can only drop when fetches are shared.
    EXPECT_LE(curve_shared.mean_label_cost[i], curve_unshared.mean_label_cost[i]);
    EXPECT_LE(curve_shared.mean_round_trips[i], curve_unshared.mean_round_trips[i]);
  }
  // And on an overlapping workload they must actually drop by the end.
  EXPECT_LT(curve_shared.mean_label_cost.back(),
            curve_unshared.mean_label_cost.back());
}

}  // namespace
}  // namespace oasis
