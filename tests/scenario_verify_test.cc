// End-to-end statistical self-verification: RunScenario on known-truth pools
// must produce summaries that pass every VerifyRun check, the empirical CI
// coverage must sit near its nominal level, and — the teeth of the harness —
// a deliberately broken estimator or a tampered summary file must FAIL.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "datagen/scenario.h"
#include "experiments/scenario_run.h"
#include "experiments/summary.h"
#include "experiments/verify.h"
#include "stats/running_stats.h"

namespace oasis {
namespace experiments {
namespace {

using datagen::GenerateScenario;
using datagen::ScenarioByName;
using datagen::ScenarioPool;

const VerifyCheck* FindCheck(const VerifyReport& report,
                             const std::string& name) {
  for (const VerifyCheck& check : report.checks) {
    if (check.name == name) return &check;
  }
  return nullptr;
}

ScenarioRunResult RunPreset(const std::string& scenario,
                            const std::string& method, int64_t budget,
                            int repeats) {
  const ScenarioPool pool =
      GenerateScenario(ScenarioByName(scenario).ValueOrDie()).ValueOrDie();
  ScenarioRunOptions options;
  options.method = method;
  options.budget = budget;
  options.checkpoint_every = budget >= 500 ? 100 : 50;
  options.repeats = repeats;
  options.seed = 7;
  return RunScenario(pool, options).ValueOrDie();
}

/// Rebuilds the summary's aggregate fields from its per-repeat estimates with
/// the runner's arithmetic — used after the tests tamper with the estimates
/// so that only the *statistical* checks can object, not the file audit.
void RecomputeAggregates(RunSummary* summary) {
  RunningStats estimates;
  RunningStats errors;
  int64_t defined = 0;
  for (size_t r = 0; r < summary->final_estimates.size(); ++r) {
    if (summary->final_defined[r] == 0) continue;
    estimates.Add(summary->final_estimates[r]);
    errors.Add(std::abs(summary->final_estimates[r] - summary->true_f));
    ++defined;
  }
  summary->final_mean_estimate = estimates.mean();
  summary->final_stddev = estimates.stddev();
  summary->final_mean_abs_error = errors.mean();
  summary->final_frac_defined =
      static_cast<double>(defined) / static_cast<double>(summary->repeats);
}

TEST(ScenarioVerifyTest, GoodRunPassesEveryCheck) {
  const ScenarioRunResult result = RunPreset("stripe-f90", "oasis", 1000, 15);
  const VerifyReport report =
      VerifyRun(result.summary, &result.curve, VerifyOptions{}).ValueOrDie();
  EXPECT_TRUE(report.passed) << report.Render();
  // All six checks ran (the curve was supplied and OASIS is monitored).
  for (const char* name :
       {"aggregate-consistency", "estimate-defined", "estimate-tolerance",
        "ci-coverage", "error-decay", "degeneracy-flag"}) {
    const VerifyCheck* check = FindCheck(report, name);
    ASSERT_NE(check, nullptr) << name;
    EXPECT_TRUE(check->passed) << check->name << ": " << check->detail;
  }
}

TEST(ScenarioVerifyTest, CiCoverageNearNominalAcrossRepeats) {
  // More repeats than the CI smoke runs use, so the empirical coverage of
  // the nominal 95% interval is meaningfully resolved. The band [0.80, 1.0]
  // sits ~3 binomial sigmas below nominal at this repeat count.
  const ScenarioRunResult result = RunPreset("stripe-f50", "oasis", 800, 30);
  ASSERT_EQ(result.summary.final_estimates.size(), 30u);
  const VerifyReport report =
      VerifyRun(result.summary, &result.curve, VerifyOptions{}).ValueOrDie();
  const VerifyCheck* coverage = FindCheck(report, "ci-coverage");
  ASSERT_NE(coverage, nullptr);
  EXPECT_TRUE(coverage->passed) << coverage->detail;
  // The check must have actually measured coverage, not skipped for lack of
  // defined repeats.
  EXPECT_EQ(coverage->detail.find("skipped"), std::string::npos)
      << coverage->detail;
}

TEST(ScenarioVerifyTest, BiasedEstimatorFailsEstimateTolerance) {
  // Simulate an estimator with a systematic bias of three tolerance widths:
  // every per-repeat estimate shifts, and the aggregates are recomputed so
  // the file is internally consistent — only the statistics can catch it.
  ScenarioRunResult result = RunPreset("stripe-f90", "oasis", 1000, 15);
  RunSummary broken = result.summary;
  const double shift = 3.0 * broken.verify_tolerance;
  for (double& estimate : broken.final_estimates) estimate += shift;
  RecomputeAggregates(&broken);

  const VerifyReport report =
      VerifyRun(broken, &result.curve, VerifyOptions{}).ValueOrDie();
  EXPECT_FALSE(report.passed);
  EXPECT_TRUE(FindCheck(report, "aggregate-consistency")->passed)
      << "the tampering above must be invisible to the file audit";
  EXPECT_FALSE(FindCheck(report, "estimate-tolerance")->passed)
      << report.Render();
}

TEST(ScenarioVerifyTest, OverdispersedEstimatorFailsCoverage) {
  // A broken estimator whose spread is far wider than its reported interval:
  // inflate deviations from the truth 20x but keep sigma-hat... impossible
  // to fake — sigma-hat is recomputed from the estimates themselves, so
  // instead plant a heavy-tailed pattern: most repeats exact, a few wild.
  // The normal-interval coverage then collapses below the band.
  ScenarioRunResult result = RunPreset("stripe-f90", "oasis", 1000, 15);
  RunSummary broken = result.summary;
  for (size_t r = 0; r < broken.final_estimates.size(); ++r) {
    // 4 of 15 repeats land far outside; the rest sit exactly on the truth.
    broken.final_estimates[r] =
        (r % 4 == 0) ? broken.true_f + 0.4 : broken.true_f;
    broken.final_defined[r] = 1;
  }
  RecomputeAggregates(&broken);
  const VerifyReport report =
      VerifyRun(broken, nullptr, VerifyOptions{}).ValueOrDie();
  EXPECT_FALSE(report.passed);
  EXPECT_FALSE(FindCheck(report, "ci-coverage")->passed) << report.Render();
}

TEST(ScenarioVerifyTest, TamperedAggregatesFailTheFileAudit) {
  ScenarioRunResult result = RunPreset("stripe-f90", "oasis", 1000, 15);
  RunSummary tampered = result.summary;
  // Hand-edit one raw estimate without refreshing the aggregates — the
  // signature of a truncated or manually doctored summary file.
  tampered.final_estimates[0] += 0.05;
  const VerifyReport report =
      VerifyRun(tampered, nullptr, VerifyOptions{}).ValueOrDie();
  EXPECT_FALSE(report.passed);
  EXPECT_FALSE(FindCheck(report, "aggregate-consistency")->passed);
}

TEST(ScenarioVerifyTest, SummaryWithoutRepeatEstimatesIsAnError) {
  ScenarioRunResult result = RunPreset("stripe-f90", "oasis", 500, 5);
  RunSummary truncated = result.summary;
  truncated.final_estimates.resize(3);
  EXPECT_FALSE(VerifyRun(truncated, nullptr, VerifyOptions{}).ok());
  RunSummary empty = result.summary;
  empty.repeats = 0;
  empty.final_estimates.clear();
  empty.final_defined.clear();
  EXPECT_FALSE(VerifyRun(empty, nullptr, VerifyOptions{}).ok());
}

TEST(ScenarioVerifyTest, StalledErrorCurveFailsDecay) {
  ScenarioRunResult result = RunPreset("stripe-f90", "oasis", 1000, 15);
  ErrorCurve stalled = result.curve;
  // An estimator whose error *grows* with budget: force the final
  // checkpoint far above the banded first checkpoint.
  stalled.mean_abs_error.back() =
      stalled.mean_abs_error.front() * 2.0 + 0.05;
  const VerifyReport report =
      VerifyRun(result.summary, &stalled, VerifyOptions{}).ValueOrDie();
  EXPECT_FALSE(report.passed);
  EXPECT_FALSE(FindCheck(report, "error-decay")->passed);
}

/// Runs a scenario at pool scale through the real config surface: a 400k-item
/// pool stratified to K = 100k by CSF, stepped by one of the sub-linear
/// backends. This is the end-to-end route of the large-K tier — the same
/// RunScenario call the apps make, not a hand-built sampler.
ScenarioRunResult RunPoolScale(const std::string& scenario,
                               const std::string& step_path, int64_t budget,
                               int repeats) {
  datagen::ScenarioSpec spec = ScenarioByName(scenario).ValueOrDie();
  spec.pool_size = 400000;
  const ScenarioPool pool = GenerateScenario(spec).ValueOrDie();
  ScenarioRunOptions options;
  options.method = "oasis";
  options.budget = budget;
  options.checkpoint_every = 500;
  options.repeats = repeats;
  options.seed = 7;
  options.target_strata = 100000;
  options.step_path = step_path;
  return RunScenario(pool, options).ValueOrDie();
}

TEST(ScenarioVerifyTest, PoolScaleSweepPassesEveryCheckOnBothSubLinearPaths) {
  // K = 100k catalogue sweep: with four items per stratum and budget << K
  // the epsilon mix carries consistency, and the full verification battery
  // (including CI coverage and error decay) must still come out green for
  // both sub-linear step paths.
  for (const char* scenario : {"stripe-f90", "imbalance-1e3"}) {
    for (const char* step_path : {"fenwick", "alias"}) {
      const ScenarioRunResult result =
          RunPoolScale(scenario, step_path, 6000, 20);
      const VerifyReport report =
          VerifyRun(result.summary, &result.curve, VerifyOptions{})
              .ValueOrDie();
      EXPECT_TRUE(report.passed)
          << scenario << "/" << step_path << "\n" << report.Render();
      for (const char* name :
           {"aggregate-consistency", "estimate-defined", "estimate-tolerance",
            "ci-coverage", "error-decay", "degeneracy-flag"}) {
        const VerifyCheck* check = FindCheck(report, name);
        ASSERT_NE(check, nullptr) << scenario << "/" << step_path << " " << name;
        EXPECT_TRUE(check->passed) << scenario << "/" << step_path << " "
                                   << check->name << ": " << check->detail;
      }
    }
  }
}

TEST(ScenarioVerifyTest, PoolScaleAdaptiveRunOnTheBreakerIsRejected) {
  // The sis-inversion breaker at K = 100k: with budget << K the posterior
  // never accumulates enough labels per stratum to adapt away from the score
  // lie, so even the ADAPTIVE sampler's monitor trips — and the verification
  // harness must refuse to bless the run (degeneracy-flag expects adaptive
  // runs to stay healthy). This is the harness catching a real
  // misconfiguration: pool-scale K needs a budget to match, or a coarser
  // stratification (the K = 30 runs on this same preset pass).
  const ScenarioRunResult result =
      RunPoolScale("sis-inversion", "alias", 2500, 5);
  ASSERT_TRUE(result.summary.degeneracy_monitored);
  EXPECT_TRUE(result.summary.degeneracy_tripped)
      << "ess_fraction=" << result.summary.final_ess_fraction;
  const VerifyReport report =
      VerifyRun(result.summary, nullptr, VerifyOptions{}).ValueOrDie();
  EXPECT_FALSE(report.passed);
  const VerifyCheck* flag = FindCheck(report, "degeneracy-flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_FALSE(flag->passed) << flag->detail;
}

TEST(ScenarioVerifyTest, UnknownStepPathIsRejectedByValidation) {
  ScenarioRunOptions options;
  options.step_path = "treap";
  EXPECT_FALSE(options.Validate().ok());
  options.step_path = "sharded-fenwick";
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ScenarioVerifyTest, StaticImportanceMustTripOnTheSisBreaker) {
  // The adversarial score-inversion pool exists to degenerate a static
  // score-driven proposal: the IS run's monitor must trip, and the
  // degeneracy-flag check must treat "tripped" as the PASSING outcome.
  const ScenarioRunResult result = RunPreset("sis-inversion", "is", 2000, 5);
  ASSERT_TRUE(result.summary.degeneracy_monitored);
  EXPECT_TRUE(result.summary.expect_sis_degeneracy);
  EXPECT_TRUE(result.summary.degeneracy_tripped)
      << "ess_fraction=" << result.summary.final_ess_fraction;
  const VerifyReport report =
      VerifyRun(result.summary, nullptr, VerifyOptions{}).ValueOrDie();
  const VerifyCheck* flag = FindCheck(report, "degeneracy-flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->passed) << flag->detail;

  // A hypothetical IS sampler that sailed through the trap unflagged would
  // FAIL the check — silence on this pool means the monitor is broken.
  RunSummary silent = result.summary;
  silent.degeneracy_tripped = false;
  const VerifyReport silent_report =
      VerifyRun(silent, nullptr, VerifyOptions{}).ValueOrDie();
  EXPECT_FALSE(FindCheck(silent_report, "degeneracy-flag")->passed);
}

TEST(ScenarioVerifyTest, AdaptiveSamplerStaysHealthyOnTheSisBreaker) {
  const ScenarioRunResult result =
      RunPreset("sis-inversion", "oasis", 2000, 15);
  ASSERT_TRUE(result.summary.degeneracy_monitored);
  EXPECT_FALSE(result.summary.degeneracy_tripped)
      << "ess_fraction=" << result.summary.final_ess_fraction;
  const VerifyReport report =
      VerifyRun(result.summary, &result.curve, VerifyOptions{}).ValueOrDie();
  EXPECT_TRUE(report.passed) << report.Render();
}

TEST(ScenarioVerifyTest, BoundaryTruthPoolsExemptTheHealthDirection) {
  // On the no-match pool (F = 0 exactly) even the adaptive sampler's weight
  // spread legitimately explodes while its estimate pins the boundary; the
  // degeneracy-flag check must skip rather than fail there.
  const ScenarioRunResult result = RunPreset("no-match", "oasis", 500, 5);
  const VerifyReport report =
      VerifyRun(result.summary, nullptr, VerifyOptions{}).ValueOrDie();
  const VerifyCheck* flag = FindCheck(report, "degeneracy-flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->passed) << flag->detail;
  EXPECT_NE(flag->detail.find("boundary-truth"), std::string::npos)
      << flag->detail;
}

TEST(ScenarioVerifyTest, UnmonitoredMethodsSkipTheDegeneracyCheck) {
  const ScenarioRunResult result =
      RunPreset("stripe-f90", "passive", 1000, 15);
  EXPECT_FALSE(result.summary.degeneracy_monitored);
  const VerifyReport report =
      VerifyRun(result.summary, &result.curve, VerifyOptions{}).ValueOrDie();
  EXPECT_TRUE(report.passed) << report.Render();
  EXPECT_EQ(FindCheck(report, "degeneracy-flag"), nullptr);
}

TEST(ScenarioVerifyTest, ToleranceOverrideTightensTheBand) {
  const ScenarioRunResult result = RunPreset("stripe-f90", "oasis", 1000, 15);
  VerifyOptions strict;
  strict.tolerance_override = 1e-9;  // nothing stochastic passes this
  const VerifyReport report =
      VerifyRun(result.summary, nullptr, strict).ValueOrDie();
  EXPECT_FALSE(FindCheck(report, "estimate-tolerance")->passed);
}

TEST(ScenarioVerifyTest, SummarySurvivesTheJsonRoundTripVerbatim) {
  // The verifier normally reads the summary back from disk; the round trip
  // must preserve verification verdicts bit-for-bit.
  const ScenarioRunResult result = RunPreset("noisy-flip05", "oasis", 800, 12);
  const RunSummary parsed =
      ParseRunSummaryJson(RunSummaryToJson(result.summary)).ValueOrDie();
  const VerifyReport direct =
      VerifyRun(result.summary, nullptr, VerifyOptions{}).ValueOrDie();
  const VerifyReport reparsed =
      VerifyRun(parsed, nullptr, VerifyOptions{}).ValueOrDie();
  EXPECT_EQ(direct.passed, reparsed.passed);
  ASSERT_EQ(direct.checks.size(), reparsed.checks.size());
  for (size_t i = 0; i < direct.checks.size(); ++i) {
    EXPECT_EQ(direct.checks[i].passed, reparsed.checks[i].passed)
        << direct.checks[i].name;
    EXPECT_EQ(direct.checks[i].detail, reparsed.checks[i].detail)
        << direct.checks[i].name;
  }
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
