#include "oracle/async_label_pipeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "oracle/fault_injecting_oracle.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "oracle/noisy_oracle.h"
#include "oracle/remote_oracle.h"
#include "oracle/oracle_stack.h"
#include "oracle/retry_policy.h"
#include "sampling/importance.h"
#include "sampling/passive.h"
#include "sampling/stratified.h"
#include "sampling/trajectory.h"
#include "strata/csf.h"
#include "tests/test_util.h"

namespace oasis {
namespace {

// ---------------------------------------------------------------------------
// Pipeline unit semantics.
// ---------------------------------------------------------------------------

TEST(AsyncLabelPipelineTest, ResolvesABatchAsynchronously) {
  GroundTruthOracle oracle({1, 0, 1, 0, 1});
  LabelCache cache(&oracle);
  ThreadPool pool(2);
  AsyncLabelPipeline pipeline(&cache, &pool);
  EXPECT_FALSE(pipeline.in_flight());

  const std::vector<int64_t> items = {0, 1, 2, 3, 4};
  std::vector<uint8_t> out(items.size(), 255);
  Rng rng(1);
  ASSERT_TRUE(pipeline.Prefetch(items, &rng, out).ok());
  EXPECT_TRUE(pipeline.in_flight());
  ASSERT_TRUE(pipeline.Collect().ok());
  EXPECT_FALSE(pipeline.in_flight());
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 0, 1, 0, 1}));
  EXPECT_EQ(cache.labels_consumed(), 5);
}

TEST(AsyncLabelPipelineTest, EnforcesDepthOneProtocol) {
  GroundTruthOracle oracle({1, 0});
  LabelCache cache(&oracle);
  ThreadPool pool(1);
  AsyncLabelPipeline pipeline(&cache, &pool);

  // Collect with nothing in flight fails.
  EXPECT_EQ(pipeline.Collect().code(), StatusCode::kFailedPrecondition);

  const std::vector<int64_t> items = {0, 1};
  std::vector<uint8_t> out(2);
  Rng rng(1);
  ASSERT_TRUE(pipeline.Prefetch(items, &rng, out).ok());
  // A second prefetch before Collect fails and leaves the first in flight.
  EXPECT_EQ(pipeline.Prefetch(items, &rng, out).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(pipeline.in_flight());
  EXPECT_TRUE(pipeline.Collect().ok());
}

TEST(AsyncLabelPipelineTest, PropagatesQueryBatchStatus) {
  GroundTruthOracle oracle({1, 0, 1});
  LabelCache cache(&oracle);
  ThreadPool pool(1);
  AsyncLabelPipeline pipeline(&cache, &pool);

  // Mismatched spans make QueryBatch fail on the worker; Collect returns it.
  const std::vector<int64_t> items = {0, 1, 2};
  std::vector<uint8_t> out(2);
  Rng rng(1);
  ASSERT_TRUE(
      pipeline.Prefetch(items, &rng, std::span<uint8_t>(out.data(), 2)).ok());
  EXPECT_EQ(pipeline.Collect().code(), StatusCode::kInvalidArgument);
}

TEST(AsyncLabelPipelineTest, RejectsRngConsumingOracles) {
  NoisyOracle oracle = NoisyOracle::FromProbabilities({0.5, 0.5}).ValueOrDie();
  LabelCache cache(&oracle);
  ThreadPool pool(1);
  AsyncLabelPipeline pipeline(&cache, &pool);

  const std::vector<int64_t> items = {0, 1};
  std::vector<uint8_t> out(2);
  Rng rng(1);
  const Status status = pipeline.Prefetch(items, &rng, out);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(pipeline.in_flight());
}

TEST(AsyncLabelPipelineTest, DestructorDrainsInFlightBatch) {
  GroundTruthOracle oracle(std::vector<uint8_t>(2048, 1));
  LabelCache cache(&oracle);
  ThreadPool pool(2);
  std::vector<int64_t> items(2048);
  for (int64_t i = 0; i < 2048; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<uint8_t> out(items.size());
  Rng rng(1);
  {
    AsyncLabelPipeline pipeline(&cache, &pool);
    ASSERT_TRUE(pipeline.Prefetch(items, &rng, out).ok());
    // Destroyed while in flight: must block until the worker is done with
    // the buffers (ASan would catch a use-after-scope otherwise).
  }
  EXPECT_EQ(cache.labels_consumed(), 2048);
}

TEST(AsyncLabelPipelineTest, FailingPrefetchPropagatesOracleStatus) {
  // A fallible stack that fails every attempt: the worker's QueryBatch fails
  // and Collect surfaces the oracle's status — with the cache's accounting
  // fully rolled back (no pending markers, nothing charged).
  GroundTruthOracle inner({1, 0, 1, 0});
  FaultInjectionOptions faults;
  faults.transient_failure_rate = 1.0;
  FaultInjectingOracle oracle(&inner, faults);
  LabelCache cache(&oracle);
  ThreadPool pool(1);
  AsyncLabelPipeline pipeline(&cache, &pool);

  const std::vector<int64_t> items = {0, 1, 2, 3};
  std::vector<uint8_t> out(items.size());
  Rng rng(1);
  ASSERT_TRUE(pipeline.Prefetch(items, &rng, out).ok());
  EXPECT_EQ(pipeline.Collect().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(pipeline.in_flight());
  EXPECT_EQ(cache.labels_consumed(), 0);
  for (int64_t item : items) EXPECT_FALSE(cache.IsLabelled(item));

  // The pipeline stays usable: a later prefetch over a recovered service
  // (retry wrapper over the same chaos) succeeds with exact accounting.
  RetryPolicy policy;
  policy.max_attempts = 3;
  FaultInjectionOptions calm;  // Zero rates: retries unnecessary but armed.
  const OracleStack stack = OracleStackBuilder()
                                .FaultInjection(calm)
                                .Retry(policy)
                                .Build(&inner)
                                .ValueOrDie();
  LabelCache retry_cache(&stack.top());
  AsyncLabelPipeline retry_pipeline(&retry_cache, &pool);
  ASSERT_TRUE(retry_pipeline.Prefetch(items, &rng, out).ok());
  ASSERT_TRUE(retry_pipeline.Collect().ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 0, 1, 0}));
  EXPECT_EQ(retry_cache.labels_consumed(), 4);
}

TEST(AsyncLabelPipelineTest, FailingPrefetchDoesNotDeadlockDestructorDrain) {
  GroundTruthOracle inner(std::vector<uint8_t>(1024, 1));
  FaultInjectionOptions faults;
  faults.transient_failure_rate = 1.0;
  FaultInjectingOracle oracle(&inner, faults);
  LabelCache cache(&oracle);
  ThreadPool pool(2);
  std::vector<int64_t> items(1024);
  for (int64_t i = 0; i < 1024; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<uint8_t> out(items.size());
  Rng rng(1);
  {
    AsyncLabelPipeline pipeline(&cache, &pool);
    ASSERT_TRUE(pipeline.Prefetch(items, &rng, out).ok());
    // Destroyed with a FAILING batch in flight: the drain must still join
    // the worker (and swallow the failure status) rather than deadlock or
    // leave it touching the dead buffers.
  }
  EXPECT_EQ(cache.labels_consumed(), 0);
}

// ---------------------------------------------------------------------------
// Exact sequential equivalence of prefetched static-sampler trajectories.
// ---------------------------------------------------------------------------

struct SamplerRun {
  Trajectory trajectory;
  int64_t labels_consumed = 0;
  int64_t iterations = 0;
  EstimateSnapshot final_estimate;
};

/// Builds the named sampler over a fresh LabelCache and runs one trajectory,
/// optionally with label prefetching on `prefetch_pool`.
SamplerRun RunOne(const std::string& kind, const testutil::SyntheticPool& pool,
                  const Oracle& oracle, ThreadPool* prefetch_pool) {
  LabelCache labels(&oracle);
  std::unique_ptr<Sampler> sampler;
  if (kind == "passive") {
    sampler = PassiveSampler::Create(&pool.scored, &labels, 0.5, Rng(42))
                  .ValueOrDie();
  } else if (kind == "importance") {
    sampler = ImportanceSampler::Create(&pool.scored, &labels,
                                        ImportanceOptions{}, Rng(42))
                  .ValueOrDie();
  } else {
    auto strata = std::make_shared<const Strata>(
        StratifyCsf(pool.scored.scores, 10).ValueOrDie());
    sampler = StratifiedSampler::Create(&pool.scored, &labels, strata, 0.5,
                                        Rng(42))
                  .ValueOrDie();
  }
  if (prefetch_pool != nullptr) sampler->SetPrefetchPool(prefetch_pool);

  TrajectoryOptions options;
  // A budget spanning several kQueryBatchChunk-sized chunks per StepBatch so
  // the pipelined path really engages.
  options.budget = 1500;
  options.checkpoint_every = 1500;
  SamplerRun run;
  run.trajectory = RunTrajectory(*sampler, options).ValueOrDie();
  run.labels_consumed = sampler->labels_consumed();
  run.iterations = sampler->iterations();
  run.final_estimate = sampler->Estimate();
  return run;
}

TEST(AsyncLabelPipelineTest, PrefetchedTrajectoriesAreBitIdentical) {
  const testutil::SyntheticPool pool =
      testutil::MakeSyntheticPool({.size = 4000, .seed = 77});
  GroundTruthOracle oracle(pool.truth);

  for (const std::string kind : {"passive", "importance", "stratified"}) {
    const SamplerRun reference = RunOne(kind, pool, oracle, nullptr);
    for (int threads : {1, 2, 8}) {
      ThreadPool prefetch_pool(threads);
      const SamplerRun run = RunOne(kind, pool, oracle, &prefetch_pool);
      EXPECT_EQ(run.labels_consumed, reference.labels_consumed)
          << kind << " threads=" << threads;
      EXPECT_EQ(run.iterations, reference.iterations);
      ASSERT_EQ(run.trajectory.snapshots.size(),
                reference.trajectory.snapshots.size());
      for (size_t i = 0; i < reference.trajectory.snapshots.size(); ++i) {
        EXPECT_EQ(run.trajectory.snapshots[i].f_alpha,
                  reference.trajectory.snapshots[i].f_alpha)
            << kind << " threads=" << threads << " checkpoint " << i;
      }
      EXPECT_EQ(run.final_estimate.f_alpha, reference.final_estimate.f_alpha);
      EXPECT_EQ(run.final_estimate.precision, reference.final_estimate.precision);
      EXPECT_EQ(run.final_estimate.recall, reference.final_estimate.recall);
    }
  }
}

TEST(AsyncLabelPipelineTest, PrefetchOverARemoteOracleKeepsAccountingExact) {
  const testutil::SyntheticPool pool =
      testutil::MakeSyntheticPool({.size = 3000, .seed = 5});
  GroundTruthOracle inner(pool.truth);
  RemoteOracleOptions options;
  options.round_trip_seconds = 10.0;
  options.per_item_seconds = 1.0;
  options.cost_per_label = 0.1;
  options.jitter_fraction = 0.0;

  RemoteOracle unprefetched(&inner, options);
  const SamplerRun reference = RunOne("importance", pool, unprefetched, nullptr);

  ThreadPool prefetch_pool(2);
  RemoteOracle prefetched(&inner, options);
  const SamplerRun run = RunOne("importance", pool, prefetched, &prefetch_pool);

  // Identical labels AND identical wire accounting: prefetching overlaps the
  // round trips with tallying, it never changes what is fetched.
  EXPECT_EQ(run.labels_consumed, reference.labels_consumed);
  const RemoteOracleStats a = unprefetched.stats();
  const RemoteOracleStats b = prefetched.stats();
  EXPECT_EQ(b.queries, a.queries);
  EXPECT_EQ(b.round_trips, a.round_trips);
  EXPECT_EQ(b.labels_fetched, a.labels_fetched);
  EXPECT_EQ(b.simulated_latency_ns, a.simulated_latency_ns);
  ASSERT_TRUE(run.trajectory.has_remote_stats);
  ASSERT_TRUE(reference.trajectory.has_remote_stats);
  EXPECT_EQ(run.trajectory.remote_round_trips,
            reference.trajectory.remote_round_trips);
}

TEST(AsyncLabelPipelineTest, PrefetchPoolIsIgnoredWhenBatchingIsUnsound) {
  // A noisy oracle consumes RNG: samplers must fall back to the exact
  // sequential loop even with a prefetch pool set.
  const testutil::SyntheticPool pool =
      testutil::MakeSyntheticPool({.size = 1000, .seed = 9});
  NoisyOracle oracle =
      NoisyOracle::FromTruthWithFlipNoise(pool.truth, 0.1).ValueOrDie();

  const SamplerRun reference = RunOne("passive", pool, oracle, nullptr);
  ThreadPool prefetch_pool(4);
  const SamplerRun run = RunOne("passive", pool, oracle, &prefetch_pool);
  EXPECT_EQ(run.final_estimate.f_alpha, reference.final_estimate.f_alpha);
  EXPECT_EQ(run.labels_consumed, reference.labels_consumed);
  EXPECT_EQ(run.iterations, reference.iterations);
}

}  // namespace
}  // namespace oasis
