#include "experiments/runner.h"

#include <gtest/gtest.h>

#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace experiments {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

SyntheticPool MediumPool() {
  SyntheticPoolOptions options;
  options.size = 2000;
  options.match_fraction = 0.05;
  options.seed = 101;
  return MakeSyntheticPool(options);
}

TEST(RunnerTest, RejectsBadOptions) {
  SyntheticPool pool = MediumPool();
  GroundTruthOracle oracle(pool.truth);
  RunnerOptions options;
  options.repeats = 0;
  EXPECT_FALSE(RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                             pool.true_measures.f_alpha, options)
                   .ok());
  options.repeats = 2;
  options.trajectory.budget = 5;
  options.trajectory.checkpoint_every = 10;  // No checkpoint fits.
  EXPECT_FALSE(RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                             pool.true_measures.f_alpha, options)
                   .ok());
}

TEST(RunnerTest, CurveShapeMatchesOptions) {
  SyntheticPool pool = MediumPool();
  GroundTruthOracle oracle(pool.truth);
  RunnerOptions options;
  options.repeats = 8;
  options.trajectory.budget = 200;
  options.trajectory.checkpoint_every = 50;
  ErrorCurve curve = RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                                   pool.true_measures.f_alpha, options)
                         .ValueOrDie();
  EXPECT_EQ(curve.method, "Passive");
  EXPECT_EQ(curve.repeats, 8);
  ASSERT_EQ(curve.budgets.size(), 4u);
  EXPECT_EQ(curve.budgets.back(), 200);
  EXPECT_EQ(curve.mean_abs_error.size(), 4u);
  EXPECT_EQ(curve.stddev.size(), 4u);
  EXPECT_EQ(curve.frac_defined.size(), 4u);
}

TEST(RunnerTest, ErrorShrinksWithBudget) {
  SyntheticPool pool = MediumPool();
  GroundTruthOracle oracle(pool.truth);
  RunnerOptions options;
  options.repeats = 24;
  options.trajectory.budget = 1500;
  options.trajectory.checkpoint_every = 100;
  ErrorCurve curve = RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                                   pool.true_measures.f_alpha, options)
                         .ValueOrDie();
  // Early error (first defined checkpoint) should exceed the final error.
  ASSERT_GT(curve.mean_abs_error.size(), 2u);
  double first_defined = -1.0;
  for (size_t i = 0; i < curve.budgets.size(); ++i) {
    if (curve.frac_defined[i] >= 0.95) {
      first_defined = curve.mean_abs_error[i];
      break;
    }
  }
  ASSERT_GE(first_defined, 0.0);
  EXPECT_LT(curve.mean_abs_error.back(), first_defined + 1e-12);
}

TEST(RunnerTest, DeterministicAcrossThreadCounts) {
  // Same base seed must yield identical aggregates whether run on one
  // thread or many (per-repeat RNG streams are scheduling-independent).
  SyntheticPool pool = MediumPool();
  GroundTruthOracle oracle(pool.truth);
  RunnerOptions options;
  options.repeats = 10;
  options.trajectory.budget = 300;
  options.trajectory.checkpoint_every = 100;
  options.base_seed = 777;

  options.num_threads = 1;
  ErrorCurve serial = RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                                    pool.true_measures.f_alpha, options)
                          .ValueOrDie();
  options.num_threads = 4;
  ErrorCurve parallel = RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                                      pool.true_measures.f_alpha, options)
                            .ValueOrDie();
  ASSERT_EQ(serial.budgets.size(), parallel.budgets.size());
  for (size_t i = 0; i < serial.budgets.size(); ++i) {
    EXPECT_NEAR(serial.mean_abs_error[i], parallel.mean_abs_error[i], 1e-12);
    EXPECT_NEAR(serial.stddev[i], parallel.stddev[i], 1e-12);
  }
}

TEST(RunnerTest, OasisSpecOutperformsPassiveOnImbalancedPool) {
  SyntheticPoolOptions pool_options;
  pool_options.size = 6000;
  pool_options.match_fraction = 0.01;
  pool_options.seed = 103;
  SyntheticPool pool = MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);

  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 20).ValueOrDie());

  RunnerOptions options;
  options.repeats = 16;
  options.trajectory.budget = 400;
  options.trajectory.checkpoint_every = 400;

  ErrorCurve oasis = RunErrorCurve(MakeOasisSpec(OasisOptions{}, strata),
                                   pool.scored, oracle,
                                   pool.true_measures.f_alpha, options)
                         .ValueOrDie();
  ErrorCurve passive = RunErrorCurve(MakePassiveSpec(0.5), pool.scored, oracle,
                                     pool.true_measures.f_alpha, options)
                           .ValueOrDie();
  ASSERT_EQ(oasis.frac_defined.back(), 1.0);
  // Passive may not even have defined estimates everywhere; when it does,
  // OASIS error should be smaller at this budget under 1:100 imbalance.
  if (passive.frac_defined.back() > 0.9) {
    EXPECT_LT(oasis.mean_abs_error.back(), passive.mean_abs_error.back());
  }
}

TEST(RunnerTest, AllFourMethodSpecsRun) {
  SyntheticPool pool = MediumPool();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 10).ValueOrDie());

  RunnerOptions options;
  options.repeats = 3;
  options.trajectory.budget = 150;
  options.trajectory.checkpoint_every = 150;

  for (const MethodSpec& spec :
       {MakePassiveSpec(0.5), MakeStratifiedSpec(0.5, strata),
        MakeImportanceSpec(ImportanceOptions{}),
        MakeOasisSpec(OasisOptions{}, strata)}) {
    ErrorCurve curve = RunErrorCurve(spec, pool.scored, oracle,
                                     pool.true_measures.f_alpha, options)
                           .ValueOrDie();
    EXPECT_EQ(curve.repeats, 3) << spec.name;
  }
}

TEST(RunnerTest, FinalErrorSummary) {
  SyntheticPool pool = MediumPool();
  GroundTruthOracle oracle(pool.truth);
  RunnerOptions options;
  options.repeats = 12;
  options.trajectory.budget = 500;
  options.trajectory.checkpoint_every = 100;
  FinalErrorSummary summary =
      RunFinalError(MakePassiveSpec(0.5), pool.scored, oracle,
                    pool.true_measures.f_alpha, options)
          .ValueOrDie();
  EXPECT_EQ(summary.method, "Passive");
  EXPECT_EQ(summary.repeats, 12);
  EXPECT_GE(summary.mean_abs_error, 0.0);
  EXPECT_GE(summary.ci_half_width, 0.0);
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
