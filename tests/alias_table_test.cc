#include "common/alias_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace oasis {
namespace {

TEST(AliasTableTest, RejectsEmptyWeights) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
}

TEST(AliasTableTest, RejectsNegativeWeight) {
  const std::vector<double> weights{1.0, -0.5};
  EXPECT_FALSE(AliasTable::Build(weights).ok());
}

TEST(AliasTableTest, RejectsNaNWeight) {
  const std::vector<double> weights{1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(AliasTable::Build(weights).ok());
}

TEST(AliasTableTest, RejectsAllZeroWeights) {
  const std::vector<double> weights{0.0, 0.0, 0.0};
  EXPECT_FALSE(AliasTable::Build(weights).ok());
}

TEST(AliasTableTest, NormalizesProbabilities) {
  const std::vector<double> weights{2.0, 6.0, 2.0};
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  EXPECT_EQ(table.size(), 3u);
  EXPECT_NEAR(table.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(table.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(table.probability(2), 0.2, 1e-12);
}

TEST(AliasTableTest, SingleCategoryAlwaysSampled) {
  const std::vector<double> weights{3.7};
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  Rng rng(99);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), weights[i] / 10.0, 0.008)
        << "category " << i;
  }
}

TEST(AliasTableTest, ZeroWeightCategoryNeverSampled) {
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const size_t draw = table.Sample(rng);
    EXPECT_TRUE(draw == 1 || draw == 3);
  }
}

TEST(AliasTableTest, ExtremeWeightRatio) {
  // One category dominates by 10^9 yet the rare one remains reachable in
  // expectation and probabilities stay exact.
  const std::vector<double> weights{1e-9, 1.0};
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  EXPECT_NEAR(table.probability(0), 1e-9 / (1.0 + 1e-9), 1e-18);
  Rng rng(4);
  int rare = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table.Sample(rng) == 0) ++rare;
  }
  EXPECT_LE(rare, 2);  // ~1e-4 expected draws.
}

TEST(AliasTableTest, LargeUniformTable) {
  std::vector<double> weights(10000, 0.5);
  AliasTable table = AliasTable::Build(weights).ValueOrDie();
  Rng rng(5);
  // Spot-check the range and that many distinct values appear.
  std::vector<uint8_t> seen(10000, 0);
  for (int i = 0; i < 50000; ++i) {
    const size_t draw = table.Sample(rng);
    ASSERT_LT(draw, 10000u);
    seen[draw] = 1;
  }
  int distinct = 0;
  for (uint8_t s : seen) distinct += s;
  EXPECT_GT(distinct, 9500);
}

}  // namespace
}  // namespace oasis
