// Cross-method property sweeps: every sampler in the library must satisfy
// the same contracts — budget accounting, estimate definedness, determinism,
// and convergence to the pool truth — across the F-measure weight alpha and
// pool imbalance. One parameterised suite exercises all of them uniformly.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "core/oasis.h"
#include "datagen/scenario.h"
#include "oracle/ground_truth_oracle.h"
#include "sampling/importance.h"
#include "sampling/oracle_sampler.h"
#include "sampling/passive.h"
#include "sampling/stratified.h"
#include "stats/degeneracy.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

enum class Method { kPassive, kStratified, kImportance, kOasis, kOracleOptimal };

std::string MethodName(Method method) {
  switch (method) {
    case Method::kPassive:
      return "Passive";
    case Method::kStratified:
      return "Stratified";
    case Method::kImportance:
      return "IS";
    case Method::kOasis:
      return "OASIS";
    case Method::kOracleOptimal:
      return "OracleOptimal";
  }
  return "?";
}

Result<std::unique_ptr<Sampler>> MakeSampler(Method method,
                                             const SyntheticPool& pool,
                                             LabelCache* labels, double alpha,
                                             Rng rng) {
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 15).ValueOrDie());
  switch (method) {
    case Method::kPassive: {
      OASIS_ASSIGN_OR_RETURN(auto sampler,
                             PassiveSampler::Create(&pool.scored, labels, alpha,
                                                    rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kStratified: {
      OASIS_ASSIGN_OR_RETURN(
          auto sampler,
          StratifiedSampler::Create(&pool.scored, labels, strata, alpha, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kImportance: {
      ImportanceOptions options;
      options.alpha = alpha;
      OASIS_ASSIGN_OR_RETURN(
          auto sampler,
          ImportanceSampler::Create(&pool.scored, labels, options, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kOasis: {
      OasisOptions options;
      options.alpha = alpha;
      OASIS_ASSIGN_OR_RETURN(auto sampler,
                             OasisSampler::Create(&pool.scored, labels, strata,
                                                  options, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kOracleOptimal: {
      OASIS_ASSIGN_OR_RETURN(
          auto sampler,
          OracleOptimalSampler::Create(&pool.scored, labels, strata, pool.truth,
                                       alpha, 1e-3, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
  }
  return Status::InvalidArgument("unknown method");
}

/// Pool-truth F at a given alpha.
double TrueF(const SyntheticPool& pool, double alpha) {
  double tp = 0, pred = 0, pos = 0;
  for (size_t i = 0; i < pool.truth.size(); ++i) {
    if (pool.truth[i] && pool.scored.predictions[i]) tp += 1;
    if (pool.scored.predictions[i]) pred += 1;
    if (pool.truth[i]) pos += 1;
  }
  const double denom = alpha * pred + (1.0 - alpha) * pos;
  return denom > 0 ? tp / denom : -1.0;
}

class SamplerContractSweep
    : public ::testing::TestWithParam<std::tuple<Method, double /*alpha*/>> {};

TEST_P(SamplerContractSweep, BudgetAccountingAndDeterminism) {
  const auto [method, alpha] = GetParam();
  SyntheticPoolOptions options;
  options.size = 1200;
  options.match_fraction = 0.08;
  options.seed = 640 + static_cast<uint64_t>(alpha * 8);
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);

  double estimates[2];
  for (int run = 0; run < 2; ++run) {
    LabelCache labels(&oracle);
    auto sampler =
        MakeSampler(method, pool, &labels, alpha, Rng(999)).ValueOrDie();
    for (int i = 0; i < 800; ++i) {
      ASSERT_TRUE(sampler->Step().ok()) << MethodName(method);
    }
    // Budget never exceeds the pool size nor the iteration count.
    EXPECT_LE(sampler->labels_consumed(), pool.scored.size());
    EXPECT_LE(sampler->labels_consumed(), sampler->iterations());
    EXPECT_EQ(sampler->iterations(), 800);
    estimates[run] = sampler->Estimate().f_alpha;
  }
  EXPECT_DOUBLE_EQ(estimates[0], estimates[1]) << MethodName(method);
}

TEST_P(SamplerContractSweep, ConvergesToPoolTruth) {
  const auto [method, alpha] = GetParam();
  SyntheticPoolOptions options;
  options.size = 2000;
  options.match_fraction = 0.1;
  options.seed = 7100 + static_cast<uint64_t>(alpha * 4);
  SyntheticPool pool = MakeSyntheticPool(options);
  const double true_f = TrueF(pool, alpha);
  if (true_f < 0) GTEST_SKIP() << "degenerate pool at this alpha";

  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = MakeSampler(method, pool, &labels, alpha, Rng(31)).ValueOrDie();
  // Run a generous iteration count; all methods must approach the truth once
  // (nearly) the whole pool is labelled.
  const int64_t max_iterations = 300000;
  while (labels.labels_consumed() < 1900 &&
         sampler->iterations() < max_iterations) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined) << MethodName(method);
  // Tolerance is loose for alpha extremes where fewer observations inform
  // the estimate, and for samplers that may not exhaust the pool.
  EXPECT_NEAR(snap.f_alpha, true_f, 0.12)
      << MethodName(method) << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByAlpha, SamplerContractSweep,
    ::testing::Combine(::testing::Values(Method::kPassive, Method::kStratified,
                                         Method::kImportance, Method::kOasis,
                                         Method::kOracleOptimal),
                       ::testing::Values(0.0, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<SamplerContractSweep::ParamType>& info) {
      // No structured bindings here: commas inside [] would split the macro
      // arguments.
      const Method method = std::get<0>(info.param);
      const double alpha = std::get<1>(info.param);
      std::string alpha_tag = alpha == 0.0 ? "recall"
                              : alpha == 1.0 ? "precision"
                                             : "balanced";
      return MethodName(method) + "_" + alpha_tag;
    });

/// The estimator contracts must also hold on probability-score pools (the
/// calibrated regime), which exercise the logit-scale CSF path.
class ProbabilityPoolSweep : public ::testing::TestWithParam<Method> {};

TEST_P(ProbabilityPoolSweep, WorksOnProbabilityScores) {
  const Method method = GetParam();
  SyntheticPoolOptions options;
  options.size = 1500;
  options.match_fraction = 0.05;
  options.probability_scores = true;
  options.seed = 911;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = MakeSampler(method, pool, &labels, 0.5, Rng(17)).ValueOrDie();
  while (labels.labels_consumed() < 1200 && sampler->iterations() < 200000) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined) << MethodName(method);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.12)
      << MethodName(method);
}

INSTANTIATE_TEST_SUITE_P(Methods, ProbabilityPoolSweep,
                         ::testing::Values(Method::kPassive, Method::kStratified,
                                           Method::kImportance, Method::kOasis,
                                           Method::kOracleOptimal),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return MethodName(info.param);
                         });

/// MakeSampler for the known-truth adversarial generator pools
/// (datagen/scenario.h) — alpha and truth come from the scenario spec.
Result<std::unique_ptr<Sampler>> MakeScenarioSampler(
    Method method, const datagen::ScenarioPool& pool, LabelCache* labels,
    Rng rng) {
  const double alpha = pool.spec.alpha;
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 15).ValueOrDie());
  switch (method) {
    case Method::kPassive: {
      OASIS_ASSIGN_OR_RETURN(
          auto sampler, PassiveSampler::Create(&pool.scored, labels, alpha, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kStratified: {
      OASIS_ASSIGN_OR_RETURN(
          auto sampler,
          StratifiedSampler::Create(&pool.scored, labels, strata, alpha, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kImportance: {
      ImportanceOptions options;
      options.alpha = alpha;
      OASIS_ASSIGN_OR_RETURN(
          auto sampler,
          ImportanceSampler::Create(&pool.scored, labels, options, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kOasis: {
      OasisOptions options;
      options.alpha = alpha;
      OASIS_ASSIGN_OR_RETURN(
          auto sampler, OasisSampler::Create(&pool.scored, labels, strata,
                                             options, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
    case Method::kOracleOptimal: {
      OASIS_ASSIGN_OR_RETURN(
          auto sampler,
          OracleOptimalSampler::Create(&pool.scored, labels, strata, pool.truth,
                                       alpha, 1e-3, rng));
      return std::unique_ptr<Sampler>(std::move(sampler));
    }
  }
  return Status::InvalidArgument("unknown method");
}

/// The contracts above must also survive the adversarial generator pools:
/// heavy stratum skew, clustered score mass, a single collapsed stratum, and
/// the SIS-breaker score inversion. Estimation *quality* on these pools is
/// covered by the scenario harness (tests/scenario_verify_test.cc); here
/// every sampler must merely keep its structural promises — budget
/// accounting and bit-exact seeded determinism — no matter how hostile the
/// pool shape is.
class AdversarialPoolSweep
    : public ::testing::TestWithParam<
          std::tuple<Method, const char* /*scenario*/>> {};

TEST_P(AdversarialPoolSweep, BudgetAccountingAndDeterminism) {
  const auto [method, scenario_name] = GetParam();
  const datagen::ScenarioPool pool =
      datagen::GenerateScenario(
          datagen::ScenarioByName(scenario_name).ValueOrDie())
          .ValueOrDie();
  GroundTruthOracle oracle(pool.truth);

  double estimates[2];
  int64_t consumed[2];
  for (int run = 0; run < 2; ++run) {
    LabelCache labels(&oracle);
    auto sampler =
        MakeScenarioSampler(method, pool, &labels, Rng(999)).ValueOrDie();
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(sampler->Step().ok()) << MethodName(method);
    }
    EXPECT_LE(sampler->labels_consumed(), pool.scored.size());
    EXPECT_LE(sampler->labels_consumed(), sampler->iterations());
    EXPECT_EQ(sampler->iterations(), 600);
    estimates[run] = sampler->Estimate().f_alpha;
    consumed[run] = sampler->labels_consumed();
  }
  EXPECT_DOUBLE_EQ(estimates[0], estimates[1])
      << MethodName(method) << " on " << scenario_name;
  EXPECT_EQ(consumed[0], consumed[1]);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByScenario, AdversarialPoolSweep,
    ::testing::Combine(::testing::Values(Method::kPassive, Method::kStratified,
                                         Method::kImportance, Method::kOasis,
                                         Method::kOracleOptimal),
                       ::testing::Values("stripe-f50", "skew-heavy",
                                         "clustered", "single-stratum",
                                         "sis-inversion")),
    [](const ::testing::TestParamInfo<AdversarialPoolSweep::ParamType>& info) {
      const Method method = std::get<0>(info.param);
      std::string scenario = std::get<1>(info.param);
      for (char& c : scenario) {
        if (c == '-') c = '_';
      }
      return MethodName(method) + "_" + scenario;
    });

/// The SIS-breaker contract, stated as a property of the SAMPLER rather than
/// of the app harness: a static score-driven importance sampler labelling
/// the score-inversion pool must trip its own DegeneracyMonitor (the pool
/// hides ~90% of the match mass where the static instrumental distribution
/// puts vanishing probability, so normalised weights concentrate and the
/// effective sample size collapses). The same sampler on a well-behaved
/// stripe pool must stay healthy — the monitor trips EXACTLY on the pools
/// built to break it, across seeds.
TEST(StaticImportanceDegeneracyTest, TripsExactlyOnTheSisBreakerPool) {
  const datagen::ScenarioPool inversion =
      datagen::GenerateScenario(
          datagen::ScenarioByName("sis-inversion").ValueOrDie())
          .ValueOrDie();
  const datagen::ScenarioPool stripe =
      datagen::GenerateScenario(
          datagen::ScenarioByName("stripe-f90").ValueOrDie())
          .ValueOrDie();
  for (const uint64_t seed : {7u, 19u, 23u}) {
    for (const datagen::ScenarioPool* pool : {&inversion, &stripe}) {
      GroundTruthOracle oracle(pool->truth);
      LabelCache labels(&oracle);
      ImportanceOptions options;
      options.alpha = pool->spec.alpha;
      auto sampler = ImportanceSampler::Create(&pool->scored, &labels, options,
                                               Rng(seed))
                         .ValueOrDie();
      while (labels.labels_consumed() < 2000) {
        ASSERT_TRUE(sampler->Step().ok());
        ASSERT_LT(sampler->iterations(), 200000);
      }
      const DegeneracyMonitor* monitor = sampler->degeneracy_monitor();
      ASSERT_NE(monitor, nullptr);
      EXPECT_EQ(monitor->degenerate(), pool->spec.expect_sis_degeneracy)
          << pool->spec.name << " seed=" << seed
          << " ess_fraction=" << monitor->ess_fraction()
          << " max_weight_share=" << monitor->max_weight_share();
    }
  }
}

}  // namespace
}  // namespace oasis
