#include "oracle/label_cache.h"

#include <gtest/gtest.h>

#include "oracle/ground_truth_oracle.h"
#include "oracle/noisy_oracle.h"

namespace oasis {
namespace {

TEST(LabelCacheTest, DeterministicRepeatsAreFree) {
  // Paper footnote 5: a pair counts toward the budget only on first query.
  GroundTruthOracle oracle({1, 0, 1});
  LabelCache cache(&oracle);
  Rng rng(1);

  EXPECT_TRUE(cache.Query(0, rng));
  EXPECT_EQ(cache.labels_consumed(), 1);
  EXPECT_TRUE(cache.Query(0, rng));  // Replay.
  EXPECT_TRUE(cache.Query(0, rng));
  EXPECT_EQ(cache.labels_consumed(), 1);
  EXPECT_EQ(cache.total_queries(), 3);
  EXPECT_EQ(cache.distinct_items_labelled(), 1);

  EXPECT_FALSE(cache.Query(1, rng));
  EXPECT_EQ(cache.labels_consumed(), 2);
}

TEST(LabelCacheTest, CachedLabelsAreConsistent) {
  GroundTruthOracle oracle({1, 0});
  LabelCache cache(&oracle);
  Rng rng(3);
  const bool first = cache.Query(0, rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cache.Query(0, rng), first);
  }
}

TEST(LabelCacheTest, IsLabelledTracksFirstTouch) {
  GroundTruthOracle oracle({1, 0});
  LabelCache cache(&oracle);
  Rng rng(4);
  EXPECT_FALSE(cache.IsLabelled(0));
  cache.Query(0, rng);
  EXPECT_TRUE(cache.IsLabelled(0));
  EXPECT_FALSE(cache.IsLabelled(1));
}

TEST(LabelCacheTest, NoisyOracleChargesEveryQuery) {
  NoisyOracle oracle = NoisyOracle::FromProbabilities({0.5, 0.5}).ValueOrDie();
  LabelCache cache(&oracle);
  Rng rng(5);
  for (int i = 0; i < 7; ++i) cache.Query(0, rng);
  EXPECT_EQ(cache.labels_consumed(), 7);
  EXPECT_EQ(cache.total_queries(), 7);
  EXPECT_EQ(cache.distinct_items_labelled(), 1);
}

TEST(LabelCacheTest, NoisyQueriesAreFreshDraws) {
  NoisyOracle oracle = NoisyOracle::FromProbabilities({0.5}).ValueOrDie();
  LabelCache cache(&oracle);
  Rng rng(6);
  int ones = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) ones += cache.Query(0, rng) ? 1 : 0;
  // A caching bug would produce 0 or n; fresh draws give ~n/2.
  EXPECT_GT(ones, n / 3);
  EXPECT_LT(ones, 2 * n / 3);
}

}  // namespace
}  // namespace oasis
