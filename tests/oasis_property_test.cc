#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <tuple>

#include "core/oasis.h"
#include "datagen/scenario.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "sampling/importance.h"
#include "stats/degeneracy.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

/// Property sweep: OASIS must remain a consistent estimator across the
/// F-measure weight alpha, the greediness epsilon, the stratum count K, and
/// the pool's class imbalance. Each case runs a seeded sampler to a large
/// budget and checks convergence to the pool truth, plus the structural
/// invariants (normalised instrumental distribution, bounded weights).
class OasisConsistencySweep
    : public ::testing::TestWithParam<
          std::tuple<double /*alpha*/, double /*epsilon*/, size_t /*K*/,
                     double /*match_fraction*/>> {};

TEST_P(OasisConsistencySweep, ConvergesAndStaysValid) {
  const auto [alpha, epsilon, target_strata, match_fraction] = GetParam();

  SyntheticPoolOptions pool_options;
  pool_options.size = 3000;
  pool_options.match_fraction = match_fraction;
  pool_options.seed = 1000 + static_cast<uint64_t>(alpha * 10) +
                      static_cast<uint64_t>(epsilon * 1e4) + target_strata;
  SyntheticPool pool = MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);

  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, target_strata).ValueOrDie());
  OasisOptions options;
  options.alpha = alpha;
  options.epsilon = epsilon;
  auto sampler =
      OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(17))
          .ValueOrDie();

  // The reference value at this alpha from full ground truth.
  double tp = 0, pred = 0, pos = 0;
  for (size_t i = 0; i < pool.truth.size(); ++i) {
    if (pool.truth[i] && pool.scored.predictions[i]) tp += 1;
    if (pool.scored.predictions[i]) pred += 1;
    if (pool.truth[i]) pos += 1;
  }
  const double denom = alpha * pred + (1.0 - alpha) * pos;
  if (denom <= 0.0) GTEST_SKIP() << "degenerate pool for this alpha";
  const double true_f = tp / denom;

  // At alpha = 1 (precision) the optimal instrumental distribution puts all
  // but the epsilon floor on predicted-positive strata, which are small and
  // quickly exhausted — exactly the intended behaviour. Budget accordingly:
  // most of the predicted positives suffice to pin down precision.
  int64_t budget = 2200;
  if (alpha == 1.0) {
    budget = std::min<int64_t>(budget, static_cast<int64_t>(0.7 * pred));
  }
  while (sampler->labels_consumed() < budget) {
    ASSERT_TRUE(sampler->Step().ok());
    ASSERT_LT(sampler->iterations(), 2000000)
        << "sampler failed to consume budget";
  }

  // Structural invariants after adaptation.
  const std::vector<double> v = sampler->CurrentInstrumental().ValueOrDie();
  double v_total = 0.0;
  for (size_t k = 0; k < v.size(); ++k) {
    EXPECT_GT(v[k], 0.0);
    EXPECT_LE(sampler->strata().weight(k) / v[k], 1.0 / epsilon + 1e-9);
    v_total += v[k];
  }
  EXPECT_NEAR(v_total, 1.0, 1e-9);

  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  // Most of the informative pool labelled: the estimate must be close.
  EXPECT_NEAR(snap.f_alpha, true_f, 0.10)
      << "alpha=" << alpha << " eps=" << epsilon << " K=" << target_strata
      << " match_fraction=" << match_fraction;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaEpsilonKImbalance, OasisConsistencySweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(1e-3, 0.1),
                       ::testing::Values(5, 30),
                       ::testing::Values(0.02, 0.2)));

/// Prior-strength sweep (Remark 4 territory): even grossly misspecified
/// priors must not destroy convergence when decay is enabled.
class OasisPriorSweep : public ::testing::TestWithParam<
                            std::tuple<double /*eta*/, bool /*decay*/>> {};

TEST_P(OasisPriorSweep, RobustToPriorStrength) {
  const auto [eta, decay] = GetParam();
  SyntheticPoolOptions pool_options;
  pool_options.size = 2000;
  pool_options.match_fraction = 0.05;
  pool_options.seed = 999;
  SyntheticPool pool = MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);

  OasisOptions options;
  options.prior_strength = eta;
  options.decay_prior = decay;
  auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 20, options,
                                             Rng(19))
                     .ValueOrDie();
  while (sampler->labels_consumed() < 1600) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  // The AIS estimate is consistent regardless of the prior; the prior only
  // shapes the sampling distribution (efficiency, not correctness).
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.08)
      << "eta=" << eta << " decay=" << decay;
}

INSTANTIATE_TEST_SUITE_P(PriorStrengths, OasisPriorSweep,
                         ::testing::Combine(::testing::Values(0.5, 2.0, 60.0,
                                                              500.0),
                                            ::testing::Bool()));

/// Determinism sweep: identical seeds reproduce identical estimates across
/// every configuration (the reproducibility contract of the library).
class OasisDeterminismSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(OasisDeterminismSweep, IdenticalSeedsIdenticalRuns) {
  const size_t target_strata = GetParam();
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);

  double estimates[2];
  for (int run = 0; run < 2; ++run) {
    LabelCache labels(&oracle);
    auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels,
                                               target_strata, OasisOptions{},
                                               Rng(4242))
                       .ValueOrDie();
    for (int i = 0; i < 1500; ++i) ASSERT_TRUE(sampler->Step().ok());
    estimates[run] = sampler->Estimate().f_alpha;
  }
  EXPECT_DOUBLE_EQ(estimates[0], estimates[1]);
}

INSTANTIATE_TEST_SUITE_P(StratumCounts, OasisDeterminismSweep,
                         ::testing::Values(5, 30, 60, 120));

/// Adversarial-generator sweep: OASIS must remain a consistent estimator on
/// the known-truth scenario pools — extreme imbalance, heavy stratum skew,
/// clustered score mass, a collapsed single stratum, the SIS-breaker score
/// inversion, and a noisy oracle (where the target is the flip-adjusted F).
/// Each scenario's truth is exact by construction, so the assertion needs no
/// reference implementation. Estimates are averaged over a few seeds to damp
/// single-run sampling noise without hiding systematic bias.
class OasisAdversarialSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OasisAdversarialSweep, ConvergesOnAdversarialPools) {
  const datagen::ScenarioPool pool =
      datagen::GenerateScenario(datagen::ScenarioByName(GetParam()).ValueOrDie())
          .ValueOrDie();
  auto oracle = datagen::MakeScenarioOracle(pool).ValueOrDie();

  double sum = 0.0;
  const int runs = 3;
  for (int run = 0; run < runs; ++run) {
    LabelCache labels(oracle.get());
    OasisOptions options;
    options.alpha = pool.spec.alpha;
    auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 30,
                                               options, Rng(70 + run))
                       .ValueOrDie();
    while (labels.labels_consumed() < 2000) {
      ASSERT_TRUE(sampler->Step().ok());
      ASSERT_LT(sampler->iterations(), 400000)
          << pool.spec.name << ": failed to consume the label budget";
    }
    const EstimateSnapshot snap = sampler->Estimate();
    ASSERT_TRUE(snap.f_defined) << pool.spec.name << " run " << run;
    sum += snap.f_alpha;
  }
  const double mean = sum / runs;
  // Scenario tolerances are calibrated for the app harness's larger repeat
  // counts; three runs at this budget need roughly double the band.
  const double tolerance = std::max(0.1, 2.0 * pool.spec.verify_tolerance);
  EXPECT_NEAR(mean, pool.true_f, tolerance) << pool.spec.name;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, OasisAdversarialSweep,
                         ::testing::Values("stripe-f90", "imbalance-1e3",
                                           "skew-heavy", "clustered",
                                           "single-stratum", "sis-inversion",
                                           "noisy-flip05"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

/// The flip side of the SIS-breaker property in sampler_property_test.cc:
/// on the pool that provably degenerates a static importance sampler, the
/// ADAPTIVE sampler must keep its weights healthy — it relocates instrumental
/// mass onto the hidden stratum as labels reveal the score lie. This is the
/// paper's robustness claim reduced to a monitor assertion.
TEST(OasisAdversarialDegeneracyTest, StaysHealthyOnTheSisBreakerPool) {
  const datagen::ScenarioPool pool =
      datagen::GenerateScenario(
          datagen::ScenarioByName("sis-inversion").ValueOrDie())
          .ValueOrDie();
  GroundTruthOracle oracle(pool.truth);
  for (const uint64_t seed : {7u, 19u, 23u}) {
    LabelCache labels(&oracle);
    OasisOptions options;
    options.alpha = pool.spec.alpha;
    auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 30,
                                               options, Rng(seed))
                       .ValueOrDie();
    while (labels.labels_consumed() < 2000) {
      ASSERT_TRUE(sampler->Step().ok());
      ASSERT_LT(sampler->iterations(), 400000);
    }
    const DegeneracyMonitor* monitor = sampler->degeneracy_monitor();
    ASSERT_NE(monitor, nullptr);
    EXPECT_FALSE(monitor->degenerate())
        << "seed=" << seed << " ess_fraction=" << monitor->ess_fraction()
        << " max_weight_share=" << monitor->max_weight_share();
  }
}

/// Exact-K rank stratification for the pool-scale sweeps: argsort the scores
/// and assign rank i to stratum floor(i*K/N). CSF's histogram refinement is
/// built for K in the tens-to-hundreds and collapses (or crawls) at
/// K = 100k, so the large-K fixtures stratify by rank directly — every
/// stratum non-empty by construction, so num_strata() == K exactly.
Strata RankStrata(const std::vector<double>& scores, size_t k) {
  std::vector<int32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return scores[a] < scores[b];
  });
  std::vector<int32_t> assignment(scores.size());
  for (size_t i = 0; i < order.size(); ++i) {
    assignment[order[i]] = static_cast<int32_t>(i * k / order.size());
  }
  return Strata::FromAssignment(assignment).ValueOrDie();
}

/// Pool-scale scenario fixture, cached per scenario name: generating a 400k
/// pool is cheap (<0.1s) but there is no reason to repeat it per test case.
struct LargeKFixture {
  datagen::ScenarioPool pool;
  std::unique_ptr<Oracle> oracle;
  std::shared_ptr<const Strata> strata;  // K = 100000 by rank.
};

const LargeKFixture& LargeScenario(const std::string& name) {
  static auto* cache = new std::map<std::string, LargeKFixture>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    datagen::ScenarioSpec spec = datagen::ScenarioByName(name).ValueOrDie();
    spec.pool_size = 400000;
    LargeKFixture fixture;
    fixture.pool = datagen::GenerateScenario(spec).ValueOrDie();
    fixture.oracle = datagen::MakeScenarioOracle(fixture.pool).ValueOrDie();
    fixture.strata = std::make_shared<const Strata>(
        RankStrata(fixture.pool.scored.scores, 100000));
    it = cache->emplace(name, std::move(fixture)).first;
  }
  return it->second;
}

/// Pool-scale catalogue sweep: K = 100k strata over 400k-item scenario pools,
/// exercised through both sub-linear step paths. This is the regime the
/// Fenwick and alias backends exist for (budget << K, four items per
/// stratum), and the estimator must stay consistent there: the epsilon mix
/// keeps full support, so the importance-weighted estimate converges on the
/// constructed truth even though most strata are never visited. Estimates
/// are averaged over five seeded runs; everything is deterministic, so the
/// band is calibrated once against the worst observed mean error (0.09).
class OasisLargeKSweep
    : public ::testing::TestWithParam<
          std::tuple<const char* /*scenario*/, OasisStepPath>> {};

TEST_P(OasisLargeKSweep, ConsistentAtPoolScaleK) {
  const auto [scenario, path] = GetParam();
  const LargeKFixture& fixture = LargeScenario(scenario);
  ASSERT_EQ(fixture.strata->num_strata(), 100000u);

  double sum = 0.0;
  const int runs = 5;
  for (int run = 0; run < runs; ++run) {
    LabelCache labels(fixture.oracle.get());
    OasisOptions options;
    options.alpha = fixture.pool.spec.alpha;
    options.step_path = path;
    auto sampler = OasisSampler::Create(&fixture.pool.scored, &labels,
                                        fixture.strata, options,
                                        Rng(70 + static_cast<uint64_t>(run)))
                       .ValueOrDie();
    while (labels.labels_consumed() < 5000) {
      ASSERT_TRUE(sampler->Step().ok());
      ASSERT_LT(sampler->iterations(), 2000000)
          << scenario << ": failed to consume the label budget";
    }
    const EstimateSnapshot snap = sampler->Estimate();
    ASSERT_TRUE(snap.f_defined) << scenario << " run " << run;
    sum += snap.f_alpha;

    if (run == 0 && path == OasisStepPath::kAlias) {
      // The frozen alias mixture is a normalised distribution with full
      // support even at pool-scale K (the epsilon floor covers the 96% of
      // strata the budget never reaches).
      const std::vector<double> v = sampler->AliasInstrumental().ValueOrDie();
      double v_total = 0.0;
      for (const double p : v) {
        EXPECT_GT(p, 0.0);
        v_total += p;
      }
      EXPECT_NEAR(v_total, 1.0, 1e-9);
    }
  }
  EXPECT_NEAR(sum / runs, fixture.pool.true_f, 0.15)
      << scenario << " path=" << static_cast<int>(path);
}

INSTANTIATE_TEST_SUITE_P(
    PoolScaleScenarios, OasisLargeKSweep,
    ::testing::Combine(::testing::Values("stripe-f90", "imbalance-1e3"),
                       ::testing::Values(OasisStepPath::kFenwick,
                                         OasisStepPath::kAlias)),
    [](const ::testing::TestParamInfo<
        std::tuple<const char*, OasisStepPath>>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) == OasisStepPath::kFenwick ? "_fenwick"
                                                                 : "_alias";
      return name;
    });

/// The sis-inversion breaker at pool scale: the DegeneracyMonitor must trip
/// exactly where the theory says it should. Three regimes on the SAME
/// 400k-item pool:
///   1. static IS — trips (nothing to adapt; the score lie is fatal);
///   2. adaptive at K = 100k, budget 2500 — trips: with budget << K the
///      posterior never accumulates enough labels per stratum to relocate
///      instrumental mass, so pool-scale K degenerates exactly like the
///      static sampler (the practical argument for bounding K by budget);
///   3. adaptive at K = 30 — healthy: the same budget is plenty to adapt 30
///      posteriors away from the lie (the existing K=30 catalogue test, here
///      re-established on the pool-scale fixture).
TEST(OasisLargeKDegeneracyTest, SisBreakerTripsExactlyWhereExpected) {
  const LargeKFixture& fixture = LargeScenario("sis-inversion");
  ASSERT_TRUE(fixture.pool.spec.expect_sis_degeneracy);

  {
    LabelCache labels(fixture.oracle.get());
    ImportanceOptions options;
    options.alpha = fixture.pool.spec.alpha;
    auto sampler = ImportanceSampler::Create(&fixture.pool.scored, &labels,
                                             options, Rng(7))
                       .ValueOrDie();
    while (labels.labels_consumed() < 2500) {
      ASSERT_TRUE(sampler->Step().ok());
    }
    const DegeneracyMonitor* monitor = sampler->degeneracy_monitor();
    ASSERT_NE(monitor, nullptr);
    EXPECT_TRUE(monitor->degenerate())
        << "static IS must trip on the breaker (ess="
        << monitor->ess_fraction() << ")";
  }

  for (const OasisStepPath path :
       {OasisStepPath::kFenwick, OasisStepPath::kAlias}) {
    LabelCache labels(fixture.oracle.get());
    OasisOptions options;
    options.alpha = fixture.pool.spec.alpha;
    options.step_path = path;
    auto sampler = OasisSampler::Create(&fixture.pool.scored, &labels,
                                        fixture.strata, options, Rng(70))
                       .ValueOrDie();
    while (labels.labels_consumed() < 2500) {
      ASSERT_TRUE(sampler->Step().ok());
      ASSERT_LT(sampler->iterations(), 2000000);
    }
    const DegeneracyMonitor* monitor = sampler->degeneracy_monitor();
    ASSERT_NE(monitor, nullptr);
    EXPECT_TRUE(monitor->degenerate())
        << "path=" << static_cast<int>(path)
        << ": budget << K leaves no room to adapt, so pool-scale K must trip"
        << " (ess=" << monitor->ess_fraction() << ")";
  }

  auto coarse = std::make_shared<const Strata>(
      RankStrata(fixture.pool.scored.scores, 30));
  for (const uint64_t seed : {7u, 19u, 23u}) {
    LabelCache labels(fixture.oracle.get());
    OasisOptions options;
    options.alpha = fixture.pool.spec.alpha;
    auto sampler = OasisSampler::Create(&fixture.pool.scored, &labels, coarse,
                                        options, Rng(seed))
                       .ValueOrDie();
    while (labels.labels_consumed() < 2500) {
      ASSERT_TRUE(sampler->Step().ok());
      ASSERT_LT(sampler->iterations(), 2000000);
    }
    const DegeneracyMonitor* monitor = sampler->degeneracy_monitor();
    ASSERT_NE(monitor, nullptr);
    EXPECT_FALSE(monitor->degenerate())
        << "seed=" << seed << ": K=30 on the same pool must stay healthy"
        << " (ess=" << monitor->ess_fraction() << ")";
  }
}

}  // namespace
}  // namespace oasis
