#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "core/oasis.h"
#include "datagen/scenario.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "stats/degeneracy.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

/// Property sweep: OASIS must remain a consistent estimator across the
/// F-measure weight alpha, the greediness epsilon, the stratum count K, and
/// the pool's class imbalance. Each case runs a seeded sampler to a large
/// budget and checks convergence to the pool truth, plus the structural
/// invariants (normalised instrumental distribution, bounded weights).
class OasisConsistencySweep
    : public ::testing::TestWithParam<
          std::tuple<double /*alpha*/, double /*epsilon*/, size_t /*K*/,
                     double /*match_fraction*/>> {};

TEST_P(OasisConsistencySweep, ConvergesAndStaysValid) {
  const auto [alpha, epsilon, target_strata, match_fraction] = GetParam();

  SyntheticPoolOptions pool_options;
  pool_options.size = 3000;
  pool_options.match_fraction = match_fraction;
  pool_options.seed = 1000 + static_cast<uint64_t>(alpha * 10) +
                      static_cast<uint64_t>(epsilon * 1e4) + target_strata;
  SyntheticPool pool = MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);

  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, target_strata).ValueOrDie());
  OasisOptions options;
  options.alpha = alpha;
  options.epsilon = epsilon;
  auto sampler =
      OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(17))
          .ValueOrDie();

  // The reference value at this alpha from full ground truth.
  double tp = 0, pred = 0, pos = 0;
  for (size_t i = 0; i < pool.truth.size(); ++i) {
    if (pool.truth[i] && pool.scored.predictions[i]) tp += 1;
    if (pool.scored.predictions[i]) pred += 1;
    if (pool.truth[i]) pos += 1;
  }
  const double denom = alpha * pred + (1.0 - alpha) * pos;
  if (denom <= 0.0) GTEST_SKIP() << "degenerate pool for this alpha";
  const double true_f = tp / denom;

  // At alpha = 1 (precision) the optimal instrumental distribution puts all
  // but the epsilon floor on predicted-positive strata, which are small and
  // quickly exhausted — exactly the intended behaviour. Budget accordingly:
  // most of the predicted positives suffice to pin down precision.
  int64_t budget = 2200;
  if (alpha == 1.0) {
    budget = std::min<int64_t>(budget, static_cast<int64_t>(0.7 * pred));
  }
  while (sampler->labels_consumed() < budget) {
    ASSERT_TRUE(sampler->Step().ok());
    ASSERT_LT(sampler->iterations(), 2000000)
        << "sampler failed to consume budget";
  }

  // Structural invariants after adaptation.
  const std::vector<double> v = sampler->CurrentInstrumental().ValueOrDie();
  double v_total = 0.0;
  for (size_t k = 0; k < v.size(); ++k) {
    EXPECT_GT(v[k], 0.0);
    EXPECT_LE(sampler->strata().weight(k) / v[k], 1.0 / epsilon + 1e-9);
    v_total += v[k];
  }
  EXPECT_NEAR(v_total, 1.0, 1e-9);

  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  // Most of the informative pool labelled: the estimate must be close.
  EXPECT_NEAR(snap.f_alpha, true_f, 0.10)
      << "alpha=" << alpha << " eps=" << epsilon << " K=" << target_strata
      << " match_fraction=" << match_fraction;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaEpsilonKImbalance, OasisConsistencySweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(1e-3, 0.1),
                       ::testing::Values(5, 30),
                       ::testing::Values(0.02, 0.2)));

/// Prior-strength sweep (Remark 4 territory): even grossly misspecified
/// priors must not destroy convergence when decay is enabled.
class OasisPriorSweep : public ::testing::TestWithParam<
                            std::tuple<double /*eta*/, bool /*decay*/>> {};

TEST_P(OasisPriorSweep, RobustToPriorStrength) {
  const auto [eta, decay] = GetParam();
  SyntheticPoolOptions pool_options;
  pool_options.size = 2000;
  pool_options.match_fraction = 0.05;
  pool_options.seed = 999;
  SyntheticPool pool = MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);

  OasisOptions options;
  options.prior_strength = eta;
  options.decay_prior = decay;
  auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 20, options,
                                             Rng(19))
                     .ValueOrDie();
  while (sampler->labels_consumed() < 1600) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  // The AIS estimate is consistent regardless of the prior; the prior only
  // shapes the sampling distribution (efficiency, not correctness).
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.08)
      << "eta=" << eta << " decay=" << decay;
}

INSTANTIATE_TEST_SUITE_P(PriorStrengths, OasisPriorSweep,
                         ::testing::Combine(::testing::Values(0.5, 2.0, 60.0,
                                                              500.0),
                                            ::testing::Bool()));

/// Determinism sweep: identical seeds reproduce identical estimates across
/// every configuration (the reproducibility contract of the library).
class OasisDeterminismSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(OasisDeterminismSweep, IdenticalSeedsIdenticalRuns) {
  const size_t target_strata = GetParam();
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);

  double estimates[2];
  for (int run = 0; run < 2; ++run) {
    LabelCache labels(&oracle);
    auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels,
                                               target_strata, OasisOptions{},
                                               Rng(4242))
                       .ValueOrDie();
    for (int i = 0; i < 1500; ++i) ASSERT_TRUE(sampler->Step().ok());
    estimates[run] = sampler->Estimate().f_alpha;
  }
  EXPECT_DOUBLE_EQ(estimates[0], estimates[1]);
}

INSTANTIATE_TEST_SUITE_P(StratumCounts, OasisDeterminismSweep,
                         ::testing::Values(5, 30, 60, 120));

/// Adversarial-generator sweep: OASIS must remain a consistent estimator on
/// the known-truth scenario pools — extreme imbalance, heavy stratum skew,
/// clustered score mass, a collapsed single stratum, the SIS-breaker score
/// inversion, and a noisy oracle (where the target is the flip-adjusted F).
/// Each scenario's truth is exact by construction, so the assertion needs no
/// reference implementation. Estimates are averaged over a few seeds to damp
/// single-run sampling noise without hiding systematic bias.
class OasisAdversarialSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OasisAdversarialSweep, ConvergesOnAdversarialPools) {
  const datagen::ScenarioPool pool =
      datagen::GenerateScenario(datagen::ScenarioByName(GetParam()).ValueOrDie())
          .ValueOrDie();
  auto oracle = datagen::MakeScenarioOracle(pool).ValueOrDie();

  double sum = 0.0;
  const int runs = 3;
  for (int run = 0; run < runs; ++run) {
    LabelCache labels(oracle.get());
    OasisOptions options;
    options.alpha = pool.spec.alpha;
    auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 30,
                                               options, Rng(70 + run))
                       .ValueOrDie();
    while (labels.labels_consumed() < 2000) {
      ASSERT_TRUE(sampler->Step().ok());
      ASSERT_LT(sampler->iterations(), 400000)
          << pool.spec.name << ": failed to consume the label budget";
    }
    const EstimateSnapshot snap = sampler->Estimate();
    ASSERT_TRUE(snap.f_defined) << pool.spec.name << " run " << run;
    sum += snap.f_alpha;
  }
  const double mean = sum / runs;
  // Scenario tolerances are calibrated for the app harness's larger repeat
  // counts; three runs at this budget need roughly double the band.
  const double tolerance = std::max(0.1, 2.0 * pool.spec.verify_tolerance);
  EXPECT_NEAR(mean, pool.true_f, tolerance) << pool.spec.name;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, OasisAdversarialSweep,
                         ::testing::Values("stripe-f90", "imbalance-1e3",
                                           "skew-heavy", "clustered",
                                           "single-stratum", "sis-inversion",
                                           "noisy-flip05"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

/// The flip side of the SIS-breaker property in sampler_property_test.cc:
/// on the pool that provably degenerates a static importance sampler, the
/// ADAPTIVE sampler must keep its weights healthy — it relocates instrumental
/// mass onto the hidden stratum as labels reveal the score lie. This is the
/// paper's robustness claim reduced to a monitor assertion.
TEST(OasisAdversarialDegeneracyTest, StaysHealthyOnTheSisBreakerPool) {
  const datagen::ScenarioPool pool =
      datagen::GenerateScenario(
          datagen::ScenarioByName("sis-inversion").ValueOrDie())
          .ValueOrDie();
  GroundTruthOracle oracle(pool.truth);
  for (const uint64_t seed : {7u, 19u, 23u}) {
    LabelCache labels(&oracle);
    OasisOptions options;
    options.alpha = pool.spec.alpha;
    auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 30,
                                               options, Rng(seed))
                       .ValueOrDie();
    while (labels.labels_consumed() < 2000) {
      ASSERT_TRUE(sampler->Step().ok());
      ASSERT_LT(sampler->iterations(), 400000);
    }
    const DegeneracyMonitor* monitor = sampler->degeneracy_monitor();
    ASSERT_NE(monitor, nullptr);
    EXPECT_FALSE(monitor->degenerate())
        << "seed=" << seed << " ess_fraction=" << monitor->ess_fraction()
        << " max_weight_share=" << monitor->max_weight_share();
  }
}

}  // namespace
}  // namespace oasis
