#include "classify/mlp.h"

#include <gtest/gtest.h>

#include "classify_test_util.h"

namespace oasis {
namespace classify {
namespace {

using testutil::Accuracy;
using testutil::MakeBlobs;
using testutil::MakeXor;

TEST(MlpTest, RejectsDegenerateData) {
  Mlp mlp;
  Rng rng(1);
  Dataset empty(2);
  EXPECT_FALSE(mlp.Fit(empty, rng).ok());
  MlpOptions bad;
  bad.hidden_units = 0;
  Mlp bad_mlp(bad);
  Dataset blobs = MakeBlobs(10, 0.2, 2);
  EXPECT_FALSE(bad_mlp.Fit(blobs, rng).ok());
}

TEST(MlpTest, SeparatesBlobs) {
  Dataset train = MakeBlobs(200, 0.3, 3);
  Dataset test = MakeBlobs(200, 0.3, 5);
  Mlp mlp;
  Rng rng(7);
  ASSERT_TRUE(mlp.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(mlp, test), 0.95);
}

TEST(MlpTest, SolvesXorUnlikeLinearModels) {
  // The hidden layer must capture the non-linear decision boundary.
  Dataset train = MakeXor(150, 0.25, 9);
  Dataset test = MakeXor(150, 0.25, 11);
  MlpOptions options;
  options.hidden_units = 16;
  options.epochs = 150;
  Mlp mlp(options);
  Rng rng(13);
  ASSERT_TRUE(mlp.Fit(train, rng).ok());
  EXPECT_GT(Accuracy(mlp, test), 0.9);
}

TEST(MlpTest, OutputsAreProbabilities) {
  Dataset train = MakeBlobs(100, 0.4, 15);
  Mlp mlp;
  Rng rng(17);
  ASSERT_TRUE(mlp.Fit(train, rng).ok());
  EXPECT_TRUE(mlp.probabilistic());
  for (double x : {-2.0, 0.0, 2.0}) {
    const double p = mlp.Score(std::vector<double>{x, -x});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlpTest, DeterministicGivenSeed) {
  Dataset train = MakeBlobs(80, 0.3, 19);
  Mlp a;
  Mlp b;
  Rng rng1(29);
  Rng rng2(29);
  ASSERT_TRUE(a.Fit(train, rng1).ok());
  ASSERT_TRUE(b.Fit(train, rng2).ok());
  const std::vector<double> probe{0.3, -0.7};
  EXPECT_DOUBLE_EQ(a.Score(probe), b.Score(probe));
}

}  // namespace
}  // namespace classify
}  // namespace oasis
