#include "experiments/convergence.h"

#include <gtest/gtest.h>

#include <memory>

#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace experiments {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

TEST(ConvergenceTest, RejectsBadArguments) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 10,
                                             OasisOptions{}, Rng(1))
                     .ValueOrDie();
  EXPECT_FALSE(TraceOasisConvergence(*sampler, pool.truth, 0.5, 0, 10).ok());
  EXPECT_FALSE(TraceOasisConvergence(*sampler, pool.truth, 0.5, 100, 0).ok());
  const std::vector<uint8_t> short_truth{1, 0};
  EXPECT_FALSE(TraceOasisConvergence(*sampler, short_truth, 0.5, 100, 10).ok());
}

TEST(ConvergenceTest, TraceShapesAndMonotoneBudgets) {
  SyntheticPoolOptions options;
  options.size = 1500;
  options.match_fraction = 0.08;
  options.seed = 201;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 15,
                                             OasisOptions{}, Rng(3))
                     .ValueOrDie();
  ConvergenceTrace trace =
      TraceOasisConvergence(*sampler, pool.truth, pool.true_measures.f_alpha,
                            600, 50)
          .ValueOrDie();
  ASSERT_FALSE(trace.budgets.empty());
  EXPECT_EQ(trace.budgets.size(), trace.f_abs_error.size());
  EXPECT_EQ(trace.budgets.size(), trace.pi_abs_error.size());
  EXPECT_EQ(trace.budgets.size(), trace.v_abs_error.size());
  EXPECT_EQ(trace.budgets.size(), trace.kl_divergence.size());
  for (size_t i = 1; i < trace.budgets.size(); ++i) {
    EXPECT_GT(trace.budgets[i], trace.budgets[i - 1]);
  }
}

TEST(ConvergenceTest, DiagnosticsShrinkWithBudget) {
  // Figure 4's qualitative content: pi-error, v-error and KL all decay as
  // labels accumulate.
  SyntheticPoolOptions options;
  options.size = 3000;
  options.match_fraction = 0.05;
  options.seed = 203;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 20,
                                             OasisOptions{}, Rng(5))
                     .ValueOrDie();
  ConvergenceTrace trace =
      TraceOasisConvergence(*sampler, pool.truth, pool.true_measures.f_alpha,
                            2400, 100)
          .ValueOrDie();
  ASSERT_GE(trace.budgets.size(), 10u);
  const size_t last = trace.budgets.size() - 1;
  EXPECT_LT(trace.pi_abs_error[last], trace.pi_abs_error[0]);
  EXPECT_LT(trace.kl_divergence[last], trace.kl_divergence[0] + 1e-9);
  EXPECT_LT(trace.kl_divergence[last], 0.2);
  EXPECT_LT(trace.f_abs_error[last], 0.1);
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
