#include "core/bayesian_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace oasis {
namespace {

TEST(StratifiedBetaModelTest, RejectsBadArguments) {
  EXPECT_FALSE(StratifiedBetaModel::Create({}, 2.0, true).ok());
  const std::vector<double> degenerate{0.0, 0.5};
  EXPECT_FALSE(StratifiedBetaModel::Create(degenerate, 2.0, true).ok());
  const std::vector<double> over{0.5, 1.0};
  EXPECT_FALSE(StratifiedBetaModel::Create(over, 2.0, true).ok());
  const std::vector<double> valid{0.5};
  EXPECT_FALSE(StratifiedBetaModel::Create(valid, 0.0, true).ok());
  EXPECT_FALSE(StratifiedBetaModel::Create(valid, -1.0, true).ok());
}

TEST(StratifiedBetaModelTest, PriorMeanBeforeObservations) {
  const std::vector<double> prior{0.2, 0.7};
  StratifiedBetaModel model =
      StratifiedBetaModel::Create(prior, 4.0, /*decay_prior=*/false).ValueOrDie();
  EXPECT_NEAR(model.PosteriorMean(0), 0.2, 1e-12);
  EXPECT_NEAR(model.PosteriorMean(1), 0.7, 1e-12);
}

TEST(StratifiedBetaModelTest, PosteriorUpdateMatchesBetaBernoulli) {
  // Prior Beta(eta*pi, eta*(1-pi)) with eta=4, pi=0.25 -> Beta(1, 3).
  const std::vector<double> prior{0.25};
  StratifiedBetaModel model =
      StratifiedBetaModel::Create(prior, 4.0, /*decay_prior=*/false).ValueOrDie();
  // Observe 3 matches, 1 non-match: posterior Beta(4, 4), mean 0.5.
  model.Observe(0, true);
  model.Observe(0, true);
  model.Observe(0, true);
  model.Observe(0, false);
  EXPECT_NEAR(model.PosteriorMean(0), 0.5, 1e-12);
  EXPECT_EQ(model.labels_observed(0), 4);
  EXPECT_EQ(model.matches_observed(0), 3);
}

TEST(StratifiedBetaModelTest, StrataAreIndependent) {
  const std::vector<double> prior{0.5, 0.5};
  StratifiedBetaModel model =
      StratifiedBetaModel::Create(prior, 2.0, false).ValueOrDie();
  model.Observe(0, true);
  model.Observe(0, true);
  EXPECT_GT(model.PosteriorMean(0), 0.5);
  EXPECT_NEAR(model.PosteriorMean(1), 0.5, 1e-12);  // Untouched stratum.
}

TEST(StratifiedBetaModelTest, DecayExactlyDividesPrior) {
  // Remark 4: after n_k labels the prior column is divided by n_k. With
  // eta=10, pi0=0.5 (Beta(5,5)) and 2 observed matches:
  //   no decay:  (5+2)/(10+2)            = 7/12
  //   decay n=2: (5/2+2)/(5/2+5/2+2)     = 4.5/7 ~ 0.642857
  const std::vector<double> prior{0.5};
  StratifiedBetaModel no_decay =
      StratifiedBetaModel::Create(prior, 10.0, false).ValueOrDie();
  StratifiedBetaModel decay =
      StratifiedBetaModel::Create(prior, 10.0, true).ValueOrDie();
  for (StratifiedBetaModel* model : {&no_decay, &decay}) {
    model->Observe(0, true);
    model->Observe(0, true);
  }
  EXPECT_NEAR(no_decay.PosteriorMean(0), 7.0 / 12.0, 1e-12);
  EXPECT_NEAR(decay.PosteriorMean(0), 4.5 / 7.0, 1e-12);
}

TEST(StratifiedBetaModelTest, DecayRecoversFromMisspecifiedPrior) {
  // Heavily wrong prior (pi0=0.9) against all-negative labels: the decayed
  // model must converge to ~0 much faster than the undecayed one.
  const std::vector<double> prior{0.9};
  StratifiedBetaModel no_decay =
      StratifiedBetaModel::Create(prior, 100.0, false).ValueOrDie();
  StratifiedBetaModel decay =
      StratifiedBetaModel::Create(prior, 100.0, true).ValueOrDie();
  for (int i = 0; i < 50; ++i) {
    no_decay.Observe(0, false);
    decay.Observe(0, false);
  }
  EXPECT_LT(decay.PosteriorMean(0), 0.05);
  EXPECT_GT(no_decay.PosteriorMean(0), 0.5);  // Still dominated by the prior.
}

TEST(StratifiedBetaModelTest, ConvergesToEmpiricalRate) {
  const std::vector<double> prior{0.5};
  StratifiedBetaModel model =
      StratifiedBetaModel::Create(prior, 2.0, true).ValueOrDie();
  // 300 labels at a 1/3 match rate.
  for (int i = 0; i < 300; ++i) model.Observe(0, i % 3 == 0);
  EXPECT_NEAR(model.PosteriorMean(0), 1.0 / 3.0, 0.01);
}

TEST(StratifiedBetaModelTest, PosteriorMeansVectorMatchesScalars) {
  const std::vector<double> prior{0.1, 0.5, 0.9};
  StratifiedBetaModel model =
      StratifiedBetaModel::Create(prior, 3.0, true).ValueOrDie();
  model.Observe(1, true);
  model.Observe(2, false);
  const std::vector<double> means = model.PosteriorMeans();
  ASSERT_EQ(means.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(means[k], model.PosteriorMean(k));
  }
}

}  // namespace
}  // namespace oasis
