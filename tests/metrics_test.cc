#include "experiments/metrics.h"

#include <gtest/gtest.h>

namespace oasis {
namespace experiments {
namespace {

ErrorCurve MakeCurve() {
  ErrorCurve curve;
  curve.method = "test";
  curve.budgets = {100, 200, 300, 400, 500};
  curve.mean_abs_error = {0.20, 0.10, 0.05, 0.02, 0.01};
  curve.stddev = {0.2, 0.1, 0.05, 0.02, 0.01};
  curve.mean_estimate = {0.5, 0.55, 0.58, 0.59, 0.6};
  curve.frac_defined = {0.5, 0.9, 1.0, 1.0, 1.0};
  curve.repeats = 100;
  return curve;
}

TEST(FirstDefinedBudgetTest, FindsThresholdCrossing) {
  const ErrorCurve curve = MakeCurve();
  EXPECT_EQ(FirstDefinedBudget(curve, 0.95), 300);
  EXPECT_EQ(FirstDefinedBudget(curve, 0.5), 100);
  EXPECT_EQ(FirstDefinedBudget(curve, 1.01), -1);
}

TEST(BudgetToReachErrorTest, FindsStableCrossing) {
  const ErrorCurve curve = MakeCurve();
  EXPECT_EQ(BudgetToReachError(curve, 0.05), 300);
  EXPECT_EQ(BudgetToReachError(curve, 0.10), 200);
  EXPECT_EQ(BudgetToReachError(curve, 0.25), 100);  // Already below at start.
  EXPECT_EQ(BudgetToReachError(curve, 0.005), -1);  // Never reached.
}

TEST(BudgetToReachErrorTest, RequiresStayingBelow) {
  // Error dips below the target then bounces back: the crossing only counts
  // once it is final.
  ErrorCurve curve = MakeCurve();
  curve.mean_abs_error = {0.04, 0.20, 0.04, 0.03, 0.02};
  EXPECT_EQ(BudgetToReachError(curve, 0.05), 300);
}

TEST(LabelSavingTest, ComputesRelativeSaving) {
  ErrorCurve fast = MakeCurve();  // Reaches 0.05 at 300.
  ErrorCurve slow = MakeCurve();
  slow.budgets = {100, 200, 300, 400, 500};
  slow.mean_abs_error = {0.5, 0.4, 0.3, 0.1, 0.05};  // Reaches 0.05 at 500.
  const double saving = LabelSaving(fast, slow, 0.05).ValueOrDie();
  EXPECT_NEAR(saving, 1.0 - 300.0 / 500.0, 1e-12);
}

TEST(LabelSavingTest, FailsWhenTargetUnreached) {
  const ErrorCurve curve = MakeCurve();
  ErrorCurve never = MakeCurve();
  never.mean_abs_error = {0.5, 0.5, 0.5, 0.5, 0.5};
  EXPECT_FALSE(LabelSaving(never, curve, 0.05).ok());
  EXPECT_FALSE(LabelSaving(curve, never, 0.05).ok());
}

TEST(ThinCurveTest, ReducesPointCount) {
  ErrorCurve curve;
  for (int i = 1; i <= 100; ++i) {
    curve.budgets.push_back(i * 10);
    curve.mean_abs_error.push_back(1.0 / i);
    curve.stddev.push_back(0.5 / i);
    curve.mean_estimate.push_back(0.5);
    curve.frac_defined.push_back(1.0);
  }
  const ErrorCurve thin = ThinCurve(curve, 10);
  EXPECT_LE(thin.budgets.size(), 10u);
  EXPECT_EQ(thin.budgets.back(), 1000);  // Keeps the final point.
}

TEST(ThinCurveTest, ShortCurvesPassThrough) {
  const ErrorCurve curve = MakeCurve();
  const ErrorCurve thin = ThinCurve(curve, 10);
  EXPECT_EQ(thin.budgets.size(), curve.budgets.size());
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
