#include "datagen/entity_generator.h"

#include <gtest/gtest.h>

namespace oasis {
namespace datagen {
namespace {

TEST(EntityGeneratorTest, ECommerceSchemaAndRecordShape) {
  EntityGenerator gen(Domain::kECommerce, Rng(1));
  const er::Schema& schema = gen.schema();
  ASSERT_EQ(schema.num_fields(), 4u);
  EXPECT_EQ(schema.field(0).kind, er::FieldKind::kShortText);
  EXPECT_EQ(schema.field(1).kind, er::FieldKind::kLongText);
  EXPECT_EQ(schema.field(3).kind, er::FieldKind::kNumeric);

  const er::Record record = gen.GenerateEntity();
  ASSERT_EQ(record.values.size(), 4u);
  EXPECT_FALSE(record.values[0].text.empty());
  EXPECT_FALSE(record.values[1].text.empty());
  EXPECT_GT(record.values[3].number, 0.0);  // Price is positive.
}

TEST(EntityGeneratorTest, DescriptionsAreLong) {
  EntityGenerator gen(Domain::kECommerce, Rng(2));
  for (int i = 0; i < 20; ++i) {
    const er::Record record = gen.GenerateEntity();
    // Description should have many more tokens than the name.
    EXPECT_GT(record.values[1].text.size(), record.values[0].text.size());
  }
}

TEST(EntityGeneratorTest, RestaurantSchemaIsAllShortText) {
  EntityGenerator gen(Domain::kRestaurant, Rng(3));
  const er::Schema& schema = gen.schema();
  ASSERT_EQ(schema.num_fields(), 4u);
  for (size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(schema.field(f).kind, er::FieldKind::kShortText);
  }
  const er::Record record = gen.GenerateEntity();
  for (const auto& value : record.values) {
    EXPECT_FALSE(value.text.empty());
  }
}

TEST(EntityGeneratorTest, CitationYearInRange) {
  EntityGenerator gen(Domain::kCitation, Rng(4));
  for (int i = 0; i < 50; ++i) {
    const er::Record record = gen.GenerateEntity();
    EXPECT_GE(record.values[3].number, 1980.0);
    EXPECT_LE(record.values[3].number, 2016.0);
  }
}

TEST(EntityGeneratorTest, EntitiesAreMostlyDistinct) {
  EntityGenerator gen(Domain::kECommerce, Rng(5));
  std::set<std::string> names;
  for (int i = 0; i < 200; ++i) {
    names.insert(gen.GenerateEntity().values[0].text);
  }
  // Model codes make full names near-unique.
  EXPECT_GT(names.size(), 190u);
}

TEST(EntityGeneratorTest, SharedVocabularyCreatesTokenCollisions) {
  // Different entities should still share brands/nouns sometimes — that is
  // what makes hard negatives hard.
  EntityGenerator gen(Domain::kECommerce, Rng(6));
  std::set<std::string> manufacturers;
  for (int i = 0; i < 200; ++i) {
    manufacturers.insert(gen.GenerateEntity().values[2].text);
  }
  EXPECT_LT(manufacturers.size(), 70u);  // Far fewer brands than entities.
}

TEST(EntityGeneratorTest, DeterministicForSameSeed) {
  EntityGenerator a(Domain::kCitation, Rng(7));
  EntityGenerator b(Domain::kCitation, Rng(7));
  for (int i = 0; i < 20; ++i) {
    const er::Record ra = a.GenerateEntity();
    const er::Record rb = b.GenerateEntity();
    EXPECT_EQ(ra.values[0].text, rb.values[0].text);
    EXPECT_EQ(ra.values[3].number, rb.values[3].number);
  }
}

}  // namespace
}  // namespace datagen
}  // namespace oasis
