#include <gtest/gtest.h>

#include <memory>

#include "core/oasis.h"
#include "datagen/benchmark_datasets.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

namespace oasis {
namespace {

using datagen::BenchmarkPool;
using datagen::BuildBenchmarkPool;
using datagen::ClassifierKind;
using datagen::DatasetProfile;
using datagen::Domain;

/// A miniature end-to-end profile: entity generation -> corruption ->
/// featurisation -> SVM training -> pool scoring -> OASIS evaluation.
DatasetProfile MiniProfile() {
  DatasetProfile p;
  p.name = "integration-mini";
  p.domain = Domain::kECommerce;
  p.left_size = 200;
  p.right_size = 200;
  p.full_matches = 80;
  p.pool_size = 4000;
  p.pool_matches = 40;
  p.hard_negative_fraction = 0.1;
  p.train_matches = 50;
  p.train_nonmatches = 500;
  p.train_hard_fraction = 0.3;
  p.predicted_positive_factor = 0.9;
  return p;
}

TEST(IntegrationTest, FullPipelineThenOasisEstimatesTrueF) {
  BenchmarkPool pool =
      BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLinearSvm,
                         /*calibrated=*/false, /*seed=*/2024)
          .ValueOrDie();
  ASSERT_TRUE(pool.true_measures.f_defined);
  ASSERT_GT(pool.true_measures.f_alpha, 0.0);

  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 20,
                                             OasisOptions{}, Rng(7))
                     .ValueOrDie();
  // 1000 of 4000 labels: the estimate should already be close.
  while (sampler->labels_consumed() < 1000) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.1);
}

TEST(IntegrationTest, OasisBeatsPassiveOnGeneratedPool) {
  BenchmarkPool pool =
      BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLinearSvm, false, 2025)
          .ValueOrDie();
  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 20).ValueOrDie());

  experiments::RunnerOptions options;
  options.repeats = 12;
  options.trajectory.budget = 500;
  options.trajectory.checkpoint_every = 500;

  auto oasis_curve =
      experiments::RunErrorCurve(experiments::MakeOasisSpec(OasisOptions{}, strata),
                                 pool.scored, oracle, pool.true_measures.f_alpha,
                                 options)
          .ValueOrDie();
  auto passive_curve =
      experiments::RunErrorCurve(experiments::MakePassiveSpec(0.5), pool.scored,
                                 oracle, pool.true_measures.f_alpha, options)
          .ValueOrDie();
  ASSERT_EQ(oasis_curve.frac_defined.back(), 1.0);
  if (passive_curve.frac_defined.back() >= 0.9) {
    EXPECT_LT(oasis_curve.mean_abs_error.back(),
              passive_curve.mean_abs_error.back() * 1.5);
  }
}

TEST(IntegrationTest, CalibratedPipelineProducesProbabilityPool) {
  BenchmarkPool pool =
      BuildBenchmarkPool(MiniProfile(), ClassifierKind::kLogisticRegression,
                         /*calibrated=*/true, 2026)
          .ValueOrDie();
  EXPECT_TRUE(pool.scored.scores_are_probabilities);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 15,
                                             OasisOptions{}, Rng(9))
                     .ValueOrDie();
  while (sampler->labels_consumed() < 800) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  EXPECT_NEAR(sampler->Estimate().f_alpha, pool.true_measures.f_alpha, 0.12);
}

TEST(IntegrationTest, EveryClassifierKindSurvivesEndToEnd) {
  // Figure 5's sweep at miniature scale: all five classifier families train,
  // score, and are evaluable.
  for (ClassifierKind kind :
       {ClassifierKind::kLinearSvm, ClassifierKind::kLogisticRegression,
        ClassifierKind::kMlp, ClassifierKind::kAdaBoost, ClassifierKind::kRbfSvm}) {
    BenchmarkPool pool =
        BuildBenchmarkPool(MiniProfile(), kind, false, 3000).ValueOrDie();
    ASSERT_TRUE(pool.scored.Validate().ok())
        << datagen::ClassifierKindName(kind);
    GroundTruthOracle oracle(pool.truth);
    LabelCache labels(&oracle);
    auto sampler = OasisSampler::CreateWithCsf(&pool.scored, &labels, 15,
                                               OasisOptions{}, Rng(11))
                       .ValueOrDie();
    while (sampler->labels_consumed() < 600) {
      ASSERT_TRUE(sampler->Step().ok());
    }
    EXPECT_TRUE(sampler->Estimate().f_defined)
        << datagen::ClassifierKindName(kind);
  }
}

}  // namespace
}  // namespace oasis
