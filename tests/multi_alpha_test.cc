#include "core/multi_alpha.h"

#include <gtest/gtest.h>

#include "core/ais_estimator.h"

namespace oasis {
namespace {

TEST(MultiAlphaTest, RejectsBadGrid) {
  EXPECT_FALSE(MultiAlphaEstimator::Create({}).ok());
  EXPECT_FALSE(MultiAlphaEstimator::Create({0.5, 1.2}).ok());
  EXPECT_FALSE(MultiAlphaEstimator::Create({-0.1}).ok());
}

TEST(MultiAlphaTest, MatchesSingleAlphaEstimators) {
  // One shared label stream must reproduce exactly what three independent
  // AisEstimators at alpha = 0, 1/2, 1 would compute.
  MultiAlphaEstimator multi =
      MultiAlphaEstimator::Create({0.0, 0.5, 1.0}).ValueOrDie();
  AisEstimator recall_only(0.0);
  AisEstimator balanced(0.5);
  AisEstimator precision_only(1.0);

  const double observations[][3] = {{1.5, 1, 1}, {0.5, 0, 1}, {2.0, 1, 0},
                                    {1.0, 1, 1}, {3.0, 0, 0}, {0.2, 0, 1}};
  for (const auto& row : observations) {
    const double w = row[0];
    const bool label = row[1] != 0;
    const bool prediction = row[2] != 0;
    multi.Add(w, label, prediction);
    recall_only.Add(w, label, prediction);
    balanced.Add(w, label, prediction);
    precision_only.Add(w, label, prediction);
  }

  const auto estimates = multi.Estimates();
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_DOUBLE_EQ(estimates[0].f_alpha, recall_only.Snapshot().f_alpha);
  EXPECT_DOUBLE_EQ(estimates[1].f_alpha, balanced.Snapshot().f_alpha);
  EXPECT_DOUBLE_EQ(estimates[2].f_alpha, precision_only.Snapshot().f_alpha);
  EXPECT_EQ(multi.observations(), 6);
}

TEST(MultiAlphaTest, PerAlphaDefinedness) {
  MultiAlphaEstimator multi =
      MultiAlphaEstimator::Create({0.0, 1.0}).ValueOrDie();
  // Only a true positive on the recall side: precision denominator stays 0.
  multi.Add(1.0, true, false);
  const auto estimates = multi.Estimates();
  EXPECT_TRUE(estimates[0].defined);    // alpha = 0: recall defined.
  EXPECT_FALSE(estimates[1].defined);   // alpha = 1: precision undefined.
}

TEST(MultiAlphaTest, MonotoneInAlphaWhenPrecisionAboveRecall) {
  MultiAlphaEstimator multi =
      MultiAlphaEstimator::Create({0.0, 0.25, 0.5, 0.75, 1.0}).ValueOrDie();
  // precision = 2/3, recall = 2/5.
  multi.Add(1.0, true, true);
  multi.Add(1.0, true, true);
  multi.Add(1.0, false, true);
  multi.Add(3.0, true, false);
  const auto estimates = multi.Estimates();
  for (size_t i = 1; i < estimates.size(); ++i) {
    EXPECT_GT(estimates[i].f_alpha, estimates[i - 1].f_alpha);
  }
}

}  // namespace
}  // namespace oasis
