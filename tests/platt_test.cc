#include "classify/platt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "classify/linear_svm.h"
#include "classify_test_util.h"
#include "stats/transforms.h"

namespace oasis {
namespace classify {
namespace {

using testutil::MakeBlobs;

TEST(PlattScalerTest, RejectsBadInput) {
  PlattScaler scaler;
  EXPECT_FALSE(scaler.Fit({}, {}).ok());
  const std::vector<double> scores{1.0, 2.0};
  const std::vector<uint8_t> one_label{1};
  EXPECT_FALSE(scaler.Fit(scores, one_label).ok());
  const std::vector<uint8_t> all_positive{1, 1};
  EXPECT_FALSE(scaler.Fit(scores, all_positive).ok());
}

TEST(PlattScalerTest, RecoversPlantedSigmoid) {
  // Labels generated from sigmoid(2s - 1): the fitted transform should map
  // scores to probabilities close to that curve.
  Rng rng(3);
  std::vector<double> scores;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 8000; ++i) {
    const double s = 4.0 * rng.NextDouble() - 2.0;
    const double p = Expit(2.0 * s - 1.0);
    scores.push_back(s);
    labels.push_back(rng.NextBernoulli(p) ? 1 : 0);
  }
  PlattScaler scaler;
  ASSERT_TRUE(scaler.Fit(scores, labels).ok());
  for (double s : {-1.5, -0.5, 0.0, 0.5, 1.5}) {
    EXPECT_NEAR(scaler.Transform(s), Expit(2.0 * s - 1.0), 0.05) << "s=" << s;
  }
}

TEST(PlattScalerTest, TransformIsMonotoneForPositiveSlope) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 2000; ++i) {
    const double s = rng.NextGaussian();
    scores.push_back(s);
    labels.push_back(rng.NextBernoulli(Expit(3.0 * s)) ? 1 : 0);
  }
  PlattScaler scaler;
  ASSERT_TRUE(scaler.Fit(scores, labels).ok());
  double prev = scaler.Transform(-3.0);
  for (double s = -2.5; s <= 3.0; s += 0.5) {
    const double current = scaler.Transform(s);
    EXPECT_GE(current, prev);
    prev = current;
  }
}

TEST(PlattScalerTest, OutputsAreProbabilities) {
  Rng rng(7);
  std::vector<double> scores;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(rng.NextGaussian());
    labels.push_back(rng.NextBernoulli(0.3) ? 1 : 0);
  }
  PlattScaler scaler;
  ASSERT_TRUE(scaler.Fit(scores, labels).ok());
  for (double s : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    const double p = scaler.Transform(s);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(CalibratedClassifierTest, WrapsBaseModelWithProbabilities) {
  Dataset train = MakeBlobs(300, 0.5, 9);
  CalibratedClassifier calibrated(
      []() -> std::unique_ptr<Classifier> {
        return std::make_unique<LinearSvm>();
      },
      /*folds=*/5);
  Rng rng(11);
  ASSERT_TRUE(calibrated.Fit(train, rng).ok());
  EXPECT_TRUE(calibrated.probabilistic());
  EXPECT_DOUBLE_EQ(calibrated.threshold(), 0.5);
  EXPECT_EQ(calibrated.name(), "L-SVM+Platt");

  // Deep positives ~1, deep negatives ~0, and monotone along the diagonal.
  EXPECT_GT(calibrated.Score(std::vector<double>{2.0, 2.0}), 0.9);
  EXPECT_LT(calibrated.Score(std::vector<double>{-2.0, -2.0}), 0.1);
}

TEST(CalibratedClassifierTest, CalibrationImprovesProbabilityFit) {
  // Raw SVM margins squashed by a generic sigmoid are mis-calibrated; the
  // Platt-fitted sigmoid should match empirical frequencies much better.
  Dataset train = MakeBlobs(600, 0.8, 13);
  Dataset test = MakeBlobs(600, 0.8, 17);

  CalibratedClassifier calibrated(
      []() -> std::unique_ptr<Classifier> {
        return std::make_unique<LinearSvm>();
      },
      5);
  Rng rng(19);
  ASSERT_TRUE(calibrated.Fit(train, rng).ok());

  // Bucket test points by calibrated probability and compare to the
  // empirical positive rate per bucket.
  double max_gap = 0.0;
  for (double lo = 0.1; lo < 0.9; lo += 0.2) {
    double total = 0;
    double positive = 0;
    for (size_t i = 0; i < test.size(); ++i) {
      const double p = calibrated.Score(test.row(i));
      if (p >= lo && p < lo + 0.2) {
        total += 1;
        positive += test.label(i) ? 1 : 0;
      }
    }
    if (total >= 30) {
      max_gap = std::max(max_gap, std::abs(positive / total - (lo + 0.1)));
    }
  }
  // Blob data is not exactly logistic in the margin, so allow a loose but
  // meaningful calibration bound (an uncalibrated margin is off by ~0.5).
  EXPECT_LT(max_gap, 0.3);
}

TEST(CalibratedClassifierTest, FitFailsOnEmptyData) {
  CalibratedClassifier calibrated(
      []() -> std::unique_ptr<Classifier> {
        return std::make_unique<LinearSvm>();
      },
      5);
  Rng rng(21);
  Dataset empty(2);
  EXPECT_FALSE(calibrated.Fit(empty, rng).ok());
}

}  // namespace
}  // namespace classify
}  // namespace oasis
