#ifndef OASIS_TESTS_CLASSIFY_TEST_UTIL_H_
#define OASIS_TESTS_CLASSIFY_TEST_UTIL_H_

#include <vector>

#include "classify/classifier.h"
#include "classify/dataset.h"
#include "common/random.h"

namespace oasis {
namespace testutil {

/// Linearly separable-ish 2D blobs: positives around (+1, +1), negatives
/// around (-1, -1), with the given Gaussian spread.
inline classify::Dataset MakeBlobs(size_t per_class, double spread,
                                   uint64_t seed) {
  Rng rng(seed);
  classify::Dataset data(2);
  for (size_t i = 0; i < per_class; ++i) {
    const std::vector<double> pos{1.0 + spread * rng.NextGaussian(),
                                  1.0 + spread * rng.NextGaussian()};
    const std::vector<double> neg{-1.0 + spread * rng.NextGaussian(),
                                  -1.0 + spread * rng.NextGaussian()};
    (void)data.Add(pos, true);
    (void)data.Add(neg, false);
  }
  return data;
}

/// XOR-patterned data: linearly inseparable, solvable by MLP / RBF / trees.
inline classify::Dataset MakeXor(size_t per_quadrant, double spread,
                                 uint64_t seed) {
  Rng rng(seed);
  classify::Dataset data(2);
  const double centers[4][2] = {{1, 1}, {-1, -1}, {1, -1}, {-1, 1}};
  for (size_t i = 0; i < per_quadrant; ++i) {
    for (int q = 0; q < 4; ++q) {
      const std::vector<double> point{
          centers[q][0] + spread * rng.NextGaussian(),
          centers[q][1] + spread * rng.NextGaussian()};
      (void)data.Add(point, q < 2);  // Same-sign quadrants positive.
    }
  }
  return data;
}

/// Fraction of correct predictions of `model` on `data`.
inline double Accuracy(const classify::Classifier& model,
                       const classify::Dataset& data) {
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (model.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace testutil
}  // namespace oasis

#endif  // OASIS_TESTS_CLASSIFY_TEST_UTIL_H_
