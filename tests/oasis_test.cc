#include "core/oasis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "oracle/ground_truth_oracle.h"
#include "oracle/noisy_oracle.h"
#include "strata/csf.h"
#include "test_util.h"

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

std::shared_ptr<const Strata> MakeStrata(const ScoredPool& pool, size_t k) {
  return std::make_shared<const Strata>(StratifyCsf(pool.scores, k).ValueOrDie());
}

TEST(OasisSamplerTest, RejectsBadArguments) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto strata = MakeStrata(pool.scored, 10);

  EXPECT_FALSE(
      OasisSampler::Create(nullptr, &labels, strata, OasisOptions{}, Rng(1)).ok());
  EXPECT_FALSE(OasisSampler::Create(&pool.scored, &labels, nullptr, OasisOptions{},
                                    Rng(1))
                   .ok());

  OasisOptions bad;
  bad.epsilon = 0.0;  // Remark 5: epsilon must be positive for consistency.
  EXPECT_FALSE(OasisSampler::Create(&pool.scored, &labels, strata, bad, Rng(1)).ok());
  bad.epsilon = 1.5;
  EXPECT_FALSE(OasisSampler::Create(&pool.scored, &labels, strata, bad, Rng(1)).ok());
  bad = OasisOptions{};
  bad.alpha = -0.2;
  EXPECT_FALSE(OasisSampler::Create(&pool.scored, &labels, strata, bad, Rng(1)).ok());
}

TEST(OasisSamplerTest, DefaultPriorStrengthIsTwoK) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto strata = MakeStrata(pool.scored, 10);
  auto sampler =
      OasisSampler::Create(&pool.scored, &labels, strata, OasisOptions{}, Rng(1))
          .ValueOrDie();
  EXPECT_NEAR(sampler->options().prior_strength,
              2.0 * static_cast<double>(sampler->strata().num_strata()), 1e-12);
}

TEST(OasisSamplerTest, ConvergesToTrueFUnderImbalance) {
  SyntheticPoolOptions options;
  options.size = 4000;
  options.match_fraction = 0.02;
  options.seed = 61;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 20), OasisOptions{},
                                      Rng(3))
                     .ValueOrDie();
  // Consume most of the informative budget.
  while (sampler->labels_consumed() < 2000) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.05);
}

TEST(OasisSamplerTest, PrecisionAndRecallAlsoConverge) {
  SyntheticPoolOptions options;
  options.size = 3000;
  options.match_fraction = 0.05;
  options.seed = 67;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 20), OasisOptions{},
                                      Rng(5))
                     .ValueOrDie();
  while (sampler->labels_consumed() < 2500) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.precision_defined);
  ASSERT_TRUE(snap.recall_defined);
  EXPECT_NEAR(snap.precision, pool.true_measures.precision, 0.07);
  EXPECT_NEAR(snap.recall, pool.true_measures.recall, 0.07);
}

TEST(OasisSamplerTest, BeatsPassiveVarianceUnderImbalance) {
  // The headline claim at unit-test scale: at a fixed small budget, OASIS
  // estimates have materially lower error spread than passive sampling.
  SyntheticPoolOptions options;
  options.size = 8000;
  options.match_fraction = 0.01;
  options.seed = 71;
  SyntheticPool pool = MakeSyntheticPool(options);
  GroundTruthOracle oracle(pool.truth);
  auto strata = MakeStrata(pool.scored, 25);

  const int repeats = 30;
  const int64_t budget = 300;
  double oasis_sq_err = 0.0;
  int oasis_defined = 0;
  double passive_sq_err = 0.0;
  int passive_defined = 0;
  for (int r = 0; r < repeats; ++r) {
    {
      LabelCache labels(&oracle);
      auto sampler = OasisSampler::Create(&pool.scored, &labels, strata,
                                          OasisOptions{}, Rng(100 + r))
                         .ValueOrDie();
      while (labels.labels_consumed() < budget) {
        ASSERT_TRUE(sampler->Step().ok());
      }
      const EstimateSnapshot snap = sampler->Estimate();
      if (snap.f_defined) {
        const double err = snap.f_alpha - pool.true_measures.f_alpha;
        oasis_sq_err += err * err;
        ++oasis_defined;
      }
    }
    {
      LabelCache labels(&oracle);
      // Passive needs its own sampler; reuse the pool scores only.
      Rng rng(200 + r);
      double tp = 0, pred = 0, pos = 0;
      for (int64_t i = 0; labels.labels_consumed() < budget; ++i) {
        const int64_t item = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(pool.scored.size())));
        const bool label = labels.Query(item, rng);
        const bool prediction = pool.scored.predictions[item] != 0;
        if (label && prediction) tp += 1;
        if (prediction) pred += 1;
        if (label) pos += 1;
      }
      const double denom = 0.5 * pred + 0.5 * pos;
      if (denom > 0) {
        const double err = tp / denom - pool.true_measures.f_alpha;
        passive_sq_err += err * err;
        ++passive_defined;
      }
    }
  }
  ASSERT_GT(oasis_defined, repeats / 2);
  const double oasis_rmse = std::sqrt(oasis_sq_err / oasis_defined);
  // Passive may not even be defined; when it is, OASIS should beat it.
  if (passive_defined > repeats / 2) {
    const double passive_rmse = std::sqrt(passive_sq_err / passive_defined);
    EXPECT_LT(oasis_rmse, passive_rmse);
  }
  EXPECT_LT(oasis_rmse, 0.15);
}

TEST(OasisSamplerTest, ImportanceWeightsBoundedByInverseEpsilon) {
  // From the consistency proof: p/q <= 1/epsilon. We can't observe weights
  // directly, but the instrumental distribution exposes the bound:
  // omega_k / v_k <= 1/epsilon for every stratum.
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  OasisOptions options;
  options.epsilon = 0.01;
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 15), options, Rng(7))
                     .ValueOrDie();
  for (int step = 0; step < 200; ++step) {
    ASSERT_TRUE(sampler->Step().ok());
    const std::vector<double> v = sampler->CurrentInstrumental().ValueOrDie();
    for (size_t k = 0; k < v.size(); ++k) {
      EXPECT_LE(sampler->strata().weight(k) / v[k], 1.0 / options.epsilon + 1e-9);
    }
  }
}

TEST(OasisSamplerTest, InstrumentalStaysNormalised) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 12), OasisOptions{},
                                      Rng(9))
                     .ValueOrDie();
  for (int step = 0; step < 100; ++step) {
    ASSERT_TRUE(sampler->Step().ok());
  }
  const std::vector<double> v = sampler->CurrentInstrumental().ValueOrDie();
  double total = 0.0;
  for (double vi : v) {
    EXPECT_GT(vi, 0.0);
    total += vi;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OasisSamplerTest, CreateWithCsfMatchesManualStratification) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels_a(&oracle);
  LabelCache labels_b(&oracle);
  auto manual = OasisSampler::Create(&pool.scored, &labels_a,
                                     MakeStrata(pool.scored, 30), OasisOptions{},
                                     Rng(11))
                    .ValueOrDie();
  auto automatic = OasisSampler::CreateWithCsf(&pool.scored, &labels_b, 30,
                                               OasisOptions{}, Rng(11))
                       .ValueOrDie();
  EXPECT_EQ(manual->strata().num_strata(), automatic->strata().num_strata());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(manual->Step().ok());
    ASSERT_TRUE(automatic->Step().ok());
  }
  // Same seed, same strata -> identical runs.
  EXPECT_DOUBLE_EQ(manual->Estimate().f_alpha, automatic->Estimate().f_alpha);
}

TEST(OasisSamplerTest, WorksWithNoisyOracle) {
  SyntheticPoolOptions options;
  options.size = 1500;
  options.match_fraction = 0.1;
  options.seed = 81;
  SyntheticPool pool = MakeSyntheticPool(options);
  NoisyOracle oracle =
      NoisyOracle::FromTruthWithFlipNoise(pool.truth, 0.05).ValueOrDie();
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 15), OasisOptions{},
                                      Rng(13))
                     .ValueOrDie();
  // Noisy oracles charge every query; run a fixed iteration count.
  for (int i = 0; i < 5000; ++i) ASSERT_TRUE(sampler->Step().ok());
  EXPECT_EQ(sampler->labels_consumed(), 5000);
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  // Under 5% symmetric label noise the asymptotic F target shifts; just
  // require a sane, bounded estimate near the noise-free value.
  EXPECT_GT(snap.f_alpha, 0.0);
  EXPECT_LT(snap.f_alpha, 1.0);
  EXPECT_NEAR(snap.f_alpha, pool.true_measures.f_alpha, 0.2);
}

TEST(OasisSamplerTest, ObserverSeesEveryWeightedObservation) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 10), OasisOptions{},
                                      Rng(31))
                     .ValueOrDie();
  // Mirror every observation into an independent estimator at the same
  // alpha; it must reproduce the sampler's own estimate exactly.
  AisEstimator mirror(sampler->options().alpha);
  int64_t observed = 0;
  sampler->SetObserver([&](double weight, bool label, bool prediction) {
    mirror.Add(weight, label, prediction);
    ++observed;
  });
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(sampler->Step().ok());
  EXPECT_EQ(observed, 500);
  const EstimateSnapshot own = sampler->Estimate();
  const EstimateSnapshot mirrored = mirror.Snapshot();
  ASSERT_EQ(own.f_defined, mirrored.f_defined);
  if (own.f_defined) {
    EXPECT_DOUBLE_EQ(own.f_alpha, mirrored.f_alpha);
    EXPECT_DOUBLE_EQ(own.precision, mirrored.precision);
    EXPECT_DOUBLE_EQ(own.recall, mirrored.recall);
  }
}

TEST(OasisSamplerTest, NameReflectsStratumCount) {
  SyntheticPool pool = MakeSyntheticPool({});
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 10), OasisOptions{},
                                      Rng(15))
                     .ValueOrDie();
  EXPECT_EQ(sampler->name(),
            "OASIS-" + std::to_string(sampler->strata().num_strata()));
}

}  // namespace
}  // namespace oasis
