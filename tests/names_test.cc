#include "datagen/names.h"

#include <gtest/gtest.h>

#include <cctype>
#include <set>

namespace oasis {
namespace datagen {
namespace {

TEST(WordGeneratorTest, WordsAreLowercaseAlpha) {
  WordGenerator gen(Rng(1));
  for (int i = 0; i < 200; ++i) {
    const std::string word = gen.Word();
    EXPECT_FALSE(word.empty());
    for (char c : word) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c))) << word;
    }
  }
}

TEST(WordGeneratorTest, VocabularyIsDistinct) {
  WordGenerator gen(Rng(2));
  const std::vector<std::string> vocab = gen.Vocabulary(300);
  EXPECT_EQ(vocab.size(), 300u);
  std::set<std::string> unique(vocab.begin(), vocab.end());
  EXPECT_EQ(unique.size(), 300u);
}

TEST(WordGeneratorTest, DeterministicForSameSeed) {
  WordGenerator a(Rng(3));
  WordGenerator b(Rng(3));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Word(), b.Word());
  }
}

TEST(WordGeneratorTest, SurnameIsCapitalised) {
  WordGenerator gen(Rng(4));
  for (int i = 0; i < 50; ++i) {
    const std::string surname = gen.Surname();
    ASSERT_FALSE(surname.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(surname[0])));
  }
}

TEST(WordGeneratorTest, AuthorHasInitialDotSurname) {
  WordGenerator gen(Rng(5));
  const std::string author = gen.Author();
  ASSERT_GE(author.size(), 4u);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(author[0])));
  EXPECT_EQ(author[1], '.');
  EXPECT_EQ(author[2], ' ');
}

TEST(WordGeneratorTest, ModelCodeShape) {
  WordGenerator gen(Rng(6));
  for (int i = 0; i < 50; ++i) {
    const std::string code = gen.ModelCode();
    const size_t dash = code.find('-');
    ASSERT_NE(dash, std::string::npos);
    for (size_t c = 0; c < dash; ++c) {
      EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(code[c])));
    }
    for (size_t c = dash + 1; c < code.size(); ++c) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(code[c])));
    }
  }
}

TEST(WordGeneratorTest, ZipfIndexSkewsTowardLowRanks) {
  WordGenerator gen(Rng(7));
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.ZipfIndex(100) < 10) ++low;
  }
  // Under the 1/(k+1) law the first 10 of 100 ranks carry ~log(11)/log(101)
  // ~ 52% of the mass — far above the uniform 10%.
  EXPECT_GT(low, n / 4);
}

TEST(WordGeneratorTest, ZipfIndexInRange) {
  WordGenerator gen(Rng(8));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(gen.ZipfIndex(7), 7u);
  }
  EXPECT_EQ(gen.ZipfIndex(1), 0u);
}

}  // namespace
}  // namespace datagen
}  // namespace oasis
