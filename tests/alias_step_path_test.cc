// Equivalence and performance-semantics tests for OasisStepPath::kAlias:
//  * with rebuild tolerance 0 the alias snapshot is refreshed whenever
//    anything drifted at all, so the distribution each draw uses tracks
//    CurrentInstrumental() up to one observation of staleness;
//  * the long-run stratum-visit distribution matches BOTH the Fenwick and the
//    fused paths within statistical tolerance — total variation and a
//    two-sample chi-squared statistic (the paths consume the RNG differently,
//    so the promise is equality in distribution, not bit-identity);
//  * estimates remain consistent at ANY rebuild tolerance, including ones
//    that leave the snapshot very stale (the epsilon mix keeps full support
//    and weights are computed against the mixture actually sampled);
//  * with the default tolerance the actually-sampled distribution stays close
//    to the ideal v(t) — the dual drift gate (F-hat drift OR accumulated L1
//    posterior-mass drift) bounds the staleness;
//  * StepBatch(n) on the alias path equals n calls to Step() exactly;
//  * the alias step performs zero heap allocations after warm-up, INCLUDING
//    the in-place table rebuilds the drift gate triggers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/oasis.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"
#include "tests/test_util.h"

namespace {
// Global operator new/delete hooks counting heap allocations, toggled around
// the measured region only (same scheme as fenwick_step_path_test.cc).
std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace oasis {
namespace {

using testutil::MakeSyntheticPool;
using testutil::SyntheticPool;
using testutil::SyntheticPoolOptions;

class AliasStepPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticPoolOptions pool_options;
    pool_options.size = 4000;
    pool_options.match_fraction = 0.03;
    pool_options.seed = 77;
    pool_ = MakeSyntheticPool(pool_options);
    oracle_ = std::make_unique<GroundTruthOracle>(pool_.truth);
    strata_ = std::make_shared<const Strata>(
        StratifyCsf(pool_.scored.scores, 12, false).ValueOrDie());
  }

  std::unique_ptr<OasisSampler> MakeSampler(OasisStepPath path, uint64_t seed,
                                            LabelCache& labels,
                                            double rebuild_tol = 1e-2) {
    OasisOptions options;
    options.step_path = path;
    options.fenwick_rebuild_tol = rebuild_tol;
    return OasisSampler::Create(&pool_.scored, &labels, strata_, options, Rng(seed))
        .ValueOrDie();
  }

  /// Per-stratum visit counts. Every step observes exactly one label into its
  /// drawn stratum, so the beta model's observation counters are the visit
  /// histogram.
  static std::vector<double> VisitCounts(const OasisSampler& sampler) {
    const size_t k = sampler.strata().num_strata();
    std::vector<double> counts(k, 0.0);
    for (size_t s = 0; s < k; ++s) {
      counts[s] = static_cast<double>(sampler.model().labels_observed(s));
    }
    return counts;
  }

  static std::vector<double> Normalized(std::vector<double> counts) {
    double total = 0.0;
    for (double c : counts) total += c;
    for (double& c : counts) c /= total;
    return counts;
  }

  static double TotalVariation(const std::vector<double>& a,
                               const std::vector<double>& b) {
    double tv = 0.0;
    for (size_t i = 0; i < a.size(); ++i) tv += std::fabs(a[i] - b[i]);
    return 0.5 * tv;
  }

  /// Two-sample chi-squared statistic over equal-length visit-count vectors
  /// with equal totals: sum (a_i - b_i)^2 / (a_i + b_i) over non-empty bins,
  /// ~chi2(k - 1) under identical sampling distributions.
  static double TwoSampleChiSquared(const std::vector<double>& a,
                                    const std::vector<double>& b) {
    double stat = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double sum = a[i] + b[i];
      if (sum <= 0.0) continue;
      const double diff = a[i] - b[i];
      stat += diff * diff / sum;
    }
    return stat;
  }

  SyntheticPool pool_;
  std::unique_ptr<GroundTruthOracle> oracle_;
  std::shared_ptr<const Strata> strata_;
};

TEST_F(AliasStepPathTest, RejectsInvalidRebuildTolerance) {
  LabelCache labels(oracle_.get());
  OasisOptions options;
  options.step_path = OasisStepPath::kAlias;
  options.fenwick_rebuild_tol = -0.5;
  EXPECT_FALSE(
      OasisSampler::Create(&pool_.scored, &labels, strata_, options, Rng(1)).ok());
  options.fenwick_rebuild_tol = std::nan("");
  EXPECT_FALSE(
      OasisSampler::Create(&pool_.scored, &labels, strata_, options, Rng(1)).ok());
}

TEST_F(AliasStepPathTest, AliasInstrumentalRequiresAliasPath) {
  LabelCache labels(oracle_.get());
  auto fused = MakeSampler(OasisStepPath::kFused, 3, labels);
  EXPECT_FALSE(fused->AliasInstrumental().ok());
  auto fenwick = MakeSampler(OasisStepPath::kFenwick, 4, labels);
  EXPECT_FALSE(fenwick->AliasInstrumental().ok());
  auto alias = MakeSampler(OasisStepPath::kAlias, 5, labels);
  EXPECT_TRUE(alias->AliasInstrumental().ok());
}

TEST_F(AliasStepPathTest, ZeroToleranceTracksExactInstrumental) {
  // With rebuild tolerance 0 the dual drift gate fires on any movement —
  // F-hat changed, or any observed stratum's mass changed — so the table is
  // always a snapshot of v(pi(t'), F(t')) at most one observation behind;
  // after hundreds of steps that single-observation increment is tiny.
  LabelCache labels(oracle_.get());
  auto sampler = MakeSampler(OasisStepPath::kAlias, 5, labels, 0.0);
  ASSERT_TRUE(sampler->StepBatch(1000).ok());
  const std::vector<double> actual = sampler->AliasInstrumental().ValueOrDie();
  const std::vector<double> ideal = sampler->CurrentInstrumental().ValueOrDie();
  ASSERT_EQ(actual.size(), ideal.size());
  for (size_t k = 0; k < actual.size(); ++k) {
    EXPECT_NEAR(actual[k], ideal[k], 5e-3);
  }
  double sum = 0.0;
  for (double v : actual) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(AliasStepPathTest, VisitDistributionMatchesFenwickAndFusedPaths) {
  // 20k steps per path. All three draw from the same adaptive distribution
  // but consume the RNG differently, so compare long-run stratum-visit
  // histograms: small total variation pairwise, and a two-sample chi-squared
  // statistic far below gross-mismatch territory (identical distributions
  // give ~chi2(K - 1); a structurally different instrumental gives values in
  // the thousands at this sample size).
  const int kSteps = 20000;
  LabelCache fused_labels(oracle_.get());
  LabelCache fenwick_labels(oracle_.get());
  LabelCache alias_labels(oracle_.get());
  auto fused = MakeSampler(OasisStepPath::kFused, 11, fused_labels);
  auto fenwick = MakeSampler(OasisStepPath::kFenwick, 12, fenwick_labels);
  auto alias = MakeSampler(OasisStepPath::kAlias, 14, alias_labels);
  ASSERT_TRUE(fused->StepBatch(kSteps).ok());
  ASSERT_TRUE(fenwick->StepBatch(kSteps).ok());
  ASSERT_TRUE(alias->StepBatch(kSteps).ok());

  const std::vector<double> fused_counts = VisitCounts(*fused);
  const std::vector<double> fenwick_counts = VisitCounts(*fenwick);
  const std::vector<double> alias_counts = VisitCounts(*alias);

  const double tv_vs_fused =
      TotalVariation(Normalized(alias_counts), Normalized(fused_counts));
  EXPECT_LT(tv_vs_fused, 0.05)
      << "total variation alias vs fused: " << tv_vs_fused;
  const double tv_vs_fenwick =
      TotalVariation(Normalized(alias_counts), Normalized(fenwick_counts));
  EXPECT_LT(tv_vs_fenwick, 0.05)
      << "total variation alias vs fenwick: " << tv_vs_fenwick;

  const double chi2_vs_fenwick =
      TwoSampleChiSquared(alias_counts, fenwick_counts);
  EXPECT_LT(chi2_vs_fenwick, 150.0)
      << "two-sample chi-squared alias vs fenwick: " << chi2_vs_fenwick;

  // And all converge to the same F.
  const EstimateSnapshot fused_snap = fused->Estimate();
  const EstimateSnapshot alias_snap = alias->Estimate();
  ASSERT_TRUE(fused_snap.f_defined);
  ASSERT_TRUE(alias_snap.f_defined);
  EXPECT_NEAR(fused_snap.f_alpha, alias_snap.f_alpha, 0.04);
}

TEST_F(AliasStepPathTest, DefaultToleranceStaysCloseToIdealInstrumental) {
  LabelCache labels(oracle_.get());
  auto sampler = MakeSampler(OasisStepPath::kAlias, 13, labels);  // tol 1e-2
  ASSERT_TRUE(sampler->StepBatch(5000).ok());
  const std::vector<double> actual = sampler->AliasInstrumental().ValueOrDie();
  const std::vector<double> ideal = sampler->CurrentInstrumental().ValueOrDie();
  // The staleness is bounded by the dual gate: at most fenwick_rebuild_tol of
  // F drift pushed through the v* formula plus the same fraction of the total
  // mass in accumulated posterior drift; an L1 bound of a few multiples of
  // the tolerance catches structural divergence without flaking.
  double l1 = 0.0;
  for (size_t k = 0; k < actual.size(); ++k) l1 += std::fabs(actual[k] - ideal[k]);
  EXPECT_LT(l1, 0.05) << "L1(actual, ideal) = " << l1;
}

TEST_F(AliasStepPathTest, EstimatesConsistentAtAnyRebuildTolerance) {
  // Consistency does not depend on the drift gate: the importance weight is
  // always computed against the mixture the draw actually used, which keeps
  // full support through the epsilon component. Even a tolerance that leaves
  // the snapshot frozen for long stretches must converge to the true F.
  const double kTols[] = {0.0, 1e-3, 1e-2, 0.1, 0.5};
  uint64_t seed = 29;
  for (const double tol : kTols) {
    LabelCache labels(oracle_.get());
    auto sampler = MakeSampler(OasisStepPath::kAlias, seed++, labels, tol);
    while (sampler->labels_consumed() < 2500) {
      ASSERT_TRUE(sampler->Step().ok());
    }
    const EstimateSnapshot snap = sampler->Estimate();
    ASSERT_TRUE(snap.f_defined);
    EXPECT_NEAR(snap.f_alpha, pool_.true_measures.f_alpha, 0.06)
        << "rebuild tolerance " << tol;
  }
}

TEST_F(AliasStepPathTest, StepBatchMatchesStepExactly) {
  LabelCache labels_a(oracle_.get());
  LabelCache labels_b(oracle_.get());
  auto stepwise = MakeSampler(OasisStepPath::kAlias, 19, labels_a);
  auto batched = MakeSampler(OasisStepPath::kAlias, 19, labels_b);

  int done = 0;
  int batch = 1;
  while (done < 600) {
    const int n = std::min(batch, 600 - done);
    for (int i = 0; i < n; ++i) ASSERT_TRUE(stepwise->Step().ok());
    ASSERT_TRUE(batched->StepBatch(n).ok());
    const EstimateSnapshot a = stepwise->Estimate();
    const EstimateSnapshot b = batched->Estimate();
    EXPECT_EQ(a.f_defined, b.f_defined);
    EXPECT_EQ(a.f_alpha, b.f_alpha);
    EXPECT_EQ(a.precision, b.precision);
    EXPECT_EQ(a.recall, b.recall);
    done += n;
    batch = batch * 2 + 1;
  }
  EXPECT_EQ(stepwise->iterations(), batched->iterations());
  EXPECT_EQ(stepwise->labels_consumed(), batched->labels_consumed());
}

TEST_F(AliasStepPathTest, AliasStepPerformsZeroHeapAllocations) {
  LabelCache labels(oracle_.get());
  auto sampler = MakeSampler(OasisStepPath::kAlias, 23, labels);
  // Warm up: first steps include early-F rebuilds and scratch sizing. Unlike
  // kFenwick, drift rebuilds KEEP firing in the measured region below — the
  // in-place Vose refresh over retained scratch must not allocate either.
  ASSERT_TRUE(sampler->StepBatch(64).ok());

  g_allocation_count.store(0);
  g_count_allocations.store(true);
  const Status status = sampler->StepBatch(2000);
  g_count_allocations.store(false);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(g_allocation_count.load(), 0);
}

}  // namespace
}  // namespace oasis
