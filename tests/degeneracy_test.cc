// DegeneracyMonitor tests plus OASIS's graceful-degradation hook:
//  * the Kish ESS and max-weight-share math against closed forms;
//  * the min-observations gate, both trigger conditions, Reset, Summary;
//  * an ESS collapse on an adversarial pool boosts OASIS's epsilon floor
//    (and freezes the instrumental), after which stepping stays healthy;
//  * degrade mode with untrippable thresholds is bit-identical to the
//    default sampler — the monitor itself never perturbs the estimates;
//  * Create() rejects an out-of-range degraded_epsilon.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/oasis.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/label_cache.h"
#include "stats/degeneracy.h"
#include "strata/csf.h"
#include "tests/test_util.h"

namespace oasis {
namespace {

// --- DegeneracyMonitor unit behaviour -------------------------------------

TEST(DegeneracyMonitorTest, UniformWeightsAreHealthy) {
  DegeneracyMonitor monitor;
  for (int i = 0; i < 100; ++i) monitor.Observe(1.0);
  EXPECT_EQ(monitor.observations(), 100);
  EXPECT_DOUBLE_EQ(monitor.ess(), 100.0);
  EXPECT_DOUBLE_EQ(monitor.ess_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(monitor.max_weight_share(), 0.01);
  EXPECT_FALSE(monitor.degenerate());
}

TEST(DegeneracyMonitorTest, KishEssMatchesClosedForm) {
  DegeneracyMonitor monitor;
  for (const double w : {1.0, 2.0, 3.0, 4.0}) monitor.Observe(w);
  // ESS = (1+2+3+4)^2 / (1+4+9+16) = 100 / 30.
  EXPECT_DOUBLE_EQ(monitor.ess(), 100.0 / 30.0);
  EXPECT_DOUBLE_EQ(monitor.max_weight_share(), 0.4);
  EXPECT_EQ(monitor.observations(), 4);
}

TEST(DegeneracyMonitorTest, ZeroHistoryReportsZeroEss) {
  DegeneracyMonitor monitor;
  EXPECT_DOUBLE_EQ(monitor.ess(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.ess_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.max_weight_share(), 0.0);
  EXPECT_FALSE(monitor.degenerate());
  // All-zero weights (possible in principle) stay well-defined too.
  monitor.Observe(0.0);
  EXPECT_DOUBLE_EQ(monitor.ess(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.max_weight_share(), 0.0);
}

TEST(DegeneracyMonitorTest, SingleDominantWeightTripsTailMonitor) {
  DegeneracyOptions options;
  options.min_observations = 50;
  DegeneracyMonitor monitor(options);
  for (int i = 0; i < 99; ++i) monitor.Observe(1e-6);
  monitor.Observe(1.0);  // One draw carries essentially all the mass.
  EXPECT_GT(monitor.max_weight_share(), options.tail_mass_ceiling);
  EXPECT_LT(monitor.ess(), 1.5);
  EXPECT_TRUE(monitor.degenerate());
}

TEST(DegeneracyMonitorTest, EssFloorTripsOnCollapse) {
  DegeneracyOptions options;
  options.min_observations = 10;
  options.ess_floor_fraction = 0.02;
  options.tail_mass_ceiling = 2.0;  // Tail monitor can never fire.
  DegeneracyMonitor monitor(options);
  // 1000 tiny weights and 10 huge ones: ESS ~ 10, fraction ~ 0.01 < 0.02.
  for (int i = 0; i < 1000; ++i) monitor.Observe(1e-8);
  for (int i = 0; i < 10; ++i) monitor.Observe(1.0);
  EXPECT_LT(monitor.ess_fraction(), options.ess_floor_fraction);
  EXPECT_TRUE(monitor.degenerate());
}

TEST(DegeneracyMonitorTest, MinObservationsGatesTheTrigger) {
  DegeneracyOptions options;
  options.min_observations = 64;
  DegeneracyMonitor monitor(options);
  monitor.Observe(1.0);
  for (int i = 0; i < 62; ++i) {
    monitor.Observe(1e-9);
    EXPECT_FALSE(monitor.degenerate()) << "observation " << i;
  }
  monitor.Observe(1e-9);  // 64th observation: the gate lifts.
  EXPECT_TRUE(monitor.degenerate());
}

TEST(DegeneracyMonitorTest, ResetForgetsHistoryKeepsThresholds) {
  DegeneracyOptions options;
  options.min_observations = 2;
  DegeneracyMonitor monitor(options);
  monitor.Observe(1.0);
  monitor.Observe(1e-9);
  ASSERT_TRUE(monitor.degenerate());
  monitor.Reset();
  EXPECT_EQ(monitor.observations(), 0);
  EXPECT_DOUBLE_EQ(monitor.ess(), 0.0);
  EXPECT_FALSE(monitor.degenerate());
  EXPECT_EQ(monitor.options().min_observations, 2);
}

TEST(DegeneracyMonitorTest, SummaryMentionsDegeneracy) {
  DegeneracyOptions options;
  options.min_observations = 2;
  DegeneracyMonitor monitor(options);
  monitor.Observe(1.0);
  EXPECT_NE(monitor.Summary().find("ess="), std::string::npos);
  EXPECT_EQ(monitor.Summary().find("degenerate"), std::string::npos);
  monitor.Observe(1e-9);
  monitor.Observe(1e-9);
  EXPECT_NE(monitor.Summary().find("degenerate"), std::string::npos)
      << monitor.Summary();
}

// --- OASIS graceful degradation -------------------------------------------

/// A pool built to starve the instrumental distribution: the classifier is
/// confidently right about a large easy mass, while the few true matches that
/// decide recall hide at rock-bottom scores — a stratum OASIS's optimal
/// instrumental gives vanishing mass, so the rare draw that lands there
/// carries an outsized importance weight.
struct AdversarialPool {
  ScoredPool scored;
  std::vector<uint8_t> truth;
};

AdversarialPool MakeAdversarialPool() {
  AdversarialPool pool;
  Rng rng(0xadbad);  // Deterministic score spread so CSF gets real bins.
  const int64_t kEasy = 1900;
  const int64_t kHidden = 100;
  for (int64_t i = 0; i < kEasy; ++i) {
    pool.scored.scores.push_back(0.90 + 0.09 * rng.NextDouble());
    pool.scored.predictions.push_back(1);
    pool.truth.push_back(1);
  }
  for (int64_t i = 0; i < kHidden; ++i) {
    pool.scored.scores.push_back(0.005 + 0.02 * rng.NextDouble());
    pool.scored.predictions.push_back(0);
    pool.truth.push_back(1);  // Hidden matches the classifier missed.
  }
  pool.scored.scores_are_probabilities = true;
  pool.scored.threshold = 0.5;
  return pool;
}

std::shared_ptr<const Strata> MakeStrata(const ScoredPool& pool, int bins) {
  return std::make_shared<const Strata>(
      StratifyCsf(pool.scores, bins, false).ValueOrDie());
}

TEST(OasisDegradeTest, EssCollapseBoostsEpsilonFloorAndFreezes) {
  const AdversarialPool pool = MakeAdversarialPool();
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);

  OasisOptions options;
  options.degrade_on_degeneracy = true;
  options.degraded_epsilon = 0.6;
  // Sensitive thresholds: the monitor's default floor is meant for
  // production; the test wants the trigger to fire within a short run.
  options.degeneracy.min_observations = 64;
  options.degeneracy.ess_floor_fraction = 0.9;
  options.degeneracy.tail_mass_ceiling = 2.0;  // Isolate the ESS trigger.
  auto sampler = OasisSampler::Create(&pool.scored, &labels,
                                      MakeStrata(pool.scored, 15), options,
                                      Rng(2024))
                     .ValueOrDie();
  EXPECT_FALSE(sampler->degraded());
  EXPECT_DOUBLE_EQ(sampler->active_epsilon(), options.epsilon);

  int steps = 0;
  while (!sampler->degraded() && steps < 4000) {
    ASSERT_TRUE(sampler->Step().ok());
    ++steps;
  }
  ASSERT_TRUE(sampler->degraded())
      << "never degraded; " << sampler->degeneracy_monitor()->Summary();
  EXPECT_DOUBLE_EQ(sampler->active_epsilon(), 0.6);
  EXPECT_GE(sampler->degeneracy_monitor()->observations(),
            options.degeneracy.min_observations);

  // Degraded (frozen-instrumental) stepping keeps working: the sampler still
  // labels, the estimate stays defined and in range, diagnostics keep
  // flowing.
  const int64_t observations_before =
      sampler->degeneracy_monitor()->observations();
  const int64_t labels_before = sampler->labels_consumed();
  ASSERT_TRUE(sampler->StepBatch(500).ok());
  EXPECT_EQ(sampler->degeneracy_monitor()->observations(),
            observations_before + 500);
  EXPECT_GT(sampler->labels_consumed(), labels_before);
  const EstimateSnapshot snap = sampler->Estimate();
  ASSERT_TRUE(snap.f_defined);
  EXPECT_GE(snap.f_alpha, 0.0);
  EXPECT_LE(snap.f_alpha, 1.0);
}

TEST(OasisDegradeTest, UntrippedDegradeModeIsBitIdenticalToDefault) {
  testutil::SyntheticPoolOptions pool_options;
  pool_options.size = 2000;
  pool_options.seed = 555;
  const testutil::SyntheticPool pool =
      testutil::MakeSyntheticPool(pool_options);
  GroundTruthOracle oracle(pool.truth);
  auto strata = MakeStrata(pool.scored, 20);

  OasisOptions armed;
  armed.degrade_on_degeneracy = true;
  armed.degeneracy.ess_floor_fraction = 0.0;  // Can never fire...
  armed.degeneracy.tail_mass_ceiling = 2.0;   // ...on either trigger.

  LabelCache labels_a(&oracle);
  LabelCache labels_b(&oracle);
  auto plain = OasisSampler::Create(&pool.scored, &labels_a, strata,
                                    OasisOptions{}, Rng(77))
                   .ValueOrDie();
  auto guarded =
      OasisSampler::Create(&pool.scored, &labels_b, strata, armed, Rng(77))
          .ValueOrDie();
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(plain->StepBatch(100).ok());
    ASSERT_TRUE(guarded->StepBatch(100).ok());
    const EstimateSnapshot a = plain->Estimate();
    const EstimateSnapshot b = guarded->Estimate();
    EXPECT_EQ(a.f_defined, b.f_defined);
    EXPECT_EQ(a.f_alpha, b.f_alpha);
    EXPECT_EQ(a.precision, b.precision);
    EXPECT_EQ(a.recall, b.recall);
  }
  EXPECT_FALSE(guarded->degraded());
  EXPECT_EQ(plain->labels_consumed(), guarded->labels_consumed());
  EXPECT_EQ(plain->iterations(), guarded->iterations());
  // The always-on monitor saw the identical weight stream on both.
  EXPECT_EQ(plain->degeneracy_monitor()->ess(),
            guarded->degeneracy_monitor()->ess());
}

TEST(OasisDegradeTest, CreateRejectsOutOfRangeDegradedEpsilon) {
  const AdversarialPool pool = MakeAdversarialPool();
  GroundTruthOracle oracle(pool.truth);
  LabelCache labels(&oracle);
  auto strata = MakeStrata(pool.scored, 10);

  OasisOptions options;
  options.degrade_on_degeneracy = true;
  options.degraded_epsilon = 0.0;
  EXPECT_FALSE(
      OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(1))
          .ok());
  options.degraded_epsilon = 1.5;
  EXPECT_FALSE(
      OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(1))
          .ok());
  // In range is fine — and a degraded_epsilon of exactly 1 (uniform-over-
  // strata exploration) is allowed.
  options.degraded_epsilon = 1.0;
  EXPECT_TRUE(
      OasisSampler::Create(&pool.scored, &labels, strata, options, Rng(1))
          .ok());
}

}  // namespace
}  // namespace oasis
