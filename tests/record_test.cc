#include "er/record.h"

#include <gtest/gtest.h>

namespace oasis {
namespace er {
namespace {

TEST(SchemaTest, FieldLookup) {
  Schema schema({{"name", FieldKind::kShortText},
                 {"desc", FieldKind::kLongText},
                 {"price", FieldKind::kNumeric}});
  EXPECT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.FieldIndex("desc"), 1);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);
  EXPECT_EQ(schema.field(2).kind, FieldKind::kNumeric);
}

TEST(FieldValueTest, Factories) {
  const FieldValue text = FieldValue::Text("hello");
  EXPECT_EQ(text.text, "hello");
  EXPECT_FALSE(text.missing);

  const FieldValue number = FieldValue::Number(3.5);
  EXPECT_DOUBLE_EQ(number.number, 3.5);
  EXPECT_FALSE(number.missing);

  const FieldValue missing = FieldValue::Missing();
  EXPECT_TRUE(missing.missing);
}

TEST(DatabaseTest, ValidateAcceptsMatchingArity) {
  Database db;
  db.schema = Schema({{"a", FieldKind::kShortText}, {"b", FieldKind::kNumeric}});
  Record r;
  r.values.push_back(FieldValue::Text("x"));
  r.values.push_back(FieldValue::Number(1.0));
  db.records.push_back(r);
  EXPECT_TRUE(db.Validate().ok());
  EXPECT_EQ(db.size(), 1);
}

TEST(DatabaseTest, ValidateRejectsArityMismatch) {
  Database db;
  db.schema = Schema({{"a", FieldKind::kShortText}, {"b", FieldKind::kNumeric}});
  Record r;
  r.values.push_back(FieldValue::Text("x"));  // Only one of two fields.
  db.records.push_back(r);
  EXPECT_FALSE(db.Validate().ok());
}

}  // namespace
}  // namespace er
}  // namespace oasis
