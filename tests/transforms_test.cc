#include "stats/transforms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace oasis {
namespace {

TEST(ExpitTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Expit(0.0), 0.5);
  EXPECT_NEAR(Expit(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(Expit(-2.0), 1.0 - Expit(2.0), 1e-15);
}

TEST(ExpitTest, SaturatesWithoutOverflow) {
  EXPECT_NEAR(Expit(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Expit(-1000.0), 0.0, 1e-12);
}

TEST(LogitTest, InverseOfExpit) {
  for (double p : {0.01, 0.2, 0.5, 0.77, 0.99}) {
    EXPECT_NEAR(Expit(Logit(p)), p, 1e-12);
  }
  for (double x : {-4.0, -1.0, 0.0, 0.5, 3.0}) {
    EXPECT_NEAR(Logit(Expit(x)), x, 1e-9);
  }
}

TEST(LogitTest, ClampsExtremes) {
  EXPECT_TRUE(std::isfinite(Logit(0.0)));
  EXPECT_TRUE(std::isfinite(Logit(1.0)));
  EXPECT_LT(Logit(0.0), Logit(0.5));
  EXPECT_GT(Logit(1.0), Logit(0.5));
}

TEST(ClampTest, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.3, 0.0, 1.0), 0.3);
}

TEST(NormalizeInPlaceTest, NormalizesAndReturnsSum) {
  std::vector<double> weights{1.0, 3.0};
  const double sum = NormalizeInPlace(weights);
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_DOUBLE_EQ(weights[0], 0.25);
  EXPECT_DOUBLE_EQ(weights[1], 0.75);
}

TEST(NormalizeInPlaceTest, ZeroMassBecomesUniform) {
  std::vector<double> weights{0.0, 0.0, 0.0, 0.0};
  NormalizeInPlace(weights);
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 0.25);
}

TEST(NormalizeInPlaceTest, EmptyVectorIsNoop) {
  std::vector<double> weights;
  EXPECT_DOUBLE_EQ(NormalizeInPlace(weights), 0.0);
  EXPECT_TRUE(weights.empty());
}

TEST(MeanAbsoluteDifferenceTest, KnownValue) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteDifference(a, b), (1.0 + 0.0 + 2.0) / 3.0);
}

TEST(MeanAbsoluteDifferenceTest, IdenticalIsZero) {
  const std::vector<double> a{0.4, 0.6};
  EXPECT_DOUBLE_EQ(MeanAbsoluteDifference(a, a), 0.0);
}

TEST(MeanAbsoluteDifferenceTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteDifference({}, {}), 0.0);
}

}  // namespace
}  // namespace oasis
