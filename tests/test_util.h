#ifndef OASIS_TESTS_TEST_UTIL_H_
#define OASIS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "sampling/sampler.h"
#include "stats/transforms.h"

namespace oasis {
namespace testutil {

/// A small synthetic evaluation pool with known ground truth, built so that
/// scores correlate with truth (matches score high) and predictions come
/// from thresholding the scores — the same structure the real ER pools have,
/// at unit-test scale.
struct SyntheticPool {
  ScoredPool scored;
  std::vector<uint8_t> truth;
  Measures true_measures;  // Computed with full ground truth at alpha = 1/2.
  int64_t num_matches = 0;
};

struct SyntheticPoolOptions {
  int64_t size = 2000;
  /// Approximate fraction of true matches.
  double match_fraction = 0.05;
  /// Gaussian noise added to the class signal; larger = weaker classifier.
  double noise = 0.6;
  /// Produce probability scores in [0,1] (via expit) instead of raw margins.
  bool probability_scores = false;
  uint64_t seed = 1234;
};

inline SyntheticPool MakeSyntheticPool(const SyntheticPoolOptions& options) {
  Rng rng(options.seed);
  SyntheticPool pool;
  pool.scored.scores.reserve(static_cast<size_t>(options.size));
  pool.scored.predictions.reserve(static_cast<size_t>(options.size));
  pool.truth.reserve(static_cast<size_t>(options.size));

  for (int64_t i = 0; i < options.size; ++i) {
    const bool match = rng.NextBernoulli(options.match_fraction);
    // Matches centre at +1, non-matches at -1 on the margin scale.
    double margin = (match ? 1.0 : -1.0) + options.noise * rng.NextGaussian();
    pool.truth.push_back(match ? 1 : 0);
    pool.num_matches += match ? 1 : 0;
    if (options.probability_scores) {
      pool.scored.scores.push_back(Expit(2.0 * margin));
    } else {
      pool.scored.scores.push_back(margin);
    }
  }
  pool.scored.scores_are_probabilities = options.probability_scores;
  pool.scored.threshold = options.probability_scores ? 0.5 : 0.0;
  for (int64_t i = 0; i < options.size; ++i) {
    pool.scored.predictions.push_back(
        pool.scored.scores[static_cast<size_t>(i)] >= pool.scored.threshold ? 1
                                                                            : 0);
  }

  const ConfusionCounts counts =
      CountConfusion(pool.truth, pool.scored.predictions).ValueOrDie();
  pool.true_measures = ComputeMeasures(counts, 0.5);
  return pool;
}

}  // namespace testutil
}  // namespace oasis

#endif  // OASIS_TESTS_TEST_UTIL_H_
