#include "stats/kl_divergence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace oasis {
namespace {

TEST(KlDivergenceTest, IdenticalDistributionsGiveZero) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p).ValueOrDie(), 0.0);
}

TEST(KlDivergenceTest, KnownValue) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{0.9, 0.1};
  const double expected = 0.5 * std::log(0.5 / 0.9) + 0.5 * std::log(0.5 / 0.1);
  EXPECT_NEAR(KlDivergence(p, q).ValueOrDie(), expected, 1e-12);
}

TEST(KlDivergenceTest, AcceptsUnnormalisedInput) {
  const std::vector<double> p{1.0, 1.0};
  const std::vector<double> q{9.0, 1.0};
  const double expected = 0.5 * std::log(0.5 / 0.9) + 0.5 * std::log(0.5 / 0.1);
  EXPECT_NEAR(KlDivergence(p, q).ValueOrDie(), expected, 1e-12);
}

TEST(KlDivergenceTest, ZeroPTermContributesNothing) {
  const std::vector<double> p{0.0, 1.0};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NEAR(KlDivergence(p, q).ValueOrDie(), std::log(2.0), 1e-12);
}

TEST(KlDivergenceTest, AbsoluteContinuityViolationIsInfinite) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{1.0, 0.0};
  EXPECT_TRUE(std::isinf(KlDivergence(p, q).ValueOrDie()));
}

TEST(KlDivergenceTest, NonNegative) {
  const std::vector<double> p{0.1, 0.2, 0.3, 0.4};
  const std::vector<double> q{0.4, 0.3, 0.2, 0.1};
  EXPECT_GE(KlDivergence(p, q).ValueOrDie(), 0.0);
}

TEST(KlDivergenceTest, RejectsLengthMismatch) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{1.0};
  EXPECT_FALSE(KlDivergence(p, q).ok());
}

TEST(KlDivergenceTest, RejectsEmpty) {
  EXPECT_FALSE(KlDivergence({}, {}).ok());
}

TEST(KlDivergenceTest, RejectsNegativeWeights) {
  const std::vector<double> p{0.5, -0.5};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_FALSE(KlDivergence(p, q).ok());
}

TEST(KlDivergenceTest, RejectsZeroMass) {
  const std::vector<double> p{0.0, 0.0};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_FALSE(KlDivergence(p, q).ok());
}

}  // namespace
}  // namespace oasis
