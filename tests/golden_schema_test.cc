// Golden locks on the on-disk interchange formats: the curves-CSV header
// (base columns plus every optional group) and the RunSummary JSON schema.
// These files are the contract between oasis_run, oasis_verify, and any
// external tooling — a diff here is a BREAKING format change and must bump
// RunSummary::schema_version / extend (never rename or reorder) the columns.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/csv.h"
#include "experiments/runner.h"
#include "experiments/summary.h"

namespace oasis {
namespace experiments {
namespace {

std::string FirstLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}

/// A minimal two-checkpoint curve with every optional column group enabled.
ErrorCurve FullyLoadedCurve() {
  ErrorCurve curve;
  curve.method = "OASIS-30";
  curve.budgets = {100, 200};
  curve.mean_abs_error = {0.05, 0.025};
  curve.stddev = {0.06, 0.03};
  curve.mean_estimate = {0.88, 0.895};
  curve.frac_defined = {1.0, 1.0};
  curve.repeats = 2;
  curve.has_remote_cost = true;
  curve.mean_round_trips = {10.0, 20.0};
  curve.mean_simulated_seconds = {1.5, 3.0};
  curve.mean_label_cost = {0.1, 0.2};
  curve.has_fault_stats = true;
  curve.mean_retries = {3.0, 6.0};
  curve.mean_give_ups = {0.0, 1.0};
  curve.has_degeneracy_stats = true;
  curve.mean_ess = {80.0, 150.0};
  curve.final_estimates = {0.87, 0.91};
  curve.final_defined = {1, 1};
  return curve;
}

TEST(GoldenSchemaTest, CurvesCsvBaseHeaderIsLocked) {
  const std::string path = "/tmp/oasis_golden_schema_base.csv";
  ErrorCurve curve;
  curve.method = "Passive";
  curve.budgets = {100};
  curve.mean_abs_error = {0.1};
  curve.stddev = {0.1};
  curve.mean_estimate = {0.5};
  curve.frac_defined = {1.0};
  curve.repeats = 1;
  ASSERT_TRUE(WriteCurvesCsv(path, {curve}).ok());
  EXPECT_EQ(FirstLine(path),
            "method,labels,mean_abs_error,stddev,mean_estimate,frac_defined");
  std::remove(path.c_str());
}

TEST(GoldenSchemaTest, CurvesCsvFullHeaderIsLocked) {
  const std::string path = "/tmp/oasis_golden_schema_full.csv";
  ASSERT_TRUE(WriteCurvesCsv(path, {FullyLoadedCurve()}).ok());
  EXPECT_EQ(FirstLine(path),
            "method,labels,mean_abs_error,stddev,mean_estimate,frac_defined,"
            "round_trips,sim_seconds,label_cost,retries,give_ups,ess");
  std::remove(path.c_str());
}

TEST(GoldenSchemaTest, CurvesCsvRoundTripsEveryColumnGroup) {
  const std::string path = "/tmp/oasis_golden_schema_roundtrip.csv";
  const ErrorCurve curve = FullyLoadedCurve();
  ASSERT_TRUE(WriteCurvesCsv(path, {curve}).ok());
  const std::vector<ErrorCurve> curves = ReadCurvesCsv(path).ValueOrDie();
  std::remove(path.c_str());
  ASSERT_EQ(curves.size(), 1u);
  const ErrorCurve& read = curves[0];
  EXPECT_EQ(read.method, curve.method);
  EXPECT_EQ(read.budgets, curve.budgets);
  EXPECT_EQ(read.mean_abs_error, curve.mean_abs_error);
  EXPECT_TRUE(read.has_remote_cost);
  EXPECT_EQ(read.mean_label_cost, curve.mean_label_cost);
  EXPECT_TRUE(read.has_fault_stats);
  EXPECT_EQ(read.mean_retries, curve.mean_retries);
  EXPECT_TRUE(read.has_degeneracy_stats);
  EXPECT_EQ(read.mean_ess, curve.mean_ess);
}

/// A deterministic summary touching every field with distinctive values.
RunSummary GoldenSummary() {
  RunSummary summary;
  summary.scenario = "stripe-f90";
  summary.method = "OASIS-30";
  summary.alpha = 0.5;
  summary.pool_size = 20000;
  summary.scenario_seed = 11;
  summary.run_seed = 7;
  summary.true_f = 0.875;
  summary.budget = 1000;
  summary.repeats = 2;
  summary.final_mean_estimate = 0.875;
  summary.final_mean_abs_error = 0.125;
  summary.final_stddev = 0.125;
  summary.final_frac_defined = 1.0;
  summary.expect_sis_degeneracy = false;
  summary.degeneracy_monitored = true;
  summary.degeneracy_tripped = false;
  summary.final_ess_fraction = 0.25;
  summary.max_weight_share = 0.0625;
  summary.verify_tolerance = 0.03125;
  summary.final_estimates = {0.75, 1.0};
  summary.final_defined = {1, 1};
  return summary;
}

TEST(GoldenSchemaTest, RunSummaryJsonIsLockedByteForByte) {
  // The golden text below IS the schema. All values were chosen to be exact
  // in binary floating point (dyadic rationals), so %.17g prints them in
  // their shortest form and the lock stays byte-stable across compilers.
  const std::string expected =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"scenario\": \"stripe-f90\",\n"
      "  \"method\": \"OASIS-30\",\n"
      "  \"alpha\": 0.5,\n"
      "  \"pool_size\": 20000,\n"
      "  \"scenario_seed\": 11,\n"
      "  \"run_seed\": 7,\n"
      "  \"true_f\": 0.875,\n"
      "  \"budget\": 1000,\n"
      "  \"repeats\": 2,\n"
      "  \"final_mean_estimate\": 0.875,\n"
      "  \"final_mean_abs_error\": 0.125,\n"
      "  \"final_stddev\": 0.125,\n"
      "  \"final_frac_defined\": 1,\n"
      "  \"expect_sis_degeneracy\": false,\n"
      "  \"degeneracy_monitored\": true,\n"
      "  \"degeneracy_tripped\": false,\n"
      "  \"final_ess_fraction\": 0.25,\n"
      "  \"max_weight_share\": 0.0625,\n"
      "  \"verify_tolerance\": 0.03125,\n"
      "  \"final_estimates\": [0.75,1],\n"
      "  \"final_defined\": [1,1]\n"
      "}\n";
  EXPECT_EQ(RunSummaryToJson(GoldenSummary()), expected);
}

TEST(GoldenSchemaTest, RunSummaryJsonRoundTripsExactly) {
  const RunSummary golden = GoldenSummary();
  const RunSummary parsed =
      ParseRunSummaryJson(RunSummaryToJson(golden)).ValueOrDie();
  // Re-serialising the parse must reproduce the bytes: proves the reader
  // consumes exactly what the writer emits, with no value drift.
  EXPECT_EQ(RunSummaryToJson(parsed), RunSummaryToJson(golden));
}

TEST(GoldenSchemaTest, UnknownJsonFieldsAreRejected) {
  std::string text = RunSummaryToJson(GoldenSummary());
  text.insert(text.find("  \"scenario\""), "  \"stray_field\": 3,\n");
  const auto result = ParseRunSummaryJson(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("stray_field"), std::string::npos);
}

TEST(GoldenSchemaTest, MissingJsonFieldsAreRejected) {
  std::string text = RunSummaryToJson(GoldenSummary());
  const size_t pos = text.find("  \"true_f\": 0.875,\n");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, std::string("  \"true_f\": 0.875,\n").size());
  EXPECT_FALSE(ParseRunSummaryJson(text).ok());
}

TEST(GoldenSchemaTest, UnsupportedSchemaVersionIsRejected) {
  std::string text = RunSummaryToJson(GoldenSummary());
  const std::string v1 = "\"schema_version\": 1";
  text.replace(text.find(v1), v1.size(), "\"schema_version\": 2");
  EXPECT_FALSE(ParseRunSummaryJson(text).ok());
}

TEST(GoldenSchemaTest, WriteReadFileRoundTrip) {
  const std::string path = "/tmp/oasis_golden_schema_summary.json";
  const RunSummary golden = GoldenSummary();
  ASSERT_TRUE(WriteRunSummaryJson(path, golden).ok());
  const RunSummary read = ReadRunSummaryJson(path).ValueOrDie();
  std::remove(path.c_str());
  EXPECT_EQ(RunSummaryToJson(read), RunSummaryToJson(golden));
  EXPECT_FALSE(ReadRunSummaryJson(path).ok());
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
