// Golden locks on the on-disk interchange formats: the curves-CSV header
// (base columns plus every optional group), the RunSummary JSON schema, and
// the telemetry exports (Prometheus text, metrics JSON, trace JSON).
// These files are the contract between oasis_run, oasis_verify, and any
// external tooling — a diff here is a BREAKING format change and must bump
// RunSummary::schema_version / telemetry_schema_version, or extend (never
// rename or reorder) the columns.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/csv.h"
#include "telemetry/export.h"
#include "experiments/runner.h"
#include "experiments/summary.h"

namespace oasis {
namespace experiments {
namespace {

std::string FirstLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}

/// A minimal two-checkpoint curve with every optional column group enabled.
ErrorCurve FullyLoadedCurve() {
  ErrorCurve curve;
  curve.method = "OASIS-30";
  curve.budgets = {100, 200};
  curve.mean_abs_error = {0.05, 0.025};
  curve.stddev = {0.06, 0.03};
  curve.mean_estimate = {0.88, 0.895};
  curve.frac_defined = {1.0, 1.0};
  curve.repeats = 2;
  curve.has_remote_cost = true;
  curve.mean_round_trips = {10.0, 20.0};
  curve.mean_simulated_seconds = {1.5, 3.0};
  curve.mean_label_cost = {0.1, 0.2};
  curve.has_fault_stats = true;
  curve.mean_retries = {3.0, 6.0};
  curve.mean_give_ups = {0.0, 1.0};
  curve.has_degeneracy_stats = true;
  curve.mean_ess = {80.0, 150.0};
  curve.final_estimates = {0.87, 0.91};
  curve.final_defined = {1, 1};
  return curve;
}

TEST(GoldenSchemaTest, CurvesCsvBaseHeaderIsLocked) {
  const std::string path = "/tmp/oasis_golden_schema_base.csv";
  ErrorCurve curve;
  curve.method = "Passive";
  curve.budgets = {100};
  curve.mean_abs_error = {0.1};
  curve.stddev = {0.1};
  curve.mean_estimate = {0.5};
  curve.frac_defined = {1.0};
  curve.repeats = 1;
  ASSERT_TRUE(WriteCurvesCsv(path, {curve}).ok());
  EXPECT_EQ(FirstLine(path),
            "method,labels,mean_abs_error,stddev,mean_estimate,frac_defined");
  std::remove(path.c_str());
}

TEST(GoldenSchemaTest, CurvesCsvFullHeaderIsLocked) {
  const std::string path = "/tmp/oasis_golden_schema_full.csv";
  ASSERT_TRUE(WriteCurvesCsv(path, {FullyLoadedCurve()}).ok());
  EXPECT_EQ(FirstLine(path),
            "method,labels,mean_abs_error,stddev,mean_estimate,frac_defined,"
            "round_trips,sim_seconds,label_cost,retries,give_ups,ess");
  std::remove(path.c_str());
}

TEST(GoldenSchemaTest, CurvesCsvRoundTripsEveryColumnGroup) {
  const std::string path = "/tmp/oasis_golden_schema_roundtrip.csv";
  const ErrorCurve curve = FullyLoadedCurve();
  ASSERT_TRUE(WriteCurvesCsv(path, {curve}).ok());
  const std::vector<ErrorCurve> curves = ReadCurvesCsv(path).ValueOrDie();
  std::remove(path.c_str());
  ASSERT_EQ(curves.size(), 1u);
  const ErrorCurve& read = curves[0];
  EXPECT_EQ(read.method, curve.method);
  EXPECT_EQ(read.budgets, curve.budgets);
  EXPECT_EQ(read.mean_abs_error, curve.mean_abs_error);
  EXPECT_TRUE(read.has_remote_cost);
  EXPECT_EQ(read.mean_label_cost, curve.mean_label_cost);
  EXPECT_TRUE(read.has_fault_stats);
  EXPECT_EQ(read.mean_retries, curve.mean_retries);
  EXPECT_TRUE(read.has_degeneracy_stats);
  EXPECT_EQ(read.mean_ess, curve.mean_ess);
}

/// A deterministic summary touching every field with distinctive values.
RunSummary GoldenSummary() {
  RunSummary summary;
  summary.scenario = "stripe-f90";
  summary.method = "OASIS-30";
  summary.alpha = 0.5;
  summary.pool_size = 20000;
  summary.scenario_seed = 11;
  summary.run_seed = 7;
  summary.true_f = 0.875;
  summary.budget = 1000;
  summary.repeats = 2;
  summary.final_mean_estimate = 0.875;
  summary.final_mean_abs_error = 0.125;
  summary.final_stddev = 0.125;
  summary.final_frac_defined = 1.0;
  summary.expect_sis_degeneracy = false;
  summary.degeneracy_monitored = true;
  summary.degeneracy_tripped = false;
  summary.final_ess_fraction = 0.25;
  summary.max_weight_share = 0.0625;
  summary.verify_tolerance = 0.03125;
  summary.final_estimates = {0.75, 1.0};
  summary.final_defined = {1, 1};
  return summary;
}

TEST(GoldenSchemaTest, RunSummaryJsonIsLockedByteForByte) {
  // The golden text below IS the schema. All values were chosen to be exact
  // in binary floating point (dyadic rationals), so %.17g prints them in
  // their shortest form and the lock stays byte-stable across compilers.
  const std::string expected =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"scenario\": \"stripe-f90\",\n"
      "  \"method\": \"OASIS-30\",\n"
      "  \"alpha\": 0.5,\n"
      "  \"pool_size\": 20000,\n"
      "  \"scenario_seed\": 11,\n"
      "  \"run_seed\": 7,\n"
      "  \"true_f\": 0.875,\n"
      "  \"budget\": 1000,\n"
      "  \"repeats\": 2,\n"
      "  \"final_mean_estimate\": 0.875,\n"
      "  \"final_mean_abs_error\": 0.125,\n"
      "  \"final_stddev\": 0.125,\n"
      "  \"final_frac_defined\": 1,\n"
      "  \"expect_sis_degeneracy\": false,\n"
      "  \"degeneracy_monitored\": true,\n"
      "  \"degeneracy_tripped\": false,\n"
      "  \"final_ess_fraction\": 0.25,\n"
      "  \"max_weight_share\": 0.0625,\n"
      "  \"verify_tolerance\": 0.03125,\n"
      "  \"final_estimates\": [0.75,1],\n"
      "  \"final_defined\": [1,1]\n"
      "}\n";
  EXPECT_EQ(RunSummaryToJson(GoldenSummary()), expected);
}

TEST(GoldenSchemaTest, RunSummaryJsonRoundTripsExactly) {
  const RunSummary golden = GoldenSummary();
  const RunSummary parsed =
      ParseRunSummaryJson(RunSummaryToJson(golden)).ValueOrDie();
  // Re-serialising the parse must reproduce the bytes: proves the reader
  // consumes exactly what the writer emits, with no value drift.
  EXPECT_EQ(RunSummaryToJson(parsed), RunSummaryToJson(golden));
}

TEST(GoldenSchemaTest, UnknownJsonFieldsAreRejected) {
  std::string text = RunSummaryToJson(GoldenSummary());
  text.insert(text.find("  \"scenario\""), "  \"stray_field\": 3,\n");
  const auto result = ParseRunSummaryJson(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("stray_field"), std::string::npos);
}

TEST(GoldenSchemaTest, MissingJsonFieldsAreRejected) {
  std::string text = RunSummaryToJson(GoldenSummary());
  const size_t pos = text.find("  \"true_f\": 0.875,\n");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, std::string("  \"true_f\": 0.875,\n").size());
  EXPECT_FALSE(ParseRunSummaryJson(text).ok());
}

TEST(GoldenSchemaTest, UnsupportedSchemaVersionIsRejected) {
  std::string text = RunSummaryToJson(GoldenSummary());
  const std::string v1 = "\"schema_version\": 1";
  text.replace(text.find(v1), v1.size(), "\"schema_version\": 2");
  EXPECT_FALSE(ParseRunSummaryJson(text).ok());
}

TEST(GoldenSchemaTest, WriteReadFileRoundTrip) {
  const std::string path = "/tmp/oasis_golden_schema_summary.json";
  const RunSummary golden = GoldenSummary();
  ASSERT_TRUE(WriteRunSummaryJson(path, golden).ok());
  const RunSummary read = ReadRunSummaryJson(path).ValueOrDie();
  std::remove(path.c_str());
  EXPECT_EQ(RunSummaryToJson(read), RunSummaryToJson(golden));
  EXPECT_FALSE(ReadRunSummaryJson(path).ok());
}

// --- Telemetry export formats ----------------------------------------------
//
// Byte-for-byte locks on the Prometheus text exposition and the metrics/trace
// JSON schemas. All values are dyadic rationals, which %.17g prints in their
// exact shortest form on every compiler, so these goldens are byte-stable.
// A diff here is a BREAKING change for any dashboard or trace viewer
// consuming the artifacts and must bump telemetry_schema_version.

/// A small registry exercising every metric type, labelled families, and
/// histogram overflow.
std::unique_ptr<telemetry::MetricRegistry> GoldenRegistry() {
  auto registry = std::make_unique<telemetry::MetricRegistry>();
  registry->AddCounter("oasis_golden_steps_total", "Steps taken.").Add(3);
  registry
      ->AddCounter("oasis_golden_tasks_total", "Tasks by kind.",
                   {{"kind", "own"}})
      .Add(2);
  registry
      ->AddCounter("oasis_golden_tasks_total", "Tasks by kind.",
                   {{"kind", "steal"}})
      .Add(1);
  registry->AddGauge("oasis_golden_ess", "Live ESS.").Set(0.25);
  telemetry::Histogram& weight = registry->AddHistogram(
      "oasis_golden_weight", "Importance weight.", {0.5, 2.0});
  weight.Observe(0.25);  // bucket le=0.5
  weight.Observe(1.0);   // bucket le=2
  weight.Observe(4.0);   // +Inf overflow
  return registry;
}

TEST(GoldenSchemaTest, PrometheusTextFormatIsLocked) {
  EXPECT_EQ(telemetry::PrometheusText(*GoldenRegistry()),
            "# HELP oasis_golden_steps_total Steps taken.\n"
            "# TYPE oasis_golden_steps_total counter\n"
            "oasis_golden_steps_total 3\n"
            "# HELP oasis_golden_tasks_total Tasks by kind.\n"
            "# TYPE oasis_golden_tasks_total counter\n"
            "oasis_golden_tasks_total{kind=\"own\"} 2\n"
            "oasis_golden_tasks_total{kind=\"steal\"} 1\n"
            "# HELP oasis_golden_ess Live ESS.\n"
            "# TYPE oasis_golden_ess gauge\n"
            "oasis_golden_ess 0.25\n"
            "# HELP oasis_golden_weight Importance weight.\n"
            "# TYPE oasis_golden_weight histogram\n"
            "oasis_golden_weight_bucket{le=\"0.5\"} 1\n"
            "oasis_golden_weight_bucket{le=\"2\"} 2\n"
            "oasis_golden_weight_bucket{le=\"+Inf\"} 3\n"
            "oasis_golden_weight_sum 5.25\n"
            "oasis_golden_weight_count 3\n");
}

TEST(GoldenSchemaTest, MetricsJsonSchemaIsLocked) {
  EXPECT_EQ(
      telemetry::MetricsJson(*GoldenRegistry()),
      "{\n"
      "  \"telemetry_schema_version\": 1,\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"oasis_golden_steps_total\", \"type\": \"counter\", "
      "\"help\": \"Steps taken.\", \"labels\": {}, \"value\": 3},\n"
      "    {\"name\": \"oasis_golden_tasks_total\", \"type\": \"counter\", "
      "\"help\": \"Tasks by kind.\", \"labels\": {\"kind\": \"own\"}, "
      "\"value\": 2},\n"
      "    {\"name\": \"oasis_golden_tasks_total\", \"type\": \"counter\", "
      "\"help\": \"Tasks by kind.\", \"labels\": {\"kind\": \"steal\"}, "
      "\"value\": 1},\n"
      "    {\"name\": \"oasis_golden_ess\", \"type\": \"gauge\", \"help\": "
      "\"Live ESS.\", \"labels\": {}, \"value\": 0.25},\n"
      "    {\"name\": \"oasis_golden_weight\", \"type\": \"histogram\", "
      "\"help\": \"Importance weight.\", \"labels\": {}, \"buckets\": "
      "[{\"le\": 0.5, \"count\": 1}, {\"le\": 2, \"count\": 1}], "
      "\"inf_count\": 1, \"sum\": 5.25, \"count\": 3}\n"
      "  ]\n"
      "}\n");
}

TEST(GoldenSchemaTest, TraceJsonSchemaIsLocked) {
  telemetry::TraceCollector collector;
  telemetry::TraceEvent repeat;
  repeat.name = "repeat";
  repeat.category = "runner";
  repeat.ts_us = 1.5;
  repeat.dur_us = 2.25;
  repeat.tid = 0;
  collector.Append(repeat);
  telemetry::TraceEvent batch;
  batch.name = "label_batch";
  batch.category = "oracle";
  batch.ts_us = 4.0;
  batch.dur_us = 0.5;
  batch.tid = 1;
  collector.Append(batch);
  EXPECT_EQ(telemetry::TraceJson(collector),
            "{\"traceEvents\":[\n"
            "{\"name\":\"repeat\",\"cat\":\"runner\",\"ph\":\"X\","
            "\"ts\":1.5,\"dur\":2.25,\"pid\":1,\"tid\":0},\n"
            "{\"name\":\"label_batch\",\"cat\":\"oracle\",\"ph\":\"X\","
            "\"ts\":4,\"dur\":0.5,\"pid\":1,\"tid\":1}\n"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(GoldenSchemaTest, MetricsJsonEscapesStrings) {
  telemetry::MetricRegistry registry;
  registry.AddCounter("oasis_golden_esc_total", "say \"hi\"\tback\\slash");
  const std::string json = telemetry::MetricsJson(registry);
  EXPECT_NE(json.find("\"say \\\"hi\\\"\\tback\\\\slash\""),
            std::string::npos);
}

}  // namespace
}  // namespace experiments
}  // namespace oasis
