#include "er/clustering.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace oasis {
namespace er {
namespace {

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // Already together.
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.Find(0), uf.Find(2));
  EXPECT_NE(uf.Find(0), uf.Find(3));
}

TEST(UnionFindTest, LongChainsCollapse) {
  UnionFind uf(1000);
  for (int64_t i = 0; i + 1 < 1000; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1);
  EXPECT_EQ(uf.Find(0), uf.Find(999));
}

TEST(ClusterFromPairsTest, TransitiveClosure) {
  // 0-1, 1-2 chain plus isolated 3,4 and pair 4-5... with 6 items.
  const std::vector<RecordPair> pairs{{0, 1}, {1, 2}, {4, 5}};
  Clustering clustering = ClusterFromPairs(6, pairs).ValueOrDie();
  EXPECT_EQ(clustering.num_clusters(), 3);
  EXPECT_EQ(clustering.cluster_of[0], clustering.cluster_of[2]);
  EXPECT_EQ(clustering.cluster_of[4], clustering.cluster_of[5]);
  EXPECT_NE(clustering.cluster_of[0], clustering.cluster_of[3]);
  // Member lists are consistent with cluster_of.
  for (int64_t c = 0; c < clustering.num_clusters(); ++c) {
    for (int64_t item : clustering.clusters[static_cast<size_t>(c)]) {
      EXPECT_EQ(clustering.cluster_of[static_cast<size_t>(item)], c);
    }
  }
}

TEST(ClusterFromPairsTest, NoPairsMeansSingletons) {
  Clustering clustering = ClusterFromPairs(4, {}).ValueOrDie();
  EXPECT_EQ(clustering.num_clusters(), 4);
}

TEST(ClusterFromPairsTest, RejectsBadInput) {
  EXPECT_FALSE(ClusterFromPairs(0, {}).ok());
  const std::vector<RecordPair> out_of_range{{0, 7}};
  EXPECT_FALSE(ClusterFromPairs(3, out_of_range).ok());
}

TEST(PairwiseMeasuresTest, PerfectClusteringScoresOne) {
  const std::vector<RecordPair> pairs{{0, 1}, {2, 3}};
  Clustering truth = ClusterFromPairs(5, pairs).ValueOrDie();
  Measures m = PairwiseMeasuresFromClusterings(truth, truth).ValueOrDie();
  ASSERT_TRUE(m.f_defined);
  EXPECT_DOUBLE_EQ(m.f_alpha, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(PairwiseMeasuresTest, HandComputedCounts) {
  // Truth: {0,1,2}, {3,4}. Predicted: {0,1}, {2,3}, {4}.
  const std::vector<RecordPair> truth_pairs{{0, 1}, {1, 2}, {3, 4}};
  const std::vector<RecordPair> pred_pairs{{0, 1}, {2, 3}};
  Clustering truth = ClusterFromPairs(5, truth_pairs).ValueOrDie();
  Clustering predicted = ClusterFromPairs(5, pred_pairs).ValueOrDie();
  // Truth pairs: {01,02,12,34} (4). Predicted pairs: {01,23} (2). TP = {01}.
  Measures m = PairwiseMeasuresFromClusterings(truth, predicted).ValueOrDie();
  EXPECT_DOUBLE_EQ(m.precision, 0.5);   // 1 of 2 predicted pairs.
  EXPECT_DOUBLE_EQ(m.recall, 0.25);     // 1 of 4 truth pairs.
}

TEST(PairwiseMeasuresTest, OverMergingHurtsPrecisionOnly) {
  // Truth: {0,1}, {2,3}. Predicted: everything merged.
  const std::vector<RecordPair> truth_pairs{{0, 1}, {2, 3}};
  const std::vector<RecordPair> merged{{0, 1}, {1, 2}, {2, 3}};
  Clustering truth = ClusterFromPairs(4, truth_pairs).ValueOrDie();
  Clustering predicted = ClusterFromPairs(4, merged).ValueOrDie();
  Measures m = PairwiseMeasuresFromClusterings(truth, predicted).ValueOrDie();
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.precision, 2.0 / 6.0, 1e-12);  // 2 true of C(4,2) pairs.
}

TEST(PairwiseMeasuresTest, RejectsMismatch) {
  Clustering a = ClusterFromPairs(3, {}).ValueOrDie();
  Clustering b = ClusterFromPairs(4, {}).ValueOrDie();
  EXPECT_FALSE(PairwiseMeasuresFromClusterings(a, b).ok());
  EXPECT_FALSE(PairwiseMeasuresFromClusterings(a, a, 1.5).ok());
}

TEST(ExactClusterAgreementTest, CountsExactRecovery) {
  // Truth: {0,1}, {2,3}, {4}. Predicted: {0,1}, {2}, {3}, {4}.
  const std::vector<RecordPair> truth_pairs{{0, 1}, {2, 3}};
  const std::vector<RecordPair> pred_pairs{{0, 1}};
  Clustering truth = ClusterFromPairs(5, truth_pairs).ValueOrDie();
  Clustering predicted = ClusterFromPairs(5, pred_pairs).ValueOrDie();
  ClusterAgreement agreement =
      ExactClusterAgreement(truth, predicted).ValueOrDie();
  // Predicted clusters: {0,1} exact, {4} exact, {2} and {3} not -> 2/4.
  EXPECT_DOUBLE_EQ(agreement.predicted_exact, 0.5);
  // Truth clusters: {0,1} recovered, {4} recovered, {2,3} not -> 2/3.
  EXPECT_NEAR(agreement.truth_recovered, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace er
}  // namespace oasis
