#include "datagen/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace oasis {
namespace datagen {
namespace {

TEST(GenerateTwoSourceTest, SizesAndMatchesAreExact) {
  Rng rng(1);
  EntityGenerator gen(Domain::kECommerce, rng.Split());
  TwoSourceConfig config;
  config.left_size = 120;
  config.right_size = 90;
  config.num_matches = 25;
  ErDataset dataset = GenerateTwoSource(gen, config, rng).ValueOrDie();

  EXPECT_EQ(dataset.left.size(), 120);
  EXPECT_EQ(dataset.right.size(), 90);
  EXPECT_EQ(dataset.matches.size(), 25u);
  EXPECT_FALSE(dataset.dedup);
  EXPECT_EQ(dataset.TotalPairs(), 120 * 90);
  EXPECT_TRUE(dataset.left.Validate().ok());
  EXPECT_TRUE(dataset.right.Validate().ok());
}

TEST(GenerateTwoSourceTest, MatchIndicesAreValidAndDistinct) {
  Rng rng(2);
  EntityGenerator gen(Domain::kRestaurant, rng.Split());
  TwoSourceConfig config;
  config.left_size = 60;
  config.right_size = 70;
  config.num_matches = 30;
  ErDataset dataset = GenerateTwoSource(gen, config, rng).ValueOrDie();

  std::set<int32_t> left_seen;
  std::set<int32_t> right_seen;
  for (const er::RecordPair& match : dataset.matches) {
    EXPECT_GE(match.left, 0);
    EXPECT_LT(match.left, 60);
    EXPECT_GE(match.right, 0);
    EXPECT_LT(match.right, 70);
    // One record per entity per source: no index reused.
    EXPECT_TRUE(left_seen.insert(match.left).second);
    EXPECT_TRUE(right_seen.insert(match.right).second);
  }
}

TEST(GenerateTwoSourceTest, RejectsTooManyMatches) {
  Rng rng(3);
  EntityGenerator gen(Domain::kECommerce, rng.Split());
  TwoSourceConfig config;
  config.left_size = 10;
  config.right_size = 100;
  config.num_matches = 11;
  EXPECT_FALSE(GenerateTwoSource(gen, config, rng).ok());
}

TEST(GenerateTwoSourceTest, ImbalanceRatioMatchesDefinition) {
  Rng rng(4);
  EntityGenerator gen(Domain::kECommerce, rng.Split());
  TwoSourceConfig config;
  config.left_size = 50;
  config.right_size = 40;
  config.num_matches = 10;
  ErDataset dataset = GenerateTwoSource(gen, config, rng).ValueOrDie();
  EXPECT_DOUBLE_EQ(dataset.ImbalanceRatio(), (2000.0 - 10.0) / 10.0);
}

TEST(GenerateDedupTest, ClusterPairsAreAllMatches) {
  Rng rng(5);
  EntityGenerator gen(Domain::kCitation, rng.Split());
  DedupConfig config;
  config.num_entities = 10;
  config.min_cluster = 3;
  config.max_cluster = 3;  // Exactly 3 records each: C(3,2)=3 pairs each.
  ErDataset dataset = GenerateDedup(gen, config, rng).ValueOrDie();
  EXPECT_TRUE(dataset.dedup);
  EXPECT_EQ(dataset.left.size(), 30);
  EXPECT_EQ(dataset.matches.size(), 30u);
  EXPECT_EQ(dataset.TotalPairs(), 30 * 29 / 2);
  for (const er::RecordPair& match : dataset.matches) {
    EXPECT_LT(match.left, match.right);
  }
}

TEST(GenerateDedupTest, RejectsBadClusterConfig) {
  Rng rng(6);
  EntityGenerator gen(Domain::kCitation, rng.Split());
  DedupConfig config;
  config.num_entities = 0;
  EXPECT_FALSE(GenerateDedup(gen, config, rng).ok());
  config.num_entities = 5;
  config.min_cluster = 4;
  config.max_cluster = 2;
  EXPECT_FALSE(GenerateDedup(gen, config, rng).ok());
}

ErDataset SmallDataset(uint64_t seed) {
  Rng rng(seed);
  EntityGenerator gen(Domain::kECommerce, rng.Split());
  TwoSourceConfig config;
  config.left_size = 80;
  config.right_size = 80;
  config.num_matches = 40;
  return GenerateTwoSource(gen, config, rng).ValueOrDie();
}

TEST(SamplePoolTest, ExactCountsAndNoDuplicates) {
  ErDataset dataset = SmallDataset(7);
  Rng rng(8);
  er::PairPool pool = SamplePool(dataset, 500, 20, 0.2, rng).ValueOrDie();
  EXPECT_EQ(pool.size(), 500);
  EXPECT_EQ(pool.num_matches(), 20);

  std::set<std::pair<int32_t, int32_t>> seen;
  for (int64_t i = 0; i < pool.size(); ++i) {
    EXPECT_TRUE(
        seen.insert({pool.pair(i).left, pool.pair(i).right}).second)
        << "duplicate pool pair";
  }
}

TEST(SamplePoolTest, TruthLabelsAreConsistentWithR) {
  ErDataset dataset = SmallDataset(9);
  std::set<std::pair<int32_t, int32_t>> matches;
  for (const er::RecordPair& match : dataset.matches) {
    matches.insert({match.left, match.right});
  }
  Rng rng(10);
  er::PairPool pool = SamplePool(dataset, 800, 30, 0.3, rng).ValueOrDie();
  for (int64_t i = 0; i < pool.size(); ++i) {
    const bool in_r =
        matches.contains({pool.pair(i).left, pool.pair(i).right});
    EXPECT_EQ(pool.is_match(i), in_r);
  }
}

TEST(SamplePoolTest, RejectsImpossibleRequests) {
  ErDataset dataset = SmallDataset(11);
  Rng rng(12);
  // More matches than the dataset holds.
  EXPECT_FALSE(SamplePool(dataset, 100, 60, 0.1, rng).ok());
  // Pool larger than the pair space.
  EXPECT_FALSE(SamplePool(dataset, 80 * 80 + 1, 10, 0.1, rng).ok());
  // matches > size.
  EXPECT_FALSE(SamplePool(dataset, 10, 20, 0.1, rng).ok());
}

TEST(SampleTrainingPairsTest, ComposesMatchesAndNonMatches) {
  ErDataset dataset = SmallDataset(13);
  Rng rng(14);
  er::PairPool training =
      SampleTrainingPairs(dataset, 15, 60, 0.4, rng).ValueOrDie();
  EXPECT_EQ(training.size(), 75);
  EXPECT_EQ(training.num_matches(), 15);
}

TEST(SamplePoolTest, DedupPoolsRespectOrdering) {
  Rng rng(15);
  EntityGenerator gen(Domain::kCitation, rng.Split());
  DedupConfig config;
  config.num_entities = 12;
  config.min_cluster = 4;
  config.max_cluster = 6;
  ErDataset dataset = GenerateDedup(gen, config, rng).ValueOrDie();
  er::PairPool pool = SamplePool(dataset, 400, 30, 0.3, rng).ValueOrDie();
  for (int64_t i = 0; i < pool.size(); ++i) {
    EXPECT_LT(pool.pair(i).left, pool.pair(i).right);
  }
}

}  // namespace
}  // namespace datagen
}  // namespace oasis
