#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace oasis {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreadCount());
  ThreadPool small(3);
  EXPECT_EQ(small.num_threads(), 3);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    for (auto& h : hits) h.store(0);
    const bool completed = pool.ParallelFor(0, n, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    EXPECT_TRUE(completed);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  EXPECT_TRUE(pool.ParallelFor(0, 0, [&](int64_t) { ++calls; }));
  EXPECT_TRUE(pool.ParallelFor(5, 5, [&](int64_t) { ++calls; }));
  EXPECT_TRUE(pool.ParallelFor(7, 3, [&](int64_t) { ++calls; }));
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, RunsOnMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  pool.ParallelFor(0, 64, [&](int64_t) {
    // A small sleep forces overlap so several workers (and possibly the
    // caller) actually pick up chunks.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, WorkStealingBalancesSkewedTasks) {
  // One pathological index is 100x slower; stealing must keep the rest
  // flowing so total wall-clock stays near the slow task's duration, not the
  // sum. We only assert completion (timing asserts flake on CI), plus that
  // more than one thread participated.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.ParallelFor(0, 32, [&](int64_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(i == 0 ? 50 : 1));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](int64_t i) {
                         if (i == 3) throw std::runtime_error("boom");
                         executed.fetch_add(1);
                       }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> after{0};
  EXPECT_TRUE(pool.ParallelFor(0, 10, [&](int64_t) { after.fetch_add(1); }));
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, ExceptionSkipsRemainingIterations) {
  // Single worker + caller: with the throw on the first index of the first
  // chunk, most of the remaining range must be skipped (not all — another
  // chunk may already be in flight).
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  try {
    pool.ParallelFor(0, 10000, [&](int64_t i) {
      if (i == 0) throw std::runtime_error("early");
      executed.fetch_add(1);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(executed.load(), 10000);
}

TEST(ThreadPoolTest, CancellationStopsEarlyAndReportsFalse) {
  ThreadPool pool(2);
  CancellationToken token;
  std::atomic<int> executed{0};
  const bool completed = pool.ParallelFor(0, 10000, [&](int64_t i) {
    executed.fetch_add(1);
    if (i == 5) token.RequestCancel();
  }, &token);
  EXPECT_FALSE(completed);
  EXPECT_LT(executed.load(), 10000);
  EXPECT_TRUE(token.cancelled());
}

TEST(ThreadPoolTest, PreCancelledTokenRunsNothing) {
  ThreadPool pool(2);
  CancellationToken token;
  token.RequestCancel();
  std::atomic<int> executed{0};
  EXPECT_FALSE(pool.ParallelFor(0, 100, [&](int64_t) { executed.fetch_add(1); },
                                &token));
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPoolTest, SequentialLoopsReuseThePool) {
  ThreadPool pool(4);
  int64_t total = 0;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 100, [&](int64_t i) { sum.fetch_add(i); });
    total += sum.load();
  }
  EXPECT_EQ(total, 20 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyCallers) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      pool.ParallelFor(0, 250, [&](int64_t) { sum.fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(sum.load(), 1000);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndWaitBlocks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  ThreadPool::TaskHandle handle = pool.Submit([&] { ran.fetch_add(1); });
  EXPECT_TRUE(handle.valid());
  handle.Wait();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(handle.done());
  // Wait is idempotent.
  handle.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEachTaskExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const int n = 200;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    std::vector<ThreadPool::TaskHandle> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) {
      handles.push_back(pool.Submit([&hits, i] { hits[i].fetch_add(1); }));
    }
    for (auto& handle : handles) handle.Wait();
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SubmitExceptionRethrownFromWait) {
  ThreadPool pool(2);
  ThreadPool::TaskHandle handle =
      pool.Submit([] { throw std::runtime_error("remote down"); });
  EXPECT_THROW(handle.Wait(), std::runtime_error);
  // The handle stays done and keeps rethrowing.
  EXPECT_TRUE(handle.done());
  EXPECT_THROW(handle.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, EmptyHandleIsInertAndWaitClaimsUnstartedWork) {
  ThreadPool::TaskHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_TRUE(empty.done());
  empty.Wait();  // No-op.

  // A single-thread pool whose worker is blocked: Wait() must claim and run
  // the submitted task inline instead of deadlocking.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  ThreadPool::TaskHandle blocker = pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> ran{0};
  ThreadPool::TaskHandle task = pool.Submit([&] { ran.fetch_add(1); });
  task.Wait();  // Inline claim: the worker is still stuck in `blocker`.
  EXPECT_EQ(ran.load(), 1);
  release.store(true);
  blocker.Wait();
}

TEST(ThreadPoolTest, QueuedSubmitsRunDuringPoolShutdown) {
  // Tasks still queued when the pool is destroyed are drained by the exiting
  // workers, never silently dropped — every handle completes.
  std::vector<ThreadPool::TaskHandle> handles;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      handles.push_back(pool.Submit([&] { ran.fetch_add(1); }));
    }
  }
  EXPECT_EQ(ran.load(), 64);
  for (auto& handle : handles) {
    EXPECT_TRUE(handle.done());
    handle.Wait();  // Completed handles stay waitable after the pool died.
  }
}

TEST(ThreadPoolTest, SubmitOverlapsWithCallerWork) {
  // Producer/consumer shape of the async label pipeline: the caller keeps
  // working while the submitted task runs, then synchronises via Wait.
  ThreadPool pool(2);
  std::atomic<int64_t> background_sum{0};
  ThreadPool::TaskHandle handle = pool.Submit([&] {
    for (int64_t i = 0; i < 1000; ++i) background_sum.fetch_add(i);
  });
  int64_t foreground_sum = 0;
  for (int64_t i = 0; i < 1000; ++i) foreground_sum += i;
  handle.Wait();
  EXPECT_EQ(background_sum.load(), 999 * 1000 / 2);
  EXPECT_EQ(foreground_sum, 999 * 1000 / 2);
}

}  // namespace
}  // namespace oasis
