#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace oasis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad alpha");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, ToStringCoversRetryableCodes) {
  EXPECT_EQ(Status::Unavailable("oracle down").ToString(),
            "Unavailable: oracle down");
  EXPECT_EQ(Status::DeadlineExceeded("slow trip").ToString(),
            "DeadlineExceeded: slow trip");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  std::string taken = std::move(result).ValueOrDie();
  EXPECT_EQ(taken, "payload");
}

Status FailingOperation() { return Status::Internal("boom"); }

Status PropagatingOperation() {
  OASIS_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_EQ(PropagatingOperation().code(), StatusCode::kInternal);
}

Result<int> MakeSeven() { return 7; }

Result<int> DoubleSeven() {
  OASIS_ASSIGN_OR_RETURN(int value, MakeSeven());
  return value * 2;
}

Result<int> FailToMake() { return Status::OutOfRange("nope"); }

Result<int> PropagateFailure() {
  OASIS_ASSIGN_OR_RETURN(int value, FailToMake());
  return value;
}

TEST(MacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  EXPECT_EQ(DoubleSeven().ValueOrDie(), 14);
  EXPECT_EQ(PropagateFailure().status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace oasis
