#!/usr/bin/env python3
"""Code <-> docs parity gate for the telemetry metric catalogue.

Every metric the code registers (an ``AddCounter``/``AddGauge``/
``AddHistogram`` call with an ``oasis_*`` name literal anywhere under the
source roots) must appear in the docs/TELEMETRY.md catalogue table, and every
backticked ``oasis_*`` name in that table must still exist in the code.
Either direction failing exits 1 with the offending names, so a metric can
neither ship undocumented nor linger in the docs after its call site died.

Names are extracted syntactically: the registration regex tolerates the
string literal landing on the line after the call (clang-format splits long
registrations), and the docs side only reads backticked names from table rows
(lines starting with ``|``), so prose may mention metrics freely.

Usage:
  python3 tools/check_metrics_catalog.py [--src src bench apps] \
      [--doc docs/TELEMETRY.md]

Self test (also run in CI):
  python3 tools/check_metrics_catalog.py --self-test
"""

import argparse
import os
import re
import sys

# Registration call with its name literal, possibly on the following line.
REGISTRATION_RE = re.compile(
    r'Add(?:Counter|Gauge|Histogram)\s*\(\s*\n?\s*"(oasis_[a-z0-9_]+)"',
    re.MULTILINE)

# Backticked metric name inside a catalogue table row.
DOC_NAME_RE = re.compile(r'`(oasis_[a-z0-9_]+)`')

SOURCE_EXTENSIONS = (".h", ".cc")


def collect_code_metrics(roots):
    """Set of metric names registered anywhere under the given roots."""
    names = set()
    for root in roots:
        for dirpath, _, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(SOURCE_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, encoding="utf-8") as f:
                    names.update(REGISTRATION_RE.findall(f.read()))
    return names


def collect_doc_metrics(doc_path):
    """Set of backticked oasis_* names in the catalogue's table rows."""
    names = set()
    with open(doc_path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("|"):
                names.update(DOC_NAME_RE.findall(line))
    return names


def run_check(src_roots, doc_path, out=sys.stdout, err=sys.stderr):
    """The parity check proper; returns the process exit code."""
    code_names = collect_code_metrics(src_roots)
    if not code_names:
        print(f"error: no metric registrations found under {src_roots} — "
              "wrong --src roots?", file=err)
        return 1
    try:
        doc_names = collect_doc_metrics(doc_path)
    except OSError as e:
        print(f"error: cannot read {doc_path}: {e}", file=err)
        return 1

    undocumented = sorted(code_names - doc_names)
    stale = sorted(doc_names - code_names)
    for name in sorted(code_names & doc_names):
        print(f"    ok  {name}", file=out)
    code = 0
    if undocumented:
        print(f"\nUNDOCUMENTED: {len(undocumented)} metric(s) registered in "
              f"code but missing from {doc_path}: " + ", ".join(undocumented),
              file=err)
        code = 1
    if stale:
        print(f"\nSTALE: {len(stale)} metric(s) documented in {doc_path} but "
              "registered nowhere in the code: " + ", ".join(stale), file=err)
        code = 1
    if code == 0:
        print(f"\ncatalogue in sync: {len(code_names)} metrics", file=out)
    return code


def build_parser():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", nargs="+", default=["src"],
                        help="source roots to scan for registrations")
    parser.add_argument("--doc", default="docs/TELEMETRY.md",
                        help="catalogue document to check against")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    return parser


# ---------------------------------------------------------------------------
# --self-test: unit tests over synthetic trees, runnable anywhere (CI invokes
# this before the real check so a broken checker cannot silently pass).
# ---------------------------------------------------------------------------


def _self_test():
    import io
    import tempfile
    import unittest

    def write_tree(tmp, code_names, doc_names):
        src = os.path.join(tmp, "src")
        os.makedirs(src, exist_ok=True)
        with open(os.path.join(src, "a.cc"), "w") as f:
            # The literal lands on its own line, clang-format style, so the
            # multiline tolerance of the registration regex is always on test.
            for name in code_names:
                f.write('void f(){ registry.AddCounter(\n    "%s", "h"); }\n'
                        % name)
        doc = os.path.join(tmp, "TELEMETRY.md")
        with open(doc, "w") as f:
            f.write("# Catalogue\n\nProse may say `oasis_ignored_in_prose`.\n")
            f.write("| metric | type |\n|---|---|\n")
            for name in doc_names:
                f.write("| `%s` | counter |\n" % name)
        return [src], doc

    class CatalogTest(unittest.TestCase):
        def run_check_with(self, code_names, doc_names):
            with tempfile.TemporaryDirectory() as tmp:
                roots, doc = write_tree(tmp, code_names, doc_names)
                out, err = io.StringIO(), io.StringIO()
                code = run_check(roots, doc, out=out, err=err)
                return code, out.getvalue(), err.getvalue()

        def test_in_sync_passes(self):
            code, out, _ = self.run_check_with(
                ["oasis_a_total", "oasis_b"], ["oasis_a_total", "oasis_b"])
            self.assertEqual(code, 0)
            self.assertIn("in sync: 2 metrics", out)

        def test_undocumented_metric_fails(self):
            code, _, err = self.run_check_with(
                ["oasis_a_total", "oasis_new_total"], ["oasis_a_total"])
            self.assertEqual(code, 1)
            self.assertIn("UNDOCUMENTED", err)
            self.assertIn("oasis_new_total", err)

        def test_stale_doc_entry_fails(self):
            code, _, err = self.run_check_with(
                ["oasis_a_total"], ["oasis_a_total", "oasis_gone_total"])
            self.assertEqual(code, 1)
            self.assertIn("STALE", err)
            self.assertIn("oasis_gone_total", err)

        def test_prose_mentions_are_not_catalogue_entries(self):
            # `oasis_ignored_in_prose` appears outside a table row in every
            # synthetic doc; it must not register as stale.
            code, _, err = self.run_check_with(["oasis_a"], ["oasis_a"])
            self.assertEqual(code, 0)
            self.assertNotIn("oasis_ignored_in_prose", err)

        def test_multiline_registration_is_found(self):
            # write_tree always splits the literal onto its own line, so any
            # passing test above already proves this; assert it directly too.
            code, out, _ = self.run_check_with(["oasis_split"], ["oasis_split"])
            self.assertEqual(code, 0)
            self.assertIn("oasis_split", out)

        def test_empty_code_side_is_an_error(self):
            code, _, err = self.run_check_with([], ["oasis_a"])
            self.assertEqual(code, 1)
            self.assertIn("no metric registrations", err)

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(CatalogTest)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main():
    args = build_parser().parse_args()
    if args.self_test:
        return _self_test()
    return run_check(args.src, args.doc)


if __name__ == "__main__":
    sys.exit(main())
