#!/usr/bin/env python3
"""Single-composition-point gate for oracle decorator stacks.

OracleStackBuilder (src/oracle/oracle_stack.h) is the one place in the repo
allowed to compose the decorator chain Retrying(Remote(FaultInjecting(base))):
the layer order is fixed by the fault model, and hand-assembled chains are
exactly how order bugs (chaos above the latency model, retries below it)
slipped in historically. This gate keeps it that way.

A file FAILS when it directly constructs two DISTINCT decorator types —
`FaultInjectingOracle`, `RemoteOracle`, `RetryingOracle` — within a few
lines of each other (a chain wires the outer layer to the inner one's
address, so its constructions are always adjacent), via a stack
declaration, `new`, or `make_unique`. Constructing a single decorator stays
legal everywhere: the unit tests of one layer need the bare type, and one
layer is not a chain.

Whitelisted (the composition point itself and its focused tests):
  * src/oracle/oracle_stack.cc
  * tests/oracle_stack_test.cc

Usage:
    python3 tools/check_stack_builder.py src tests bench apps examples
    python3 tools/check_stack_builder.py --self-test

Exit status 0 when no file outside the whitelist composes a multi-layer
chain by hand, 1 otherwise (one `file: constructs ...` diagnostic per
finding).
"""

import os
import re
import sys

DECORATORS = ("FaultInjectingOracle", "RemoteOracle", "RetryingOracle")

WHITELIST = (
    os.path.join("src", "oracle", "oracle_stack.cc"),
    os.path.join("tests", "oracle_stack_test.cc"),
)

# Direct-construction shapes, one alternation per decorator:
#   RetryingOracle retrying(&inner, policy);    stack declaration
#   new RetryingOracle(...)                     heap
#   std::make_unique<RetryingOracle>(...)       heap, owned
# Mentions in comments, declarations of pointers/references, and typed
# accessors (`stack.retrying()`) deliberately do not match.
_CONSTRUCT = {
    name: re.compile(
        r"(?:\bnew\s+{0}\s*\(|\bmake_unique<\s*{0}\s*>|\b{0}\s+\w+\s*[({{])".format(name)
    )
    for name in DECORATORS
}

_LINE_COMMENT = re.compile(r"//.*$")

# Two distinct decorator constructions at most this many lines apart are one
# chain. Chains are in practice 1-6 lines apart (the outer construction
# takes the inner object's address); unrelated single-layer tests in the
# same file sit whole test bodies apart.
CHAIN_WINDOW_LINES = 15


def constructed_decorators(text):
    """Returns [(line_number, type_name)] for direct decorator constructions."""
    found = []
    in_block = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block = False
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        line = _LINE_COMMENT.sub("", line)
        for name, pattern in _CONSTRUCT.items():
            if pattern.search(line):
                found.append((line_number, name))
    return found


def find_chains(text):
    """Returns diagnostics for distinct-decorator pairs within the window."""
    constructions = constructed_decorators(text)
    chains = []
    for i, (line_a, name_a) in enumerate(constructions):
        for line_b, name_b in constructions[i + 1:]:
            if name_b == name_a:
                continue
            if line_b - line_a <= CHAIN_WINDOW_LINES:
                chains.append((line_a, line_b, name_a, name_b))
    return chains


def check_tree(roots):
    """Scans .cc/.h files under `roots`; returns a list of diagnostics."""
    failures = []
    for root in roots:
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if not filename.endswith((".cc", ".h")):
                    continue
                path = os.path.join(dirpath, filename)
                normalized = os.path.normpath(path)
                if any(normalized.endswith(entry) for entry in WHITELIST):
                    continue
                with open(path, encoding="utf-8") as handle:
                    chains = find_chains(handle.read())
                for line_a, line_b, name_a, name_b in chains:
                    failures.append(
                        "%s:%d-%d: constructs %s + %s directly — compose "
                        "decorator chains through OracleStackBuilder "
                        "(src/oracle/oracle_stack.h)"
                        % (path, line_a, line_b, name_a, name_b)
                    )
    return failures


def self_test():
    chain = """
        FaultInjectingOracle chaos(&inner, faults);
        RetryingOracle retrying(&chaos, policy);
    """
    assert find_chains(chain), "adjacent chain must be detected"

    single = "RemoteOracle remote(&base, options);"
    assert not find_chains(single), "one layer is not a chain"

    heap = """
        auto a = std::make_unique<RemoteOracle>(&base, options);
        Oracle* b = new RetryingOracle(&*a, policy);
    """
    assert find_chains(heap), "heap-constructed chain must be detected"

    far_apart = (
        "FaultInjectingOracle oracle(&inner, faults);\n"
        + "\n" * (CHAIN_WINDOW_LINES + 1)
        + "RemoteOracle remote(&inner, options);\n"
    )
    assert not find_chains(far_apart), (
        "single-layer constructions in separate tests must not match"
    )

    innocent = """
        // RetryingOracle retrying(&chaos, policy); -- the OLD way
        /* RemoteOracle remote(&base, options); */
        const RetryingOracle* retrying = stack.retrying();
        const RemoteOracle& remote = *stack.remote();
        EXPECT_EQ(stack.retrying()->stats().give_ups, 0);
    """
    assert not find_chains(innocent), (
        "comments, pointers and accessors must not match"
    )

    builder = """
        const OracleStack stack = OracleStackBuilder()
                                      .FaultInjection(faults)
                                      .Retry(policy)
                                      .Build(&inner)
                                      .ValueOrDie();
    """
    assert not find_chains(builder)
    print("self-test passed")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    roots = argv[1:] or ["src", "tests", "bench", "apps", "examples"]
    roots = [root for root in roots if os.path.isdir(root)]
    failures = check_tree(roots)
    for failure in failures:
        print(failure)
    if failures:
        print("%d file(s) hand-assemble decorator chains" % len(failures))
        return 1
    print("stack-builder gate: no hand-assembled decorator chains")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
