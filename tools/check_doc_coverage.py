#!/usr/bin/env python3
"""Documentation-coverage gate for public headers.

Enforces the repo's API-docs contract on the fully documented subdirectories
(src/oracle, src/experiments, src/datagen, src/telemetry, src/service):
every public declaration in a
header — class, struct, enum, alias, function, or public data member — must
carry a Doxygen comment: a `///` block directly above it, or a trailing
`///<` on the same line.

This is the dependency-free twin of the CMake `docs_strict` target (Doxygen
with WARN_IF_UNDOCUMENTED + WARN_AS_ERROR over the same directories): CI runs
both, and this one also runs anywhere Python does, so a missing comment is
caught before a Doxygen-equipped CI leg ever sees it.

Deliberately out of scope (mirrors the Doxygen configuration):
  * private/protected members (EXTRACT_PRIVATE is off);
  * namespace declarations (documented once per project, not per header);
  * enum values (documented at the enum, individually optional);
  * everything in .cc files.

Usage:
    python3 tools/check_doc_coverage.py src/oracle src/experiments \
        src/datagen src/telemetry src/service
    python3 tools/check_doc_coverage.py --self-test

Exit status 0 when every public declaration is documented, 1 otherwise (one
`file:line: undocumented ...` diagnostic per finding).
"""

import os
import re
import sys

# Statement openers that never need their own doc comment.
_SKIP_PREFIXES = (
    "public:",
    "private:",
    "protected:",
    "namespace",
    "using namespace",
    "friend ",
    "}",
    "{",
    "OASIS_",  # Macro invocations at class/namespace scope.
    "static_assert",
    "extern \"C\"",
)


def _strip_comments_and_strings(line, in_block_comment):
    """Returns (code, had_doc_line, trailing_doc, still_in_block_comment).

    `code` is the line with comments and string/char literals blanked out;
    `had_doc_line` is True when the line is (only) a /// comment line;
    `trailing_doc` is True when the line carries a ///< trailing comment.
    """
    code = []
    i = 0
    had_doc_line = False
    trailing_doc = "///<" in line
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(code), had_doc_line, trailing_doc, True
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            if line[i : i + 3] == "///" and not line[i : i + 4] == "///<":
                if not "".join(code).strip():
                    had_doc_line = True
            break  # Rest of line is a comment.
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            code.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            if i < n:
                code.append(quote)
                i += 1
            continue
        code.append(ch)
        i += 1
    return "".join(code), had_doc_line, trailing_doc, in_block_comment


class _Scope:
    """One brace scope: 'namespace', 'class' (with access), 'enum', 'block'."""

    def __init__(self, kind, access="private"):
        self.kind = kind
        self.access = access


def check_header(path, lines):
    """Returns a list of (line_number, message) findings for one header."""
    findings = []
    scopes = []  # Innermost last; file scope is implicit.
    in_block_comment = False
    prev_was_doc = False
    pending = False  # Inside a multi-line declaration already checked.
    pending_doc_ok = False
    pending_first_line = 0
    pending_text = ""

    def documentable_scope():
        for scope in reversed(scopes):
            if scope.kind == "block" or scope.kind == "enum":
                return False
            if scope.kind == "class":
                return scope.access == "public"
        return True  # Namespace / file scope.

    for lineno, raw in enumerate(lines, start=1):
        code, had_doc_line, trailing_doc, in_block_comment = (
            _strip_comments_and_strings(raw, in_block_comment)
        )
        stripped = code.strip()
        if not stripped:
            if had_doc_line:
                prev_was_doc = True
            continue
        if stripped.startswith("#"):  # Preprocessor.
            continue

        # Access labels switch the innermost class scope.
        access_label = re.match(r"^(public|private|protected)\s*:", stripped)
        if access_label and scopes and scopes[-1].kind == "class":
            scopes[-1].access = access_label.group(1)
            prev_was_doc = False
            continue

        # Closing lines ('}', '};', '} // namespace x') pop scopes whether or
        # not they carry a statement terminator — a bare '}' ending an inline
        # function body must not leave its block scope stuck on the stack.
        if stripped.startswith("}") and not pending:
            net_closes = code.count("}") - code.count("{")
            for _ in range(max(net_closes, 0)):
                if scopes:
                    scopes.pop()
            prev_was_doc = False
            continue

        starts_statement = not pending
        if starts_statement:
            is_skippable = stripped.startswith(_SKIP_PREFIXES) or stripped in (
                ");",
                ") {",
            )
            needs_doc = (
                documentable_scope()
                and not is_skippable
                and not had_doc_line
            )
            if needs_doc:
                pending_doc_ok = prev_was_doc or trailing_doc
                pending_first_line = lineno
                pending_text = stripped
            else:
                pending_doc_ok = True
                pending_first_line = lineno
                pending_text = stripped
        else:
            pending_doc_ok = pending_doc_ok or trailing_doc
            pending_text += " " + stripped

        # A `template <...>` header is part of the declaration that follows.
        terminator = ";" in code or "{" in code
        pending = not terminator
        if not terminator:
            prev_was_doc = False
            continue

        # Statement complete: report if it needed a doc and has none.
        if not pending_doc_ok and documentable_scope():
            first = pending_text.split("(")[0].strip()
            findings.append(
                (
                    pending_first_line,
                    "undocumented public declaration: '%s'"
                    % (first[:60] + ("..." if len(first) > 60 else "")),
                )
            )
        pending = False
        pending_doc_ok = False

        # Maintain the scope stack from this statement's braces.
        opens = code.count("{")
        closes = code.count("}")
        if opens > closes:
            text = pending_text
            if re.search(r"\benum\b", text):
                scopes.append(_Scope("enum"))
            elif re.search(r"\b(class|struct|union)\b", text) and not re.search(
                r"[)=]", text.split("{")[0]
            ):
                access = "public" if re.search(r"\b(struct|union)\b", text) else "private"
                scopes.append(_Scope("class", access))
            elif re.match(r"^(inline\s+)?namespace\b", text):
                scopes.append(_Scope("namespace"))
            else:
                scopes.append(_Scope("block"))
            for _ in range(opens - closes - 1):
                scopes.append(_Scope("block"))
        elif closes > opens:
            for _ in range(closes - opens):
                if scopes:
                    scopes.pop()
        prev_was_doc = False
        pending_text = ""

    return findings


def check_paths(paths):
    """Checks every .h under the given files/directories; returns findings as
    (path, line, message) tuples."""
    findings = []
    headers = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, files in os.walk(path):
                headers.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".h")
                )
        elif path.endswith(".h"):
            headers.append(path)
    for header in headers:
        with open(header, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
        for lineno, message in check_header(header, lines):
            findings.append((header, lineno, message))
    return findings


# ---------------------------------------------------------------------------
# Self-test.
# ---------------------------------------------------------------------------

_SELF_TEST_CASES = [
    # (name, header text, expected undocumented line numbers)
    (
        "documented members pass",
        """\
namespace demo {

/// A documented class.
class Widget {
 public:
  /// Documented method.
  int Size() const;

  /// Documented field.
  int size = 0;

 private:
  int hidden_;  // Private: not checked.
};

}  // namespace demo
""",
        [],
    ),
    (
        "undocumented public member flagged",
        """\
namespace demo {

/// A documented class.
class Widget {
 public:
  int Size() const;
};

}  // namespace demo
""",
        [6],
    ),
    (
        "undocumented free function and struct flagged",
        """\
namespace demo {

int Area(int w, int h);

struct Box {
  /// ok
  int w = 0;
  int h = 0;
};

}  // namespace demo
""",
        [3, 5, 8],
    ),
    (
        "trailing doc and multi-line declarations pass",
        """\
namespace demo {

/// Documented struct.
struct Box {
  int w = 0;  ///< Width.

  /// Long signature spanning lines.
  int Resize(int width,
             int height);
};

}  // namespace demo
""",
        [],
    ),
    (
        "function bodies and enums are skipped",
        """\
namespace demo {

/// Documented function with a body.
inline int Twice(int x) {
  int local = x;
  return local + x;
}

/// Documented enum; values are optional.
enum class Color {
  kRed,
  kBlue,
};

}  // namespace demo
""",
        [],
    ),
    (
        "own-line closing braces do not leak scopes",
        """\
namespace demo {

/// Documented function with a brace-on-own-line body.
inline int Twice(int x) {
  return x + x;
}

int Undocumented(int x);

struct AlsoUndocumented {
  /// ok
  int w = 0;
};

}  // namespace demo
""",
        [8, 10],
    ),
    (
        "template declarations need one doc above the template line",
        """\
namespace demo {

/// Documented template.
template <typename T>
T Identity(T value);

template <typename T>
T Broken(T value);

}  // namespace demo
""",
        [7],
    ),
]


def self_test():
    failures = 0
    for name, text, expected in _SELF_TEST_CASES:
        found = [line for line, _ in check_header("<self-test>", text.splitlines())]
        if found != expected:
            print("self-test FAILED: %s: expected %r, got %r" % (name, expected, found))
            failures += 1
        else:
            print("self-test ok: %s" % name)
    return failures


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        failures = self_test()
        if failures:
            return 1
        print("all self-tests passed")
        return 0
    if len(argv) < 2:
        print(__doc__)
        return 2
    findings = check_paths(argv[1:])
    for path, lineno, message in findings:
        print("%s:%d: %s" % (path, lineno, message))
    if findings:
        print("%d undocumented public declaration(s)" % len(findings))
        return 1
    print("doc coverage OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
