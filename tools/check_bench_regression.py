#!/usr/bin/env python3
"""Benchmark regression gate for BENCH_micro.json artifacts.

Compares the steps/sec of the current run against a committed baseline
snapshot and fails (exit 1) when any gated benchmark drops below
--min-ratio times its baseline throughput (default 0.8, i.e. a >20% drop).

Only benchmarks whose name matches --filter (default: the OASIS step paths,
``BM_OasisStep``) are gated; other entries in either file are ignored, so the
baseline can be regenerated from a filtered run.

Because absolute steps/sec vary across machines, --calibrate NAME rescales
the baseline by the throughput ratio of a calibration benchmark present in
both files (e.g. ``BM_PassiveStep``): baseline values are multiplied by
current(NAME)/baseline(NAME) before comparison, so the gate measures
regressions relative to overall machine speed rather than absolute numbers.

Usage:
  python3 tools/check_bench_regression.py BENCH_micro.json \
      bench/baselines/BENCH_micro_baseline.json \
      [--min-ratio 0.8] [--filter BM_OasisStep] [--calibrate BM_PassiveStep]
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    results = {}
    for entry in doc.get("results", []):
        name = entry.get("name")
        steps = entry.get("steps_per_sec", 0.0)
        if name and steps > 0.0:
            results[name] = steps
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_micro.json from this run")
    parser.add_argument("baseline", help="committed baseline snapshot")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="fail when current/baseline < this (default 0.8)")
    parser.add_argument("--filter", default="BM_OasisStep",
                        help="gate only benchmarks whose name starts with this")
    parser.add_argument("--calibrate", default=None,
                        help="benchmark name used to rescale the baseline for "
                             "machine-speed differences")
    args = parser.parse_args()

    current = load_results(args.current)
    baseline = load_results(args.baseline)

    scale = 1.0
    if args.calibrate:
        cur_cal = current.get(args.calibrate)
        base_cal = baseline.get(args.calibrate)
        if cur_cal and base_cal:
            scale = cur_cal / base_cal
            print(f"calibration {args.calibrate}: current {cur_cal:.3e} / "
                  f"baseline {base_cal:.3e} -> scale {scale:.3f}")
        else:
            print(f"warning: calibration benchmark {args.calibrate!r} missing "
                  "from current or baseline; comparing absolute steps/sec",
                  file=sys.stderr)

    gated = sorted(name for name in baseline if name.startswith(args.filter))
    if not gated:
        print(f"error: no baseline entries match filter {args.filter!r}",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for name in gated:
        if name not in current:
            # A renamed/removed bench is a baseline-refresh task, not a perf
            # regression; report it but do not fail the gate on it.
            print(f"  skip  {name}: not present in current run")
            continue
        compared += 1
        expected = baseline[name] * scale
        ratio = current[name] / expected
        verdict = "ok" if ratio >= args.min_ratio else "FAIL"
        print(f"  {verdict:>4}  {name}: {current[name]:.3e} steps/s vs "
              f"expected {expected:.3e} (ratio {ratio:.2f})")
        if ratio < args.min_ratio:
            failures.append(name)

    if compared == 0:
        print("error: no gated benchmark present in both runs", file=sys.stderr)
        return 1
    if failures:
        print(f"\nREGRESSION: {len(failures)} benchmark(s) dropped more than "
              f"{(1 - args.min_ratio) * 100:.0f}% vs baseline: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"\nall {compared} gated benchmarks within "
          f"{(1 - args.min_ratio) * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
