#!/usr/bin/env python3
"""Benchmark regression gate for BENCH_micro.json artifacts.

Compares the steps/sec of the current run against a committed baseline
snapshot and fails (exit 1) when any gated benchmark drops below
--min-ratio times its baseline throughput (default 0.8, i.e. a >20% drop).

Only benchmarks whose name starts with one of the comma-separated --filter
prefixes (default: the OASIS step paths, ``BM_OasisStep``) are gated; other
entries in either file are ignored, so the baseline can be regenerated from a
filtered run. Example: --filter BM_OasisStep,BM_BlockForestRebuild gates the
step paths and the sharded-rebuild kernel together.

A gated benchmark that exists in the baseline but is MISSING from the current
run is a hard failure: a silently skipped benchmark reads as "no regression"
when the benchmark may simply have stopped building. After an intentional
rename/removal, refresh the committed baseline (see docs/BENCHMARKING.md) or
pass --allow-missing for a one-off run.

Because absolute steps/sec vary across machines, --calibrate NAME rescales
the baseline by the throughput ratio of a calibration benchmark present in
both files (e.g. ``BM_PassiveStep``): baseline values are multiplied by
current(NAME)/baseline(NAME) before comparison, so the gate measures
regressions relative to overall machine speed rather than absolute numbers.

Besides the throughput ratios, --max-metric NAME:METRIC=BOUND (repeatable)
gates a derived metric of the CURRENT run against an absolute upper bound —
machine-independent by construction (ratios/percentages), so no baseline or
calibration is involved. Example: --max-metric
'BM_TelemetryOverhead/1:telemetry_overhead_pct=2.0' fails when enabling the
metrics registry costs the fused step path more than 2%. A missing benchmark
or metric is a hard failure (same reasoning as MISSING above).

Usage:
  python3 tools/check_bench_regression.py BENCH_micro.json \
      bench/baselines/BENCH_micro_baseline.json \
      [--min-ratio 0.8] [--filter BM_OasisStep] [--calibrate BM_PassiveStep] \
      [--allow-missing] \
      [--max-metric 'BM_TelemetryOverhead/1:telemetry_overhead_pct=2.0']

Self test (also run in CI):
  python3 tools/check_bench_regression.py --self-test
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    results = {}
    for entry in doc.get("results", []):
        name = entry.get("name")
        steps = entry.get("steps_per_sec", 0.0)
        if name and steps > 0.0:
            results[name] = steps
    return results


def load_metrics(path):
    """{benchmark name: {metric: value}} for every non-core numeric field."""
    core = {"name", "steps_per_sec", "iterations"}
    with open(path) as f:
        doc = json.load(f)
    metrics = {}
    for entry in doc.get("results", []):
        name = entry.get("name")
        if not name:
            continue
        metrics[name] = {k: v for k, v in entry.items()
                         if k not in core and isinstance(v, (int, float))}
    return metrics


def parse_max_metric(spec):
    """Splits 'NAME:METRIC=BOUND' into its three parts (ValueError on junk)."""
    head, sep, bound = spec.rpartition("=")
    if not sep:
        raise ValueError(f"--max-metric {spec!r}: expected NAME:METRIC=BOUND")
    name, sep, metric = head.rpartition(":")
    if not sep or not name or not metric:
        raise ValueError(f"--max-metric {spec!r}: expected NAME:METRIC=BOUND")
    return name, metric, float(bound)


def build_parser():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="?",
                        help="BENCH_micro.json from this run")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline snapshot")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="fail when current/baseline < this (default 0.8)")
    parser.add_argument("--filter", default="BM_OasisStep",
                        help="gate only benchmarks whose name starts with one "
                             "of these comma-separated prefixes")
    parser.add_argument("--calibrate", default=None,
                        help="benchmark name used to rescale the baseline for "
                             "machine-speed differences")
    parser.add_argument("--allow-missing", action="store_true",
                        help="tolerate gated baseline benchmarks absent from "
                             "the current run (baseline-refresh escape hatch)")
    parser.add_argument("--max-metric", action="append", default=[],
                        metavar="NAME:METRIC=BOUND",
                        help="fail when the named benchmark's derived metric "
                             "in the CURRENT run exceeds BOUND (repeatable; "
                             "absolute, no baseline involved)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    return parser


def run_gate(args, out=sys.stdout, err=sys.stderr):
    """The gate proper; returns the process exit code."""
    current = load_results(args.current)
    baseline = load_results(args.baseline)

    scale = 1.0
    if args.calibrate:
        cur_cal = current.get(args.calibrate)
        base_cal = baseline.get(args.calibrate)
        if cur_cal and base_cal:
            scale = cur_cal / base_cal
            print(f"calibration {args.calibrate}: current {cur_cal:.3e} / "
                  f"baseline {base_cal:.3e} -> scale {scale:.3f}", file=out)
        else:
            print(f"warning: calibration benchmark {args.calibrate!r} missing "
                  "from current or baseline; comparing absolute steps/sec",
                  file=err)

    prefixes = [p for p in args.filter.split(",") if p]
    gated = sorted(name for name in baseline
                   if any(name.startswith(p) for p in prefixes))
    if not gated:
        print(f"error: no baseline entries match filter {args.filter!r}",
              file=err)
        return 1

    failures = []
    missing = []
    compared = 0
    for name in gated:
        if name not in current:
            missing.append(name)
            verdict = "skip" if args.allow_missing else "MISS"
            print(f"  {verdict:>4}  {name}: not present in current run",
                  file=out)
            continue
        compared += 1
        expected = baseline[name] * scale
        ratio = current[name] / expected
        verdict = "ok" if ratio >= args.min_ratio else "FAIL"
        print(f"  {verdict:>4}  {name}: {current[name]:.3e} steps/s vs "
              f"expected {expected:.3e} (ratio {ratio:.2f})", file=out)
        if ratio < args.min_ratio:
            failures.append(name)

    if missing and not args.allow_missing:
        print(f"\nMISSING: {len(missing)} gated benchmark(s) present in the "
              f"baseline but absent from the current run: "
              + ", ".join(missing)
              + "\nA benchmark that stopped running is not a passing "
                "benchmark. If it was renamed or removed on purpose, refresh "
                "the committed baseline (docs/BENCHMARKING.md) or pass "
                "--allow-missing.", file=err)
        return 1
    if compared == 0:
        print("error: no gated benchmark present in both runs", file=err)
        return 1
    metric_failures = []
    if args.max_metric:
        current_metrics = load_metrics(args.current)
        for spec in args.max_metric:
            try:
                name, metric, bound = parse_max_metric(spec)
            except ValueError as e:
                print(f"error: {e}", file=err)
                return 1
            value = current_metrics.get(name, {}).get(metric)
            if value is None:
                print(f"  MISS  {name}:{metric}: not present in current run",
                      file=out)
                metric_failures.append(f"{name}:{metric} (missing)")
                continue
            verdict = "ok" if value <= bound else "FAIL"
            print(f"  {verdict:>4}  {name}:{metric} = {value:.3f} "
                  f"(bound {bound:.3f})", file=out)
            if value > bound:
                metric_failures.append(f"{name}:{metric}={value:.3f}>{bound}")

    if failures or metric_failures:
        if failures:
            print(f"\nREGRESSION: {len(failures)} benchmark(s) dropped more "
                  f"than {(1 - args.min_ratio) * 100:.0f}% vs baseline: "
                  + ", ".join(failures), file=err)
        if metric_failures:
            print(f"\nMETRIC BAR: {len(metric_failures)} derived metric(s) "
                  "over bound (or missing): " + ", ".join(metric_failures),
                  file=err)
        return 1
    print(f"\nall {compared} gated benchmarks within "
          f"{(1 - args.min_ratio) * 100:.0f}% of baseline", file=out)
    return 0


# ---------------------------------------------------------------------------
# --self-test: unit tests over synthetic result files, runnable anywhere
# (CI invokes this before the real gate so a broken gate cannot silently
# pass a broken benchmark run).
# ---------------------------------------------------------------------------


def _self_test():
    import io
    import os
    import tempfile
    import unittest

    def write_doc(directory, filename, entries, metrics=None):
        path = os.path.join(directory, filename)
        results = []
        for n, s in entries.items():
            row = {"name": n, "steps_per_sec": s, "iterations": 1}
            row.update((metrics or {}).get(n, {}))
            results.append(row)
        doc = {"benchmark": "self_test", "seed": 0, "results": results}
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    class GateTest(unittest.TestCase):
        def run_gate_with(self, current, baseline, current_metrics=None,
                          **overrides):
            with tempfile.TemporaryDirectory() as tmp:
                cur = write_doc(tmp, "current.json", current, current_metrics)
                base = write_doc(tmp, "baseline.json", baseline)
                argv = [cur, base]
                for key, value in overrides.items():
                    flag = "--" + key.replace("_", "-")
                    if value is True:
                        argv.append(flag)
                    elif isinstance(value, list):
                        for item in value:
                            argv.extend([flag, str(item)])
                    else:
                        argv.extend([flag, str(value)])
                args = build_parser().parse_args(argv)
                out, err = io.StringIO(), io.StringIO()
                code = run_gate(args, out=out, err=err)
                return code, out.getvalue(), err.getvalue()

        def test_pass_when_at_baseline(self):
            code, out, _ = self.run_gate_with(
                {"BM_OasisStep/10": 100.0}, {"BM_OasisStep/10": 100.0})
            self.assertEqual(code, 0)
            self.assertIn("ok", out)

        def test_fail_on_regression(self):
            code, _, err = self.run_gate_with(
                {"BM_OasisStep/10": 50.0}, {"BM_OasisStep/10": 100.0})
            self.assertEqual(code, 1)
            self.assertIn("REGRESSION", err)

        def test_small_drop_within_tolerance_passes(self):
            code, _, _ = self.run_gate_with(
                {"BM_OasisStep/10": 85.0}, {"BM_OasisStep/10": 100.0})
            self.assertEqual(code, 0)

        def test_missing_benchmark_fails_with_clear_message(self):
            code, _, err = self.run_gate_with(
                {"BM_OasisStep/10": 100.0},
                {"BM_OasisStep/10": 100.0, "BM_OasisStep/30": 90.0})
            self.assertEqual(code, 1)
            self.assertIn("MISSING", err)
            self.assertIn("BM_OasisStep/30", err)
            self.assertNotIn("Traceback", err)

        def test_allow_missing_downgrades_to_skip(self):
            code, out, _ = self.run_gate_with(
                {"BM_OasisStep/10": 100.0},
                {"BM_OasisStep/10": 100.0, "BM_OasisStep/30": 90.0},
                allow_missing=True)
            self.assertEqual(code, 0)
            self.assertIn("skip", out)

        def test_all_gated_missing_fails_even_with_allow_missing(self):
            code, _, err = self.run_gate_with(
                {"BM_Other": 1.0}, {"BM_OasisStep/10": 100.0},
                allow_missing=True)
            self.assertEqual(code, 1)
            self.assertIn("no gated benchmark", err)

        def test_calibration_rescales_baseline(self):
            # Machine is 2x slower overall (calibration 50 vs 100): an OASIS
            # result at 60% of baseline is 120% of the rescaled expectation.
            code, out, _ = self.run_gate_with(
                {"BM_OasisStep/10": 60.0, "BM_PassiveStep": 50.0},
                {"BM_OasisStep/10": 100.0, "BM_PassiveStep": 100.0},
                calibrate="BM_PassiveStep")
            self.assertEqual(code, 0)
            self.assertIn("scale 0.500", out)

        def test_ungated_entries_are_ignored(self):
            code, _, _ = self.run_gate_with(
                {"BM_OasisStep/10": 100.0, "BM_Unrelated": 1.0},
                {"BM_OasisStep/10": 100.0, "BM_Unrelated": 100.0})
            self.assertEqual(code, 0)

        def test_max_metric_within_bound_passes(self):
            code, out, _ = self.run_gate_with(
                {"BM_OasisStep/10": 100.0, "BM_TelemetryOverhead/1": 90.0},
                {"BM_OasisStep/10": 100.0},
                current_metrics={
                    "BM_TelemetryOverhead/1": {"telemetry_overhead_pct": 1.4}},
                max_metric=[
                    "BM_TelemetryOverhead/1:telemetry_overhead_pct=2.0"])
            self.assertEqual(code, 0)
            self.assertIn("telemetry_overhead_pct = 1.400", out)

        def test_max_metric_over_bound_fails(self):
            code, _, err = self.run_gate_with(
                {"BM_OasisStep/10": 100.0, "BM_TelemetryOverhead/1": 90.0},
                {"BM_OasisStep/10": 100.0},
                current_metrics={
                    "BM_TelemetryOverhead/1": {"telemetry_overhead_pct": 5.7}},
                max_metric=[
                    "BM_TelemetryOverhead/1:telemetry_overhead_pct=2.0"])
            self.assertEqual(code, 1)
            self.assertIn("METRIC BAR", err)

        def test_max_metric_missing_fails(self):
            code, _, err = self.run_gate_with(
                {"BM_OasisStep/10": 100.0}, {"BM_OasisStep/10": 100.0},
                max_metric=[
                    "BM_TelemetryOverhead/1:telemetry_overhead_pct=2.0"])
            self.assertEqual(code, 1)
            self.assertIn("missing", err)

        def test_max_metric_negative_value_passes(self):
            # Sub-noise measurements can come out negative; that is under any
            # positive bound, not an error.
            code, _, _ = self.run_gate_with(
                {"BM_OasisStep/10": 100.0, "BM_TelemetryOverhead/1": 101.0},
                {"BM_OasisStep/10": 100.0},
                current_metrics={
                    "BM_TelemetryOverhead/1": {"telemetry_overhead_pct": -0.3}},
                max_metric=[
                    "BM_TelemetryOverhead/1:telemetry_overhead_pct=2.0"])
            self.assertEqual(code, 0)

        def test_max_metric_bad_spec_fails_cleanly(self):
            code, _, err = self.run_gate_with(
                {"BM_OasisStep/10": 100.0}, {"BM_OasisStep/10": 100.0},
                max_metric=["no-equals-sign"])
            self.assertEqual(code, 1)
            self.assertIn("NAME:METRIC=BOUND", err)
            self.assertNotIn("Traceback", err)

        def test_comma_separated_filter_gates_every_prefix(self):
            # Both families gated: the forest regression must fail the run
            # even though the step-path family is clean.
            code, _, err = self.run_gate_with(
                {"BM_OasisStep/10": 100.0, "BM_BlockForestRebuild/8": 50.0},
                {"BM_OasisStep/10": 100.0, "BM_BlockForestRebuild/8": 100.0},
                filter="BM_OasisStep,BM_BlockForestRebuild")
            self.assertEqual(code, 1)
            self.assertIn("BM_BlockForestRebuild/8", err)

        def test_comma_separated_filter_ignores_unlisted_prefixes(self):
            code, _, _ = self.run_gate_with(
                {"BM_OasisStep/10": 100.0, "BM_Unrelated": 1.0},
                {"BM_OasisStep/10": 100.0, "BM_Unrelated": 100.0},
                filter="BM_OasisStep,BM_BlockForestRebuild")
            self.assertEqual(code, 0)

        def test_empty_filter_match_fails(self):
            code, _, err = self.run_gate_with(
                {"BM_OasisStep/10": 100.0}, {"BM_OasisStep/10": 100.0},
                filter="BM_Nonexistent")
            self.assertEqual(code, 1)
            self.assertIn("no baseline entries match", err)

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(GateTest)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main():
    args = build_parser().parse_args()
    if args.self_test:
        return _self_test()
    if not args.current or not args.baseline:
        build_parser().error("current and baseline are required "
                             "(or use --self-test)")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
