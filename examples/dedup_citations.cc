// Citation deduplication evaluation — the paper's cora scenario.
//
// A single bibliography with duplicate-ridden entries is generated; token
// blocking produces candidate pairs; a pair classifier is trained and its
// deduplication quality is then estimated with OASIS. This exercises the
// single-source (dedup) path end to end, including the blocking substrate.
//
// Build & run:  ./build/examples/dedup_citations

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>

#include "classify/logistic_regression.h"
#include "core/oasis.h"
#include "datagen/dataset.h"
#include "er/blocking.h"
#include "er/pipeline.h"
#include "common/logging.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "oracle/ground_truth_oracle.h"

using namespace oasis;

int main() {
  // --- 1. A bibliography with ~40-record duplicate clusters (cora-like). --
  Rng rng(20170626);
  datagen::EntityGenerator generator(datagen::Domain::kCitation, rng.Split());
  datagen::DedupConfig config;
  config.num_entities = 12;
  config.min_cluster = 20;
  config.max_cluster = 30;
  auto dataset_result = datagen::GenerateDedup(generator, config, rng);
  OASIS_CHECK_OK(dataset_result.status());
  datagen::ErDataset dataset = std::move(dataset_result).ValueOrDie();
  std::printf("bibliography: %lld records, %zu true duplicate pairs\n",
              static_cast<long long>(dataset.left.size()),
              dataset.matches.size());

  // --- 2. Token blocking on titles to get candidate pairs. ----------------
  er::BlockingOptions blocking;
  blocking.field_index = 0;      // title
  blocking.max_block_size = 0;   // No cap: the corpus is small.
  auto candidates_result = er::TokenBlockingDedup(dataset.left, blocking);
  OASIS_CHECK_OK(candidates_result.status());
  std::vector<er::RecordPair> candidates =
      std::move(candidates_result).ValueOrDie();

  std::set<std::pair<int32_t, int32_t>> truth_set;
  for (const er::RecordPair& match : dataset.matches) {
    truth_set.insert({match.left, match.right});
  }
  int64_t blocked_matches = 0;
  for (const er::RecordPair& pair : candidates) {
    if (truth_set.contains({pair.left, pair.right})) ++blocked_matches;
  }
  std::printf(
      "blocking kept %zu of %lld candidate pairs (%.2f%%), retaining "
      "%lld/%zu true pairs\n",
      candidates.size(), static_cast<long long>(dataset.TotalPairs()),
      100.0 * static_cast<double>(candidates.size()) /
          static_cast<double>(dataset.TotalPairs()),
      static_cast<long long>(blocked_matches), dataset.matches.size());

  // --- 3. Train a logistic-regression pair classifier. --------------------
  Rng train_rng = rng.Split();
  auto training_result =
      datagen::SampleTrainingPairs(dataset, 200, 1200, 0.3, train_rng);
  OASIS_CHECK_OK(training_result.status());
  er::PairPool training_pool = std::move(training_result).ValueOrDie();

  auto pipeline_result = er::ErPipeline::Create(&dataset.left, &dataset.left);
  OASIS_CHECK_OK(pipeline_result.status());
  er::ErPipeline pipeline = std::move(pipeline_result).ValueOrDie();
  er::TrainingSet training;
  training.pairs = training_pool.pairs();
  training.labels = training_pool.truth();
  OASIS_CHECK_OK(pipeline.Train(
      training, std::make_unique<classify::LogisticRegression>(), train_rng));

  // --- 4. Score the blocked candidates and evaluate with OASIS. -----------
  auto scored_result = pipeline.ScorePairs(candidates);
  OASIS_CHECK_OK(scored_result.status());
  ScoredPool scored = std::move(scored_result).ValueOrDie();

  std::vector<uint8_t> truth;
  truth.reserve(candidates.size());
  for (const er::RecordPair& pair : candidates) {
    truth.push_back(truth_set.contains({pair.left, pair.right}) ? 1 : 0);
  }
  const ConfusionCounts counts =
      CountConfusion(truth, scored.predictions).ValueOrDie();
  const Measures exact = ComputeMeasures(counts, 0.5);

  GroundTruthOracle oracle(truth);
  LabelCache labels(&oracle);
  auto sampler_result =
      OasisSampler::CreateWithCsf(&scored, &labels, 20, OasisOptions{}, Rng(3));
  OASIS_CHECK_OK(sampler_result.status());
  auto sampler = std::move(sampler_result).ValueOrDie();

  std::printf("\n%10s  %10s  (exact pool F = %.4f)\n", "labels", "F-hat",
              exact.f_alpha);
  const int64_t max_budget =
      std::min<int64_t>(2000, static_cast<int64_t>(candidates.size()));
  for (int64_t budget = 200; budget <= max_budget; budget += 300) {
    while (sampler->labels_consumed() < budget &&
           sampler->iterations() < 100 * max_budget) {
      OASIS_CHECK_OK(sampler->Step());
    }
    std::printf("%10lld  %10.4f\n",
                static_cast<long long>(sampler->labels_consumed()),
                sampler->Estimate().f_alpha);
  }
  return 0;
}
