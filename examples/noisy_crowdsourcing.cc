// Crowdsourced (noisy) oracle evaluation.
//
// The paper's theory covers randomised oracles with arbitrary p(1|z) —
// annotators who answer stochastically. This example compares OASIS under a
// deterministic expert oracle vs a noisy crowd oracle (5% symmetric flip
// rate), illustrating (a) that estimation still converges, to the noisy
// population value, and (b) the budget accounting difference: every crowd
// query costs budget, while expert labels are cached after the first query.
//
// Build & run:  ./build/examples/noisy_crowdsourcing

#include <cstdio>

#include "common/random.h"
#include "core/oasis.h"
#include "common/logging.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/noisy_oracle.h"

using namespace oasis;

namespace {

/// Expected asymptotic F under a symmetric flip-rate oracle: each pair's
/// label contribution is averaged over the noise, i.e. counts become
/// expectations with p(1|z).
double NoisyPopulationF(const std::vector<uint8_t>& truth,
                        const std::vector<uint8_t>& predictions,
                        double flip_rate, double alpha) {
  double tp = 0.0, pred = 0.0, pos = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double p1 = truth[i] ? 1.0 - flip_rate : flip_rate;
    if (predictions[i]) {
      tp += p1;
      pred += 1.0;
    }
    pos += p1;
  }
  return tp / (alpha * pred + (1.0 - alpha) * pos);
}

}  // namespace

int main() {
  // Synthetic pool: 2% matches out of 30k pairs.
  const int64_t pool_size = 30000;
  const double flip_rate = 0.05;
  Rng data_rng(11);
  ScoredPool pool;
  std::vector<uint8_t> truth;
  for (int64_t i = 0; i < pool_size; ++i) {
    const bool match = data_rng.NextBernoulli(0.02);
    const double margin = (match ? 1.0 : -1.0) + 0.6 * data_rng.NextGaussian();
    truth.push_back(match ? 1 : 0);
    pool.scores.push_back(margin);
    pool.predictions.push_back(margin >= 0.0 ? 1 : 0);
  }
  pool.threshold = 0.0;

  const ConfusionCounts counts =
      CountConfusion(truth, pool.predictions).ValueOrDie();
  const Measures exact = ComputeMeasures(counts, 0.5);
  const double noisy_f = NoisyPopulationF(truth, pool.predictions, flip_rate, 0.5);
  std::printf("clean-population F = %.4f; noisy-population F = %.4f\n\n",
              exact.f_alpha, noisy_f);

  // --- Expert oracle: deterministic, labels cached after first query. -----
  {
    GroundTruthOracle oracle(truth);
    LabelCache labels(&oracle);
    auto sampler = OasisSampler::CreateWithCsf(&pool, &labels, 25, OasisOptions{},
                                               Rng(5))
                       .ValueOrDie();
    while (labels.labels_consumed() < 3000) OASIS_CHECK_OK(sampler->Step());
    std::printf(
        "expert oracle : F-hat = %.4f after %lld labels "
        "(%lld total queries, repeats were free)\n",
        sampler->Estimate().f_alpha,
        static_cast<long long>(labels.labels_consumed()),
        static_cast<long long>(labels.total_queries()));
  }

  // --- Crowd oracle: every query is a fresh draw and costs budget. --------
  {
    auto oracle_result = NoisyOracle::FromTruthWithFlipNoise(truth, flip_rate);
    OASIS_CHECK_OK(oracle_result.status());
    NoisyOracle oracle = std::move(oracle_result).ValueOrDie();
    LabelCache labels(&oracle);
    auto sampler = OasisSampler::CreateWithCsf(&pool, &labels, 25, OasisOptions{},
                                               Rng(5))
                       .ValueOrDie();
    while (labels.labels_consumed() < 12000) OASIS_CHECK_OK(sampler->Step());
    std::printf(
        "crowd oracle  : F-hat = %.4f after %lld paid queries "
        "(%lld distinct pairs; target is the noisy-population F)\n",
        sampler->Estimate().f_alpha,
        static_cast<long long>(labels.labels_consumed()),
        static_cast<long long>(labels.distinct_items_labelled()));
  }

  std::printf(
      "\nUnder label noise the estimator converges to the noisy-population\n"
      "value — repeated labelling (more budget) narrows the gap, it does not\n"
      "remove the noise bias. Use majority-vote aggregation upstream if the\n"
      "clean value is required.\n");
  return 0;
}
