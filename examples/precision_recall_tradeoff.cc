// Pricing the whole precision-recall trade-off from one label stream.
//
// Eqn. (3)'s weighted sums do not depend on the F-measure weight alpha, so a
// single OASIS run can estimate F_alpha for a whole grid of alphas at once
// (alpha = 1 is precision, alpha = 0 is recall, alpha = 1/2 the balanced F).
// This example evaluates a matcher across the grid and then checks the
// matcher's clustering quality with the cluster-level measures of Remark 2.
//
// Build & run:  ./build/examples/precision_recall_tradeoff

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "core/multi_alpha.h"
#include "core/oasis.h"
#include "er/clustering.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "oracle/ground_truth_oracle.h"

using namespace oasis;

int main() {
  // Synthetic pool with a mid-quality matcher.
  const int64_t pool_size = 40000;
  const double threshold = 0.8;
  Rng data_rng(77);
  ScoredPool pool;
  std::vector<uint8_t> truth;
  for (int64_t i = 0; i < pool_size; ++i) {
    const bool match = data_rng.NextBernoulli(0.01);
    const double margin = (match ? 1.0 : -1.0) + 0.8 * data_rng.NextGaussian();
    truth.push_back(match ? 1 : 0);
    pool.scores.push_back(margin);
    pool.predictions.push_back(margin >= threshold ? 1 : 0);
  }
  pool.threshold = threshold;

  GroundTruthOracle oracle(truth);
  LabelCache labels(&oracle);
  auto sampler = OasisSampler::CreateWithCsf(&pool, &labels, 30, OasisOptions{},
                                             Rng(5))
                     .ValueOrDie();

  // Stream every weighted observation into the multi-alpha estimator via
  // the sampler's observer hook. (The instrumental distribution is optimised
  // for alpha = 1/2; estimates at other alphas are consistent but noisier.)
  auto multi = MultiAlphaEstimator::Create({0.0, 0.25, 0.5, 0.75, 1.0})
                   .ValueOrDie();
  sampler->SetObserver([&multi](double weight, bool label, bool prediction) {
    multi.Add(weight, label, prediction);
  });

  const int64_t budget = 3000;
  while (sampler->labels_consumed() < budget) {
    OASIS_CHECK_OK(sampler->Step());
  }
  const EstimateSnapshot snap = sampler->Estimate();
  std::printf("after %lld labels: precision-hat %.4f, recall-hat %.4f\n\n",
              static_cast<long long>(budget), snap.precision, snap.recall);

  const ConfusionCounts counts = CountConfusion(truth, pool.predictions).ValueOrDie();
  std::printf("%8s  %12s  %12s\n", "alpha", "F-hat", "F exact");
  for (const auto& estimate : multi.Estimates()) {
    const MaybeValue exact =
        FAlpha(static_cast<double>(counts.true_positives),
               static_cast<double>(counts.false_positives),
               static_cast<double>(counts.false_negatives), estimate.alpha);
    std::printf("%8.2f  %12.4f  %12.4f\n", estimate.alpha, estimate.f_alpha,
                exact.value);
  }

  // Cluster-level view (Remark 2): treat the pool pairs as the record pair
  // space of 400 records and compare the transitive closures of predicted
  // and true matches.
  std::printf("\ncluster-level view on a small dedup slice:\n");
  const int64_t records = 400;
  std::vector<er::RecordPair> true_pairs;
  std::vector<er::RecordPair> predicted_pairs;
  Rng pair_rng(9);
  int64_t index = 0;
  for (int32_t a = 0; a < records && index < pool_size; ++a) {
    for (int32_t b = a + 1; b < records && index < pool_size; ++b, ++index) {
      if (truth[static_cast<size_t>(index)]) true_pairs.push_back({a, b});
      if (pool.predictions[static_cast<size_t>(index)]) {
        predicted_pairs.push_back({a, b});
      }
    }
  }
  auto truth_clusters = er::ClusterFromPairs(records, true_pairs).ValueOrDie();
  auto predicted_clusters =
      er::ClusterFromPairs(records, predicted_pairs).ValueOrDie();
  const Measures cluster_measures =
      er::PairwiseMeasuresFromClusterings(truth_clusters, predicted_clusters)
          .ValueOrDie();
  const er::ClusterAgreement agreement =
      er::ExactClusterAgreement(truth_clusters, predicted_clusters).ValueOrDie();
  std::printf(
      "  pairwise-from-clusters: P %.3f R %.3f F %.3f\n"
      "  exact-cluster agreement: %.1f%% of predicted clusters exact, "
      "%.1f%% of true entities recovered\n",
      cluster_measures.precision, cluster_measures.recall,
      cluster_measures.f_alpha, 100.0 * agreement.predicted_exact,
      100.0 * agreement.truth_recovered);
  std::printf(
      "\nNote how transitive closure makes cluster-level precision lower\n"
      "than pairwise precision when false-positive edges glue entities\n"
      "together — the effect Remark 2 warns about.\n");
  return 0;
}
