// E-commerce catalogue matching evaluation — the scenario motivating the
// paper's Abt-Buy / Amazon-GoogleProducts experiments.
//
// Two product catalogues are generated, an L-SVM pair matcher is trained on
// a labelled subset, and then the matcher's F-measure over a large candidate
// pool is estimated four ways (Passive / Stratified / static IS / OASIS) at
// a small label budget, against the exact pool value.
//
// Build & run:  ./build/examples/ecommerce_evaluation

#include <cstdio>
#include <memory>

#include "datagen/benchmark_datasets.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "strata/csf.h"

using namespace oasis;

int main() {
  // An Abt-Buy-flavoured profile, scaled down so the example runs in
  // seconds. Moderate corruption keeps precision high while recall suffers.
  datagen::DatasetProfile profile;
  profile.name = "ecommerce-demo";
  profile.domain = datagen::Domain::kECommerce;
  profile.left_size = 400;
  profile.right_size = 400;
  profile.full_matches = 200;
  profile.pool_size = 20000;
  profile.pool_matches = 60;
  profile.hard_negative_fraction = 0.08;
  profile.train_matches = 100;
  profile.train_nonmatches = 1000;
  profile.train_hard_fraction = 0.3;
  profile.predicted_positive_factor = 0.6;

  std::printf("Generating catalogues, training L-SVM, scoring %lld pairs...\n",
              static_cast<long long>(profile.pool_size));
  auto pool_result = datagen::BuildBenchmarkPool(
      profile, datagen::ClassifierKind::kLinearSvm, /*calibrated=*/false,
      /*seed=*/20240610);
  if (!pool_result.ok()) {
    std::fprintf(stderr, "pool generation failed: %s\n",
                 pool_result.status().ToString().c_str());
    return 1;
  }
  datagen::BenchmarkPool pool = std::move(pool_result).ValueOrDie();
  std::printf(
      "pool ready: %lld pairs, %lld matches (imbalance 1:%.0f)\n"
      "matcher truth: precision %.3f, recall %.3f, F1/2 %.3f\n\n",
      static_cast<long long>(pool.scored.size()),
      static_cast<long long>(pool.pool_matches),
      static_cast<double>(pool.scored.size() - pool.pool_matches) /
          static_cast<double>(pool.pool_matches),
      pool.true_measures.precision, pool.true_measures.recall,
      pool.true_measures.f_alpha);

  GroundTruthOracle oracle(pool.truth);
  auto strata = std::make_shared<const Strata>(
      StratifyCsf(pool.scored.scores, 30).ValueOrDie());

  experiments::RunnerOptions options;
  options.repeats = 40;
  options.trajectory.budget = 1000;
  options.trajectory.checkpoint_every = 1000;
  // Repeats fan out over all cores; the curve is bit-identical to a
  // single-threaded run. The progress hook may fire from worker threads, so
  // it sticks to async-signal-ish printing only.
  options.num_threads = 0;
  options.progress = [](int completed, int total) {
    if (completed == total || completed % 10 == 0) {
      std::fprintf(stderr, "  ... %d/%d repeats\n", completed, total);
    }
  };

  experiments::TextTable table(
      {"method", "E|F-hat - F| @1000 labels", "std.dev", "defined"});
  for (const experiments::MethodSpec& spec :
       {experiments::MakePassiveSpec(0.5),
        experiments::MakeStratifiedSpec(0.5, strata),
        experiments::MakeImportanceSpec(ImportanceOptions{}),
        experiments::MakeOasisSpec(OasisOptions{}, strata)}) {
    auto curve = experiments::RunErrorCurve(spec, pool.scored, oracle,
                                            pool.true_measures.f_alpha, options);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                   curve.status().ToString().c_str());
      return 1;
    }
    const experiments::ErrorCurve& c = curve.ValueOrDie();
    table.AddRow({c.method, experiments::FormatDouble(c.mean_abs_error.back()),
                  experiments::FormatDouble(c.stddev.back()),
                  experiments::FormatDouble(c.frac_defined.back(), 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The biased samplers (IS, OASIS) should beat Passive/Stratified by an\n"
      "order of magnitude: they spend labels on the small high-score strata\n"
      "where the F-measure information lives. On this pool the matcher's\n"
      "scores are clean, so static IS is already near-optimal; OASIS's edge\n"
      "grows when scores are noisy or uncalibrated (see bench/fig3).\n");
  return 0;
}
