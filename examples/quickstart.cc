// Quickstart: evaluate a matcher's F-measure with OASIS on a synthetic pool.
//
// The scenario: you ran an ER system over a pool of 50,000 record pairs and
// kept the similarity score and predicted label per pair. Ground truth is
// expensive (a human oracle), so you want a precise F-measure estimate from
// as few labels as possible.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/random.h"
#include "core/oasis.h"
#include "common/logging.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "oracle/ground_truth_oracle.h"
#include "stats/transforms.h"

using namespace oasis;

int main() {
  // --- 1. Assemble the evaluation pool (scores + predictions). ------------
  // Here we synthesise one: 0.5% of pairs are true matches, scores correlate
  // with the truth, predictions threshold the scores. In a real deployment
  // these come from your matcher.
  const int64_t pool_size = 50000;
  // A conservative decision threshold: under 1:200 imbalance, thresholding
  // at the class midpoint would drown the matches in false positives.
  const double threshold = 1.2;
  Rng data_rng(42);
  ScoredPool pool;
  std::vector<uint8_t> truth;
  for (int64_t i = 0; i < pool_size; ++i) {
    const bool match = data_rng.NextBernoulli(0.005);
    const double margin = (match ? 1.0 : -1.0) + 0.7 * data_rng.NextGaussian();
    truth.push_back(match ? 1 : 0);
    pool.scores.push_back(margin);
    pool.predictions.push_back(margin >= threshold ? 1 : 0);
  }
  pool.scores_are_probabilities = false;  // Raw margins.
  pool.threshold = threshold;

  // --- 2. Wrap ground truth in an oracle + budget-accounting cache. -------
  GroundTruthOracle oracle(truth);
  LabelCache labels(&oracle);

  // --- 3. Run OASIS: CSF stratification + adaptive importance sampling. ---
  OasisOptions options;      // alpha = 1/2, epsilon = 1e-3, eta = 2K.
  auto sampler_result =
      OasisSampler::CreateWithCsf(&pool, &labels, /*target_strata=*/30, options,
                                  Rng(7));
  if (!sampler_result.ok()) {
    std::fprintf(stderr, "failed to create sampler: %s\n",
                 sampler_result.status().ToString().c_str());
    return 1;
  }
  auto sampler = std::move(sampler_result).ValueOrDie();

  std::printf("Evaluating a pool of %lld pairs with OASIS (K = %zu strata)\n\n",
              static_cast<long long>(pool_size), sampler->strata().num_strata());
  std::printf("%10s  %10s  %10s  %10s\n", "labels", "F-hat", "precision",
              "recall");
  for (int64_t budget : {100, 250, 500, 1000, 2000, 4000}) {
    while (sampler->labels_consumed() < budget) {
      OASIS_CHECK_OK(sampler->Step());
    }
    const EstimateSnapshot snap = sampler->Estimate();
    std::printf("%10lld  %10.4f  %10.4f  %10.4f\n",
                static_cast<long long>(budget), snap.f_alpha, snap.precision,
                snap.recall);
  }

  // --- 4. Compare with the (normally unknowable) exact pool measures. -----
  const ConfusionCounts counts =
      CountConfusion(truth, pool.predictions).ValueOrDie();
  const Measures exact = ComputeMeasures(counts, 0.5);
  std::printf("\nexact pool values: F = %.4f, precision = %.4f, recall = %.4f\n",
              exact.f_alpha, exact.precision, exact.recall);
  std::printf("labels consumed:   %lld of %lld pairs (%.1f%%)\n",
              static_cast<long long>(labels.labels_consumed()),
              static_cast<long long>(pool_size),
              100.0 * static_cast<double>(labels.labels_consumed()) /
                  static_cast<double>(pool_size));
  return 0;
}
