// Pricing an evaluation on a remote crowdsourcing platform.
//
// OASIS's premise is that oracle labels are the scarce resource — yet a local
// GroundTruthOracle answers in nanoseconds and for free. This example wraps
// the oracle in a RemoteOracle that prices every query like a crowd platform
// (30 s to post a task batch, 12 s of annotator time per pair, $0.05 per
// label, 20% service-time jitter) and walks the whole cost stack:
//
//   1. per-query vs batched labelling for a static sampler — the round-trip
//      economy of LabelCache::QueryBatch (and why OASIS cannot batch);
//   2. async label prefetching (AsyncLabelPipeline) overlapping the remote
//      fetch with the sampler's own work;
//   3. RunErrorCurve with a cost model: error curves priced in simulated
//      hours and dollars, with and without cross-repeat label sharing.
//
// Build & run:  ./build/crowdsourced_evaluation
// (Every clock below is simulated — the example itself runs in seconds.)

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/oasis.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/remote_oracle.h"
#include "sampling/importance.h"
#include "strata/csf.h"

using namespace oasis;

namespace {

/// The crowd platform's price sheet used throughout the example.
RemoteOracleOptions CrowdPlatform() {
  RemoteOracleOptions options;
  options.round_trip_seconds = 30.0;  // Posting a task page + pickup.
  options.per_item_seconds = 12.0;    // One annotator judging one pair.
  options.cost_per_label = 0.05;      // $ per judged pair.
  options.jitter_fraction = 0.2;      // Annotator service-time spread.
  options.max_items_per_round_trip = 100;  // Platform page size.
  return options;
}

std::string Hours(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600.0);
  return buf;
}

std::string Dollars(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "$%.2f", cost);
  return buf;
}

/// Steps `sampler` in batches of at most `batch` until exactly `budget`
/// labels are consumed. Batches are capped at the label deficit (a step
/// consumes at most one label), so every batch size stops at the same
/// iteration with the same draw sequence — the comparison below changes ONLY
/// how the identical queries are packed into round trips.
void RunToBudget(Sampler& sampler, const LabelCache& labels, int64_t budget,
                 int64_t batch) {
  while (labels.labels_consumed() < budget) {
    const int64_t deficit = budget - labels.labels_consumed();
    OASIS_CHECK_OK(sampler.StepBatch(std::min(batch, deficit)));
  }
}

}  // namespace

int main() {
  // Synthetic evaluation pool: 40k record pairs, ~2% true matches, a decent
  // but imperfect classifier — the regime of the paper's Table 2 pools.
  const int64_t pool_size = 40000;
  Rng data_rng(23);
  ScoredPool pool;
  std::vector<uint8_t> truth;
  for (int64_t i = 0; i < pool_size; ++i) {
    const bool match = data_rng.NextBernoulli(0.02);
    const double margin = (match ? 1.0 : -1.0) + 0.7 * data_rng.NextGaussian();
    truth.push_back(match ? 1 : 0);
    pool.scores.push_back(margin);
    pool.predictions.push_back(margin >= 0.0 ? 1 : 0);
  }
  auto counts = CountConfusion(truth, pool.predictions);
  if (!counts.ok()) {
    std::fprintf(stderr, "confusion count failed: %s\n",
                 counts.status().ToString().c_str());
    return 1;
  }
  const Measures exact = ComputeMeasures(counts.ValueOrDie(), 0.5);
  std::printf("pool: %lld pairs, true F = %.4f\n\n",
              static_cast<long long>(pool_size), exact.f_alpha);

  GroundTruthOracle expert(truth);

  // ------------------------------------------------------------------------
  // 1. The round-trip economy: per-query vs batched labelling.
  // ------------------------------------------------------------------------
  std::printf("1. importance sampling, 2000 labels, per-query vs batched:\n\n");
  experiments::TextTable table(
      {"labelling", "round trips", "sim. time", "crowd cost", "F-hat"});
  for (const int64_t batch : {int64_t{1}, int64_t{64}, int64_t{512}}) {
    RemoteOracle remote(&expert, CrowdPlatform());
    LabelCache labels(&remote);
    auto sampler_result =
        ImportanceSampler::Create(&pool, &labels, ImportanceOptions{}, Rng(4));
    if (!sampler_result.ok()) {
      std::fprintf(stderr, "sampler creation failed: %s\n",
                   sampler_result.status().ToString().c_str());
      return 1;
    }
    auto sampler = std::move(sampler_result).ValueOrDie();
    RunToBudget(*sampler, labels, 2000, batch);
    const RemoteOracleStats stats = remote.stats();
    table.AddRow({batch == 1 ? "per-query" : "batch=" + std::to_string(batch),
                  experiments::FormatCount(stats.round_trips),
                  Hours(stats.simulated_seconds()), Dollars(stats.label_cost),
                  experiments::FormatDouble(sampler->Estimate().f_alpha)});
  }
  table.Print(std::cout);
  std::printf(
      "\nSame labels, same estimate, same dollars — batching only collapses\n"
      "round trips (platform pages hold %lld pairs). OASIS itself cannot\n"
      "batch: its next draw depends on the last label (docs/ORACLES.md).\n\n",
      static_cast<long long>(CrowdPlatform().max_items_per_round_trip));

  // ------------------------------------------------------------------------
  // 2. Async prefetching: overlap the fetch with the sampler's own work.
  // ------------------------------------------------------------------------
  {
    ThreadPool prefetch_pool(2);
    RemoteOracle remote(&expert, CrowdPlatform());
    LabelCache labels(&remote);
    auto sampler_result =
        ImportanceSampler::Create(&pool, &labels, ImportanceOptions{}, Rng(4));
    if (!sampler_result.ok()) {
      std::fprintf(stderr, "sampler creation failed: %s\n",
                   sampler_result.status().ToString().c_str());
      return 1;
    }
    auto sampler = std::move(sampler_result).ValueOrDie();
    sampler->SetPrefetchPool(&prefetch_pool);
    RunToBudget(*sampler, labels, 2000, 2000);
    std::printf(
        "2. with AsyncLabelPipeline prefetching, the same run fetches batch\n"
        "   t+1 on a worker while batch t is tallied: F-hat = %.4f —\n"
        "   bit-identical to the table above (tested in\n"
        "   tests/async_label_pipeline_test.cc). The overlap hides a truly\n"
        "   remote oracle's latency behind local work.\n\n",
        sampler->Estimate().f_alpha);
  }

  // ------------------------------------------------------------------------
  // 3. Error curves priced in hours and dollars.
  // ------------------------------------------------------------------------
  std::printf("3. error-vs-cost curves (Passive, 20 repeats, budget 1500):\n\n");
  experiments::RunnerOptions options;
  options.repeats = 20;
  options.trajectory.budget = 1500;
  options.trajectory.checkpoint_every = 300;
  options.remote_oracle = CrowdPlatform();

  experiments::TextTable curve_table({"labels", "|err| (solo)", "cost (solo)",
                                      "|err| (shared)", "cost (shared)",
                                      "round trips (shared)"});
  const experiments::MethodSpec method = experiments::MakePassiveSpec(0.5);
  auto solo_result =
      experiments::RunErrorCurve(method, pool, expert, exact.f_alpha, options);
  if (!solo_result.ok()) {
    std::fprintf(stderr, "solo curve failed: %s\n",
                 solo_result.status().ToString().c_str());
    return 1;
  }
  const experiments::ErrorCurve solo = std::move(solo_result).ValueOrDie();
  options.remote_share_labels = true;
  auto shared_result =
      experiments::RunErrorCurve(method, pool, expert, exact.f_alpha, options);
  if (!shared_result.ok()) {
    std::fprintf(stderr, "shared curve failed: %s\n",
                 shared_result.status().ToString().c_str());
    return 1;
  }
  const experiments::ErrorCurve shared = std::move(shared_result).ValueOrDie();
  for (size_t i = 0; i < solo.budgets.size(); ++i) {
    curve_table.AddRow(
        {experiments::FormatCount(solo.budgets[i]),
         experiments::FormatDouble(solo.mean_abs_error[i]),
         Dollars(solo.mean_label_cost[i]),
         experiments::FormatDouble(shared.mean_abs_error[i]),
         Dollars(shared.mean_label_cost[i]),
         experiments::FormatDouble(shared.mean_round_trips[i], 1)});
  }
  curve_table.Print(std::cout);
  std::printf(
      "\nWith remote_share_labels the repeats pool their fetches through one\n"
      "SharedLabelStore: an item labelled in any repeat is never re-bought,\n"
      "so the per-repeat cost of the SAME error curve drops (the error\n"
      "columns agree bit-for-bit — sharing changes who pays, never what is\n"
      "measured). Plot |err| against cost or round trips instead of labels\n"
      "to compare samplers under real crowdsourcing economics.\n");
  return 0;
}
