// oasis_run — run one scenario experiment from a config file.
//
// Usage: oasis_run <run-config> <out-prefix>
//
// The config combines a scenario reference with run options:
//   scenario = stripe-f90          # catalogue name, or:
//   scenario_file = path/to.cfg    # a spec written by oasis_gen
//   method = oasis                 # passive | stratified | is | oasis
//   budget = 2000
//   checkpoint_every = 100
//   repeats = 20
//   run_seed = 42
//   threads = 0                    # 0 = hardware concurrency
//   strata = 30                    # stratified/oasis only
//
// The pool is regenerated from the spec (pools are a pure function of the
// spec, so gen -> run round-trips through the .scenario.cfg file). Writes
//   <out-prefix>.curves.csv    the 9-column error curve
//   <out-prefix>.summary.json  the verification-ready run summary
// and prints the final-budget statistics plus elapsed time / labels per
// second from the telemetry registry.
//
// Observability flags (docs/TELEMETRY.md): --metrics-out=<path>,
// --trace-out=<path>, --heartbeat=<seconds>, --no-telemetry.

#include <chrono>
#include <cstdio>

#include "apps/app_util.h"
#include "datagen/scenario.h"
#include "experiments/config.h"
#include "experiments/csv.h"
#include "experiments/scenario_run.h"
#include "experiments/summary.h"

namespace oasis {
namespace apps {
namespace {

Status RunFromConfig(const std::string& config_path, const std::string& prefix,
                     const experiments::CommonFlags& flags) {
  OASIS_ASSIGN_OR_RETURN(const experiments::ConfigMap config,
                         experiments::ConfigMap::ParseFile(config_path));
  datagen::ScenarioSpec spec;
  if (config.Has("scenario_file")) {
    OASIS_ASSIGN_OR_RETURN(const std::string spec_path,
                           config.GetString("scenario_file"));
    OASIS_ASSIGN_OR_RETURN(const experiments::ConfigMap spec_config,
                           experiments::ConfigMap::ParseFile(spec_path));
    OASIS_ASSIGN_OR_RETURN(spec, datagen::ScenarioSpec::FromConfig(spec_config));
  } else {
    OASIS_ASSIGN_OR_RETURN(const std::string name, config.GetString("scenario"));
    OASIS_ASSIGN_OR_RETURN(spec, datagen::ScenarioByName(name));
  }
  OASIS_ASSIGN_OR_RETURN(experiments::ScenarioRunOptions run_options,
                         experiments::ScenarioRunOptions::FromConfig(config));
  OASIS_RETURN_NOT_OK(config.CheckAllKeysUsed());
  // CLI overrides beat the config file (shared --threads/--seed semantics).
  if (flags.threads.has_value()) {
    run_options.num_threads = static_cast<int>(*flags.threads);
  }
  if (flags.seed.has_value()) run_options.seed = *flags.seed;

  OASIS_ASSIGN_OR_RETURN(const datagen::ScenarioPool pool,
                         datagen::GenerateScenario(spec));
  OASIS_ASSIGN_OR_RETURN(const experiments::ScenarioRunResult result,
                         experiments::RunScenario(pool, run_options));

  OASIS_RETURN_NOT_OK(
      experiments::WriteCurvesCsv(prefix + ".curves.csv", {result.curve}));
  OASIS_RETURN_NOT_OK(
      experiments::WriteRunSummaryJson(prefix + ".summary.json",
                                       result.summary));

  const experiments::RunSummary& s = result.summary;
  std::printf("%s on %s: true F=%.6f mean F-hat=%.6f |err|=%.6f stddev=%.6f "
              "defined=%.2f\n",
              s.method.c_str(), s.scenario.c_str(), s.true_f,
              s.final_mean_estimate, s.final_mean_abs_error, s.final_stddev,
              s.final_frac_defined);
  if (s.degeneracy_monitored) {
    std::printf("weights: ess_fraction=%.4f max_share=%.4f degenerate=%s\n",
                s.final_ess_fraction, s.max_weight_share,
                s.degeneracy_tripped ? "yes" : "no");
  }
  std::printf("wrote %s.curves.csv and %s.summary.json\n", prefix.c_str(),
              prefix.c_str());
  return Status::OK();
}

int Main(int argc, char** argv) {
  const Result<experiments::CommandLine> args_or =
      experiments::CommandLine::Parse(argc, argv);
  if (!args_or.ok()) return FailWith(args_or.status());
  const experiments::CommandLine& args = args_or.ValueOrDie();
  const Result<experiments::CommonFlags> flags_or =
      experiments::ParseCommonFlags(args);
  if (!flags_or.ok()) return FailWith(flags_or.status());
  const Status flags_ok = args.CheckAllFlagsUsed();
  if (!flags_ok.ok()) return FailWith(flags_ok);
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: oasis_run [--metrics-out=m.json] [--trace-out=t.json] "
                 "[--heartbeat=N] [--no-telemetry] [--threads=N] [--seed=N] "
                 "<run-config> <out-prefix>\n");
    return kExitError;
  }
  TelemetrySession telemetry(flags_or.ValueOrDie());

  const auto start = std::chrono::steady_clock::now();
  const int64_t labels_before = TelemetrySession::ChargedLabelsNow();
  const Status status = RunFromConfig(args.positional()[0],
                                      args.positional()[1],
                                      flags_or.ValueOrDie());
  if (!status.ok()) return FailWith(status);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("%s\n",
              FormatElapsed(elapsed, TelemetrySession::ChargedLabelsNow() -
                                         labels_before)
                  .c_str());
  const Status telemetry_status = telemetry.Finish();
  if (!telemetry_status.ok()) return FailWith(telemetry_status);
  return kExitOk;
}

}  // namespace
}  // namespace apps
}  // namespace oasis

int main(int argc, char** argv) { return oasis::apps::Main(argc, argv); }
