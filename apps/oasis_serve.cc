// oasis_serve — host N concurrent evaluation sessions on the session server
// and aggregate their checkpoint trajectories into batch-compatible
// artifacts.
//
// Usage: oasis_serve <serve-config> <out-prefix>
//
// Config keys (a superset of the oasis_run keys — the same file drives both):
//   scenario = stripe-f90     # catalogue name (oasis_gen --list)
//   method / budget / checkpoint_every / run_seed / threads / strata
//   sessions = 200            # concurrent session count (alias: repeats)
//   request_slice = 0         # labels per RequestLabels call; 0 = one
//                             # asynchronous full-budget advance per session
//   stack_* = ...             # per-session oracle decorator stack
//
// Session s runs on Rng::Fork(run_seed, s) — the batch runner's repeat
// discipline — so the aggregated curve is bit-identical to oasis_run on the
// same config (the determinism contract; tests/session_server_test.cc holds
// it at 1000 sessions). Every exchange goes through the full wire encoding
// (InProcessTransport), so this app drives exactly the bytes a socket peer
// would. CheckpointAck trajectories fold into an ErrorCurve with the batch
// runner's exact RunningStats sequence (estimate columns only — per-session
// cost/fault columns stay in the telemetry registry), then flow through the
// same summary path oasis_run uses:
//   <out-prefix>.curves.csv    the aggregated error curve
//   <out-prefix>.summary.json  verification-ready summary (oasis_verify)
//
// Observability flags (docs/TELEMETRY.md): --metrics-out=<path>,
// --trace-out=<path>, --heartbeat=<seconds>, --no-telemetry.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_util.h"
#include "datagen/scenario.h"
#include "experiments/config.h"
#include "experiments/csv.h"
#include "experiments/scenario_run.h"
#include "experiments/summary.h"
#include "service/client.h"
#include "service/session_manager.h"
#include "stats/running_stats.h"

namespace oasis {
namespace apps {
namespace {

struct ServeStats {
  int64_t sessions = 0;
  int64_t requests = 0;
};

/// Folds the per-session checkpoint trajectories into an ErrorCurve with the
/// batch runner's reduction: RunningStats::Add in stream (= repeat) order,
/// defined-only estimate columns, finals from the last checkpoint slot.
Result<experiments::ErrorCurve> FoldCurve(
    const std::string& method_name, const experiments::ScenarioRunOptions& options,
    double true_f, const std::vector<service::CheckpointAck>& acks) {
  std::vector<int64_t> grid;
  for (int64_t b = options.checkpoint_every; b <= options.budget;
       b += options.checkpoint_every) {
    grid.push_back(b);
  }
  const size_t num_checkpoints = grid.size();
  for (const service::CheckpointAck& ack : acks) {
    if (ack.budgets.size() != num_checkpoints) {
      return Status::Internal(
          "oasis_serve: session " + std::to_string(ack.session) + " reached " +
          std::to_string(ack.budgets.size()) + " of " +
          std::to_string(num_checkpoints) + " checkpoints (not done?)");
    }
  }

  std::vector<RunningStats> abs_error(num_checkpoints);
  std::vector<RunningStats> estimate(num_checkpoints);
  std::vector<int64_t> defined_count(num_checkpoints, 0);
  for (const service::CheckpointAck& ack : acks) {
    for (size_t i = 0; i < num_checkpoints; ++i) {
      if (ack.f_defined[i] == 0) continue;
      const double f = ack.f_alpha[i];
      abs_error[i].Add(std::abs(f - true_f));
      estimate[i].Add(f);
      ++defined_count[i];
    }
  }

  experiments::ErrorCurve curve;
  curve.method = method_name;
  curve.repeats = static_cast<int>(acks.size());
  curve.budgets = std::move(grid);
  curve.mean_abs_error.resize(num_checkpoints);
  curve.stddev.resize(num_checkpoints);
  curve.mean_estimate.resize(num_checkpoints);
  curve.frac_defined.resize(num_checkpoints);
  for (size_t i = 0; i < num_checkpoints; ++i) {
    curve.mean_abs_error[i] = abs_error[i].mean();
    curve.stddev[i] = estimate[i].stddev();
    curve.mean_estimate[i] = estimate[i].mean();
    curve.frac_defined[i] = static_cast<double>(defined_count[i]) /
                            static_cast<double>(acks.size());
  }
  curve.final_estimates.reserve(acks.size());
  curve.final_defined.reserve(acks.size());
  for (const service::CheckpointAck& ack : acks) {
    curve.final_estimates.push_back(ack.f_alpha.back());
    curve.final_defined.push_back(ack.f_defined.back());
  }
  return curve;
}

Result<ServeStats> ServeFromConfig(const std::string& config_path,
                                   const std::string& prefix,
                                   const experiments::CommonFlags& flags) {
  OASIS_ASSIGN_OR_RETURN(const experiments::ConfigMap config,
                         experiments::ConfigMap::ParseFile(config_path));
  OASIS_ASSIGN_OR_RETURN(const std::string scenario,
                         config.GetString("scenario"));
  OASIS_ASSIGN_OR_RETURN(experiments::ScenarioRunOptions options,
                         experiments::ScenarioRunOptions::FromConfig(config));
  // `sessions` is the serve-native spelling of `repeats`; the batch alias
  // keeps one config file valid for both oasis_run and oasis_serve.
  OASIS_ASSIGN_OR_RETURN(
      const int64_t sessions,
      config.GetInt64Or("sessions", options.repeats));
  options.repeats = static_cast<int>(sessions);
  OASIS_ASSIGN_OR_RETURN(const int64_t request_slice,
                         config.GetInt64Or("request_slice", 0));
  if (request_slice < 0) {
    return Status::InvalidArgument(
        "serve config: request_slice must be >= 0");
  }
  OASIS_RETURN_NOT_OK(config.CheckAllKeysUsed());
  // CLI overrides beat the config file (shared --threads/--seed semantics).
  if (flags.threads.has_value()) {
    options.num_threads = static_cast<int>(*flags.threads);
  }
  if (flags.seed.has_value()) options.seed = *flags.seed;
  OASIS_RETURN_NOT_OK(options.Validate());

  service::SessionManagerOptions manager_options;
  manager_options.num_threads = options.num_threads;
  service::SessionManager manager(manager_options);
  service::InProcessTransport transport(&manager);
  service::ServiceClient client(&transport);

  ServeStats stats;
  stats.sessions = options.repeats;

  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(options.repeats));
  for (int s = 0; s < options.repeats; ++s) {
    service::SessionSpec spec;
    spec.scenario = scenario;
    spec.method = options.method;
    spec.budget = options.budget;
    spec.checkpoint_every = options.checkpoint_every;
    spec.strata = options.target_strata;
    spec.seed = options.seed;
    spec.stream = static_cast<uint64_t>(s);
    spec.stack = options.stack;
    OASIS_ASSIGN_OR_RETURN(const int64_t id, client.Start(spec));
    ids.push_back(id);
    ++stats.requests;
  }

  if (request_slice == 0) {
    // One asynchronous full-budget advance per session; the manager's pool
    // runs them concurrently and GetCheckpoint below settles each.
    for (const int64_t id : ids) {
      OASIS_RETURN_NOT_OK(client.EnqueueLabels(id, 0));
      ++stats.requests;
    }
  } else {
    // Synchronous slicing, round-robin across sessions, until every session
    // is done — the long-lived-client shape (many small label requests
    // interleaved across sessions). Bit-identity holds regardless of the
    // slicing: advances never split a checkpoint batch.
    std::vector<bool> done(ids.size(), false);
    size_t remaining = ids.size();
    while (remaining > 0) {
      for (size_t s = 0; s < ids.size(); ++s) {
        if (done[s]) continue;
        OASIS_ASSIGN_OR_RETURN(const service::LabelArrived arrived,
                               client.RequestLabels(ids[s], request_slice));
        ++stats.requests;
        if (arrived.report.done) {
          done[s] = true;
          --remaining;
        }
      }
    }
  }

  // Collect trajectories in stream order (the fold's repeat order), then
  // close every session; the server must end empty.
  std::vector<service::CheckpointAck> acks;
  acks.reserve(ids.size());
  for (const int64_t id : ids) {
    OASIS_ASSIGN_OR_RETURN(service::CheckpointAck ack, client.GetCheckpoint(id));
    acks.push_back(std::move(ack));
    ++stats.requests;
  }
  for (const int64_t id : ids) {
    OASIS_RETURN_NOT_OK(client.Close(id).status());
    ++stats.requests;
  }
  if (manager.ActiveSessions() != 0) {
    return Status::Internal("oasis_serve: " +
                            std::to_string(manager.ActiveSessions()) +
                            " sessions still open after close");
  }

  // The pool is a pure function of the spec, so this regenerates exactly the
  // backend the sessions labelled against.
  OASIS_ASSIGN_OR_RETURN(const datagen::ScenarioSpec spec,
                         datagen::ScenarioByName(scenario));
  OASIS_ASSIGN_OR_RETURN(const datagen::ScenarioPool pool,
                         datagen::GenerateScenario(spec));
  OASIS_ASSIGN_OR_RETURN(
      const experiments::MethodSpec method,
      experiments::MakeMethodByName(options.method, pool.spec.alpha,
                                    pool.scored, options.target_strata));
  OASIS_ASSIGN_OR_RETURN(
      experiments::ErrorCurve curve,
      FoldCurve(method.name, options, pool.true_f, acks));
  OASIS_ASSIGN_OR_RETURN(
      const experiments::ScenarioRunResult result,
      experiments::SummarizeScenarioCurve(pool, options, std::move(curve)));

  OASIS_RETURN_NOT_OK(
      experiments::WriteCurvesCsv(prefix + ".curves.csv", {result.curve}));
  OASIS_RETURN_NOT_OK(experiments::WriteRunSummaryJson(
      prefix + ".summary.json", result.summary));

  const experiments::RunSummary& s = result.summary;
  std::printf("%s on %s: true F=%.6f mean F-hat=%.6f |err|=%.6f stddev=%.6f "
              "defined=%.2f\n",
              s.method.c_str(), s.scenario.c_str(), s.true_f,
              s.final_mean_estimate, s.final_mean_abs_error, s.final_stddev,
              s.final_frac_defined);
  if (s.degeneracy_monitored) {
    std::printf("weights: ess_fraction=%.4f max_share=%.4f degenerate=%s\n",
                s.final_ess_fraction, s.max_weight_share,
                s.degeneracy_tripped ? "yes" : "no");
  }
  std::printf("wrote %s.curves.csv and %s.summary.json\n", prefix.c_str(),
              prefix.c_str());
  return stats;
}

int Main(int argc, char** argv) {
  const Result<experiments::CommandLine> args_or =
      experiments::CommandLine::Parse(argc, argv);
  if (!args_or.ok()) return FailWith(args_or.status());
  const experiments::CommandLine& args = args_or.ValueOrDie();
  const Result<experiments::CommonFlags> flags_or =
      experiments::ParseCommonFlags(args);
  if (!flags_or.ok()) return FailWith(flags_or.status());
  const Status flags_ok = args.CheckAllFlagsUsed();
  if (!flags_ok.ok()) return FailWith(flags_ok);
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: oasis_serve [--metrics-out=m.json] "
                 "[--trace-out=t.json] [--heartbeat=N] [--no-telemetry] "
                 "[--threads=N] [--seed=N] <serve-config> <out-prefix>\n");
    return kExitError;
  }
  TelemetrySession telemetry(flags_or.ValueOrDie());

  const auto start = std::chrono::steady_clock::now();
  const int64_t labels_before = TelemetrySession::ChargedLabelsNow();
  const Result<ServeStats> stats = ServeFromConfig(
      args.positional()[0], args.positional()[1], flags_or.ValueOrDie());
  if (!stats.ok()) return FailWith(stats.status());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("served %lld sessions over %lld requests; %s\n",
              static_cast<long long>(stats.ValueOrDie().sessions),
              static_cast<long long>(stats.ValueOrDie().requests),
              FormatElapsed(elapsed, TelemetrySession::ChargedLabelsNow() -
                                         labels_before)
                  .c_str());
  const Status telemetry_status = telemetry.Finish();
  if (!telemetry_status.ok()) return FailWith(telemetry_status);
  return kExitOk;
}

}  // namespace
}  // namespace apps
}  // namespace oasis

int main(int argc, char** argv) { return oasis::apps::Main(argc, argv); }
