// oasis_gen — emit a known-truth scenario pool to disk.
//
// Usage:
//   oasis_gen <scenario> <out-prefix> [--seed=N] [--pool-size=N]
//   oasis_gen --list
//
// <scenario> is a catalogue name (oasis_gen --list) or a path to a
// serialised ScenarioSpec config. Writes:
//   <out-prefix>.pool.csv      score,prediction,truth rows
//   <out-prefix>.scenario.cfg  the resolved spec (round-trips into oasis_run)
// and prints the constructed confusion counts and exact F to stdout.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "apps/app_util.h"
#include "datagen/scenario.h"
#include "experiments/csv.h"
#include "experiments/report.h"

namespace oasis {
namespace apps {
namespace {

int ListScenarios() {
  experiments::TextTable table(
      {"name", "family", "pool", "true F", "tolerance", "breaks SIS"});
  for (const datagen::ScenarioSpec& spec : datagen::ScenarioCatalog()) {
    Result<datagen::ScenarioPool> pool = datagen::GenerateScenario(spec);
    if (!pool.ok()) return FailWith(pool.status());
    table.AddRow({spec.name, datagen::ScenarioFamilyName(spec.family),
                  std::to_string(spec.pool_size),
                  experiments::FormatDouble(pool.ValueOrDie().true_f),
                  experiments::FormatDouble(spec.verify_tolerance),
                  spec.expect_sis_degeneracy ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  return kExitOk;
}

int Main(int argc, char** argv) {
  const ParsedArgs args = ParseArgs(argc, argv);
  const Status flags_ok =
      CheckKnownFlags(args, {"list", "seed", "pool-size"});
  if (!flags_ok.ok()) return FailWith(flags_ok);
  if (args.HasFlag("list")) return ListScenarios();
  if (args.positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: oasis_gen <scenario> <out-prefix> [--seed=N] "
                 "[--pool-size=N]\n       oasis_gen --list\n");
    return kExitError;
  }

  Result<datagen::ScenarioSpec> spec_or = ResolveScenario(args.positional[0]);
  if (!spec_or.ok()) return FailWith(spec_or.status());
  datagen::ScenarioSpec spec = std::move(spec_or).ValueOrDie();
  if (args.HasFlag("seed")) {
    spec.seed = static_cast<uint64_t>(
        std::strtoull(args.FlagOr("seed", "1").c_str(), nullptr, 10));
  }
  if (args.HasFlag("pool-size")) {
    spec.pool_size = static_cast<int64_t>(
        std::strtoll(args.FlagOr("pool-size", "0").c_str(), nullptr, 10));
  }

  Result<datagen::ScenarioPool> pool_or = datagen::GenerateScenario(spec);
  if (!pool_or.ok()) return FailWith(pool_or.status());
  const datagen::ScenarioPool& pool = pool_or.ValueOrDie();

  const std::string prefix = args.positional[1];
  const Status pool_status =
      experiments::WritePoolCsv(prefix + ".pool.csv", pool.scored, &pool.truth);
  if (!pool_status.ok()) return FailWith(pool_status);
  {
    std::ofstream out(prefix + ".scenario.cfg");
    out << spec.ToConfigString();
    if (!out) {
      return FailWith(Status::Internal("cannot write '" + prefix +
                                       ".scenario.cfg'"));
    }
  }

  std::printf("scenario %s (%s): N=%" PRId64
              " TP=%" PRId64 " FP=%" PRId64 " FN=%" PRId64 " TN=%" PRId64 "\n",
              spec.name.c_str(), datagen::ScenarioFamilyName(spec.family).c_str(),
              spec.pool_size, pool.counts.true_positives,
              pool.counts.false_positives, pool.counts.false_negatives,
              pool.counts.true_negatives);
  std::printf("exact F_%.2f = %.6f (precision %.4f, recall %.4f)\n", spec.alpha,
              pool.true_f, pool.clean_measures.precision,
              pool.clean_measures.recall);
  std::printf("wrote %s.pool.csv and %s.scenario.cfg\n", prefix.c_str(),
              prefix.c_str());
  return kExitOk;
}

}  // namespace
}  // namespace apps
}  // namespace oasis

int main(int argc, char** argv) { return oasis::apps::Main(argc, argv); }
