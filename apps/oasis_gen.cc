// oasis_gen — emit a known-truth scenario pool to disk.
//
// Usage:
//   oasis_gen <scenario> <out-prefix> [--seed=N] [--pool-size=N]
//   oasis_gen --list
//
// <scenario> is a catalogue name (oasis_gen --list) or a path to a
// serialised ScenarioSpec config. Writes:
//   <out-prefix>.pool.csv      score,prediction,truth rows
//   <out-prefix>.scenario.cfg  the resolved spec (round-trips into oasis_run)
// and prints the constructed confusion counts and exact F to stdout.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "apps/app_util.h"
#include "datagen/scenario.h"
#include "experiments/csv.h"
#include "experiments/report.h"

namespace oasis {
namespace apps {
namespace {

int ListScenarios() {
  experiments::TextTable table(
      {"name", "family", "pool", "true F", "tolerance", "breaks SIS"});
  for (const datagen::ScenarioSpec& spec : datagen::ScenarioCatalog()) {
    Result<datagen::ScenarioPool> pool = datagen::GenerateScenario(spec);
    if (!pool.ok()) return FailWith(pool.status());
    table.AddRow({spec.name, datagen::ScenarioFamilyName(spec.family),
                  std::to_string(spec.pool_size),
                  experiments::FormatDouble(pool.ValueOrDie().true_f),
                  experiments::FormatDouble(spec.verify_tolerance),
                  spec.expect_sis_degeneracy ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  return kExitOk;
}

int Main(int argc, char** argv) {
  const Result<experiments::CommandLine> args_or =
      experiments::CommandLine::Parse(argc, argv);
  if (!args_or.ok()) return FailWith(args_or.status());
  const experiments::CommandLine& args = args_or.ValueOrDie();
  const bool list = args.HasFlag("list");
  const Result<experiments::CommonFlags> flags_or =
      experiments::ParseCommonFlags(args);
  if (!flags_or.ok()) return FailWith(flags_or.status());
  const Result<int64_t> pool_size_or = args.FlagInt64Or("pool-size", 0);
  if (!pool_size_or.ok()) return FailWith(pool_size_or.status());
  const Status flags_ok = args.CheckAllFlagsUsed();
  if (!flags_ok.ok()) return FailWith(flags_ok);
  if (list) return ListScenarios();
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: oasis_gen <scenario> <out-prefix> [--seed=N] "
                 "[--pool-size=N]\n       oasis_gen --list\n");
    return kExitError;
  }

  Result<datagen::ScenarioSpec> spec_or =
      ResolveScenario(args.positional()[0]);
  if (!spec_or.ok()) return FailWith(spec_or.status());
  datagen::ScenarioSpec spec = std::move(spec_or).ValueOrDie();
  // --seed here retargets the scenario generator (the shared seed semantics:
  // the seed that controls the artifact this app produces).
  if (flags_or.ValueOrDie().seed.has_value()) {
    spec.seed = *flags_or.ValueOrDie().seed;
  }
  if (pool_size_or.ValueOrDie() > 0) {
    spec.pool_size = pool_size_or.ValueOrDie();
  }

  Result<datagen::ScenarioPool> pool_or = datagen::GenerateScenario(spec);
  if (!pool_or.ok()) return FailWith(pool_or.status());
  const datagen::ScenarioPool& pool = pool_or.ValueOrDie();

  const std::string prefix = args.positional()[1];
  const Status pool_status =
      experiments::WritePoolCsv(prefix + ".pool.csv", pool.scored, &pool.truth);
  if (!pool_status.ok()) return FailWith(pool_status);
  {
    std::ofstream out(prefix + ".scenario.cfg");
    out << spec.ToConfigString();
    if (!out) {
      return FailWith(Status::Internal("cannot write '" + prefix +
                                       ".scenario.cfg'"));
    }
  }

  std::printf("scenario %s (%s): N=%" PRId64
              " TP=%" PRId64 " FP=%" PRId64 " FN=%" PRId64 " TN=%" PRId64 "\n",
              spec.name.c_str(), datagen::ScenarioFamilyName(spec.family).c_str(),
              spec.pool_size, pool.counts.true_positives,
              pool.counts.false_positives, pool.counts.false_negatives,
              pool.counts.true_negatives);
  std::printf("exact F_%.2f = %.6f (precision %.4f, recall %.4f)\n", spec.alpha,
              pool.true_f, pool.clean_measures.precision,
              pool.clean_measures.recall);
  std::printf("wrote %s.pool.csv and %s.scenario.cfg\n", prefix.c_str(),
              prefix.c_str());
  return kExitOk;
}

}  // namespace
}  // namespace apps
}  // namespace oasis

int main(int argc, char** argv) { return oasis::apps::Main(argc, argv); }
