#include "apps/app_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "experiments/config.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace oasis {
namespace apps {

ParsedArgs ParseArgs(int argc, char** argv) {
  ParsedArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.flags[arg.substr(2)] = "";
      } else {
        args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Status CheckKnownFlags(const ParsedArgs& args,
                       const std::vector<std::string>& known) {
  for (const auto& [name, value] : args.flags) {
    bool found = false;
    for (const std::string& candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown option '--" + name + "'");
    }
  }
  return Status::OK();
}

Result<datagen::ScenarioSpec> ResolveScenario(const std::string& reference) {
  const bool looks_like_path =
      reference.find('/') != std::string::npos ||
      (reference.size() > 4 &&
       reference.compare(reference.size() - 4, 4, ".cfg") == 0);
  if (!looks_like_path) {
    Result<datagen::ScenarioSpec> by_name = datagen::ScenarioByName(reference);
    if (by_name.ok()) return by_name;
    // Fall through: maybe it is a bare file name in the working directory.
    std::ifstream probe(reference);
    if (!probe) return by_name.status();
  }
  OASIS_ASSIGN_OR_RETURN(const experiments::ConfigMap config,
                         experiments::ConfigMap::ParseFile(reference));
  return datagen::ScenarioSpec::FromConfig(config);
}

int FailWith(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return kExitError;
}

std::vector<std::string> TelemetryFlagNames() {
  return {"metrics-out", "trace-out", "heartbeat", "no-telemetry"};
}

Result<TelemetryCli> ParseTelemetryFlags(const ParsedArgs& args) {
  TelemetryCli cli;
  cli.enabled = !args.HasFlag("no-telemetry");
  cli.metrics_out = args.FlagOr("metrics-out", "");
  cli.trace_out = args.FlagOr("trace-out", "");
  const std::string heartbeat = args.FlagOr("heartbeat", "");
  if (!heartbeat.empty()) {
    char* end = nullptr;
    cli.heartbeat_seconds = std::strtod(heartbeat.c_str(), &end);
    if (end == nullptr || *end != '\0' || cli.heartbeat_seconds <= 0.0) {
      return Status::InvalidArgument("--heartbeat wants a positive number of "
                                     "seconds, got '" + heartbeat + "'");
    }
  }
  if (!cli.enabled &&
      (!cli.metrics_out.empty() || !cli.trace_out.empty() ||
       cli.heartbeat_seconds > 0.0)) {
    return Status::InvalidArgument(
        "--no-telemetry contradicts --metrics-out/--trace-out/--heartbeat");
  }
  return cli;
}

TelemetrySession::TelemetrySession(const TelemetryCli& cli) : cli_(cli) {
  if (!cli_.enabled) return;
  telemetry::SetEnabled(true);
  if (cli_.heartbeat_seconds > 0.0) {
    telemetry::HeartbeatOptions beat;
    beat.interval_seconds = cli_.heartbeat_seconds;
    heartbeat_.emplace(&telemetry::DefaultRegistry(), beat);
  }
}

TelemetrySession::~TelemetrySession() {
  heartbeat_.reset();
  if (cli_.enabled) telemetry::SetEnabled(false);
}

Status TelemetrySession::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  heartbeat_.reset();
  if (!cli_.enabled) return Status::OK();
  if (!cli_.metrics_out.empty()) {
    OASIS_RETURN_NOT_OK(telemetry::WriteTextFile(
        cli_.metrics_out,
        telemetry::MetricsJson(telemetry::DefaultRegistry())));
  }
  if (!cli_.trace_out.empty()) {
    OASIS_RETURN_NOT_OK(telemetry::WriteTextFile(
        cli_.trace_out,
        telemetry::TraceJson(telemetry::DefaultTraceCollector())));
  }
  return Status::OK();
}

int64_t TelemetrySession::ChargedLabelsNow() {
  const telemetry::Counter* labels =
      telemetry::DefaultRegistry().FindCounter("oasis_labelcache_misses_total");
  return labels != nullptr ? labels->value() : 0;
}

std::string FormatElapsed(double seconds, int64_t labels_delta) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "elapsed %.2fs", seconds);
  std::string line = buffer;
  if (labels_delta > 0 && seconds > 0.0) {
    std::snprintf(buffer, sizeof(buffer), " (%lld labels, %.0f labels/s)",
                  static_cast<long long>(labels_delta),
                  static_cast<double>(labels_delta) / seconds);
    line += buffer;
  }
  return line;
}

}  // namespace apps
}  // namespace oasis
