#include "apps/app_util.h"

#include <cstdio>
#include <fstream>

#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace oasis {
namespace apps {

Result<datagen::ScenarioSpec> ResolveScenario(const std::string& reference) {
  const bool looks_like_path =
      reference.find('/') != std::string::npos ||
      (reference.size() > 4 &&
       reference.compare(reference.size() - 4, 4, ".cfg") == 0);
  if (!looks_like_path) {
    Result<datagen::ScenarioSpec> by_name = datagen::ScenarioByName(reference);
    if (by_name.ok()) return by_name;
    // Fall through: maybe it is a bare file name in the working directory.
    std::ifstream probe(reference);
    if (!probe) return by_name.status();
  }
  OASIS_ASSIGN_OR_RETURN(const experiments::ConfigMap config,
                         experiments::ConfigMap::ParseFile(reference));
  return datagen::ScenarioSpec::FromConfig(config);
}

int FailWith(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return kExitError;
}

TelemetrySession::TelemetrySession(const experiments::CommonFlags& flags)
    : flags_(flags), previous_enabled_(telemetry::Enabled()) {
  if (!flags_.telemetry_enabled) return;
  telemetry::SetEnabled(true);
  if (flags_.heartbeat_seconds > 0.0) {
    telemetry::HeartbeatOptions beat;
    beat.interval_seconds = flags_.heartbeat_seconds;
    heartbeat_.emplace(&telemetry::DefaultRegistry(), beat);
  }
}

TelemetrySession::~TelemetrySession() {
  heartbeat_.reset();
  // Restore, not force-off: an enclosing session (or a test that enabled
  // collection itself) keeps observing after this one ends.
  telemetry::SetEnabled(previous_enabled_);
}

Status TelemetrySession::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  heartbeat_.reset();
  if (!flags_.telemetry_enabled) return Status::OK();
  if (!flags_.metrics_out.empty()) {
    OASIS_RETURN_NOT_OK(telemetry::WriteTextFile(
        flags_.metrics_out,
        telemetry::MetricsJson(telemetry::DefaultRegistry())));
  }
  if (!flags_.trace_out.empty()) {
    OASIS_RETURN_NOT_OK(telemetry::WriteTextFile(
        flags_.trace_out,
        telemetry::TraceJson(telemetry::DefaultTraceCollector())));
  }
  return Status::OK();
}

int64_t TelemetrySession::ChargedLabelsNow() {
  const telemetry::Counter* labels =
      telemetry::DefaultRegistry().FindCounter("oasis_labelcache_misses_total");
  return labels != nullptr ? labels->value() : 0;
}

std::string FormatElapsed(double seconds, int64_t labels_delta) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "elapsed %.2fs", seconds);
  std::string line = buffer;
  if (labels_delta > 0 && seconds > 0.0) {
    std::snprintf(buffer, sizeof(buffer), " (%lld labels, %.0f labels/s)",
                  static_cast<long long>(labels_delta),
                  static_cast<double>(labels_delta) / seconds);
    line += buffer;
  }
  return line;
}

}  // namespace apps
}  // namespace oasis
