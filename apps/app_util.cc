#include "apps/app_util.h"

#include <cstdio>
#include <fstream>

#include "experiments/config.h"

namespace oasis {
namespace apps {

ParsedArgs ParseArgs(int argc, char** argv) {
  ParsedArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.flags[arg.substr(2)] = "";
      } else {
        args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Status CheckKnownFlags(const ParsedArgs& args,
                       const std::vector<std::string>& known) {
  for (const auto& [name, value] : args.flags) {
    bool found = false;
    for (const std::string& candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown option '--" + name + "'");
    }
  }
  return Status::OK();
}

Result<datagen::ScenarioSpec> ResolveScenario(const std::string& reference) {
  const bool looks_like_path =
      reference.find('/') != std::string::npos ||
      (reference.size() > 4 &&
       reference.compare(reference.size() - 4, 4, ".cfg") == 0);
  if (!looks_like_path) {
    Result<datagen::ScenarioSpec> by_name = datagen::ScenarioByName(reference);
    if (by_name.ok()) return by_name;
    // Fall through: maybe it is a bare file name in the working directory.
    std::ifstream probe(reference);
    if (!probe) return by_name.status();
  }
  OASIS_ASSIGN_OR_RETURN(const experiments::ConfigMap config,
                         experiments::ConfigMap::ParseFile(reference));
  return datagen::ScenarioSpec::FromConfig(config);
}

int FailWith(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return kExitError;
}

}  // namespace apps
}  // namespace oasis
