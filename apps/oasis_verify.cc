// oasis_verify — statistical validation of finished runs.
//
// Usage: oasis_verify <out-prefix>... [--tolerance=X] [--coverage-min=X]
//                     [--no-decay]
//
// For each prefix, reads <prefix>.summary.json (required) and
// <prefix>.curves.csv (optional — enables the error-decay check) and replays
// the statistical checks from the raw artifacts: aggregate consistency,
// estimate tolerance against the constructed truth, nominal CI coverage
// across repeats, banded error decay, and the degeneracy-flag expectation.
//
// Exit codes: 0 all runs verified, 1 operational error, 2 >= 1 check failed.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "apps/app_util.h"
#include "experiments/csv.h"
#include "experiments/summary.h"
#include "experiments/verify.h"

namespace oasis {
namespace apps {
namespace {

int Main(int argc, char** argv) {
  const Result<experiments::CommandLine> args_or =
      experiments::CommandLine::Parse(argc, argv);
  if (!args_or.ok()) return FailWith(args_or.status());
  const experiments::CommandLine& args = args_or.ValueOrDie();

  experiments::VerifyOptions options;
  if (args.HasFlag("tolerance")) {
    const Result<double> tolerance = args.FlagDoubleOr("tolerance", 0.0);
    if (!tolerance.ok()) return FailWith(tolerance.status());
    options.tolerance_override = tolerance.ValueOrDie();
  }
  if (args.HasFlag("coverage-min")) {
    const Result<double> coverage = args.FlagDoubleOr("coverage-min", 0.8);
    if (!coverage.ok()) return FailWith(coverage.status());
    options.coverage_min = coverage.ValueOrDie();
  }
  const bool check_decay = !args.HasFlag("no-decay");
  const Status flags_ok = args.CheckAllFlagsUsed();
  if (!flags_ok.ok()) return FailWith(flags_ok);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: oasis_verify <out-prefix>... [--tolerance=X] "
                 "[--coverage-min=X] [--no-decay]\n");
    return kExitError;
  }

  bool all_passed = true;
  for (const std::string& prefix : args.positional()) {
    Result<experiments::RunSummary> summary_or =
        experiments::ReadRunSummaryJson(prefix + ".summary.json");
    if (!summary_or.ok()) return FailWith(summary_or.status());

    // The curve is optional input; when present it must parse.
    std::vector<experiments::ErrorCurve> curves;
    const experiments::ErrorCurve* curve = nullptr;
    if (check_decay) {
      const std::string curves_path = prefix + ".curves.csv";
      if (std::ifstream(curves_path).good()) {
        Result<std::vector<experiments::ErrorCurve>> curves_or =
            experiments::ReadCurvesCsv(curves_path);
        if (!curves_or.ok()) return FailWith(curves_or.status());
        curves = std::move(curves_or).ValueOrDie();
        if (curves.size() != 1) {
          return FailWith(Status::InvalidArgument(
              "'" + curves_path + "' holds " + std::to_string(curves.size()) +
              " curves; expected exactly one run"));
        }
        curve = &curves[0];
      }
    }

    Result<experiments::VerifyReport> report_or =
        experiments::VerifyRun(summary_or.ValueOrDie(), curve, options);
    if (!report_or.ok()) return FailWith(report_or.status());
    const experiments::VerifyReport& report = report_or.ValueOrDie();
    std::printf("%s", report.Render().c_str());
    all_passed = all_passed && report.passed;
  }
  return all_passed ? kExitOk : kExitVerifyFailed;
}

}  // namespace
}  // namespace apps
}  // namespace oasis

int main(int argc, char** argv) { return oasis::apps::Main(argc, argv); }
