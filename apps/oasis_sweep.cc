// oasis_sweep — a scenarios x methods x budgets cross-product of scenario
// runs with one unified report.
//
// Usage: oasis_sweep <sweep-config> <out-dir>
//
// Config keys:
//   scenarios = stripe-f90, imbalance-1e3   # or "all" for the catalogue
//   methods = passive, is, oasis            # any of passive|stratified|is|oasis
//   budgets = 500, 2000
//   repeats / checkpoint_every / run_seed / threads / strata  # shared knobs
//   verify = true                           # verify each run inline
//
// Each cell writes <out-dir>/<scenario>__<method>__<budget>.{curves.csv,
// summary.json}; the aggregate table lands in <out-dir>/sweep_report.txt and
// on stdout, with a per-cell elapsed/labels-per-second line on stderr as the
// sweep progresses. With verify = true the process exits 2 when any cell
// fails its checks (the CI smoke job runs exactly that mode).
//
// Observability flags (docs/TELEMETRY.md): --metrics-out=<path>,
// --trace-out=<path>, --heartbeat=<seconds>, --no-telemetry.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app_util.h"
#include "datagen/scenario.h"
#include "experiments/config.h"
#include "experiments/csv.h"
#include "experiments/report.h"
#include "experiments/scenario_run.h"
#include "experiments/summary.h"
#include "experiments/verify.h"

namespace oasis {
namespace apps {
namespace {

struct SweepOutcome {
  bool any_verify_failed = false;
  std::string report_text;
};

Result<SweepOutcome> RunSweep(const std::string& config_path,
                              const std::string& out_dir,
                              const experiments::CommonFlags& flags) {
  OASIS_ASSIGN_OR_RETURN(const experiments::ConfigMap config,
                         experiments::ConfigMap::ParseFile(config_path));

  std::vector<std::string> scenario_names = config.GetStringList("scenarios");
  if (scenario_names.size() == 1 && scenario_names[0] == "all") {
    scenario_names.clear();
    for (const datagen::ScenarioSpec& spec : datagen::ScenarioCatalog()) {
      scenario_names.push_back(spec.name);
    }
  }
  if (scenario_names.empty()) {
    return Status::InvalidArgument("sweep config: 'scenarios' is required");
  }
  std::vector<std::string> methods = config.GetStringList("methods");
  if (methods.empty()) methods = {"oasis"};
  const std::vector<std::string> budget_strings = config.GetStringList("budgets");
  std::vector<int64_t> budgets;
  for (const std::string& budget : budget_strings) {
    budgets.push_back(std::strtoll(budget.c_str(), nullptr, 10));
    if (budgets.back() <= 0) {
      return Status::InvalidArgument("sweep config: bad budget '" + budget + "'");
    }
  }
  OASIS_ASSIGN_OR_RETURN(experiments::ScenarioRunOptions base_options,
                         experiments::ScenarioRunOptions::FromConfig(config));
  if (budgets.empty()) budgets = {base_options.budget};
  OASIS_ASSIGN_OR_RETURN(const bool verify, config.GetBoolOr("verify", false));
  OASIS_RETURN_NOT_OK(config.CheckAllKeysUsed());
  // CLI overrides beat the config file (shared --threads/--seed semantics).
  if (flags.threads.has_value()) {
    base_options.num_threads = static_cast<int>(*flags.threads);
  }
  if (flags.seed.has_value()) base_options.seed = *flags.seed;

  // The sweep owns the whole directory (unlike the single-run apps, whose
  // out-prefix may deliberately target an existing tree), so create it.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Status::Internal("cannot create out-dir '" + out_dir +
                            "': " + ec.message());
  }

  SweepOutcome outcome;
  experiments::TextTable table({"scenario", "method", "budget", "true F",
                                "mean F-hat", "|err|", "stddev", "defined",
                                "verify"});
  for (const std::string& scenario_name : scenario_names) {
    OASIS_ASSIGN_OR_RETURN(const datagen::ScenarioSpec spec,
                           datagen::ScenarioByName(scenario_name));
    OASIS_ASSIGN_OR_RETURN(const datagen::ScenarioPool pool,
                           datagen::GenerateScenario(spec));
    for (const std::string& method : methods) {
      for (const int64_t budget : budgets) {
        experiments::ScenarioRunOptions options = base_options;
        options.method = method;
        options.budget = budget;
        if (options.checkpoint_every > budget) options.checkpoint_every = budget;
        const auto cell_start = std::chrono::steady_clock::now();
        const int64_t labels_before = TelemetrySession::ChargedLabelsNow();
        OASIS_ASSIGN_OR_RETURN(const experiments::ScenarioRunResult result,
                               experiments::RunScenario(pool, options));
        const double cell_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          cell_start)
                .count();
        const std::string prefix = out_dir + "/" + scenario_name + "__" +
                                   method + "__" + std::to_string(budget);
        std::fprintf(stderr, "%s %s budget=%lld: %s\n", scenario_name.c_str(),
                     method.c_str(), static_cast<long long>(budget),
                     FormatElapsed(cell_seconds,
                                   TelemetrySession::ChargedLabelsNow() -
                                       labels_before)
                         .c_str());
        OASIS_RETURN_NOT_OK(experiments::WriteCurvesCsv(prefix + ".curves.csv",
                                                        {result.curve}));
        OASIS_RETURN_NOT_OK(experiments::WriteRunSummaryJson(
            prefix + ".summary.json", result.summary));

        std::string verdict = "-";
        if (verify) {
          OASIS_ASSIGN_OR_RETURN(
              const experiments::VerifyReport report,
              experiments::VerifyRun(result.summary, &result.curve,
                                     experiments::VerifyOptions()));
          verdict = report.passed ? "pass" : "FAIL";
          if (!report.passed) {
            outcome.any_verify_failed = true;
            outcome.report_text += report.Render();
          }
        }
        const experiments::RunSummary& s = result.summary;
        table.AddRow({scenario_name, s.method, std::to_string(budget),
                      experiments::FormatDouble(s.true_f),
                      experiments::FormatDouble(s.final_mean_estimate),
                      experiments::FormatDouble(s.final_mean_abs_error),
                      experiments::FormatDouble(s.final_stddev),
                      experiments::FormatDouble(s.final_frac_defined, 2),
                      verdict});
      }
    }
  }
  outcome.report_text = table.ToString() + outcome.report_text;

  const std::string report_path = out_dir + "/sweep_report.txt";
  std::ofstream out(report_path);
  out << outcome.report_text;
  if (!out) {
    return Status::Internal("cannot write '" + report_path + "'");
  }
  return outcome;
}

int Main(int argc, char** argv) {
  const Result<experiments::CommandLine> args_or =
      experiments::CommandLine::Parse(argc, argv);
  if (!args_or.ok()) return FailWith(args_or.status());
  const experiments::CommandLine& args = args_or.ValueOrDie();
  const Result<experiments::CommonFlags> flags_or =
      experiments::ParseCommonFlags(args);
  if (!flags_or.ok()) return FailWith(flags_or.status());
  const Status flags_ok = args.CheckAllFlagsUsed();
  if (!flags_ok.ok()) return FailWith(flags_ok);
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: oasis_sweep [--metrics-out=m.json] "
                 "[--trace-out=t.json] [--heartbeat=N] [--no-telemetry] "
                 "[--threads=N] [--seed=N] <sweep-config> <out-dir>\n");
    return kExitError;
  }
  TelemetrySession telemetry(flags_or.ValueOrDie());
  Result<SweepOutcome> outcome =
      RunSweep(args.positional()[0], args.positional()[1],
               flags_or.ValueOrDie());
  if (!outcome.ok()) return FailWith(outcome.status());
  std::printf("%s", outcome.ValueOrDie().report_text.c_str());
  const Status telemetry_status = telemetry.Finish();
  if (!telemetry_status.ok()) return FailWith(telemetry_status);
  return outcome.ValueOrDie().any_verify_failed ? kExitVerifyFailed : kExitOk;
}

}  // namespace
}  // namespace apps
}  // namespace oasis

int main(int argc, char** argv) { return oasis::apps::Main(argc, argv); }
