// Shared plumbing of the oasis_* command-line apps: minimal argument
// parsing, scenario-reference resolution (catalogue name vs spec file), and
// uniform Status-to-exit-code handling. Exit code contract across the suite:
//   0  success (for oasis_verify: every check passed)
//   1  operational error (bad usage, unreadable file, failed run)
//   2  verification failure (checks ran and at least one failed)
#ifndef OASIS_APPS_APP_UTIL_H_
#define OASIS_APPS_APP_UTIL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/scenario.h"
#include "telemetry/heartbeat.h"

namespace oasis {
namespace apps {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitVerifyFailed = 2;

// Parsed command line: positional operands plus --key=value / --flag options.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // --flag (no value) maps to "".

  bool HasFlag(const std::string& name) const {
    return flags.count(name) != 0;
  }
  std::string FlagOr(const std::string& name, const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

// Splits argv into positionals and --options. Unknown options are the
// caller's problem (each app validates against its own set).
ParsedArgs ParseArgs(int argc, char** argv);

// Fails when `args` carries an option outside `known` — the CLI-level twin
// of ConfigMap::CheckAllKeysUsed.
Status CheckKnownFlags(const ParsedArgs& args,
                       const std::vector<std::string>& known);

// Resolves a scenario reference: a catalogue name ("stripe-f90", ...) or a
// path to a serialised ScenarioSpec config file. Anything containing a '/'
// or ending in ".cfg" is treated as a path; otherwise the catalogue is
// consulted first and the filesystem second.
Result<datagen::ScenarioSpec> ResolveScenario(const std::string& reference);

// Prints "error: <status>" to stderr and returns kExitError — the uniform
// tail of every app's main() error path. Never ignores a Status.
int FailWith(const Status& status);

// Telemetry-related CLI flags shared by the run/sweep apps (see
// docs/TELEMETRY.md):
//   --metrics-out=<path>   write a metrics JSON snapshot on success
//   --trace-out=<path>     write a chrome://tracing JSON on success
//   --heartbeat=<seconds>  print a stderr progress line every N seconds
//   --no-telemetry         turn collection off entirely
struct TelemetryCli {
  bool enabled = true;          // false with --no-telemetry
  std::string metrics_out;      // empty = no snapshot file
  std::string trace_out;        // empty = no trace file
  double heartbeat_seconds = 0; // 0 = no heartbeat
};

// The flag names above, to splice into each app's CheckKnownFlags list.
std::vector<std::string> TelemetryFlagNames();

// Parses the telemetry flags out of `args` (validating --heartbeat).
Result<TelemetryCli> ParseTelemetryFlags(const ParsedArgs& args);

// Process-wide telemetry for the duration of one app run: construction
// turns collection on (unless disabled) and starts the heartbeat;
// Finish() writes the requested artifact files and stops collecting.
// Observe-only — results are identical with or without a session.
class TelemetrySession {
 public:
  explicit TelemetrySession(const TelemetryCli& cli);
  ~TelemetrySession();

  // Writes --metrics-out / --trace-out (when set) and stops the heartbeat.
  // Idempotent; the destructor stops collection without writing.
  Status Finish();

  // Charged oracle labels so far (`oasis_labelcache_misses_total`), or 0
  // when telemetry is off — the counter behind the labels/sec prints.
  static int64_t ChargedLabelsNow();

 private:
  TelemetryCli cli_;
  bool finished_ = false;
  std::optional<telemetry::Heartbeat> heartbeat_;
};

// "elapsed 1.23s" plus " (N labels, M labels/s)" when labels_delta > 0.
std::string FormatElapsed(double seconds, int64_t labels_delta);

}  // namespace apps
}  // namespace oasis

#endif  // OASIS_APPS_APP_UTIL_H_
