// Shared plumbing of the oasis_* command-line apps: scenario-reference
// resolution (catalogue name vs spec file), uniform Status-to-exit-code
// handling, and the per-run telemetry session. Argument parsing itself lives
// in experiments::CommandLine / experiments::ParseCommonFlags (one parser
// and one flag vocabulary across gen/run/sweep/verify/serve).
// Exit code contract across the suite:
//   0  success (for oasis_verify: every check passed)
//   1  operational error (bad usage, unreadable file, failed run)
//   2  verification failure (checks ran and at least one failed)
#ifndef OASIS_APPS_APP_UTIL_H_
#define OASIS_APPS_APP_UTIL_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "datagen/scenario.h"
#include "experiments/config.h"
#include "telemetry/heartbeat.h"

namespace oasis {
namespace apps {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitVerifyFailed = 2;

// Resolves a scenario reference: a catalogue name ("stripe-f90", ...) or a
// path to a serialised ScenarioSpec config file. Anything containing a '/'
// or ending in ".cfg" is treated as a path; otherwise the catalogue is
// consulted first and the filesystem second.
Result<datagen::ScenarioSpec> ResolveScenario(const std::string& reference);

// Prints "error: <status>" to stderr and returns kExitError — the uniform
// tail of every app's main() error path. Never ignores a Status.
int FailWith(const Status& status);

// Process-wide telemetry for the duration of one app run: construction
// turns collection on (unless --no-telemetry) and starts the heartbeat;
// Finish() writes the requested artifact files and stops the heartbeat.
// Observe-only — results are identical with or without a session.
//
// Scoped like ScopedEnable: the previous process-wide enabled state is
// captured at construction and restored by the destructor, so sessions
// compose — nesting one inside another (or inside a test that enabled
// telemetry itself) leaves the outer state exactly as found instead of
// force-disabling on the way out.
class TelemetrySession {
 public:
  explicit TelemetrySession(const experiments::CommonFlags& flags);
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  // Writes --metrics-out / --trace-out (when set) and stops the heartbeat.
  // Idempotent; the destructor restores the enabled state without writing.
  Status Finish();

  // Charged oracle labels so far (`oasis_labelcache_misses_total`), or 0
  // when telemetry is off — the counter behind the labels/sec prints.
  static int64_t ChargedLabelsNow();

 private:
  experiments::CommonFlags flags_;
  bool previous_enabled_ = false;
  bool finished_ = false;
  std::optional<telemetry::Heartbeat> heartbeat_;
};

// "elapsed 1.23s" plus " (N labels, M labels/s)" when labels_delta > 0.
std::string FormatElapsed(double seconds, int64_t labels_delta);

}  // namespace apps
}  // namespace oasis

#endif  // OASIS_APPS_APP_UTIL_H_
