#include "telemetry/trace.h"

namespace oasis {
namespace telemetry {

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {}

void TraceCollector::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

int64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

int64_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(events_.size());
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

double TraceCollector::NowMicros() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

int TraceCollector::CurrentThreadLane() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = thread_lanes_.find(self);
  if (it != thread_lanes_.end()) return it->second;
  const int lane = static_cast<int>(thread_lanes_.size()) + 1;
  thread_lanes_.emplace(self, lane);
  return lane;
}

TraceCollector& DefaultTraceCollector() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!Enabled()) return;
  active_ = true;
  start_us_ = DefaultTraceCollector().NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceCollector& collector = DefaultTraceCollector();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.ts_us = start_us_;
  event.dur_us = collector.NowMicros() - start_us_;
  event.tid = collector.CurrentThreadLane();
  collector.Append(std::move(event));
}

}  // namespace telemetry
}  // namespace oasis
