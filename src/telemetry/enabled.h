#ifndef OASIS_TELEMETRY_ENABLED_H_
#define OASIS_TELEMETRY_ENABLED_H_

#include <atomic>

namespace oasis {

/// \namespace oasis::telemetry
/// Observe-only runtime telemetry: a lock-free metrics registry (counters,
/// gauges, fixed-bucket histograms, labelled families), lightweight trace
/// spans feeding chrome://tracing JSON, and exporters (Prometheus text, JSON
/// snapshot, stderr heartbeat). Everything here is side-channel only — no
/// telemetry call may touch an RNG, a label, or any estimator state, so
/// results are bit-identical with telemetry on or off (see docs/TELEMETRY.md
/// for the determinism contract and the metric catalogue).
namespace telemetry {

namespace internal {
/// The process-wide runtime kill switch backing Enabled(). Off by default:
/// a build that never calls SetEnabled(true) pays one relaxed atomic load
/// per instrumentation site and nothing else.
extern std::atomic<bool> g_enabled;
/// The detail switch backing DetailEnabled() (per-step histograms and other
/// high-frequency observations that are too hot for the default level).
extern std::atomic<bool> g_detail_enabled;
}  // namespace internal

/// Whether telemetry collection is on. All instrumentation sites check this
/// before touching any metric; when false the site reduces to this one
/// relaxed load. Compile with OASIS_TELEMETRY=OFF (the OASIS_TELEMETRY_DISABLED
/// macro) to remove even that.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns telemetry collection on or off, process-wide. Safe to call from any
/// thread at any time; in-flight increments on the old setting are harmless
/// (telemetry is observe-only).
inline void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

/// Whether high-frequency detail observations (e.g. the per-step importance
/// weight histogram) are on. Only consulted when Enabled() is already true.
inline bool DetailEnabled() {
  return internal::g_detail_enabled.load(std::memory_order_relaxed);
}

/// Turns detail observations on or off (see DetailEnabled()).
inline void SetDetailEnabled(bool enabled) {
  internal::g_detail_enabled.store(enabled, std::memory_order_relaxed);
}

/// RAII toggle of the runtime kill switch: enables (or disables) telemetry
/// for the enclosing scope and restores the previous setting on exit. Used
/// by the runner's RunnerOptions::telemetry wiring, tests and benchmarks.
class ScopedEnable {
 public:
  /// Sets the global switch to `enabled`, remembering the previous value.
  explicit ScopedEnable(bool enabled) : previous_(Enabled()) {
    SetEnabled(enabled);
  }
  /// Restores the switch as it was at construction.
  ~ScopedEnable() { SetEnabled(previous_); }

  /// Non-copyable: the restore-on-destruction side effect must fire once.
  ScopedEnable(const ScopedEnable&) = delete;
  /// Non-assignable (see the copy constructor).
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace telemetry
}  // namespace oasis

#endif  // OASIS_TELEMETRY_ENABLED_H_
