#ifndef OASIS_TELEMETRY_EXPORT_H_
#define OASIS_TELEMETRY_EXPORT_H_

#include <span>
#include <string>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace oasis {
namespace telemetry {

/// Renders the registry in the Prometheus text exposition format: per
/// family one `# HELP` / `# TYPE` preamble, then one sample line per child
/// (histograms expand to cumulative `_bucket{le=...}` lines plus `_sum` and
/// `_count`). Families and children appear in registration order; floats
/// print as %.17g, so dyadic values render byte-stably across compilers
/// (the golden-schema lock relies on this).
std::string PrometheusText(const MetricRegistry& registry);

/// Renders the registry as a JSON snapshot:
/// `{"telemetry_schema_version": 1, "metrics": [...]}` with one object per
/// child carrying name/type/help/labels and the type's value fields
/// (histograms: non-cumulative `buckets`, `inf_count`, `sum`, `count`).
/// Same ordering and float-format guarantees as PrometheusText.
std::string MetricsJson(const MetricRegistry& registry);

/// Renders trace events as chrome://tracing / Perfetto JSON: an object with
/// a `traceEvents` array of complete ("ph":"X") events, one per span, with
/// microsecond `ts`/`dur`, `pid` 1 and the collector's thread lane as `tid`.
std::string TraceJson(std::span<const TraceEvent> events);

/// TraceJson over a collector's current snapshot.
std::string TraceJson(const TraceCollector& collector);

/// Writes `content` to `path` (overwriting), for the apps' --metrics-out /
/// --trace-out flags.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace telemetry
}  // namespace oasis

#endif  // OASIS_TELEMETRY_EXPORT_H_
