#include "telemetry/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace oasis {
namespace telemetry {

namespace {

/// %.17g — matches the repo's JSON/CSV writers: dyadic rationals print in
/// their exact shortest form on every compiler, which is what keeps the
/// golden-schema locks byte-stable.
void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

void AppendInt(std::string* out, int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  out->append(buffer);
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// metric names and help strings are plain ASCII by convention, but the
/// writer must never emit invalid JSON whatever it is fed.
void AppendJsonString(std::string* out, const std::string& text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Prometheus label block `{k1="v1",k2="v2"}` (empty string for no labels).
/// `extra_*` appends one more pair (the histogram `le` label).
void AppendPromLabels(std::string* out, const LabelSet& labels,
                      const char* extra_key = nullptr,
                      const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(key);
    out->append("=\"");
    out->append(value);
    out->append("\"");
  }
  if (extra_key != nullptr) {
    if (!first) out->push_back(',');
    out->append(extra_key);
    out->append("=\"");
    out->append(extra_value);
    out->append("\"");
  }
  out->push_back('}');
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string PrometheusText(const MetricRegistry& registry) {
  const std::vector<MetricSnapshot> metrics = registry.Snapshot();
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : metrics) {
    if (m.name != last_family) {
      last_family = m.name;
      out.append("# HELP ").append(m.name).append(" ").append(m.help);
      out.push_back('\n');
      out.append("# TYPE ").append(m.name).append(" ").append(
          TypeName(m.type));
      out.push_back('\n');
    }
    switch (m.type) {
      case MetricType::kCounter:
        out.append(m.name);
        AppendPromLabels(&out, m.labels);
        out.push_back(' ');
        AppendInt(&out, m.counter_value);
        out.push_back('\n');
        break;
      case MetricType::kGauge:
        out.append(m.name);
        AppendPromLabels(&out, m.labels);
        out.push_back(' ');
        AppendDouble(&out, m.gauge_value);
        out.push_back('\n');
        break;
      case MetricType::kHistogram: {
        int64_t cumulative = 0;
        for (size_t i = 0; i < m.bucket_bounds.size(); ++i) {
          cumulative += m.bucket_counts[i];
          std::string le;
          {
            char buffer[64];
            std::snprintf(buffer, sizeof(buffer), "%.17g", m.bucket_bounds[i]);
            le = buffer;
          }
          out.append(m.name).append("_bucket");
          AppendPromLabels(&out, m.labels, "le", le);
          out.push_back(' ');
          AppendInt(&out, cumulative);
          out.push_back('\n');
        }
        cumulative += m.overflow_count;
        out.append(m.name).append("_bucket");
        AppendPromLabels(&out, m.labels, "le", "+Inf");
        out.push_back(' ');
        AppendInt(&out, cumulative);
        out.push_back('\n');
        out.append(m.name).append("_sum");
        AppendPromLabels(&out, m.labels);
        out.push_back(' ');
        AppendDouble(&out, m.sum);
        out.push_back('\n');
        out.append(m.name).append("_count");
        AppendPromLabels(&out, m.labels);
        out.push_back(' ');
        AppendInt(&out, m.total_count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string MetricsJson(const MetricRegistry& registry) {
  const std::vector<MetricSnapshot> metrics = registry.Snapshot();
  std::string out;
  out.append("{\n  \"telemetry_schema_version\": 1,\n  \"metrics\": [");
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    {\"name\": ");
    AppendJsonString(&out, m.name);
    out.append(", \"type\": \"").append(TypeName(m.type)).append("\"");
    out.append(", \"help\": ");
    AppendJsonString(&out, m.help);
    out.append(", \"labels\": {");
    for (size_t i = 0; i < m.labels.size(); ++i) {
      if (i > 0) out.append(", ");
      AppendJsonString(&out, m.labels[i].first);
      out.append(": ");
      AppendJsonString(&out, m.labels[i].second);
    }
    out.append("}");
    switch (m.type) {
      case MetricType::kCounter:
        out.append(", \"value\": ");
        AppendInt(&out, m.counter_value);
        break;
      case MetricType::kGauge:
        out.append(", \"value\": ");
        AppendDouble(&out, m.gauge_value);
        break;
      case MetricType::kHistogram:
        out.append(", \"buckets\": [");
        for (size_t i = 0; i < m.bucket_bounds.size(); ++i) {
          if (i > 0) out.append(", ");
          out.append("{\"le\": ");
          AppendDouble(&out, m.bucket_bounds[i]);
          out.append(", \"count\": ");
          AppendInt(&out, m.bucket_counts[i]);
          out.append("}");
        }
        out.append("], \"inf_count\": ");
        AppendInt(&out, m.overflow_count);
        out.append(", \"sum\": ");
        AppendDouble(&out, m.sum);
        out.append(", \"count\": ");
        AppendInt(&out, m.total_count);
        break;
    }
    out.append("}");
  }
  out.append("\n  ]\n}\n");
  return out;
}

std::string TraceJson(std::span<const TraceEvent> events) {
  std::string out;
  out.append("{\"traceEvents\":[");
  bool first = true;
  for (const TraceEvent& event : events) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, event.name);
    out.append(",\"cat\":");
    AppendJsonString(&out, event.category);
    out.append(",\"ph\":\"X\",\"ts\":");
    AppendDouble(&out, event.ts_us);
    out.append(",\"dur\":");
    AppendDouble(&out, event.dur_us);
    out.append(",\"pid\":1,\"tid\":");
    AppendInt(&out, event.tid);
    out.append("}");
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

std::string TraceJson(const TraceCollector& collector) {
  const std::vector<TraceEvent> events = collector.Snapshot();
  return TraceJson(std::span<const TraceEvent>(events));
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    return Status::Internal("telemetry: cannot write '" + path + "'");
  }
  return Status::OK();
}

}  // namespace telemetry
}  // namespace oasis
