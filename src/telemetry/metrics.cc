#include "telemetry/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace oasis {
namespace telemetry {

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      bins_(new std::atomic<int64_t>[upper_bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < upper_bounds_.size(); ++i) {
    OASIS_CHECK(upper_bounds_[i] < upper_bounds_[i + 1]);
  }
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    bins_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  const size_t bin = static_cast<size_t>(
      std::upper_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  // upper_bound yields the first bound > value; Prometheus buckets are
  // le-inclusive, so step back when the value sits exactly on a bound.
  size_t index = bin;
  if (bin > 0 && upper_bounds_[bin - 1] == value) index = bin - 1;
  bins_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    bins_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

/// One (label set -> metric instance) entry of a family. Exactly one of the
/// three value members is live, per the family's type.
struct MetricRegistry::Child {
  LabelSet labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

/// All children sharing one metric name; fixes the name's type, help string
/// and (histograms) bucket bounds at first registration.
struct MetricRegistry::Family {
  std::string name;
  std::string help;
  MetricType type;
  std::vector<double> histogram_bounds;
  std::vector<std::unique_ptr<Child>> children;
};

MetricRegistry::MetricRegistry() = default;
MetricRegistry::~MetricRegistry() = default;

MetricRegistry::Family& MetricRegistry::FamilyFor(const std::string& name,
                                                  const std::string& help,
                                                  MetricType type) {
  for (const std::unique_ptr<Family>& family : families_) {
    if (family->name == name) {
      OASIS_CHECK(family->type == type);  // One name, one type — ever.
      return *family;
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->type = type;
  families_.push_back(std::move(family));
  return *families_.back();
}

MetricRegistry::Child* MetricRegistry::ChildWithLabels(const Family& family,
                                                       const LabelSet& labels) {
  for (const std::unique_ptr<Child>& child : family.children) {
    if (child->labels == labels) return child.get();
  }
  return nullptr;
}

Counter& MetricRegistry::AddCounter(const std::string& name,
                                    const std::string& help) {
  return AddCounter(name, help, LabelSet{});
}

Counter& MetricRegistry::AddCounter(const std::string& name,
                                    const std::string& help,
                                    const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, MetricType::kCounter);
  if (Child* existing = ChildWithLabels(family, labels)) {
    return *existing->counter;
  }
  auto child = std::make_unique<Child>();
  child->labels = labels;
  child->counter = std::make_unique<Counter>();
  family.children.push_back(std::move(child));
  return *family.children.back()->counter;
}

Gauge& MetricRegistry::AddGauge(const std::string& name,
                                const std::string& help) {
  return AddGauge(name, help, LabelSet{});
}

Gauge& MetricRegistry::AddGauge(const std::string& name,
                                const std::string& help,
                                const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, MetricType::kGauge);
  if (Child* existing = ChildWithLabels(family, labels)) {
    return *existing->gauge;
  }
  auto child = std::make_unique<Child>();
  child->labels = labels;
  child->gauge = std::make_unique<Gauge>();
  family.children.push_back(std::move(child));
  return *family.children.back()->gauge;
}

Histogram& MetricRegistry::AddHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<double> upper_bounds) {
  return AddHistogram(name, help, std::move(upper_bounds), LabelSet{});
}

Histogram& MetricRegistry::AddHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<double> upper_bounds,
                                        const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, MetricType::kHistogram);
  if (family.children.empty()) {
    family.histogram_bounds = upper_bounds;
  } else {
    // Every child of a histogram family shares one bucket layout.
    OASIS_CHECK(family.histogram_bounds == upper_bounds);
  }
  if (Child* existing = ChildWithLabels(family, labels)) {
    return *existing->histogram;
  }
  auto child = std::make_unique<Child>();
  child->labels = labels;
  child->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  family.children.push_back(std::move(child));
  return *family.children.back()->histogram;
}

const MetricRegistry::Child* MetricRegistry::FindChild(
    const std::string& name, MetricType type, const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Family>& family : families_) {
    if (family->name != name) continue;
    if (family->type != type) return nullptr;
    return ChildWithLabels(*family, labels);
  }
  return nullptr;
}

const Counter* MetricRegistry::FindCounter(const std::string& name,
                                           const LabelSet& labels) const {
  const Child* child = FindChild(name, MetricType::kCounter, labels);
  return child != nullptr ? child->counter.get() : nullptr;
}

const Gauge* MetricRegistry::FindGauge(const std::string& name,
                                       const LabelSet& labels) const {
  const Child* child = FindChild(name, MetricType::kGauge, labels);
  return child != nullptr ? child->gauge.get() : nullptr;
}

const Histogram* MetricRegistry::FindHistogram(const std::string& name,
                                               const LabelSet& labels) const {
  const Child* child = FindChild(name, MetricType::kHistogram, labels);
  return child != nullptr ? child->histogram.get() : nullptr;
}

int64_t MetricRegistry::CounterFamilyTotal(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Family>& family : families_) {
    if (family->name != name || family->type != MetricType::kCounter) continue;
    int64_t total = 0;
    for (const std::unique_ptr<Child>& child : family->children) {
      total += child->counter->value();
    }
    return total;
  }
  return 0;
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  for (const std::unique_ptr<Family>& family : families_) {
    for (const std::unique_ptr<Child>& child : family->children) {
      MetricSnapshot snap;
      snap.name = family->name;
      snap.help = family->help;
      snap.type = family->type;
      snap.labels = child->labels;
      switch (family->type) {
        case MetricType::kCounter:
          snap.counter_value = child->counter->value();
          break;
        case MetricType::kGauge:
          snap.gauge_value = child->gauge->value();
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *child->histogram;
          snap.bucket_bounds.resize(h.num_buckets());
          snap.bucket_counts.resize(h.num_buckets());
          for (size_t i = 0; i < h.num_buckets(); ++i) {
            snap.bucket_bounds[i] = h.upper_bound(i);
            snap.bucket_counts[i] = h.bucket_count(i);
          }
          snap.overflow_count = h.overflow_count();
          snap.total_count = h.count();
          snap.sum = h.sum();
          break;
        }
      }
      out.push_back(std::move(snap));
    }
  }
  return out;
}

void MetricRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Family>& family : families_) {
    for (const std::unique_ptr<Child>& child : family->children) {
      switch (family->type) {
        case MetricType::kCounter:
          child->counter->Reset();
          break;
        case MetricType::kGauge:
          child->gauge->Reset();
          break;
        case MetricType::kHistogram:
          child->histogram->Reset();
          break;
      }
    }
  }
}

MetricRegistry& DefaultRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace telemetry
}  // namespace oasis
