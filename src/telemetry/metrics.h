#ifndef OASIS_TELEMETRY_METRICS_H_
#define OASIS_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/enabled.h"

namespace oasis {
namespace telemetry {

/// Atomically adds `delta` into `target` (CAS loop; relaxed ordering —
/// telemetry values are statistical, not synchronising).
void AtomicAddDouble(std::atomic<double>& target, double delta);

/// Monotonically increasing integer metric (Prometheus counter semantics).
/// Increment/Add are single relaxed fetch_adds — the whole hot-path cost of
/// an instrumentation site. Thread-safe; stable address once registered.
class Counter {
 public:
  /// Adds 1.
  void Increment() { Add(1); }
  /// Adds `delta` (>= 0 by convention; not enforced on the hot path).
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Current value.
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Zeroes the counter (snapshot-delta consumers; tests).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time floating value (Prometheus gauge semantics): Set for
/// absolute readings (queue depth, live ESS), Add for +/- deltas (repeats in
/// flight). Thread-safe; last writer wins on Set.
class Gauge {
 public:
  /// Replaces the value.
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Adds `delta` (possibly negative).
  void Add(double delta) { AtomicAddDouble(value_, delta); }
  /// Current value.
  double value() const { return value_.load(std::memory_order_relaxed); }
  /// Zeroes the gauge.
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with atomic bins (Prometheus histogram semantics):
/// cumulative export as `_bucket{le=...}` counts plus `_sum` / `_count`.
/// Observe() is one binary search over the (immutable) upper bounds plus two
/// relaxed atomic adds. Bucket bounds are fixed at registration; the
/// overflow (+Inf) bin is implicit.
class Histogram {
 public:
  /// A histogram over `upper_bounds` (strictly increasing, finite; may be
  /// empty, leaving only the +Inf bin). Checked at registration.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Folds one observation into its bucket, the total count and the sum.
  void Observe(double value);

  /// Number of finite buckets (excluding the implicit +Inf bin).
  size_t num_buckets() const { return upper_bounds_.size(); }
  /// Upper bound of finite bucket `i`.
  double upper_bound(size_t i) const { return upper_bounds_[i]; }
  /// Non-cumulative count of finite bucket `i`.
  int64_t bucket_count(size_t i) const {
    return bins_[i].load(std::memory_order_relaxed);
  }
  /// Count of observations above the last finite bound (the +Inf bin).
  int64_t overflow_count() const {
    return bins_[upper_bounds_.size()].load(std::memory_order_relaxed);
  }
  /// Total observations.
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of all observed values.
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Zeroes every bin, the count and the sum (bounds are kept).
  void Reset();

 private:
  std::vector<double> upper_bounds_;
  /// upper_bounds_.size() + 1 bins; the last is the +Inf overflow bin.
  std::unique_ptr<std::atomic<int64_t>[]> bins_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One labelled child's key: `{key, value}` pairs in registration order
/// (empty for an unlabelled metric). Kept as written — exporters emit labels
/// in exactly this order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Kind discriminator of a registry entry.
enum class MetricType {
  kCounter,    ///< Counter.
  kGauge,      ///< Gauge.
  kHistogram,  ///< Histogram.
};

/// Point-in-time copy of one registry child, as consumed by the exporters
/// (src/telemetry/export.h) and the heartbeat.
struct MetricSnapshot {
  std::string name;       ///< Family name ("oasis_sampler_steps_total").
  std::string help;       ///< One-line meaning (the family's help string).
  MetricType type;        ///< Which of the value fields below is live.
  LabelSet labels;        ///< The child's labels (empty when unlabelled).
  int64_t counter_value = 0;  ///< kCounter value.
  double gauge_value = 0.0;   ///< kGauge value.
  /// kHistogram: finite bucket upper bounds...
  std::vector<double> bucket_bounds;
  /// ...their per-bucket (non-cumulative) counts, parallel to the bounds...
  std::vector<int64_t> bucket_counts;
  /// ...the +Inf overflow count...
  int64_t overflow_count = 0;
  /// ...the total observation count...
  int64_t total_count = 0;
  /// ...and the sum of all observed values.
  double sum = 0.0;
};

/// Registry of metric families. Registration (Add*) takes a mutex and is
/// idempotent on (name, labels) — instrumentation sites register through
/// function-local statics, so each site pays the lock once; the returned
/// references stay valid for the registry's lifetime and all value updates
/// are lock-free. Families group children sharing a name; a family's type,
/// help string and (for histograms) bucket bounds are fixed by its first
/// registration (re-registering with a conflicting type or bounds crashes —
/// programmer error).
class MetricRegistry {
 public:
  /// An empty registry.
  MetricRegistry();
  /// Destroys the registry and every metric it owns (out of line — Family is
  /// incomplete here). References returned by Add* die with it.
  ~MetricRegistry();
  /// Non-copyable: instrumentation sites hold references into the registry.
  MetricRegistry(const MetricRegistry&) = delete;
  /// Non-assignable (see the copy constructor).
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registers (or finds) the unlabelled counter `name`.
  Counter& AddCounter(const std::string& name, const std::string& help);
  /// Registers (or finds) the `labels` child of counter family `name`.
  Counter& AddCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels);
  /// Registers (or finds) the unlabelled gauge `name`.
  Gauge& AddGauge(const std::string& name, const std::string& help);
  /// Registers (or finds) the `labels` child of gauge family `name`.
  Gauge& AddGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels);
  /// Registers (or finds) the unlabelled histogram `name` over
  /// `upper_bounds` (see Histogram).
  Histogram& AddHistogram(const std::string& name, const std::string& help,
                          std::vector<double> upper_bounds);
  /// Registers (or finds) the `labels` child of histogram family `name`.
  Histogram& AddHistogram(const std::string& name, const std::string& help,
                          std::vector<double> upper_bounds,
                          const LabelSet& labels);

  /// The registered counter child, or nullptr when `name`/`labels` is absent
  /// or not a counter. Never registers.
  const Counter* FindCounter(const std::string& name,
                             const LabelSet& labels = {}) const;
  /// The registered gauge child, or nullptr (see FindCounter).
  const Gauge* FindGauge(const std::string& name,
                         const LabelSet& labels = {}) const;
  /// The registered histogram child, or nullptr (see FindCounter).
  const Histogram* FindHistogram(const std::string& name,
                                 const LabelSet& labels = {}) const;

  /// Sum of counter family `name` across all its children (0 when absent) —
  /// the heartbeat's view of labelled counters.
  int64_t CounterFamilyTotal(const std::string& name) const;

  /// Copies every child's current value, family by family in registration
  /// order (children in their own registration order within each family).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every registered value (registration is kept). For tests and
  /// delta-based consumers; concurrent updaters may interleave.
  void ResetValues();

 private:
  struct Child;
  struct Family;

  Family& FamilyFor(const std::string& name, const std::string& help,
                    MetricType type);
  static Child* ChildWithLabels(const Family& family, const LabelSet& labels);
  const Child* FindChild(const std::string& name, MetricType type,
                         const LabelSet& labels) const;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;
};

/// The process-wide registry every instrumentation site registers into.
/// Exporters, the heartbeat and the apps snapshot from here.
MetricRegistry& DefaultRegistry();

}  // namespace telemetry
}  // namespace oasis

#endif  // OASIS_TELEMETRY_METRICS_H_
