#include "telemetry/heartbeat.h"

#include <chrono>
#include <cinttypes>

#include "common/logging.h"

namespace oasis {
namespace telemetry {

namespace {

/// The unlabelled counter's value, or 0 when unregistered.
int64_t CounterOr0(const MetricRegistry& registry, const char* name) {
  const Counter* counter = registry.FindCounter(name);
  return counter != nullptr ? counter->value() : 0;
}

}  // namespace

std::string FormatHeartbeatLine(const MetricRegistry& registry,
                                double uptime_seconds, int64_t steps_delta,
                                int64_t labels_delta,
                                double interval_seconds) {
  const int64_t steps = CounterOr0(registry, "oasis_sampler_steps_total");
  const int64_t labels = CounterOr0(registry, "oasis_labelcache_misses_total");
  const int64_t repeats =
      CounterOr0(registry, "oasis_runner_repeats_completed_total");
  const int64_t round_trips =
      CounterOr0(registry, "oasis_oracle_round_trips_total");
  const Gauge* ess = registry.FindGauge("oasis_runner_live_ess");
  const Gauge* in_flight = registry.FindGauge("oasis_runner_repeats_in_flight");

  char buffer[256];
  std::string line;
  std::snprintf(buffer, sizeof(buffer),
                "[telemetry] t=%.1fs steps=%" PRId64 " labels=%" PRId64,
                uptime_seconds, steps, labels);
  line = buffer;
  if (interval_seconds > 0.0) {
    std::snprintf(buffer, sizeof(buffer), " (%.0f steps/s, %.0f labels/s)",
                  static_cast<double>(steps_delta) / interval_seconds,
                  static_cast<double>(labels_delta) / interval_seconds);
    line += buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                " repeats=%" PRId64 " in_flight=%.0f rt=%" PRId64 " ess=%.1f",
                repeats, in_flight != nullptr ? in_flight->value() : 0.0,
                round_trips, ess != nullptr ? ess->value() : 0.0);
  line += buffer;
  return line;
}

Heartbeat::Heartbeat(const MetricRegistry* registry,
                     const HeartbeatOptions& options)
    : registry_(registry), options_(options) {
  OASIS_CHECK(registry != nullptr);
  OASIS_CHECK(options.interval_seconds > 0.0);
  thread_ = std::thread(&Heartbeat::Loop, this);
}

Heartbeat::~Heartbeat() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Heartbeat::Loop() {
  std::FILE* stream = options_.stream != nullptr ? options_.stream : stderr;
  const auto start = std::chrono::steady_clock::now();
  const auto interval = std::chrono::duration<double>(options_.interval_seconds);
  int64_t last_steps = CounterOr0(*registry_, "oasis_sampler_steps_total");
  int64_t last_labels =
      CounterOr0(*registry_, "oasis_labelcache_misses_total");
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, interval, [&] { return stop_; })) return;
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const int64_t steps = CounterOr0(*registry_, "oasis_sampler_steps_total");
    const int64_t labels =
        CounterOr0(*registry_, "oasis_labelcache_misses_total");
    const std::string line =
        FormatHeartbeatLine(*registry_, uptime, steps - last_steps,
                            labels - last_labels, options_.interval_seconds);
    last_steps = steps;
    last_labels = labels;
    std::fprintf(stream, "%s\n", line.c_str());
    std::fflush(stream);
  }
}

}  // namespace telemetry
}  // namespace oasis
