#ifndef OASIS_TELEMETRY_HEARTBEAT_H_
#define OASIS_TELEMETRY_HEARTBEAT_H_

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "telemetry/metrics.h"

namespace oasis {
namespace telemetry {

/// Tunables of a Heartbeat.
struct HeartbeatOptions {
  /// Wall-clock seconds between lines (> 0).
  double interval_seconds = 10.0;
  /// Destination stream; nullptr = stderr.
  std::FILE* stream = nullptr;
};

/// One heartbeat line: uptime plus the current values of the well-known
/// progress metrics (sampler steps, charged labels, completed repeats, live
/// ESS, oracle round trips — whichever are registered; see docs/TELEMETRY.md
/// for the exact format). `steps_delta`/`labels_delta` are the since-last-
/// beat differences behind the per-second rates; pass 0 on the first beat.
std::string FormatHeartbeatLine(const MetricRegistry& registry,
                                double uptime_seconds, int64_t steps_delta,
                                int64_t labels_delta,
                                double interval_seconds);

/// Background thread printing one progress line per interval to stderr (or
/// the configured stream) while alive — the operator-facing live channel of
/// the metric registry. Construction starts the thread, destruction joins
/// it; purely an observer, so it can wrap any run without affecting results.
class Heartbeat {
 public:
  /// Starts beating against `registry` (must outlive this object).
  Heartbeat(const MetricRegistry* registry, const HeartbeatOptions& options);
  /// Stops and joins the beat thread (no final line is forced).
  ~Heartbeat();

  /// Non-copyable: owns the reporter thread.
  Heartbeat(const Heartbeat&) = delete;
  /// Non-assignable (see the copy constructor).
  Heartbeat& operator=(const Heartbeat&) = delete;

 private:
  void Loop();

  const MetricRegistry* registry_;
  HeartbeatOptions options_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace telemetry
}  // namespace oasis

#endif  // OASIS_TELEMETRY_HEARTBEAT_H_
