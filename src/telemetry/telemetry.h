// Umbrella header of src/telemetry: the metrics registry, trace spans, the
// runtime/compile-time kill switches and the instrumentation macros. This is
// the one header instrumented code includes (see docs/TELEMETRY.md).
//
// Instrumentation idiom — a site registers its metric once through a
// function-local static and gates every touch behind the kill switch:
//
//   if (OASIS_TELEMETRY_ON) {
//     static telemetry::Counter& steps = telemetry::DefaultRegistry().AddCounter(
//         "oasis_sampler_steps_total", "Sampler steps taken.");
//     steps.Increment();
//   }
//
// With telemetry off (the default) the site costs one relaxed atomic load.
// Configuring with -DOASIS_TELEMETRY=OFF defines OASIS_TELEMETRY_DISABLED,
// making OASIS_TELEMETRY_ON a compile-time `false` — the whole block is dead
// code and the fused step path is bit-for-bit the uninstrumented one.
#ifndef OASIS_TELEMETRY_TELEMETRY_H_
#define OASIS_TELEMETRY_TELEMETRY_H_

#include "telemetry/enabled.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

#if defined(OASIS_TELEMETRY_DISABLED)

/// Compile-time-off build: instrumentation blocks are dead code.
#define OASIS_TELEMETRY_ON false
/// Compile-time-off build: detail observations are dead code.
#define OASIS_TELEMETRY_DETAIL_ON false
/// Compile-time-off build: spans expand to nothing.
#define TELEMETRY_SPAN(name, category) \
  do {                                 \
  } while (false)

#else  // !defined(OASIS_TELEMETRY_DISABLED)

/// Whether telemetry is collecting right now (runtime kill switch).
#define OASIS_TELEMETRY_ON (::oasis::telemetry::Enabled())
/// Whether high-frequency detail observations are on (implies the above at
/// every call site: sites check OASIS_TELEMETRY_ON first).
#define OASIS_TELEMETRY_DETAIL_ON (::oasis::telemetry::DetailEnabled())

#define OASIS_TELEMETRY_CONCAT_INNER(a, b) a##b
#define OASIS_TELEMETRY_CONCAT(a, b) OASIS_TELEMETRY_CONCAT_INNER(a, b)
/// Scoped trace span: times the enclosing scope and appends one
/// chrome://tracing event to the default collector when telemetry is on.
/// `name` and `category` must be string literals.
#define TELEMETRY_SPAN(name, category)                   \
  ::oasis::telemetry::ScopedSpan OASIS_TELEMETRY_CONCAT( \
      oasis_telemetry_span_, __LINE__)(name, category)

#endif  // defined(OASIS_TELEMETRY_DISABLED)

#endif  // OASIS_TELEMETRY_TELEMETRY_H_
