#ifndef OASIS_TELEMETRY_TRACE_H_
#define OASIS_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/enabled.h"

namespace oasis {
namespace telemetry {

/// One completed span, matching a chrome://tracing complete ("ph":"X")
/// event: a named, categorised interval on one thread's timeline.
struct TraceEvent {
  std::string name;      ///< Span name ("repeat", "label_batch", ...).
  std::string category;  ///< Layer ("runner", "oracle", "sampler").
  double ts_us = 0.0;    ///< Start, microseconds since the collector's epoch.
  double dur_us = 0.0;   ///< Duration, microseconds.
  int tid = 0;           ///< Collector-assigned thread lane (stable per thread).
};

/// Bounded, mutex-guarded buffer of completed spans. Spans are coarse
/// (per repeat, per oracle batch, per step batch — never per step), so one
/// lock per completed span is cheap relative to the work it brackets; the
/// capacity bound keeps a long run's memory flat, counting what it drops.
/// The epoch is the collector's construction time (steady clock).
class TraceCollector {
 public:
  /// A collector holding at most `capacity` events.
  explicit TraceCollector(size_t capacity = kDefaultCapacity);

  /// Appends one completed event; beyond capacity the event is dropped and
  /// counted instead. Also the deterministic-construction entry point for
  /// exporter tests, which append hand-built events.
  void Append(TraceEvent event);

  /// Copies the buffered events in append order.
  std::vector<TraceEvent> Snapshot() const;

  /// Events dropped at the capacity bound so far.
  int64_t dropped() const;

  /// Buffered event count.
  int64_t size() const;

  /// Discards every buffered event and the drop count (capacity and epoch
  /// are kept).
  void Clear();

  /// Microseconds since the collector's epoch (steady clock).
  double NowMicros() const;

  /// Small dense id for the calling thread (assigned on first use, stable
  /// afterwards) — the "tid" lane of this collector's events.
  int CurrentThreadLane();

  /// Default event capacity (per collector).
  static constexpr size_t kDefaultCapacity = 1 << 18;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  int64_t dropped_ = 0;
  std::map<std::thread::id, int> thread_lanes_;
};

/// The process-wide collector the TELEMETRY_SPAN macro appends into and the
/// apps export from.
TraceCollector& DefaultTraceCollector();

/// RAII span: starts timing at construction, appends one TraceEvent to
/// DefaultTraceCollector() at destruction. A span constructed while
/// telemetry is disabled is inert (one relaxed load); `name` and `category`
/// must be string literals (stored unowned until the event is built).
class ScopedSpan {
 public:
  /// Opens the span (no-op when telemetry is off).
  ScopedSpan(const char* name, const char* category);
  /// Closes the span and records it (no-op when inert).
  ~ScopedSpan();

  /// Non-copyable: the span closes exactly once.
  ScopedSpan(const ScopedSpan&) = delete;
  /// Non-assignable (see the copy constructor).
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace telemetry
}  // namespace oasis

#endif  // OASIS_TELEMETRY_TRACE_H_
