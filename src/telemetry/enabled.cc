#include "telemetry/enabled.h"

namespace oasis {
namespace telemetry {
namespace internal {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_detail_enabled{false};

}  // namespace internal
}  // namespace telemetry
}  // namespace oasis
