#include "datagen/scenario.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "eval/measures.h"
#include "oracle/ground_truth_oracle.h"
#include "oracle/noisy_oracle.h"

namespace oasis {
namespace datagen {

namespace {

// Category layout order within the generated pool. Blocks are contiguous
// (strata are score-driven, so item order carries no information).
enum Category { kTn = 0, kFn = 1, kFp = 2, kTp = 3 };

std::string FormatDoubleKey(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

int64_t RoundCount(double value) {
  return static_cast<int64_t>(std::llround(value));
}

/// Exact confusion counts for a spec: the single source of truth every
/// family's generator and the closed-form F computation share.
Result<ConfusionCounts> DeriveCounts(const ScenarioSpec& spec) {
  ConfusionCounts counts;
  const int64_t n = spec.pool_size;
  switch (spec.family) {
    case ScenarioFamily::kExactCount:
      counts.true_positives = spec.true_positives;
      counts.false_positives = spec.false_positives;
      counts.false_negatives = spec.false_negatives;
      break;
    case ScenarioFamily::kAllMatch: {
      counts.true_positives =
          RoundCount(spec.classifier_recall * static_cast<double>(n));
      counts.false_negatives = n - counts.true_positives;
      counts.false_positives = 0;
      break;
    }
    case ScenarioFamily::kNoMatch: {
      // No matches exist; the classifier still fires at its intended base
      // rate, so every predicted positive is false and F = 0 exactly.
      counts.true_positives = 0;
      counts.false_negatives = 0;
      counts.false_positives =
          RoundCount(spec.match_rate * static_cast<double>(n));
      break;
    }
    default: {
      const int64_t matches =
          RoundCount(spec.match_rate * static_cast<double>(n));
      counts.true_positives =
          RoundCount(spec.classifier_recall * static_cast<double>(matches));
      counts.false_negatives = matches - counts.true_positives;
      const double p = spec.classifier_precision;
      counts.false_positives =
          p > 0.0 ? RoundCount(static_cast<double>(counts.true_positives) *
                               (1.0 - p) / p)
                  : 0;
      break;
    }
  }
  const int64_t assigned = counts.true_positives + counts.false_positives +
                           counts.false_negatives;
  if (counts.true_positives < 0 || counts.false_positives < 0 ||
      counts.false_negatives < 0 || assigned > n) {
    return Status::InvalidArgument(
        "ScenarioSpec '" + spec.name +
        "': derived confusion counts do not fit the pool (tp=" +
        std::to_string(counts.true_positives) +
        " fp=" + std::to_string(counts.false_positives) +
        " fn=" + std::to_string(counts.false_negatives) +
        " pool_size=" + std::to_string(n) + ")");
  }
  counts.true_negatives = n - assigned;
  return counts;
}

/// The estimator's asymptotic target given exact counts: plain F_alpha for
/// clean oracles; for flip-noise oracles the expected label mass replaces
/// the truth mass (docs/SCENARIOS.md derives the closed form).
Result<double> DeriveTrueF(const ScenarioSpec& spec,
                           const ConfusionCounts& counts) {
  const double alpha = spec.alpha;
  const double tp = static_cast<double>(counts.true_positives);
  const double fp = static_cast<double>(counts.false_positives);
  const double fn = static_cast<double>(counts.false_negatives);
  const double tn = static_cast<double>(counts.true_negatives);
  const double rho = spec.flip_rate;
  // Expected "label = 1" mass among predicted positives and pool-wide; for
  // rho = 0 these reduce to TP and TP + FN.
  const double tp_eff = (1.0 - rho) * tp + rho * fp;
  const double pos_eff = (1.0 - rho) * (tp + fn) + rho * (fp + tn);
  const double denom = alpha * (tp + fp) + (1.0 - alpha) * pos_eff;
  if (denom <= 0.0) {
    return Status::InvalidArgument(
        "ScenarioSpec '" + spec.name +
        "': F is undefined (no predicted and no true positives)");
  }
  return tp_eff / denom;
}

double BandUniform(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.NextDouble();
}

double BandSkewed(Rng& rng, double lo, double hi, double exponent) {
  return lo + (hi - lo) * std::pow(rng.NextDouble(), exponent);
}

/// Deterministic largest-block-first split of `total` items over clusters
/// with geometrically decaying sizes (1/2, 1/4, ...): the heterogeneous
/// stratum-size profile of the kClustered family.
std::vector<int64_t> GeometricClusterSizes(int64_t total, int64_t clusters) {
  std::vector<int64_t> sizes(static_cast<size_t>(clusters), 0);
  int64_t remaining = total;
  for (int64_t c = 0; c < clusters && remaining > 0; ++c) {
    const int64_t take = (c + 1 == clusters)
                             ? remaining
                             : std::max<int64_t>(1, remaining - remaining / 2);
    sizes[static_cast<size_t>(c)] = take;
    remaining -= take;
  }
  return sizes;
}

}  // namespace

std::string ScenarioFamilyName(ScenarioFamily family) {
  switch (family) {
    case ScenarioFamily::kExactCount:
      return "exact-count";
    case ScenarioFamily::kImbalance:
      return "imbalance";
    case ScenarioFamily::kStratumSkew:
      return "stratum-skew";
    case ScenarioFamily::kClustered:
      return "clustered";
    case ScenarioFamily::kSingleStratum:
      return "single-stratum";
    case ScenarioFamily::kAllMatch:
      return "all-match";
    case ScenarioFamily::kNoMatch:
      return "no-match";
    case ScenarioFamily::kScoreInversion:
      return "score-inversion";
    case ScenarioFamily::kNoisyOracle:
      return "noisy-oracle";
  }
  return "?";
}

Result<ScenarioFamily> ScenarioFamilyFromName(const std::string& name) {
  for (ScenarioFamily family :
       {ScenarioFamily::kExactCount, ScenarioFamily::kImbalance,
        ScenarioFamily::kStratumSkew, ScenarioFamily::kClustered,
        ScenarioFamily::kSingleStratum, ScenarioFamily::kAllMatch,
        ScenarioFamily::kNoMatch, ScenarioFamily::kScoreInversion,
        ScenarioFamily::kNoisyOracle}) {
    if (ScenarioFamilyName(family) == name) return family;
  }
  return Status::InvalidArgument("unknown scenario family '" + name + "'");
}

Status ScenarioSpec::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("ScenarioSpec: name must not be empty");
  }
  if (pool_size <= 0) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': pool_size must be positive");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': alpha must lie in [0, 1]");
  }
  if (match_rate < 0.0 || match_rate > 1.0) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': match_rate must lie in [0, 1]");
  }
  if (classifier_recall < 0.0 || classifier_recall > 1.0) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': classifier_recall must lie in [0, 1]");
  }
  if (classifier_precision < 0.0 || classifier_precision > 1.0) {
    return Status::InvalidArgument(
        "ScenarioSpec '" + name + "': classifier_precision must lie in [0, 1]");
  }
  if (skew_exponent <= 0.0) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': skew_exponent must be positive");
  }
  if (clusters_per_band <= 0) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': clusters_per_band must be positive");
  }
  if (flip_rate < 0.0 || flip_rate >= 0.5) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': flip_rate must lie in [0, 0.5)");
  }
  if (flip_rate > 0.0 && family != ScenarioFamily::kNoisyOracle) {
    return Status::InvalidArgument(
        "ScenarioSpec '" + name +
        "': flip_rate > 0 requires the noisy-oracle family");
  }
  if (verify_tolerance <= 0.0 || verify_tolerance > 1.0) {
    return Status::InvalidArgument("ScenarioSpec '" + name +
                                   "': verify_tolerance must lie in (0, 1]");
  }
  // Counts must fit and leave F defined; DeriveCounts/DeriveTrueF carry the
  // detailed messages.
  OASIS_ASSIGN_OR_RETURN(const ConfusionCounts counts, DeriveCounts(*this));
  OASIS_RETURN_NOT_OK(DeriveTrueF(*this, counts).status());
  return Status::OK();
}

std::string ScenarioSpec::ToConfigString() const {
  std::ostringstream out;
  out << "name = " << name << '\n';
  out << "family = " << ScenarioFamilyName(family) << '\n';
  out << "pool_size = " << pool_size << '\n';
  out << "seed = " << seed << '\n';
  out << "alpha = " << FormatDoubleKey(alpha) << '\n';
  out << "true_positives = " << true_positives << '\n';
  out << "false_positives = " << false_positives << '\n';
  out << "false_negatives = " << false_negatives << '\n';
  out << "match_rate = " << FormatDoubleKey(match_rate) << '\n';
  out << "classifier_recall = " << FormatDoubleKey(classifier_recall) << '\n';
  out << "classifier_precision = " << FormatDoubleKey(classifier_precision)
      << '\n';
  out << "skew_exponent = " << FormatDoubleKey(skew_exponent) << '\n';
  out << "clusters_per_band = " << clusters_per_band << '\n';
  out << "flip_rate = " << FormatDoubleKey(flip_rate) << '\n';
  out << "expect_sis_degeneracy = " << (expect_sis_degeneracy ? "true" : "false")
      << '\n';
  out << "verify_tolerance = " << FormatDoubleKey(verify_tolerance) << '\n';
  return out.str();
}

Result<ScenarioSpec> ScenarioSpec::FromConfig(
    const experiments::ConfigMap& config) {
  ScenarioSpec spec;
  OASIS_ASSIGN_OR_RETURN(spec.name, config.GetString("name"));
  OASIS_ASSIGN_OR_RETURN(const std::string family_name,
                         config.GetString("family"));
  OASIS_ASSIGN_OR_RETURN(spec.family, ScenarioFamilyFromName(family_name));
  OASIS_ASSIGN_OR_RETURN(spec.pool_size,
                         config.GetInt64Or("pool_size", spec.pool_size));
  OASIS_ASSIGN_OR_RETURN(const int64_t seed,
                         config.GetInt64Or("seed",
                                           static_cast<int64_t>(spec.seed)));
  spec.seed = static_cast<uint64_t>(seed);
  OASIS_ASSIGN_OR_RETURN(spec.alpha, config.GetDoubleOr("alpha", spec.alpha));
  OASIS_ASSIGN_OR_RETURN(
      spec.true_positives,
      config.GetInt64Or("true_positives", spec.true_positives));
  OASIS_ASSIGN_OR_RETURN(
      spec.false_positives,
      config.GetInt64Or("false_positives", spec.false_positives));
  OASIS_ASSIGN_OR_RETURN(
      spec.false_negatives,
      config.GetInt64Or("false_negatives", spec.false_negatives));
  OASIS_ASSIGN_OR_RETURN(spec.match_rate,
                         config.GetDoubleOr("match_rate", spec.match_rate));
  OASIS_ASSIGN_OR_RETURN(
      spec.classifier_recall,
      config.GetDoubleOr("classifier_recall", spec.classifier_recall));
  OASIS_ASSIGN_OR_RETURN(
      spec.classifier_precision,
      config.GetDoubleOr("classifier_precision", spec.classifier_precision));
  OASIS_ASSIGN_OR_RETURN(
      spec.skew_exponent,
      config.GetDoubleOr("skew_exponent", spec.skew_exponent));
  OASIS_ASSIGN_OR_RETURN(
      spec.clusters_per_band,
      config.GetInt64Or("clusters_per_band", spec.clusters_per_band));
  OASIS_ASSIGN_OR_RETURN(spec.flip_rate,
                         config.GetDoubleOr("flip_rate", spec.flip_rate));
  OASIS_ASSIGN_OR_RETURN(
      spec.expect_sis_degeneracy,
      config.GetBoolOr("expect_sis_degeneracy",
                       spec.family == ScenarioFamily::kScoreInversion));
  OASIS_ASSIGN_OR_RETURN(
      spec.verify_tolerance,
      config.GetDoubleOr("verify_tolerance", spec.verify_tolerance));
  OASIS_RETURN_NOT_OK(config.CheckAllKeysUsed());
  OASIS_RETURN_NOT_OK(spec.Validate());
  return spec;
}

Result<ScenarioPool> GenerateScenario(const ScenarioSpec& spec) {
  OASIS_RETURN_NOT_OK(spec.Validate());
  ScenarioPool pool;
  pool.spec = spec;
  OASIS_ASSIGN_OR_RETURN(pool.counts, DeriveCounts(spec));
  OASIS_ASSIGN_OR_RETURN(pool.true_f, DeriveTrueF(spec, pool.counts));
  pool.clean_measures = ComputeMeasures(pool.counts, spec.alpha);

  const int64_t n = spec.pool_size;
  pool.truth.reserve(static_cast<size_t>(n));
  pool.scored.scores.reserve(static_cast<size_t>(n));
  pool.scored.predictions.reserve(static_cast<size_t>(n));
  pool.scored.scores_are_probabilities = false;
  pool.scored.threshold = 0.0;

  // Category blocks in fixed TN, FN, FP, TP order; the per-family score
  // draw below is the only thing that varies.
  const int64_t block_sizes[4] = {
      pool.counts.true_negatives, pool.counts.false_negatives,
      pool.counts.false_positives, pool.counts.true_positives};
  // Default truth-correlated band per category: predicted negatives below
  // the threshold, positives above, and the true class higher within each
  // side.
  const double band_lo[4] = {-2.0, -1.0, 0.0, 1.0};
  const double band_hi[4] = {-1.0, 0.0, 1.0, 2.0};

  Rng rng(spec.seed);
  for (int category = 0; category < 4; ++category) {
    const bool truth_bit = category == kFn || category == kTp;
    const bool prediction_bit = category == kFp || category == kTp;
    const int64_t block = block_sizes[category];
    const double lo = band_lo[category];
    const double hi = band_hi[category];

    // kClustered: precompute the geometric cluster layout of this band.
    std::vector<int64_t> cluster_sizes;
    if (spec.family == ScenarioFamily::kClustered && block > 0) {
      cluster_sizes = GeometricClusterSizes(block, spec.clusters_per_band);
    }
    int64_t cluster_index = 0;
    int64_t cluster_emitted = 0;

    for (int64_t i = 0; i < block; ++i) {
      double score = 0.0;
      switch (spec.family) {
        case ScenarioFamily::kSingleStratum:
          // Identical scores: any score-driven stratifier sees one stratum.
          score = 0.0;
          break;
        case ScenarioFamily::kStratumSkew:
          // Mass piles up at each band's low edge; with the negatives
          // dominating the pool this yields one giant low stratum and a
          // heavy-tailed cascade of tiny ones.
          score = BandSkewed(rng, lo, hi, spec.skew_exponent);
          break;
        case ScenarioFamily::kClustered: {
          while (cluster_emitted >=
                 cluster_sizes[static_cast<size_t>(cluster_index)]) {
            ++cluster_index;
            cluster_emitted = 0;
          }
          // Narrow well-separated clusters of geometrically decaying size.
          const double center =
              lo + (hi - lo) * (static_cast<double>(cluster_index) + 0.5) /
                       static_cast<double>(spec.clusters_per_band);
          score = center + 0.02 * (hi - lo) * (rng.NextDouble() - 0.5);
          ++cluster_emitted;
          break;
        }
        case ScenarioFamily::kScoreInversion: {
          // Scores lie about the truth. Predicted positives: false ones
          // score highest. Predicted negatives: the true matches (FN) and
          // 90% of the true negatives sink to the score floor, where a
          // score-driven static instrumental distribution places a vanishing
          // share of its mass — the SIS weight-collapse construction.
          switch (category) {
            case kTp:
              score = BandUniform(rng, 0.0, 1.0);
              break;
            case kFp:
              score = BandUniform(rng, 1.0, 2.0);
              break;
            case kFn:
              score = BandUniform(rng, -16.0, -14.0);
              break;
            default:  // kTn: 90% hidden at the floor, 10% exposed.
              score = (i % 10 == 0) ? BandUniform(rng, -1.5, 0.0)
                                    : BandUniform(rng, -16.0, -14.0);
              break;
          }
          break;
        }
        default:
          // kExactCount, kImbalance, kAllMatch, kNoMatch, kNoisyOracle: the
          // plain truth-correlated bands.
          score = BandUniform(rng, lo, hi);
          break;
      }
      pool.scored.scores.push_back(score);
      pool.scored.predictions.push_back(prediction_bit ? 1 : 0);
      pool.truth.push_back(truth_bit ? 1 : 0);
    }
  }
  OASIS_RETURN_NOT_OK(pool.scored.Validate());
  return pool;
}

Result<std::unique_ptr<Oracle>> MakeScenarioOracle(const ScenarioPool& pool) {
  if (pool.spec.flip_rate > 0.0) {
    OASIS_ASSIGN_OR_RETURN(
        NoisyOracle oracle,
        NoisyOracle::FromTruthWithFlipNoise(pool.truth, pool.spec.flip_rate));
    return std::unique_ptr<Oracle>(new NoisyOracle(std::move(oracle)));
  }
  return std::unique_ptr<Oracle>(new GroundTruthOracle(pool.truth));
}

const std::vector<ScenarioSpec>& ScenarioCatalog() {
  static const std::vector<ScenarioSpec>* catalog = [] {
    auto* specs = new std::vector<ScenarioSpec>;
    {
      // F fixed at 0.90 by construction: 900 / (0.5*1000 + 0.5*1000).
      ScenarioSpec spec;
      spec.name = "stripe-f90";
      spec.family = ScenarioFamily::kExactCount;
      spec.pool_size = 20000;
      spec.true_positives = 900;
      spec.false_positives = 100;
      spec.false_negatives = 100;
      spec.verify_tolerance = 0.02;
      specs->push_back(spec);
    }
    {
      // F fixed at 0.50: 500 / (0.5*1000 + 0.5*1000).
      ScenarioSpec spec;
      spec.name = "stripe-f50";
      spec.family = ScenarioFamily::kExactCount;
      spec.pool_size = 20000;
      spec.true_positives = 500;
      spec.false_positives = 500;
      spec.false_negatives = 500;
      spec.verify_tolerance = 0.03;
      specs->push_back(spec);
    }
    {
      // 1-in-1000 matches; recall/precision 0.8 realised exactly.
      ScenarioSpec spec;
      spec.name = "imbalance-1e3";
      spec.family = ScenarioFamily::kImbalance;
      spec.pool_size = 50000;
      spec.match_rate = 1e-3;
      spec.verify_tolerance = 0.06;
      specs->push_back(spec);
    }
    {
      // 1-in-100000 matches: a single true match in the pool. The extreme
      // end of the imbalance axis; estimates are wild at small budgets, so
      // the tolerance band is wide by design.
      ScenarioSpec spec;
      spec.name = "imbalance-1e5";
      spec.family = ScenarioFamily::kImbalance;
      spec.pool_size = 100000;
      spec.match_rate = 1e-5;
      spec.verify_tolerance = 0.5;
      specs->push_back(spec);
    }
    {
      ScenarioSpec spec;
      spec.name = "skew-heavy";
      spec.family = ScenarioFamily::kStratumSkew;
      spec.pool_size = 20000;
      spec.match_rate = 0.01;
      spec.skew_exponent = 8.0;
      spec.verify_tolerance = 0.05;
      specs->push_back(spec);
    }
    {
      ScenarioSpec spec;
      spec.name = "clustered";
      spec.family = ScenarioFamily::kClustered;
      spec.pool_size = 20000;
      spec.match_rate = 0.02;
      spec.clusters_per_band = 5;
      spec.verify_tolerance = 0.05;
      specs->push_back(spec);
    }
    {
      ScenarioSpec spec;
      spec.name = "single-stratum";
      spec.family = ScenarioFamily::kSingleStratum;
      spec.pool_size = 10000;
      spec.match_rate = 0.05;
      spec.verify_tolerance = 0.05;
      specs->push_back(spec);
    }
    {
      ScenarioSpec spec;
      spec.name = "all-match";
      spec.family = ScenarioFamily::kAllMatch;
      spec.pool_size = 10000;
      spec.classifier_recall = 0.9;
      spec.verify_tolerance = 0.03;
      specs->push_back(spec);
    }
    {
      ScenarioSpec spec;
      spec.name = "no-match";
      spec.family = ScenarioFamily::kNoMatch;
      spec.pool_size = 10000;
      spec.match_rate = 0.01;
      spec.verify_tolerance = 0.02;
      specs->push_back(spec);
    }
    {
      // The SIS breaker: static importance sampling's weights must collapse
      // here (expect_sis_degeneracy), while OASIS adapts and stays healthy.
      ScenarioSpec spec;
      spec.name = "sis-inversion";
      spec.family = ScenarioFamily::kScoreInversion;
      spec.pool_size = 20000;
      spec.match_rate = 0.02;
      spec.classifier_recall = 0.25;
      spec.classifier_precision = 0.8;
      spec.expect_sis_degeneracy = true;
      spec.verify_tolerance = 0.08;
      specs->push_back(spec);
    }
    {
      // 5% symmetric flip noise; the truth target is flip-adjusted exactly.
      ScenarioSpec spec;
      spec.name = "noisy-flip05";
      spec.family = ScenarioFamily::kNoisyOracle;
      spec.pool_size = 20000;
      spec.match_rate = 0.02;
      spec.flip_rate = 0.05;
      spec.verify_tolerance = 0.06;
      specs->push_back(spec);
    }
    return specs;
  }();
  return *catalog;
}

Result<ScenarioSpec> ScenarioByName(const std::string& name) {
  std::string known;
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    if (spec.name == name) return spec;
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  return Status::NotFound("unknown scenario '" + name + "' (catalogue: " +
                          known + ")");
}

}  // namespace datagen
}  // namespace oasis
