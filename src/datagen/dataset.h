#ifndef OASIS_DATAGEN_DATASET_H_
#define OASIS_DATAGEN_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "datagen/corruptor.h"
#include "datagen/entity_generator.h"
#include "er/pool.h"
#include "er/record.h"

namespace oasis {
namespace datagen {

/// A generated ER dataset: two databases plus the ground-truth matching
/// relation R (Definition 1). For deduplication datasets `dedup` is true and
/// `right` mirrors `left`; the pair space is then the n(n-1)/2 unordered
/// pairs of one database.
struct ErDataset {
  er::Database left;   ///< First source database.
  er::Database right;  ///< Second source; mirrors `left` for dedup datasets.
  /// Ground-truth matching pairs (left index, right index); for dedup
  /// datasets both index `left` and satisfy left < right.
  std::vector<er::RecordPair> matches;
  bool dedup = false;  ///< Whether this is a deduplication dataset.

  /// |Z| = n1 * n2, or n(n-1)/2 for dedup.
  int64_t TotalPairs() const;

  /// Ratio of non-matching to matching pairs over the full pair space.
  double ImbalanceRatio() const;
};

/// Two-source dataset generation parameters.
///
/// Matched entities come in two difficulty classes, mirroring real ER
/// datasets where part of the matches are clean (rankable by any reasonable
/// matcher) and the rest are heavily divergent across sources (mismatched
/// blurbs, renamed products): a fraction `hard_match_fraction` of the shared
/// entities is corrupted with `hard_corruption` instead of `corruption`.
/// This bimodality is what produces the paper's precision/recall operating
/// points (e.g. Abt-Buy's P=.92/R=.44).
struct TwoSourceConfig {
  size_t left_size = 1000;   ///< Records in the left source.
  size_t right_size = 1000;  ///< Records in the right source.
  /// Number of entities present in both sources (= |R| when each shared
  /// entity contributes exactly one record per source, as here).
  size_t num_matches = 100;
  /// Corruption for source-exclusive entities and easy matches.
  CorruptionOptions corruption;
  /// Corruption for the hard match class.
  CorruptionOptions hard_corruption;
  /// Fraction of matched entities drawn from the hard class.
  double hard_match_fraction = 0.0;
};

/// Generates a two-source dataset: `num_matches` entities materialise in
/// both databases (each side corrupted independently), the remainder of each
/// database is filled with records of distinct entities.
Result<ErDataset> GenerateTwoSource(EntityGenerator& generator,
                                    const TwoSourceConfig& config, Rng& rng);

/// Deduplication dataset generation parameters (cora-style).
struct DedupConfig {
  /// Number of underlying entities.
  size_t num_entities = 100;
  /// Records per entity are drawn uniformly from [min, max]; every pair of
  /// records of one entity is a matching pair, so cluster sizes drive |R|
  /// quadratically.
  size_t min_cluster = 1;
  size_t max_cluster = 3;  ///< Upper end of the cluster-size range above.
  CorruptionOptions corruption;  ///< Per-record corruption strength.
};

/// Generates a single-database deduplication dataset with clustered
/// duplicates.
Result<ErDataset> GenerateDedup(EntityGenerator& generator,
                                const DedupConfig& config, Rng& rng);

/// Assembles an evaluation pool of `pool_size` pairs containing exactly
/// `pool_matches` ground-truth matches sampled from the dataset (mirroring
/// the randomised pools of the paper's Table 2): matches are sampled from R
/// without replacement; non-matches are a mix of random cross pairs and
/// "hard" negatives that share an entity-like attribute with some record.
///
/// `hard_negative_fraction` controls the share of non-matches taken from
/// near-collision pairs (same left record as a match but different right
/// record, or vice versa), which populate the mid-score range.
Result<er::PairPool> SamplePool(const ErDataset& dataset, int64_t pool_size,
                                int64_t pool_matches, double hard_negative_fraction,
                                Rng& rng);

/// Builds a labelled training set of pairs (matches + easy + hard
/// non-matches) for fitting the pair classifier, mirroring the paper's
/// "random subset with ground truth" training regime.
Result<er::PairPool> SampleTrainingPairs(const ErDataset& dataset,
                                         int64_t num_matches,
                                         int64_t num_nonmatches,
                                         double hard_negative_fraction, Rng& rng);

}  // namespace datagen
}  // namespace oasis

#endif  // OASIS_DATAGEN_DATASET_H_
