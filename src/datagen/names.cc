#include "datagen/names.h"

#include <cmath>
#include <unordered_set>

namespace oasis {
namespace datagen {

namespace {
const char* const kOnsets[] = {"b",  "br", "c",  "ch", "d",  "dr", "f",  "fl",
                               "g",  "gr", "h",  "j",  "k",  "kl", "l",  "m",
                               "n",  "p",  "pr", "r",  "s",  "st", "t",  "tr",
                               "v",  "w",  "z",  "sh", "th", "sl"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"};
const char* const kCodas[] = {"",  "n", "r", "l", "s", "t", "x",
                              "m", "k", "d", "ng", "rn"};

constexpr size_t kNumOnsets = sizeof(kOnsets) / sizeof(kOnsets[0]);
constexpr size_t kNumVowels = sizeof(kVowels) / sizeof(kVowels[0]);
constexpr size_t kNumCodas = sizeof(kCodas) / sizeof(kCodas[0]);
}  // namespace

WordGenerator::WordGenerator(Rng rng) : rng_(rng) {}

std::string WordGenerator::Word(size_t min_syllables, size_t max_syllables) {
  const size_t syllables =
      min_syllables +
      static_cast<size_t>(rng_.NextBounded(max_syllables - min_syllables + 1));
  std::string word;
  for (size_t s = 0; s < syllables; ++s) {
    word += kOnsets[rng_.NextBounded(kNumOnsets)];
    word += kVowels[rng_.NextBounded(kNumVowels)];
    // Codas mostly close the final syllable; sprinkling them mid-word makes
    // words look less templated.
    if (s + 1 == syllables || rng_.NextBernoulli(0.25)) {
      word += kCodas[rng_.NextBounded(kNumCodas)];
    }
  }
  return word;
}

std::vector<std::string> WordGenerator::Vocabulary(size_t count,
                                                   size_t min_syllables,
                                                   size_t max_syllables) {
  std::vector<std::string> words;
  words.reserve(count);
  std::unordered_set<std::string> seen;
  while (words.size() < count) {
    std::string word = Word(min_syllables, max_syllables);
    if (seen.insert(word).second) words.push_back(std::move(word));
  }
  return words;
}

std::string WordGenerator::Surname() {
  std::string name = Word(2, 3);
  name[0] = static_cast<char>(name[0] - 'a' + 'A');
  return name;
}

std::string WordGenerator::Author() {
  std::string author;
  author.push_back(static_cast<char>('A' + rng_.NextBounded(26)));
  author += ". ";
  author += Surname();
  return author;
}

std::string WordGenerator::ModelCode() {
  std::string code;
  const size_t letters = 2 + rng_.NextBounded(2);
  for (size_t i = 0; i < letters; ++i) {
    code.push_back(static_cast<char>('a' + rng_.NextBounded(26)));
  }
  code.push_back('-');
  const size_t digits = 3 + rng_.NextBounded(2);
  for (size_t i = 0; i < digits; ++i) {
    code.push_back(static_cast<char>('0' + rng_.NextBounded(10)));
  }
  return code;
}

size_t WordGenerator::ZipfIndex(size_t n) {
  if (n <= 1) return 0;
  // Inverse-CDF of the (unnormalised) 1/(k+1) law via the harmonic integral:
  // rank ~ exp(u * ln(n+1)) - 1.
  const double u = rng_.NextDouble();
  const double rank = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
  size_t idx = static_cast<size_t>(rank);
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace datagen
}  // namespace oasis
