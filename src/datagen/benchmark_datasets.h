#ifndef OASIS_DATAGEN_BENCHMARK_DATASETS_H_
#define OASIS_DATAGEN_BENCHMARK_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "common/status.h"
#include "datagen/dataset.h"
#include "er/pool.h"
#include "eval/measures.h"
#include "sampling/sampler.h"

namespace oasis {
namespace datagen {

/// Classifier families evaluated in the paper (Sec. 6.3.4 / Figure 5).
enum class ClassifierKind {
  kLinearSvm,
  kLogisticRegression,
  kMlp,
  kAdaBoost,
  kRbfSvm,
};

/// Short name for a classifier kind ("L-SVM", "LR", ...).
std::string ClassifierKindName(ClassifierKind kind);

/// Fresh classifier instance of the given kind with library defaults.
std::unique_ptr<classify::Classifier> MakeClassifier(ClassifierKind kind);

/// Configuration of one synthetic evaluation dataset, mirroring a row of the
/// paper's Tables 1-2. The `paper_*` fields record the published reference
/// values so harnesses can print paper-vs-reproduced side by side.
struct DatasetProfile {
  std::string name;                    ///< Profile name ("DBLP-ACM", ...).
  Domain domain = Domain::kECommerce;  ///< Entity domain of the records.
  bool dedup = false;                  ///< Deduplication (one-source) dataset.
  /// tweets100k: scores are generated directly from a latent-margin model
  /// (not an ER dataset; included, as in the paper, to test the balanced
  /// regime).
  bool direct_scores = false;

  // Full-dataset shape (Table 1).
  size_t left_size = 0;          ///< Records in the left source.
  size_t right_size = 0;         ///< Records in the right source.
  size_t full_matches = 0;       ///< Two-source: number of shared entities.
  size_t dedup_entities = 0;     ///< Dedup: entity count...
  size_t dedup_min_cluster = 1;  ///< ...and duplicate-cluster size range
  size_t dedup_max_cluster = 1;  ///< (min/max records per entity).

  // Pool shape (Table 2).
  int64_t pool_size = 0;     ///< Evaluation-pool size |Z|.
  int64_t pool_matches = 0;  ///< True matches in the pool.

  /// Corruption for source-exclusive entities and easy matches (the knob
  /// controlling classifier quality).
  CorruptionOptions corruption;
  /// Bimodal match difficulty: fraction of matched entities corrupted with
  /// `hard_corruption` instead of `corruption` (two-source profiles only).
  CorruptionOptions hard_corruption;
  double hard_match_fraction = 0.0;    ///< Share of matches in the hard class.
  double hard_negative_fraction = 0.1; ///< Share of near-collision non-matches.
  int64_t train_matches = 300;         ///< Training pairs: matches.
  int64_t train_nonmatches = 3000;     ///< Training pairs: non-matches.
  double train_hard_fraction = 0.3;    ///< Hard-negative share in training.
  /// The matcher's operating point: the decision threshold is set so that
  /// the number of predicted positives is round(factor * pool_matches) —
  /// i.e. factor ~ recall/precision of the intended operating point.
  double predicted_positive_factor = 1.0;
  /// Latent-margin separation for direct-score profiles.
  double direct_margin = 0.77;

  // Published reference values (Tables 1-2).
  int64_t paper_full_size = 0;     ///< Published |Z| of the full dataset.
  int64_t paper_full_matches = 0;  ///< Published |R|.
  double paper_imbalance = 0.0;    ///< Published non-match : match ratio.
  int64_t paper_pool_size = 0;     ///< Published pool size.
  int64_t paper_pool_matches = 0;  ///< Published pool matches.
  double paper_precision = 0.0;    ///< Published classifier precision.
  double paper_recall = 0.0;       ///< Published classifier recall.
  double paper_f = 0.0;            ///< Published classifier F-measure.
};

/// The six standard profiles, in the paper's Table 1 order (decreasing class
/// imbalance): Amazon-GoogleProducts, restaurant, DBLP-ACM, Abt-Buy, cora,
/// tweets100k.
const std::vector<DatasetProfile>& StandardProfiles();

/// Profile lookup by (case-sensitive) name.
Result<DatasetProfile> ProfileByName(const std::string& name);

/// A ready-to-evaluate benchmark pool: scored pairs, predictions, hidden
/// ground truth, and the pool-level true measures the estimators are judged
/// against.
struct BenchmarkPool {
  std::string profile_name;  ///< Profile the pool was generated from.
  ScoredPool scored;         ///< Scores + predictions (the estimator's view).
  /// Ground truth per pool item (feeds oracles; estimators never touch it).
  std::vector<uint8_t> truth;
  int64_t pool_matches = 0;  ///< True matches in the pool.
  /// True pool-level precision / recall / F_1/2 (computed with full truth).
  Measures true_measures;
};

/// Generates the profile's dataset, trains the pair classifier, scores the
/// evaluation pool and fixes the operating point. `calibrated` wraps the
/// classifier in cross-validated Platt scaling (probability scores), the
/// paper's Sec. 6.3.2 comparison. Deterministic in `seed`.
Result<BenchmarkPool> BuildBenchmarkPool(const DatasetProfile& profile,
                                         ClassifierKind kind, bool calibrated,
                                         uint64_t seed);

/// Generates only the underlying dataset (used by the Table 1 harness).
Result<ErDataset> GenerateDatasetForProfile(const DatasetProfile& profile,
                                            uint64_t seed);

}  // namespace datagen
}  // namespace oasis

#endif  // OASIS_DATAGEN_BENCHMARK_DATASETS_H_
