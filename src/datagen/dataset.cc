#include "datagen/dataset.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/logging.h"

namespace oasis {
namespace datagen {

namespace {

/// Packs a pair into one key for collision checks.
uint64_t PairKey(int32_t left, int32_t right) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(left)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(right));
}

}  // namespace

int64_t ErDataset::TotalPairs() const {
  if (dedup) {
    const int64_t n = left.size();
    return n * (n - 1) / 2;
  }
  return left.size() * right.size();
}

double ErDataset::ImbalanceRatio() const {
  if (matches.empty()) return std::numeric_limits<double>::infinity();
  const double m = static_cast<double>(matches.size());
  return (static_cast<double>(TotalPairs()) - m) / m;
}

Result<ErDataset> GenerateTwoSource(EntityGenerator& generator,
                                    const TwoSourceConfig& config, Rng& rng) {
  if (config.num_matches > config.left_size ||
      config.num_matches > config.right_size) {
    return Status::InvalidArgument(
        "GenerateTwoSource: num_matches exceeds a database size");
  }
  ErDataset dataset;
  dataset.left.schema = generator.schema();
  dataset.right.schema = generator.schema();
  dataset.left.records.reserve(config.left_size);
  dataset.right.records.reserve(config.right_size);

  // Shared entities first: both sides receive independently corrupted copies
  // of the canonical record; the entity's difficulty class picks the
  // corruption strength for both sides.
  for (size_t m = 0; m < config.num_matches; ++m) {
    const er::Record canonical = generator.GenerateEntity();
    const bool hard = rng.NextBernoulli(config.hard_match_fraction);
    const CorruptionOptions& corruption =
        hard ? config.hard_corruption : config.corruption;
    dataset.left.records.push_back(
        CorruptRecord(canonical, generator.schema(), corruption, rng));
    dataset.right.records.push_back(
        CorruptRecord(canonical, generator.schema(), corruption, rng));
    dataset.matches.push_back({static_cast<int32_t>(m), static_cast<int32_t>(m)});
  }
  // Source-exclusive entities fill the remainder.
  while (dataset.left.records.size() < config.left_size) {
    dataset.left.records.push_back(CorruptRecord(
        generator.GenerateEntity(), generator.schema(), config.corruption, rng));
  }
  while (dataset.right.records.size() < config.right_size) {
    dataset.right.records.push_back(CorruptRecord(
        generator.GenerateEntity(), generator.schema(), config.corruption, rng));
  }

  // Shuffle both databases so match indices are not aligned; remap R.
  std::vector<size_t> left_perm(config.left_size);
  std::vector<size_t> right_perm(config.right_size);
  for (size_t i = 0; i < left_perm.size(); ++i) left_perm[i] = i;
  for (size_t i = 0; i < right_perm.size(); ++i) right_perm[i] = i;
  rng.Shuffle(left_perm);
  rng.Shuffle(right_perm);
  // left_perm[new_pos] = old_pos; build inverse to remap match indices.
  std::vector<int32_t> left_new_of_old(config.left_size);
  std::vector<int32_t> right_new_of_old(config.right_size);
  for (size_t new_pos = 0; new_pos < left_perm.size(); ++new_pos) {
    left_new_of_old[left_perm[new_pos]] = static_cast<int32_t>(new_pos);
  }
  for (size_t new_pos = 0; new_pos < right_perm.size(); ++new_pos) {
    right_new_of_old[right_perm[new_pos]] = static_cast<int32_t>(new_pos);
  }
  std::vector<er::Record> left_shuffled(config.left_size);
  std::vector<er::Record> right_shuffled(config.right_size);
  for (size_t new_pos = 0; new_pos < left_perm.size(); ++new_pos) {
    left_shuffled[new_pos] = std::move(dataset.left.records[left_perm[new_pos]]);
  }
  for (size_t new_pos = 0; new_pos < right_perm.size(); ++new_pos) {
    right_shuffled[new_pos] = std::move(dataset.right.records[right_perm[new_pos]]);
  }
  dataset.left.records = std::move(left_shuffled);
  dataset.right.records = std::move(right_shuffled);
  for (er::RecordPair& match : dataset.matches) {
    match.left = left_new_of_old[static_cast<size_t>(match.left)];
    match.right = right_new_of_old[static_cast<size_t>(match.right)];
  }
  return dataset;
}

Result<ErDataset> GenerateDedup(EntityGenerator& generator,
                                const DedupConfig& config, Rng& rng) {
  if (config.num_entities == 0 || config.min_cluster == 0 ||
      config.max_cluster < config.min_cluster) {
    return Status::InvalidArgument("GenerateDedup: bad cluster configuration");
  }
  ErDataset dataset;
  dataset.dedup = true;
  dataset.left.schema = generator.schema();

  std::vector<std::vector<int32_t>> clusters;
  for (size_t e = 0; e < config.num_entities; ++e) {
    const er::Record canonical = generator.GenerateEntity();
    const size_t cluster_size =
        config.min_cluster +
        static_cast<size_t>(
            rng.NextBounded(config.max_cluster - config.min_cluster + 1));
    std::vector<int32_t> members;
    for (size_t c = 0; c < cluster_size; ++c) {
      members.push_back(static_cast<int32_t>(dataset.left.records.size()));
      dataset.left.records.push_back(
          CorruptRecord(canonical, generator.schema(), config.corruption, rng));
    }
    clusters.push_back(std::move(members));
  }
  // All within-cluster pairs are matches.
  for (const auto& members : clusters) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        dataset.matches.push_back({members[i], members[j]});
      }
    }
  }
  dataset.right = dataset.left;  // Self-join view for pipelines expecting two DBs.
  return dataset;
}

namespace {

/// Draws a uniformly random candidate pair from the dataset's pair space
/// (left < right for dedup).
er::RecordPair RandomPair(const ErDataset& dataset, Rng& rng) {
  if (dataset.dedup) {
    const int64_t n = dataset.left.size();
    int32_t a = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(n)));
    int32_t b = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(n - 1)));
    if (b >= a) ++b;
    return {std::min(a, b), std::max(a, b)};
  }
  return {static_cast<int32_t>(
              rng.NextBounded(static_cast<uint64_t>(dataset.left.size()))),
          static_cast<int32_t>(
              rng.NextBounded(static_cast<uint64_t>(dataset.right.size())))};
}

/// Draws a "hard" negative: shares one side with a ground-truth match, so
/// the pair often shares brand/venue/name tokens and lands mid-score.
er::RecordPair HardNegative(const ErDataset& dataset, Rng& rng) {
  const er::RecordPair& anchor =
      dataset.matches[rng.NextBounded(dataset.matches.size())];
  er::RecordPair pair = anchor;
  if (rng.NextBernoulli(0.5)) {
    pair.right = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(dataset.right.size())));
  } else {
    pair.left = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(dataset.left.size())));
  }
  if (dataset.dedup) {
    if (pair.left == pair.right) {
      pair.right = (pair.right + 1) % static_cast<int32_t>(dataset.left.size());
    }
    if (pair.left > pair.right) std::swap(pair.left, pair.right);
  }
  return pair;
}

Result<er::PairPool> SampleLabelledPairs(const ErDataset& dataset,
                                         int64_t num_matches,
                                         int64_t num_nonmatches,
                                         double hard_negative_fraction,
                                         Rng& rng) {
  if (num_matches > static_cast<int64_t>(dataset.matches.size())) {
    return Status::InvalidArgument(
        "SamplePool: requested more matches than the dataset holds (" +
        std::to_string(num_matches) + " > " +
        std::to_string(dataset.matches.size()) + ")");
  }
  if (num_matches < 0 || num_nonmatches < 0 ||
      hard_negative_fraction < 0.0 || hard_negative_fraction > 1.0) {
    return Status::InvalidArgument("SamplePool: bad arguments");
  }
  const int64_t total = num_matches + num_nonmatches;
  if (total <= 0) return Status::InvalidArgument("SamplePool: empty pool");
  // The pair space must be large enough to host the distinct non-matches.
  if (dataset.TotalPairs() < total) {
    return Status::InvalidArgument("SamplePool: pair space too small");
  }

  er::PairPool pool;
  std::unordered_set<uint64_t> used;
  std::unordered_set<uint64_t> match_keys;
  match_keys.reserve(dataset.matches.size() * 2);
  for (const er::RecordPair& match : dataset.matches) {
    match_keys.insert(PairKey(match.left, match.right));
  }

  // Matches: sample without replacement from R.
  std::vector<size_t> match_order =
      rng.SampleWithoutReplacement(dataset.matches.size(),
                                   static_cast<size_t>(num_matches));
  for (size_t idx : match_order) {
    const er::RecordPair& match = dataset.matches[idx];
    used.insert(PairKey(match.left, match.right));
    pool.Add(match, /*is_match=*/true);
  }

  // Non-matches: rejection-sample distinct pairs that are not in R.
  int64_t added = 0;
  int64_t attempts = 0;
  const int64_t max_attempts = 1000 * num_nonmatches + 10000;
  while (added < num_nonmatches) {
    if (++attempts > max_attempts) {
      return Status::Internal("SamplePool: rejection sampling stalled");
    }
    const bool hard = rng.NextBernoulli(hard_negative_fraction) &&
                      !dataset.matches.empty();
    const er::RecordPair pair =
        hard ? HardNegative(dataset, rng) : RandomPair(dataset, rng);
    const uint64_t key = PairKey(pair.left, pair.right);
    if (match_keys.contains(key)) continue;  // Accidentally a true match.
    if (!used.insert(key).second) continue;  // Duplicate pool pair.
    pool.Add(pair, /*is_match=*/false);
    ++added;
  }
  return pool;
}

}  // namespace

Result<er::PairPool> SamplePool(const ErDataset& dataset, int64_t pool_size,
                                int64_t pool_matches, double hard_negative_fraction,
                                Rng& rng) {
  if (pool_matches > pool_size) {
    return Status::InvalidArgument("SamplePool: pool_matches > pool_size");
  }
  return SampleLabelledPairs(dataset, pool_matches, pool_size - pool_matches,
                             hard_negative_fraction, rng);
}

Result<er::PairPool> SampleTrainingPairs(const ErDataset& dataset,
                                         int64_t num_matches,
                                         int64_t num_nonmatches,
                                         double hard_negative_fraction, Rng& rng) {
  return SampleLabelledPairs(dataset, num_matches, num_nonmatches,
                             hard_negative_fraction, rng);
}

}  // namespace datagen
}  // namespace oasis
