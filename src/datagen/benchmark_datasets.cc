#include "datagen/benchmark_datasets.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "classify/adaboost.h"
#include "classify/linear_svm.h"
#include "classify/logistic_regression.h"
#include "classify/mlp.h"
#include "classify/platt.h"
#include "classify/rbf_svm.h"
#include "common/logging.h"
#include "er/pipeline.h"
#include "eval/confusion.h"

namespace oasis {
namespace datagen {

std::string ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLinearSvm:
      return "L-SVM";
    case ClassifierKind::kLogisticRegression:
      return "LR";
    case ClassifierKind::kMlp:
      return "NN";
    case ClassifierKind::kAdaBoost:
      return "AB";
    case ClassifierKind::kRbfSvm:
      return "R-SVM";
  }
  return "?";
}

std::unique_ptr<classify::Classifier> MakeClassifier(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLinearSvm:
      return std::make_unique<classify::LinearSvm>();
    case ClassifierKind::kLogisticRegression:
      return std::make_unique<classify::LogisticRegression>();
    case ClassifierKind::kMlp:
      return std::make_unique<classify::Mlp>();
    case ClassifierKind::kAdaBoost:
      return std::make_unique<classify::AdaBoost>();
    case ClassifierKind::kRbfSvm:
      return std::make_unique<classify::RbfSvm>();
  }
  return nullptr;
}

namespace {

/// Corruption presets. Heavier corruption degrades match similarity, which
/// is how each profile lands near its paper operating point.
CorruptionOptions LightCorruption() {
  CorruptionOptions c;
  c.char_edit_rate = 0.05;
  c.token_drop_rate = 0.02;
  c.token_swap_rate = 0.02;
  c.abbreviation_rate = 0.03;
  c.missing_rate = 0.01;
  c.numeric_jitter = 0.01;
  return c;
}

CorruptionOptions ModerateCorruption() {
  CorruptionOptions c;
  c.char_edit_rate = 0.15;
  c.token_drop_rate = 0.08;
  c.token_swap_rate = 0.05;
  c.abbreviation_rate = 0.08;
  c.missing_rate = 0.02;
  c.numeric_jitter = 0.05;
  return c;
}

/// Near-total divergence between a match's two records: renamed products,
/// rewritten blurbs, unrelated prices. These matches are essentially
/// unrecoverable for the matcher, which is what caps recall on the
/// Amazon-GoogleProducts / Abt-Buy profiles.
CorruptionOptions DestructiveCorruption() {
  CorruptionOptions c;
  c.char_edit_rate = 0.35;
  c.token_drop_rate = 0.30;
  c.token_swap_rate = 0.12;
  c.abbreviation_rate = 0.20;
  c.field_rewrite_rate = 0.55;
  c.missing_rate = 0.08;
  c.numeric_jitter = 0.25;
  c.numeric_rewrite_rate = 0.40;
  return c;
}

std::vector<DatasetProfile> BuildStandardProfiles() {
  std::vector<DatasetProfile> profiles;

  {
    // Amazon-GoogleProducts: worst classifier of the suite (P=.597 R=.185),
    // imbalance ~3381. Heavy corruption + many hard negatives.
    DatasetProfile p;
    p.name = "Amazon-GoogleProducts";
    p.domain = Domain::kECommerce;
    p.left_size = 1363;
    p.right_size = 3226;  // 1363 * 3226 = 4,397,038 = the paper's |Z|.
    p.full_matches = 1300;
    p.pool_size = 676267;
    p.pool_matches = 200;
    // ~22% of matches are cleanly linkable, the rest near-destroyed; the
    // rankable sub-population plus a low operating point yields the paper's
    // P ~ .6, R ~ .19.
    p.corruption = ModerateCorruption();
    p.hard_corruption = DestructiveCorruption();
    p.hard_match_fraction = 0.74;
    p.hard_negative_fraction = 0.08;
    p.train_matches = 400;
    p.train_nonmatches = 4000;
    p.train_hard_fraction = 0.30;
    p.predicted_positive_factor = 0.185 / 0.597;  // ~recall/precision
    p.paper_full_size = 4397038;
    p.paper_full_matches = 1300;
    p.paper_imbalance = 3381.0;
    p.paper_pool_size = 676267;
    p.paper_pool_matches = 200;
    p.paper_precision = 0.597;
    p.paper_recall = 0.185;
    p.paper_f = 0.282;
    profiles.push_back(std::move(p));
  }
  {
    // restaurant: small two-guidebook dataset, strong classifier.
    DatasetProfile p;
    p.name = "restaurant";
    p.domain = Domain::kRestaurant;
    p.left_size = 864;
    p.right_size = 863;  // 864 * 863 = 745,632.
    p.full_matches = 224;
    p.pool_size = 149747;
    p.pool_matches = 45;
    p.corruption = LightCorruption();
    p.hard_negative_fraction = 0.05;
    p.train_matches = 150;
    p.train_nonmatches = 2000;
    p.train_hard_fraction = 0.25;
    p.predicted_positive_factor = 0.888 / 0.909;
    p.paper_full_size = 745632;
    p.paper_full_matches = 224;
    p.paper_imbalance = 3328.0;
    p.paper_pool_size = 149747;
    p.paper_pool_matches = 45;
    p.paper_precision = 0.909;
    p.paper_recall = 0.888;
    p.paper_f = 0.899;
    profiles.push_back(std::move(p));
  }
  {
    // DBLP-ACM: clean bibliographic data, near-perfect classifier.
    DatasetProfile p;
    p.name = "DBLP-ACM";
    p.domain = Domain::kCitation;
    p.left_size = 2616;
    p.right_size = 2294;  // 2616 * 2294 = 6,001,104 ~ paper's 5,998,880.
    p.full_matches = 2224;
    p.pool_size = 53946;
    p.pool_matches = 20;
    p.corruption = LightCorruption();
    p.hard_negative_fraction = 0.05;
    p.train_matches = 400;
    p.train_nonmatches = 4000;
    p.train_hard_fraction = 0.25;
    p.predicted_positive_factor = 0.9 / 1.0;
    p.paper_full_size = 5998880;
    p.paper_full_matches = 2224;
    p.paper_imbalance = 2697.0;
    p.paper_pool_size = 53946;
    p.paper_pool_matches = 20;
    p.paper_precision = 1.0;
    p.paper_recall = 0.9;
    p.paper_f = 0.947;
    profiles.push_back(std::move(p));
  }
  {
    // Abt-Buy: high precision, poor recall (P=.916 R=.44). Moderate-heavy
    // corruption with rewritten descriptions models the mismatched product
    // blurbs of the real dataset.
    DatasetProfile p;
    p.name = "Abt-Buy";
    p.domain = Domain::kECommerce;
    p.left_size = 1081;
    p.right_size = 1092;  // 1081 * 1092 = 1,180,452.
    // The real dataset has 1097 matches (a few records match multiply); the
    // generator is one-record-per-entity-per-source, so |R| <= min(n1, n2).
    p.full_matches = 1075;
    p.pool_size = 53753;
    p.pool_matches = 50;
    // Roughly half the matches are clean, half have rewritten blurbs and
    // divergent prices (the real Abt/Buy description mismatch): precision
    // stays high at a conservative threshold while recall caps near .44.
    p.corruption = LightCorruption();
    p.hard_corruption = DestructiveCorruption();
    p.hard_match_fraction = 0.52;
    p.hard_negative_fraction = 0.06;
    p.train_matches = 400;
    p.train_nonmatches = 4000;
    p.train_hard_fraction = 0.30;
    p.predicted_positive_factor = 0.50;
    p.paper_full_size = 1180452;
    p.paper_full_matches = 1097;
    p.paper_imbalance = 1075.0;
    p.paper_pool_size = 53753;
    p.paper_pool_matches = 50;
    p.paper_precision = 0.916;
    p.paper_recall = 0.44;
    p.paper_f = 0.595;
    profiles.push_back(std::move(p));
  }
  {
    // cora: single-source deduplication with large duplicate clusters; mild
    // imbalance (47.76) and a decent classifier.
    DatasetProfile p;
    p.name = "cora";
    p.domain = Domain::kCitation;
    p.dedup = true;
    p.dedup_entities = 49;
    p.dedup_min_cluster = 30;
    p.dedup_max_cluster = 45;  // ~1831 records, ~34k matching pairs.
    p.pool_size = 328291;
    p.pool_matches = 6874;
    p.corruption = ModerateCorruption();
    p.hard_negative_fraction = 0.10;
    p.train_matches = 800;
    p.train_nonmatches = 6000;
    p.train_hard_fraction = 0.30;
    p.predicted_positive_factor = 0.837 / 0.841;
    p.paper_full_size = 1675730;
    p.paper_full_matches = 34368;
    p.paper_imbalance = 47.76;
    p.paper_pool_size = 328291;
    p.paper_pool_matches = 6874;
    p.paper_precision = 0.841;
    p.paper_recall = 0.837;
    p.paper_f = 0.839;
    profiles.push_back(std::move(p));
  }
  {
    // tweets100k: balanced non-ER control. Scores come directly from a
    // latent-margin model (the underlying dataset is sentiment-labelled
    // tweets, not record pairs).
    DatasetProfile p;
    p.name = "tweets100k";
    p.direct_scores = true;
    p.pool_size = 20000;
    p.pool_matches = 10049;
    p.predicted_positive_factor = 0.778 / 0.762;
    p.direct_margin = 0.77;
    p.paper_full_size = 100000;
    p.paper_full_matches = 50000;
    p.paper_imbalance = 1.0;
    p.paper_pool_size = 20000;
    p.paper_pool_matches = 10049;
    p.paper_precision = 0.762;
    p.paper_recall = 0.778;
    p.paper_f = 0.770;
    profiles.push_back(std::move(p));
  }
  return profiles;
}

/// Builds the tweets100k-style pool: latent +-margin Gaussian scores.
Result<BenchmarkPool> BuildDirectScorePool(const DatasetProfile& profile,
                                           uint64_t seed) {
  BenchmarkPool pool;
  pool.profile_name = profile.name;
  pool.pool_matches = profile.pool_matches;
  Rng rng(seed);

  const int64_t n = profile.pool_size;
  pool.scored.scores.resize(static_cast<size_t>(n));
  pool.scored.predictions.resize(static_cast<size_t>(n));
  pool.truth.resize(static_cast<size_t>(n));
  pool.scored.scores_are_probabilities = false;
  pool.scored.threshold = 0.0;

  // Exactly pool_matches positives, shuffled into place.
  std::vector<uint8_t> labels(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < profile.pool_matches; ++i) labels[static_cast<size_t>(i)] = 1;
  rng.Shuffle(labels);
  for (int64_t i = 0; i < n; ++i) {
    const bool positive = labels[static_cast<size_t>(i)] != 0;
    const double mean = positive ? profile.direct_margin : -profile.direct_margin;
    const double score = mean + rng.NextGaussian();
    pool.truth[static_cast<size_t>(i)] = positive ? 1 : 0;
    pool.scored.scores[static_cast<size_t>(i)] = score;
    pool.scored.predictions[static_cast<size_t>(i)] = score >= 0.0 ? 1 : 0;
  }

  OASIS_ASSIGN_OR_RETURN(
      ConfusionCounts counts,
      CountConfusion(pool.truth, pool.scored.predictions));
  pool.true_measures = ComputeMeasures(counts, 0.5);
  return pool;
}

/// Sets the pool's decision threshold so that round(factor * pool_matches)
/// items are predicted positive, then rebuilds predictions. This pins each
/// profile near its paper operating point regardless of classifier scale.
void FixOperatingPoint(const DatasetProfile& profile, ScoredPool& scored) {
  const int64_t n = scored.size();
  int64_t target = static_cast<int64_t>(
      std::llround(profile.predicted_positive_factor *
                   static_cast<double>(profile.pool_matches)));
  target = std::clamp<int64_t>(target, 1, n);

  std::vector<double> sorted = scored.scores;
  std::nth_element(sorted.begin(), sorted.begin() + (n - target), sorted.end());
  const double threshold = sorted[static_cast<size_t>(n - target)];
  scored.threshold = threshold;
  for (int64_t i = 0; i < n; ++i) {
    scored.predictions[static_cast<size_t>(i)] =
        scored.scores[static_cast<size_t>(i)] >= threshold ? 1 : 0;
  }
}

}  // namespace

const std::vector<DatasetProfile>& StandardProfiles() {
  static const std::vector<DatasetProfile>* profiles =
      new std::vector<DatasetProfile>(BuildStandardProfiles());
  return *profiles;
}

Result<DatasetProfile> ProfileByName(const std::string& name) {
  for (const DatasetProfile& profile : StandardProfiles()) {
    if (profile.name == name) return profile;
  }
  return Status::NotFound("no dataset profile named '" + name + "'");
}

Result<ErDataset> GenerateDatasetForProfile(const DatasetProfile& profile,
                                            uint64_t seed) {
  if (profile.direct_scores) {
    return Status::InvalidArgument(
        "GenerateDatasetForProfile: '" + profile.name +
        "' is a direct-score profile with no record dataset");
  }
  Rng rng(seed);
  EntityGenerator generator(profile.domain, rng.Split());
  if (profile.dedup) {
    DedupConfig config;
    config.num_entities = profile.dedup_entities;
    config.min_cluster = profile.dedup_min_cluster;
    config.max_cluster = profile.dedup_max_cluster;
    config.corruption = profile.corruption;
    return GenerateDedup(generator, config, rng);
  }
  TwoSourceConfig config;
  config.left_size = profile.left_size;
  config.right_size = profile.right_size;
  config.num_matches = profile.full_matches;
  config.corruption = profile.corruption;
  config.hard_corruption = profile.hard_corruption;
  config.hard_match_fraction = profile.hard_match_fraction;
  return GenerateTwoSource(generator, config, rng);
}

Result<BenchmarkPool> BuildBenchmarkPool(const DatasetProfile& profile,
                                         ClassifierKind kind, bool calibrated,
                                         uint64_t seed) {
  if (profile.direct_scores) {
    return BuildDirectScorePool(profile, seed);
  }

  Rng rng(seed);
  OASIS_ASSIGN_OR_RETURN(ErDataset dataset,
                         GenerateDatasetForProfile(profile, rng.NextUint64()));

  // Train the pair classifier on a labelled random subset (paper Sec. 6.1.2).
  Rng train_rng = rng.Split();
  OASIS_ASSIGN_OR_RETURN(
      er::PairPool training_pairs,
      SampleTrainingPairs(dataset, profile.train_matches, profile.train_nonmatches,
                          profile.train_hard_fraction, train_rng));
  OASIS_ASSIGN_OR_RETURN(er::ErPipeline pipeline,
                         er::ErPipeline::Create(&dataset.left, &dataset.right));
  std::unique_ptr<classify::Classifier> model;
  if (calibrated) {
    auto calibrated_model = std::make_unique<classify::CalibratedClassifier>(
        [kind]() { return MakeClassifier(kind); }, /*folds=*/5);
    // Calibration target is the evaluation pool's match rate (Definition 3
    // is with respect to the pool); the training subsample is match-enriched
    // so a prior correction is required for pool-level calibration.
    calibrated_model->SetTargetPositiveRate(
        static_cast<double>(profile.pool_matches) /
        static_cast<double>(profile.pool_size));
    model = std::move(calibrated_model);
  } else {
    model = MakeClassifier(kind);
  }
  er::TrainingSet training;
  training.pairs = training_pairs.pairs();
  training.labels = training_pairs.truth();
  OASIS_RETURN_NOT_OK(pipeline.Train(training, std::move(model), train_rng));

  // Assemble and score the evaluation pool.
  Rng pool_rng = rng.Split();
  OASIS_ASSIGN_OR_RETURN(
      er::PairPool pairs,
      SamplePool(dataset, profile.pool_size, profile.pool_matches,
                 profile.hard_negative_fraction, pool_rng));
  BenchmarkPool pool;
  pool.profile_name = profile.name;
  pool.pool_matches = pairs.num_matches();
  OASIS_ASSIGN_OR_RETURN(pool.scored, pipeline.ScorePairs(pairs.pairs()));
  pool.truth = pairs.truth();

  FixOperatingPoint(profile, pool.scored);

  OASIS_ASSIGN_OR_RETURN(ConfusionCounts counts,
                         CountConfusion(pool.truth, pool.scored.predictions));
  pool.true_measures = ComputeMeasures(counts, 0.5);
  return pool;
}

}  // namespace datagen
}  // namespace oasis
