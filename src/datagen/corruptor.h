#ifndef OASIS_DATAGEN_CORRUPTOR_H_
#define OASIS_DATAGEN_CORRUPTOR_H_

#include <string>

#include "common/random.h"
#include "er/record.h"

namespace oasis {
namespace datagen {

/// Strength of the per-source record corruption applied when deriving each
/// database's record of an entity from the canonical record. Heavier
/// corruption pushes matching pairs down the similarity-score scale, which
/// is the knob that controls classifier quality per dataset profile
/// (excellent on DBLP-ACM-like data, poor on Amazon-GoogleProducts-like).
struct CorruptionOptions {
  /// Probability of a character-level edit (substitute/insert/delete/swap)
  /// per token of a text field.
  double char_edit_rate = 0.15;
  /// Probability of dropping each token (beyond the first) of a text field.
  double token_drop_rate = 0.08;
  /// Probability of swapping a pair of adjacent tokens in a text field.
  double token_swap_rate = 0.05;
  /// Probability of abbreviating a token to a prefix ("corporation"->"corp").
  double abbreviation_rate = 0.08;
  /// Probability of replacing a whole long-text field with fresh unrelated
  /// noise words (models source-specific blurbs: two shops write independent
  /// descriptions of the same product). Short text fields (names, titles)
  /// are never rewritten wholesale — identity-bearing fields degrade via
  /// char/token noise only, as in real data.
  double field_rewrite_rate = 0.0;
  /// Probability of a field becoming missing.
  double missing_rate = 0.02;
  /// Relative jitter applied to numeric fields (price differences between
  /// shops, OCR'd years, ...).
  double numeric_jitter = 0.05;
  /// Probability a numeric field is replaced by an unrelated value.
  double numeric_rewrite_rate = 0.0;
};

/// Returns a corrupted copy of `record` under the schema's field kinds.
/// Corruption never changes field arity; determinism follows the RNG.
er::Record CorruptRecord(const er::Record& record, const er::Schema& schema,
                         const CorruptionOptions& options, Rng& rng);

/// Applies character/token-level corruption to one text payload (exposed for
/// tests and for callers corrupting free-standing strings).
std::string CorruptText(const std::string& text, const CorruptionOptions& options,
                        Rng& rng);

}  // namespace datagen
}  // namespace oasis

#endif  // OASIS_DATAGEN_CORRUPTOR_H_
