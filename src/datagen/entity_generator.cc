#include "datagen/entity_generator.h"

#include <cmath>

namespace oasis {
namespace datagen {

using er::FieldKind;
using er::FieldSpec;
using er::FieldValue;
using er::Record;
using er::Schema;

EntityGenerator::EntityGenerator(Domain domain, Rng rng)
    : domain_(domain), rng_(rng.Split()), words_(rng.Split()) {
  switch (domain_) {
    case Domain::kECommerce:
      schema_ = Schema({{"name", FieldKind::kShortText},
                        {"description", FieldKind::kLongText},
                        {"manufacturer", FieldKind::kShortText},
                        {"price", FieldKind::kNumeric}});
      brands_ = words_.Vocabulary(60, 2, 3);
      nouns_ = words_.Vocabulary(120, 2, 3);
      descriptors_ = words_.Vocabulary(80, 1, 2);
      topic_words_ = words_.Vocabulary(400, 1, 3);
      break;
    case Domain::kRestaurant:
      schema_ = Schema({{"name", FieldKind::kShortText},
                        {"address", FieldKind::kShortText},
                        {"city", FieldKind::kShortText},
                        {"cuisine", FieldKind::kShortText}});
      nouns_ = words_.Vocabulary(150, 2, 3);
      cities_ = words_.Vocabulary(12, 2, 3);
      cuisines_ = words_.Vocabulary(15, 2, 3);
      streets_ = words_.Vocabulary(80, 2, 3);
      break;
    case Domain::kCitation:
      schema_ = Schema({{"title", FieldKind::kShortText},
                        {"authors", FieldKind::kShortText},
                        {"venue", FieldKind::kShortText},
                        {"year", FieldKind::kNumeric}});
      topic_words_ = words_.Vocabulary(300, 1, 3);
      venues_ = words_.Vocabulary(25, 2, 4);
      surnames_.reserve(200);
      for (int i = 0; i < 200; ++i) surnames_.push_back(words_.Surname());
      break;
  }
}

Record EntityGenerator::GenerateEntity() {
  switch (domain_) {
    case Domain::kECommerce:
      return GenerateProduct();
    case Domain::kRestaurant:
      return GenerateRestaurant();
    case Domain::kCitation:
      return GenerateCitation();
  }
  return Record{};
}

Record EntityGenerator::GenerateProduct() {
  const std::string& brand = brands_[words_.ZipfIndex(brands_.size())];
  const std::string& noun = nouns_[words_.ZipfIndex(nouns_.size())];
  const std::string model = words_.ModelCode();

  std::string name = brand + " " + noun;
  if (rng_.NextBernoulli(0.6)) {
    name += " " + descriptors_[words_.ZipfIndex(descriptors_.size())];
  }
  name += " " + model;

  // Description: 15-40 topical words seeded with the identifying tokens so
  // matches share long-text content too.
  std::string description = brand + " " + noun + " " + model;
  const size_t extra = 15 + rng_.NextBounded(26);
  for (size_t i = 0; i < extra; ++i) {
    description += " " + topic_words_[words_.ZipfIndex(topic_words_.size())];
  }

  // Log-normal price: most products cheap, a long expensive tail.
  const double price = std::exp(3.0 + 1.2 * rng_.NextGaussian());

  Record record;
  record.values.push_back(FieldValue::Text(name));
  record.values.push_back(FieldValue::Text(description));
  record.values.push_back(FieldValue::Text(brand));
  record.values.push_back(FieldValue::Number(std::round(price * 100.0) / 100.0));
  return record;
}

Record EntityGenerator::GenerateRestaurant() {
  std::string name = nouns_[words_.ZipfIndex(nouns_.size())];
  static const char* const kSuffixes[] = {"cafe",  "bistro", "grill",
                                          "house", "garden", "kitchen"};
  if (rng_.NextBernoulli(0.7)) {
    name += " ";
    name += kSuffixes[rng_.NextBounded(6)];
  }

  std::string address = std::to_string(1 + rng_.NextBounded(9999)) + " " +
                        streets_[words_.ZipfIndex(streets_.size())];
  static const char* const kRoadKinds[] = {"st", "ave", "blvd", "rd", "ln"};
  address += " ";
  address += kRoadKinds[rng_.NextBounded(5)];

  Record record;
  record.values.push_back(FieldValue::Text(name));
  record.values.push_back(FieldValue::Text(address));
  record.values.push_back(
      FieldValue::Text(cities_[words_.ZipfIndex(cities_.size())]));
  record.values.push_back(
      FieldValue::Text(cuisines_[words_.ZipfIndex(cuisines_.size())]));
  return record;
}

Record EntityGenerator::GenerateCitation() {
  std::string title;
  const size_t title_words = 4 + rng_.NextBounded(7);
  for (size_t i = 0; i < title_words; ++i) {
    if (i > 0) title += " ";
    title += topic_words_[words_.ZipfIndex(topic_words_.size())];
  }

  std::string authors;
  const size_t num_authors = 1 + rng_.NextBounded(4);
  for (size_t i = 0; i < num_authors; ++i) {
    if (i > 0) authors += ", ";
    authors.push_back(static_cast<char>('A' + rng_.NextBounded(26)));
    authors += ". " + surnames_[words_.ZipfIndex(surnames_.size())];
  }

  Record record;
  record.values.push_back(FieldValue::Text(title));
  record.values.push_back(FieldValue::Text(authors));
  record.values.push_back(
      FieldValue::Text(venues_[words_.ZipfIndex(venues_.size())]));
  record.values.push_back(
      FieldValue::Number(1980.0 + static_cast<double>(rng_.NextBounded(36))));
  return record;
}

}  // namespace datagen
}  // namespace oasis
