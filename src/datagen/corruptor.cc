#include "datagen/corruptor.h"

#include <algorithm>
#include <cmath>

#include "er/tokenize.h"

namespace oasis {
namespace datagen {

namespace {

/// One random character edit inside a token: substitute, insert, delete or
/// swap adjacent characters.
std::string CharEdit(std::string token, Rng& rng) {
  if (token.empty()) return token;
  const uint64_t kind = rng.NextBounded(4);
  const size_t pos = static_cast<size_t>(rng.NextBounded(token.size()));
  const char random_char = static_cast<char>('a' + rng.NextBounded(26));
  switch (kind) {
    case 0:  // substitute
      token[pos] = random_char;
      break;
    case 1:  // insert
      token.insert(token.begin() + static_cast<int64_t>(pos), random_char);
      break;
    case 2:  // delete
      if (token.size() > 1) token.erase(token.begin() + static_cast<int64_t>(pos));
      break;
    case 3:  // swap adjacent
      if (pos + 1 < token.size()) std::swap(token[pos], token[pos + 1]);
      break;
  }
  return token;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const auto& token : tokens) {
    if (token.empty()) continue;
    if (!out.empty()) out += " ";
    out += token;
  }
  return out;
}

std::string NoiseWord(Rng& rng) {
  static const char* const kSyllables[] = {"ka", "re", "mo", "li", "tu",
                                           "sa", "ve", "no", "pi", "da"};
  std::string word;
  const size_t syllables = 2 + rng.NextBounded(2);
  for (size_t s = 0; s < syllables; ++s) {
    word += kSyllables[rng.NextBounded(10)];
  }
  return word;
}

}  // namespace

std::string CorruptText(const std::string& text, const CorruptionOptions& options,
                        Rng& rng) {
  std::vector<std::string> tokens = er::WordTokens(text);
  if (tokens.empty()) return text;

  // Token drops (never drop below one token so the field stays non-empty).
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (kept.empty() || !rng.NextBernoulli(options.token_drop_rate)) {
      kept.push_back(tokens[i]);
    }
  }

  // Adjacent token swaps.
  for (size_t i = 0; i + 1 < kept.size(); ++i) {
    if (rng.NextBernoulli(options.token_swap_rate)) {
      std::swap(kept[i], kept[i + 1]);
    }
  }

  // Per-token abbreviation and character edits.
  for (auto& token : kept) {
    if (token.size() > 4 && rng.NextBernoulli(options.abbreviation_rate)) {
      token = token.substr(0, 3 + rng.NextBounded(2));
    }
    if (rng.NextBernoulli(options.char_edit_rate)) {
      token = CharEdit(std::move(token), rng);
    }
  }
  return JoinTokens(kept);
}

er::Record CorruptRecord(const er::Record& record, const er::Schema& schema,
                         const CorruptionOptions& options, Rng& rng) {
  er::Record out;
  out.values.reserve(record.values.size());
  for (size_t f = 0; f < record.values.size(); ++f) {
    const er::FieldValue& value = record.values[f];
    if (value.missing || rng.NextBernoulli(options.missing_rate)) {
      out.values.push_back(er::FieldValue::Missing());
      continue;
    }
    switch (schema.field(f).kind) {
      case er::FieldKind::kShortText:
      case er::FieldKind::kLongText: {
        const bool rewritable = schema.field(f).kind == er::FieldKind::kLongText;
        if (rewritable && rng.NextBernoulli(options.field_rewrite_rate)) {
          // Source-specific rewrite: unrelated noise words of similar length.
          const size_t n = std::max<size_t>(3, er::WordTokens(value.text).size() / 2);
          std::vector<std::string> words;
          for (size_t i = 0; i < n; ++i) words.push_back(NoiseWord(rng));
          out.values.push_back(er::FieldValue::Text(JoinTokens(words)));
        } else {
          out.values.push_back(
              er::FieldValue::Text(CorruptText(value.text, options, rng)));
        }
        break;
      }
      case er::FieldKind::kNumeric: {
        if (rng.NextBernoulli(options.numeric_rewrite_rate)) {
          out.values.push_back(er::FieldValue::Number(
              value.number * (0.2 + 1.6 * rng.NextDouble())));
        } else {
          const double jitter = 1.0 + options.numeric_jitter * rng.NextGaussian();
          out.values.push_back(er::FieldValue::Number(value.number * jitter));
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace datagen
}  // namespace oasis
