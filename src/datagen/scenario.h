#ifndef OASIS_DATAGEN_SCENARIO_H_
#define OASIS_DATAGEN_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "experiments/config.h"
#include "oracle/oracle.h"
#include "sampling/sampler.h"

namespace oasis {
namespace datagen {

/// Families of adversarial evaluation-pool generators. Every family reduces
/// the pool to EXACT confusion counts first (TP/FP/FN/TN as integers fixed
/// before a single score is drawn), so the pool-level F-measure is known *by
/// construction* — the property that makes every scenario self-verifying
/// (docs/SCENARIOS.md). Families differ in how the counts are derived from
/// the spec's knobs and in the shape of the score distribution laid over
/// them.
enum class ScenarioFamily {
  /// Stripe-style exact construction: TP/FP/FN given directly in the spec,
  /// F fixed by design (the stripe_ctrl_alpha idea from the join-sampling
  /// literature, transplanted to F-measure pools).
  kExactCount,
  /// Extreme class imbalance: match_rate down to 1e-5, with the classifier's
  /// recall/precision realised as exactly rounded counts.
  kImbalance,
  /// Heavy stratum skew: scores concentrate mass near the negative extreme
  /// (power-law within each class band) so CSF produces one enormous stratum
  /// and a tail of tiny ones — the paper's Figure 1 shape, exaggerated.
  kStratumSkew,
  /// Clustered heterogeneous strata: scores drawn from narrow, well-separated
  /// clusters of very different sizes.
  kClustered,
  /// Near-degenerate: every item carries the same score, so any score-based
  /// stratifier collapses to a single non-empty stratum.
  kSingleStratum,
  /// Near-degenerate: every item is a true match (no negatives exist).
  kAllMatch,
  /// Near-degenerate: no true matches at all (F = 0 when anything is
  /// predicted positive and alpha > 0).
  kNoMatch,
  /// Adversarial score inversion — the Bezakova-et-al-style SIS breaker:
  /// scores are anti-correlated with the truth inside each prediction band,
  /// and almost all true-match mass hides at the score minimum where a
  /// score-driven static instrumental distribution puts vanishing mass.
  /// A static importance sampler's weights collapse here (its
  /// DegeneracyMonitor must trip); OASIS adapts away from the lie and stays
  /// healthy.
  kScoreInversion,
  /// Noisy-oracle preset: a standard pool whose oracle flips labels with a
  /// configured rate; the estimator's asymptotic target is adjusted
  /// analytically (still exact by construction).
  kNoisyOracle,
};

/// Canonical lower-case name of a family ("exact-count", "imbalance", ...).
std::string ScenarioFamilyName(ScenarioFamily family);

/// Inverse of ScenarioFamilyName; fails on unknown names.
Result<ScenarioFamily> ScenarioFamilyFromName(const std::string& name);

/// A difficulty-controlled scenario: everything needed to regenerate its
/// pool bit-for-bit. Serialisable to the apps' `key = value` config format
/// (ToConfigString / FromConfig), so gen -> run -> verify round-trips through
/// files.
struct ScenarioSpec {
  /// Scenario name, used in file names and reports.
  std::string name = "scenario";
  /// Generator family; selects both the count derivation and the score shape.
  ScenarioFamily family = ScenarioFamily::kExactCount;
  /// Number of pool items N.
  int64_t pool_size = 10000;
  /// Generation seed; pools are a pure function of (spec, seed).
  uint64_t seed = 1;
  /// F-measure weight the scenario's exact truth is computed at.
  double alpha = 0.5;

  // --- kExactCount knobs --------------------------------------------------
  /// Exact true positives (kExactCount only; other families derive counts).
  int64_t true_positives = 0;
  /// Exact false positives (kExactCount only).
  int64_t false_positives = 0;
  /// Exact false negatives (kExactCount only).
  int64_t false_negatives = 0;

  // --- Derived-count knobs (all families except kExactCount) --------------
  /// Fraction of pool items that are true matches; matches are realised as
  /// round(match_rate * pool_size) exactly (imbalance presets go to 1e-5).
  double match_rate = 0.01;
  /// The synthetic classifier's recall: TP = round(recall * matches).
  double classifier_recall = 0.8;
  /// The synthetic classifier's precision: FP = TP * (1-p)/p, rounded.
  double classifier_precision = 0.8;

  // --- Family-specific difficulty knobs -----------------------------------
  /// kStratumSkew: power-law exponent of the within-band score draw (u^skew);
  /// larger = heavier concentration at the band's low edge.
  double skew_exponent = 6.0;
  /// kClustered: number of score clusters per prediction band.
  int64_t clusters_per_band = 4;
  /// kNoisyOracle: symmetric label flip rate in [0, 0.5); the exact truth
  /// target is adjusted for the flip analytically. 0 elsewhere.
  double flip_rate = 0.0;

  /// Whether this pool is designed to degenerate a *static* importance
  /// sampler's weights (oasis_verify and the property tests assert the
  /// DegeneracyMonitor trips exactly on these). Defaulted by family via
  /// Resolve(); kScoreInversion sets it.
  bool expect_sis_degeneracy = false;

  /// Scenario-specific |F-hat - F| tolerance used by default when verifying
  /// runs on this pool (adversarial presets carry wider bands).
  double verify_tolerance = 0.05;

  /// Structural validation of the knobs (sizes, rates, count fit).
  Status Validate() const;

  /// Serialises every field as `key = value` lines, parseable by FromConfig.
  std::string ToConfigString() const;

  /// Parses a spec from a ConfigMap (unknown keys fail via
  /// CheckAllKeysUsed so config typos surface loudly).
  static Result<ScenarioSpec> FromConfig(const experiments::ConfigMap& config);
};

/// A generated scenario pool: the estimator's view plus the hidden truth and
/// the exact (constructed) measures every run on this pool is judged against.
struct ScenarioPool {
  /// The resolved spec the pool was generated from.
  ScenarioSpec spec;
  /// Scores + predictions (what samplers see).
  ScoredPool scored;
  /// Hidden ground truth per item (feeds the oracle; never the estimator).
  std::vector<uint8_t> truth;
  /// Exact confusion counts, fixed before score generation.
  ConfusionCounts counts;
  /// The estimator's asymptotic target: F_alpha from `counts` for clean
  /// oracles, the flip-adjusted value for kNoisyOracle (see
  /// docs/SCENARIOS.md for the closed form).
  double true_f = 0.0;
  /// Precision/recall/F from the clean counts at spec.alpha (reporting).
  Measures clean_measures;
};

/// Generates the pool for `spec`. Deterministic: two calls with equal specs
/// return bit-identical pools. Fails on invalid specs.
Result<ScenarioPool> GenerateScenario(const ScenarioSpec& spec);

/// Builds the oracle a run on this pool should label against: a
/// GroundTruthOracle, or a NoisyOracle with the spec's flip rate for
/// kNoisyOracle pools.
Result<std::unique_ptr<Oracle>> MakeScenarioOracle(const ScenarioPool& pool);

/// The built-in catalogue of named difficulty presets (stripe-f90,
/// imbalance-1e3, skew-heavy, single-stratum, sis-inversion, ...); see
/// docs/SCENARIOS.md for the full table.
const std::vector<ScenarioSpec>& ScenarioCatalog();

/// Catalogue lookup by name; the error message lists the known names.
Result<ScenarioSpec> ScenarioByName(const std::string& name);

}  // namespace datagen
}  // namespace oasis

#endif  // OASIS_DATAGEN_SCENARIO_H_
