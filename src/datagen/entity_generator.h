#ifndef OASIS_DATAGEN_ENTITY_GENERATOR_H_
#define OASIS_DATAGEN_ENTITY_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/names.h"
#include "er/record.h"

namespace oasis {
namespace datagen {

/// Entity domains mirroring the paper's evaluation datasets: e-commerce
/// products (Abt-Buy / Amazon-GoogleProducts), restaurant listings
/// (restaurant) and bibliographic citations (cora / DBLP-ACM).
enum class Domain { kECommerce, kRestaurant, kCitation };

/// Generates canonical entity records for a domain. Each call to
/// GenerateEntity() invents a new distinct underlying entity; two-source and
/// deduplication datasets then derive per-source records by corrupting the
/// canonical record (see corruptor.h).
class EntityGenerator {
 public:
  /// Creates a generator for `domain`, seeded by `rng`.
  EntityGenerator(Domain domain, Rng rng);

  /// Schema of the generated records:
  ///  - kECommerce: name (short), description (long), manufacturer (short),
  ///    price (numeric)
  ///  - kRestaurant: name (short), address (short), city (short),
  ///    cuisine (short)
  ///  - kCitation: title (short), authors (short), venue (short),
  ///    year (numeric)
  const er::Schema& schema() const { return schema_; }
  /// The domain the generator was created for.
  Domain domain() const { return domain_; }

  /// Canonical record for a brand-new entity.
  er::Record GenerateEntity();

 private:
  er::Record GenerateProduct();
  er::Record GenerateRestaurant();
  er::Record GenerateCitation();

  Domain domain_;
  Rng rng_;
  WordGenerator words_;
  er::Schema schema_;

  // Shared vocabularies so entities overlap in tokens (hard negatives need
  // lexical collisions, like real product catalogues).
  std::vector<std::string> brands_;
  std::vector<std::string> nouns_;
  std::vector<std::string> descriptors_;
  std::vector<std::string> cities_;
  std::vector<std::string> cuisines_;
  std::vector<std::string> streets_;
  std::vector<std::string> venues_;
  std::vector<std::string> topic_words_;
  std::vector<std::string> surnames_;
};

}  // namespace datagen
}  // namespace oasis

#endif  // OASIS_DATAGEN_ENTITY_GENERATOR_H_
