#ifndef OASIS_DATAGEN_NAMES_H_
#define OASIS_DATAGEN_NAMES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"

namespace oasis {

/// \namespace oasis::datagen
/// Synthetic dataset generation: entity/corruption generators and the
/// paper's benchmark dataset recipes (Tables 1-2).
namespace datagen {

/// Deterministic pronounceable-word generator used to synthesise entity
/// vocabulary (brand names, product words, street names, surnames, ...).
/// Words are built from consonant/vowel syllables so that corrupted variants
/// stay plausibly string-similar — which is what gives the synthetic
/// datasets realistic similarity-score distributions.
class WordGenerator {
 public:
  /// Creates a generator seeded by `rng`.
  explicit WordGenerator(Rng rng);

  /// One pronounceable word with the given syllable count range.
  std::string Word(size_t min_syllables = 2, size_t max_syllables = 3);

  /// A vocabulary of `count` distinct words.
  std::vector<std::string> Vocabulary(size_t count, size_t min_syllables = 2,
                                      size_t max_syllables = 3);

  /// A capitalised person surname ("Veldson").
  std::string Surname();

  /// Initial + surname author string ("J. Veldson").
  std::string Author();

  /// Alphanumeric model code ("XR-4500").
  std::string ModelCode();

  /// Samples an index from {0, ..., n-1} with a Zipf-like (1/(rank+1)) bias,
  /// used to give token frequencies a realistic skew.
  size_t ZipfIndex(size_t n);

 private:
  Rng rng_;
};

}  // namespace datagen
}  // namespace oasis

#endif  // OASIS_DATAGEN_NAMES_H_
