#include "strata/strata.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace oasis {

Result<Strata> Strata::FromAssignment(std::span<const int32_t> assignment) {
  if (assignment.empty()) {
    return Status::InvalidArgument("Strata: empty assignment");
  }
  if (assignment.size() >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    // Item ids are stored as int32_t; a larger pool would silently wrap the
    // static_cast below into negative indices. Reject explicitly (pools past
    // 2^31 items need a wider id type, not truncation).
    return Status::InvalidArgument(
        "Strata: pool too large for int32_t item ids");
  }
  int32_t max_index = -1;
  for (int32_t a : assignment) {
    if (a < 0) return Status::InvalidArgument("Strata: negative stratum index");
    max_index = std::max(max_index, a);
  }

  // Bucket items, then compact away empty strata while preserving order.
  std::vector<std::vector<int32_t>> buckets(static_cast<size_t>(max_index) + 1);
  for (size_t i = 0; i < assignment.size(); ++i) {
    buckets[static_cast<size_t>(assignment[i])].push_back(static_cast<int32_t>(i));
  }

  Strata strata;
  strata.stratum_of_.assign(assignment.size(), -1);
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    const int32_t k = static_cast<int32_t>(strata.allocations_.size());
    for (int32_t item : bucket) strata.stratum_of_[item] = k;
    strata.allocations_.push_back(std::move(bucket));
  }

  const double n = static_cast<double>(assignment.size());
  strata.weights_.resize(strata.allocations_.size());
  for (size_t k = 0; k < strata.allocations_.size(); ++k) {
    strata.weights_[k] = static_cast<double>(strata.allocations_[k].size()) / n;
  }
  return strata;
}

Result<Strata> Strata::FromScoreEdges(std::span<const double> scores,
                                      std::span<const double> edges) {
  if (scores.empty()) return Status::InvalidArgument("Strata: empty scores");
  if (edges.size() < 2) {
    return Status::InvalidArgument("Strata: need at least two edges");
  }
  for (size_t i = 1; i < edges.size(); ++i) {
    if (!(edges[i] > edges[i - 1])) {
      return Status::InvalidArgument("Strata: edges must be strictly increasing");
    }
  }

  const size_t num_bins = edges.size() - 1;
  std::vector<int32_t> assignment(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    const double s = scores[i];
    if (std::isnan(s)) return Status::InvalidArgument("Strata: NaN score");
    // upper_bound gives the first edge strictly greater than s, so bin j
    // covers [edges[j], edges[j+1}); clamp out-of-range and top-edge values.
    auto it = std::upper_bound(edges.begin(), edges.end(), s);
    int64_t bin = static_cast<int64_t>(it - edges.begin()) - 1;
    bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(num_bins) - 1);
    assignment[i] = static_cast<int32_t>(bin);
  }
  return FromAssignment(assignment);
}

int32_t Strata::SampleItem(size_t k, Rng& rng) const {
  OASIS_DCHECK(k < allocations_.size());
  const auto& items = allocations_[k];
  OASIS_DCHECK(!items.empty());
  return items[rng.NextBounded(items.size())];
}

std::vector<double> Strata::MeanPerStratum(std::span<const double> values) const {
  OASIS_CHECK_EQ(values.size(), stratum_of_.size());
  std::vector<double> means(num_strata(), 0.0);
  for (size_t k = 0; k < num_strata(); ++k) {
    double acc = 0.0;
    for (int32_t item : allocations_[k]) acc += values[static_cast<size_t>(item)];
    means[k] = acc / static_cast<double>(allocations_[k].size());
  }
  return means;
}

std::vector<double> Strata::MeanPerStratum(std::span<const uint8_t> values) const {
  OASIS_CHECK_EQ(values.size(), stratum_of_.size());
  std::vector<double> means(num_strata(), 0.0);
  for (size_t k = 0; k < num_strata(); ++k) {
    double acc = 0.0;
    for (int32_t item : allocations_[k]) {
      acc += values[static_cast<size_t>(item)] != 0 ? 1.0 : 0.0;
    }
    means[k] = acc / static_cast<double>(allocations_[k].size());
  }
  return means;
}

Status Strata::Validate() const {
  if (allocations_.empty()) return Status::FailedPrecondition("Strata: no strata");
  std::vector<uint8_t> seen(stratum_of_.size(), 0);
  size_t total = 0;
  for (size_t k = 0; k < allocations_.size(); ++k) {
    if (allocations_[k].empty()) {
      return Status::FailedPrecondition("Strata: empty stratum survived compaction");
    }
    for (int32_t item : allocations_[k]) {
      if (item < 0 || static_cast<size_t>(item) >= stratum_of_.size()) {
        return Status::FailedPrecondition("Strata: item index out of range");
      }
      if (seen[static_cast<size_t>(item)]) {
        return Status::FailedPrecondition("Strata: item in multiple strata");
      }
      seen[static_cast<size_t>(item)] = 1;
      if (stratum_of_[static_cast<size_t>(item)] != static_cast<int32_t>(k)) {
        return Status::FailedPrecondition("Strata: stratum_of mismatch");
      }
      ++total;
    }
  }
  if (total != stratum_of_.size()) {
    return Status::FailedPrecondition("Strata: not all items allocated");
  }
  double weight_sum = 0.0;
  for (double w : weights_) weight_sum += w;
  if (std::abs(weight_sum - 1.0) > 1e-9) {
    return Status::FailedPrecondition("Strata: weights do not sum to 1");
  }
  return Status::OK();
}

}  // namespace oasis
