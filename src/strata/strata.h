#ifndef OASIS_STRATA_STRATA_H_
#define OASIS_STRATA_STRATA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace oasis {

/// A disjoint partition of pool items {0, ..., N-1} into K strata.
///
/// Strata are the parameter-reduction device of the paper (Sec. 4.2.1): items
/// within a stratum are treated as exchangeable by the Bayesian label model,
/// so the N oracle probabilities collapse to K per-stratum parameters.
///
/// Invariants (checked by Validate and asserted in debug builds):
///  * every item belongs to exactly one stratum;
///  * no stratum is empty;
///  * weights[k] == |P_k| / N and sums to 1.
class Strata {
 public:
  Strata() = default;

  /// Builds strata from an item->stratum assignment vector. Empty strata are
  /// removed and indices compacted (preserving order), mirroring Algorithm 1
  /// line 19. Fails when `assignment` is empty or contains a negative index.
  static Result<Strata> FromAssignment(std::span<const int32_t> assignment);

  /// Builds strata by binning `scores` into the half-open intervals defined
  /// by `edges` (ascending; last interval closed above). Items below/above
  /// the range are clamped into the first/last interval. Empty strata are
  /// removed.
  static Result<Strata> FromScoreEdges(std::span<const double> scores,
                                       std::span<const double> edges);

  /// Number of strata K (after empty-stratum removal).
  size_t num_strata() const { return allocations_.size(); }

  /// Total number of pool items N.
  size_t num_items() const { return stratum_of_.size(); }

  /// Item indices allocated to stratum k.
  const std::vector<int32_t>& items(size_t k) const { return allocations_[k]; }

  /// Stratum index of a pool item.
  int32_t stratum_of(int64_t item) const { return stratum_of_[item]; }

  /// Stratum population weight omega_k = |P_k| / N.
  double weight(size_t k) const { return weights_[k]; }
  const std::vector<double>& weights() const { return weights_; }

  /// |P_k|.
  size_t size(size_t k) const { return allocations_[k].size(); }

  /// Draws an item uniformly at random from stratum k.
  int32_t SampleItem(size_t k, Rng& rng) const;

  /// Mean of `values` (one entry per pool item) within each stratum; used for
  /// stratum mean scores (Fig. 1), mean predictions lambda_k, and tests.
  std::vector<double> MeanPerStratum(std::span<const double> values) const;

  /// Mean of a binary indicator (one entry per pool item) within each stratum.
  std::vector<double> MeanPerStratum(std::span<const uint8_t> values) const;

  /// Verifies the structural invariants listed above.
  Status Validate() const;

 private:
  std::vector<std::vector<int32_t>> allocations_;
  std::vector<int32_t> stratum_of_;
  std::vector<double> weights_;
};

}  // namespace oasis

#endif  // OASIS_STRATA_STRATA_H_
