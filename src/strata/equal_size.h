#ifndef OASIS_STRATA_EQUAL_SIZE_H_
#define OASIS_STRATA_EQUAL_SIZE_H_

#include <cstddef>
#include <span>

#include "common/status.h"
#include "strata/strata.h"

namespace oasis {

/// Equal-size stratification: items are ranked by score and split into K
/// consecutive rank groups of (near-)equal population.
///
/// This is the alternative stratification design mentioned by the paper
/// (from Druck & McCallum). It guarantees balanced stratum sizes but, unlike
/// CSF, lets score variance concentrate inside strata — the ablation benches
/// compare the two. Ties are broken by item index so results are
/// deterministic. K is capped at the number of items.
Result<Strata> StratifyEqualSize(std::span<const double> scores, size_t num_strata);

}  // namespace oasis

#endif  // OASIS_STRATA_EQUAL_SIZE_H_
