#ifndef OASIS_STRATA_CSF_H_
#define OASIS_STRATA_CSF_H_

#include <cstddef>
#include <span>

#include "common/status.h"
#include "strata/strata.h"

namespace oasis {

/// Options for cumulative-sqrt-F stratification (Algorithm 1 of the paper).
struct CsfOptions {
  /// Desired number of strata K-tilde. The result is NOT guaranteed to have
  /// exactly this many strata: score-histogram granularity and empty-stratum
  /// removal can reduce it (the paper makes the same caveat).
  size_t target_strata = 30;

  /// Number of equal-width histogram bins M used to estimate the score
  /// distribution. Must be >= target_strata for the cut search to have room.
  size_t histogram_bins = 0;  // 0 -> max(1000, 10 * target_strata)

  /// Stratify on the logit of the scores instead of the raw scores. Only
  /// meaningful for probability scores in [0, 1]. Probability scores under
  /// extreme class imbalance concentrate almost all mass within a sliver of
  /// [0, 1]; equal-width histogram bins cannot resolve that region, merging
  /// heterogeneous items into one stratum. The logit transform is monotone
  /// (identical stratum semantics) but spreads both tails so CSF can cut
  /// them. Scores are clamped to [1e-9, 1 - 1e-9] before the transform.
  bool logit_transform = false;
};

/// Stratifies pool items by similarity score using the cumulative-sqrt-F
/// (CSF) rule of Dalenius & Hodges: strata are equal-width intervals on the
/// cumulative sqrt(frequency) scale, which approximately minimises
/// intra-stratum score variance.
///
/// Under the extreme class imbalance of ER this produces the characteristic
/// shape of the paper's Figure 1: enormous low-score strata and tiny
/// high-score strata.
Result<Strata> StratifyCsf(std::span<const double> scores, const CsfOptions& options);

/// Convenience overload with defaults except the stratum count.
Result<Strata> StratifyCsf(std::span<const double> scores, size_t target_strata);

/// Convenience overload selecting the logit transform when the scores are
/// probabilities — the right default for pools produced by calibrated
/// classifiers.
Result<Strata> StratifyCsf(std::span<const double> scores, size_t target_strata,
                           bool scores_are_probabilities);

}  // namespace oasis

#endif  // OASIS_STRATA_CSF_H_
