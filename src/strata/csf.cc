#include "strata/csf.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/histogram.h"
#include "stats/transforms.h"

namespace oasis {

Result<Strata> StratifyCsf(std::span<const double> scores, const CsfOptions& options) {
  if (scores.empty()) return Status::InvalidArgument("StratifyCsf: empty scores");
  if (options.target_strata == 0) {
    return Status::InvalidArgument("StratifyCsf: target_strata must be positive");
  }
  // The logit transform is monotone, so stratifying the transformed scores
  // yields the same kind of score-interval strata with better resolution in
  // the tails of probability-valued scores.
  std::vector<double> transformed;
  if (options.logit_transform) {
    transformed.reserve(scores.size());
    for (double s : scores) {
      if (std::isnan(s)) {
        return Status::InvalidArgument("StratifyCsf: NaN score");
      }
      transformed.push_back(Logit(s, 1e-9));
    }
    scores = transformed;
  }
  size_t bins = options.histogram_bins;
  if (bins == 0) bins = std::max<size_t>(1000, 10 * options.target_strata);
  if (bins < options.target_strata) {
    return Status::InvalidArgument(
        "StratifyCsf: histogram_bins must be >= target_strata");
  }

  // Algorithm 1, lines 1-3: histogram of scores, then the cumulative
  // sqrt-frequency curve over the bins.
  OASIS_ASSIGN_OR_RETURN(Histogram hist, BuildHistogram(scores, bins));
  std::vector<double> csf(bins);
  double acc = 0.0;
  for (size_t j = 0; j < bins; ++j) {
    acc += std::sqrt(static_cast<double>(hist.counts[j]));
    csf[j] = acc;
  }
  const double total = csf.back();
  if (total <= 0.0) {
    return Status::Internal("StratifyCsf: degenerate score histogram");
  }

  // Lines 4-18: cut the CSF scale into target_strata equal-width pieces and
  // map each cut back to a histogram bin edge on the score scale. Duplicate
  // cuts (several targets landing in one bin) collapse, so the final K can be
  // smaller than requested.
  const double width = total / static_cast<double>(options.target_strata);
  std::vector<double> stratum_edges;
  stratum_edges.push_back(hist.edges.front());
  size_t j = 0;
  for (size_t k = 1; k < options.target_strata; ++k) {
    const double target = width * static_cast<double>(k);
    while (j < bins && csf[j] < target) ++j;
    if (j >= bins - 1) break;  // Remaining cuts would coincide with the top edge.
    const double edge = hist.edges[j + 1];
    if (edge > stratum_edges.back()) stratum_edges.push_back(edge);
  }
  stratum_edges.push_back(hist.edges.back());

  // Line 19: allocate items to strata; FromScoreEdges drops empty strata.
  return Strata::FromScoreEdges(scores, stratum_edges);
}

Result<Strata> StratifyCsf(std::span<const double> scores, size_t target_strata) {
  CsfOptions options;
  options.target_strata = target_strata;
  return StratifyCsf(scores, options);
}

Result<Strata> StratifyCsf(std::span<const double> scores, size_t target_strata,
                           bool scores_are_probabilities) {
  CsfOptions options;
  options.target_strata = target_strata;
  options.logit_transform = scores_are_probabilities;
  return StratifyCsf(scores, options);
}

}  // namespace oasis
