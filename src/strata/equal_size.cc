#include "strata/equal_size.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace oasis {

Result<Strata> StratifyEqualSize(std::span<const double> scores, size_t num_strata) {
  if (scores.empty()) return Status::InvalidArgument("StratifyEqualSize: empty scores");
  if (num_strata == 0) {
    return Status::InvalidArgument("StratifyEqualSize: num_strata must be positive");
  }
  for (double s : scores) {
    if (std::isnan(s)) return Status::InvalidArgument("StratifyEqualSize: NaN score");
  }
  const size_t n = scores.size();
  const size_t k_eff = std::min(num_strata, n);

  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });

  // Distribute n items over k_eff groups; the first (n % k_eff) groups get one
  // extra item so sizes differ by at most one.
  std::vector<int32_t> assignment(n, 0);
  const size_t base = n / k_eff;
  const size_t extra = n % k_eff;
  size_t pos = 0;
  for (size_t k = 0; k < k_eff; ++k) {
    const size_t group = base + (k < extra ? 1 : 0);
    for (size_t i = 0; i < group; ++i) {
      assignment[static_cast<size_t>(order[pos++])] = static_cast<int32_t>(k);
    }
  }
  return Strata::FromAssignment(assignment);
}

}  // namespace oasis
