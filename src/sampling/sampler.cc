#include "sampling/sampler.h"

#include <cmath>

#include "common/logging.h"

namespace oasis {

Status ScoredPool::Validate() const {
  if (scores.empty()) return Status::InvalidArgument("ScoredPool: empty pool");
  if (scores.size() != predictions.size()) {
    return Status::InvalidArgument("ScoredPool: scores/predictions length mismatch");
  }
  for (double s : scores) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("ScoredPool: non-finite score");
    }
    if (scores_are_probabilities && (s < 0.0 || s > 1.0)) {
      return Status::InvalidArgument(
          "ScoredPool: probability score outside [0, 1]");
    }
  }
  for (uint8_t p : predictions) {
    if (p > 1) return Status::InvalidArgument("ScoredPool: prediction not in {0,1}");
  }
  return Status::OK();
}

int64_t ScoredPool::NumPredictedPositives() const {
  int64_t count = 0;
  for (uint8_t p : predictions) count += (p != 0);
  return count;
}

Sampler::Sampler(const ScoredPool* pool, LabelCache* labels, double alpha, Rng rng)
    : pool_(pool), labels_(labels), alpha_(alpha), rng_(rng) {
  OASIS_CHECK(pool != nullptr);
  OASIS_CHECK(labels != nullptr);
  OASIS_CHECK(alpha >= 0.0 && alpha <= 1.0);
  OASIS_CHECK_EQ(pool->size(), labels->oracle().num_items());
}

Result<bool> Sampler::QueryLabel(int64_t item) {
  OASIS_ASSIGN_OR_RETURN(const bool label, labels_->TryQuery(item, rng_));
  ++iterations_;
  return label;
}

Status Sampler::QueryLabels(std::span<const int64_t> items,
                            std::span<uint8_t> out_labels) {
  OASIS_RETURN_NOT_OK(labels_->QueryBatch(items, rng_, out_labels));
  iterations_ += static_cast<int64_t>(items.size());
  return Status::OK();
}

Status Sampler::StepBatch(int64_t n) {
  if (n < 0) {
    return Status::InvalidArgument("StepBatch: n must be non-negative");
  }
  for (int64_t i = 0; i < n; ++i) {
    OASIS_RETURN_NOT_OK(Step());
  }
  return Status::OK();
}

}  // namespace oasis
