#ifndef OASIS_SAMPLING_STRATIFIED_H_
#define OASIS_SAMPLING_STRATIFIED_H_

#include <memory>
#include <vector>

#include "sampling/sampler.h"
#include "strata/strata.h"

namespace oasis {

/// Proportional stratified sampler — the Druck & McCallum baseline.
///
/// Each iteration draws a stratum with probability omega_k = |P_k|/N, then an
/// item uniformly within it, and estimates F_alpha with the stratified
/// estimator: per-stratum sample means of (l * l-hat) and l are combined with
/// the population stratum weights; the predicted-positive mass is known
/// exactly from the pool (no labels needed). The sampling distribution equals
/// the uniform distribution over items, i.e. it is neither adaptive nor
/// biased — which is why the paper finds it barely beats Passive.
class StratifiedSampler : public Sampler {
 public:
  /// `pool` and `labels` must outlive the sampler; `strata` is shared so that
  /// repeated experiment runs reuse one stratification.
  static Result<std::unique_ptr<StratifiedSampler>> Create(
      const ScoredPool* pool, LabelCache* labels,
      std::shared_ptr<const Strata> strata, double alpha, Rng rng);

  Status Step() override;
  Status StepBatch(int64_t n) override;
  EstimateSnapshot Estimate() const override;
  std::string name() const override { return "Stratified"; }

  const Strata& strata() const { return *strata_; }

 private:
  StratifiedSampler(const ScoredPool* pool, LabelCache* labels,
                    std::shared_ptr<const Strata> strata, double alpha, Rng rng);

  std::shared_ptr<const Strata> strata_;
  // Per-stratum tallies over sampled draws.
  std::vector<double> samples_;   // n_k
  std::vector<double> tp_sum_;    // sum of l * l-hat
  std::vector<double> pos_sum_;   // sum of l
  // Known exactly from the pool: per-stratum mean prediction lambda_k.
  std::vector<double> lambda_;
  // Scratch: stratum index per StepBatch draw position (the base class holds
  // the item/label scratch), reused across batches; sized for two chunks so
  // the pipelined scaffold's double-buffered positions fit.
  std::vector<size_t> batch_strata_;
};

}  // namespace oasis

#endif  // OASIS_SAMPLING_STRATIFIED_H_
