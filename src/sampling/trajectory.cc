#include "sampling/trajectory.h"

namespace oasis {

Result<Trajectory> RunTrajectory(Sampler& sampler, const TrajectoryOptions& options) {
  if (options.budget <= 0) {
    return Status::InvalidArgument("RunTrajectory: budget must be positive");
  }
  if (options.checkpoint_every <= 0) {
    return Status::InvalidArgument("RunTrajectory: checkpoint_every must be positive");
  }
  int64_t max_iterations = options.max_iterations;
  if (max_iterations <= 0) max_iterations = 50 * options.budget + 100000;

  Trajectory out;
  for (int64_t b = options.checkpoint_every; b <= options.budget;
       b += options.checkpoint_every) {
    out.budgets.push_back(b);
  }
  out.snapshots.reserve(out.budgets.size());

  size_t next_checkpoint = 0;
  const int64_t start_labels = sampler.labels_consumed();
  while (sampler.labels_consumed() - start_labels < options.budget) {
    if (sampler.iterations() >= max_iterations) {
      out.truncated = true;
      break;
    }
    OASIS_RETURN_NOT_OK(sampler.Step());
    const int64_t consumed = sampler.labels_consumed() - start_labels;
    const EstimateSnapshot snap = sampler.Estimate();
    if (out.first_defined_budget < 0 && snap.f_defined) {
      out.first_defined_budget = consumed;
    }
    while (next_checkpoint < out.budgets.size() &&
           consumed >= out.budgets[next_checkpoint]) {
      out.snapshots.push_back(snap);
      ++next_checkpoint;
    }
  }
  // Fill any remaining checkpoints (early stop) with the final estimate so
  // every trajectory in an experiment has the same shape.
  const EstimateSnapshot final_snap = sampler.Estimate();
  while (next_checkpoint < out.budgets.size()) {
    out.snapshots.push_back(final_snap);
    ++next_checkpoint;
  }
  out.total_iterations = sampler.iterations();
  out.labels_consumed = sampler.labels_consumed() - start_labels;
  return out;
}

}  // namespace oasis
