#include "sampling/trajectory.h"

#include <algorithm>

#include "oracle/remote_oracle.h"

namespace oasis {

namespace {

/// Captures a RemoteOracle's cumulative activity relative to a baseline
/// snapshot taken at RunTrajectory start, so reused oracles (several
/// trajectories against one wrapper) chart each run from zero.
void AppendRemoteCheckpoint(const RemoteOracle& remote,
                            const RemoteOracleStats& start, Trajectory* out) {
  const RemoteOracleStats now = remote.stats();
  out->remote_round_trips.push_back(now.round_trips - start.round_trips);
  out->remote_seconds.push_back(
      static_cast<double>(now.simulated_latency_ns - start.simulated_latency_ns) *
      1e-9);
  out->remote_cost.push_back(now.label_cost - start.label_cost);
}

}  // namespace

Result<Trajectory> RunTrajectory(Sampler& sampler, const TrajectoryOptions& options) {
  if (options.budget <= 0) {
    return Status::InvalidArgument("RunTrajectory: budget must be positive");
  }
  if (options.checkpoint_every <= 0) {
    return Status::InvalidArgument("RunTrajectory: checkpoint_every must be positive");
  }
  int64_t max_iterations = options.max_iterations;
  if (max_iterations <= 0) max_iterations = 50 * options.budget + 100000;

  Trajectory out;
  for (int64_t b = options.checkpoint_every; b <= options.budget;
       b += options.checkpoint_every) {
    out.budgets.push_back(b);
  }
  out.snapshots.reserve(out.budgets.size());

  // Cost-model capture: when the labels flow through a RemoteOracle, chart
  // its cumulative round trips / simulated latency / monetary cost alongside
  // every estimate checkpoint.
  const RemoteOracle* remote =
      dynamic_cast<const RemoteOracle*>(&sampler.labels().oracle());
  RemoteOracleStats remote_start;
  if (remote != nullptr) {
    out.has_remote_stats = true;
    remote_start = remote->stats();
    out.remote_round_trips.reserve(out.budgets.size());
    out.remote_seconds.reserve(out.budgets.size());
    out.remote_cost.reserve(out.budgets.size());
  }

  // Batched stepping through Sampler::StepBatch, exactly equivalent to the
  // original per-step loop:
  //  * Until F first becomes defined we step singly, so first_defined_budget
  //    records the precise label count (once defined, the estimator's
  //    denominator only grows, so F stays defined).
  //  * Afterwards each batch is capped at the label deficit to the next
  //    checkpoint. A step consumes at most one label, so a batch can never
  //    jump past a checkpoint: the checkpoint is reached, if at all, exactly
  //    at the batch's final step, where the snapshot below equals the one the
  //    per-step loop would have taken.
  //  * Batches are also capped at the remaining iteration allowance, so the
  //    max_iterations guard fires at the same iteration as before.
  size_t next_checkpoint = 0;
  const int64_t start_labels = sampler.labels_consumed();
  bool f_defined_seen = false;
  while (sampler.labels_consumed() - start_labels < options.budget) {
    if (sampler.iterations() >= max_iterations) {
      out.truncated = true;
      break;
    }
    int64_t batch = 1;
    if (f_defined_seen) {
      const int64_t consumed = sampler.labels_consumed() - start_labels;
      const int64_t target = next_checkpoint < out.budgets.size()
                                 ? out.budgets[next_checkpoint]
                                 : options.budget;
      batch = std::max<int64_t>(1, target - consumed);
      batch = std::min(batch, max_iterations - sampler.iterations());
    }
    OASIS_RETURN_NOT_OK(sampler.StepBatch(batch));
    const int64_t consumed = sampler.labels_consumed() - start_labels;
    const EstimateSnapshot snap = sampler.Estimate();
    if (!f_defined_seen && snap.f_defined) {
      f_defined_seen = true;
      out.first_defined_budget = consumed;
    }
    while (next_checkpoint < out.budgets.size() &&
           consumed >= out.budgets[next_checkpoint]) {
      out.snapshots.push_back(snap);
      if (remote != nullptr) AppendRemoteCheckpoint(*remote, remote_start, &out);
      ++next_checkpoint;
    }
  }
  // Fill any remaining checkpoints (early stop) with the final estimate so
  // every trajectory in an experiment has the same shape.
  const EstimateSnapshot final_snap = sampler.Estimate();
  while (next_checkpoint < out.budgets.size()) {
    out.snapshots.push_back(final_snap);
    if (remote != nullptr) AppendRemoteCheckpoint(*remote, remote_start, &out);
    ++next_checkpoint;
  }
  out.total_iterations = sampler.iterations();
  out.labels_consumed = sampler.labels_consumed() - start_labels;
  return out;
}

}  // namespace oasis
