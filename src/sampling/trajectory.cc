#include "sampling/trajectory.h"

#include <algorithm>

#include "oracle/remote_oracle.h"
#include "oracle/retry_policy.h"
#include "stats/degeneracy.h"
#include "telemetry/telemetry.h"

namespace oasis {

namespace {

/// Captures a RemoteOracle's cumulative activity relative to a baseline
/// snapshot taken at RunTrajectory start, so reused oracles (several
/// trajectories against one wrapper) chart each run from zero.
void AppendRemoteCheckpoint(const RemoteOracle& remote,
                            const RemoteOracleStats& start, Trajectory* out) {
  const RemoteOracleStats now = remote.stats();
  out->remote_round_trips.push_back(now.round_trips - start.round_trips);
  out->remote_seconds.push_back(
      static_cast<double>(now.simulated_latency_ns - start.simulated_latency_ns) *
      1e-9);
  out->remote_cost.push_back(now.label_cost - start.label_cost);
}

/// Same baseline-relative capture for a RetryingOracle's recovery counters.
void AppendRetryCheckpoint(const RetryingOracle& retrying,
                           const RetryStats& start, Trajectory* out) {
  const RetryStats now = retrying.stats();
  out->oracle_retries.push_back(now.retries - start.retries);
  out->oracle_give_ups.push_back(now.give_ups - start.give_ups);
}

}  // namespace

Result<Trajectory> RunTrajectory(Sampler& sampler, const TrajectoryOptions& options) {
  if (options.budget <= 0) {
    return Status::InvalidArgument("RunTrajectory: budget must be positive");
  }
  if (options.checkpoint_every <= 0) {
    return Status::InvalidArgument("RunTrajectory: checkpoint_every must be positive");
  }
  int64_t max_iterations = options.max_iterations;
  if (max_iterations <= 0) max_iterations = 50 * options.budget + 100000;

  Trajectory out;
  for (int64_t b = options.checkpoint_every; b <= options.budget;
       b += options.checkpoint_every) {
    out.budgets.push_back(b);
  }
  out.snapshots.reserve(out.budgets.size());

  // Cost-model capture: when the labels flow through a RemoteOracle —
  // directly or wrapped inside retry/fault decorators — chart its cumulative
  // round trips / simulated latency / monetary cost alongside every estimate
  // checkpoint.
  const RemoteOracle* remote = FindRemoteOracle(&sampler.labels().oracle());
  RemoteOracleStats remote_start;
  if (remote != nullptr) {
    out.has_remote_stats = true;
    remote_start = remote->stats();
    out.remote_round_trips.reserve(out.budgets.size());
    out.remote_seconds.reserve(out.budgets.size());
    out.remote_cost.reserve(out.budgets.size());
  }

  // Recovery capture: with a RetryingOracle on top of the stack, chart its
  // cumulative retries and give-ups per checkpoint.
  const RetryingOracle* retrying =
      dynamic_cast<const RetryingOracle*>(&sampler.labels().oracle());
  RetryStats retry_start;
  if (retrying != nullptr) {
    out.has_fault_stats = true;
    retry_start = retrying->stats();
    out.oracle_retries.reserve(out.budgets.size());
    out.oracle_give_ups.reserve(out.budgets.size());
  }

  // Degeneracy capture: samplers with a weight-health monitor chart their
  // effective sample size per checkpoint.
  const DegeneracyMonitor* monitor = sampler.degeneracy_monitor();
  if (monitor != nullptr) {
    out.has_degeneracy_stats = true;
    out.ess.reserve(out.budgets.size());
  }

  // Batched stepping through Sampler::StepBatch, exactly equivalent to the
  // original per-step loop:
  //  * Until F first becomes defined we step singly, so first_defined_budget
  //    records the precise label count (once defined, the estimator's
  //    denominator only grows, so F stays defined).
  //  * Afterwards each batch is capped at the label deficit to the next
  //    checkpoint. A step consumes at most one label, so a batch can never
  //    jump past a checkpoint: the checkpoint is reached, if at all, exactly
  //    at the batch's final step, where the snapshot below equals the one the
  //    per-step loop would have taken.
  //  * Batches are also capped at the remaining iteration allowance, so the
  //    max_iterations guard fires at the same iteration as before.
  size_t next_checkpoint = 0;
  const int64_t start_labels = sampler.labels_consumed();
  bool f_defined_seen = false;
  TELEMETRY_SPAN("run_trajectory", "sampler");
  while (sampler.labels_consumed() - start_labels < options.budget) {
    if (sampler.iterations() >= max_iterations) {
      out.truncated = true;
      break;
    }
    int64_t batch = 1;
    if (f_defined_seen) {
      const int64_t consumed = sampler.labels_consumed() - start_labels;
      const int64_t target = next_checkpoint < out.budgets.size()
                                 ? out.budgets[next_checkpoint]
                                 : options.budget;
      batch = std::max<int64_t>(1, target - consumed);
      batch = std::min(batch, max_iterations - sampler.iterations());
    }
    OASIS_RETURN_NOT_OK(sampler.StepBatch(batch));
    const int64_t consumed = sampler.labels_consumed() - start_labels;
    const EstimateSnapshot snap = sampler.Estimate();
    if (!f_defined_seen && snap.f_defined) {
      f_defined_seen = true;
      out.first_defined_budget = consumed;
    }
    while (next_checkpoint < out.budgets.size() &&
           consumed >= out.budgets[next_checkpoint]) {
      out.snapshots.push_back(snap);
      if (remote != nullptr) AppendRemoteCheckpoint(*remote, remote_start, &out);
      if (retrying != nullptr) AppendRetryCheckpoint(*retrying, retry_start, &out);
      if (monitor != nullptr) out.ess.push_back(monitor->ess());
      if (OASIS_TELEMETRY_ON) {
        static telemetry::Counter& checkpoints =
            telemetry::DefaultRegistry().AddCounter(
                "oasis_runner_checkpoints_total",
                "Budget checkpoints reached across all trajectories.");
        checkpoints.Increment();
        if (monitor != nullptr) {
          static telemetry::Gauge& live_ess =
              telemetry::DefaultRegistry().AddGauge(
                  "oasis_runner_live_ess",
                  "Effective sample size at the most recent checkpoint "
                  "(last writer wins across repeats).");
          live_ess.Set(monitor->ess());
        }
      }
      ++next_checkpoint;
    }
  }
  // Fill any remaining checkpoints (early stop) with the final estimate so
  // every trajectory in an experiment has the same shape.
  const EstimateSnapshot final_snap = sampler.Estimate();
  while (next_checkpoint < out.budgets.size()) {
    out.snapshots.push_back(final_snap);
    if (remote != nullptr) AppendRemoteCheckpoint(*remote, remote_start, &out);
    if (retrying != nullptr) AppendRetryCheckpoint(*retrying, retry_start, &out);
    if (monitor != nullptr) out.ess.push_back(monitor->ess());
    ++next_checkpoint;
  }
  out.total_iterations = sampler.iterations();
  out.labels_consumed = sampler.labels_consumed() - start_labels;
  return out;
}

}  // namespace oasis
