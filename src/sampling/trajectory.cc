#include "sampling/trajectory.h"

#include <algorithm>

namespace oasis {

Result<Trajectory> RunTrajectory(Sampler& sampler, const TrajectoryOptions& options) {
  if (options.budget <= 0) {
    return Status::InvalidArgument("RunTrajectory: budget must be positive");
  }
  if (options.checkpoint_every <= 0) {
    return Status::InvalidArgument("RunTrajectory: checkpoint_every must be positive");
  }
  int64_t max_iterations = options.max_iterations;
  if (max_iterations <= 0) max_iterations = 50 * options.budget + 100000;

  Trajectory out;
  for (int64_t b = options.checkpoint_every; b <= options.budget;
       b += options.checkpoint_every) {
    out.budgets.push_back(b);
  }
  out.snapshots.reserve(out.budgets.size());

  // Batched stepping through Sampler::StepBatch, exactly equivalent to the
  // original per-step loop:
  //  * Until F first becomes defined we step singly, so first_defined_budget
  //    records the precise label count (once defined, the estimator's
  //    denominator only grows, so F stays defined).
  //  * Afterwards each batch is capped at the label deficit to the next
  //    checkpoint. A step consumes at most one label, so a batch can never
  //    jump past a checkpoint: the checkpoint is reached, if at all, exactly
  //    at the batch's final step, where the snapshot below equals the one the
  //    per-step loop would have taken.
  //  * Batches are also capped at the remaining iteration allowance, so the
  //    max_iterations guard fires at the same iteration as before.
  size_t next_checkpoint = 0;
  const int64_t start_labels = sampler.labels_consumed();
  bool f_defined_seen = false;
  while (sampler.labels_consumed() - start_labels < options.budget) {
    if (sampler.iterations() >= max_iterations) {
      out.truncated = true;
      break;
    }
    int64_t batch = 1;
    if (f_defined_seen) {
      const int64_t consumed = sampler.labels_consumed() - start_labels;
      const int64_t target = next_checkpoint < out.budgets.size()
                                 ? out.budgets[next_checkpoint]
                                 : options.budget;
      batch = std::max<int64_t>(1, target - consumed);
      batch = std::min(batch, max_iterations - sampler.iterations());
    }
    OASIS_RETURN_NOT_OK(sampler.StepBatch(batch));
    const int64_t consumed = sampler.labels_consumed() - start_labels;
    const EstimateSnapshot snap = sampler.Estimate();
    if (!f_defined_seen && snap.f_defined) {
      f_defined_seen = true;
      out.first_defined_budget = consumed;
    }
    while (next_checkpoint < out.budgets.size() &&
           consumed >= out.budgets[next_checkpoint]) {
      out.snapshots.push_back(snap);
      ++next_checkpoint;
    }
  }
  // Fill any remaining checkpoints (early stop) with the final estimate so
  // every trajectory in an experiment has the same shape.
  const EstimateSnapshot final_snap = sampler.Estimate();
  while (next_checkpoint < out.budgets.size()) {
    out.snapshots.push_back(final_snap);
    ++next_checkpoint;
  }
  out.total_iterations = sampler.iterations();
  out.labels_consumed = sampler.labels_consumed() - start_labels;
  return out;
}

}  // namespace oasis
