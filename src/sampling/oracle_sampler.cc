#include "sampling/oracle_sampler.h"

#include <utility>

#include "core/instrumental.h"
#include "eval/measures.h"

namespace oasis {

OracleOptimalSampler::OracleOptimalSampler(const ScoredPool* pool,
                                           LabelCache* labels,
                                           std::shared_ptr<const Strata> strata,
                                           std::vector<double> v, double alpha,
                                           Rng rng)
    : Sampler(pool, labels, alpha, rng),
      strata_(std::move(strata)),
      v_(std::move(v)) {}

Result<std::unique_ptr<OracleOptimalSampler>> OracleOptimalSampler::Create(
    const ScoredPool* pool, LabelCache* labels,
    std::shared_ptr<const Strata> strata, std::span<const uint8_t> truth,
    double alpha, double epsilon, Rng rng) {
  if (pool == nullptr || labels == nullptr || strata == nullptr) {
    return Status::InvalidArgument("OracleOptimalSampler: null argument");
  }
  OASIS_RETURN_NOT_OK(pool->Validate());
  if (static_cast<int64_t>(truth.size()) != pool->size()) {
    return Status::InvalidArgument("OracleOptimalSampler: truth size mismatch");
  }
  if (static_cast<int64_t>(strata->num_items()) != pool->size()) {
    return Status::InvalidArgument("OracleOptimalSampler: strata size mismatch");
  }

  // True per-stratum quantities from full ground truth.
  const std::vector<double> pi = strata->MeanPerStratum(truth);
  const std::vector<double> lambda = strata->MeanPerStratum(
      std::span<const uint8_t>(pool->predictions.data(), pool->predictions.size()));

  double tp = 0.0;
  double pred = 0.0;
  double pos = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] && pool->predictions[i]) tp += 1.0;
    if (pool->predictions[i]) pred += 1.0;
    if (truth[i]) pos += 1.0;
  }
  const MaybeValue true_f = FAlpha(tp, pred - tp, pos - tp, alpha);
  if (!true_f.defined) {
    return Status::FailedPrecondition(
        "OracleOptimalSampler: true F undefined on this pool");
  }

  OASIS_ASSIGN_OR_RETURN(std::vector<double> v_star,
                         OptimalStratifiedInstrumental(
                             strata->weights(), lambda, pi, true_f.value, alpha));
  OASIS_ASSIGN_OR_RETURN(std::vector<double> v,
                         EpsilonGreedyMix(strata->weights(), v_star, epsilon));
  return std::unique_ptr<OracleOptimalSampler>(new OracleOptimalSampler(
      pool, labels, std::move(strata), std::move(v), alpha, rng));
}

Status OracleOptimalSampler::Step() {
  const size_t k = rng().NextDiscreteLinear(v_);
  const int64_t item = strata_->SampleItem(k, rng());
  const double weight = strata_->weight(k) / v_[k];
  OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
  const bool prediction = pool().predictions[static_cast<size_t>(item)] != 0;
  if (label && prediction) num_ += weight;
  if (prediction) den_pred_ += weight;
  if (label) den_true_ += weight;
  return Status::OK();
}

EstimateSnapshot OracleOptimalSampler::Estimate() const {
  EstimateSnapshot snap;
  const double denom = alpha() * den_pred_ + (1.0 - alpha()) * den_true_;
  if (denom > 0.0) {
    snap.f_alpha = num_ / denom;
    snap.f_defined = true;
  }
  if (den_pred_ > 0.0) {
    snap.precision = num_ / den_pred_;
    snap.precision_defined = true;
  }
  if (den_true_ > 0.0) {
    snap.recall = num_ / den_true_;
    snap.recall_defined = true;
  }
  return snap;
}

}  // namespace oasis
