#ifndef OASIS_SAMPLING_ORACLE_SAMPLER_H_
#define OASIS_SAMPLING_ORACLE_SAMPLER_H_

#include <memory>
#include <vector>

#include "sampling/sampler.h"
#include "strata/strata.h"

namespace oasis {

/// Reference sampler that draws from the TRUE asymptotically optimal
/// stratified instrumental distribution — computed from the ground-truth
/// per-stratum match rates and the true F-measure, quantities no real
/// evaluator has.
///
/// This is not a usable estimation method; it is the performance ceiling
/// OASIS adapts toward (v(t) -> v*), used by ablation benches and tests to
/// report how much of the oracle-optimal variance reduction the adaptive
/// scheme actually captures.
class OracleOptimalSampler : public Sampler {
 public:
  /// `truth` is the ground-truth label per pool item (used only to build the
  /// fixed instrumental distribution). The usual epsilon floor applies so
  /// weights stay bounded.
  static Result<std::unique_ptr<OracleOptimalSampler>> Create(
      const ScoredPool* pool, LabelCache* labels,
      std::shared_ptr<const Strata> strata, std::span<const uint8_t> truth,
      double alpha, double epsilon, Rng rng);

  Status Step() override;
  EstimateSnapshot Estimate() const override;
  std::string name() const override { return "OracleOptimal"; }

  /// The fixed instrumental distribution over strata.
  const std::vector<double>& instrumental() const { return v_; }

 private:
  OracleOptimalSampler(const ScoredPool* pool, LabelCache* labels,
                       std::shared_ptr<const Strata> strata,
                       std::vector<double> v, double alpha, Rng rng);

  std::shared_ptr<const Strata> strata_;
  std::vector<double> v_;
  // Running weighted sums of Eqn. (3).
  double num_ = 0.0;
  double den_pred_ = 0.0;
  double den_true_ = 0.0;
};

}  // namespace oasis

#endif  // OASIS_SAMPLING_ORACLE_SAMPLER_H_
