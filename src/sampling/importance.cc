#include "sampling/importance.h"

#include <algorithm>
#include <cmath>

#include "stats/transforms.h"

namespace oasis {

double ScoreToProbability(double score, bool scores_are_probabilities,
                          double threshold) {
  if (scores_are_probabilities) {
    return Clamp(score, 0.0, 1.0);
  }
  return Expit(score - threshold);
}

ImportanceSampler::ImportanceSampler(const ScoredPool* pool, LabelCache* labels,
                                     const ImportanceOptions& options, Rng rng)
    : Sampler(pool, labels, options.alpha, rng), options_(options) {}

Result<std::unique_ptr<ImportanceSampler>> ImportanceSampler::Create(
    const ScoredPool* pool, LabelCache* labels, const ImportanceOptions& options,
    Rng rng) {
  if (pool == nullptr || labels == nullptr) {
    return Status::InvalidArgument("ImportanceSampler: null pool or labels");
  }
  OASIS_RETURN_NOT_OK(pool->Validate());
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("ImportanceSampler: alpha must be in [0, 1]");
  }
  if (options.uniform_mix < 0.0 || options.uniform_mix > 1.0) {
    return Status::InvalidArgument("ImportanceSampler: uniform_mix must be in [0, 1]");
  }
  std::unique_ptr<ImportanceSampler> sampler(
      new ImportanceSampler(pool, labels, options, rng));
  OASIS_RETURN_NOT_OK(sampler->BuildInstrumental());
  return sampler;
}

Status ImportanceSampler::BuildInstrumental() {
  const ScoredPool& p = pool();
  const size_t n = static_cast<size_t>(p.size());
  const double alpha = options_.alpha;

  // Score-based plug-in estimates: p-hat(1|z) from scores, F from the
  // aggregate of those estimates (the per-pair analogue of Algorithm 2).
  std::vector<double> prob(n);
  double tp_mass = 0.0;
  double pred_mass = 0.0;
  double true_mass = 0.0;
  for (size_t i = 0; i < n; ++i) {
    prob[i] = ScoreToProbability(p.scores[i], p.scores_are_probabilities, p.threshold);
    const double pred = p.predictions[i] != 0 ? 1.0 : 0.0;
    tp_mass += prob[i] * pred;
    pred_mass += pred;
    true_mass += prob[i];
  }
  const double denom = alpha * pred_mass + (1.0 - alpha) * true_mass;
  f_guess_ = denom > 0.0 ? tp_mass / denom : 0.5;
  f_guess_ = Clamp(f_guess_, 1e-6, 1.0 - 1e-6);

  // Eqn. (5) with the plug-ins, then a uniform floor for full support.
  q_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double pi = prob[i];
    const double pred = p.predictions[i] != 0 ? 1.0 : 0.0;
    const double not_pred_term =
        (1.0 - alpha) * (1.0 - pred) * f_guess_ * std::sqrt(pi);
    const double pred_term =
        pred * std::sqrt(alpha * alpha * f_guess_ * f_guess_ * (1.0 - pi) +
                         (1.0 - f_guess_) * (1.0 - f_guess_) * pi);
    q_[i] = not_pred_term + pred_term;
  }
  NormalizeInPlace(q_);
  const double u = options_.uniform_mix;
  const double uniform = 1.0 / static_cast<double>(n);
  for (double& qi : q_) qi = (1.0 - u) * qi + u * uniform;

  weights_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    weights_[i] = uniform / q_[i];
  }

  if (options_.backend == SamplingBackend::kAliasTable) {
    OASIS_ASSIGN_OR_RETURN(alias_, AliasTable::Build(q_));
  }
  return Status::OK();
}

Status ImportanceSampler::Step() { return StepBatch(1); }

Status ImportanceSampler::StepBatch(int64_t n) {
  if (n < 0) {
    return Status::InvalidArgument("StepBatch: n must be non-negative");
  }
  const bool use_alias = options_.backend == SamplingBackend::kAliasTable;
  const uint8_t* predictions = pool().predictions.data();
  const double* weights = weights_.data();

  if (CanBatchQueries()) {
    // The instrumental distribution is static, so item draws are independent
    // of the labels and the chunked pre-draw + batched-query scaffold
    // replays the exact sequential sequence.
    return BatchedSteps(
        n,
        [&](int64_t) {
          return static_cast<int64_t>(use_alias ? alias_.Sample(rng())
                                                : rng().NextDiscreteLinear(q_));
        },
        [&](int64_t, int64_t item_index, bool label) {
          const size_t item = static_cast<size_t>(item_index);
          const bool prediction = predictions[item] != 0;
          const double w = weights[item];
          if (label && prediction) num_ += w;
          if (prediction) den_pred_ += w;
          if (label) den_true_ += w;
          monitor_.Observe(w);
        });
  }

  // RNG-consuming oracle: preserve the exact sequential interleaving.
  for (int64_t i = 0; i < n; ++i) {
    const size_t item = use_alias ? alias_.Sample(rng()) : rng().NextDiscreteLinear(q_);
    OASIS_ASSIGN_OR_RETURN(const bool label,
                           QueryLabel(static_cast<int64_t>(item)));
    const bool prediction = predictions[item] != 0;
    const double w = weights[item];
    if (label && prediction) num_ += w;
    if (prediction) den_pred_ += w;
    if (label) den_true_ += w;
    monitor_.Observe(w);
  }
  return Status::OK();
}

EstimateSnapshot ImportanceSampler::Estimate() const {
  EstimateSnapshot snap;
  const double denom = alpha() * den_pred_ + (1.0 - alpha()) * den_true_;
  if (denom > 0.0) {
    snap.f_alpha = num_ / denom;
    snap.f_defined = true;
  }
  if (den_pred_ > 0.0) {
    snap.precision = num_ / den_pred_;
    snap.precision_defined = true;
  }
  if (den_true_ > 0.0) {
    snap.recall = num_ / den_true_;
    snap.recall_defined = true;
  }
  return snap;
}

}  // namespace oasis
