#ifndef OASIS_SAMPLING_TRAJECTORY_H_
#define OASIS_SAMPLING_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sampling/sampler.h"

namespace oasis {

/// Controls a budget-driven sampler run with checkpointed estimates.
struct TrajectoryOptions {
  /// Total label budget (distinct oracle charges).
  int64_t budget = 1000;
  /// Record an estimate snapshot every this many labels.
  int64_t checkpoint_every = 10;
  /// Iteration cap; 0 derives a generous default from the budget. Guards
  /// against the (theoretically possible) case where resampling of cached
  /// items keeps a run from ever consuming fresh budget.
  int64_t max_iterations = 0;
};

/// The estimate history of one sampler run, indexed by label budget. This is
/// the primitive behind every error-vs-budget curve in the paper (Fig. 2/3).
struct Trajectory {
  /// Checkpoint label counts: checkpoint_every, 2*checkpoint_every, ...
  std::vector<int64_t> budgets;
  /// Estimate at each checkpoint (snapshot taken when the consumed budget
  /// first reached the checkpoint).
  std::vector<EstimateSnapshot> snapshots;
  /// Budget consumed when F first became defined; -1 when it never did.
  int64_t first_defined_budget = -1;
  /// Sampling iterations the run performed in total.
  int64_t total_iterations = 0;
  /// Labels charged to the budget by the run.
  int64_t labels_consumed = 0;
  /// True when the run hit max_iterations before exhausting the budget
  /// (trailing checkpoints are filled with the final estimate).
  bool truncated = false;

  /// True when the sampler's oracle was a RemoteOracle (possibly wrapped
  /// inside retry/fault decorators — the stack is walked): the three per-
  /// checkpoint cost series below are populated (same length as budgets),
  /// measuring this run's cumulative remote activity at each checkpoint —
  /// the x-axes of cost-vs-error curves (docs/ORACLES.md).
  bool has_remote_stats = false;
  /// Cumulative simulated round trips at each checkpoint.
  std::vector<int64_t> remote_round_trips;
  /// Cumulative simulated latency (seconds) at each checkpoint.
  std::vector<double> remote_seconds;
  /// Cumulative monetary label cost at each checkpoint.
  std::vector<double> remote_cost;

  /// True when the sampler's oracle stack was topped by a RetryingOracle:
  /// the per-checkpoint recovery series below are populated (same length as
  /// budgets), charting this run's cumulative retry activity — the CSV's
  /// retries/give_ups columns (docs/FAULT_MODEL.md).
  bool has_fault_stats = false;
  /// Cumulative retry attempts (beyond each call's first) at each checkpoint.
  std::vector<int64_t> oracle_retries;
  /// Cumulative gave-up oracle calls at each checkpoint.
  std::vector<int64_t> oracle_give_ups;

  /// True when the sampler exposes a DegeneracyMonitor: `ess` is populated
  /// (same length as budgets) with the Kish effective sample size at each
  /// checkpoint.
  bool has_degeneracy_stats = false;
  /// Effective sample size of the importance weights at each checkpoint.
  std::vector<double> ess;
};

/// Runs `sampler` until the label budget is exhausted (or the iteration cap
/// fires), recording estimates at each checkpoint.
Result<Trajectory> RunTrajectory(Sampler& sampler, const TrajectoryOptions& options);

}  // namespace oasis

#endif  // OASIS_SAMPLING_TRAJECTORY_H_
