#include "sampling/passive.h"

#include <algorithm>

namespace oasis {

PassiveSampler::PassiveSampler(const ScoredPool* pool, LabelCache* labels,
                               double alpha, Rng rng)
    : Sampler(pool, labels, alpha, rng) {}

Result<std::unique_ptr<PassiveSampler>> PassiveSampler::Create(
    const ScoredPool* pool, LabelCache* labels, double alpha, Rng rng) {
  if (pool == nullptr || labels == nullptr) {
    return Status::InvalidArgument("PassiveSampler: null pool or labels");
  }
  OASIS_RETURN_NOT_OK(pool->Validate());
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("PassiveSampler: alpha must be in [0, 1]");
  }
  return std::unique_ptr<PassiveSampler>(
      new PassiveSampler(pool, labels, alpha, rng));
}

Status PassiveSampler::Step() { return StepBatch(1); }

Status PassiveSampler::StepBatch(int64_t n) {
  if (n < 0) {
    return Status::InvalidArgument("StepBatch: n must be non-negative");
  }
  const uint64_t size = static_cast<uint64_t>(pool().size());
  const uint8_t* predictions = pool().predictions.data();

  if (CanBatchQueries()) {
    // Uniform draws are independent of the labels, so the chunked pre-draw +
    // batched-query scaffold replays the exact sequential sequence.
    return BatchedSteps(
        n,
        [&](int64_t) { return static_cast<int64_t>(rng().NextBounded(size)); },
        [&](int64_t, int64_t item, bool label) {
          const bool prediction = predictions[static_cast<size_t>(item)] != 0;
          if (label && prediction) tp_ += 1.0;
          if (prediction) predicted_pos_ += 1.0;
          if (label) actual_pos_ += 1.0;
        });
  }

  // RNG-consuming oracle: labelling draws deviates between item draws, so
  // batching would change the stream; keep the exact sequential loop (still
  // with invariants hoisted and no per-iteration virtual dispatch).
  for (int64_t i = 0; i < n; ++i) {
    const int64_t item = static_cast<int64_t>(rng().NextBounded(size));
    OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
    const bool prediction = predictions[static_cast<size_t>(item)] != 0;
    if (label && prediction) tp_ += 1.0;
    if (prediction) predicted_pos_ += 1.0;
    if (label) actual_pos_ += 1.0;
  }
  return Status::OK();
}

EstimateSnapshot PassiveSampler::Estimate() const {
  EstimateSnapshot snap;
  const double denom = alpha() * predicted_pos_ + (1.0 - alpha()) * actual_pos_;
  if (denom > 0.0) {
    snap.f_alpha = tp_ / denom;
    snap.f_defined = true;
  }
  if (predicted_pos_ > 0.0) {
    snap.precision = tp_ / predicted_pos_;
    snap.precision_defined = true;
  }
  if (actual_pos_ > 0.0) {
    snap.recall = tp_ / actual_pos_;
    snap.recall_defined = true;
  }
  return snap;
}

}  // namespace oasis
