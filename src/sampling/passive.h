#ifndef OASIS_SAMPLING_PASSIVE_H_
#define OASIS_SAMPLING_PASSIVE_H_

#include <memory>

#include "sampling/sampler.h"

namespace oasis {

/// Passive (uniform i.i.d.) sampler — the paper's first baseline.
///
/// Each iteration draws a pool item uniformly with replacement, queries its
/// label, and estimates F_alpha with the plain sample statistic of Eqn. (1).
/// Under ER's extreme class imbalance the estimator stays undefined until the
/// first (predicted or true) positive is drawn, which is exactly the failure
/// mode the paper illustrates on DBLP-ACM.
class PassiveSampler : public Sampler {
 public:
  /// `pool` and `labels` must outlive the sampler.
  static Result<std::unique_ptr<PassiveSampler>> Create(const ScoredPool* pool,
                                                        LabelCache* labels,
                                                        double alpha, Rng rng);

  Status Step() override;
  Status StepBatch(int64_t n) override;
  EstimateSnapshot Estimate() const override;
  std::string name() const override { return "Passive"; }

 private:
  PassiveSampler(const ScoredPool* pool, LabelCache* labels, double alpha, Rng rng);

  // Unweighted running counts over sampled (label, prediction) draws.
  double tp_ = 0.0;
  double predicted_pos_ = 0.0;
  double actual_pos_ = 0.0;
};

}  // namespace oasis

#endif  // OASIS_SAMPLING_PASSIVE_H_
