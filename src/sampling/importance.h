#ifndef OASIS_SAMPLING_IMPORTANCE_H_
#define OASIS_SAMPLING_IMPORTANCE_H_

#include <memory>
#include <vector>

#include "common/alias_table.h"
#include "sampling/sampler.h"
#include "stats/degeneracy.h"

namespace oasis {

/// How the static IS sampler draws from its per-item instrumental
/// distribution.
enum class SamplingBackend {
  /// Walker/Vose alias table: O(N) setup, O(1) per draw. The production
  /// default.
  kAliasTable,
  /// Linear inverse-CDF scan: O(N) per draw. Faithful to the paper's
  /// reference implementation and used to reproduce the Table 3 runtime
  /// shape (IS time scaling linearly with pool size).
  kLinearScan,
};

/// Options for the static importance sampler.
struct ImportanceOptions {
  /// F-measure weight (alpha = 1/2 is the balanced F-measure).
  double alpha = 0.5;
  /// Floor mixed into the instrumental distribution, q <- (1-u)*q + u*uniform,
  /// keeping every item reachable (Sawade et al. use the same device; without
  /// it items with score-estimated q(z) = 0 would never be sampled and the
  /// estimator could not be consistent).
  double uniform_mix = 1e-3;
  SamplingBackend backend = SamplingBackend::kAliasTable;
};

/// Static (non-adaptive) importance sampler — the Sawade et al. baseline.
///
/// The instrumental distribution instantiates the asymptotically optimal form
/// (paper Eqn. 5) once, up front, replacing the unknown oracle probabilities
/// p(1|z) with the similarity scores mapped to [0, 1], and the unknown F with
/// a score-based guess. It never adapts, so mis-calibrated scores leave it
/// stuck with a suboptimal distribution (the effect Figure 3 quantifies).
/// Estimates use the bias-corrected weighted sums of Eqn. (3) with static
/// weights w(z) = (1/N) / q(z).
class ImportanceSampler : public Sampler {
 public:
  /// `pool` and `labels` must outlive the sampler.
  static Result<std::unique_ptr<ImportanceSampler>> Create(
      const ScoredPool* pool, LabelCache* labels, const ImportanceOptions& options,
      Rng rng);

  Status Step() override;
  Status StepBatch(int64_t n) override;
  EstimateSnapshot Estimate() const override;
  std::string name() const override { return "IS"; }

  /// The normalised instrumental probability of each item (diagnostics).
  const std::vector<double>& instrumental() const { return q_; }

  /// Score-based initial guess of F_alpha used to build the distribution.
  double initial_f_guess() const { return f_guess_; }

  /// The importance-weight health monitor. Static IS cannot degrade
  /// gracefully (there is nothing to adapt), but the diagnostics make its
  /// weight collapse under mis-calibrated scores observable per checkpoint —
  /// exactly the failure mode Figure 3 quantifies.
  const DegeneracyMonitor* degeneracy_monitor() const override {
    return &monitor_;
  }

 private:
  ImportanceSampler(const ScoredPool* pool, LabelCache* labels,
                    const ImportanceOptions& options, Rng rng);

  Status BuildInstrumental();

  ImportanceOptions options_;
  std::vector<double> q_;       // Normalised instrumental probabilities.
  std::vector<double> weights_; // Importance weight (1/N)/q per item.
  AliasTable alias_;
  double f_guess_ = 0.0;
  DegeneracyMonitor monitor_;

  // Running weighted sums of Eqn. (3).
  double num_ = 0.0;        // sum w * l * l-hat
  double den_pred_ = 0.0;   // sum w * l-hat
  double den_true_ = 0.0;   // sum w * l
};

/// Maps a raw similarity score to a pseudo-probability in (0, 1): identity
/// (clamped) for probability scores, logistic around `threshold` otherwise.
/// Shared by IS and the OASIS initialisation (Algorithm 2, lines 3-5).
double ScoreToProbability(double score, bool scores_are_probabilities,
                          double threshold);

}  // namespace oasis

#endif  // OASIS_SAMPLING_IMPORTANCE_H_
