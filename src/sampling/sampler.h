#ifndef OASIS_SAMPLING_SAMPLER_H_
#define OASIS_SAMPLING_SAMPLER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "oracle/label_cache.h"

namespace oasis {

/// The evaluation view of a record-pair pool: one similarity score and one
/// predicted label per pair (Definition 4). Ground truth lives behind the
/// Oracle, never here — estimators can only see it one label at a time.
struct ScoredPool {
  /// Similarity score s(z) per pool item.
  std::vector<double> scores;
  /// Predicted labels l-hat(z) in {0, 1} per pool item (z in R-hat or not).
  std::vector<uint8_t> predictions;
  /// Whether scores already live in [0, 1] and approximate probabilities
  /// (calibrated); when false the initialisation logit-maps them around
  /// `threshold`.
  bool scores_are_probabilities = false;
  /// Classifier decision threshold tau on the raw score scale (Algorithm 2's
  /// optional input); ignored when scores_are_probabilities.
  double threshold = 0.0;

  int64_t size() const { return static_cast<int64_t>(scores.size()); }

  /// Checks structural validity (non-empty, equal lengths, finite scores,
  /// 0/1 predictions, probability scores in range when declared).
  Status Validate() const;

  /// Number of predicted positives (|R-hat| restricted to the pool).
  int64_t NumPredictedPositives() const;
};

/// Point-in-time estimate of the three evaluation measures. `*_defined`
/// mirrors the paper's observation that Eqn. (1)/(3) are 0/0 until a
/// (predicted or true) positive enters the sample.
struct EstimateSnapshot {
  double f_alpha = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  bool f_defined = false;
  bool precision_defined = false;
  bool recall_defined = false;
};

/// Base class for all pool evaluation samplers (Passive, Stratified, IS,
/// OASIS). One Step() = one sampling iteration: draw a pool item according to
/// the method's (possibly adaptive) distribution, query the oracle through
/// the shared LabelCache, and fold the observation into the running
/// estimator. Sampling is with replacement; budget accounting (first query
/// per item is charged, replays are free for deterministic oracles) is
/// centralised in LabelCache.
class Sampler {
 public:
  virtual ~Sampler() = default;

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Performs one sampling iteration.
  virtual Status Step() = 0;

  /// Performs `n` sampling iterations as one call. Behaviourally identical to
  /// calling Step() `n` times — same RNG stream, same oracle queries, same
  /// estimate sequence — but lets implementations amortise virtual dispatch,
  /// validation and invariant loads across the batch. Subclasses that
  /// override it must preserve the exact per-step equivalence (it is tested).
  /// The base implementation simply loops Step(). n must be >= 0; n == 0 is a
  /// no-op.
  virtual Status StepBatch(int64_t n);

  /// Current estimates of F_alpha / precision / recall.
  virtual EstimateSnapshot Estimate() const = 0;

  /// Short method name used in reports ("Passive", "OASIS-30", ...).
  virtual std::string name() const = 0;

  /// Labels charged to the budget so far.
  int64_t labels_consumed() const { return labels_->labels_consumed(); }

  /// Sampling iterations performed so far (>= labels_consumed in the
  /// deterministic-oracle regime).
  int64_t iterations() const { return iterations_; }

  const ScoredPool& pool() const { return *pool_; }
  LabelCache& labels() { return *labels_; }
  double alpha() const { return alpha_; }

 protected:
  /// Chunk size used by the batched StepBatch overrides: items are drawn and
  /// queried in groups of at most this many, bounding scratch memory while
  /// still amortising the oracle round-trip.
  static constexpr int64_t kQueryBatchChunk = 512;

  /// `pool` and `labels` must outlive the sampler.
  Sampler(const ScoredPool* pool, LabelCache* labels, double alpha, Rng rng);

  /// Queries the oracle for `item` and bumps the iteration counter.
  bool QueryLabel(int64_t item);

  /// Queries the oracle for a batch of items in one LabelCache::QueryBatch
  /// round-trip and bumps the iteration counter by the batch size. Exactly
  /// equivalent to calling QueryLabel() per item in order (same labels,
  /// counters and RNG stream). `out_labels` must match `items` in length.
  Status QueryLabels(std::span<const int64_t> items, std::span<uint8_t> out_labels);

  /// Whether pre-drawing a chunk of items and batch-querying them preserves
  /// exact sequential equivalence: true iff labelling never consumes the
  /// caller's RNG, so the item-draw deviates cannot interleave with label
  /// deviates. Note this is deliberately NOT Oracle::deterministic() — a
  /// NoisyOracle with degenerate {0,1} probabilities is deterministic yet
  /// still burns one deviate per labelled miss, which would reorder the
  /// stream. Samplers with static instrumental distributions gate their
  /// batched StepBatch fast path on this and fall back to the per-step loop
  /// otherwise.
  bool CanBatchQueries() const {
    return !labels_->oracle().labelling_consumes_rng();
  }

  /// Shared scaffold of the batched StepBatch fast paths: runs `n`
  /// iterations in chunks of kQueryBatchChunk, pre-drawing each chunk's
  /// items via `draw` and resolving them in ONE LabelCache::QueryBatch
  /// round-trip before tallying. Only valid when CanBatchQueries() — the
  /// pre-draw reorders item draws relative to label queries, which is
  /// stream-preserving exactly when labelling is RNG-free, making this the
  /// identical item/label/counter sequence as `n` sequential Step() calls.
  ///
  /// `draw(i)` returns the item for chunk position i (and may record side
  /// state, e.g. the stratum it drew — i is always < kQueryBatchChunk);
  /// `tally(i, item, label)` folds the resolved observation into the
  /// estimator. Scratch buffers are reused, so steady-state batches do not
  /// allocate.
  template <typename DrawFn, typename TallyFn>
  Status BatchedSteps(int64_t n, DrawFn&& draw, TallyFn&& tally) {
    for (int64_t done = 0; done < n;) {
      const int64_t chunk = std::min(kQueryBatchChunk, n - done);
      batch_items_.resize(static_cast<size_t>(chunk));
      batch_labels_.resize(static_cast<size_t>(chunk));
      for (int64_t i = 0; i < chunk; ++i) {
        batch_items_[static_cast<size_t>(i)] = draw(i);
      }
      OASIS_RETURN_NOT_OK(QueryLabels(batch_items_, batch_labels_));
      for (int64_t i = 0; i < chunk; ++i) {
        tally(i, batch_items_[static_cast<size_t>(i)],
              batch_labels_[static_cast<size_t>(i)] != 0);
      }
      done += chunk;
    }
    return Status::OK();
  }

  Rng& rng() { return rng_; }

 private:
  const ScoredPool* pool_;
  LabelCache* labels_;
  double alpha_;
  Rng rng_;
  int64_t iterations_ = 0;
  std::vector<int64_t> batch_items_;
  std::vector<uint8_t> batch_labels_;
};

}  // namespace oasis

#endif  // OASIS_SAMPLING_SAMPLER_H_
