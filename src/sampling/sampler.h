#ifndef OASIS_SAMPLING_SAMPLER_H_
#define OASIS_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "oracle/label_cache.h"

namespace oasis {

/// The evaluation view of a record-pair pool: one similarity score and one
/// predicted label per pair (Definition 4). Ground truth lives behind the
/// Oracle, never here — estimators can only see it one label at a time.
struct ScoredPool {
  /// Similarity score s(z) per pool item.
  std::vector<double> scores;
  /// Predicted labels l-hat(z) in {0, 1} per pool item (z in R-hat or not).
  std::vector<uint8_t> predictions;
  /// Whether scores already live in [0, 1] and approximate probabilities
  /// (calibrated); when false the initialisation logit-maps them around
  /// `threshold`.
  bool scores_are_probabilities = false;
  /// Classifier decision threshold tau on the raw score scale (Algorithm 2's
  /// optional input); ignored when scores_are_probabilities.
  double threshold = 0.0;

  int64_t size() const { return static_cast<int64_t>(scores.size()); }

  /// Checks structural validity (non-empty, equal lengths, finite scores,
  /// 0/1 predictions, probability scores in range when declared).
  Status Validate() const;

  /// Number of predicted positives (|R-hat| restricted to the pool).
  int64_t NumPredictedPositives() const;
};

/// Point-in-time estimate of the three evaluation measures. `*_defined`
/// mirrors the paper's observation that Eqn. (1)/(3) are 0/0 until a
/// (predicted or true) positive enters the sample.
struct EstimateSnapshot {
  double f_alpha = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  bool f_defined = false;
  bool precision_defined = false;
  bool recall_defined = false;
};

/// Base class for all pool evaluation samplers (Passive, Stratified, IS,
/// OASIS). One Step() = one sampling iteration: draw a pool item according to
/// the method's (possibly adaptive) distribution, query the oracle through
/// the shared LabelCache, and fold the observation into the running
/// estimator. Sampling is with replacement; budget accounting (first query
/// per item is charged, replays are free for deterministic oracles) is
/// centralised in LabelCache.
class Sampler {
 public:
  virtual ~Sampler() = default;

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Performs one sampling iteration.
  virtual Status Step() = 0;

  /// Performs `n` sampling iterations as one call. Behaviourally identical to
  /// calling Step() `n` times — same RNG stream, same oracle queries, same
  /// estimate sequence — but lets implementations amortise virtual dispatch,
  /// validation and invariant loads across the batch. Subclasses that
  /// override it must preserve the exact per-step equivalence (it is tested).
  /// The base implementation simply loops Step(). n must be >= 0; n == 0 is a
  /// no-op.
  virtual Status StepBatch(int64_t n);

  /// Current estimates of F_alpha / precision / recall.
  virtual EstimateSnapshot Estimate() const = 0;

  /// Short method name used in reports ("Passive", "OASIS-30", ...).
  virtual std::string name() const = 0;

  /// Labels charged to the budget so far.
  int64_t labels_consumed() const { return labels_->labels_consumed(); }

  /// Sampling iterations performed so far (>= labels_consumed in the
  /// deterministic-oracle regime).
  int64_t iterations() const { return iterations_; }

  const ScoredPool& pool() const { return *pool_; }
  LabelCache& labels() { return *labels_; }
  double alpha() const { return alpha_; }

 protected:
  /// `pool` and `labels` must outlive the sampler.
  Sampler(const ScoredPool* pool, LabelCache* labels, double alpha, Rng rng);

  /// Queries the oracle for `item` and bumps the iteration counter.
  bool QueryLabel(int64_t item);

  Rng& rng() { return rng_; }

 private:
  const ScoredPool* pool_;
  LabelCache* labels_;
  double alpha_;
  Rng rng_;
  int64_t iterations_ = 0;
};

}  // namespace oasis

#endif  // OASIS_SAMPLING_SAMPLER_H_
