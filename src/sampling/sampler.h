#ifndef OASIS_SAMPLING_SAMPLER_H_
#define OASIS_SAMPLING_SAMPLER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "oracle/async_label_pipeline.h"
#include "oracle/label_cache.h"

namespace oasis {

class DegeneracyMonitor;

/// The evaluation view of a record-pair pool: one similarity score and one
/// predicted label per pair (Definition 4). Ground truth lives behind the
/// Oracle, never here — estimators can only see it one label at a time.
struct ScoredPool {
  /// Similarity score s(z) per pool item.
  std::vector<double> scores;
  /// Predicted labels l-hat(z) in {0, 1} per pool item (z in R-hat or not).
  std::vector<uint8_t> predictions;
  /// Whether scores already live in [0, 1] and approximate probabilities
  /// (calibrated); when false the initialisation logit-maps them around
  /// `threshold`.
  bool scores_are_probabilities = false;
  /// Classifier decision threshold tau on the raw score scale (Algorithm 2's
  /// optional input); ignored when scores_are_probabilities.
  double threshold = 0.0;

  int64_t size() const { return static_cast<int64_t>(scores.size()); }

  /// Checks structural validity (non-empty, equal lengths, finite scores,
  /// 0/1 predictions, probability scores in range when declared).
  Status Validate() const;

  /// Number of predicted positives (|R-hat| restricted to the pool).
  int64_t NumPredictedPositives() const;
};

/// Point-in-time estimate of the three evaluation measures. `*_defined`
/// mirrors the paper's observation that Eqn. (1)/(3) are 0/0 until a
/// (predicted or true) positive enters the sample.
struct EstimateSnapshot {
  double f_alpha = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  bool f_defined = false;
  bool precision_defined = false;
  bool recall_defined = false;
};

/// Base class for all pool evaluation samplers (Passive, Stratified, IS,
/// OASIS). One Step() = one sampling iteration: draw a pool item according to
/// the method's (possibly adaptive) distribution, query the oracle through
/// the shared LabelCache, and fold the observation into the running
/// estimator. Sampling is with replacement; budget accounting (first query
/// per item is charged, replays are free for deterministic oracles) is
/// centralised in LabelCache.
class Sampler {
 public:
  virtual ~Sampler() = default;

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Performs one sampling iteration.
  virtual Status Step() = 0;

  /// Performs `n` sampling iterations as one call. Behaviourally identical to
  /// calling Step() `n` times — same RNG stream, same oracle queries, same
  /// estimate sequence — but lets implementations amortise virtual dispatch,
  /// validation and invariant loads across the batch. Subclasses that
  /// override it must preserve the exact per-step equivalence (it is tested).
  /// The base implementation simply loops Step(). n must be >= 0; n == 0 is a
  /// no-op.
  virtual Status StepBatch(int64_t n);

  /// Current estimates of F_alpha / precision / recall.
  virtual EstimateSnapshot Estimate() const = 0;

  /// Short method name used in reports ("Passive", "OASIS-30", ...).
  virtual std::string name() const = 0;

  /// The sampler's importance-weight degeneracy monitor, when it has one
  /// (OASIS and the importance sampler do), else nullptr. Harnesses use it to
  /// thread per-checkpoint ESS diagnostics into trajectories and CSV output
  /// (see docs/FAULT_MODEL.md).
  virtual const DegeneracyMonitor* degeneracy_monitor() const {
    return nullptr;
  }

  /// Enables asynchronous label prefetching on `pool` for the batched
  /// StepBatch fast path: while one chunk's observations are tallied, the
  /// next chunk's labels resolve on a pool worker (AsyncLabelPipeline), so a
  /// remote oracle's round trip overlaps the sampler's own work. Exact
  /// sequential equivalence is preserved — same RNG stream, labels, budget
  /// counters and estimates as without prefetching (it is tested).
  ///
  /// Only engages where it is sound and useful: samplers with static
  /// proposals (passive / importance / stratified) on RNG-free oracles, and
  /// only for StepBatch calls spanning more than one internal chunk. OASIS
  /// ignores it — its next draw depends on the last label, so it is
  /// label-sequential by design (see docs/ORACLES.md). `pool` must outlive
  /// the sampler; nullptr disables prefetching again.
  void SetPrefetchPool(ThreadPool* pool) { prefetch_pool_ = pool; }

  /// Labels charged to the budget so far.
  int64_t labels_consumed() const { return labels_->labels_consumed(); }

  /// Sampling iterations performed so far (>= labels_consumed in the
  /// deterministic-oracle regime).
  int64_t iterations() const { return iterations_; }

  const ScoredPool& pool() const { return *pool_; }
  LabelCache& labels() { return *labels_; }
  double alpha() const { return alpha_; }

 protected:
  /// Chunk size used by the batched StepBatch overrides: items are drawn and
  /// queried in groups of at most this many, bounding scratch memory while
  /// still amortising the oracle round-trip.
  static constexpr int64_t kQueryBatchChunk = 512;

  /// `pool` and `labels` must outlive the sampler.
  Sampler(const ScoredPool* pool, LabelCache* labels, double alpha, Rng rng);

  /// Queries the oracle for `item` and bumps the iteration counter — AFTER
  /// the label arrives, so a failed query (fallible oracle stack) leaves the
  /// sampler's counters untouched and the step can be reported as never
  /// having happened (exception safety of Step/StepBatch).
  Result<bool> QueryLabel(int64_t item);

  /// Queries the oracle for a batch of items in one LabelCache::QueryBatch
  /// round-trip and bumps the iteration counter by the batch size. Exactly
  /// equivalent to calling QueryLabel() per item in order (same labels,
  /// counters and RNG stream). `out_labels` must match `items` in length.
  /// Like QueryLabel, the iteration counter moves only on success.
  Status QueryLabels(std::span<const int64_t> items, std::span<uint8_t> out_labels);

  /// Whether pre-drawing a chunk of items and batch-querying them preserves
  /// exact sequential equivalence: true iff labelling never consumes the
  /// caller's RNG, so the item-draw deviates cannot interleave with label
  /// deviates. Note this is deliberately NOT Oracle::deterministic() — a
  /// NoisyOracle with degenerate {0,1} probabilities is deterministic yet
  /// still burns one deviate per labelled miss, which would reorder the
  /// stream. Samplers with static instrumental distributions gate their
  /// batched StepBatch fast path on this and fall back to the per-step loop
  /// otherwise.
  bool CanBatchQueries() const {
    return !labels_->oracle().labelling_consumes_rng();
  }

  /// Shared scaffold of the batched StepBatch fast paths: runs `n`
  /// iterations in chunks of kQueryBatchChunk, pre-drawing each chunk's
  /// items via `draw` and resolving them in ONE LabelCache::QueryBatch
  /// round-trip before tallying. Only valid when CanBatchQueries() — the
  /// pre-draw reorders item draws relative to label queries, which is
  /// stream-preserving exactly when labelling is RNG-free, making this the
  /// identical item/label/counter sequence as `n` sequential Step() calls.
  ///
  /// `draw(i)` returns the item for chunk position i (and may record side
  /// state, e.g. the stratum it drew); `tally(i, item, label)` folds the
  /// resolved observation into the estimator. Positions are always
  /// < 2 * kQueryBatchChunk — the prefetching variant below double-buffers
  /// chunks, giving consecutive chunks disjoint position ranges — so
  /// draw-side scratch indexed by position must be sized for two chunks. A
  /// position is never reused before its tally ran. Scratch buffers are
  /// reused, so steady-state batches do not allocate.
  ///
  /// With a prefetch pool set (SetPrefetchPool) and more than one chunk of
  /// work, chunks are pipelined through an AsyncLabelPipeline: chunk t+1's
  /// QueryBatch resolves on a pool worker while chunk t is tallied (and
  /// t+2 is drawn). All draws stay on the calling thread in step order and
  /// QueryBatch calls stay strictly sequenced, so the RNG stream, labels and
  /// budget counters are bit-identical to the unpipelined path.
  template <typename DrawFn, typename TallyFn>
  Status BatchedSteps(int64_t n, DrawFn&& draw, TallyFn&& tally) {
    if (prefetch_pool_ != nullptr && n > kQueryBatchChunk) {
      return BatchedStepsPipelined(n, draw, tally);
    }
    for (int64_t done = 0; done < n;) {
      const int64_t chunk = std::min(kQueryBatchChunk, n - done);
      batch_items_[0].resize(static_cast<size_t>(chunk));
      batch_labels_[0].resize(static_cast<size_t>(chunk));
      for (int64_t i = 0; i < chunk; ++i) {
        batch_items_[0][static_cast<size_t>(i)] = draw(i);
      }
      OASIS_RETURN_NOT_OK(QueryLabels(batch_items_[0], batch_labels_[0]));
      for (int64_t i = 0; i < chunk; ++i) {
        tally(i, batch_items_[0][static_cast<size_t>(i)],
              batch_labels_[0][static_cast<size_t>(i)] != 0);
      }
      done += chunk;
    }
    return Status::OK();
  }

  Rng& rng() { return rng_; }

 private:
  /// Double-buffered, depth-1-pipelined variant of the scaffold above.
  /// Chunk c lives in buffer parity c & 1 with draw/tally positions offset
  /// by parity * kQueryBatchChunk. Per loop turn: draw chunk c, wait for
  /// chunk c-1's labels, hand chunk c to the pipeline, tally chunk c-1 while
  /// the worker resolves chunk c.
  template <typename DrawFn, typename TallyFn>
  Status BatchedStepsPipelined(int64_t n, DrawFn&& draw, TallyFn&& tally) {
    AsyncLabelPipeline pipeline(labels_, prefetch_pool_);
    int prev = -1;
    int64_t prev_len = 0;
    int parity = 0;
    for (int64_t done = 0; done < n; done += kQueryBatchChunk, parity ^= 1) {
      const int64_t chunk = std::min(kQueryBatchChunk, n - done);
      std::vector<int64_t>& items = batch_items_[parity];
      std::vector<uint8_t>& labels = batch_labels_[parity];
      items.resize(static_cast<size_t>(chunk));
      labels.resize(static_cast<size_t>(chunk));
      const int64_t base = static_cast<int64_t>(parity) * kQueryBatchChunk;
      for (int64_t i = 0; i < chunk; ++i) {
        items[static_cast<size_t>(i)] = draw(base + i);
      }
      // Collect-before-prefetch keeps the (single-threaded) LabelCache's
      // QueryBatch calls strictly sequenced in chunk order. Iterations are
      // credited only once a chunk's labels actually arrived, so a failed
      // chunk (fallible oracle stack) is never counted as sampled.
      if (prev >= 0) {
        OASIS_RETURN_NOT_OK(pipeline.Collect());
        iterations_ += prev_len;
      }
      OASIS_RETURN_NOT_OK(pipeline.Prefetch(items, &rng_, labels));
      if (prev >= 0) {
        const int64_t prev_base = static_cast<int64_t>(prev) * kQueryBatchChunk;
        for (int64_t i = 0; i < prev_len; ++i) {
          tally(prev_base + i, batch_items_[prev][static_cast<size_t>(i)],
                batch_labels_[prev][static_cast<size_t>(i)] != 0);
        }
      }
      prev = parity;
      prev_len = chunk;
    }
    OASIS_RETURN_NOT_OK(pipeline.Collect());
    iterations_ += prev_len;
    const int64_t prev_base = static_cast<int64_t>(prev) * kQueryBatchChunk;
    for (int64_t i = 0; i < prev_len; ++i) {
      tally(prev_base + i, batch_items_[prev][static_cast<size_t>(i)],
            batch_labels_[prev][static_cast<size_t>(i)] != 0);
    }
    return Status::OK();
  }

  const ScoredPool* pool_;
  LabelCache* labels_;
  double alpha_;
  Rng rng_;
  ThreadPool* prefetch_pool_ = nullptr;
  int64_t iterations_ = 0;
  std::vector<int64_t> batch_items_[2];
  std::vector<uint8_t> batch_labels_[2];
};

}  // namespace oasis

#endif  // OASIS_SAMPLING_SAMPLER_H_
