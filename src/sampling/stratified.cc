#include "sampling/stratified.h"

#include <algorithm>
#include <utility>

namespace oasis {

StratifiedSampler::StratifiedSampler(const ScoredPool* pool, LabelCache* labels,
                                     std::shared_ptr<const Strata> strata,
                                     double alpha, Rng rng)
    : Sampler(pool, labels, alpha, rng), strata_(std::move(strata)) {
  const size_t k = strata_->num_strata();
  samples_.assign(k, 0.0);
  tp_sum_.assign(k, 0.0);
  pos_sum_.assign(k, 0.0);
  lambda_ = strata_->MeanPerStratum(
      std::span<const uint8_t>(pool->predictions.data(), pool->predictions.size()));
}

Result<std::unique_ptr<StratifiedSampler>> StratifiedSampler::Create(
    const ScoredPool* pool, LabelCache* labels,
    std::shared_ptr<const Strata> strata, double alpha, Rng rng) {
  if (pool == nullptr || labels == nullptr || strata == nullptr) {
    return Status::InvalidArgument("StratifiedSampler: null pool/labels/strata");
  }
  OASIS_RETURN_NOT_OK(pool->Validate());
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("StratifiedSampler: alpha must be in [0, 1]");
  }
  if (static_cast<int64_t>(strata->num_items()) != pool->size()) {
    return Status::InvalidArgument("StratifiedSampler: strata/pool size mismatch");
  }
  OASIS_RETURN_NOT_OK(strata->Validate());
  return std::unique_ptr<StratifiedSampler>(
      new StratifiedSampler(pool, labels, std::move(strata), alpha, rng));
}

Status StratifiedSampler::Step() { return StepBatch(1); }

Status StratifiedSampler::StepBatch(int64_t n) {
  if (n < 0) {
    return Status::InvalidArgument("StepBatch: n must be non-negative");
  }
  // Proportional allocation: stratum ~ omega, item ~ Uniform(P_k), with
  // invariant loads hoisted out of the loop.
  const std::vector<double>& omega = strata_->weights();
  const uint8_t* predictions = pool().predictions.data();

  if (CanBatchQueries()) {
    // The proportional allocation never depends on observed labels, so the
    // stratum/item draws of a whole chunk can happen up front; the draw
    // callback records each position's stratum for the tally. Two chunks of
    // scratch: the pipelined scaffold double-buffers positions.
    batch_strata_.resize(static_cast<size_t>(std::min(n, 2 * kQueryBatchChunk)));
    return BatchedSteps(
        n,
        [&](int64_t i) {
          const size_t k = rng().NextDiscreteLinear(omega);
          batch_strata_[static_cast<size_t>(i)] = k;
          return static_cast<int64_t>(strata_->SampleItem(k, rng()));
        },
        [&](int64_t i, int64_t item, bool label) {
          const size_t k = batch_strata_[static_cast<size_t>(i)];
          const bool prediction = predictions[static_cast<size_t>(item)] != 0;
          samples_[k] += 1.0;
          if (label && prediction) tp_sum_[k] += 1.0;
          if (label) pos_sum_[k] += 1.0;
        });
  }

  // RNG-consuming oracle: preserve the exact sequential interleaving.
  for (int64_t i = 0; i < n; ++i) {
    const size_t k = rng().NextDiscreteLinear(omega);
    const int64_t item = strata_->SampleItem(k, rng());
    OASIS_ASSIGN_OR_RETURN(const bool label, QueryLabel(item));
    const bool prediction = predictions[static_cast<size_t>(item)] != 0;
    samples_[k] += 1.0;
    if (label && prediction) tp_sum_[k] += 1.0;
    if (label) pos_sum_[k] += 1.0;
  }
  return Status::OK();
}

EstimateSnapshot StratifiedSampler::Estimate() const {
  // Population-weighted combination of per-stratum sample means. Strata with
  // no samples contribute zero to the label-dependent terms.
  double tp = 0.0;
  double actual_pos = 0.0;
  double predicted_pos = 0.0;
  bool any_samples = false;
  for (size_t k = 0; k < strata_->num_strata(); ++k) {
    predicted_pos += strata_->weight(k) * lambda_[k];
    if (samples_[k] <= 0.0) continue;
    any_samples = true;
    tp += strata_->weight(k) * tp_sum_[k] / samples_[k];
    actual_pos += strata_->weight(k) * pos_sum_[k] / samples_[k];
  }

  EstimateSnapshot snap;
  if (!any_samples) return snap;
  const double denom = alpha() * predicted_pos + (1.0 - alpha()) * actual_pos;
  if (denom > 0.0) {
    snap.f_alpha = tp / denom;
    snap.f_defined = true;
  }
  if (predicted_pos > 0.0) {
    snap.precision = tp / predicted_pos;
    snap.precision_defined = true;
  }
  if (actual_pos > 0.0) {
    snap.recall = tp / actual_pos;
    snap.recall_defined = true;
  }
  return snap;
}

}  // namespace oasis
