#include "common/random.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace oasis {

namespace {

/// SplitMix64 step, used for seeding and stream splitting.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  // xoshiro256** requires a nonzero state; SplitMix64 seeding guarantees the
  // all-zero state is (practically) unreachable, but guard regardless.
  for (auto& s : state_) s = SplitMix64(sm);
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  OASIS_DCHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGamma(double shape) {
  OASIS_DCHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape + 1 and correct (Marsaglia–Tsang trick).
    const double u = NextDouble();
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::NextBeta(double a, double b) {
  const double x = NextGamma(a);
  const double y = NextGamma(b);
  const double sum = x + y;
  if (sum <= 0.0) return 0.5;
  return x / sum;
}

size_t Rng::NextDiscreteLinear(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    OASIS_DCHECK(w >= 0.0);
    total += w;
  }
  OASIS_CHECK(total > 0.0) << "NextDiscreteLinear requires positive total weight";
  const double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: fall back to the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t seed, uint64_t stream) {
  // Odd multiplier => (stream + 1) * kGolden is injective mod 2^64, so two
  // distinct stream indices can never alias to the same child seed. The Rng
  // constructor then runs the combined seed through SplitMix64, which is the
  // actual stream separator.
  return Rng(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
}

Rng Rng::Split() {
  // Derive the child from two fresh outputs so parent and child streams do
  // not overlap in practice.
  uint64_t mix = NextUint64();
  uint64_t child_seed = SplitMix64(mix) ^ NextUint64();
  return Rng(child_seed);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  OASIS_CHECK_LE(k, n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Partial Fisher–Yates over a full index vector.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextBounded(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  std::unordered_set<size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    size_t candidate = static_cast<size_t>(NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace oasis
