#ifndef OASIS_COMMON_LOGGING_H_
#define OASIS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

/// Compiler hint that a pointer is free of aliasing within its scope; used by
/// numeric hot loops to keep them vectorisable.
#if defined(__GNUC__) || defined(__clang__)
#define OASIS_RESTRICT __restrict__
#else
#define OASIS_RESTRICT
#endif

namespace oasis {
namespace internal {

/// Severity levels for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Stream-style log sink. FATAL messages abort the process on destruction.
/// Used through the OASIS_LOG / OASIS_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Minimum level that is actually emitted; default kInfo. Thread-safe-ish
/// (plain int store; intended for test/bench configuration at startup).
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

}  // namespace internal
}  // namespace oasis

#define OASIS_LOG(level)                                                     \
  ::oasis::internal::LogMessage(::oasis::internal::LogLevel::k##level,       \
                                __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Active in all builds:
/// invariant violations in a sampling library silently corrupt estimates,
/// so they must fail fast.
#define OASIS_CHECK(condition)                                               \
  if (!(condition))                                                          \
  OASIS_LOG(Fatal) << "Check failed: " #condition " "

#define OASIS_CHECK_OK(expr)                                                 \
  do {                                                                       \
    ::oasis::Status _st = (expr);                                            \
    if (!_st.ok())                                                           \
      OASIS_LOG(Fatal) << "Status not OK: " << _st.ToString();               \
  } while (false)

#define OASIS_CHECK_GE(a, b) OASIS_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_GT(a, b) OASIS_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_LE(a, b) OASIS_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_LT(a, b) OASIS_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_EQ(a, b) OASIS_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define OASIS_CHECK_NE(a, b) OASIS_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define OASIS_DCHECK(condition) OASIS_CHECK(condition)
#else
#define OASIS_DCHECK(condition) \
  if (false) OASIS_LOG(Fatal)
#endif

#endif  // OASIS_COMMON_LOGGING_H_
