#ifndef OASIS_COMMON_RANDOM_H_
#define OASIS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace oasis {

/// Deterministic, splittable pseudo-random generator.
///
/// Wraps a 64-bit xoshiro256**-style engine seeded via SplitMix64. Every
/// randomised component of the library takes an Rng (or a seed) so that
/// experiments are exactly reproducible; Split() derives statistically
/// independent child streams, which the experiment runner uses to make
/// multi-threaded repeats order-independent.
class Rng {
 public:
  static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

  /// Constructs a generator from a 64-bit seed. Two Rngs constructed from the
  /// same seed produce identical streams.
  explicit Rng(uint64_t seed = kDefaultSeed);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns an unbiased draw from {0, 1, ..., bound - 1}; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a draw from the half-open interval [0, 1).
  double NextDouble();

  /// Returns a Bernoulli(p) draw; p outside [0,1] behaves as clamped.
  bool NextBernoulli(double p);

  /// Returns a standard normal draw (Box–Muller; caches the spare value).
  double NextGaussian();

  /// Returns a Gamma(shape, 1) draw (Marsaglia–Tsang; shape > 0).
  double NextGamma(double shape);

  /// Returns a Beta(a, b) draw via two gamma draws.
  double NextBeta(double a, double b);

  /// Returns an index drawn from the (unnormalised, non-negative) weight
  /// vector by linear inverse-CDF scan. O(n) per draw; used by components
  /// that mimic the paper's reference implementation. Sum of weights must
  /// be positive.
  size_t NextDiscreteLinear(std::span<const double> weights);

  /// Derives an independent child generator; advances this generator.
  Rng Split();

  /// Counter-derived stream: a pure function of (seed, stream), so any
  /// worker can reconstruct stream `i` without touching shared RNG state —
  /// this is what makes multi-threaded experiment repeats bit-identical
  /// regardless of scheduling order. Distinct streams of the same seed never
  /// collide (the derivation is injective in `stream`), and the constructor's
  /// SplitMix64 seeding decorrelates neighbouring streams.
  static Rng Fork(uint64_t seed, uint64_t stream);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from {0, ..., n-1} (k <= n) in random
  /// order: partial Fisher–Yates when k is a large fraction of n, rejection
  /// sampling with a hash set otherwise.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace oasis

#endif  // OASIS_COMMON_RANDOM_H_
