#include "common/alias_table.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace oasis {

Status AliasTable::BuildInto(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (std::isnan(w) || w < 0.0) {
      return Status::InvalidArgument("AliasTable: negative or NaN weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("AliasTable: weights sum to zero");
  }

  const size_t n = weights.size();
  // Vose's algorithm: partition scaled probabilities into small/large work
  // lists and pair each small slot with a large donor. The worklists only
  // ever shrink-and-grow within capacity n, so a Rebuild on retained
  // scratch performs no heap allocation.
  std::vector<double>& scaled = scaled_scratch_;
  std::vector<uint32_t>& small = small_scratch_;
  std::vector<uint32_t>& large = large_scratch_;
  small.clear();
  large.clear();
  for (size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
    alias_[i] = 0;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining slots are (numerically) exactly 1.
  for (uint32_t l : large) prob_[l] = 1.0;
  for (uint32_t s : small) prob_[s] = 1.0;
  return Status::OK();
}

Result<AliasTable> AliasTable::Build(std::span<const double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("AliasTable: empty weight vector");
  }
  if (weights.size() > std::numeric_limits<uint32_t>::max()) {
    // The alias slots are uint32_t; beyond 2^32 - 1 categories the stored
    // indices would silently wrap. Reject explicitly.
    return Status::InvalidArgument(
        "AliasTable: too many categories for uint32_t alias slots");
  }
  const size_t n = weights.size();
  AliasTable table;
  table.prob_.assign(n, 0.0);
  table.alias_.assign(n, 0);
  table.normalized_.resize(n);
  table.scaled_scratch_.resize(n);
  table.small_scratch_.reserve(n);
  table.large_scratch_.reserve(n);
  OASIS_RETURN_NOT_OK(table.BuildInto(weights));
  return table;
}

Status AliasTable::Rebuild(std::span<const double> weights) {
  if (weights.size() != prob_.size() || prob_.empty()) {
    return Status::InvalidArgument(
        "AliasTable: Rebuild size mismatch (build the table first)");
  }
  return BuildInto(weights);
}

size_t AliasTable::Sample(Rng& rng) const {
  OASIS_DCHECK(!prob_.empty());
  const size_t slot = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[slot] ? slot : alias_[slot];
}

}  // namespace oasis
