#include "common/alias_table.h"

#include <cmath>

#include "common/logging.h"

namespace oasis {

Result<AliasTable> AliasTable::Build(std::span<const double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("AliasTable: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (std::isnan(w) || w < 0.0) {
      return Status::InvalidArgument("AliasTable: negative or NaN weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("AliasTable: weights sum to zero");
  }

  const size_t n = weights.size();
  AliasTable table;
  table.prob_.assign(n, 0.0);
  table.alias_.assign(n, 0);
  table.normalized_.resize(n);

  // Vose's algorithm: partition scaled probabilities into small/large work
  // lists and pair each small slot with a large donor.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    table.normalized_[i] = weights[i] / total;
    scaled[i] = table.normalized_[i] * static_cast<double>(n);
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    table.prob_[s] = scaled[s];
    table.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining slots are (numerically) exactly 1.
  for (uint32_t l : large) table.prob_[l] = 1.0;
  for (uint32_t s : small) table.prob_[s] = 1.0;
  return table;
}

size_t AliasTable::Sample(Rng& rng) const {
  OASIS_DCHECK(!prob_.empty());
  const size_t slot = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[slot] ? slot : alias_[slot];
}

}  // namespace oasis
