#ifndef OASIS_COMMON_FENWICK_TREE_H_
#define OASIS_COMMON_FENWICK_TREE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace oasis {

/// Fenwick (binary-indexed) tree over non-negative masses, used as a
/// dynamically-updatable discrete sampler.
///
/// This is the incremental sibling of AliasTable: the alias table draws in
/// O(1) but must be rebuilt in O(n) after *any* weight change, so it serves
/// static distributions (the stratum-weight mix component, the static IS
/// instrumental). The Fenwick tree supports
///
///  * `Update`     — single-mass change in O(log n),
///  * `Sample`     — inverse-CDF draw in O(log n),
///  * `Rebuild`    — full refresh in O(n) without allocating,
///  * `PrefixSum` / `Total` — cumulative mass queries in O(log n),
///
/// which makes it the right backend for distributions that drift one
/// coordinate at a time — exactly the shape of the OASIS instrumental v(t),
/// where one oracle label changes one stratum's posterior (Eqn. 10) and the
/// remaining K-1 masses are untouched while F-hat holds still.
///
/// Masses are stored unnormalised; sampling normalises implicitly by drawing
/// a uniform target in [0, Total()). Zero-mass indices are valid and are
/// never returned by Sample/FindQuantile (except in the degenerate all-zero
/// tree, which Sample forbids via its precondition).
class FenwickTree {
 public:
  FenwickTree() = default;

  /// Builds the tree over `masses` in O(n). Fails with InvalidArgument when
  /// `masses` is empty or contains a negative/NaN/infinite entry.
  static Result<FenwickTree> Build(std::span<const double> masses);

  /// Replaces every mass in O(n) without allocating. `masses` must have
  /// exactly size() entries and satisfy the same validity rules as Build.
  /// This also resets any floating-point drift accumulated by repeated
  /// Update deltas, so callers that rebuild periodically keep the internal
  /// partial sums exact.
  Status Rebuild(std::span<const double> masses);

  /// Point-assigns mass `i` to `mass` in O(log n). `i` must be < size();
  /// `mass` must be finite and non-negative (debug-checked).
  void Update(size_t i, double mass);

  /// Current mass of index `i` (O(1); `i` must be < size()).
  double value(size_t i) const { return values_[i]; }

  /// Sum of the first `count` masses (count <= size()), in O(log n).
  double PrefixSum(size_t count) const;

  /// Sum of all masses, in O(log n). Computed from the tree nodes so it is
  /// exactly the quantity Sample/FindQuantile partition.
  double Total() const { return PrefixSum(values_.size()); }

  /// Smallest index i whose cumulative mass prefix(i+1) exceeds `target`
  /// (i.e. the inverse CDF at `target`), in O(log n) via binary-lifting
  /// descent. `target` in [0, Total()) selects index i with probability
  /// value(i)/Total(); targets at or above Total() clamp to the last
  /// positive-mass index. Zero-mass indices are never returned. Precondition:
  /// at least one mass is positive.
  size_t FindQuantile(double target) const;

  /// Draws an index with probability value(i)/Total() in O(log n), consuming
  /// one uniform deviate. Precondition: Total() > 0.
  size_t Sample(Rng& rng) const { return FindQuantile(rng.NextDouble() * Total()); }

  /// Number of masses n.
  size_t size() const { return values_.size(); }

 private:
  /// Validates one mass entry (finite and non-negative).
  static Status ValidateMass(double mass);
  /// O(n) bottom-up (re)initialisation of tree_ from values_.
  void InitTree();

  std::vector<double> values_;  // Current masses, 0-based.
  std::vector<double> tree_;    // 1-based Fenwick partial sums; tree_[0] unused.
  size_t top_bit_ = 0;          // Largest power of two <= size(), for descent.
};

}  // namespace oasis

#endif  // OASIS_COMMON_FENWICK_TREE_H_
